// §6.1's two-run reference-identification workflow, end to end:
//
//   Run 1: detect races while recording the synchronization (lock-grant)
//          order. The report names the conflicted address and epoch, but not
//          the instructions.
//   Run 2: replay the exact same synchronization order with a watchpoint on
//          the conflicted address/epoch; source sites are gathered only for
//          accesses to that location — negligible storage, same interleaving.
#include <cstdio>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace {

// A small racy pipeline: stage A fills slots under a lock, stage B polls a
// "ready" flag WITHOUT synchronization (the bug we want to pin down).
void PipelineApp(cvm::NodeContext& ctx, const cvm::SharedVar<int32_t>& ready,
                 const cvm::SharedArray<int32_t>& slots) {
  using namespace cvm;
  if (ctx.id() == 0) {
    ready.Set(ctx, 0);
  }
  ctx.Barrier();
  for (int round = 0; round < 3; ++round) {
    if (ctx.id() == 0) {
      ctx.Lock(0);
      ctx.SetSite("pipeline.cc:produce_locked");
      slots.Set(ctx, round, 100 + round);
      ctx.Unlock(0);
      ctx.SetSite("pipeline.cc:publish_ready_UNLOCKED");  // <- the bug
      ready.Set(ctx, round + 1);
      ctx.SetSite("pipeline.cc:main");
    } else {
      ctx.SetSite("pipeline.cc:poll_ready_UNLOCKED");  // <- the other half
      (void)ready.Get(ctx);
      ctx.SetSite("pipeline.cc:main");
      ctx.Lock(0);
      (void)slots.Get(ctx, round);
      ctx.Unlock(0);
    }
    ctx.Barrier();
  }
}

}  // namespace

int main() {
  using namespace cvm;

  DsmOptions options;
  options.num_nodes = 2;
  options.page_size = 1024;
  options.max_shared_bytes = 64 * 1024;

  // ---------------- Run 1: detect + record sync order ----------------
  options.record_sync_order = true;
  GlobalAddr racy_addr = 0;
  EpochId racy_epoch = -1;
  SyncSchedule schedule;
  {
    DsmSystem system(options);
    auto ready = SharedVar<int32_t>::Alloc(system, "ready");
    auto slots = SharedArray<int32_t>::Alloc(system, "slots", 16);
    RunResult run1 =
        system.Run([&](NodeContext& ctx) { PipelineApp(ctx, ready, slots); });

    std::printf("Run 1: %zu race(s); first:\n", run1.races.size());
    if (run1.races.empty()) {
      std::printf("  (none — nothing to debug)\n");
      return 1;
    }
    const RaceReport& first = run1.races.front();
    std::printf("  %s\n", first.ToString().c_str());
    racy_addr = first.addr;
    racy_epoch = first.epoch;
    schedule = run1.recorded_schedule;
    std::printf("Recorded %zu lock grants for replay.\n\n", schedule.TotalGrants());
  }

  // ---------------- Run 2: replay + watchpoint ----------------
  options.record_sync_order = false;
  options.replay_schedule = &schedule;
  options.watch = Watchpoint{racy_addr, kWordSize, racy_epoch};
  {
    DsmSystem system(options);
    auto ready = SharedVar<int32_t>::Alloc(system, "ready");
    auto slots = SharedArray<int32_t>::Alloc(system, "slots", 16);
    RunResult run2 =
        system.Run([&](NodeContext& ctx) { PipelineApp(ctx, ready, slots); });

    std::printf("Run 2 (replayed): program-counter information for the conflicted\n"
                "address 0x%llx in epoch %d only:\n",
                static_cast<unsigned long long>(racy_addr), racy_epoch);
    for (const WatchHit& hit : run2.watch_hits) {
      std::printf("  %s\n", hit.ToString().c_str());
    }
    std::printf("\nThe racing instructions are the UNLOCKED publish/poll sites — the\n"
                "storage cost was %zu watch hits instead of a full address trace.\n",
                run2.watch_hits.size());
  }
  return 0;
}
