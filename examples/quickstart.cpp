// Quickstart: build a 4-node DSM, write a tiny parallel program with one
// intentional data race, and let the detector report it.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

int main() {
  using namespace cvm;

  // 1. Configure the DSM: 4 nodes, 4 KB pages, race detection on (default).
  DsmOptions options;
  options.num_nodes = 4;
  options.page_size = 4096;
  options.max_shared_bytes = 1 << 20;
  DsmSystem system(options);

  // 2. Allocate named shared data (names symbolize race reports).
  auto counter = SharedVar<int32_t>::Alloc(system, "counter");
  auto partials = SharedArray<int32_t>::Alloc(system, "partials", 16);

  // 3. Run an SPMD program on every node.
  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      counter.Set(ctx, 0);
    }
    ctx.Barrier();

    // Correct: lock-protected read-modify-write.
    ctx.Lock(0);
    counter.Set(ctx, counter.Get(ctx) + 1);
    ctx.Unlock(0);

    // Correct: each node writes its own slot (false sharing at worst).
    partials.Set(ctx, ctx.id(), ctx.id() * 10);

    // BUG: everyone also updates slot 15 with no synchronization.
    partials.Set(ctx, 15, ctx.id());

    ctx.Barrier();
    if (ctx.id() == 0) {
      std::printf("counter = %d (expected %d)\n", counter.Get(ctx), ctx.num_nodes());
    }
  });

  // 4. Inspect the detector's findings.
  std::printf("\n%zu data race(s) found:\n", result.races.size());
  for (const RaceReport& race : result.races) {
    std::printf("  %s\n", race.ToString().c_str());
  }
  std::printf("\nNote: the lock-protected counter and the per-node slots are clean;\n"
              "only the unsynchronized writes to partials[15] race.\n");
  return result.races.empty() ? 1 : 0;
}
