// §6.3: what happens when a program does not synchronize globally often
// enough. A lock-only producer/consumer phase accumulates interval records
// without bound; calling Consolidate() — CVM's "consolidate global state
// between synchronizations" — runs the race check and garbage-collects,
// keeping retained consistency data flat while still finding every race.
#include <cstdio>

#include "src/cvm.h"

namespace {

cvm::RunResult RunPhase(bool consolidate, int chunks, int ops_per_chunk) {
  using namespace cvm;
  DsmOptions options;
  options.num_nodes = 4;
  options.page_size = 1024;
  options.max_shared_bytes = 1 << 20;
  DsmSystem system(options);
  auto queue = SharedArray<int32_t>::Alloc(system, "queue", 64);
  auto head = SharedVar<int32_t>::Alloc(system, "head");
  auto peek = SharedVar<int32_t>::Alloc(system, "peek");  // Racily probed.

  return system.Run([&, consolidate, chunks, ops_per_chunk](NodeContext& ctx) {
    if (ctx.id() == 0) {
      head.Set(ctx, 0);
    }
    ctx.Barrier();
    for (int chunk = 0; chunk < chunks; ++chunk) {
      for (int i = 0; i < ops_per_chunk; ++i) {
        ctx.Lock(1);
        const int32_t at = head.Get(ctx);
        queue.Set(ctx, at % 64, ctx.id());
        head.Set(ctx, at + 1);
        ctx.Unlock(1);
        if (ctx.id() == 1) {
          peek.Set(ctx, at);  // Unsynchronized "progress hint" — racy.
        } else if (ctx.id() == 3) {
          (void)peek.Get(ctx);
        }
      }
      if (consolidate) {
        ctx.Consolidate();
      }
    }
  });
}

}  // namespace

int main() {
  using namespace cvm;
  constexpr int kChunks = 8;
  constexpr int kOps = 25;

  std::printf("lock-only phase: %d chunks x %d locked ops per node, 4 nodes\n\n", kChunks, kOps);

  RunResult without = RunPhase(false, kChunks, kOps);
  RunResult with = RunPhase(true, kChunks, kOps);

  std::printf("%-34s %-18s %s\n", "", "no consolidation", "Consolidate() per chunk");
  std::printf("%-34s %-18zu %zu\n", "max retained interval records",
              without.max_interval_log_size, with.max_interval_log_size);
  std::printf("%-34s %-18zu %zu\n", "max retained bitmap pairs",
              without.max_retained_bitmap_pairs, with.max_retained_bitmap_pairs);
  std::printf("%-34s %-18zu %zu\n", "races reported (racy 'peek' var)", without.races.size(),
              with.races.size());

  std::printf("\nWithout global synchronization the interval log grows with the phase;\n"
              "periodic consolidation bounds it at roughly one chunk's worth while the\n"
              "same races are still detected (\"we can exploit CVM routines that allow\n"
              "global state to be consolidated between synchronizations\" — §6.3).\n");
  return with.max_interval_log_size * 2 < without.max_interval_log_size ? 0 : 1;
}
