// The paper's headline true positive: TSP deliberately reads the global tour
// bound without synchronization (a stale bound only causes redundant work,
// never a wrong answer). Run the real branch-and-bound solver under the
// detector and inspect the reported races — all of them are on the bound.
#include <cstdio>
#include <map>

#include "src/apps/tsp.h"
#include "src/apps/workload.h"

int main() {
  using namespace cvm;

  TspApp::Params params;
  params.num_cities = 12;
  params.prefix_depth = 3;

  DsmOptions options;
  options.num_nodes = 8;
  options.page_size = 4096;
  options.max_shared_bytes = 8 << 20;

  auto app = std::make_unique<TspApp>(params);
  DsmSystem system(options);
  app->Setup(system);
  std::printf("Solving %s with 8 workers (bound reads are unsynchronized)...\n",
              app->input_description().c_str());
  RunResult result = system.Run([&](NodeContext& ctx) { app->Run(ctx); });

  std::printf("optimal tour %s (verified against serial branch-and-bound)\n",
              app->Verify() ? "correct" : "WRONG");

  std::map<std::string, std::map<const char*, int>> by_symbol;
  for (const RaceReport& race : result.races) {
    std::string symbol = race.symbol.substr(0, race.symbol.find('+'));
    by_symbol[symbol][RaceKindName(race.kind)]++;
  }
  std::printf("\n%zu distinct races, grouped by variable:\n", result.races.size());
  for (const auto& [symbol, kinds] : by_symbol) {
    std::printf("  %-16s", symbol.c_str());
    for (const auto& [kind, count] : kinds) {
      std::printf("  %s x%d", kind, count);
    }
    std::printf("\n");
  }
  std::printf("\nThe read-write races on tsp_min_tour are the benign-by-design bound\n"
              "probes; the result above is still optimal. \"Out-of-date tour bounds may\n"
              "cause redundant work to be performed, but do not violate correctness.\"\n");
  return 0;
}
