// Figure 5 of the paper (after Adve et al.): a race that can only occur on a
// weak memory system. With a missing release/acquire pair, LRC is free to
// leave P2's copy of the queue pointer stale; P2 then writes where P3 is
// writing. On sequentially consistent hardware the qPtr update would have
// been visible and the collision could not happen.
#include <cstdio>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

int main() {
  using namespace cvm;

  DsmOptions options;
  options.num_nodes = 3;
  options.page_size = 1024;
  options.max_shared_bytes = 64 * 1024;
  DsmSystem system(options);

  auto q_ptr = SharedVar<int32_t>::Alloc(system, "qPtr");
  auto q_empty = SharedVar<int32_t>::Alloc(system, "qEmpty");
  auto buf = SharedArray<int32_t>::Alloc(system, "buf", 256);

  int32_t p2_saw = -1;

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      q_ptr.Set(ctx, 37);
      q_empty.Set(ctx, 1);
    }
    ctx.Barrier();
    // Everyone caches the control variables.
    (void)q_ptr.Get(ctx);
    (void)q_empty.Get(ctx);
    ctx.Barrier();

    switch (ctx.id()) {
      case 0:
        // P1: w(qPtr)100, w(qEmpty)0 ... {missing release}.
        q_ptr.Set(ctx, 100);
        q_empty.Set(ctx, 0);
        break;
      case 1: {
        // P2: {missing acquire} ... reads and uses the queue pointer.
        (void)q_empty.Get(ctx);
        const int32_t ptr = q_ptr.Get(ctx);
        p2_saw = ptr;
        buf.Set(ctx, ptr, 1);      // w2(ptr)
        buf.Set(ctx, ptr + 1, 1);  // w2(ptr+1)
        break;
      }
      case 2:
        // P3: allocates from 37 upward concurrently.
        buf.Set(ctx, 37, 2);
        buf.Set(ctx, 38, 2);
        buf.Set(ctx, 39, 2);
        break;
    }
  });

  std::printf("P2 read qPtr = %d (a sequentially consistent system would read 100)\n", p2_saw);
  std::printf("\nDetected races:\n");
  for (const RaceReport& race : result.races) {
    std::printf("  %s\n", race.ToString().c_str());
  }
  std::printf("\nThe buf+148/buf+152 (elements 37/38) write-write races exist only because\n"
              "weak memory let P2 act on the stale pointer — they \"would not occur in an\n"
              "SC system\". The qPtr/qEmpty races are the missing synchronization itself.\n");
  return 0;
}
