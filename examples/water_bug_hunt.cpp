// The paper's real bug: Water-Nsquared updated a shared global accumulator
// without its lock — a write-write race the authors reported upstream and
// Splash2 fixed. Run the buggy and the repaired kernel side by side.
#include <cstdio>

#include "src/apps/water.h"
#include "src/apps/workload.h"

namespace {

cvm::RunResult RunWater(bool fixed, bool* verified, cvm::GlobalAddr* virial_addr) {
  using namespace cvm;
  WaterApp::Params params;
  params.molecules = 125;
  params.iters = 3;
  params.fix_virial_bug = fixed;

  DsmOptions options;
  options.num_nodes = 8;
  options.page_size = 4096;
  options.max_shared_bytes = 8 << 20;

  auto app = std::make_unique<WaterApp>(params);
  DsmSystem system(options);
  app->Setup(system);
  RunResult result = system.Run([&](NodeContext& ctx) { app->Run(ctx); });
  *verified = app->Verify();
  *virial_addr = app->virial_addr();
  return result;
}

}  // namespace

int main() {
  using namespace cvm;

  bool verified = false;
  GlobalAddr virial_addr = 0;

  std::printf("--- Water with the original Splash2 bug (unlocked virial update) ---\n");
  RunResult buggy = RunWater(/*fixed=*/false, &verified, &virial_addr);
  std::printf("positions verified vs serial reference: %s\n", verified ? "yes" : "NO");
  int virial_races = 0;
  for (const RaceReport& race : buggy.races) {
    if (race.addr >= virial_addr && race.addr < virial_addr + kWordSize) {
      ++virial_races;
      if (virial_races <= 4) {
        std::printf("  %s\n", race.ToString().c_str());
      }
    }
  }
  if (virial_races > 4) {
    std::printf("  ... and %d more interval pairs on the same word\n", virial_races - 4);
  }
  std::printf("%d race(s) on the virial accumulator — the detector catches the bug.\n",
              virial_races);

  std::printf("\n--- Water with the upstream fix (virial under its lock) ---\n");
  RunResult fixed = RunWater(/*fixed=*/true, &verified, &virial_addr);
  int fixed_races = 0;
  for (const RaceReport& race : fixed.races) {
    if (race.addr >= virial_addr && race.addr < virial_addr + kWordSize) {
      ++fixed_races;
    }
  }
  std::printf("positions verified vs serial reference: %s\n", verified ? "yes" : "NO");
  std::printf("%d race(s) on the virial accumulator — the fix is clean.\n", fixed_races);
  std::printf("(total reports: buggy %zu, fixed %zu)\n", buggy.races.size(), fixed.races.size());
  return (virial_races > 0 && fixed_races == 0) ? 0 : 1;
}
