// chaos_run: fault-injection sweep harness. Runs each selected application
// once on the clean fabric, then again under each selected fault profile and
// loss rate, and asserts that the run still verifies and that the race report
// is identical to the fault-free run — the end-to-end guarantee the reliable
// transport (src/net/) owes the detection protocol.
//
// Examples:
//   chaos_run                                  # all apps, all profiles
//   chaos_run --apps=sor,tsp --profiles=lossy --loss=0.01 --nodes=4
//   chaos_run --profiles=stress --loss=0.01,0.05 --seed=7
//
// Exit status: 0 if every faulty run verified with an identical race report,
// 1 on any divergence.
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/apps/fft.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/apps/workload.h"
#include "src/common/table.h"
#include "src/fault/fault.h"
#include "tools/flags.h"

namespace {

using namespace cvm;

int Usage() {
  std::printf(
      "usage: chaos_run [options]\n"
      "\n"
      "options:\n"
      "  --apps=A,B,...      fft|sor|tsp|water|lu (default: all five)\n"
      "  --profiles=P,...    lossy|bursty|partition|stress|crash\n"
      "                      (default: the four message-fault profiles)\n"
      "  --loss=R,...        frame-loss rates overriding each profile's default\n"
      "                      (default: the profile's own rate)\n"
      "  --nodes=N           processors (default 4)\n"
      "  --seed=N            fault-injection seed (default 1)\n"
      "  --size=N            app scale knob, smaller = faster (default modest)\n"
      "  --pipeline=P        serial | sharded | distributed barrier-time check\n"
      "  --barrier-tree      k-ary combine-tree barrier (default: flat)\n"
      "  --barrier-fanout=K  combine-tree fanout (default 4)\n"
      "\n"
      "Asserts each faulty run verifies and reports the same races as the\n"
      "fault-free run (docs/FAULTS.md). The crash profile asserts recovery\n"
      "instead: the crashed run survives (no abort) with its race report a\n"
      "consistent prefix of the baseline, and a rebooted re-run under the\n"
      "same seed matches the baseline exactly.\n");
  return 2;
}

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) {
      items.push_back(item);
    }
  }
  return items;
}

// Modest inputs: the sweep runs every app under several profiles, so each
// individual run should take well under a second.
std::unique_ptr<ParallelApp> MakeApp(const std::string& name, int64_t size) {
  if (name == "fft") {
    FftApp::Params params;
    params.rows = size > 0 ? static_cast<int>(size) : 64;
    params.cols = params.rows;
    return std::make_unique<FftApp>(params);
  }
  if (name == "sor") {
    SorApp::Params params;
    params.rows = size > 0 ? static_cast<int>(size) + 2 : 66;
    params.cols = size > 0 ? static_cast<int>(size) : 64;
    params.iters = 2;
    return std::make_unique<SorApp>(params);
  }
  if (name == "tsp") {
    TspApp::Params params;
    params.num_cities = size > 0 ? static_cast<int>(size) : 10;
    return std::make_unique<TspApp>(params);
  }
  if (name == "water") {
    WaterApp::Params params;
    params.molecules = size > 0 ? static_cast<int>(size) : 64;
    params.iters = 2;
    // Keep the virial bug: the sweep then also proves that REPORTED races
    // survive injection unchanged, not just that clean apps stay clean.
    return std::make_unique<WaterApp>(params);
  }
  if (name == "lu") {
    LuApp::Params params;
    params.n = size > 0 ? static_cast<int>(size) : 48;
    params.block = 8;
    return std::make_unique<LuApp>(params);
  }
  return nullptr;
}

struct RunOutcome {
  bool verified = false;
  std::string exact;       // Per-variable summary with occurrence counts.
  std::string structural;  // Summary with counts reduced to kind flags.
  std::vector<RaceReport> races;  // Raw reports, for prefix filtering.
  CrashOutcome recovery;
  fault::FaultStats fstats;
  double sim_ms = 0;
};

// Two signatures of a run's race findings, from the deduplicated,
// symbol-sorted per-variable summary. The exact form includes dynamic
// occurrence counts; the structural form keeps only which variables race,
// which kinds of races they have, and the first racy epoch. Lock-based
// speculative apps (TSP's branch-and-bound) do schedule-dependent amounts of
// work, so their occurrence counts differ even between two fault-free runs —
// for those, only the structural signature is meaningful.
void Signatures(const std::vector<RaceReport>& races, std::string* exact,
                std::string* structural) {
  for (const RaceSummaryLine& line : SummarizeRaces(races)) {
    *exact += line.symbol + ":" + std::to_string(line.write_write) + ":" +
              std::to_string(line.read_write) + ":" + std::to_string(line.first_epoch) +
              "\n";
    *structural += line.symbol + ":" + (line.write_write > 0 ? "ww" : "-") + ":" +
                   (line.read_write > 0 ? "rw" : "-") + ":" +
                   std::to_string(line.first_epoch) + "\n";
  }
}

RunOutcome RunOnce(const std::string& app_name, int64_t size, int nodes,
                   const fault::FaultPlan& plan, DetectionPipeline pipeline,
                   bool barrier_tree, int barrier_fanout) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.max_shared_bytes = 64ull << 20;
  options.fault_plan = plan;
  options.detection_pipeline = pipeline;
  options.barrier_tree = barrier_tree;
  options.barrier_fanout = barrier_fanout;
  auto app = MakeApp(app_name, size);
  DsmSystem system(options);
  app->Setup(system);
  RunResult result = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });
  RunOutcome outcome;
  outcome.verified = app->Verify();
  Signatures(result.races, &outcome.exact, &outcome.structural);
  outcome.races = std::move(result.races);
  outcome.recovery = result.recovery;
  outcome.fstats = result.fault;
  outcome.sim_ms = result.sim_time_ns / 1e6;
  return outcome;
}

// Baseline reports the crashed run could have published: those whose
// detecting barrier completed at or before the last consistent epoch.
std::vector<RaceReport> PrefixReports(const std::vector<RaceReport>& races,
                                      EpochId last_consistent_epoch) {
  std::vector<RaceReport> prefix;
  for (const RaceReport& report : races) {
    if (report.epoch <= last_consistent_epoch) {
      prefix.push_back(report);
    }
  }
  return prefix;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }
  for (const std::string& key : flags.UnknownKeys(
           {"apps", "profiles", "loss", "nodes", "seed", "size", "pipeline", "barrier-tree",
            "barrier-fanout", "help"})) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
    return Usage();
  }
  if (flags.GetBool("help", false)) {
    return Usage();
  }

  const std::vector<std::string> apps =
      SplitList(flags.GetString("apps", "fft,sor,tsp,water,lu"));
  const std::vector<std::string> profile_names =
      SplitList(flags.GetString("profiles", "lossy,bursty,partition,stress"));
  const std::vector<std::string> loss_rates = SplitList(flags.GetString("loss", ""));
  const int nodes = static_cast<int>(flags.GetInt("nodes", 4));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const int64_t size = flags.GetInt("size", -1);

  DetectionPipeline pipeline = DetectionPipeline::kSerial;
  const std::string pipeline_name = flags.GetString("pipeline", "serial");
  if (pipeline_name == "serial") {
    pipeline = DetectionPipeline::kSerial;
  } else if (pipeline_name == "sharded") {
    pipeline = DetectionPipeline::kSharded;
  } else if (pipeline_name == "distributed") {
    pipeline = DetectionPipeline::kDistributed;
  } else {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", pipeline_name.c_str());
    return Usage();
  }
  const bool barrier_tree = flags.GetBool("barrier-tree", false);
  const int barrier_fanout = static_cast<int>(flags.GetInt("barrier-fanout", 4));
  if (barrier_fanout < 1) {
    std::fprintf(stderr, "error: --barrier-fanout=%d must be at least 1\n", barrier_fanout);
    return Usage();
  }

  std::vector<fault::FaultProfile> profiles;
  for (const std::string& name : profile_names) {
    const auto profile = fault::ParseProfile(name);
    if (!profile.has_value() || *profile == fault::FaultProfile::kOff) {
      std::fprintf(stderr, "error: unknown fault profile '%s' (valid: %s)\n",
                   name.c_str(), fault::ValidProfileNames());
      return Usage();
    }
    profiles.push_back(*profile);
  }
  for (const std::string& app_name : apps) {
    if (MakeApp(app_name, size) == nullptr) {
      std::fprintf(stderr, "error: unknown app '%s'\n", app_name.c_str());
      return Usage();
    }
  }

  std::printf("chaos sweep: %zu app(s) x %zu profile(s)%s, %d nodes, fault seed %lu\n\n",
              apps.size(), profiles.size(),
              loss_rates.empty() ? ""
                                 : (" x " + std::to_string(loss_rates.size()) + " loss rate(s)").c_str(),
              nodes, static_cast<unsigned long>(seed));

  TablePrinter table({"App", "Profile", "Loss", "Verified", "Report", "Attempts", "Drops",
                      "Retransmits", "Dup-drops", "Sim ms"});
  int divergences = 0;
  for (const std::string& app_name : apps) {
    // Two fault-free runs calibrate the comparison: if even they disagree on
    // occurrence counts (schedule-dependent work, e.g. TSP), the sweep
    // compares the structural signature instead of the exact one.
    const fault::FaultPlan off =
        fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, seed);
    const RunOutcome clean = RunOnce(app_name, size, nodes, off, pipeline, barrier_tree, barrier_fanout);
    const RunOutcome clean2 = RunOnce(app_name, size, nodes, off, pipeline, barrier_tree, barrier_fanout);
    if (!clean.verified || !clean2.verified) {
      std::fprintf(stderr, "error: %s does not verify on the clean fabric\n",
                   app_name.c_str());
      return 1;
    }
    if (clean.structural != clean2.structural) {
      std::fprintf(stderr,
                   "error: %s race reports differ structurally between two "
                   "fault-free runs; no stable baseline to compare against\n",
                   app_name.c_str());
      return 1;
    }
    const bool exact_mode = clean.exact == clean2.exact;
    const std::string& baseline = exact_mode ? clean.exact : clean.structural;
    table.AddRow({app_name, "off", "-", "yes",
                  clean.exact.empty() ? "clean" : (exact_mode ? "races" : "races~"),
                  "-", "-", "-", "-", TablePrinter::Fixed(clean.sim_ms, 1)});

    for (const fault::FaultProfile profile : profiles) {
      if (profile == fault::FaultProfile::kCrash) {
        // Crash scenario, two acts. Act one: a seed-chosen node fail-stops
        // at a barrier; the run must survive (reach here at all), declare
        // the crash, and report exactly the prefix of the baseline that its
        // last consistent cut covers. Act two: the node "reboots" — the same
        // seed with the crash disarmed must reproduce the baseline exactly.
        const fault::FaultPlan crash_plan =
            fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, seed);
        const RunOutcome crashed = RunOnce(app_name, size, nodes, crash_plan, pipeline, barrier_tree, barrier_fanout);
        std::string prefix_exact;
        std::string prefix_structural;
        Signatures(PrefixReports(clean.races, crashed.recovery.last_consistent_epoch),
                   &prefix_exact, &prefix_structural);
        const bool prefix_equal =
            (exact_mode ? crashed.exact : crashed.structural) ==
            (exact_mode ? prefix_exact : prefix_structural);
        const bool crash_ok = crashed.recovery.crashed && prefix_equal;
        if (!crash_ok) {
          ++divergences;
          std::fprintf(stderr,
                       "DIVERGENCE: %s under crash: crashed=%s (node %d, epoch %d, "
                       "consistent through %d), report %s\n  expected prefix:\n%s  got:\n%s",
                       app_name.c_str(), crashed.recovery.crashed ? "yes" : "NO",
                       crashed.recovery.crash_node, crashed.recovery.crash_epoch,
                       crashed.recovery.last_consistent_epoch,
                       prefix_equal ? "prefix-consistent" : "differs",
                       prefix_exact.empty() ? "    (none)\n" : prefix_exact.c_str(),
                       crashed.exact.empty() ? "    (none)\n" : crashed.exact.c_str());
        }
        table.AddRow({app_name, "crash", "-", crashed.recovery.crashed ? "n/a" : "NO",
                      prefix_equal ? "prefix" : "DIVERGED",
                      std::to_string(crashed.fstats.data_frames),
                      std::to_string(crashed.fstats.drops),
                      std::to_string(crashed.fstats.retransmits),
                      std::to_string(crashed.fstats.dup_dropped),
                      TablePrinter::Fixed(crashed.sim_ms, 1)});

        fault::FaultPlan reboot_plan = crash_plan;
        reboot_plan.crash_epoch = -1;  // The node came back; same seed otherwise.
        const RunOutcome rebooted = RunOnce(app_name, size, nodes, reboot_plan, pipeline, barrier_tree, barrier_fanout);
        const std::string& reboot_candidate =
            exact_mode ? rebooted.exact : rebooted.structural;
        const bool reboot_equal = reboot_candidate == baseline;
        const bool reboot_ok =
            rebooted.verified && reboot_equal && !rebooted.recovery.crashed;
        if (!reboot_ok) {
          ++divergences;
          std::fprintf(stderr,
                       "DIVERGENCE: %s after reboot: verified=%s, report %s\n"
                       "  clean:\n%s  rebooted:\n%s",
                       app_name.c_str(), rebooted.verified ? "yes" : "NO",
                       reboot_equal ? "identical" : "differs",
                       baseline.empty() ? "    (none)\n" : baseline.c_str(),
                       reboot_candidate.empty() ? "    (none)\n" : reboot_candidate.c_str());
        }
        table.AddRow({app_name, "reboot", "-", rebooted.verified ? "yes" : "NO",
                      reboot_equal ? "identical" : "DIVERGED",
                      std::to_string(rebooted.fstats.data_frames),
                      std::to_string(rebooted.fstats.drops),
                      std::to_string(rebooted.fstats.retransmits),
                      std::to_string(rebooted.fstats.dup_dropped),
                      TablePrinter::Fixed(rebooted.sim_ms, 1)});
        continue;
      }
      std::vector<double> losses;
      if (loss_rates.empty()) {
        losses.push_back(-1);  // Profile default.
      } else {
        for (const std::string& rate : loss_rates) {
          losses.push_back(std::stod(rate));
        }
      }
      for (const double loss : losses) {
        fault::FaultPlan plan = fault::FaultPlan::FromProfile(profile, seed);
        if (loss >= 0) {
          plan.drop_prob = loss;
        }
        const RunOutcome faulty = RunOnce(app_name, size, nodes, plan, pipeline, barrier_tree, barrier_fanout);
        const std::string& candidate = exact_mode ? faulty.exact : faulty.structural;
        const bool report_equal = candidate == baseline;
        const bool ok = faulty.verified && report_equal;
        if (!ok) {
          ++divergences;
        }
        table.AddRow(
            {app_name, fault::ProfileName(profile),
             TablePrinter::Fixed(loss >= 0 ? loss : plan.drop_prob, 3),
             faulty.verified ? "yes" : "NO",
             report_equal ? "identical" : "DIVERGED",
             std::to_string(faulty.fstats.data_frames),
             std::to_string(faulty.fstats.drops),
             std::to_string(faulty.fstats.retransmits),
             std::to_string(faulty.fstats.dup_dropped),
             TablePrinter::Fixed(faulty.sim_ms, 1)});
        if (!ok) {
          std::fprintf(stderr,
                       "DIVERGENCE: %s under %s (loss %.3f): verified=%s, "
                       "report %s\n  clean:\n%s  faulty:\n%s",
                       app_name.c_str(), fault::ProfileName(profile),
                       loss >= 0 ? loss : plan.drop_prob,
                       faulty.verified ? "yes" : "NO",
                       report_equal ? "identical" : "differs",
                       baseline.empty() ? "    (none)\n" : baseline.c_str(),
                       candidate.empty() ? "    (none)\n" : candidate.c_str());
        }
      }
    }
  }

  table.Print();
  if (divergences > 0) {
    std::printf("\n%d divergence(s) — fault injection changed observable behavior\n",
                divergences);
    return 1;
  }
  std::printf("\nall faulty runs verified with race reports identical to fault-free\n");
  return 0;
}
