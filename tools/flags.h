// Minimal command-line flag parsing for the cvm tools: --key=value and
// boolean --key / --no-key forms, with typed accessors and unknown-flag
// reporting. Header-only so the parser is unit-testable without a binary.
#ifndef CVM_TOOLS_FLAGS_H_
#define CVM_TOOLS_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cvm {
namespace tools {

class Flags {
 public:
  // Parses argv; non-flag arguments are collected as positionals. Returns
  // false (and fills error) on malformed input like "--" or "--=v".
  bool Parse(int argc, const char* const* argv, std::string* error) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(arg);
        continue;
      }
      std::string body = arg.substr(2);
      if (body.empty()) {
        *error = "bare '--' is not a flag";
        return false;
      }
      const size_t eq = body.find('=');
      if (eq == std::string::npos) {
        if (body.rfind("no-", 0) == 0) {
          values_[body.substr(3)] = "false";
        } else {
          values_[body] = "true";
        }
      } else {
        const std::string key = body.substr(0, eq);
        if (key.empty()) {
          *error = "missing flag name in '" + arg + "'";
          return false;
        }
        values_[key] = body.substr(eq + 1);
      }
    }
    return true;
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    try {
      return std::stoll(it->second);
    } catch (...) {
      return fallback;
    }
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return fallback;
    }
    return it->second != "false" && it->second != "0" && it->second != "no";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  // Keys that were set but are not in the accepted list (typo detection).
  std::vector<std::string> UnknownKeys(const std::vector<std::string>& accepted) const {
    std::vector<std::string> unknown;
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const std::string& ok : accepted) {
        if (key == ok) {
          found = true;
          break;
        }
      }
      if (!found) {
        unknown.push_back(key);
      }
    }
    return unknown;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tools
}  // namespace cvm

#endif  // CVM_TOOLS_FLAGS_H_
