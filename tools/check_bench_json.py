#!/usr/bin/env python3
"""Validates the schema of BENCH_detector.json (and knows BENCH_fig4.json).

Used by the CI bench-smoke step: after running
`ablation_detection_pipeline --smoke`, this asserts the JSON parses, every
cell carries the full column set with sane types/values, and the modes'
relative claims hold (compressed-distributed wire bytes <= raw bytes;
reports match serial where required). Stdlib only.

Usage: tools/check_bench_json.py BENCH_detector.json
       tools/check_bench_json.py --fig4 BENCH_fig4.json
"""

import json
import sys

DETECTOR_FIELDS = {
    "app": str,
    "mode": str,
    "procs": int,
    "compress": bool,
    "detect_epochs": int,
    "detect_ns_per_epoch": (int, float),
    "bitmap_bytes_raw_per_epoch": (int, float),
    "bitmap_bytes_wire_per_epoch": (int, float),
    "overlap_saved_ns_per_epoch": (int, float),
    "shards": int,
    "remote_pairs_compared": int,
    "remote_reports": int,
    "races": int,
    "reports_exact_match": bool,
    "reports_structural_match": bool,
}

FIG4_FIELDS = {
    "app": str,
    "protocol": str,
    "procs": int,
    "slowdown": (int, float),
    "sim_ms_detect": (int, float),
    "sim_ms_base": (int, float),
    "wall_s_detect": (int, float),
    "wall_s_base": (int, float),
}

MODES = {"serial", "sharded", "distributed"}


def fail(msg):
    print(f"SCHEMA ERROR: {msg}", file=sys.stderr)
    return 1


def check_fields(cell, index, fields):
    for name, kind in fields.items():
        if name not in cell:
            return f"cell {index}: missing field '{name}'"
        value = cell[name]
        # bool is an int subclass; keep int fields strictly non-bool.
        if fields[name] is int and isinstance(value, bool):
            return f"cell {index}: field '{name}' is bool, expected int"
        if not isinstance(value, kind):
            return f"cell {index}: field '{name}' has type {type(value).__name__}"
    return None


def check_detector(cells):
    if not cells:
        return fail("no cells")
    by_app = {}
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, DETECTOR_FIELDS)
        if err:
            return fail(err)
        if cell["mode"] not in MODES:
            return fail(f"cell {i}: unknown mode '{cell['mode']}'")
        if cell["procs"] <= 0:
            return fail(f"cell {i}: procs must be positive")
        if cell["bitmap_bytes_wire_per_epoch"] > cell["bitmap_bytes_raw_per_epoch"]:
            return fail(f"cell {i}: wire bytes exceed raw bytes")
        if cell["detect_ns_per_epoch"] < 0 or cell["detect_epochs"] < 0:
            return fail(f"cell {i}: negative time/epoch count")
        by_app.setdefault(cell["app"], {})[cell["mode"]] = cell
    for app, modes in by_app.items():
        missing = MODES - set(modes)
        if missing:
            return fail(f"app {app}: missing mode(s) {sorted(missing)}")
        serial = modes["serial"]
        if not serial["reports_exact_match"]:
            return fail(f"app {app}: serial cell must self-match")
        for mode in ("sharded", "distributed"):
            cell = modes[mode]
            # Deterministic apps must reproduce the serial report stream
            # byte-for-byte; TSP's schedule-dependent search only structurally.
            required = (
                cell["reports_structural_match"]
                if app == "TSP"
                else cell["reports_exact_match"]
            )
            if not required:
                return fail(f"app {app}/{mode}: reports diverge from serial")
        if modes["distributed"]["compress"]:
            if (
                serial["bitmap_bytes_raw_per_epoch"] > 0
                and modes["distributed"]["bitmap_bytes_wire_per_epoch"]
                >= serial["bitmap_bytes_wire_per_epoch"]
            ):
                return fail(f"app {app}: compressed-distributed wire bytes not below serial")
    print(f"OK: {len(cells)} detector cells, {len(by_app)} app(s), all checks pass")
    return 0


def check_fig4(cells):
    if not cells:
        return fail("no cells")
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, FIG4_FIELDS)
        if err:
            return fail(err)
        if cell["slowdown"] < 0:
            return fail(f"cell {i}: negative slowdown")
    print(f"OK: {len(cells)} fig4 cells")
    return 0


def main():
    args = sys.argv[1:]
    fig4 = "--fig4" in args
    paths = [a for a in args if not a.startswith("--")]
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(paths[0], encoding="utf-8") as f:
            cells = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {paths[0]}: {e}")
    if not isinstance(cells, list):
        return fail("top level must be a JSON array")
    return check_fig4(cells) if fig4 else check_detector(cells)


if __name__ == "__main__":
    sys.exit(main())
