#!/usr/bin/env python3
"""Validates the schema of the BENCH_*.json files the benches emit.

Used by the CI bench-smoke steps: after running a bench, this asserts its
JSON parses, every cell carries the full column set with sane types/values,
and the modes' relative claims hold (compressed-distributed wire bytes <=
raw bytes; reports match serial where required; flow tracing no more than
2x plain tracing). Stdlib only.

The schema is picked from the file's basename via the SCHEMAS registry;
unknown BENCH_*.json names fail loudly so a new bench cannot ship without
registering (and thereby documenting) its output format here.

Usage: tools/check_bench_json.py BENCH_detector.json
       tools/check_bench_json.py BENCH_fig4.json
       tools/check_bench_json.py BENCH_hotpath.json
       tools/check_bench_json.py BENCH_obs.json
       tools/check_bench_json.py BENCH_recovery.json
       tools/check_bench_json.py BENCH_scaling.json
       tools/check_bench_json.py BENCH_service.json
       tools/check_bench_json.py --fig4 FILE   (legacy: force fig4 schema)
"""

import json
import math
import os
import sys

DETECTOR_FIELDS = {
    "app": str,
    "mode": str,
    "procs": int,
    "compress": bool,
    "detect_epochs": int,
    "detect_ns_per_epoch": (int, float),
    "bitmap_bytes_raw_per_epoch": (int, float),
    "bitmap_bytes_wire_per_epoch": (int, float),
    "overlap_saved_ns_per_epoch": (int, float),
    "shards": int,
    "remote_pairs_compared": int,
    "remote_reports": int,
    "races": int,
    "reports_exact_match": bool,
    "reports_structural_match": bool,
}

FIG4_FIELDS = {
    "app": str,
    "protocol": str,
    "procs": int,
    "slowdown": (int, float),
    "sim_ms_detect": (int, float),
    "sim_ms_base": (int, float),
    "wall_s_detect": (int, float),
    "wall_s_base": (int, float),
}

OBS_FIELDS = {
    "app": str,
    "procs": int,
    "mode": str,
    "wall_s": (int, float),
    "sim_ms": (int, float),
    "trace_events": int,
    "flow_events": int,
    "overhead_vs_off": (int, float),
    "overhead_vs_trace": (int, float),
}

RECOVERY_FIELDS = {
    "mode": str,
    "workers": int,
    "nodes": int,
    "requests": int,
    "completed": int,
    "retried": int,
    "failed": int,
    "fabric_rebuilds": int,
    "workloads_per_sec": (int, float),
    "total_wall_s": (int, float),
    "p50_latency_s": (int, float),
    "mean_latency_s": (int, float),
}

SERVICE_FIELDS = {
    "mode": str,
    "workers": int,
    "nodes": int,
    "requests": int,
    "completed": int,
    "rejected": int,
    "warm_reuses": int,
    "workloads_per_sec": (int, float),
    "total_wall_s": (int, float),
    "p50_latency_s": (int, float),
    "p99_latency_s": (int, float),
    "mean_latency_s": (int, float),
}

HOTPATH_FIELDS = {
    "kernel": str,
    "target": str,
    "bytes_per_op": int,
    "scalar_ns": (int, float),
    "active_ns": (int, float),
    "speedup": (int, float),
    "identical_output": bool,
}

SCALING_FIELDS = {
    "nodes": int,
    "races": int,
    "reports_match": bool,
    "flat_detect_ns_per_epoch": (int, float),
    "tree_detect_ns_per_epoch": (int, float),
    "batch_detect_ns_per_epoch": (int, float),
    "flat_wire_bytes_per_epoch": (int, float),
    "tree_wire_bytes_per_epoch": (int, float),
    "batch_wire_bytes_per_epoch": (int, float),
    "intern_hits": int,
}

MODES = {"serial", "sharded", "distributed"}
OBS_MODES = {"off", "trace", "trace+flows"}
SERVICE_MODES = {"cold", "warm"}
RECOVERY_MODES = {"clean", "crash_reboot"}

# Headroom over the nominal "flow tracing <= 2x plain tracing" claim: wall
# times on shared CI runners are noisy and the bench already takes the best
# of its repetitions, so only flag clear regressions.
OBS_FLOW_OVERHEAD_LIMIT = 2.0


def fail(msg):
    print(f"SCHEMA ERROR: {msg}", file=sys.stderr)
    return 1


def check_fields(cell, index, fields):
    for name, kind in fields.items():
        if name not in cell:
            return f"cell {index}: missing field '{name}'"
        value = cell[name]
        # bool is an int subclass; keep int fields strictly non-bool.
        if fields[name] is int and isinstance(value, bool):
            return f"cell {index}: field '{name}' is bool, expected int"
        if not isinstance(value, kind):
            return f"cell {index}: field '{name}' has type {type(value).__name__}"
    return None


def check_detector(cells):
    if not cells:
        return fail("no cells")
    by_app = {}
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, DETECTOR_FIELDS)
        if err:
            return fail(err)
        if cell["mode"] not in MODES:
            return fail(f"cell {i}: unknown mode '{cell['mode']}'")
        if cell["procs"] <= 0:
            return fail(f"cell {i}: procs must be positive")
        if cell["bitmap_bytes_wire_per_epoch"] > cell["bitmap_bytes_raw_per_epoch"]:
            return fail(f"cell {i}: wire bytes exceed raw bytes")
        if cell["detect_ns_per_epoch"] < 0 or cell["detect_epochs"] < 0:
            return fail(f"cell {i}: negative time/epoch count")
        by_app.setdefault(cell["app"], {})[cell["mode"]] = cell
    for app, modes in by_app.items():
        missing = MODES - set(modes)
        if missing:
            return fail(f"app {app}: missing mode(s) {sorted(missing)}")
        serial = modes["serial"]
        if not serial["reports_exact_match"]:
            return fail(f"app {app}: serial cell must self-match")
        for mode in ("sharded", "distributed"):
            cell = modes[mode]
            # Deterministic apps must reproduce the serial report stream
            # byte-for-byte; TSP's schedule-dependent search only structurally.
            required = (
                cell["reports_structural_match"]
                if app == "TSP"
                else cell["reports_exact_match"]
            )
            if not required:
                return fail(f"app {app}/{mode}: reports diverge from serial")
        if modes["distributed"]["compress"]:
            if (
                serial["bitmap_bytes_raw_per_epoch"] > 0
                and modes["distributed"]["bitmap_bytes_wire_per_epoch"]
                >= serial["bitmap_bytes_wire_per_epoch"]
            ):
                return fail(f"app {app}: compressed-distributed wire bytes not below serial")
    print(f"OK: {len(cells)} detector cells, {len(by_app)} app(s), all checks pass")
    return 0


def check_fig4(cells):
    if not cells:
        return fail("no cells")
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, FIG4_FIELDS)
        if err:
            return fail(err)
        if cell["slowdown"] < 0:
            return fail(f"cell {i}: negative slowdown")
    print(f"OK: {len(cells)} fig4 cells")
    return 0


def check_obs(cells):
    if not cells:
        return fail("no cells")
    by_mode = {}
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, OBS_FIELDS)
        if err:
            return fail(err)
        if cell["mode"] not in OBS_MODES:
            return fail(f"cell {i}: unknown mode '{cell['mode']}'")
        if cell["wall_s"] <= 0 or cell["sim_ms"] <= 0:
            return fail(f"cell {i}: non-positive wall/sim time")
        by_mode[cell["mode"]] = cell
    missing = OBS_MODES - set(by_mode)
    if missing:
        return fail(f"missing mode(s) {sorted(missing)}")
    off, trace, flows = by_mode["off"], by_mode["trace"], by_mode["trace+flows"]
    if off["trace_events"] != 0 or off["flow_events"] != 0:
        return fail("'off' mode recorded trace events")
    if trace["trace_events"] <= 0:
        return fail("'trace' mode recorded no events")
    if trace["flow_events"] != 0:
        return fail("'trace' mode recorded flow events with flows disabled")
    if flows["flow_events"] <= 0:
        return fail("'trace+flows' mode recorded no flow events")
    if flows["trace_events"] < trace["trace_events"]:
        return fail("flow mode recorded fewer events than plain tracing")
    if flows["wall_s"] > OBS_FLOW_OVERHEAD_LIMIT * trace["wall_s"]:
        return fail(
            f"flow tracing overhead {flows['wall_s'] / trace['wall_s']:.2f}x "
            f"exceeds the {OBS_FLOW_OVERHEAD_LIMIT}x budget over plain tracing"
        )
    print(
        f"OK: {len(cells)} obs cells, flow overhead "
        f"{flows['wall_s'] / trace['wall_s']:.2f}x over plain tracing"
    )
    return 0


def check_service(cells):
    if not cells:
        return fail("no cells")
    by_mode = {}
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, SERVICE_FIELDS)
        if err:
            return fail(err)
        if cell["mode"] not in SERVICE_MODES:
            return fail(f"cell {i}: unknown mode '{cell['mode']}'")
        if cell["completed"] != cell["requests"]:
            return fail(
                f"cell {i}: completed {cell['completed']} != requests {cell['requests']}"
            )
        if cell["rejected"] != 0:
            return fail(f"cell {i}: bench run shed {cell['rejected']} request(s)")
        if cell["workloads_per_sec"] <= 0 or cell["total_wall_s"] <= 0:
            return fail(f"cell {i}: non-positive throughput/wall time")
        if not 0 < cell["p50_latency_s"] <= cell["p99_latency_s"]:
            return fail(f"cell {i}: latency percentiles out of order or non-positive")
        by_mode[cell["mode"]] = cell
    missing = SERVICE_MODES - set(by_mode)
    if missing:
        return fail(f"missing mode(s) {sorted(missing)}")
    cold, warm = by_mode["cold"], by_mode["warm"]
    if cold["warm_reuses"] != 0:
        return fail("cold mode reused a fabric")
    if warm["warm_reuses"] <= 0:
        return fail("warm mode never reused a fabric")
    if warm["p50_latency_s"] >= cold["p50_latency_s"]:
        return fail(
            f"warm p50 {warm['p50_latency_s']:.6f}s is not below cold p50 "
            f"{cold['p50_latency_s']:.6f}s"
        )
    print(
        f"OK: {len(cells)} service cells, warm p50 is "
        f"{warm['p50_latency_s'] / cold['p50_latency_s']:.2f}x cold p50"
    )
    return 0


def check_recovery(cells):
    if not cells:
        return fail("no cells")
    by_mode = {}
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, RECOVERY_FIELDS)
        if err:
            return fail(err)
        if cell["mode"] not in RECOVERY_MODES:
            return fail(f"cell {i}: unknown mode '{cell['mode']}'")
        # Recovery never loses work: every request completes, none fail.
        if cell["completed"] != cell["requests"]:
            return fail(
                f"cell {i}: completed {cell['completed']} != requests {cell['requests']}"
            )
        if cell["failed"] != 0:
            return fail(f"cell {i}: {cell['failed']} workload(s) exhausted the retry budget")
        if cell["workloads_per_sec"] <= 0 or cell["total_wall_s"] <= 0:
            return fail(f"cell {i}: non-positive throughput/wall time")
        if cell["p50_latency_s"] <= 0:
            return fail(f"cell {i}: non-positive p50 latency")
        by_mode[cell["mode"]] = cell
    missing = RECOVERY_MODES - set(by_mode)
    if missing:
        return fail(f"missing mode(s) {sorted(missing)}")
    clean, crash = by_mode["clean"], by_mode["crash_reboot"]
    if clean["retried"] != 0 or clean["fabric_rebuilds"] != 0:
        return fail("clean mode retried or rebuilt a fabric")
    # Every crash-mode workload crashes once and reboots: one retry each,
    # each crashed attempt quarantining (and so rebuilding) its fabric.
    if crash["retried"] < crash["requests"]:
        return fail(
            f"crash mode retried only {crash['retried']} of {crash['requests']} workloads"
        )
    if crash["fabric_rebuilds"] <= 0:
        return fail("crash mode never rebuilt a quarantined fabric")
    # Recovery is work (a torn attempt + rebuild + backoff per workload), so
    # it must cost strictly more wall time than the undisturbed run.
    if crash["total_wall_s"] <= clean["total_wall_s"]:
        return fail(
            f"crash-mode wall time {crash['total_wall_s']:.4f}s not above "
            f"clean {clean['total_wall_s']:.4f}s"
        )
    print(
        f"OK: {len(cells)} recovery cells, {crash['retried']} retries, "
        f"crash mode costs {crash['total_wall_s'] / clean['total_wall_s']:.2f}x clean"
    )
    return 0


HOTPATH_TARGETS = {"sse2", "neon", "word"}
HOTPATH_KERNELS = {"compare", "intersect_bits", "set_bits", "diff_make"}
# Kernels that must beat the scalar reference outright: the full-scan
# compare and the twin-vs-page diff, where the word/SIMD win is structural.
# The extraction kernels (intersect_bits/set_bits) are ctz-bound on sparse
# inputs — on the word target both faces run near-identical loops, so they
# only have to not regress beyond codegen/timer noise.
HOTPATH_MUST_WIN = {"compare", "diff_make"}
HOTPATH_NOISE_HEADROOM = 1.25


def check_hotpath(cells):
    if not cells:
        return fail("no cells")
    seen = set()
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, HOTPATH_FIELDS)
        if err:
            return fail(err)
        if cell["kernel"] not in HOTPATH_KERNELS:
            return fail(f"cell {i}: unknown kernel '{cell['kernel']}'")
        if cell["target"] not in HOTPATH_TARGETS:
            return fail(f"cell {i}: unknown target '{cell['target']}'")
        if cell["scalar_ns"] <= 0 or cell["active_ns"] <= 0:
            return fail(f"cell {i}: non-positive kernel time")
        if cell["bytes_per_op"] <= 0:
            return fail(f"cell {i}: non-positive bytes_per_op")
        if not cell["identical_output"]:
            return fail(
                f"kernel {cell['kernel']}: active and scalar faces diverged "
                "(bit-exactness is the contract the parity suites rely on)"
            )
        if cell["kernel"] in HOTPATH_MUST_WIN and cell["active_ns"] > cell["scalar_ns"]:
            return fail(
                f"kernel {cell['kernel']} ({cell['target']}): active "
                f"{cell['active_ns']:.1f}ns is slower than scalar "
                f"{cell['scalar_ns']:.1f}ns"
            )
        if cell["active_ns"] > HOTPATH_NOISE_HEADROOM * cell["scalar_ns"]:
            return fail(
                f"kernel {cell['kernel']}: active face regresses "
                f"{cell['active_ns'] / cell['scalar_ns']:.2f}x over scalar"
            )
        seen.add(cell["kernel"])
    missing = HOTPATH_KERNELS - seen
    if missing:
        return fail(f"missing kernel cell(s) {sorted(missing)}")
    wins = {c["kernel"]: c["speedup"] for c in cells if c["kernel"] in HOTPATH_MUST_WIN}
    print(
        f"OK: {len(cells)} hotpath cells on target "
        f"'{cells[0]['target']}', compare {wins['compare']:.2f}x, "
        f"diff_make {wins['diff_make']:.2f}x over scalar"
    )
    return 0


# The tentpole acceptance bar for the combine-tree barrier: sub-quadratic
# growth. Log-log slope between consecutive swept sizes must stay below 2
# on the tree curves (flat is O(n^2) by construction and is not held to it).
SCALING_EXPONENT_LIMIT = 2.0


def check_scaling(cells):
    if len(cells) < 2:
        return fail("need at least two swept sizes")
    for i, cell in enumerate(cells):
        err = check_fields(cell, i, SCALING_FIELDS)
        if err:
            return fail(err)
        if cell["nodes"] <= 0:
            return fail(f"cell {i}: non-positive node count")
        if not cell["reports_match"]:
            return fail(
                f"cell {i} ({cell['nodes']} nodes): race reports diverge "
                "between flat and tree/batched pipelines"
            )
        if cell["races"] <= 0:
            return fail(f"cell {i}: workload reported no races")
        for name in ("tree_detect_ns_per_epoch", "tree_wire_bytes_per_epoch"):
            if cell[name] <= 0:
                return fail(f"cell {i}: non-positive {name}")
    if [c["nodes"] for c in cells] != sorted(c["nodes"] for c in cells):
        return fail("cells not sorted by node count")
    worst = 0.0
    for prev, cur in zip(cells, cells[1:]):
        ratio = math.log(cur["nodes"] / prev["nodes"])
        for name in ("tree_detect_ns_per_epoch", "tree_wire_bytes_per_epoch"):
            exponent = math.log(cur[name] / prev[name]) / ratio
            worst = max(worst, exponent)
            if exponent >= SCALING_EXPONENT_LIMIT:
                return fail(
                    f"{name} grows with exponent {exponent:.2f} from "
                    f"{prev['nodes']} to {cur['nodes']} nodes (bar: < "
                    f"{SCALING_EXPONENT_LIMIT})"
                )
    print(
        f"OK: {len(cells)} scaling cells "
        f"({cells[0]['nodes']}..{cells[-1]['nodes']} nodes), reports "
        f"identical everywhere, worst tree exponent {worst:.2f}"
    )
    return 0


# Basename -> validator. Every BENCH_*.json a bench writes must appear here.
SCHEMAS = {
    "BENCH_detector.json": check_detector,
    "BENCH_fig4.json": check_fig4,
    "BENCH_hotpath.json": check_hotpath,
    "BENCH_obs.json": check_obs,
    "BENCH_recovery.json": check_recovery,
    "BENCH_scaling.json": check_scaling,
    "BENCH_service.json": check_service,
}


def main():
    args = sys.argv[1:]
    fig4 = "--fig4" in args
    paths = [a for a in args if not a.startswith("--")]
    if len(paths) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = paths[0]
    base = os.path.basename(path)
    if fig4:
        checker = check_fig4
    elif base in SCHEMAS:
        checker = SCHEMAS[base]
    elif base.startswith("BENCH_") and base.endswith(".json"):
        return fail(
            f"unknown bench output '{base}': register its schema in "
            "tools/check_bench_json.py SCHEMAS"
        )
    else:
        # Preserve the historical default for odd names (temp files in tests).
        checker = check_detector
    try:
        with open(path, encoding="utf-8") as f:
            cells = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"cannot load {path}: {e}")
    if not isinstance(cells, list):
        return fail("top level must be a JSON array")
    return checker(cells)


if __name__ == "__main__":
    sys.exit(main())
