#!/usr/bin/env python3
"""Enforces the SIMD-intrinsics isolation rule.

Raw vector intrinsics (SSE2 / NEON headers, `_mm_*` / `v*q_u*` calls, and
the CVM_SIMD_* target macros) live only in src/perf/simd.h and
src/perf/kernels.cc. Everything else — detector, codec, diff machinery,
tests, benches — goes through the portable kernel API in
src/perf/kernels.h, so a new target (AVX2, SVE) is one file's work and the
rest of the tree stays intrinsic-free and portable. This script greps for
intrinsic markers outside the kernel unit and fails listing each offender.
Stdlib only — runs anywhere python3 exists.

Usage: tools/check_simd_isolation.py [repo_root]
"""

import os
import re
import sys

# Intrinsic headers, the SSE (`_mm_`, `_mm256_`, ...) and NEON (`vld1q_`,
# `vceqq_u32(`, ...) call prefixes, and direct tests of the target macros.
INTRINSIC_RE = re.compile(
    r"emmintrin\.h|immintrin\.h|arm_neon\.h"
    r"|\b_mm\d*_\w+\s*\("
    r"|\bv(?:ld1|st1|ceq|max|min|and|orr|dup|get|mvn)q?_\w+\s*\("
    r"|\bCVM_SIMD_(?:SSE2|NEON|SCALAR)\b")

SOURCE_EXTS = (".cc", ".h", ".cpp", ".hpp")
SKIP_DIRS = {".git", "build", "third_party"}
ALLOWED = {
    os.path.join("src", "perf", "simd.h"),
    os.path.join("src", "perf", "kernels.cc"),
    # kernels.h names the macros in comments only, but keeping it allowed
    # lets the dispatch documentation show real spellings.
    os.path.join("src", "perf", "kernels.h"),
}


def source_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(SOURCE_EXTS):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    offenders = []
    checked = 0
    for path in source_files(root):
        rel = os.path.relpath(path, root)
        if rel in ALLOWED:
            continue
        checked += 1
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if INTRINSIC_RE.search(line):
                    offenders.append((rel, lineno, line.strip()))
    if offenders:
        for rel, lineno, line in offenders:
            print(f"ISOLATION VIOLATION: {rel}:{lineno}: {line}", file=sys.stderr)
        print(
            f"{len(offenders)} raw-intrinsic use(s) outside src/perf/ — "
            "add a kernel to src/perf/kernels.h and call that instead",
            file=sys.stderr)
        return 1
    print(f"OK: {checked} file(s), no raw intrinsics outside the kernel unit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
