// critical_path: walks the causal flow graph of an exported trace
// (cvm_run --trace-json=FILE) and prints, per barrier epoch, the longest
// causal chain — which node the epoch's critical path ran on at each step and
// what that time went to (compute, lock wait, diff/page traffic, detection
// rounds, barrier machinery) — plus an obs.critpath.* metrics summary.
//
// The walk is backwards from the epoch's last event: repeatedly find the
// latest flow arrow delivered to the current node before the current time,
// attribute the gap to the current node, and hop to the arrow's sender. The
// resulting segments partition the epoch span by construction, so the chain
// total always reconciles against the epoch's wall of simulated time.
//
// Exits nonzero on unreadable/malformed input and on traces with no flow
// arrows at all (tracing ran without flow events — nothing causal to walk).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "tools/flags.h"
#include "tools/json_mini.h"

namespace {

using cvm::tools::JsonParser;
using cvm::tools::JsonValue;

int Usage() {
  std::printf(
      "usage: critical_path TRACE.json [--epoch=E] [--max-steps=N]\n"
      "\n"
      "Prints the longest causal chain per barrier epoch of a trace exported\n"
      "with cvm_run --trace-json. Requires flow events (on by default when\n"
      "tracing); exits 1 if the trace carries none.\n"
      "\n"
      "  --epoch=E       analyze only epoch E\n"
      "  --max-steps=N   cap printed chain steps per epoch (default 32)\n");
  return 2;
}

// One trace slice or instant on the simulated-time track.
struct Slice {
  int node = 0;
  int epoch = -1;
  double ts_us = 0;
  double dur_us = 0;
  std::string name;
  std::string cat;
};

// One causal arrow: sender (node, time) -> receiver (node, time), from a
// consecutive pair of same-id flow events.
struct FlowEdge {
  int src_node = 0;
  double src_ts_us = 0;
  int dst_node = 0;
  double dst_ts_us = 0;
  std::string kind;  // Payload kind name carried by the flow events.
};

// Time buckets a critical-path segment can resolve to, in claim order:
// overlapping slices of a higher-priority class win the overlap.
enum Phase { kDetect, kLock, kDiff, kBarrier, kCompute, kNumPhases };

const char* PhaseName(int phase) {
  switch (phase) {
    case kDetect:
      return "detect";
    case kLock:
      return "lock";
    case kDiff:
      return "diff";
    case kBarrier:
      return "barrier";
    case kCompute:
      return "compute";
  }
  return "?";
}

int ClassifySlice(const Slice& slice) {
  if (slice.cat == "race" || slice.name.rfind("detector.", 0) == 0) {
    return kDetect;
  }
  if (slice.name == "lock.acquire") {
    return kLock;
  }
  if (slice.cat == "mem" || slice.name.rfind("page.fault", 0) == 0 ||
      slice.name.rfind("diff", 0) == 0) {
    return kDiff;
  }
  if (slice.name == "barrier") {
    return kBarrier;
  }
  return kCompute;
}

// Subtracts [begin, end) slices of one class from the free list, returning
// the microseconds claimed. The free list stays sorted and disjoint.
double ClaimOverlap(std::vector<std::pair<double, double>>& free_list,
                    const std::vector<std::pair<double, double>>& claims) {
  double claimed = 0;
  for (const auto& [cb, ce] : claims) {
    std::vector<std::pair<double, double>> next;
    next.reserve(free_list.size() + 1);
    for (const auto& [fb, fe] : free_list) {
      const double ob = std::max(fb, cb);
      const double oe = std::min(fe, ce);
      if (ob >= oe) {
        next.emplace_back(fb, fe);
        continue;
      }
      claimed += oe - ob;
      if (fb < ob) {
        next.emplace_back(fb, ob);
      }
      if (oe < fe) {
        next.emplace_back(oe, fe);
      }
    }
    free_list = std::move(next);
  }
  return claimed;
}

struct ChainStep {
  int node = 0;
  double begin_us = 0;
  double end_us = 0;
  std::string via;   // Payload kind of the arrow that started this segment.
  double net_us = 0; // Flight time of that arrow (send -> arrival).
  double phase_us[kNumPhases] = {};
};

}  // namespace

int main(int argc, char** argv) {
  cvm::tools::Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }
  for (const std::string& key : flags.UnknownKeys({"epoch", "max-steps", "trace", "help"})) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
    return Usage();
  }
  if (flags.GetBool("help", false)) {
    return Usage();
  }
  std::string path = flags.GetString("trace", "");
  if (path.empty() && !flags.positional().empty()) {
    path = flags.positional().front();
  }
  if (path.empty()) {
    return Usage();
  }

  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  JsonValue root;
  if (!JsonParser::Parse(text, &root, &error)) {
    std::fprintf(stderr, "error: %s: malformed trace JSON: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  const JsonValue& events = root.at("traceEvents");
  if (!events.is_array()) {
    std::fprintf(stderr, "error: %s: no traceEvents array\n", path.c_str());
    return 1;
  }

  // Split the simulated-time track (pid 0) into slices and flow steps. Flow
  // steps group by id; consecutive same-id steps in timestamp order are the
  // causal arrows.
  struct FlowStep {
    int node = 0;
    double ts_us = 0;
    std::string name;
  };
  std::vector<Slice> slices;
  std::map<std::string, std::vector<FlowStep>> flows;
  for (const JsonValue& e : events.array) {
    const std::string ph = e.at("ph").str_or("");
    if (ph == "M" || e.at("pid").num_or(-1) != 0) {
      continue;
    }
    const int node = static_cast<int>(e.at("tid").num_or(0));
    const double ts = e.at("ts").num_or(0);
    if (ph == "s" || ph == "t" || ph == "f") {
      flows[e.at("id").str_or("")].push_back(FlowStep{node, ts, e.at("name").str_or("?")});
      continue;
    }
    if (ph != "X" && ph != "i") {
      continue;
    }
    Slice slice;
    slice.node = node;
    slice.ts_us = ts;
    slice.dur_us = e.at("dur").num_or(0);
    slice.name = e.at("name").str_or("");
    slice.cat = e.at("cat").str_or("");
    slice.epoch = static_cast<int>(e.at("args").at("epoch").num_or(-1));
    slices.push_back(std::move(slice));
  }

  std::vector<FlowEdge> edges;
  for (auto& [id, steps] : flows) {
    std::stable_sort(steps.begin(), steps.end(),
                     [](const FlowStep& a, const FlowStep& b) { return a.ts_us < b.ts_us; });
    for (size_t i = 0; i + 1 < steps.size(); ++i) {
      edges.push_back(FlowEdge{steps[i].node, steps[i].ts_us, steps[i + 1].node,
                               steps[i + 1].ts_us, steps[i + 1].name});
    }
  }
  if (edges.empty()) {
    std::fprintf(stderr,
                 "error: %s: no causal flow arrows on the simulated track "
                 "(was the trace recorded with flow events?)\n",
                 path.c_str());
    return 1;
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const FlowEdge& a, const FlowEdge& b) { return a.dst_ts_us < b.dst_ts_us; });

  // Per-epoch windows from the epoch-tagged slices.
  struct Window {
    double begin_us = 0;
    double end_us = 0;
    int end_node = 0;
  };
  std::map<int, Window> epochs;
  for (const Slice& slice : slices) {
    if (slice.epoch < 0) {
      continue;
    }
    auto [it, inserted] = epochs.emplace(
        slice.epoch, Window{slice.ts_us, slice.ts_us + slice.dur_us, slice.node});
    if (inserted) {
      continue;
    }
    Window& w = it->second;
    w.begin_us = std::min(w.begin_us, slice.ts_us);
    if (slice.ts_us + slice.dur_us > w.end_us) {
      w.end_us = slice.ts_us + slice.dur_us;
      w.end_node = slice.node;
    }
  }
  if (epochs.empty()) {
    std::fprintf(stderr, "error: %s: no epoch-tagged events\n", path.c_str());
    return 1;
  }

  const bool only_one = flags.Has("epoch");
  const int only_epoch = static_cast<int>(flags.GetInt("epoch", -1));
  const int max_steps = static_cast<int>(flags.GetInt("max-steps", 32));

  for (const auto& [epoch, window] : epochs) {
    if (only_one && epoch != only_epoch) {
      continue;
    }
    // Backward walk from the epoch's last event.
    std::vector<ChainStep> chain;
    int cur_node = window.end_node;
    double cur_t = window.end_us;
    while (cur_t > window.begin_us) {
      // Latest arrow into the current node strictly before cur_t (arrival at
      // exactly cur_t would make an empty segment and no progress).
      const FlowEdge* best = nullptr;
      for (const FlowEdge& edge : edges) {
        if (edge.dst_node != cur_node || edge.dst_ts_us >= cur_t ||
            edge.dst_ts_us < window.begin_us || edge.src_ts_us > edge.dst_ts_us) {
          continue;
        }
        if (best == nullptr || edge.dst_ts_us > best->dst_ts_us) {
          best = &edge;
        }
      }
      ChainStep step;
      step.node = cur_node;
      step.end_us = cur_t;
      if (best == nullptr) {
        step.begin_us = window.begin_us;
        chain.push_back(step);
        break;
      }
      step.begin_us = best->dst_ts_us;
      step.via = best->kind;
      // The arrow's flight time is critical-path time too: without it the
      // chain total would undercount the epoch span by every hop's message
      // latency. Clamped to the window for arrows sent in a prior epoch.
      const double send_us = std::max(best->src_ts_us, window.begin_us);
      step.net_us = best->dst_ts_us - send_us;
      chain.push_back(step);
      cur_node = best->src_node;
      const double next_t = std::min(cur_t, send_us);
      if (next_t == cur_t) {
        break;  // No progress possible; degenerate self-arrow.
      }
      cur_t = next_t;
    }
    std::reverse(chain.begin(), chain.end());

    // Attribute each segment's time by overlapping slices, priority order.
    double phase_total[kNumPhases] = {};
    double net_total = 0;
    for (ChainStep& step : chain) {
      std::vector<std::pair<double, double>> free_list = {{step.begin_us, step.end_us}};
      for (int phase = 0; phase < kCompute; ++phase) {
        std::vector<std::pair<double, double>> claims;
        for (const Slice& slice : slices) {
          if (slice.node != step.node || slice.dur_us <= 0 || ClassifySlice(slice) != phase) {
            continue;
          }
          claims.emplace_back(slice.ts_us, slice.ts_us + slice.dur_us);
        }
        step.phase_us[phase] = ClaimOverlap(free_list, claims);
      }
      for (const auto& [fb, fe] : free_list) {
        step.phase_us[kCompute] += fe - fb;  // Unclaimed time = computation.
      }
      for (int phase = 0; phase < kNumPhases; ++phase) {
        phase_total[phase] += step.phase_us[phase];
      }
      net_total += step.net_us;
    }

    double chain_total = net_total;
    for (const ChainStep& step : chain) {
      chain_total += step.end_us - step.begin_us;
    }
    const double span = window.end_us - window.begin_us;

    std::printf("epoch %d: span %.1f us, critical path %.1f us over %zu hop(s)\n", epoch, span,
                chain_total, chain.size());
    int printed = 0;
    for (const ChainStep& step : chain) {
      if (printed++ >= max_steps) {
        std::printf("  ... (%zu more steps)\n", chain.size() - static_cast<size_t>(max_steps));
        break;
      }
      std::printf("  node %d  %9.1f us", step.node, step.end_us - step.begin_us);
      for (int phase = 0; phase < kNumPhases; ++phase) {
        if (step.phase_us[phase] > 0.05) {
          std::printf("  %s %.1f", PhaseName(phase), step.phase_us[phase]);
        }
      }
      if (!step.via.empty()) {
        std::printf("  [arrived via %s, %.1f us on the wire]", step.via.c_str(), step.net_us);
      }
      std::printf("\n");
    }
    std::printf("  obs.critpath.total_us %.1f\n", chain_total);
    std::printf("  obs.critpath.span_us %.1f\n", span);
    std::printf("  obs.critpath.hops %zu\n", chain.size());
    for (int phase = 0; phase < kNumPhases; ++phase) {
      std::printf("  obs.critpath.%s_us %.1f\n", PhaseName(phase), phase_total[phase]);
    }
    std::printf("  obs.critpath.net_us %.1f\n", net_total);
  }
  return 0;
}
