#!/usr/bin/env python3
"""Flag-validation sweep for the cvm command-line tools.

Runs the given binaries with a battery of malformed flag values and asserts
each one exits nonzero *with a mention of the offending flag* on stderr —
no silent clamping, no crash deep inside the run. A couple of known-good
invocations guard against the opposite failure (validation so strict the
tool rejects legal input). Registered as a ctest; stdlib only.

Usage: tools/check_cli_validation.py CVM_RUN_BINARY [CVM_SERVE_BINARY]
"""

import subprocess
import sys

TIMEOUT_S = 120

# (argv, substring that stderr/stdout must mention). Every case must exit
# nonzero. Cases use a tiny app config so even a bug that lets the run start
# finishes quickly instead of hanging the sweep.
BAD_RUN_CASES = [
    (["--app=sor", "--size=16", "--nodes=2", "--detect-shards=0"], "detect-shards"),
    (["--app=sor", "--size=16", "--nodes=2", "--detect-shards=-2"], "detect-shards"),
    (["--app=sor", "--size=16", "--nodes=0"], "nodes"),
    (["--app=sor", "--size=16", "--nodes=-3"], "nodes"),
    (["--app=sor", "--size=16", "--nodes=2", "--page-size=1000"], "page-size"),
    (["--app=sor", "--size=16", "--nodes=2", "--page-size=32"], "page-size"),
    (["--app=sor", "--size=16", "--nodes=2", "--metrics-interval=0",
      "--metrics-out=/dev/null"], "metrics-interval"),
    (["--app=sor", "--size=16", "--nodes=2", "--pipeline=bogus"], "pipeline"),
    (["--app=sor", "--size=16", "--nodes=2", "--protocol=bogus"], "protocol"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-profile=bogus"], "fault profile"),
    # The unknown-profile error must list the valid names (stress stands in
    # for "the list is actually there").
    (["--app=sor", "--size=16", "--nodes=2", "--fault-profile=bogus"], "stress"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-max-attempts=0"],
     "fault-max-attempts"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-max-attempts=-1"],
     "fault-max-attempts"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-profile=crash",
      "--fault-crash-node=99"], "fault-crash-node"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-profile=crash",
      "--fault-crash-node=-1"], "fault-crash-node"),
    # crash-node without an armed crash is a no-op waiting to be mistaken for
    # coverage; reject it.
    (["--app=sor", "--size=16", "--nodes=2", "--fault-crash-node=1"],
     "fault-crash-node"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-crash-epoch=-2"],
     "fault-crash-epoch"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-profile=lossy",
      "--fault-drop=1.5"], "fault-drop"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-profile=lossy",
      "--fault-drop=-0.1"], "fault-drop"),
    (["--app=sor", "--size=16", "--nodes=2", "--fault-profile=lossy",
      "--fault-drop=0.1x"], "fault-drop"),
    (["--app=sor", "--size=16", "--nodes=2", "--trace-sample=0",
      "--trace-json=/dev/null"], "trace-sample"),
    (["--app=nosuchapp"], "app"),
    (["--app=sor", "--size=16", "--nodes=2", "--frobnicate"], "frobnicate"),
    # Hierarchical-barrier / batched-detection flags: shard and fanout counts
    # are bounded by the cluster size; a batch of zero epochs is meaningless.
    (["--app=sor", "--size=16", "--nodes=2", "--detect-shards=9"], "detect-shards"),
    (["--app=sor", "--size=16", "--nodes=2", "--detect-batch=0"], "detect-batch"),
    (["--app=sor", "--size=16", "--nodes=2", "--detect-batch=-4"], "detect-batch"),
    (["--app=sor", "--size=16", "--nodes=2", "--barrier-tree",
      "--barrier-fanout=0"], "barrier-fanout"),
    (["--app=sor", "--size=16", "--nodes=2", "--barrier-tree",
      "--barrier-fanout=9"], "barrier-fanout"),
]

GOOD_RUN_CASES = [
    ["--app=sor", "--size=16", "--nodes=2"],
    ["--app=sor", "--size=16", "--nodes=2", "--pipeline=sharded", "--detect-shards=2"],
    # A seeded crash run must complete and exit 0 — recovery, not abort.
    ["--app=sor", "--size=16", "--nodes=2", "--fault-profile=crash", "--seed=3"],
    ["--app=sor", "--size=16", "--nodes=2", "--fault-profile=crash",
     "--fault-crash-node=1", "--fault-crash-epoch=1", "--fault-crash-reboot"],
    # The tree barrier with batching and interning on a legal fanout; the
    # default fanout (4) must also pass at 2 nodes (degenerates to a star).
    ["--app=sor", "--size=16", "--nodes=2", "--barrier-tree", "--barrier-fanout=2",
     "--detect-batch=2", "--intern-bitmaps"],
    ["--app=sor", "--size=16", "--nodes=2", "--barrier-tree"],
]

BAD_SERVE_CASES = [
    (["--script=/dev/null", "--workers=0"], "workers"),
    (["--script=/dev/null", "--policy=round-robin"], "policy"),
    (["--script=/dev/null", "--pipeline=bogus"], "pipeline"),
    (["--script=/dev/null", "--protocol=bogus"], "protocol"),
    (["--script=/dev/null", "--retry-budget=-1"], "retry-budget"),
    (["--script=/dev/null", "--retry-budget=1000"], "retry-budget"),
    (["--script=/dev/null", "--frobnicate"], "frobnicate"),
    (["--script=/dev/null", "--nodes=2", "--detect-shards=9"], "detect-shards"),
    (["--script=/dev/null", "--nodes=2", "--detect-shards=0"], "detect-shards"),
    (["--script=/dev/null", "--nodes=2", "--detect-batch=0"], "detect-batch"),
    (["--script=/dev/null", "--nodes=2", "--barrier-tree", "--barrier-fanout=0"],
     "barrier-fanout"),
    (["--script=/dev/null", "--nodes=2", "--barrier-tree", "--barrier-fanout=9"],
     "barrier-fanout"),
]

GOOD_SERVE_CASES = [
    ["--script=/dev/null", "--workers=1", "--nodes=2"],
    ["--script=/dev/null", "--workers=1", "--nodes=2", "--barrier-tree",
     "--barrier-fanout=2", "--detect-batch=2", "--intern-bitmaps"],
]


def run(binary, argv):
    return subprocess.run(
        [binary] + argv,
        capture_output=True,
        text=True,
        timeout=TIMEOUT_S,
        check=False,
    )


def sweep(binary, bad_cases, good_cases):
    failures = 0
    for argv, mention in bad_cases:
        proc = run(binary, argv)
        output = proc.stdout + proc.stderr
        if proc.returncode == 0:
            print(f"FAIL: {' '.join(argv)}: accepted (exit 0)", file=sys.stderr)
            failures += 1
        elif mention not in output:
            print(
                f"FAIL: {' '.join(argv)}: error does not mention '{mention}':\n"
                f"{output.strip()}",
                file=sys.stderr,
            )
            failures += 1
    for argv in good_cases:
        proc = run(binary, argv)
        if proc.returncode != 0:
            print(
                f"FAIL: {' '.join(argv)}: legal invocation rejected "
                f"(exit {proc.returncode}):\n{(proc.stdout + proc.stderr).strip()}",
                file=sys.stderr,
            )
            failures += 1
    return failures


def main():
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    failures = sweep(sys.argv[1], BAD_RUN_CASES, GOOD_RUN_CASES)
    checked = len(BAD_RUN_CASES) + len(GOOD_RUN_CASES)
    if len(sys.argv) > 2:
        failures += sweep(sys.argv[2], BAD_SERVE_CASES, GOOD_SERVE_CASES)
        checked += len(BAD_SERVE_CASES) + len(GOOD_SERVE_CASES)
    if failures:
        print(f"{failures} of {checked} CLI validation case(s) failed", file=sys.stderr)
        return 1
    print(f"OK: {checked} CLI validation cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
