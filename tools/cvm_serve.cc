// cvm_serve: the always-on face of the simulator (docs/SERVICE.md). Starts a
// DsmService — a pool of warm DSM fabrics behind an admission-controlled
// queue — and feeds it workload requests read from a script file (or stdin),
// one request per line:
//
//   submit tenant=alpha app=fft size=32
//   submit tenant=chaos app=water fault=lossy drop=0.05
//   drain                      # wait for everything submitted so far
//   # comments and blank lines are ignored
//
// Prints a per-tenant service report and exits nonzero if any workload
// failed verification or saw unhandled protocol messages.
//
// Examples:
//   cvm_serve --script=requests.txt --workers=2 --policy=fair
//   echo "submit tenant=t app=sor" | cvm_serve
//   cvm_serve --script=r.txt --cold        # fresh fabric per workload
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/svc/service.h"
#include "tools/flags.h"

namespace {

using namespace cvm;

int Usage() {
  std::printf(
      "usage: cvm_serve [--script=FILE] [options]\n"
      "\n"
      "Reads workload requests from FILE (default: stdin), one per line:\n"
      "  submit tenant=ID app={fft|sor|tsp|water|lu} [size=N] [seed=N]\n"
      "         [fault={off|lossy|bursty|partition|stress|crash}] [drop=P]\n"
      "         [reboot=0|1]   # crash is transient; retries run crash-free\n"
      "  drain                # wait for everything submitted so far\n"
      "Lines starting with '#' and blank lines are ignored.\n"
      "\n"
      "options:\n"
      "  --workers=N          warm fabrics serving the queue (default 2)\n"
      "  --retry-budget=N     crash-failed workload retries before giving up\n"
      "                       (default 2; docs/FAULTS.md)\n"
      "  --nodes=N            DSM nodes per fabric (default 4)\n"
      "  --protocol=P         lazy | multi | eager (default lazy)\n"
      "  --pipeline=P         serial | sharded | distributed (default serial)\n"
      "  --detect-shards=N    check-list build workers, 1 <= N <= nodes\n"
      "                       (default: auto-sized)\n"
      "  --detect-batch=N     bitmap/compare rounds once per N epochs (default 1)\n"
      "  --barrier-tree       k-ary combine-tree barrier (default: flat)\n"
      "  --barrier-fanout=K   combine-tree fanout, 1 <= K <= nodes (default 4)\n"
      "  --intern-bitmaps     ship 'same-as-last-epoch' bitmap tokens\n"
      "  --policy=P           fifo | fair (default fifo)\n"
      "  --queue-cap=N        admission queue capacity (default 64)\n"
      "  --tenant-cap=N       per-tenant concurrent workloads (default 2)\n"
      "  --max-tenants=N      tenant table size (default 8)\n"
      "  --cold               fresh fabric per workload (cold baseline)\n"
      "  --metrics-out=FILE   service metrics (CSV, or JSON if FILE ends .json)\n"
      "  --trace-json=FILE    per-tenant workload spans (Chrome/Perfetto JSON)\n"
      "  --outcomes-json=FILE machine-readable outcome list\n");
  return 2;
}

// `submit key=value ...` body -> request; false + error on a bad line.
bool ParseSubmit(const std::vector<std::string>& tokens, svc::WorkloadRequest* request,
                 std::string* error) {
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = "malformed token '" + token + "' (want key=value)";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "tenant") {
      request->tenant = value;
    } else if (key == "app") {
      request->app = value;
    } else if (key == "size") {
      request->size = std::atoll(value.c_str());
    } else if (key == "seed") {
      request->seed = static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (key == "fault") {
      const auto profile = fault::ParseProfile(value);
      if (!profile.has_value()) {
        *error = "unknown fault profile '" + value + "' (valid: " +
                 fault::ValidProfileNames() + ")";
        return false;
      }
      request->fault_profile = *profile;
    } else if (key == "reboot") {
      if (value != "0" && value != "1") {
        *error = "reboot=" + value + " must be 0 or 1";
        return false;
      }
      request->fault_crash_reboot = value == "1";
    } else if (key == "drop") {
      char* end = nullptr;
      const double drop = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0' || drop < 0.0 || drop > 1.0) {
        *error = "drop=" + value + " is not a probability in [0, 1]";
        return false;
      }
      request->fault_drop = drop;
    } else {
      *error = "unknown key '" + key + "'";
      return false;
    }
  }
  if (request->tenant.empty() || request->app.empty()) {
    *error = "submit needs tenant= and app=";
    return false;
  }
  return true;
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0;
  }
  std::sort(sorted.begin(), sorted.end());
  const size_t index = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }
  const std::vector<std::string> accepted = {
      "script", "workers", "nodes", "protocol", "pipeline", "policy",
      "detect-shards", "detect-batch", "barrier-tree", "barrier-fanout",
      "intern-bitmaps", "queue-cap", "tenant-cap", "max-tenants", "cold",
      "retry-budget", "metrics-out", "trace-json", "outcomes-json", "help"};
  for (const std::string& key : flags.UnknownKeys(accepted)) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
    return Usage();
  }
  if (flags.GetBool("help", false)) {
    return Usage();
  }

  svc::ServiceConfig config;
  config.workers = static_cast<int>(flags.GetInt("workers", 2));
  config.nodes = static_cast<int>(flags.GetInt("nodes", 4));
  config.queue_capacity = static_cast<size_t>(flags.GetInt("queue-cap", 64));
  config.per_tenant_cap = static_cast<int>(flags.GetInt("tenant-cap", 2));
  config.max_tenants = static_cast<size_t>(flags.GetInt("max-tenants", 8));
  config.warm = !flags.GetBool("cold", false);
  if (config.workers < 1 || config.nodes < 1 || config.queue_capacity < 1 ||
      config.per_tenant_cap < 1 || config.max_tenants < 1) {
    std::fprintf(stderr, "error: --workers/--nodes/--queue-cap/--tenant-cap/"
                         "--max-tenants must all be at least 1\n");
    return Usage();
  }
  const int64_t retry_budget = flags.GetInt("retry-budget", 2);
  if (retry_budget < 0 || retry_budget > 64) {
    std::fprintf(stderr, "error: --retry-budget=%lld must be in [0, 64]\n",
                 static_cast<long long>(retry_budget));
    return Usage();
  }
  config.retry_budget = static_cast<int>(retry_budget);

  const std::string protocol = flags.GetString("protocol", "lazy");
  if (protocol == "lazy") {
    config.protocol = ProtocolKind::kSingleWriterLrc;
  } else if (protocol == "multi") {
    config.protocol = ProtocolKind::kMultiWriterHomeLrc;
  } else if (protocol == "eager") {
    config.protocol = ProtocolKind::kEagerRcInvalidate;
  } else {
    std::fprintf(stderr, "error: unknown protocol '%s'\n", protocol.c_str());
    return Usage();
  }
  const std::string pipeline = flags.GetString("pipeline", "serial");
  if (pipeline == "serial") {
    config.pipeline = DetectionPipeline::kSerial;
  } else if (pipeline == "sharded") {
    config.pipeline = DetectionPipeline::kSharded;
  } else if (pipeline == "distributed") {
    config.pipeline = DetectionPipeline::kDistributed;
  } else {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", pipeline.c_str());
    return Usage();
  }
  // Same detection/barrier knob validation as cvm_run, against the per-fabric
  // node count every tenant's runs will use.
  if (flags.Has("detect-shards")) {
    const int64_t shards = flags.GetInt("detect-shards", 0);
    if (shards < 1 || shards > config.nodes) {
      std::fprintf(stderr,
                   "error: --detect-shards=%lld must be in [1, --nodes=%d] "
                   "(omit the flag for auto-sizing)\n",
                   static_cast<long long>(shards), config.nodes);
      return Usage();
    }
    config.detect_shards = static_cast<int>(shards);
  }
  const int64_t detect_batch = flags.GetInt("detect-batch", 1);
  if (detect_batch < 1) {
    std::fprintf(stderr, "error: --detect-batch=%lld must be at least 1 (1 = unbatched)\n",
                 static_cast<long long>(detect_batch));
    return Usage();
  }
  config.detect_batch = static_cast<int>(detect_batch);
  config.barrier_tree = flags.GetBool("barrier-tree", false);
  const int64_t fanout = flags.GetInt("barrier-fanout", 4);
  if (flags.Has("barrier-fanout") && (fanout < 1 || fanout > config.nodes)) {
    std::fprintf(stderr, "error: --barrier-fanout=%lld must be in [1, --nodes=%d]\n",
                 static_cast<long long>(fanout), config.nodes);
    return Usage();
  }
  config.barrier_fanout = static_cast<int>(fanout);
  config.intern_bitmaps = flags.GetBool("intern-bitmaps", false);
  const auto policy = svc::ParsePolicy(flags.GetString("policy", "fifo"));
  if (!policy.has_value()) {
    std::fprintf(stderr, "error: unknown policy '%s' (fifo | fair)\n",
                 flags.GetString("policy", "fifo").c_str());
    return Usage();
  }
  config.policy = *policy;

  std::ifstream script_file;
  std::istream* input = &std::cin;
  if (flags.Has("script")) {
    script_file.open(flags.GetString("script", ""));
    if (!script_file) {
      std::fprintf(stderr, "error: cannot read script %s\n",
                   flags.GetString("script", "").c_str());
      return 1;
    }
    input = &script_file;
  }

  svc::DsmService service(config);
  service.Start();
  std::printf("cvm_serve: %d %s worker(s) x %d nodes, policy %s, protocol %s\n",
              config.workers, config.warm ? "warm" : "cold", config.nodes,
              svc::PolicyName(config.policy), protocol.c_str());

  int bad_lines = 0;
  std::string line;
  int line_no = 0;
  while (std::getline(*input, line)) {
    ++line_no;
    std::istringstream stream(line);
    std::vector<std::string> tokens;
    std::string token;
    while (stream >> token) {
      tokens.push_back(token);
    }
    if (tokens.empty() || tokens[0][0] == '#') {
      continue;
    }
    if (tokens[0] == "drain") {
      service.Drain();
      continue;
    }
    if (tokens[0] != "submit") {
      std::fprintf(stderr, "line %d: unknown command '%s'\n", line_no, tokens[0].c_str());
      ++bad_lines;
      continue;
    }
    svc::WorkloadRequest request;
    if (!ParseSubmit(tokens, &request, &error)) {
      std::fprintf(stderr, "line %d: %s\n", line_no, error.c_str());
      ++bad_lines;
      continue;
    }
    std::string reason;
    const uint64_t id = service.Submit(request, &reason);
    if (id == 0) {
      std::printf("rejected tenant=%s app=%s: %s\n", request.tenant.c_str(),
                  request.app.c_str(), reason.c_str());
    }
  }
  service.Drain();
  service.Stop();

  const std::vector<svc::WorkloadOutcome> outcomes = service.outcomes();
  const auto tenants = service.scheduler().tenant_counts();
  const svc::SchedulerStats stats = service.scheduler().stats();

  TablePrinter table({"Tenant", "Admitted", "Rejected", "Completed", "Retried",
                      "Failed", "Races", "Verified", "p50 ms", "Warm"});
  int unverified = 0;
  int crash_failed = 0;
  uint64_t unhandled = 0;
  for (const auto& [tenant, counts] : tenants) {
    uint64_t races = 0;
    uint64_t warm = 0;
    uint64_t failed = 0;
    bool all_verified = true;
    std::vector<double> latencies;
    for (const svc::WorkloadOutcome& outcome : outcomes) {
      if (outcome.request.tenant != tenant) {
        continue;
      }
      races += outcome.races.size();
      warm += outcome.warm_reuse ? 1 : 0;
      failed += outcome.failed ? 1 : 0;
      all_verified = all_verified && outcome.verified;
      latencies.push_back(outcome.service_s);
    }
    table.AddRow({tenant, std::to_string(counts.admitted), std::to_string(counts.rejected),
                  std::to_string(counts.completed), std::to_string(counts.retried),
                  std::to_string(failed), std::to_string(races),
                  all_verified ? "yes" : "NO",
                  std::to_string(Percentile(latencies, 0.5) * 1e3),
                  std::to_string(warm) + "/" + std::to_string(counts.completed)});
  }
  for (const svc::WorkloadOutcome& outcome : outcomes) {
    unverified += outcome.verified ? 0 : 1;
    crash_failed += outcome.failed ? 1 : 0;
    unhandled += outcome.dispatch_unhandled;
  }
  table.Print();
  std::printf("served %lu of %lu submitted (%lu rejected, %lu retried, %d bad lines), "
              "%d unverified, %d crash-failed, %lu unhandled messages\n",
              static_cast<unsigned long>(stats.completed),
              static_cast<unsigned long>(stats.submitted),
              static_cast<unsigned long>(stats.rejected),
              static_cast<unsigned long>(stats.retried), bad_lines, unverified,
              crash_failed, static_cast<unsigned long>(unhandled));

  if (flags.Has("metrics-out") && service.metrics() != nullptr) {
    // The service never snapshots on its own (no shared barrier clock); one
    // final snapshot turns the cumulative registry into a one-row table.
    service.metrics()->SnapshotEpoch(0, 0);
    const std::string path = flags.GetString("metrics-out", "");
    const bool as_json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
    const bool ok = as_json ? service.metrics()->WriteJson(path)
                            : service.metrics()->WriteCsv(path);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
      return 1;
    }
    std::printf("metrics written: %s\n", path.c_str());
  }
  if (flags.Has("trace-json") && service.tracer() != nullptr) {
    const std::string path = flags.GetString("trace-json", "");
    if (!service.tracer()->WriteChromeJson(path)) {
      std::fprintf(stderr, "error: cannot write trace JSON to %s\n", path.c_str());
      return 1;
    }
    std::printf("trace JSON written: %s (%lu spans)\n", path.c_str(),
                static_cast<unsigned long>(service.tracer()->TotalEmitted()));
  }
  if (flags.Has("outcomes-json")) {
    const std::string path = flags.GetString("outcomes-json", "");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write outcomes JSON to %s\n", path.c_str());
      return 1;
    }
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const svc::WorkloadOutcome& o = outcomes[i];
      std::fprintf(f,
                   "  {\"id\": %lu, \"tenant\": \"%s\", \"app\": \"%s\", \"worker\": %d, "
                   "\"warm\": %s, \"verified\": %s, \"races\": %zu, "
                   "\"attempts\": %u, \"crashed\": %s, \"failed\": %s, "
                   "\"dispatch_unhandled\": %lu, \"queue_s\": %.6f, \"service_s\": %.6f, "
                   "\"total_s\": %.6f, \"sim_time_ns\": %.1f}%s\n",
                   static_cast<unsigned long>(o.request.id), o.request.tenant.c_str(),
                   o.request.app.c_str(), o.worker, o.warm_reuse ? "true" : "false",
                   o.verified ? "true" : "false", o.races.size(), o.attempts,
                   o.recovery.crashed ? "true" : "false", o.failed ? "true" : "false",
                   static_cast<unsigned long>(o.dispatch_unhandled), o.queue_s,
                   o.service_s, o.total_s, o.sim_time_ns,
                   i + 1 < outcomes.size() ? "," : "");
    }
    const bool ok = std::fprintf(f, "]\n") > 0;
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "error: cannot write outcomes JSON to %s\n", path.c_str());
      return 1;
    }
    std::printf("outcomes JSON written: %s (%zu outcomes)\n", path.c_str(), outcomes.size());
  }

  return (unverified == 0 && unhandled == 0 && bad_lines == 0) ? 0 : 1;
}
