#!/usr/bin/env python3
"""Checks intra-repo markdown links in README.md and docs/.

Scans every markdown file for [text](target) links, ignores external URLs
(http/https/mailto) and pure #fragments, and verifies that relative targets
resolve to a file or directory in the repository. Exits non-zero listing
every dead link. Stdlib only — runs anywhere python3 exists.

Usage: tools/check_doc_links.py [repo_root]
"""

import os
import re
import sys

# [text](target) — target captured up to the first unescaped ')'. Markdown
# images ![alt](src) match too, which is what we want.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root):
    files = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            if name.endswith(".md"):
                files.append(os.path.join(docs_dir, name))
    return [f for f in files if os.path.isfile(f)]


def strip_code_blocks(text):
    """Removes fenced code blocks so example snippets aren't link-checked."""
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_file(path, root):
    errors = []
    with open(path, encoding="utf-8") as f:
        text = strip_code_blocks(f.read())
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        # Drop any #fragment; resolve relative to the linking file.
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = os.path.normpath(os.path.join(os.path.dirname(path), rel))
        if not os.path.exists(resolved):
            errors.append((os.path.relpath(path, root), target))
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    files = doc_files(root)
    if not files:
        print(f"error: no markdown files found under {root}", file=sys.stderr)
        return 2
    all_errors = []
    for path in files:
        all_errors.extend(check_file(path, root))
    if all_errors:
        for source, target in all_errors:
            print(f"DEAD LINK: {source} -> {target}", file=sys.stderr)
        print(f"{len(all_errors)} dead link(s) in {len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(files)} file(s), all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
