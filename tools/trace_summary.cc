// trace_summary: offline companion to cvm_run's observability outputs.
//
// Three modes:
//   trace_summary --metrics=m.csv       per-epoch overhead table (Figure 3's
//                                       buckets), from a --metrics-out CSV
//   trace_summary --trace-json=t.json   event-name census of a --trace-json
//                                       Chrome trace file
//   trace_summary --race-explain=r.json pretty-print the causal provenance
//                                       of races from a --races-json file
//
// Examples:
//   cvm_run --app=tsp --nodes=8 --metrics-out=m.csv --trace-json=t.json
//   trace_summary --metrics=m.csv
//   trace_summary --trace-json=t.json
//   cvm_run --app=water --nodes=4 --races-json=r.json
//   trace_summary --race-explain=r.json
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/table.h"
#include "src/sim/cost_model.h"
#include "tools/flags.h"
#include "tools/json_mini.h"

namespace {

using namespace cvm;

int Usage() {
  std::printf(
      "usage: trace_summary --metrics=FILE      per-epoch Figure-3 overhead table\n"
      "       trace_summary --trace-json=FILE   event-name counts from a trace\n"
      "       trace_summary --race-explain=FILE causal provenance of race reports\n"
      "\n"
      "Inputs are the files written by cvm_run --metrics-out / --trace-json /\n"
      "--races-json (see docs/OBSERVABILITY.md and docs/DETECTOR.md).\n");
  return 2;
}

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) {
    cells.push_back(cell);
  }
  if (!line.empty() && line.back() == ',') {
    cells.emplace_back();
  }
  return cells;
}

// Per-epoch overhead table from a metrics CSV: one row per snapshot, one
// column per Figure-3 bucket (the overhead.*_ns counters each node publishes
// at barriers), plus the detection total and its share of simulated time.
int SummarizeMetrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read metrics file %s\n", path.c_str());
    return 1;
  }
  std::string line;
  if (!std::getline(in, line)) {
    std::fprintf(stderr, "error: metrics file %s is empty\n", path.c_str());
    return 1;
  }
  const std::vector<std::string> header = SplitCsvLine(line);
  std::map<std::string, size_t> column;
  for (size_t i = 0; i < header.size(); ++i) {
    column[header[i]] = i;
  }
  // A metrics CSV always carries these two columns; their absence means the
  // file is not a cvm_run metrics file (or its header line was cut short).
  for (const char* required : {"epoch", "sim_time_ns"}) {
    if (column.find(required) == column.end()) {
      std::fprintf(stderr,
                   "error: %s is not a metrics CSV (missing '%s' column; "
                   "expected a file written by cvm_run --metrics-out)\n",
                   path.c_str(), required);
      return 1;
    }
  }

  // Figure 3's overhead buckets, excluding kNone (base work).
  std::vector<Bucket> buckets;
  std::vector<std::string> headers = {"Epoch"};
  for (int b = 0; b < kNumBuckets; ++b) {
    const Bucket bucket = static_cast<Bucket>(b);
    buckets.push_back(bucket);
    headers.emplace_back(BucketName(bucket));
  }
  headers.emplace_back("Total ms");
  headers.emplace_back("Sim ms");
  headers.emplace_back("Overhead %");

  auto cell_value = [&column](const std::vector<std::string>& cells,
                              const std::string& name) -> double {
    auto it = column.find(name);
    if (it == column.end() || it->second >= cells.size() || cells[it->second].empty()) {
      return 0;
    }
    try {
      return std::stod(cells[it->second]);
    } catch (...) {
      return 0;
    }
  };

  TablePrinter table(headers);
  size_t rows = 0;
  size_t line_number = 1;  // Header was line 1.
  double prev_sim_ns = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) {
      continue;
    }
    const std::vector<std::string> cells = SplitCsvLine(line);
    if (cells.size() < header.size()) {
      std::fprintf(stderr,
                   "error: metrics file %s is truncated at line %zu "
                   "(%zu of %zu columns)\n",
                   path.c_str(), line_number, cells.size(), header.size());
      return 1;
    }
    const double epoch = cell_value(cells, "epoch");
    const double sim_ns = cell_value(cells, "sim_time_ns");
    const double epoch_sim_ns = sim_ns - prev_sim_ns;
    prev_sim_ns = sim_ns;
    double total_ns = 0;
    std::vector<std::string> row = {std::to_string(static_cast<long long>(epoch))};
    for (Bucket bucket : buckets) {
      const double ns = cell_value(cells, BucketMetricName(bucket));
      total_ns += ns;
      row.push_back(TablePrinter::Fixed(ns / 1e6, 2));
    }
    row.push_back(TablePrinter::Fixed(total_ns / 1e6, 2));
    row.push_back(TablePrinter::Fixed(epoch_sim_ns / 1e6, 2));
    row.push_back(epoch_sim_ns > 0 ? TablePrinter::Percent(total_ns / epoch_sim_ns, 1)
                                   : std::string("-"));
    table.AddRow(std::move(row));
    ++rows;
  }
  if (rows == 0) {
    std::fprintf(stderr, "error: metrics file %s has a header but no rows\n", path.c_str());
    return 1;
  }
  std::printf("per-epoch detection overhead (Figure 3 buckets), %zu epoch(s):\n\n", rows);
  table.Print();
  std::printf("\nbucket columns and the total are summed across nodes; 'Sim ms' is the\n"
              "critical-path simulated time the epoch added.\n");

  // Detection-pipeline table: shard fan-out, bitmap-round bytes (raw vs on
  // the wire after BitmapCodec), and §6.2 overlap savings. Only printed when
  // the run recorded the pipeline counters (any pipeline mode emits them).
  if (column.count("net.bitmap.bytes_raw") != 0) {
    in.clear();
    in.seekg(0);
    std::getline(in, line);  // Header.
    TablePrinter pipeline_table({"Epoch", "Shards", "Checks", "Raw B", "Wire B", "Saved B",
                                 "Overlap ms", "Remote cmp"});
    bool any_activity = false;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      const std::vector<std::string> cells = SplitCsvLine(line);
      const double raw = cell_value(cells, "net.bitmap.bytes_raw");
      const double wire = cell_value(cells, "net.bitmap.bytes_wire");
      const double saved = cell_value(cells, "net.bitmap.bytes_saved");
      const double overlap_ns = cell_value(cells, "race.overlap.saved_ns");
      const double remote = cell_value(cells, "race.remote.pairs_compared");
      any_activity = any_activity || raw > 0 || wire > 0 || remote > 0;
      pipeline_table.AddRow(
          {std::to_string(static_cast<long long>(cell_value(cells, "epoch"))),
           TablePrinter::Fixed(cell_value(cells, "race.shard.count"), 0),
           TablePrinter::Fixed(cell_value(cells, "race.checklist_entries"), 0),
           TablePrinter::Fixed(raw, 0), TablePrinter::Fixed(wire, 0),
           TablePrinter::Fixed(saved, 0), TablePrinter::Fixed(overlap_ns / 1e6, 3),
           TablePrinter::Fixed(remote, 0)});
    }
    if (any_activity) {
      std::printf("\nper-epoch detection pipeline (see docs/DETECTOR.md):\n\n");
      pipeline_table.Print();
      std::printf("\n'Raw B' is what the bitmap round would cost uncompressed; 'Wire B' is\n"
                  "what it sent; 'Overlap ms' is compare time hidden under the round\n"
                  "(sharded mode); 'Remote cmp' counts pairs compared on constituents\n"
                  "(distributed mode).\n");
    }
  }

  // Scaling table: combine-tree barrier traffic, epoch-batched detection
  // rounds, and the bitmap interning cache. Printed only for runs that used
  // at least one of the scaling knobs (--barrier-tree / --detect-batch /
  // --intern-bitmaps).
  if (column.count("net.barrier.tree.up_bytes") != 0) {
    in.clear();
    in.seekg(0);
    std::getline(in, line);  // Header.
    TablePrinter scaling_table({"Epoch", "Tree up B", "Tree down B", "Fragments",
                                "Batch rounds", "Batched ep", "Intern hit", "Intern miss",
                                "Intern inval"});
    bool any_activity = false;
    while (std::getline(in, line)) {
      if (line.empty()) {
        continue;
      }
      const std::vector<std::string> cells = SplitCsvLine(line);
      const double up = cell_value(cells, "net.barrier.tree.up_bytes");
      const double down = cell_value(cells, "net.barrier.tree.down_bytes");
      const double rounds = cell_value(cells, "race.batch.rounds");
      const double hits = cell_value(cells, "race.intern.hits");
      const double misses = cell_value(cells, "race.intern.misses");
      any_activity = any_activity || up > 0 || down > 0 || rounds > 0 || hits > 0 || misses > 0;
      scaling_table.AddRow(
          {std::to_string(static_cast<long long>(cell_value(cells, "epoch"))),
           TablePrinter::Fixed(up, 0), TablePrinter::Fixed(down, 0),
           TablePrinter::Fixed(cell_value(cells, "net.barrier.tree.fragments"), 0),
           TablePrinter::Fixed(rounds, 0),
           TablePrinter::Fixed(cell_value(cells, "race.batch.batched_epochs"), 0),
           TablePrinter::Fixed(hits, 0), TablePrinter::Fixed(misses, 0),
           TablePrinter::Fixed(cell_value(cells, "race.intern.invalidations"), 0)});
    }
    if (any_activity) {
      std::printf("\nper-epoch barrier/detection scaling (see docs/ARCHITECTURE.md):\n\n");
      scaling_table.Print();
      std::printf("\n'Tree up/down B' is combine-tree barrier traffic; 'Batch rounds' are\n"
                  "detection flushes covering 'Batched ep' queued epochs; the intern\n"
                  "columns count bitmap-cache hits ('same-as-last-epoch' tokens sent),\n"
                  "first-send misses, and invalidations after a page was redirtied.\n");
    }
  }
  return 0;
}

// Event-name census: counts `"name":"..."` occurrences in a Chrome trace
// JSON. Metadata records ('M') name process/thread tracks, not events, so
// "process_name"/"thread_name" are excluded.
int SummarizeTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read trace file %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::map<std::string, uint64_t> counts;
  const std::string key = "\"name\":\"";
  const std::string args_prefix = "\"args\":{";
  for (size_t pos = text.find(key); pos != std::string::npos;
       pos = text.find(key, pos + 1)) {
    // Skip track-naming metadata ('M' records) and their args payloads
    // ({"args":{"name":"node 3"}}) — those name tracks, not events.
    if (pos >= args_prefix.size() &&
        text.compare(pos - args_prefix.size(), args_prefix.size(), args_prefix) == 0) {
      continue;
    }
    const size_t begin = pos + key.size();
    const size_t end = text.find('"', begin);
    if (end == std::string::npos) {
      break;
    }
    const std::string name = text.substr(begin, end - begin);
    if (name != "process_name" && name != "thread_name") {
      ++counts[name];
    }
  }
  if (counts.empty()) {
    std::fprintf(stderr, "error: no trace events found in %s\n", path.c_str());
    return 1;
  }
  uint64_t total = 0;
  TablePrinter table({"Event", "Count"});
  for (const auto& [name, count] : counts) {
    table.AddRow({name, TablePrinter::WithThousands(count)});
    total += count;
  }
  table.AddRow({"total", TablePrinter::WithThousands(total)});
  std::printf("%zu distinct event name(s) in %s:\n\n", counts.size(), path.c_str());
  table.Print();
  return 0;
}

// Pretty-prints the causal provenance of each race in a --races-json file:
// which two intervals collided, their version vectors, the sync ops that
// failed to order them, and the barrier check that exposed the race.
int ExplainRaces(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read races file %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  tools::JsonValue root;
  std::string error;
  if (!tools::JsonParser::Parse(buffer.str(), &root, &error)) {
    std::fprintf(stderr, "error: %s: malformed races JSON: %s\n", path.c_str(), error.c_str());
    return 1;
  }
  if (!root.is_array()) {
    std::fprintf(stderr, "error: %s: expected a JSON array of race reports\n", path.c_str());
    return 1;
  }
  if (root.array.empty()) {
    std::printf("no data races in %s\n", path.c_str());
    return 0;
  }
  std::printf("%zu race report(s) in %s:\n", root.array.size(), path.c_str());
  for (size_t i = 0; i < root.array.size(); ++i) {
    const tools::JsonValue& r = root.array[i];
    const std::string symbol = r.at("symbol").str_or("");
    std::printf("\n[%zu] %s race at %s (page %lld word %lld, epoch %lld)\n", i + 1,
                r.at("kind").str_or("?").c_str(),
                symbol.empty() ? "<unsymbolized>" : symbol.c_str(),
                static_cast<long long>(r.at("page").num_or(-1)),
                static_cast<long long>(r.at("word").num_or(0)),
                static_cast<long long>(r.at("epoch").num_or(-1)));
    const tools::JsonValue& chain = r.at("chain");
    if (!chain.is_array() || chain.array.empty()) {
      std::printf("    (no provenance recorded)\n");
      continue;
    }
    for (const tools::JsonValue& line : chain.array) {
      std::printf("    %s\n", line.str_or("").c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }
  for (const std::string& key :
       flags.UnknownKeys({"metrics", "trace-json", "race-explain", "help"})) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
    return Usage();
  }
  if (flags.GetBool("help", false) ||
      (!flags.Has("metrics") && !flags.Has("trace-json") && !flags.Has("race-explain"))) {
    return Usage();
  }
  int rc = 0;
  if (flags.Has("metrics")) {
    rc = SummarizeMetrics(flags.GetString("metrics", ""));
  }
  if (rc == 0 && flags.Has("trace-json")) {
    rc = SummarizeTrace(flags.GetString("trace-json", ""));
  }
  if (rc == 0 && flags.Has("race-explain")) {
    rc = ExplainRaces(flags.GetString("race-explain", ""));
  }
  return rc;
}
