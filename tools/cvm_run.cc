// cvm_run: the command-line driver a user of this library reaches for first.
// Runs any of the bundled applications on the DSM with race detection and
// prints the findings; exposes every §6.x mode as a flag.
//
// Examples:
//   cvm_run --app=tsp --nodes=8
//   cvm_run --app=water --fix-bug --protocol=multi
//   cvm_run --app=sor --compare            # base-vs-instrumented slowdown
//   cvm_run --app=tsp --record=sched.txt   # run 1 of the §6.1 workflow
//   cvm_run --app=tsp --replay=sched.txt --watch=0x40 --watch-epoch=1
//   cvm_run --app=fft --postmortem --trace-out=run.cvmt
//   cvm_run --trace-in=run.cvmt            # offline analysis only
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "src/apps/app_catalog.h"
#include "src/apps/workload.h"
#include "src/fault/fault.h"
#include "src/common/table.h"
#include "src/race/trace_io.h"
#include "tools/flags.h"

namespace {

using namespace cvm;

int Usage() {
  std::printf(
      "usage: cvm_run --app={fft|sor|tsp|water|lu} [options]\n"
      "       cvm_run --trace-in=FILE [--pages=N]\n"
      "\n"
      "options:\n"
      "  --nodes=N            processors (default 8)\n"
      "  --page-size=BYTES    DSM page size (default 4096)\n"
      "  --protocol=P         lazy | multi | eager (default lazy)\n"
      "  --size=N             app problem size (app-specific scale knob)\n"
      "  --no-detect          run without race detection\n"
      "  --pipeline=P         serial | sharded | distributed barrier-time check\n"
      "                       (docs/DETECTOR.md; default serial)\n"
      "  --detect-shards=N    workers for the sharded check-list build, N >= 1\n"
      "                       (default: auto-sized from the node count)\n"
      "  --detect-batch=N     run the bitmap/compare rounds once per N epochs\n"
      "                       instead of every barrier (default 1 = unbatched)\n"
      "  --barrier-tree       k-ary combine-tree barrier with in-tree check-list\n"
      "                       aggregation (docs/ARCHITECTURE.md; default: flat)\n"
      "  --barrier-fanout=K   combine-tree fanout, 1 <= K <= nodes (default 4)\n"
      "  --compress-bitmaps   sparse/run-length encode bitmap-round payloads\n"
      "  --intern-bitmaps     cache unchanged bitmaps per (peer, page) and ship\n"
      "                       'same-as-last-epoch' tokens instead of payloads\n"
      "  --diff-writes        §6.5: mine writes from diffs (implies --protocol=multi)\n"
      "  --first-races        §6.4: report only the earliest racy epoch\n"
      "  --fix-bug            water only: repaired virial update\n"
      "  --compare            also run uninstrumented and report the slowdown\n"
      "  --record=FILE        record the lock-grant schedule (§6.1 run 1)\n"
      "  --replay=FILE        replay a recorded schedule (§6.1 run 2)\n"
      "  --watch=ADDR         watchpoint address (with --replay)\n"
      "  --watch-epoch=E      restrict the watchpoint to one epoch\n"
      "  --postmortem         §7: trace instead of discarding checked epochs\n"
      "  --trace-out=FILE     write the post-mortem trace file\n"
      "  --trace-in=FILE      analyze an existing trace file (no run)\n"
      "  --full-report        print every race with its causal provenance\n"
      "                       (default: per-variable summary)\n"
      "  --races-json=FILE    write race reports + provenance as JSON\n"
      "                       (read back with trace_summary --race-explain)\n"
      "  --seed=N             workload seed (tsp/water/lu inputs; also the\n"
      "                       default fault seed); 0 = per-app defaults\n"
      "\n"
      "fault injection (docs/FAULTS.md):\n"
      "  --fault-profile=P    off | lossy | bursty | partition | stress | crash\n"
      "  --fault-seed=N       injection schedule seed (default: --seed, else 1)\n"
      "  --fault-drop=P       override the profile's random frame-loss rate\n"
      "  --fault-max-attempts=N  per-send retransmission budget before the peer\n"
      "                       is declared unreachable (default 512, N >= 1)\n"
      "  --fault-crash-epoch=E  fail-stop a node at barrier epoch E (arms the\n"
      "                       crash machinery on any profile)\n"
      "  --fault-crash-node=N crash victim (default: seed-derived)\n"
      "  --fault-crash-reboot mark the crash transient (service retries run\n"
      "                       with the crash disarmed)\n"
      "\n"
      "observability (docs/OBSERVABILITY.md):\n"
      "  --trace-json=FILE    write a Chrome/Perfetto trace-event JSON of the run\n"
      "  --metrics-out=FILE   write per-epoch metrics (CSV, or JSON if FILE ends .json)\n"
      "  --metrics-interval=N snapshot metrics every N barrier epochs (default 1)\n"
      "  --trace-sample=F     sampling fraction in (0, 1]: keep about F of the\n"
      "                       trace events per node (default 1 = keep all)\n");
  return 2;
}

// Strict double parse: the whole string must be a number. Returns false on
// trailing junk ("0.1x") or an empty value.
bool ParseDoubleStrict(const std::string& raw, double* out) {
  char* end = nullptr;
  *out = std::strtod(raw.c_str(), &end);
  return end != raw.c_str() && *end == '\0';
}

void PrintRaces(const std::vector<RaceReport>& races, bool full) {
  if (races.empty()) {
    std::printf("no data races detected\n");
    return;
  }
  std::printf("%zu data race(s) detected\n", races.size());
  if (full) {
    for (const RaceReport& race : races) {
      std::printf("  %s\n", race.ToString().c_str());
      std::printf("%s", FormatProvenance(race).c_str());
    }
    return;
  }
  TablePrinter table({"Variable", "write-write", "read-write", "First epoch"});
  for (const RaceSummaryLine& line : SummarizeRaces(races)) {
    table.AddRow({line.symbol, std::to_string(line.write_write),
                  std::to_string(line.read_write), std::to_string(line.first_epoch)});
  }
  table.Print();
}

}  // namespace

int main(int argc, char** argv) {
  tools::Flags flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return Usage();
  }
  const std::vector<std::string> accepted = {
      "app",     "nodes",  "page-size",   "protocol",  "size",        "detect",
      "pipeline", "detect-shards", "detect-batch", "barrier-tree", "barrier-fanout",
      "compress-bitmaps", "intern-bitmaps",
      "diff-writes", "first-races", "fix-bug", "compare", "record",  "replay",
      "watch",   "watch-epoch", "postmortem", "trace-out", "trace-in", "full-report", "pages",
      "races-json", "trace-json", "metrics-out", "metrics-interval", "trace-sample",
      "seed", "fault-profile", "fault-seed", "fault-drop", "fault-max-attempts",
      "fault-crash-epoch", "fault-crash-node", "fault-crash-reboot",
      "help"};
  for (const std::string& key : flags.UnknownKeys(accepted)) {
    std::fprintf(stderr, "error: unknown flag --%s\n", key.c_str());
    return Usage();
  }
  if (flags.GetBool("help", false)) {
    return Usage();
  }

  // Offline trace analysis needs no run at all.
  if (flags.Has("trace-in")) {
    PostMortemTrace trace;
    if (!ReadTraceFile(flags.GetString("trace-in", ""), &trace)) {
      std::fprintf(stderr, "error: cannot read trace file\n");
      return 1;
    }
    std::printf("trace: %zu interval records, %zu bitmap pairs, %zu bytes\n",
                trace.NumRecords(), trace.NumBitmapPairs(), trace.TraceBytes());
    const auto analysis = trace.Analyze(static_cast<int>(flags.GetInt("pages", 8192)));
    PrintRaces(analysis.races, flags.GetBool("full-report", false));
    return 0;
  }

  const std::string app_name = flags.GetString("app", "");
  DsmOptions options;
  options.num_nodes = static_cast<int>(flags.GetInt("nodes", 8));
  if (options.num_nodes < 1) {
    std::fprintf(stderr, "error: --nodes=%d must be at least 1\n", options.num_nodes);
    return Usage();
  }
  const int64_t page_size = flags.GetInt("page-size", 4096);
  if (page_size < 64 || (page_size & (page_size - 1)) != 0) {
    std::fprintf(stderr, "error: --page-size=%lld must be a power of two, at least 64\n",
                 static_cast<long long>(page_size));
    return Usage();
  }
  options.page_size = static_cast<uint64_t>(page_size);
  options.max_shared_bytes = 64ull << 20;
  options.race_detection = flags.GetBool("detect", true);
  options.first_races_only = flags.GetBool("first-races", false);
  const std::string pipeline = flags.GetString("pipeline", "serial");
  if (pipeline == "serial") {
    options.detection_pipeline = DetectionPipeline::kSerial;
  } else if (pipeline == "sharded") {
    options.detection_pipeline = DetectionPipeline::kSharded;
  } else if (pipeline == "distributed") {
    options.detection_pipeline = DetectionPipeline::kDistributed;
  } else {
    std::fprintf(stderr, "error: unknown pipeline '%s'\n", pipeline.c_str());
    return Usage();
  }
  // Omitted = auto-sized; an explicit value must be a usable worker count.
  // --detect-shards=0 used to silently mean "auto" too, which hid typos.
  if (flags.Has("detect-shards") && flags.GetInt("detect-shards", 0) < 1) {
    std::fprintf(stderr,
                 "error: --detect-shards=%lld must be at least 1 "
                 "(omit the flag for auto-sizing)\n",
                 static_cast<long long>(flags.GetInt("detect-shards", 0)));
    return Usage();
  }
  options.detect_shards = static_cast<int>(flags.GetInt("detect-shards", 0));
  // The pair triangle has one row per interval (a few per node per epoch);
  // more shard workers than cluster nodes only ever adds idle threads.
  if (options.detect_shards > options.num_nodes) {
    std::fprintf(stderr,
                 "error: --detect-shards=%d exceeds --nodes=%d "
                 "(extra shard workers past the node count sit idle)\n",
                 options.detect_shards, options.num_nodes);
    return Usage();
  }
  const int64_t detect_batch = flags.GetInt("detect-batch", 1);
  if (detect_batch < 1) {
    std::fprintf(stderr, "error: --detect-batch=%lld must be at least 1 (1 = unbatched)\n",
                 static_cast<long long>(detect_batch));
    return Usage();
  }
  options.detect_batch = static_cast<int>(detect_batch);
  options.barrier_tree = flags.GetBool("barrier-tree", false);
  // The default fanout (4) is always legal — a fanout above the node count
  // just degenerates to a one-level star — but an explicit value outside
  // [1, nodes] is a typo, not a topology.
  const int64_t fanout = flags.GetInt("barrier-fanout", 4);
  if (flags.Has("barrier-fanout") && (fanout < 1 || fanout > options.num_nodes)) {
    std::fprintf(stderr, "error: --barrier-fanout=%lld must be in [1, --nodes=%d]\n",
                 static_cast<long long>(fanout), options.num_nodes);
    return Usage();
  }
  options.barrier_fanout = static_cast<int>(fanout);
  options.compress_bitmaps = flags.GetBool("compress-bitmaps", false);
  options.intern_bitmaps = flags.GetBool("intern-bitmaps", false);
  options.postmortem_trace = flags.GetBool("postmortem", false);

  options.trace.trace_enabled = flags.Has("trace-json");
  options.trace.metrics_enabled = flags.Has("metrics-out");
  options.trace.metrics_interval = static_cast<int>(flags.GetInt("metrics-interval", 1));
  if (options.trace.metrics_interval < 1) {
    std::fprintf(stderr, "error: --metrics-interval=%d must be at least 1\n",
                 options.trace.metrics_interval);
    return Usage();
  }
  if (flags.Has("trace-sample")) {
    // A fraction, not a period: values outside (0, 1] used to slip through
    // and silently trace nothing (or abort deep in the tracer); reject them
    // here with an actionable message.
    const std::string raw = flags.GetString("trace-sample", "1");
    char* end = nullptr;
    const double fraction = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0' || !(fraction > 0.0) || fraction > 1.0) {
      std::fprintf(stderr,
                   "error: --trace-sample=%s is not a sampling fraction in (0, 1] "
                   "(1 keeps every event, 0.1 keeps about 1 in 10)\n",
                   raw.c_str());
      return Usage();
    }
    options.trace.sample_period =
        static_cast<uint32_t>(std::max<long long>(1, std::llround(1.0 / fraction)));
  }
  if (options.trace.enabled() && !obs::kObsCompiledIn) {
    std::fprintf(stderr,
                 "error: this binary was built with -DCVM_OBS=OFF; "
                 "--trace-json/--metrics-out are unavailable\n");
    return 1;
  }

  const std::string protocol = flags.GetString("protocol", "lazy");
  if (protocol == "lazy") {
    options.protocol = ProtocolKind::kSingleWriterLrc;
  } else if (protocol == "multi") {
    options.protocol = ProtocolKind::kMultiWriterHomeLrc;
  } else if (protocol == "eager") {
    options.protocol = ProtocolKind::kEagerRcInvalidate;
  } else {
    std::fprintf(stderr, "error: unknown protocol '%s'\n", protocol.c_str());
    return Usage();
  }
  if (flags.GetBool("diff-writes", false)) {
    options.protocol = ProtocolKind::kMultiWriterHomeLrc;
    options.write_detection = WriteDetection::kDiffs;
  }
  options.record_sync_order = flags.Has("record");
  SyncSchedule replay_schedule;
  if (flags.Has("replay")) {
    if (!ReadScheduleFile(flags.GetString("replay", ""), &replay_schedule)) {
      std::fprintf(stderr, "error: cannot read schedule file\n");
      return 1;
    }
    options.replay_schedule = &replay_schedule;
  }
  if (flags.Has("watch")) {
    Watchpoint watch;
    watch.addr = static_cast<GlobalAddr>(std::stoull(flags.GetString("watch", "0"), nullptr, 0));
    watch.epoch = static_cast<EpochId>(flags.GetInt("watch-epoch", -1));
    options.watch = watch;
  }

  // One top-level seed feeds both the app workloads and (by default) the
  // fault injector, so a whole faulty run reproduces from a single number.
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 0));
  const uint64_t fault_seed =
      static_cast<uint64_t>(flags.GetInt("fault-seed", seed != 0 ? static_cast<int64_t>(seed) : 1));
  const std::string profile_name = flags.GetString("fault-profile", "off");
  const auto profile = fault::ParseProfile(profile_name);
  if (!profile.has_value()) {
    std::fprintf(stderr, "error: unknown fault profile '%s' (valid: %s)\n",
                 profile_name.c_str(), fault::ValidProfileNames());
    return Usage();
  }
  options.fault_plan = fault::FaultPlan::FromProfile(*profile, fault_seed);
  if (flags.Has("fault-drop")) {
    const std::string raw = flags.GetString("fault-drop", "0");
    double drop = 0;
    if (!ParseDoubleStrict(raw, &drop) || drop < 0.0 || drop > 1.0) {
      std::fprintf(stderr,
                   "error: --fault-drop=%s is not a frame-loss probability in [0, 1]\n",
                   raw.c_str());
      return Usage();
    }
    options.fault_plan.drop_prob = drop;
  }
  if (flags.Has("fault-max-attempts")) {
    const int64_t attempts = flags.GetInt("fault-max-attempts", 0);
    if (attempts < 1 || attempts > 1u << 20) {
      std::fprintf(stderr,
                   "error: --fault-max-attempts=%lld must be in [1, %u] "
                   "(the retransmission budget before a peer is declared unreachable)\n",
                   static_cast<long long>(attempts), 1u << 20);
      return Usage();
    }
    options.fault_plan.max_send_attempts = static_cast<uint32_t>(attempts);
  }
  if (flags.Has("fault-crash-epoch")) {
    const int64_t crash_epoch = flags.GetInt("fault-crash-epoch", -1);
    if (crash_epoch < 0) {
      std::fprintf(stderr, "error: --fault-crash-epoch=%lld must be a barrier epoch >= 0\n",
                   static_cast<long long>(crash_epoch));
      return Usage();
    }
    options.fault_plan.crash_epoch = static_cast<EpochId>(crash_epoch);
  }
  if (flags.Has("fault-crash-node")) {
    const int64_t crash_node = flags.GetInt("fault-crash-node", -1);
    if (crash_node < 0 || crash_node >= options.num_nodes) {
      std::fprintf(stderr, "error: --fault-crash-node=%lld must name a node in [0, %d)\n",
                   static_cast<long long>(crash_node), options.num_nodes);
      return Usage();
    }
    if (!options.fault_plan.crash_enabled()) {
      std::fprintf(stderr,
                   "error: --fault-crash-node needs an armed crash "
                   "(--fault-profile=crash or --fault-crash-epoch=E)\n");
      return Usage();
    }
    options.fault_plan.crash_node = static_cast<NodeId>(crash_node);
  }
  options.fault_plan.crash_reboot = flags.GetBool("fault-crash-reboot", false);

  CatalogRequest catalog;
  catalog.app = app_name;
  catalog.size = flags.GetInt("size", -1);
  catalog.seed = seed;
  catalog.page_size = options.page_size;
  catalog.fix_water_bug = flags.GetBool("fix-bug", false);
  auto app = MakeCatalogApp(catalog);
  if (app == nullptr) {
    std::fprintf(stderr, "error: unknown or missing --app\n");
    return Usage();
  }

  std::printf("running %s (%s, %s sync) on %d nodes, protocol %s, detection %s\n",
              app->name().c_str(), app->input_description().c_str(),
              app->sync_description().c_str(), options.num_nodes, protocol.c_str(),
              options.race_detection ? "on" : "off");
  if (seed != 0) {
    std::printf("seed: %lu\n", static_cast<unsigned long>(seed));
  } else {
    std::printf("seed: app-default\n");
  }
  if (options.fault_plan.enabled()) {
    std::printf("faults: profile %s, seed %lu, drop %.4f\n",
                fault::ProfileName(options.fault_plan.profile),
                static_cast<unsigned long>(fault_seed), options.fault_plan.drop_prob);
    if (options.fault_plan.crash_enabled()) {
      std::printf("crash: node %s fail-stops at barrier epoch %d (%s)\n",
                  options.fault_plan.crash_node >= 0
                      ? std::to_string(options.fault_plan.crash_node).c_str()
                      : "(seed-derived)",
                  options.fault_plan.crash_epoch,
                  options.fault_plan.crash_reboot ? "transient; reboots on retry"
                                                  : "permanent");
    }
  }

  DsmSystem system(options);
  app->Setup(system);
  RunResult result = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });

  std::printf("result verified: %s\n", app->Verify() ? "yes" : "NO");
  PrintRaces(result.races, flags.GetBool("full-report", false));
  std::printf("\nrun stats: %.1f ms simulated, %lu intervals, %lu page faults, "
              "%lu messages (%.2f MB)\n",
              result.sim_time_ns / 1e6, static_cast<unsigned long>(result.intervals_total),
              static_cast<unsigned long>(result.page_faults),
              static_cast<unsigned long>(result.net.messages),
              static_cast<double>(result.net.bytes) / 1e6);
  if (options.fault_plan.enabled()) {
    std::printf("fault stats: %lu attempts, %lu drops, %lu retransmits, %lu dup-drops, "
                "%lu corrupt, %lu acks lost, %.1f ms backoff\n",
                static_cast<unsigned long>(result.fault.data_frames),
                static_cast<unsigned long>(result.fault.drops),
                static_cast<unsigned long>(result.fault.retransmits),
                static_cast<unsigned long>(result.fault.dup_dropped),
                static_cast<unsigned long>(result.fault.corrupted),
                static_cast<unsigned long>(result.fault.acks_dropped),
                result.fault.backoff_ns / 1e6);
  }
  if (result.recovery.crashed) {
    std::printf("crash outcome: node %d died at epoch %d; %zu node(s) rolled back to "
                "the consistent cut through epoch %d (%zu lock slots recovered, "
                "largest checkpoint %lu bytes); race reports cover the surviving "
                "prefix only\n",
                result.recovery.crash_node, result.recovery.crash_epoch,
                result.recovery.rollbacks, result.recovery.last_consistent_epoch,
                result.recovery.locks_recovered,
                static_cast<unsigned long>(result.recovery.checkpoint_bytes));
  }

  if (flags.Has("races-json")) {
    const std::string path = flags.GetString("races-json", "");
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot write races JSON to %s\n", path.c_str());
      return 1;
    }
    const std::string json = RaceReportsToJson(result.races);
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "error: cannot write races JSON to %s\n", path.c_str());
      return 1;
    }
    std::printf("races JSON written: %s (%zu reports)\n", path.c_str(), result.races.size());
  }
  if (options.record_sync_order) {
    if (!WriteScheduleFile(result.recorded_schedule, flags.GetString("record", ""))) {
      std::fprintf(stderr, "error: cannot write schedule file\n");
      return 1;
    }
    std::printf("recorded %zu lock grants\n", result.recorded_schedule.TotalGrants());
  }
  if (!result.watch_hits.empty()) {
    std::printf("\nwatchpoint hits:\n");
    for (const WatchHit& hit : result.watch_hits) {
      std::printf("  %s\n", hit.ToString().c_str());
    }
  }
  if (options.trace.trace_enabled && system.tracer() != nullptr) {
    const std::string path = flags.GetString("trace-json", "");
    if (!system.tracer()->WriteChromeJson(path)) {
      std::fprintf(stderr, "error: cannot write trace JSON to %s\n", path.c_str());
      return 1;
    }
    std::printf("trace JSON written: %s (%lu events, %lu dropped)\n", path.c_str(),
                static_cast<unsigned long>(system.tracer()->TotalEmitted()),
                static_cast<unsigned long>(system.tracer()->TotalDropped()));
  }
  if (options.trace.metrics_enabled && system.metrics() != nullptr) {
    const std::string path = flags.GetString("metrics-out", "");
    const bool as_json =
        path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
    const bool ok = as_json ? system.metrics()->WriteJson(path)
                            : system.metrics()->WriteCsv(path);
    if (!ok) {
      std::fprintf(stderr, "error: cannot write metrics to %s\n", path.c_str());
      return 1;
    }
    std::printf("metrics written: %s (%zu epoch rows)\n", path.c_str(),
                system.metrics()->NumRows());
  }
  if (options.postmortem_trace && flags.Has("trace-out")) {
    if (!WriteTraceFile(system.trace(), flags.GetString("trace-out", ""))) {
      std::fprintf(stderr, "error: cannot write trace file\n");
      return 1;
    }
    std::printf("trace written: %zu bytes\n", system.trace().TraceBytes());
  }

  if (flags.GetBool("compare", false)) {
    DsmOptions base_options = options;
    base_options.race_detection = false;
    base_options.record_sync_order = false;
    auto base_app = MakeCatalogApp(catalog);
    DsmSystem base_system(base_options);
    base_app->Setup(base_system);
    RunResult base = base_system.Run([&base_app](NodeContext& ctx) { base_app->Run(ctx); });
    std::printf("\nslowdown vs unaltered run: %.2fx (%.1f ms -> %.1f ms simulated)\n",
                base.sim_time_ns > 0 ? result.sim_time_ns / base.sim_time_ns : 0.0,
                base.sim_time_ns / 1e6, result.sim_time_ns / 1e6);
  }
  return 0;
}
