#!/usr/bin/env python3
"""Enforces the coherence-protocol layering rule.

Every protocol-specific decision lives behind the CoherenceProtocol strategy
interface in src/protocol/. Code anywhere else may *select* a ProtocolKind
(assignment, factory argument) or query a capability helper, but it must
never *branch* on the kind — that is the scattered-if-else style this
refactor removed. This script greps for equality/inequality comparisons
against ProtocolKind enumerators outside src/protocol/ and fails listing
each offender. Stdlib only — runs anywhere python3 exists.

Usage: tools/check_protocol_layering.py [repo_root]
"""

import os
import re
import sys

# `== ProtocolKind::k...` / `!= ProtocolKind::k...` and the flipped
# `ProtocolKind::k... ==` / `... !=` operand order.
COMPARE_RE = re.compile(
    r"[=!]=\s*ProtocolKind::|ProtocolKind::k\w+\s*[=!]=")

SOURCE_EXTS = (".cc", ".h", ".cpp", ".hpp")
SKIP_DIRS = {".git", "build", "third_party"}
ALLOWED_PREFIX = os.path.join("src", "protocol") + os.sep


def source_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        for name in filenames:
            if name.endswith(SOURCE_EXTS):
                yield os.path.join(dirpath, name)


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    offenders = []
    checked = 0
    for path in source_files(root):
        rel = os.path.relpath(path, root)
        if rel.startswith(ALLOWED_PREFIX):
            continue
        checked += 1
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if COMPARE_RE.search(line):
                    offenders.append((rel, lineno, line.strip()))
    if offenders:
        for rel, lineno, line in offenders:
            print(f"LAYERING VIOLATION: {rel}:{lineno}: {line}", file=sys.stderr)
        print(
            f"{len(offenders)} ProtocolKind comparison(s) outside src/protocol/ "
            "— move the decision behind CoherenceProtocol or a capability "
            "helper in src/protocol/protocol_kind.h",
            file=sys.stderr)
        return 1
    print(f"OK: {checked} file(s), no ProtocolKind branches outside src/protocol/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
