// Minimal recursive-descent JSON parser for the repo's own tool output
// (trace-event JSON, race-report JSON). Tools-only: the simulator never
// parses JSON, so this stays out of src/. Accepts strict JSON; numbers are
// held as double (trace timestamps are microsecond doubles anyway).
#ifndef CVM_TOOLS_JSON_MINI_H_
#define CVM_TOOLS_JSON_MINI_H_

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace cvm::tools {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }

  // Object member access; returns a shared null sentinel when absent (or when
  // this value is not an object), so lookups chain without null checks.
  const JsonValue& at(const std::string& key) const {
    static const JsonValue kNullValue;
    if (kind != Kind::kObject) {
      return kNullValue;
    }
    const auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }

  double num_or(double fallback) const { return kind == Kind::kNumber ? number_value : fallback; }
  std::string str_or(const std::string& fallback) const {
    return kind == Kind::kString ? string_value : fallback;
  }
};

class JsonParser {
 public:
  // Parses `text` into `out`. Returns false (with a position-annotated
  // message in *error) on malformed input, including trailing garbage.
  static bool Parse(const std::string& text, JsonValue* out, std::string* error) {
    JsonParser parser(text);
    if (!parser.ParseValue(out)) {
      *error = parser.error_ + " at offset " + std::to_string(parser.pos_);
      return false;
    }
    parser.SkipWhitespace();
    if (parser.pos_ != text.size()) {
      *error = "trailing characters at offset " + std::to_string(parser.pos_);
      return false;
    }
    return true;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Fail(const char* message) {
    error_ = message;
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", out, JsonValue::Kind::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonValue::Kind::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonValue::Kind::kNull, false);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseLiteral(const char* word, JsonValue* out, JsonValue::Kind kind, bool value) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Fail("invalid literal");
      }
    }
    out->kind = kind;
    out->bool_value = value;
    return true;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("invalid value");
    }
    try {
      out->number_value = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("invalid number");
    }
    out->kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    ++pos_;  // Opening quote.
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          *out += esc;
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          const uint32_t code =
              static_cast<uint32_t>(std::stoul(text_.substr(pos_, 4), nullptr, 16));
          pos_ += 4;
          // ASCII is all our own emitters produce; anything else degrades to
          // '?' rather than growing a full UTF-8 encoder here.
          *out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated array");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Fail("expected ':'");
      }
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) {
        return false;
      }
      out->object.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) {
        return Fail("unterminated object");
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace cvm::tools

#endif  // CVM_TOOLS_JSON_MINI_H_
