// Protocol-layer capability queries and strategy wiring: the enum helpers in
// protocol_kind.h plus the per-protocol handler sets a live node registers.
#include "src/protocol/protocol_kind.h"

#include <gtest/gtest.h>

#include <string>

#include "src/dsm/dsm.h"
#include "src/net/dispatch.h"
#include "src/protocol/coherence.h"

namespace cvm {
namespace {

TEST(ProtocolKindTest, NamesAreStableIdentifiers) {
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kSingleWriterLrc), "SingleWriterLrc");
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kMultiWriterHomeLrc),
               "MultiWriterHomeLrc");
  EXPECT_STREQ(ProtocolKindName(ProtocolKind::kEagerRcInvalidate),
               "EagerRcInvalidate");
}

TEST(ProtocolKindTest, CapabilityQueries) {
  // Only the twinning/diffing protocol can mine write notices from diffs.
  EXPECT_TRUE(ProtocolSupportsDiffWriteDetection(ProtocolKind::kMultiWriterHomeLrc));
  EXPECT_FALSE(ProtocolSupportsDiffWriteDetection(ProtocolKind::kSingleWriterLrc));
  EXPECT_FALSE(ProtocolSupportsDiffWriteDetection(ProtocolKind::kEagerRcInvalidate));

  EXPECT_TRUE(ProtocolInvalidatesEagerly(ProtocolKind::kEagerRcInvalidate));
  EXPECT_FALSE(ProtocolInvalidatesEagerly(ProtocolKind::kSingleWriterLrc));
  EXPECT_FALSE(ProtocolInvalidatesEagerly(ProtocolKind::kMultiWriterHomeLrc));
}

// Which message kinds each protocol's node handles. Built by constructing a
// real (never-run) system so the test exercises the same registration path
// the service loop depends on.
class HandlerSetTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(HandlerSetTest, RegistersExactlyTheKindsItOwns) {
  DsmOptions options;
  options.num_nodes = 2;
  options.protocol = GetParam();
  DsmSystem system(options);
  system.Run([](NodeContext&) {});
  const Node& node = system.node(0);
  const MessageDispatcher& dispatcher = node.dispatcher();
  EXPECT_EQ(node.protocol().kind(), GetParam());

  // Universal kinds: page replies (every protocol fetches pages), locks,
  // barriers + detection rounds, shutdown.
  for (size_t kind : {kPayloadIndexOf<PageReplyMsg>, kPayloadIndexOf<LockRequestMsg>,
                      kPayloadIndexOf<LockGrantMsg>, kPayloadIndexOf<BarrierArriveMsg>,
                      kPayloadIndexOf<BarrierReleaseMsg>,
                      kPayloadIndexOf<BitmapRequestMsg>, kPayloadIndexOf<BitmapReplyMsg>,
                      kPayloadIndexOf<CompareRequestMsg>, kPayloadIndexOf<BitmapShipMsg>,
                      kPayloadIndexOf<CompareReplyMsg>, kPayloadIndexOf<ShutdownMsg>}) {
    EXPECT_TRUE(dispatcher.HasHandler(kind)) << PayloadKindName(kind);
  }

  const bool multi_writer =
      ProtocolSupportsDiffWriteDetection(GetParam());  // Twins + diffs.
  EXPECT_EQ(dispatcher.HasHandler(kPayloadIndexOf<DiffFlushMsg>), multi_writer);
  EXPECT_EQ(dispatcher.HasHandler(kPayloadIndexOf<DiffFlushAckMsg>), multi_writer);

  const bool eager = ProtocolInvalidatesEagerly(GetParam());
  EXPECT_EQ(dispatcher.HasHandler(kPayloadIndexOf<ErcUpdateMsg>), eager);
  EXPECT_EQ(dispatcher.HasHandler(kPayloadIndexOf<ErcAckMsg>), eager);

  // Nothing arrived without a handler during the (trivial) run.
  EXPECT_EQ(dispatcher.unhandled(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, HandlerSetTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc,
                                           ProtocolKind::kEagerRcInvalidate),
                         [](const ::testing::TestParamInfo<ProtocolKind>& param_info) {
                           return ProtocolKindName(param_info.param);
                         });

}  // namespace
}  // namespace cvm
