// Tests for interval records, the interval log (unseen queries, GC), and
// the per-node bitmap store.
#include <gtest/gtest.h>

#include "src/protocol/interval.h"

namespace cvm {
namespace {

IntervalRecord MakeRecord(NodeId node, IntervalIndex index, std::vector<PageId> writes = {},
                          std::vector<PageId> reads = {}) {
  IntervalRecord r;
  r.id = IntervalId{node, index};
  r.vc = VectorClock(4);
  r.vc.Set(node, index);
  r.write_pages = std::move(writes);
  r.read_pages = std::move(reads);
  return r;
}

TEST(IntervalRecordTest, PageMembershipAndSizes) {
  IntervalRecord r = MakeRecord(1, 3, {5, 9}, {2});
  EXPECT_TRUE(r.WritesPage(5));
  EXPECT_TRUE(r.WritesPage(9));
  EXPECT_FALSE(r.WritesPage(2));
  EXPECT_TRUE(r.ReadsPage(2));
  EXPECT_EQ(r.ReadNoticeByteSize(), sizeof(PageId));
  EXPECT_EQ(r.ByteSize(), r.BaseByteSize() + sizeof(PageId));
}

TEST(IntervalLogTest, UnseenByReturnsExactlyTheUnseen) {
  IntervalLog log(4);
  log.Insert(MakeRecord(0, 0));
  log.Insert(MakeRecord(0, 1));
  log.Insert(MakeRecord(1, 0));
  log.Insert(MakeRecord(2, 0));

  VectorClock vc(4);
  vc.Set(0, 0);  // Seen node 0 through interval 0; nothing else.
  const auto unseen = log.UnseenBy(vc);
  ASSERT_EQ(unseen.size(), 3u);
  EXPECT_EQ(unseen[0].id, (IntervalId{0, 1}));
  EXPECT_EQ(unseen[1].id, (IntervalId{1, 0}));
  EXPECT_EQ(unseen[2].id, (IntervalId{2, 0}));
}

TEST(IntervalLogTest, InsertIsIdempotent) {
  IntervalLog log(2);
  log.Insert(MakeRecord(0, 0));
  log.Insert(MakeRecord(0, 0));
  EXPECT_EQ(log.size(), 1u);
}

TEST(IntervalLogTest, GarbageCollectionDropsDominated) {
  IntervalLog log(2);
  log.Insert(MakeRecord(0, 0));
  log.Insert(MakeRecord(0, 1));
  log.Insert(MakeRecord(1, 2));
  VectorClock merged(2);
  merged.Set(0, 0);
  merged.Set(1, 2);
  log.DiscardDominatedBy(merged);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.Contains(IntervalId{0, 1}));
  EXPECT_FALSE(log.Contains(IntervalId{1, 2}));
}

TEST(BitmapStoreTest, RecordsLazilyAndFindsPairs) {
  BitmapStore store(256);
  EXPECT_TRUE(store.RecordRead(0, 3, 17));   // First read of (0, page 3).
  EXPECT_FALSE(store.RecordRead(0, 3, 18));  // Not the first anymore.
  EXPECT_TRUE(store.RecordWrite(0, 3, 17));  // First write still reports true.
  const PageAccessBitmaps* pair = store.Find(0, 3);
  ASSERT_NE(pair, nullptr);
  EXPECT_TRUE(pair->read.Test(17));
  EXPECT_TRUE(pair->read.Test(18));
  EXPECT_TRUE(pair->write.Test(17));
  EXPECT_FALSE(pair->write.Test(18));
  EXPECT_EQ(store.Find(0, 4), nullptr);
  EXPECT_EQ(store.Find(1, 3), nullptr);
  EXPECT_EQ(store.TotalPairsRecorded(), 1u);
}

TEST(BitmapStoreTest, DiscardThroughDropsCheckedEpochs) {
  BitmapStore store(64);
  store.RecordRead(0, 0, 1);
  store.RecordRead(1, 0, 1);
  store.RecordRead(5, 2, 1);
  EXPECT_EQ(store.RetainedPairs(), 3u);
  store.DiscardThrough(1);
  EXPECT_EQ(store.RetainedPairs(), 1u);
  EXPECT_EQ(store.Find(0, 0), nullptr);
  EXPECT_NE(store.Find(5, 2), nullptr);
  // Total recorded is cumulative (Table 3 denominator), not retained.
  EXPECT_EQ(store.TotalPairsRecorded(), 3u);
}

TEST(BitmapStoreTest, ForEachPairVisitsEverything) {
  BitmapStore store(64);
  store.RecordWrite(2, 7, 0);
  store.RecordRead(3, 1, 5);
  int visits = 0;
  store.ForEachPair(9, [&](const IntervalId& id, PageId page, const PageAccessBitmaps&) {
    EXPECT_EQ(id.node, 9);
    EXPECT_TRUE((id.index == 2 && page == 7) || (id.index == 3 && page == 1));
    ++visits;
  });
  EXPECT_EQ(visits, 2);
}

}  // namespace
}  // namespace cvm
