// MessageDispatcher: typed handler registry + unhandled-payload accounting
// (the service loop's silent-drop fallthrough is now a counted event).
#include "src/net/dispatch.h"

#include <gtest/gtest.h>

#include "src/net/message.h"
#include "src/obs/metrics.h"

namespace cvm {
namespace {

Message Make(Payload payload) {
  Message msg;
  msg.from = 1;
  msg.to = 0;
  msg.payload = std::move(payload);
  return msg;
}

TEST(PayloadIndexTest, MatchesVariantAlternatives) {
  // Compile-time indices line up with the runtime variant indices.
  EXPECT_EQ(kPayloadIndexOf<PageRequestMsg>, Payload(PageRequestMsg{}).index());
  EXPECT_EQ(kPayloadIndexOf<LockGrantMsg>, Payload(LockGrantMsg{}).index());
  EXPECT_EQ(kPayloadIndexOf<ShutdownMsg>, Payload(ShutdownMsg{}).index());
  static_assert(kPayloadIndexOf<ShutdownMsg> == kNumPayloadKinds - 1);
}

TEST(DispatchTest, RoutesToRegisteredHandler) {
  MessageDispatcher dispatcher;
  int page_requests = 0;
  PageId last_page = -1;
  dispatcher.Register<PageRequestMsg>([&](const Message& msg) {
    ++page_requests;
    last_page = std::get<PageRequestMsg>(msg.payload).page;
  });

  PageRequestMsg request;
  request.page = 7;
  EXPECT_TRUE(dispatcher.Dispatch(Make(request)));
  EXPECT_EQ(page_requests, 1);
  EXPECT_EQ(last_page, 7);
  EXPECT_EQ(dispatcher.dispatched(kPayloadIndexOf<PageRequestMsg>), 1u);
  EXPECT_EQ(dispatcher.unhandled(), 0u);
}

TEST(DispatchTest, UnhandledIsCountedAndHooked) {
  MessageDispatcher dispatcher;
  dispatcher.Register<PageRequestMsg>([](const Message&) {});
  size_t hooked_kind = kNumPayloadKinds;
  dispatcher.SetUnhandledHook(
      [&](const Message& msg) { hooked_kind = msg.payload.index(); });

  // No handler for DiffFlushMsg (a single-writer node never registers one).
  EXPECT_FALSE(dispatcher.Dispatch(Make(DiffFlushMsg{})));
  EXPECT_EQ(dispatcher.unhandled(), 1u);
  EXPECT_EQ(hooked_kind, kPayloadIndexOf<DiffFlushMsg>);
  EXPECT_FALSE(dispatcher.HasHandler(kPayloadIndexOf<DiffFlushMsg>));
  EXPECT_TRUE(dispatcher.HasHandler(kPayloadIndexOf<PageRequestMsg>));
}

TEST(DispatchTest, PerKindAndUnhandledMetrics) {
  if constexpr (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "observability compiled out";
  }
  obs::MetricsRegistry metrics;
  MessageDispatcher dispatcher;
  dispatcher.Register<LockRequestMsg>([](const Message&) {});
  dispatcher.AttachMetrics(&metrics);

  dispatcher.Dispatch(Make(LockRequestMsg{}));
  dispatcher.Dispatch(Make(LockRequestMsg{}));
  dispatcher.Dispatch(Make(ErcUpdateMsg{}));  // Unregistered.

  EXPECT_EQ(dispatcher.dispatched(kPayloadIndexOf<LockRequestMsg>), 2u);
  EXPECT_EQ(dispatcher.unhandled(), 1u);
  // counter() is find-or-create with stable pointers, so these are the same
  // counters the dispatcher updates.
  EXPECT_EQ(metrics.counter("net.dispatch.unhandled")->value(), 1u);
  std::string kind_metric = std::string("net.dispatch.") +
                            PayloadKindName(kPayloadIndexOf<LockRequestMsg>);
  EXPECT_EQ(metrics.counter(kind_metric)->value(), 2u);
}

TEST(DispatchDeathTest, DuplicateRegistrationAborts) {
  MessageDispatcher dispatcher;
  dispatcher.Register<BarrierArriveMsg>([](const Message&) {});
  EXPECT_DEATH(dispatcher.Register<BarrierArriveMsg>([](const Message&) {}),
               "handler");
}

}  // namespace
}  // namespace cvm
