// Tests for the reliable transport the Network layers over the fault
// injector: exactly-once in-order delivery under loss/duplication/corruption,
// deterministic fault counters from a fixed seed (the property the chaos
// harness and --fault-seed reproduction rest on), and clean-path neutrality.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/fault/fault.h"
#include "src/net/network.h"

namespace cvm {
namespace {

Message Make(NodeId from, NodeId to, Payload payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.payload = std::move(payload);
  return m;
}

PageRequestMsg Req(int page) {
  PageRequestMsg req;
  req.page = page;
  return req;
}

// Small simulated timeouts keep test run time negligible; values do not
// affect behavior, only the penalty accounting.
fault::FaultPlan TestPlan(fault::FaultProfile profile, uint64_t seed) {
  fault::FaultPlan plan = fault::FaultPlan::FromProfile(profile, seed);
  plan.rto_base_ns = 100;
  plan.rto_cap_ns = 1600;
  plan.delay_hop_ns = 50;
  return plan;
}

TEST(ReliableNetTest, ExactlyOnceInOrderUnderHeavyMixedFaults) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kStress, 3);
  plan.drop_prob = 0.2;
  plan.dup_prob = 0.1;
  plan.delay_prob = 0.05;
  plan.corrupt_prob = 0.05;
  plan.ack_drop_prob = 0.1;
  const fault::FaultInjector injector(plan, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);

  const int kMessages = 500;
  for (int i = 0; i < kMessages; ++i) {
    net.Send(Make(0, 1, Req(i)));
  }
  for (int i = 0; i < kMessages; ++i) {
    auto msg = net.TryRecv(1);
    ASSERT_TRUE(msg.has_value()) << "message " << i << " missing";
    EXPECT_EQ(std::get<PageRequestMsg>(msg->payload).page, i);
  }
  EXPECT_FALSE(net.TryRecv(1).has_value());

  const fault::FaultStats stats = net.fault_stats();
  EXPECT_GT(stats.drops, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  EXPECT_GT(stats.dup_dropped, 0u);
  EXPECT_GT(stats.corrupted, 0u);
  EXPECT_GT(stats.acks_dropped, 0u);
  EXPECT_GT(stats.backoff_ns, 0.0);
}

// Drives a fixed send sequence through a fresh network + injector and
// returns the fault counters. Single-threaded, so the per-pair sequence
// numbers are identical across invocations — counters must be too.
fault::FaultStats DriveFixedSequence(uint64_t seed) {
  const fault::FaultPlan plan = TestPlan(fault::FaultProfile::kStress, seed);
  const fault::FaultInjector injector(plan, 4);
  Network net(4);
  net.AttachFaultInjector(&injector);
  for (int round = 0; round < 200; ++round) {
    net.Send(Make(0, 1, Req(round)));
    net.Send(Make(1, 2, Req(round)));
    net.Send(Make(2, 3, Req(round)));
    net.Send(Make(3, 0, Req(round)));
    net.Send(Make(0, 2, Req(round)));
  }
  return net.fault_stats();
}

TEST(ReliableNetTest, SameSeedReproducesIdenticalFaultCounters) {
  const fault::FaultStats a = DriveFixedSequence(1234);
  const fault::FaultStats b = DriveFixedSequence(1234);
  EXPECT_EQ(a.data_frames, b.data_frames);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.delayed, b.delayed);
  EXPECT_EQ(a.dup_frames, b.dup_frames);
  EXPECT_EQ(a.dup_dropped, b.dup_dropped);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.acks_dropped, b.acks_dropped);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.backoff_ns, b.backoff_ns);
}

TEST(ReliableNetTest, DifferentSeedsProduceDifferentSchedules) {
  const fault::FaultStats a = DriveFixedSequence(1);
  const fault::FaultStats b = DriveFixedSequence(2);
  EXPECT_TRUE(a.drops != b.drops || a.dup_frames != b.dup_frames ||
              a.corrupted != b.corrupted || a.acks_dropped != b.acks_dropped ||
              a.retransmits != b.retransmits);
}

TEST(ReliableNetTest, EveryFrameDuplicatedStillDeliversOnce) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kLossy, 5);
  plan.drop_prob = 0;
  plan.dup_prob = 1.0;
  plan.delay_prob = 0;
  plan.ack_drop_prob = 0;
  const fault::FaultInjector injector(plan, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);

  const int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) {
    net.Send(Make(0, 1, Req(i)));
  }
  for (int i = 0; i < kMessages; ++i) {
    auto msg = net.TryRecv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<PageRequestMsg>(msg->payload).page, i);
  }
  EXPECT_FALSE(net.TryRecv(1).has_value());

  const fault::FaultStats stats = net.fault_stats();
  EXPECT_EQ(stats.dup_frames, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.dup_dropped, static_cast<uint64_t>(kMessages));
  EXPECT_EQ(stats.retransmits, 0u);
  // Wire accounting counts both copies of each frame.
  EXPECT_EQ(net.stats().messages, static_cast<uint64_t>(2 * kMessages));
}

TEST(ReliableNetTest, CorruptedFramesAreQuarantinedAndRetransmitted) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kLossy, 6);
  plan.drop_prob = 0;
  plan.dup_prob = 0;
  plan.delay_prob = 0;
  plan.ack_drop_prob = 0;
  plan.corrupt_prob = 0.5;
  const fault::FaultInjector injector(plan, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);

  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    net.Send(Make(0, 1, Req(i)));
  }
  for (int i = 0; i < kMessages; ++i) {
    auto msg = net.TryRecv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<PageRequestMsg>(msg->payload).page, i);
  }
  const fault::FaultStats stats = net.fault_stats();
  EXPECT_GT(stats.corrupted, 0u);
  // Every quarantined frame forces a retransmission.
  EXPECT_EQ(stats.retransmits, stats.corrupted);
}

TEST(ReliableNetTest, DisabledPlanKeepsCleanPathAndZeroFaultStats) {
  const fault::FaultPlan off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const fault::FaultInjector injector(off, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);  // Disabled plan: no-op.
  for (int i = 0; i < 50; ++i) {
    const SendOutcome outcome = net.Send(Make(0, 1, Req(i)));
    EXPECT_TRUE(outcome.delivered());
    EXPECT_EQ(outcome.penalty_ns, 0.0);
  }
  EXPECT_EQ(net.stats().messages, 50u);
  const fault::FaultStats stats = net.fault_stats();
  EXPECT_EQ(stats.data_frames, 0u);
  EXPECT_EQ(stats.drops, 0u);
  EXPECT_EQ(stats.retransmits, 0u);
}

TEST(ReliableNetTest, RetransmissionChargesSimulatedPenalty) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kLossy, 8);
  plan.drop_prob = 0.5;
  const fault::FaultInjector injector(plan, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);
  double total_penalty = 0;
  for (int i = 0; i < 100; ++i) {
    total_penalty += net.Send(Make(0, 1, Req(i))).penalty_ns;
  }
  EXPECT_GT(total_penalty, 0.0);
  EXPECT_EQ(total_penalty, net.fault_stats().backoff_ns);
}

TEST(ReliableNetTest, ConcurrentSendersKeepPerPairFifo) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kStress, 21);
  plan.drop_prob = 0.1;
  plan.ack_drop_prob = 0.05;
  const fault::FaultInjector injector(plan, 3);
  Network net(3);
  net.AttachFaultInjector(&injector);

  const int kPerSender = 200;
  std::thread sender_a([&] {
    for (int i = 0; i < kPerSender; ++i) {
      net.Send(Make(0, 1, Req(i)));
    }
  });
  std::thread sender_b([&] {
    for (int i = 0; i < kPerSender; ++i) {
      net.Send(Make(2, 1, Req(i)));
    }
  });
  sender_a.join();
  sender_b.join();

  int next_from_a = 0;
  int next_from_b = 0;
  for (int i = 0; i < 2 * kPerSender; ++i) {
    auto msg = net.TryRecv(1);
    ASSERT_TRUE(msg.has_value()) << "message " << i << " missing";
    const int page = std::get<PageRequestMsg>(msg->payload).page;
    if (msg->from == 0) {
      EXPECT_EQ(page, next_from_a++);
    } else {
      ASSERT_EQ(msg->from, 2);
      EXPECT_EQ(page, next_from_b++);
    }
  }
  EXPECT_EQ(next_from_a, kPerSender);
  EXPECT_EQ(next_from_b, kPerSender);
  EXPECT_FALSE(net.TryRecv(1).has_value());
}

TEST(ReliableNetTest, DeadPeerSurfacesBoundedUnreachableVerdict) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kLossy, 9);
  plan.drop_prob = 0;  // Deterministic: death alone triggers the verdict.
  const fault::FaultInjector injector(plan, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);

  EXPECT_FALSE(net.NodeDead(1));
  net.MarkNodeDead(1);
  EXPECT_TRUE(net.NodeDead(1));

  const SendOutcome outcome = net.Send(Make(0, 1, Req(0)));
  EXPECT_TRUE(outcome.unreachable());
  EXPECT_FALSE(outcome.delivered());
  // One suspicion timeout is billed, not an unbounded retransmission storm.
  EXPECT_GT(outcome.penalty_ns, 0.0);
  EXPECT_LE(outcome.penalty_ns, plan.rto_cap_ns);
  EXPECT_EQ(net.fault_stats().unreachable, 1u);
  EXPECT_FALSE(net.TryRecv(1).has_value());

  // A dead sender's frames go nowhere either.
  const SendOutcome from_dead = net.Send(Make(1, 0, Req(1)));
  EXPECT_TRUE(from_dead.unreachable());
  EXPECT_FALSE(net.TryRecv(0).has_value());
}

TEST(ReliableNetTest, ExhaustedAttemptBudgetReturnsUnreachableInsteadOfAborting) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kLossy, 10);
  plan.drop_prob = 1.0;  // Every data frame lost: the budget must bound retries.
  plan.max_send_attempts = 4;
  const fault::FaultInjector injector(plan, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);

  const SendOutcome outcome = net.Send(Make(0, 1, Req(0)));
  EXPECT_TRUE(outcome.unreachable());
  EXPECT_EQ(outcome.attempts, 4u);
  EXPECT_EQ(net.fault_stats().drops, 4u);
  EXPECT_EQ(net.fault_stats().unreachable, 1u);
  EXPECT_FALSE(net.TryRecv(1).has_value());
}

TEST(ReliableNetTest, DelayedFramesResurfaceAsSuppressedDuplicates) {
  fault::FaultPlan plan = TestPlan(fault::FaultProfile::kLossy, 13);
  plan.drop_prob = 0;
  plan.dup_prob = 0;
  plan.ack_drop_prob = 0;
  plan.delay_prob = 0.3;
  plan.max_delay_hops = 2;
  const fault::FaultInjector injector(plan, 2);
  Network net(2);
  net.AttachFaultInjector(&injector);
  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    net.Send(Make(0, 1, Req(i)));
  }
  for (int i = 0; i < kMessages; ++i) {
    auto msg = net.TryRecv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<PageRequestMsg>(msg->payload).page, i);
  }
  const fault::FaultStats stats = net.fault_stats();
  EXPECT_GT(stats.delayed, 0u);
  // A held frame's sequence number is retransmitted and delivered before the
  // hold expires, so every release is suppressed as a duplicate.
  EXPECT_GE(stats.dup_dropped, stats.delayed > 0 ? 1u : 0u);
}

}  // namespace
}  // namespace cvm
