// Tests for the simulated network fabric and byte-accurate accounting.
#include <gtest/gtest.h>

#include <thread>

#include "src/net/network.h"

namespace cvm {
namespace {

Message Make(NodeId from, NodeId to, Payload payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.payload = std::move(payload);
  return m;
}

TEST(NetworkTest, DeliversFifoPerInbox) {
  Network net(2);
  for (int i = 0; i < 5; ++i) {
    PageRequestMsg req;
    req.page = i;
    net.Send(Make(0, 1, req));
  }
  for (int i = 0; i < 5; ++i) {
    auto msg = net.Recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<PageRequestMsg>(msg->payload).page, i);
    EXPECT_EQ(msg->from, 0);
  }
  EXPECT_FALSE(net.TryRecv(1).has_value());
}

TEST(NetworkTest, CloseWakesBlockedReceivers) {
  Network net(1);
  std::thread receiver([&] {
    auto msg = net.Recv(0);
    EXPECT_FALSE(msg.has_value());
  });
  net.Close();
  receiver.join();
}

TEST(NetworkTest, CountsBytesByKind) {
  Network net(2);
  PageReplyMsg reply;
  reply.page = 0;
  reply.data = std::vector<uint8_t>(4096, 0);
  net.Send(Make(0, 1, reply));
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, kMessageHeaderBytes + 8 + 4096);
  EXPECT_EQ(stats.bytes_by_kind.at("PageReply"), stats.bytes);
  EXPECT_EQ(stats.read_notice_bytes, 0u);
}

TEST(NetworkTest, ReadNoticeBytesTrackedOnSyncMessages) {
  Network net(2);
  IntervalRecord record;
  record.id = IntervalId{0, 0};
  record.vc = VectorClock(2);
  record.write_pages = {1, 2};
  record.read_pages = {3, 4, 5};

  LockGrantMsg grant;
  grant.lock = 0;
  grant.releaser_vc = VectorClock(2);
  grant.intervals = {record};
  net.Send(Make(0, 1, grant));

  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.read_notice_bytes, 3 * sizeof(PageId));
  EXPECT_GT(stats.bytes, stats.read_notice_bytes);
}

TEST(NetworkTest, TotalsEqualSumOfPerKindAccounting) {
  Network net(3);
  PageRequestMsg req;
  req.page = 1;
  PageReplyMsg reply;
  reply.page = 1;
  reply.data = std::vector<uint8_t>(512, 0);
  LockRequestMsg lock_req;
  lock_req.requester_vc = VectorClock(3);
  net.Send(Make(0, 1, req));
  net.Send(Make(1, 0, reply));
  net.Send(Make(2, 0, lock_req));
  net.Send(Make(0, 2, req));

  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.messages, 4u);
  uint64_t kind_messages = 0;
  uint64_t kind_bytes = 0;
  for (const auto& [kind, count] : stats.messages_by_kind) {
    kind_messages += count;
  }
  for (const auto& [kind, bytes] : stats.bytes_by_kind) {
    kind_bytes += bytes;
  }
  EXPECT_EQ(stats.messages, kind_messages);
  EXPECT_EQ(stats.bytes, kind_bytes);
  EXPECT_EQ(stats.messages_by_kind.at("PageRequest"), 2u);
  EXPECT_EQ(stats.messages_by_kind.at("PageReply"), 1u);
  EXPECT_EQ(stats.messages_by_kind.at("LockRequest"), 1u);
}

TEST(NetworkTest, ResetStatsZeroesEverything) {
  Network net(2);
  PageRequestMsg req;
  net.Send(Make(0, 1, req));
  ASSERT_EQ(net.stats().messages, 1u);
  net.ResetStats();
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.read_notice_bytes, 0u);
  EXPECT_TRUE(stats.messages_by_kind.empty());
  EXPECT_TRUE(stats.bytes_by_kind.empty());
  // The fabric still works after a reset.
  net.Send(Make(1, 0, req));
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_TRUE(net.Recv(0).has_value());
}

TEST(NetworkTest, ObservabilityCountersMirrorStats) {
  Network net(2);
  obs::Tracer tracer(2, [] {
    obs::TraceConfig config;
    config.trace_enabled = true;
    return config;
  }());
  obs::MetricsRegistry metrics;
  net.AttachObservability(&tracer, &metrics);

  PageReplyMsg reply;
  reply.data = std::vector<uint8_t>(256, 0);
  net.Send(Make(0, 1, reply));
  net.Send(Make(1, 0, PageRequestMsg{}));
  (void)net.Recv(1);

  const NetworkStats stats = net.stats();
  EXPECT_EQ(metrics.counter("net.messages")->value(), stats.messages);
  EXPECT_EQ(metrics.counter("net.bytes")->value(), stats.bytes);
  EXPECT_EQ(metrics.histogram("net.msg_bytes")->count(), 2u);
  // One delivery consumed -> one latency observation.
  EXPECT_EQ(metrics.histogram("net.msg_latency_ns")->count(), 1u);
  // Two msg.send instants + two fallback flow 's' steps (raw-network sends
  // are unstamped, so the fabric starts the chains) + one msg.recv instant.
  EXPECT_EQ(tracer.Collected().size(), 5u);
}

TEST(MessageTest, PayloadSizesAreConsistent) {
  // Wire size must grow with content and include the header.
  PageRequestMsg req;
  EXPECT_EQ(PayloadByteSize(Payload(req)), kMessageHeaderBytes + 13);

  // A raw-encoded bitmap entry costs the legacy full-page payload plus the
  // codec's per-bitmap header (tag byte + bit count).
  BitmapReplyMsg reply;
  reply.entries = {BitmapReplyEntry{IntervalId{0, 0}, 0,
                                    BitmapCodec::Encode(Bitmap(1024), false),
                                    BitmapCodec::Encode(Bitmap(1024), false)}};
  EXPECT_EQ(PayloadByteSize(Payload(reply)),
            kMessageHeaderBytes + 8 + sizeof(IntervalId) + sizeof(PageId) +
                2 * (EncodedBitmap::kHeaderBytes + 128));

  Message m = Make(0, 0, reply);
  EXPECT_STREQ(m.KindName(), "BitmapReply");

  // An empty bitmap compresses to just the codec header.
  BitmapShipMsg ship;
  ship.entries = {BitmapReplyEntry{IntervalId{0, 0}, 0,
                                   BitmapCodec::Encode(Bitmap(1024), true),
                                   BitmapCodec::Encode(Bitmap(1024), true)}};
  EXPECT_EQ(PayloadByteSize(Payload(ship)),
            kMessageHeaderBytes + 8 + sizeof(uint64_t) + sizeof(IntervalId) + sizeof(PageId) +
                2 * EncodedBitmap::kHeaderBytes);
  EXPECT_STREQ(Make(0, 0, ship).KindName(), "BitmapShip");
}

TEST(MessageTest, SendToInvalidNodeAborts) {
  Network net(2);
  PageRequestMsg req;
  EXPECT_DEATH(net.Send(Make(0, 7, req)), "CHECK failed");
}

}  // namespace
}  // namespace cvm
