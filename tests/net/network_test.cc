// Tests for the simulated network fabric and byte-accurate accounting.
#include <gtest/gtest.h>

#include <thread>

#include "src/net/network.h"

namespace cvm {
namespace {

Message Make(NodeId from, NodeId to, Payload payload) {
  Message m;
  m.from = from;
  m.to = to;
  m.payload = std::move(payload);
  return m;
}

TEST(NetworkTest, DeliversFifoPerInbox) {
  Network net(2);
  for (int i = 0; i < 5; ++i) {
    PageRequestMsg req;
    req.page = i;
    net.Send(Make(0, 1, req));
  }
  for (int i = 0; i < 5; ++i) {
    auto msg = net.Recv(1);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<PageRequestMsg>(msg->payload).page, i);
    EXPECT_EQ(msg->from, 0);
  }
  EXPECT_FALSE(net.TryRecv(1).has_value());
}

TEST(NetworkTest, CloseWakesBlockedReceivers) {
  Network net(1);
  std::thread receiver([&] {
    auto msg = net.Recv(0);
    EXPECT_FALSE(msg.has_value());
  });
  net.Close();
  receiver.join();
}

TEST(NetworkTest, CountsBytesByKind) {
  Network net(2);
  PageReplyMsg reply;
  reply.page = 0;
  reply.data.assign(4096, 0);
  net.Send(Make(0, 1, reply));
  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.bytes, kMessageHeaderBytes + 8 + 4096);
  EXPECT_EQ(stats.bytes_by_kind.at("PageReply"), stats.bytes);
  EXPECT_EQ(stats.read_notice_bytes, 0u);
}

TEST(NetworkTest, ReadNoticeBytesTrackedOnSyncMessages) {
  Network net(2);
  IntervalRecord record;
  record.id = IntervalId{0, 0};
  record.vc = VectorClock(2);
  record.write_pages = {1, 2};
  record.read_pages = {3, 4, 5};

  LockGrantMsg grant;
  grant.lock = 0;
  grant.releaser_vc = VectorClock(2);
  grant.intervals = {record};
  net.Send(Make(0, 1, grant));

  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.read_notice_bytes, 3 * sizeof(PageId));
  EXPECT_GT(stats.bytes, stats.read_notice_bytes);
}

TEST(MessageTest, PayloadSizesAreConsistent) {
  // Wire size must grow with content and include the header.
  PageRequestMsg req;
  EXPECT_EQ(PayloadByteSize(Payload(req)), kMessageHeaderBytes + 13);

  BitmapReplyMsg reply;
  reply.entries.push_back(BitmapReplyEntry{IntervalId{0, 0}, 0, Bitmap(1024), Bitmap(1024)});
  EXPECT_EQ(PayloadByteSize(Payload(reply)),
            kMessageHeaderBytes + 8 + sizeof(IntervalId) + sizeof(PageId) + 2 * 128);

  Message m = Make(0, 0, reply);
  EXPECT_STREQ(m.KindName(), "BitmapReply");
}

TEST(MessageTest, SendToInvalidNodeAborts) {
  Network net(2);
  PageRequestMsg req;
  EXPECT_DEATH(net.Send(Make(0, 7, req)), "CHECK failed");
}

}  // namespace
}  // namespace cvm
