// Flow-event tests: causal chains ('s'/'t'/'f' trace events sharing an id)
// must always export whole or not at all. Ring overflow and sampling can
// drop any step independently, so the exporter suppresses every chain that
// lost its start or all of its later steps — a flow id in the JSON never
// dangles. Also covers the end-to-end behavior: a DSM run with flows on
// emits cross-node chains for its message traffic and stays deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"
#include "src/net/network.h"
#include "src/obs/tracer.h"
#include "tools/json_mini.h"

namespace cvm {
namespace {

obs::TraceConfig FlowConfig(size_t ring_capacity = 1 << 14, uint32_t sample_period = 1) {
  obs::TraceConfig config;
  config.trace_enabled = true;
  config.flow_events = true;
  config.ring_capacity = ring_capacity;
  config.sample_period = sample_period;
  return config;
}

obs::TraceEvent FlowEvent(char phase, NodeId node, uint64_t id, double sim_ts_ns) {
  obs::TraceEvent event;
  event.name = "PageRequest";
  event.cat = "flow";
  event.phase = phase;
  event.node = node;
  event.flow_id = id;
  event.sim_ts_ns = sim_ts_ns;
  return event;
}

// Parses an exported trace and groups flow phases by chain id.
std::map<std::string, std::string> FlowPhasesById(const std::string& json) {
  tools::JsonValue root;
  std::string error;
  EXPECT_TRUE(tools::JsonParser::Parse(json, &root, &error)) << error;
  std::map<std::string, std::string> phases;
  for (const tools::JsonValue& e : root.at("traceEvents").array) {
    const std::string ph = e.at("ph").str_or("");
    if (ph == "s" || ph == "t" || ph == "f") {
      phases[e.at("id").str_or("")] += ph;
    }
  }
  return phases;
}

TEST(FlowTest, CompleteChainExportsAllSteps) {
  obs::Tracer tracer(3, FlowConfig());
  tracer.Emit(FlowEvent('s', 0, 7, 100));
  tracer.Emit(FlowEvent('t', 1, 7, 200));
  tracer.Emit(FlowEvent('f', 2, 7, 300));
  const auto phases = FlowPhasesById(tracer.ToChromeJson());
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases.at("0x7"), "stf");
}

TEST(FlowTest, FinishWhoseStartWasOverwrittenIsDropped) {
  // Node 0's ring holds 4 events; the chain's 's' goes in first and is then
  // overwritten by unrelated instants. The surviving 'f' on node 1 must NOT
  // be exported — it would bind to nothing (or a recycled id).
  obs::Tracer tracer(2, FlowConfig(/*ring_capacity=*/4));
  tracer.Emit(FlowEvent('s', 0, 9, 100));
  for (int i = 0; i < 8; ++i) {
    obs::TraceEvent filler;
    filler.name = "filler";
    filler.cat = "test";
    filler.node = 0;
    tracer.Emit(filler);
  }
  tracer.Emit(FlowEvent('f', 1, 9, 500));
  EXPECT_GT(tracer.TotalDropped(), 0u);
  const auto phases = FlowPhasesById(tracer.ToChromeJson());
  EXPECT_EQ(phases.count("0x9"), 0u);
}

TEST(FlowTest, LoneStartIsDropped) {
  // An 's' whose every later step was lost is equally useless: an arrow
  // start pointing nowhere. Chains export only with both ends present.
  obs::Tracer tracer(2, FlowConfig());
  tracer.Emit(FlowEvent('s', 0, 11, 100));
  const auto phases = FlowPhasesById(tracer.ToChromeJson());
  EXPECT_EQ(phases.count("0xb"), 0u);
}

TEST(FlowTest, SampledChainsNeverDangle) {
  // Sampling (1 of 3) shoots holes in many chains; whatever survives to the
  // export must still be whole: every id has an 's' and at least one later
  // step, in timestamp order. The three-step chains put two events on node
  // 0's ring and one on node 1's, so the per-ring sampling counters drift
  // out of phase: some chains keep s+t (exportable), others keep only their
  // 'f' (must be suppressed).
  obs::Tracer tracer(2, FlowConfig(1 << 14, /*sample_period=*/3));
  for (uint64_t id = 1; id <= 300; ++id) {
    tracer.Emit(FlowEvent('s', 0, id, static_cast<double>(id * 10)));
    tracer.Emit(FlowEvent('t', 1, id, static_cast<double>(id * 10 + 4)));
    tracer.Emit(FlowEvent('f', 0, id, static_cast<double>(id * 10 + 8)));
  }
  EXPECT_GT(tracer.TotalSampledOut(), 0u);
  const auto phases = FlowPhasesById(tracer.ToChromeJson());
  ASSERT_FALSE(phases.empty());  // 1-in-3 sampling leaves some whole chains.
  EXPECT_LT(phases.size(), 300u);  // ...but not all of them.
  for (const auto& [id, seq] : phases) {
    EXPECT_EQ(seq.front(), 's') << "chain " << id << " lost its start: " << seq;
    EXPECT_GT(seq.size(), 1u) << "chain " << id << " start dangles";
    EXPECT_EQ(seq.find('s', 1), std::string::npos) << "chain " << id << " has two starts";
  }
}

TEST(FlowTest, DsmRunEmitsCrossNodeChains) {
  // End to end: a run with page, lock, and barrier traffic exports flow
  // chains whose steps land on different node tracks — the sender's 's' and
  // the receiver's 'f' (or 't' for forwarded messages) share the id.
  if (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "observability compiled out (CVM_OBS=OFF)";
  }
  const int kNodes = 4;
  DsmOptions options;
  options.num_nodes = kNodes;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  options.trace.trace_enabled = true;
  auto system = std::make_unique<DsmSystem>(options);
  auto data = SharedArray<int32_t>::Alloc(*system, "data", 64 * kNodes);
  auto total = SharedVar<int32_t>::Alloc(*system, "total");
  system->Run([&](NodeContext& ctx) {
    for (int epoch = 0; epoch < 2; ++epoch) {
      for (int i = 0; i < 64; ++i) {
        data.Set(ctx, ctx.id() * 64 + i, i);
      }
      ctx.Lock(0);
      total.Set(ctx, total.Get(ctx) + 1);
      ctx.Unlock(0);
      ctx.Barrier();
    }
  });

  ASSERT_NE(system->tracer(), nullptr);
  tools::JsonValue root;
  std::string error;
  ASSERT_TRUE(tools::JsonParser::Parse(system->tracer()->ToChromeJson(), &root, &error)) << error;

  std::map<std::string, std::set<int>> tracks_by_id;
  std::map<std::string, std::string> phases_by_id;
  std::set<std::string> flow_names;
  for (const tools::JsonValue& e : root.at("traceEvents").array) {
    const std::string ph = e.at("ph").str_or("");
    if (ph != "s" && ph != "t" && ph != "f") {
      continue;
    }
    const std::string id = e.at("id").str_or("");
    tracks_by_id[id].insert(static_cast<int>(e.at("tid").num_or(-1)));
    phases_by_id[id] += ph;
    flow_names.insert(e.at("name").str_or(""));
  }
  ASSERT_FALSE(tracks_by_id.empty());

  size_t cross_node = 0;
  for (const auto& [id, tracks] : tracks_by_id) {
    // The export is grouped by track, not chain order, so check membership:
    // exactly one start plus at least one later step per id.
    const std::string& seq = phases_by_id[id];
    EXPECT_EQ(std::count(seq.begin(), seq.end(), 's'), 1) << "chain " << id << ": " << seq;
    EXPECT_GT(seq.size(), 1u) << "chain " << id << " dangles";
    if (tracks.size() > 1) {
      ++cross_node;
    }
  }
  EXPECT_GT(cross_node, 0u);
  // Lock and barrier rounds all leave flows; page traffic too (the writers
  // fault their pages in from node 0's initial copies).
  for (const char* expected : {"LockGrant", "BarrierArrive", "BarrierRelease", "PageRequest"}) {
    EXPECT_TRUE(flow_names.count(expected)) << "missing flow chain for " << expected;
  }
}

TEST(FlowTest, FlowWireCostIsDeterministic) {
  // Flow tracing adds the TraceContext to the modeled wire, so it shifts
  // simulated time — but deterministically: two identical runs agree bit
  // for bit, and both exceed the flow-free run (strictly more wire bytes).
  if (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "observability compiled out (CVM_OBS=OFF)";
  }
  double sim_ns[3] = {0, 0, 0};
  uint64_t bytes[3] = {0, 0, 0};
  for (int pass = 0; pass < 3; ++pass) {
    DsmOptions options;
    options.num_nodes = 4;
    options.page_size = 256;
    options.max_shared_bytes = 64 * 1024;
    options.trace.trace_enabled = true;
    options.trace.flow_events = pass > 0;
    DsmSystem system(options);
    auto data = SharedArray<int32_t>::Alloc(system, "data", 64 * 4);
    RunResult result = system.Run([&](NodeContext& ctx) {
      for (int epoch = 0; epoch < 2; ++epoch) {
        for (int i = 0; i < 64; ++i) {
          data.Set(ctx, ctx.id() * 64 + i, i);
        }
        ctx.Barrier();
      }
    });
    sim_ns[pass] = result.sim_time_ns;
    bytes[pass] = result.net.bytes;
  }
  EXPECT_EQ(sim_ns[1], sim_ns[2]);
  EXPECT_EQ(bytes[1], bytes[2]);
  EXPECT_GT(bytes[1], bytes[0]);
  EXPECT_GE(sim_ns[1], sim_ns[0]);
}

TEST(FlowTest, RawNetworkSendsGetFallbackChains) {
  // Messages injected below the Node layer still chain: the fabric stamps a
  // fallback context at send and the wire grows by the context bytes.
  if (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "observability compiled out (CVM_OBS=OFF)";
  }
  Network with_flows(2);
  obs::Tracer tracer(2, FlowConfig());
  with_flows.AttachObservability(&tracer, nullptr);
  Message m;
  m.from = 0;
  m.to = 1;
  m.payload = PageRequestMsg{};
  with_flows.Send(m);
  const auto delivered = with_flows.Recv(1);
  ASSERT_TRUE(delivered.has_value());
  EXPECT_TRUE(delivered->ctx.stamped());
  EXPECT_EQ(delivered->wire_bytes,
            PayloadByteSize(delivered->payload) + obs::kTraceContextWireBytes);

  // With flows disabled the same send stays unstamped and byte-identical.
  Network plain(2);
  obs::TraceConfig no_flows = FlowConfig();
  no_flows.flow_events = false;
  obs::Tracer plain_tracer(2, no_flows);
  plain.AttachObservability(&plain_tracer, nullptr);
  plain.Send(m);
  const auto plain_delivered = plain.Recv(1);
  ASSERT_TRUE(plain_delivered.has_value());
  EXPECT_FALSE(plain_delivered->ctx.stamped());
  EXPECT_EQ(plain_delivered->wire_bytes, PayloadByteSize(plain_delivered->payload));
}

}  // namespace
}  // namespace cvm
