// End-to-end observability tests: a real DSM run with tracing + metrics
// enabled must produce events from every layer on every node's track and one
// metrics row per barrier epoch; with observability off, nothing is
// allocated.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions ObsOptions(int nodes, bool trace, bool metrics) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  options.trace.trace_enabled = trace;
  options.trace.metrics_enabled = metrics;
  return options;
}

// A small multi-epoch workload exercising pages, locks, and barriers — with
// one deliberate unsynchronized write pair so the detector path runs too.
void BusyApp(NodeContext& ctx, SharedArray<int32_t>& data, SharedVar<int32_t>& total) {
  const int p = ctx.num_nodes();
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int i = 0; i < 16; ++i) {
      data.Set(ctx, ctx.id() * 16 + i, ctx.id() + epoch + i);
    }
    ctx.Lock(0);
    total.Set(ctx, total.Get(ctx) + 1);
    ctx.Unlock(0);
    ctx.Barrier();
    const int next = (ctx.id() + 1) % p;
    int sum = 0;
    for (int i = 0; i < 16; ++i) {
      sum += data.Get(ctx, next * 16 + i);
    }
    EXPECT_GE(sum, 0);
    ctx.Barrier();
  }
  // Racy epoch: every node writes word 0 with no synchronization.
  data.Set(ctx, 0, ctx.id());
}

TEST(ObsIntegrationTest, TraceCoversAllLayersAndAllNodeTracks) {
  const int kNodes = 8;
  DsmOptions options = ObsOptions(kNodes, /*trace=*/true, /*metrics=*/true);
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 16 * kNodes);
  auto total = SharedVar<int32_t>::Alloc(system, "total");
  RunResult result =
      system.Run([&](NodeContext& ctx) { BusyApp(ctx, data, total); });
  ASSERT_FALSE(result.races.empty());  // The deliberate race was detected.

  ASSERT_NE(system.tracer(), nullptr);
  const std::vector<obs::TraceEvent> events = system.tracer()->Collected();
  ASSERT_FALSE(events.empty());

  std::set<std::string> names;
  std::set<NodeId> nodes_seen;
  for (const obs::TraceEvent& e : events) {
    names.insert(e.name);
    nodes_seen.insert(e.node);
  }
  // The acceptance bar: at least 6 distinct event names across all 8 tracks.
  EXPECT_GE(names.size(), 6u) << "only " << names.size() << " distinct names";
  EXPECT_EQ(nodes_seen.size(), static_cast<size_t>(kNodes));

  // Every instrumented layer contributes.
  for (const char* expected :
       {"msg.send", "msg.recv", "page.fault.write", "page.fetch", "interval.open",
        "interval.close", "lock.acquire", "lock.release", "barrier", "detector.overlap",
        "race.report"}) {
    EXPECT_TRUE(names.count(expected)) << "missing event " << expected;
  }
  EXPECT_EQ(system.tracer()->TotalDropped(), 0u);
}

TEST(ObsIntegrationTest, MetricsRowsMatchBarrierCount) {
  DsmOptions options = ObsOptions(4, /*trace=*/false, /*metrics=*/true);
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 16 * 4);
  auto total = SharedVar<int32_t>::Alloc(system, "total");
  RunResult result =
      system.Run([&](NodeContext& ctx) { BusyApp(ctx, data, total); });

  EXPECT_EQ(system.tracer(), nullptr);  // Tracing was not requested.
  ASSERT_NE(system.metrics(), nullptr);
  EXPECT_EQ(system.metrics()->NumRows(), result.barriers);
  EXPECT_GT(result.barriers, 0u);

  // Cross-check a few counters against the run's own accounting.
  EXPECT_EQ(system.metrics()->counter("dsm.barriers")->value(),
            result.barriers * static_cast<uint64_t>(options.num_nodes));
  EXPECT_EQ(system.metrics()->counter("dsm.page_faults")->value(), result.page_faults);
  EXPECT_EQ(system.metrics()->counter("net.messages")->value(), result.net.messages);
  EXPECT_EQ(system.metrics()->counter("net.bytes")->value(), result.net.bytes);
  EXPECT_EQ(system.metrics()->counter("dsm.intervals")->value(), result.intervals_total);

  // Published overhead matches the timing buckets (published at the last
  // barrier; integer truncation loses < 1ns per bucket per node per epoch).
  const uint64_t published =
      system.metrics()->counter(BucketMetricName(Bucket::kIntervals))->value();
  EXPECT_GT(published, 0u);
}

TEST(ObsIntegrationTest, MetricsIntervalThinsSnapshots) {
  DsmOptions options = ObsOptions(4, /*trace=*/false, /*metrics=*/true);
  options.trace.metrics_interval = 2;
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 16 * 4);
  auto total = SharedVar<int32_t>::Alloc(system, "total");
  RunResult result =
      system.Run([&](NodeContext& ctx) { BusyApp(ctx, data, total); });
  EXPECT_EQ(system.metrics()->NumRows(), result.barriers / 2);
}

TEST(ObsIntegrationTest, DisabledObservabilityAllocatesNothing) {
  DsmOptions options = ObsOptions(4, /*trace=*/false, /*metrics=*/false);
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 16 * 4);
  auto total = SharedVar<int32_t>::Alloc(system, "total");
  RunResult result =
      system.Run([&](NodeContext& ctx) { BusyApp(ctx, data, total); });
  EXPECT_EQ(system.tracer(), nullptr);
  EXPECT_EQ(system.metrics(), nullptr);
  ASSERT_FALSE(result.races.empty());
}

TEST(ObsIntegrationTest, SimulatedTimeIsUnchangedByObservability) {
  // Observability must not perturb the deterministic cost model: the same
  // app with and without tracing lands on the identical simulated time.
  // Causal flow tracing is the one deliberate exception — it puts a real
  // TraceContext on the modeled wire (tests/obs/flow_test.cc covers it) —
  // so this invariant is checked with flow events off.
  // Lock-free, and each node's chunk is exactly one 256-byte page, so no
  // ownership churn: every simulated cost is independent of the real-time
  // interleaving and the total must be bit-identical across passes.
  constexpr int kWordsPerPage = 64;  // 256-byte pages / 4-byte words.
  double sim_times[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    DsmOptions options = ObsOptions(4, /*trace=*/pass == 1, /*metrics=*/pass == 1);
    options.trace.flow_events = false;
    DsmSystem system(options);
    auto data = SharedArray<int32_t>::Alloc(system, "data", kWordsPerPage * 4);
    RunResult result = system.Run([&](NodeContext& ctx) {
      for (int epoch = 0; epoch < 3; ++epoch) {
        for (int i = 0; i < kWordsPerPage; ++i) {
          data.Set(ctx, ctx.id() * kWordsPerPage + i, epoch + i);
        }
        ctx.Barrier();
        const int next = (ctx.id() + 1) % ctx.num_nodes();
        for (int i = 0; i < kWordsPerPage; ++i) {
          EXPECT_EQ(data.Get(ctx, next * kWordsPerPage + i), epoch + i);
        }
        ctx.Barrier();
      }
    });
    sim_times[pass] = result.sim_time_ns;
  }
  EXPECT_EQ(sim_times[0], sim_times[1]);
}

}  // namespace
}  // namespace cvm
