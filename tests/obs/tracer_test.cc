// Unit tests for the per-node event rings and the Chrome trace-event
// exporter: overflow/drain semantics, sampling, JSON well-formedness, and
// per-track timestamp monotonicity.
#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/obs/tracer.h"

namespace cvm::obs {
namespace {

TraceConfig SmallConfig(size_t ring_capacity = 8, uint32_t sample_period = 1) {
  TraceConfig config;
  config.trace_enabled = true;
  config.ring_capacity = ring_capacity;
  config.sample_period = sample_period;
  return config;
}

TraceEvent Instant(NodeId node, const char* name, double sim_ts_ns) {
  TraceEvent event;
  event.name = name;
  event.cat = "test";
  event.node = node;
  event.sim_ts_ns = sim_ts_ns;
  event.wall_ts_ns = static_cast<uint64_t>(sim_ts_ns) + 1;  // Nonzero.
  return event;
}

// ---------------------------------------------------------------------------
// A tiny JSON reader, enough to validate the exporter's output structurally:
// values are parsed into a tree of maps/vectors/strings/doubles. Any syntax
// error fails the parse. This is deliberately independent of the emitter.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) {
      return false;
    }
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    const size_t n = std::string(lit).size();
    if (text_.compare(pos_, n, lit) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }
  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'u':
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            pos_ += 4;
            c = '?';
            break;
          default:
            return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipSpace();
        std::string key;
        if (!ParseString(&key)) {
          return false;
        }
        SkipSpace();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return false;
        }
        ++pos_;
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->object[key] = std::move(value);
        SkipSpace();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->array.push_back(std::move(value));
        SkipSpace();
        if (pos_ >= text_.size()) {
          return false;
        }
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return false;
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      return Literal("true");
    }
    if (c == 'f') {
      out->kind = JsonValue::kBool;
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    // Number.
    const size_t begin = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '-' ||
            text_[pos_] == '+' || text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == begin) {
      return false;
    }
    out->kind = JsonValue::kNumber;
    try {
      out->number = std::stod(text_.substr(begin, pos_ - begin));
    } catch (...) {
      return false;
    }
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};
// ---------------------------------------------------------------------------

TEST(TracerTest, DrainPreservesEmissionOrder) {
  Tracer tracer(2, SmallConfig(16));
  for (int i = 0; i < 5; ++i) {
    TraceEvent e = Instant(0, "e", 100.0 * i);
    e.arg_name = "i";
    e.arg_value = static_cast<uint64_t>(i);
    tracer.Emit(e);
  }
  EXPECT_EQ(tracer.RingSize(0), 5u);
  tracer.Drain(0);
  EXPECT_EQ(tracer.RingSize(0), 0u);
  const std::vector<TraceEvent> collected = tracer.Collected();
  ASSERT_EQ(collected.size(), 5u);
  for (size_t i = 0; i < collected.size(); ++i) {
    EXPECT_EQ(collected[i].arg_value, i);
  }
  EXPECT_EQ(tracer.TotalDropped(), 0u);
}

TEST(TracerTest, OverflowDropsOldestAndCounts) {
  Tracer tracer(1, SmallConfig(/*ring_capacity=*/4));
  for (int i = 0; i < 10; ++i) {
    TraceEvent e = Instant(0, "e", 10.0 * i);
    e.arg_value = static_cast<uint64_t>(i);
    tracer.Emit(e);
  }
  EXPECT_EQ(tracer.RingSize(0), 4u);  // Capacity-bounded.
  EXPECT_EQ(tracer.TotalDropped(), 6u);
  EXPECT_EQ(tracer.TotalEmitted(), 10u);
  const std::vector<TraceEvent> collected = tracer.Collected();
  ASSERT_EQ(collected.size(), 4u);
  // Survivors are the newest four, still in order.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(collected[i].arg_value, 6 + i);
  }
}

TEST(TracerTest, DrainBelowCapacityDoesNotResurrectOldEvents) {
  // Regression: draining while the ring's lazy storage is still below
  // capacity must not let later emissions re-count the drained slots.
  Tracer tracer(1, SmallConfig(/*ring_capacity=*/16));
  tracer.Emit(Instant(0, "a", 1));
  tracer.Emit(Instant(0, "a", 2));
  tracer.Drain(0);
  tracer.Emit(Instant(0, "b", 3));
  EXPECT_EQ(tracer.RingSize(0), 1u);
  const std::vector<TraceEvent> collected = tracer.Collected();
  ASSERT_EQ(collected.size(), 3u);
  EXPECT_STREQ(collected[2].name, "b");
}

TEST(TracerTest, RingRefillsAfterDrain) {
  Tracer tracer(1, SmallConfig(4));
  for (int i = 0; i < 4; ++i) {
    tracer.Emit(Instant(0, "a", i));
  }
  tracer.Drain(0);
  for (int i = 0; i < 3; ++i) {
    tracer.Emit(Instant(0, "b", i));
  }
  EXPECT_EQ(tracer.RingSize(0), 3u);
  EXPECT_EQ(tracer.TotalDropped(), 0u);
  EXPECT_EQ(tracer.Collected().size(), 7u);
}

TEST(TracerTest, SamplingKeepsOneInEveryPeriod) {
  Tracer tracer(1, SmallConfig(/*ring_capacity=*/64, /*sample_period=*/4));
  for (int i = 0; i < 16; ++i) {
    tracer.Emit(Instant(0, "e", i));
  }
  EXPECT_EQ(tracer.TotalEmitted(), 4u);
  EXPECT_EQ(tracer.TotalSampledOut(), 12u);
  EXPECT_EQ(tracer.Collected().size(), 4u);
}

TEST(TracerTest, OutOfRangeNodeIsClamped) {
  Tracer tracer(2, SmallConfig());
  tracer.Emit(Instant(99, "e", 1));
  tracer.Emit(Instant(-3, "e", 2));
  EXPECT_EQ(tracer.RingSize(1), 1u);
  EXPECT_EQ(tracer.RingSize(0), 1u);
}

TEST(TracerTest, ChromeJsonParsesAndNamesBothTimeTracks) {
  Tracer tracer(3, SmallConfig(32));
  TraceEvent span = Instant(1, "work", 1000);
  span.phase = 'X';
  span.sim_dur_ns = 500;
  span.wall_dur_ns = 400;
  span.epoch = 2;
  tracer.Emit(span);
  TraceEvent weird = Instant(2, "odd", 2000);
  weird.str_arg_name = "kind";
  weird.str_arg_value = "quote\"backslash\\tab\t";
  tracer.Emit(weird);

  const std::string json = tracer.ToChromeJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_TRUE(root.object.count("traceEvents"));
  const JsonValue& events = root.object["traceEvents"];
  ASSERT_EQ(events.kind, JsonValue::kArray);

  std::set<std::string> process_names;
  int span_records = 0;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    const auto& obj = e.object;
    ASSERT_TRUE(obj.count("name"));
    ASSERT_TRUE(obj.count("ph"));
    ASSERT_TRUE(obj.count("pid"));
    ASSERT_TRUE(obj.count("tid"));
    const std::string ph = obj.at("ph").str;
    if (ph == "M") {
      if (obj.at("name").str == "process_name") {
        process_names.insert(obj.at("args").object.at("name").str);
      }
      continue;
    }
    ASSERT_TRUE(obj.count("ts"));
    if (ph == "X") {
      ++span_records;
      EXPECT_TRUE(obj.count("dur"));
      EXPECT_EQ(obj.at("args").object.at("epoch").number, 2);
    }
  }
  EXPECT_EQ(process_names, (std::set<std::string>{"simulated time", "wall time"}));
  EXPECT_EQ(span_records, 2);  // One per time track.
}

TEST(TracerTest, ChromeJsonTimestampsAreMonotonePerTrack) {
  Tracer tracer(4, SmallConfig(256));
  // Emit deliberately interleaved / unsorted across nodes.
  for (int i = 0; i < 40; ++i) {
    const NodeId node = i % 4;
    tracer.Emit(Instant(node, "e", 1000.0 * ((i * 7) % 13)));
  }
  const std::string json = tracer.ToChromeJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  std::map<std::pair<int, int>, double> last_ts;
  size_t timed_records = 0;
  for (const JsonValue& e : root.object["traceEvents"].array) {
    const auto& obj = e.object;
    if (obj.at("ph").str == "M") {
      continue;
    }
    const auto track = std::make_pair(static_cast<int>(obj.at("pid").number),
                                      static_cast<int>(obj.at("tid").number));
    const double ts = obj.at("ts").number;
    auto it = last_ts.find(track);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "track pid=" << track.first << " tid=" << track.second;
    }
    last_ts[track] = ts;
    ++timed_records;
  }
  // 40 events, each on the simulated and the wall track.
  EXPECT_EQ(timed_records, 80u);
  EXPECT_EQ(last_ts.size(), 8u);  // 4 nodes x 2 time tracks.
}

TEST(TracerTest, EventWithoutSimTimestampAppearsOnWallTrackOnly) {
  Tracer tracer(1, SmallConfig());
  TraceEvent e;
  e.name = "wall-only";
  e.cat = "test";
  e.node = 0;
  e.sim_ts_ns = -1;
  tracer.Emit(e);
  const std::string json = tracer.ToChromeJson();
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  int occurrences = 0;
  for (const JsonValue& rec : root.object["traceEvents"].array) {
    if (rec.object.at("name").str == "wall-only") {
      ++occurrences;
      EXPECT_EQ(rec.object.at("pid").number, 1);  // Wall-time track.
    }
  }
  EXPECT_EQ(occurrences, 1);
}

TEST(TracerTest, ResetReturnsToJustConstructedState) {
  Tracer tracer(2, SmallConfig(/*ring_capacity=*/4));
  // Overflow ring 0 so the dropped counter is nonzero, leave events buffered
  // in ring 1, drain some into the store, and burn a few flow ids.
  for (int i = 0; i < 6; ++i) {
    tracer.Emit(Instant(0, "a", i));
  }
  tracer.Emit(Instant(1, "b", 1));
  tracer.Drain(0);
  (void)tracer.NextFlowId();
  (void)tracer.NextFlowId();
  ASSERT_GT(tracer.TotalEmitted(), 0u);
  ASSERT_GT(tracer.TotalDropped(), 0u);
  ASSERT_GT(tracer.RingSize(1), 0u);

  tracer.Reset();
  EXPECT_EQ(tracer.TotalEmitted(), 0u);
  EXPECT_EQ(tracer.TotalDropped(), 0u);
  EXPECT_EQ(tracer.TotalSampledOut(), 0u);
  EXPECT_EQ(tracer.RingSize(0), 0u);
  EXPECT_EQ(tracer.RingSize(1), 0u);
  EXPECT_TRUE(tracer.Collected().empty());
  // Flow ids restart so re-runs produce identical chains.
  EXPECT_EQ(tracer.NextFlowId(), 1u);
}

TEST(TracerTest, ResetTracerStillAcceptsAndExportsEvents) {
  Tracer tracer(1, SmallConfig());
  tracer.Emit(Instant(0, "before", 1));
  tracer.Reset();
  tracer.Emit(Instant(0, "after", 2));
  const std::vector<TraceEvent> collected = tracer.Collected();
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_STREQ(collected[0].name, "after");
  JsonValue root;
  ASSERT_TRUE(JsonParser(tracer.ToChromeJson()).Parse(&root));
}

TEST(TracerTest, SamplingPhaseRestartsAfterReset) {
  // With period 2 the first post-reset event must be kept, exactly like a
  // fresh tracer — the per-ring sequence counter restarts at zero.
  Tracer tracer(1, SmallConfig(/*ring_capacity=*/8, /*sample_period=*/2));
  tracer.Emit(Instant(0, "kept", 1));     // seq 0: kept.
  tracer.Emit(Instant(0, "sampled", 2));  // seq 1: sampled out.
  ASSERT_EQ(tracer.TotalEmitted(), 1u);
  tracer.Reset();
  tracer.Emit(Instant(0, "kept-again", 3));
  EXPECT_EQ(tracer.TotalEmitted(), 1u);
  EXPECT_EQ(tracer.TotalSampledOut(), 0u);
}

}  // namespace
}  // namespace cvm::obs
