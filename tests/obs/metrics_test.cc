// Unit tests for the metrics registry: find-or-create semantics, histogram
// bucketing, per-epoch snapshot rows, and the delta semantics of the CSV and
// JSON exports.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

namespace cvm::obs {
namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> cells;
  std::stringstream stream(line);
  std::string cell;
  while (std::getline(stream, cell, ',')) {
    cells.push_back(cell);
  }
  return cells;
}

std::vector<std::vector<std::string>> ParseCsv(const std::string& csv) {
  std::vector<std::vector<std::string>> rows;
  std::stringstream stream(csv);
  std::string line;
  while (std::getline(stream, line)) {
    if (!line.empty()) {
      rows.push_back(SplitLine(line));
    }
  }
  return rows;
}

size_t ColumnIndex(const std::vector<std::string>& header, const std::string& name) {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) {
      return i;
    }
  }
  ADD_FAILURE() << "missing column " << name;
  return 0;
}

TEST(MetricsTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(registry.counter("y"), a);
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(MetricsTest, HistogramBucketsAreLogScale) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1024);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.max(), 1024u);
  EXPECT_EQ(h.bucket(0), 1u);   // v == 0
  EXPECT_EQ(h.bucket(1), 1u);   // v == 1
  EXPECT_EQ(h.bucket(2), 2u);   // v in [2, 4)
  EXPECT_EQ(h.bucket(11), 1u);  // v in [1024, 2048)
}

TEST(MetricsTest, OneRowPerSnapshot) {
  MetricsRegistry registry;
  registry.counter("c")->Add(1);
  for (int epoch = 0; epoch < 5; ++epoch) {
    registry.SnapshotEpoch(epoch, 1000.0 * (epoch + 1));
  }
  EXPECT_EQ(registry.NumRows(), 5u);
  const auto rows = ParseCsv(registry.ToCsv());
  ASSERT_EQ(rows.size(), 6u);  // Header + 5 rows.
}

TEST(MetricsTest, CsvEmitsPerEpochCounterDeltas) {
  MetricsRegistry registry;
  Counter* c = registry.counter("net.messages");
  Gauge* g = registry.gauge("depth");

  c->Add(10);
  g->Set(7);
  registry.SnapshotEpoch(0, 100);
  c->Add(5);
  g->Set(3);
  registry.SnapshotEpoch(1, 250);

  const auto rows = ParseCsv(registry.ToCsv());
  ASSERT_EQ(rows.size(), 3u);
  const auto& header = rows[0];
  const size_t epoch_col = ColumnIndex(header, "epoch");
  const size_t sim_col = ColumnIndex(header, "sim_time_ns");
  const size_t c_col = ColumnIndex(header, "net.messages");
  const size_t g_col = ColumnIndex(header, "depth");

  EXPECT_EQ(rows[1][epoch_col], "0");
  EXPECT_EQ(rows[1][sim_col], "100");
  EXPECT_EQ(rows[1][c_col], "10");  // First row: delta from zero.
  EXPECT_EQ(rows[1][g_col], "7");   // Gauges are point-in-time.
  EXPECT_EQ(rows[2][epoch_col], "1");
  EXPECT_EQ(rows[2][c_col], "5");   // Delta, not the cumulative 15.
  EXPECT_EQ(rows[2][g_col], "3");
}

TEST(MetricsTest, HistogramColumnsAreCountSumDeltasAndRunningMax) {
  MetricsRegistry registry;
  Histogram* h = registry.histogram("lat");
  h->Observe(100);
  h->Observe(300);
  registry.SnapshotEpoch(0, 1);
  h->Observe(50);
  registry.SnapshotEpoch(1, 2);

  const auto rows = ParseCsv(registry.ToCsv());
  ASSERT_EQ(rows.size(), 3u);
  const auto& header = rows[0];
  const size_t count_col = ColumnIndex(header, "lat.count");
  const size_t sum_col = ColumnIndex(header, "lat.sum");
  const size_t max_col = ColumnIndex(header, "lat.max");
  EXPECT_EQ(rows[1][count_col], "2");
  EXPECT_EQ(rows[1][sum_col], "400");
  EXPECT_EQ(rows[1][max_col], "300");
  EXPECT_EQ(rows[2][count_col], "1");
  EXPECT_EQ(rows[2][sum_col], "50");
  EXPECT_EQ(rows[2][max_col], "300");  // Max is cumulative, not a delta.
}

TEST(MetricsTest, MetricCreatedMidRunGetsColumnWithZerosBefore) {
  MetricsRegistry registry;
  registry.counter("early")->Add(1);
  registry.SnapshotEpoch(0, 1);
  registry.counter("late")->Add(4);
  registry.SnapshotEpoch(1, 2);

  const auto rows = ParseCsv(registry.ToCsv());
  ASSERT_EQ(rows.size(), 3u);
  const size_t late_col = ColumnIndex(rows[0], "late");
  EXPECT_EQ(rows[1][late_col], "0");
  EXPECT_EQ(rows[2][late_col], "4");
}

TEST(MetricsTest, JsonHasOneObjectPerEpoch) {
  MetricsRegistry registry;
  registry.counter("c")->Add(2);
  registry.SnapshotEpoch(0, 10);
  registry.counter("c")->Add(1);
  registry.SnapshotEpoch(1, 20);
  const std::string json = registry.ToJson();
  size_t count = 0;
  for (size_t pos = json.find("\"epoch\":"); pos != std::string::npos;
       pos = json.find("\"epoch\":", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
  EXPECT_NE(json.find("\"c\":1"), std::string::npos);
}

TEST(MetricsTest, ResetClearsValuesAndRows) {
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  Histogram* h = registry.histogram("h");
  c->Add(5);
  h->Observe(9);
  registry.SnapshotEpoch(0, 1);
  registry.Reset();
  EXPECT_EQ(registry.NumRows(), 0u);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(h->max(), 0u);
  // Pointers stay valid across Reset.
  c->Increment();
  EXPECT_EQ(c->value(), 1u);
}

TEST(MetricsTest, ReuseAfterResetStartsAFreshSeries) {
  // The warm-service pattern: the same registry serves run after run, and
  // each run's export must look like a fresh process — no rows, values, or
  // wall-clock origin carried over.
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  Gauge* g = registry.gauge("g");
  c->Add(41);
  g->Set(-7);
  registry.SnapshotEpoch(0, 1);
  registry.SnapshotEpoch(1, 2);
  ASSERT_EQ(registry.NumRows(), 2u);

  registry.Reset();
  EXPECT_EQ(g->value(), 0);

  c->Add(3);
  registry.SnapshotEpoch(0, 1);
  ASSERT_EQ(registry.NumRows(), 1u);
  const auto rows = ParseCsv(registry.ToCsv());
  ASSERT_EQ(rows.size(), 2u);  // Header + the one new row.
  EXPECT_EQ(rows[1][ColumnIndex(rows[0], "c")], "3");
}

}  // namespace
}  // namespace cvm::obs
