// Storage-bound tests for the paper's trace-retention claims: the online
// system keeps only the current epoch's consistency data ("our system only
// discards trace information when it has been checked" — §6.4, and it does
// discard it then), while postmortem tracing retains everything.
#include <gtest/gtest.h>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions Options() {
  DsmOptions options;
  options.num_nodes = 4;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  return options;
}

// Many identical epochs; per-epoch work is constant.
RunResult RunEpochs(const DsmOptions& options, int epochs) {
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 64);
  return system.Run([&, epochs](NodeContext& ctx) {
    for (int e = 0; e < epochs; ++e) {
      for (int i = 0; i < 8; ++i) {
        data.Set(ctx, ctx.id() * 8 + i, e);
        (void)data.Get(ctx, ((ctx.id() + 1) % ctx.num_nodes()) * 8 + i);
      }
      ctx.Barrier();
    }
  });
}

TEST(DsmStorageTest, OnlineRetentionIsBoundedByOneEpoch) {
  RunResult short_run = RunEpochs(Options(), 4);
  RunResult long_run = RunEpochs(Options(), 32);
  // 8x the epochs, same high-water mark: checked data is dropped.
  EXPECT_EQ(long_run.max_retained_bitmap_pairs, short_run.max_retained_bitmap_pairs);
  EXPECT_LE(long_run.max_interval_log_size, short_run.max_interval_log_size + 2);
  // But total recorded grows with the run, of course.
  EXPECT_GT(long_run.bitmap_pairs_recorded, 4 * short_run.bitmap_pairs_recorded);
}

TEST(DsmStorageTest, PostmortemRetentionGrowsWithTheRun) {
  DsmOptions options = Options();
  options.postmortem_trace = true;
  RunResult short_run = RunEpochs(options, 4);
  RunResult long_run = RunEpochs(options, 32);
  EXPECT_GT(long_run.max_retained_bitmap_pairs, 4 * short_run.max_retained_bitmap_pairs)
      << "the trace must accumulate across epochs";
}

TEST(DsmStorageTest, ConsolidationBoundsLockOnlyPhases) {
  // Without consolidation a lock-only phase accumulates interval records;
  // with periodic Consolidate() the log stays near its per-chunk size.
  auto run = [&](bool consolidate) {
    DsmOptions options = Options();
    DsmSystem system(options);
    auto x = SharedVar<int32_t>::Alloc(system, "x");
    return system.Run([&, consolidate](NodeContext& ctx) {
      for (int chunk = 0; chunk < 6; ++chunk) {
        for (int i = 0; i < 10; ++i) {
          ctx.Lock(1);
          x.Set(ctx, x.Get(ctx) + 1);
          ctx.Unlock(1);
        }
        if (consolidate) {
          ctx.Consolidate();
        }
      }
    });
  };
  RunResult unbounded = run(false);
  RunResult bounded = run(true);
  EXPECT_LT(bounded.max_interval_log_size * 3, unbounded.max_interval_log_size)
      << "consolidation must garbage-collect interval records";
}

}  // namespace
}  // namespace cvm
