// Configuration validation and lifecycle misuse: every invalid setup must
// abort loudly rather than run wrong.
#include <gtest/gtest.h>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions Valid() {
  DsmOptions options;
  options.num_nodes = 2;
  options.page_size = 256;
  options.max_shared_bytes = 16 * 1024;
  return options;
}

TEST(DsmOptionsDeathTest, DiffDetectionRequiresMultiWriter) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DsmOptions options = Valid();
  options.protocol = ProtocolKind::kSingleWriterLrc;
  options.write_detection = WriteDetection::kDiffs;
  EXPECT_DEATH({ DsmSystem system(options); }, "multi-writer");
}

TEST(DsmOptionsDeathTest, ZeroNodesAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  DsmOptions options = Valid();
  options.num_nodes = 0;
  EXPECT_DEATH({ DsmSystem system(options); }, "CHECK failed");
}

TEST(DsmOptionsDeathTest, SecondRunWithoutResetAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmSystem system(Valid());
        system.Run([](NodeContext&) {});
        system.Run([](NodeContext&) {});
      },
      "one Run\\(\\) per Reset\\(\\) cycle");
}

TEST(DsmOptionsDeathTest, AllocAfterRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmSystem system(Valid());
        system.Run([](NodeContext&) {});
        system.Alloc("late", 64);
      },
      "before Run");
}

TEST(DsmOptionsDeathTest, SegmentExhaustionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmSystem system(Valid());
        system.Alloc("huge", 17 * 1024);  // Exceeds max_shared_bytes.
      },
      "exhausted");
}

TEST(DsmOptionsTest, DetectionOffStillRunsCoherently) {
  DsmOptions options = Valid();
  options.race_detection = false;
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");
  RunResult result = system.Run([&](NodeContext& ctx) {
    ctx.Lock(0);
    x.Set(ctx, x.Get(ctx) + 1);
    ctx.Unlock(0);
    ctx.Barrier();
    EXPECT_EQ(x.Get(ctx), 2);
  });
  EXPECT_TRUE(result.races.empty());
  EXPECT_EQ(result.access.instrumented_calls, 0u) << "no instrumentation when off";
  EXPECT_EQ(result.detector.interval_comparisons, 0u);
}

TEST(DsmOptionsTest, OnlineOffTraceOnFindsNothingOnline) {
  DsmOptions options = Valid();
  options.online_detection = false;
  options.postmortem_trace = true;
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");
  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      x.Set(ctx, 1);
    } else {
      (void)x.Get(ctx);
    }
  });
  EXPECT_TRUE(result.races.empty()) << "online checking disabled";
  const auto analysis = system.trace().Analyze(system.segment().num_pages());
  EXPECT_FALSE(analysis.races.empty()) << "the trace still has the race";
}

TEST(DsmOptionsTest, SingleNodeRunsAndFindsNoRaces) {
  DsmOptions options = Valid();
  options.num_nodes = 1;
  DsmSystem system(options);
  auto x = SharedArray<int32_t>::Alloc(system, "x", 32);
  RunResult result = system.Run([&](NodeContext& ctx) {
    for (int i = 0; i < 32; ++i) {
      x.Set(ctx, i, i);
    }
    ctx.Barrier();
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(x.Get(ctx, i), i);
    }
  });
  EXPECT_TRUE(result.races.empty()) << "one node cannot race with itself";
}

}  // namespace
}  // namespace cvm
