// Tests for the Discussion-section features: §6.5 diff-derived write
// detection, §6.1 record/replay + watchpoints, §6.3 consolidation, §6.4
// first-race filtering, and the §7 post-mortem baseline.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions SmallOptions(int nodes) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  return options;
}

bool HasRaceOn(const std::vector<RaceReport>& races, const std::string& prefix) {
  return std::any_of(races.begin(), races.end(), [&](const RaceReport& r) {
    return r.symbol.rfind(prefix, 0) == 0;
  });
}

// Two nodes write the same word concurrently. Value selection makes the
// write either visible to diffing or not.
RunResult RunConflictingWrites(const DsmOptions& options, int32_t value_a, int32_t value_b) {
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");
  return system.Run([&, value_a, value_b](NodeContext& ctx) {
    ctx.Barrier();
    if (ctx.id() == 0) {
      x.Set(ctx, value_a);
    } else if (ctx.id() == 1) {
      x.Set(ctx, value_b);
    }
  });
}

TEST(WriteDetectionTest, DiffModeFindsValueChangingRaces) {
  DsmOptions options = SmallOptions(2);
  options.protocol = ProtocolKind::kMultiWriterHomeLrc;
  options.write_detection = WriteDetection::kDiffs;
  RunResult result = RunConflictingWrites(options, 1, 2);
  EXPECT_TRUE(HasRaceOn(result.races, "x"));
}

TEST(WriteDetectionTest, DiffModeMissesSameValueOverwrites) {
  // §6.5's weaker guarantee: a shared value overwritten with the same value
  // leaves no diff entry, so the race goes undetected.
  DsmOptions options = SmallOptions(2);
  options.protocol = ProtocolKind::kMultiWriterHomeLrc;
  options.write_detection = WriteDetection::kDiffs;
  RunResult result = RunConflictingWrites(options, 0, 0);  // x starts at 0.
  EXPECT_FALSE(HasRaceOn(result.races, "x"));

  // Instrumentation-based detection catches the very same execution.
  options.write_detection = WriteDetection::kInstrumentation;
  RunResult with_instr = RunConflictingWrites(options, 0, 0);
  EXPECT_TRUE(HasRaceOn(with_instr.races, "x"));
}

TEST(WriteDetectionTest, DiffModeSkipsStoreInstrumentation) {
  DsmOptions options = SmallOptions(2);
  options.protocol = ProtocolKind::kMultiWriterHomeLrc;
  options.write_detection = WriteDetection::kDiffs;
  RunResult diff_mode = RunConflictingWrites(options, 1, 2);
  options.write_detection = WriteDetection::kInstrumentation;
  RunResult instr_mode = RunConflictingWrites(options, 1, 2);
  // ~25% of accesses are stores; diff mode must issue fewer analysis calls.
  EXPECT_LT(diff_mode.access.instrumented_calls, instr_mode.access.instrumented_calls);
  EXPECT_EQ(diff_mode.access.shared_writes, 0u);
}

// A lock-ordered program whose shared history depends entirely on grant
// order: each node appends its id to a log.
RunResult RunAppendLog(const DsmOptions& options, std::vector<int32_t>* log_out) {
  DsmSystem system(options);
  auto cursor = SharedVar<int32_t>::Alloc(system, "cursor");
  auto log = SharedArray<int32_t>::Alloc(system, "log", 64);
  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      cursor.Set(ctx, 0);
    }
    ctx.Barrier();
    for (int i = 0; i < 4; ++i) {
      ctx.Lock(1);
      const int32_t at = cursor.Get(ctx);
      log.Set(ctx, at, ctx.id());
      cursor.Set(ctx, at + 1);
      ctx.Unlock(1);
    }
    ctx.Barrier();
    if (ctx.id() == 0 && log_out != nullptr) {
      for (int32_t i = 0; i < cursor.Get(ctx); ++i) {
        log_out->push_back(log.Get(ctx, i));
      }
    }
  });
  return result;
}

TEST(ReplayTest, ReplayReproducesRecordedGrantOrder) {
  DsmOptions record_options = SmallOptions(4);
  record_options.record_sync_order = true;
  std::vector<int32_t> first_log;
  RunResult first = RunAppendLog(record_options, &first_log);
  ASSERT_EQ(first_log.size(), 16u);

  DsmOptions replay_options = SmallOptions(4);
  replay_options.replay_schedule = &first.recorded_schedule;
  std::vector<int32_t> second_log;
  RunResult second = RunAppendLog(replay_options, &second_log);

  // §6.1: enforcing the recorded synchronization order makes the execution
  // repeat exactly.
  EXPECT_EQ(second_log, first_log);
}

TEST(ReplayTest, WatchpointGathersSitesForConflictedAddress) {
  DsmOptions options = SmallOptions(2);
  DsmSystem probe(options);
  auto x = SharedVar<int32_t>::Alloc(probe, "x");
  options.watch = Watchpoint{x.addr(), kWordSize, -1};
  DsmSystem system(options);
  auto y = SharedVar<int32_t>::Alloc(system, "x");  // Same layout.
  RunResult result = system.Run([&](NodeContext& ctx) {
    ctx.Barrier();
    if (ctx.id() == 0) {
      ctx.SetSite("app.cc:writer");
      y.Set(ctx, 5);
    } else {
      ctx.SetSite("app.cc:racy_reader");
      (void)y.Get(ctx);
    }
  });
  ASSERT_GE(result.watch_hits.size(), 2u);
  const bool has_writer = std::any_of(result.watch_hits.begin(), result.watch_hits.end(),
                                      [](const WatchHit& h) {
                                        return h.is_write && h.site == "app.cc:writer";
                                      });
  const bool has_reader = std::any_of(result.watch_hits.begin(), result.watch_hits.end(),
                                      [](const WatchHit& h) {
                                        return !h.is_write && h.site == "app.cc:racy_reader";
                                      });
  EXPECT_TRUE(has_writer);
  EXPECT_TRUE(has_reader);
}

TEST(ConsolidationTest, LockOnlyProgramChecksRacesAtConsolidation) {
  // §6.3: a barrier-free (lock-only) phase uses Consolidate() to run the
  // race check and garbage-collect consistency data.
  DsmOptions options = SmallOptions(2);
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");
  RunResult result = system.Run([&](NodeContext& ctx) {
    for (int round = 0; round < 3; ++round) {
      if (ctx.id() == 0) {
        ctx.Lock(0);
        x.Set(ctx, round);
        ctx.Unlock(0);
      } else {
        (void)x.Get(ctx);  // Unsynchronized read: races every round.
      }
      ctx.Consolidate();
    }
  });
  // One read-write race per consolidation epoch.
  const size_t on_x = static_cast<size_t>(std::count_if(
      result.races.begin(), result.races.end(),
      [](const RaceReport& r) { return r.symbol.rfind("x", 0) == 0; }));
  EXPECT_GE(on_x, 3u);
}

TEST(FirstRacesTest, OnlyEarliestEpochReported) {
  DsmOptions options = SmallOptions(2);
  options.first_races_only = true;
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");
  auto z = SharedVar<int32_t>::Alloc(system, "z");
  RunResult result = system.Run([&](NodeContext& ctx) {
    // Epoch 0: race on x.
    if (ctx.id() == 0) {
      x.Set(ctx, 1);
    } else {
      (void)x.Get(ctx);
    }
    ctx.Barrier();
    // Epoch 1: race on z — affected by epoch 0's race, not "first".
    if (ctx.id() == 0) {
      z.Set(ctx, 1);
    } else {
      (void)z.Get(ctx);
    }
  });
  EXPECT_TRUE(HasRaceOn(result.races, "x"));
  EXPECT_FALSE(HasRaceOn(result.races, "z"));
  for (const RaceReport& r : result.races) {
    EXPECT_EQ(r.epoch, 0);
  }
}

TEST(PostMortemTest, OfflineAnalysisMatchesOnlineReports) {
  DsmOptions options = SmallOptions(3);
  options.postmortem_trace = true;  // Trace AND check online in one run.
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");
  auto arr = SharedArray<int32_t>::Alloc(system, "arr", 64);
  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      x.Set(ctx, 9);
    } else {
      (void)x.Get(ctx);
    }
    ctx.Barrier();
    // False sharing: distinct words of one page.
    arr.Set(ctx, ctx.id(), 1);
    ctx.Barrier();
    // A write-write race.
    if (ctx.id() != 2) {
      arr.Set(ctx, 50, ctx.id());
    }
  });

  const auto analysis = system.trace().Analyze(system.segment().num_pages());
  ASSERT_EQ(analysis.races.size(), result.races.size());
  for (const RaceReport& online : result.races) {
    const bool found = std::any_of(analysis.races.begin(), analysis.races.end(),
                                   [&](const RaceReport& offline) {
                                     return offline.SameRace(online);
                                   });
    EXPECT_TRUE(found) << online.ToString();
  }
  // The trace holds everything the run produced: storage grows with the
  // run, unlike the online system which discards checked epochs.
  EXPECT_GT(system.trace().TraceBytes(), 0u);
  EXPECT_GE(system.trace().NumBitmapPairs(), 4u);
}

}  // namespace
}  // namespace cvm
