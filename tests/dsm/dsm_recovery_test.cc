// Crash-tolerance tests (docs/FAULTS.md "Crash faults & recovery"): a
// seeded node crash must end the run as a recoverable event — no process
// abort, no hang — with every survivor rolled back to the last consistent
// barrier cut and the race report truncated to the fully-checked prefix.
// A fabric that hosted a crash must also Reset() back to a bit-identical
// clean state (the stronger property the service's quarantine-and-rebuild
// policy does not even rely on).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/dsm/dsm.h"
#include "src/fault/fault.h"
#include "src/race/race_report.h"

namespace cvm {
namespace {

SorApp::Params SmallSor() {
  SorApp::Params params;
  params.rows = 34;
  params.cols = 32;
  params.iters = 2;
  return params;
}

WaterApp::Params SmallWater() {
  WaterApp::Params params;
  params.molecules = 64;
  params.iters = 2;
  return params;
}

struct Outcome {
  bool verified = false;
  std::vector<RaceReport> races;
  CrashOutcome recovery;
  uint64_t barriers = 0;
};

template <typename App>
Outcome RunApp(typename App::Params params, const fault::FaultPlan& plan, int nodes,
               DetectionPipeline pipeline = DetectionPipeline::kSerial) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.fault_plan = plan;
  options.detection_pipeline = pipeline;
  auto app = std::make_unique<App>(params);
  DsmSystem system(options);
  app->Setup(system);
  RunResult result = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });
  Outcome outcome;
  outcome.verified = app->Verify();
  outcome.races = std::move(result.races);
  outcome.recovery = result.recovery;
  outcome.barriers = result.barriers;
  return outcome;
}

std::string Summary(const std::vector<RaceReport>& races) {
  std::string text;
  for (const RaceSummaryLine& line : SummarizeRaces(races)) {
    text += line.symbol + ":" + std::to_string(line.write_write) + ":" +
            std::to_string(line.read_write) + ":" + std::to_string(line.first_epoch) + "\n";
  }
  return text;
}

std::vector<RaceReport> ReportsThrough(const std::vector<RaceReport>& races,
                                       EpochId last_epoch) {
  std::vector<RaceReport> prefix;
  for (const RaceReport& report : races) {
    if (report.epoch <= last_epoch) {
      prefix.push_back(report);
    }
  }
  return prefix;
}

TEST(DsmRecoveryTest, SeededCrashIsARecoverableEventNotAnAbort) {
  const auto plan = fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, 3);
  const Outcome outcome = RunApp<SorApp>(SmallSor(), plan, 4);
  ASSERT_TRUE(outcome.recovery.crashed);
  EXPECT_GE(outcome.recovery.crash_node, 0);
  EXPECT_LT(outcome.recovery.crash_node, 4);
  EXPECT_EQ(outcome.recovery.crash_epoch, 1);
  // The crash fires at barrier 1, so only barrier 0's detection completed.
  EXPECT_EQ(outcome.recovery.last_consistent_epoch, 0);
  // Every node (the victim included) restored the checkpointed cut.
  EXPECT_EQ(outcome.recovery.rollbacks, 4u);
  // A torn run does not verify — the workload is the service's to retry.
  EXPECT_FALSE(outcome.verified);
}

TEST(DsmRecoveryTest, CrashedRunReportsThePrefixTheConsistentCutCovers) {
  // Buggy water races from epoch 2 on; crash at epoch 4 so some (not all)
  // racy epochs complete. The crashed run's reports must be exactly the
  // baseline reports whose detecting barrier is inside the consistent cut.
  const auto off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const Outcome clean = RunApp<WaterApp>(SmallWater(), off, 4);
  ASSERT_TRUE(clean.verified);
  ASSERT_FALSE(clean.races.empty());

  fault::FaultPlan plan = fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, 1);
  plan.crash_epoch = 4;
  const Outcome crashed = RunApp<WaterApp>(SmallWater(), plan, 4);
  ASSERT_TRUE(crashed.recovery.crashed);
  EXPECT_EQ(crashed.recovery.crash_epoch, 4);
  EXPECT_EQ(crashed.recovery.last_consistent_epoch, 3);
  EXPECT_FALSE(crashed.races.empty());  // Epoch-2/3 races survived the rollback.
  EXPECT_EQ(Summary(crashed.races),
            Summary(ReportsThrough(clean.races, crashed.recovery.last_consistent_epoch)));
}

TEST(DsmRecoveryTest, MasterCrashIsDetectedBySurvivingWorkers) {
  // Node 0 runs the barrier and the detection pipeline; its death is the
  // worst case (every survivor is mid-wait on it, none can be released).
  fault::FaultPlan plan = fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, 1);
  plan.crash_node = 0;
  plan.crash_epoch = 1;
  const Outcome outcome = RunApp<SorApp>(SmallSor(), plan, 4);
  ASSERT_TRUE(outcome.recovery.crashed);
  EXPECT_EQ(outcome.recovery.crash_node, 0);
  EXPECT_EQ(outcome.recovery.last_consistent_epoch, 0);
  EXPECT_EQ(outcome.recovery.rollbacks, 4u);
}

TEST(DsmRecoveryTest, LockHeavyAppSurvivesACrashWithoutHanging) {
  // TSP workers block in lock acquires, not just barriers — the abort has
  // to wake those waits too or the run wedges (the test's 300 s ctest
  // timeout is the hang detector).
  TspApp::Params params;
  params.num_cities = 10;
  fault::FaultPlan plan = fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, 5);
  plan.crash_epoch = 1;
  const Outcome outcome = RunApp<TspApp>(params, plan, 4);
  ASSERT_TRUE(outcome.recovery.crashed);
  EXPECT_EQ(outcome.recovery.crash_epoch, 1);
}

TEST(DsmRecoveryTest, CrashRecoveryWorksUnderEveryDetectionPipeline) {
  for (const DetectionPipeline pipeline :
       {DetectionPipeline::kSerial, DetectionPipeline::kSharded,
        DetectionPipeline::kDistributed}) {
    const auto plan = fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, 7);
    const Outcome outcome = RunApp<SorApp>(SmallSor(), plan, 4, pipeline);
    ASSERT_TRUE(outcome.recovery.crashed) << static_cast<int>(pipeline);
    EXPECT_EQ(outcome.recovery.last_consistent_epoch, 0) << static_cast<int>(pipeline);
  }
}

TEST(DsmRecoveryTest, DisarmedCrashPlanPerturbsNothing) {
  // A crash profile with the epoch disarmed (the service's reboot re-run)
  // keeps the reliable transport but must reproduce the baseline exactly.
  const auto off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const Outcome clean = RunApp<WaterApp>(SmallWater(), off, 4);
  fault::FaultPlan reboot = fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, 9);
  reboot.crash_epoch = -1;
  const Outcome rerun = RunApp<WaterApp>(SmallWater(), reboot, 4);
  EXPECT_FALSE(rerun.recovery.crashed);
  EXPECT_TRUE(rerun.verified);
  EXPECT_EQ(Summary(clean.races), Summary(rerun.races));
  EXPECT_EQ(clean.barriers, rerun.barriers);
}

TEST(DsmRecoveryTest, CrashedFabricResetsToACleanBitIdenticalState) {
  // Stronger than the service needs (it quarantines crashed fabrics): even
  // a fabric that just hosted a crash must Reset() to a state whose next
  // clean run is indistinguishable from a fresh construction's.
  const auto off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const Outcome fresh = RunApp<WaterApp>(SmallWater(), off, 4);

  DsmOptions options;
  options.num_nodes = 4;
  options.fault_plan = fault::FaultPlan::FromProfile(fault::FaultProfile::kCrash, 3);
  DsmSystem system(options);
  auto crashed_app = std::make_unique<WaterApp>(SmallWater());
  crashed_app->Setup(system);
  RunResult crashed =
      system.Run([&crashed_app](NodeContext& ctx) { crashed_app->Run(ctx); });
  ASSERT_TRUE(crashed.recovery.crashed);

  system.Reset();
  system.SetFaultPlan(fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1));
  auto clean_app = std::make_unique<WaterApp>(SmallWater());
  clean_app->Setup(system);
  RunResult rerun = system.Run([&clean_app](NodeContext& ctx) { clean_app->Run(ctx); });
  EXPECT_TRUE(clean_app->Verify());
  EXPECT_FALSE(rerun.recovery.crashed);
  EXPECT_EQ(Summary(fresh.races), Summary(rerun.races));
  EXPECT_EQ(fresh.barriers, rerun.barriers);
}

}  // namespace
}  // namespace cvm
