// Cross-protocol parity: the coherence protocol is a substrate, not a
// semantics. The same seeded app must leave identical final shared-memory
// contents under all three ProtocolKinds — ownership transfer, home-based
// twins/diffs, and eager invalidation only change how bytes move.
//
// FFT, SOR, and LU are barrier-only and therefore deterministic as-is.
// Water synchronizes with locks, whose grant order is scheduling-dependent
// (float accumulation order matters), so the single-writer run records the
// sync schedule and the other protocols replay it; words implicated in
// Water's intentional virial race are masked out of the comparison.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "src/apps/fft.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/water.h"
#include "src/dsm/dsm.h"
#include "src/protocol/protocol_kind.h"
#include "src/race/replay.h"

namespace cvm {
namespace {

constexpr ProtocolKind kAllProtocols[] = {ProtocolKind::kSingleWriterLrc,
                                          ProtocolKind::kMultiWriterHomeLrc,
                                          ProtocolKind::kEagerRcInvalidate};

struct Snapshot {
  std::vector<uint32_t> words;  // Final shared-segment contents.
  RunResult result;
  SyncSchedule schedule;  // Populated when recording.
};

DsmOptions BaseOptions(ProtocolKind protocol) {
  DsmOptions options;
  options.num_nodes = 4;
  options.protocol = protocol;
  return options;
}

// Runs the app to completion and reads back every allocated word through
// node 0, after a barrier so the snapshot is ordered after all writes.
Snapshot RunAndSnapshot(ParallelApp& app, DsmOptions options) {
  Snapshot snap;
  DsmSystem system(options);
  app.Setup(system);
  const uint64_t used = system.segment().used_bytes();
  snap.words.assign(used / kWordSize, 0);
  snap.result = system.Run([&](NodeContext& ctx) {
    app.Run(ctx);
    ctx.Barrier();
    if (ctx.id() == 0) {
      for (size_t i = 0; i < snap.words.size(); ++i) {
        snap.words[i] = ctx.ReadWord(i * kWordSize);
      }
    }
  });
  snap.schedule = snap.result.recorded_schedule;
  return snap;
}

void ExpectSameWords(const Snapshot& base, const Snapshot& other,
                     ProtocolKind other_kind, const std::set<GlobalAddr>& masked) {
  ASSERT_EQ(base.words.size(), other.words.size());
  size_t mismatches = 0;
  for (size_t i = 0; i < base.words.size(); ++i) {
    if (masked.count(i * kWordSize) != 0) {
      continue;
    }
    if (base.words[i] != other.words[i] && ++mismatches <= 5) {
      ADD_FAILURE() << ProtocolKindName(other_kind) << " diverges at word " << i
                    << " (addr " << i * kWordSize << "): " << base.words[i]
                    << " vs " << other.words[i];
    }
  }
  EXPECT_EQ(mismatches, 0u) << "under " << ProtocolKindName(other_kind);
}

// Barrier-only apps: run as-is under every protocol, expect bit-identical
// memory with no masking.
template <typename App, typename Params>
void BarrierOnlyParity(const Params& params) {
  std::unique_ptr<Snapshot> base;
  for (ProtocolKind protocol : kAllProtocols) {
    App app(params);
    Snapshot snap = RunAndSnapshot(app, BaseOptions(protocol));
    EXPECT_TRUE(app.Verify()) << ProtocolKindName(protocol);
    if (base == nullptr) {
      base = std::make_unique<Snapshot>(std::move(snap));
    } else {
      ExpectSameWords(*base, snap, protocol, {});
    }
  }
}

TEST(ProtocolParityTest, FftBitIdenticalAcrossProtocols) {
  FftApp::Params params;
  params.rows = 32;
  params.cols = 32;
  BarrierOnlyParity<FftApp>(params);
}

TEST(ProtocolParityTest, SorBitIdenticalAcrossProtocols) {
  SorApp::Params params;
  params.rows = 18;
  params.cols = 16;
  params.iters = 2;
  BarrierOnlyParity<SorApp>(params);
}

TEST(ProtocolParityTest, LuBitIdenticalAcrossProtocols) {
  LuApp::Params params;
  params.n = 32;
  params.block = 8;
  BarrierOnlyParity<LuApp>(params);
}

TEST(ProtocolParityTest, WaterIdenticalModuloRacyWords) {
  WaterApp::Params params;
  params.molecules = 32;
  params.iters = 2;

  // Record the lock-grant order once under the reference protocol.
  DsmOptions record_options = BaseOptions(ProtocolKind::kSingleWriterLrc);
  record_options.record_sync_order = true;
  WaterApp record_app(params);
  Snapshot base = RunAndSnapshot(record_app, record_options);
  EXPECT_TRUE(record_app.Verify());

  // Words touched by the (intentional) virial race may legitimately differ:
  // a racy read can observe either value. Everything else must match.
  std::set<GlobalAddr> masked;
  for (const RaceReport& report : base.result.races) {
    masked.insert(report.addr);
  }
  EXPECT_FALSE(masked.empty()) << "Water's virial race should be reported";

  for (ProtocolKind protocol : {ProtocolKind::kMultiWriterHomeLrc,
                                ProtocolKind::kEagerRcInvalidate}) {
    SyncSchedule schedule = base.schedule;  // Copy resets replay cursors.
    DsmOptions replay_options = BaseOptions(protocol);
    replay_options.replay_schedule = &schedule;
    WaterApp replay_app(params);
    Snapshot snap = RunAndSnapshot(replay_app, replay_options);
    EXPECT_TRUE(replay_app.Verify()) << ProtocolKindName(protocol);
    for (const RaceReport& report : snap.result.races) {
      masked.insert(report.addr);
    }
    ExpectSameWords(base, snap, protocol, masked);
  }
}

}  // namespace
}  // namespace cvm
