// DsmSystem re-entrancy: Reset() must return a finished system to exactly
// its just-constructed state, so construct/run/reset/run in one process is
// bit-identical to two fresh processes on every deterministic output. This
// is the foundation the warm multi-tenant service (src/svc/) stands on —
// any state leaking across Reset() shows up here as a diff in races,
// simulated time, traffic, or detector work.
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/apps/app_catalog.h"
#include "src/dsm/dsm.h"
#include "src/fault/fault.h"

namespace cvm {
namespace {

DsmOptions TestOptions() {
  DsmOptions options;
  options.num_nodes = 4;
  options.max_shared_bytes = 16ull << 20;
  return options;
}

// Every *deterministic* detection output of a run, as one comparable string.
// Page fetch traffic (PageRequest/PageReply counts, page faults), simulated
// time, and the detector's concurrent_pairs counter vary run-to-run even
// across fresh identically-configured processes — requests race against
// ownership transfers in real time — so they are deliberately absent; the
// fields below must match exactly.
std::string Fingerprint(const RunResult& result) {
  std::ostringstream out;
  for (const RaceReport& race : result.races) {
    out << race.ToString() << "\n";
  }
  out << "intervals=" << result.intervals_total << " barriers=" << result.barriers
      << " unhandled=" << result.dispatch_unhandled
      << " shared=" << result.shared_bytes_used << "\n";
  const DetectorStats& d = result.detector;
  out << "detector=" << d.intervals_total << "," << d.interval_comparisons << ","
      << d.overlapping_pairs << "," << d.checklist_entries << ","
      << d.bitmap_pairs_compared << "\n";
  return out.str();
}

// Barrier and detection traffic is epoch-synchronized, so on a fault-free
// run the message counts are exact. Only counts: retransmits make them vary
// under injected loss, and the byte sizes piggyback write-notice payloads
// that track the timing-dependent page traffic.
std::string WireFingerprint(const RunResult& result) {
  std::ostringstream out;
  for (const char* kind : {"BarrierArrive", "BarrierRelease", "BitmapRequest",
                           "BitmapReply"}) {
    const auto it = result.net.messages_by_kind.find(kind);
    out << kind << "=" << (it == result.net.messages_by_kind.end() ? 0 : it->second)
        << "\n";
  }
  return out.str();
}

RunResult MustRun(DsmSystem& system, const std::string& name, int64_t size) {
  CatalogRequest request;
  request.app = name;
  request.size = size;
  request.page_size = system.options().page_size;
  auto app = MakeCatalogApp(request);
  EXPECT_NE(app, nullptr) << name;
  if (app == nullptr) {
    return {};
  }
  app->Setup(system);
  RunResult result = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });
  EXPECT_TRUE(app->Verify()) << name;
  return result;
}

class ReentryTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ReentryTest, ResetRunMatchesFreshProcess) {
  const std::string app = GetParam();
  const int64_t size = app == "water" ? 64 : 32;

  DsmSystem reused(TestOptions());
  const RunResult first = MustRun(reused, app, size);
  reused.Reset();
  const RunResult second = MustRun(reused, app, size);

  DsmSystem fresh(TestOptions());
  const RunResult reference = MustRun(fresh, app, size);

  EXPECT_EQ(Fingerprint(first), Fingerprint(reference));
  EXPECT_EQ(Fingerprint(second), Fingerprint(reference));
  EXPECT_EQ(WireFingerprint(first), WireFingerprint(reference));
  EXPECT_EQ(WireFingerprint(second), WireFingerprint(reference));
  EXPECT_EQ(first.dispatch_unhandled, 0u);
}

// Water (the intentionally racy app) must report the same races either way.
INSTANTIATE_TEST_SUITE_P(Apps, ReentryTest, ::testing::Values("fft", "water"));

TEST(ReentryTest, DifferentAppsBackToBack) {
  // A workload must not see the previous tenant's segment contents or
  // detector state: fft-after-water equals fft-on-fresh.
  DsmSystem reused(TestOptions());
  (void)MustRun(reused, "water", 64);
  reused.Reset();
  const RunResult after_water = MustRun(reused, "fft", 32);

  DsmSystem fresh(TestOptions());
  const RunResult reference = MustRun(fresh, "fft", 32);
  EXPECT_EQ(Fingerprint(after_water), Fingerprint(reference));
  EXPECT_EQ(WireFingerprint(after_water), WireFingerprint(reference));
  EXPECT_TRUE(after_water.races.empty());
}

TEST(ReentryTest, FaultPlanSwapsCleanly) {
  // Run under lossy faults, Reset, swap the plan off: the second run must be
  // byte-identical to a never-faulted fresh system, with zero fault stats.
  DsmOptions faulty = TestOptions();
  faulty.fault_plan = fault::FaultPlan::FromProfile(fault::FaultProfile::kLossy, 7);

  DsmSystem system(faulty);
  const RunResult under_faults = MustRun(system, "fft", 32);
  EXPECT_GT(under_faults.fault.data_frames, 0u);

  system.Reset();
  system.SetFaultPlan(fault::FaultPlan{});
  const RunResult clean = MustRun(system, "fft", 32);

  DsmSystem fresh(TestOptions());
  const RunResult reference = MustRun(fresh, "fft", 32);
  EXPECT_EQ(Fingerprint(clean), Fingerprint(reference));
  EXPECT_EQ(WireFingerprint(clean), WireFingerprint(reference));
  EXPECT_EQ(clean.fault.data_frames, 0u);
  EXPECT_EQ(clean.fault.drops, 0u);

  // And the reverse swap: the same plan applied after Reset() still engages
  // the injector and yields the same detection results as the original
  // faulty run (wire counts vary under loss — retransmit timing — so only
  // the detection fingerprint is exact here).
  system.Reset();
  system.SetFaultPlan(faulty.fault_plan);
  const RunResult refaulted = MustRun(system, "fft", 32);
  EXPECT_EQ(Fingerprint(refaulted), Fingerprint(under_faults));
  EXPECT_GT(refaulted.fault.data_frames, 0u);
}

TEST(ReentryTest, ObservabilityStateClearsOnReset) {
  if constexpr (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "obs layer compiled out";
  }
  DsmOptions options = TestOptions();
  options.trace.trace_enabled = true;
  options.trace.metrics_enabled = true;

  DsmSystem system(options);
  (void)MustRun(system, "fft", 32);
  ASSERT_NE(system.tracer(), nullptr);
  ASSERT_NE(system.metrics(), nullptr);
  const uint64_t first_events = system.tracer()->TotalEmitted();
  EXPECT_GT(first_events, 0u);
  EXPECT_GT(system.metrics()->NumRows(), 0u);

  system.Reset();
  EXPECT_EQ(system.tracer()->TotalEmitted(), 0u);
  EXPECT_EQ(system.tracer()->Collected().size(), 0u);
  EXPECT_EQ(system.metrics()->NumRows(), 0u);
  EXPECT_EQ(system.metrics()->counter("net.messages")->value(), 0u);

  // The second run records a fresh stream (event counts track the timing-
  // dependent page traffic, so only liveness is exact here).
  (void)MustRun(system, "fft", 32);
  EXPECT_GT(system.tracer()->TotalEmitted(), 0u);
  EXPECT_GT(system.metrics()->NumRows(), 0u);
}

TEST(ReentryTest, AllocAfterResetStartsAtZero) {
  DsmSystem system(TestOptions());
  const GlobalAddr a = system.Alloc("first", 4096);
  EXPECT_EQ(a, 0u);
  (void)system.Run([](NodeContext&) {});
  system.Reset();
  // Same address space as a fresh process: region-scoped service reports
  // compare byte-identical against standalone baselines because of this.
  const GlobalAddr b = system.Alloc("second", 4096);
  EXPECT_EQ(b, 0u);
}

}  // namespace
}  // namespace cvm
