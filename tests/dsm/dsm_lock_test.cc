// Focused tests of the distributed lock manager: mutual exclusion under
// contention, token caching, multi-lock independence, interval counting
// around lock operations, and misuse aborts.
#include <gtest/gtest.h>

#include <numeric>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions Options(int nodes) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 256 * 1024;
  options.num_locks = 32;
  return options;
}

TEST(DsmLockTest, MutualExclusionUnderHeavyContention) {
  DsmOptions options = Options(8);
  DsmSystem system(options);
  auto counter = SharedVar<int32_t>::Alloc(system, "counter");
  auto in_section = SharedVar<int32_t>::Alloc(system, "in_section");
  constexpr int kRounds = 40;

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      counter.Set(ctx, 0);
      in_section.Set(ctx, 0);
    }
    ctx.Barrier();
    for (int i = 0; i < kRounds; ++i) {
      ctx.Lock(5);
      // Mutual exclusion witness: the flag must read 0, then 1 after we set
      // it, with no one else in between (shared memory is coherent inside
      // the critical section because the lock orders it).
      EXPECT_EQ(in_section.Get(ctx), 0);
      in_section.Set(ctx, 1);
      counter.Set(ctx, counter.Get(ctx) + 1);
      in_section.Set(ctx, 0);
      ctx.Unlock(5);
    }
    ctx.Barrier();
    if (ctx.id() == 0) {
      EXPECT_EQ(counter.Get(ctx), kRounds * ctx.num_nodes());
    }
  });
  EXPECT_TRUE(result.races.empty());
}

TEST(DsmLockTest, IndependentLocksDoNotSerializeButDoNotRace) {
  DsmOptions options = Options(4);
  DsmSystem system(options);
  auto slots = SharedArray<int32_t>::Alloc(system, "slots", 4);

  RunResult result = system.Run([&](NodeContext& ctx) {
    ctx.Barrier();
    // Node i increments slot i under lock i: fully independent.
    for (int round = 0; round < 20; ++round) {
      ctx.Lock(ctx.id());
      slots.Set(ctx, ctx.id(), slots.Get(ctx, ctx.id()) + 1);
      ctx.Unlock(ctx.id());
    }
    ctx.Barrier();
    if (ctx.id() == 0) {
      for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(slots.Get(ctx, i), 20);
      }
    }
  });
  // Slots share a page: everything here is false sharing, ordered per slot.
  EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
}

TEST(DsmLockTest, UncontendedReacquireUsesCachedToken) {
  DsmOptions options = Options(4);
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");

  RunResult result = system.Run([&](NodeContext& ctx) {
    ctx.Barrier();
    if (ctx.id() == 2) {
      for (int i = 0; i < 100; ++i) {
        ctx.Lock(7);
        x.Set(ctx, i);
        ctx.Unlock(7);
      }
    }
  });
  // After the first acquisition the token stays at node 2: at most a couple
  // of LockRequest messages for lock 7 in the whole run.
  auto it = result.net.messages_by_kind.find("LockRequest");
  const uint64_t requests = it == result.net.messages_by_kind.end() ? 0 : it->second;
  EXPECT_LE(requests, 4u);
  EXPECT_TRUE(result.races.empty());
}

TEST(DsmLockTest, LockPairCreatesTwoIntervals) {
  DsmOptions options = Options(2);
  DsmSystem system(options);
  auto x = SharedVar<int32_t>::Alloc(system, "x");
  RunResult with_locks = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      for (int i = 0; i < 10; ++i) {
        ctx.Lock(0);
        x.Set(ctx, i);
        ctx.Unlock(0);
      }
    }
  });
  // Node 0: interval 0 + 2 per lock pair + 2 for the final barrier, node 1:
  // just the barrier's. "The same act that creates intervals also removes
  // many interval pairs from consideration."
  EXPECT_GE(with_locks.intervals_total, 2u * 10u);
}

TEST(DsmLockDeathTest, UnlockWithoutHoldAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmOptions options = Options(2);
        DsmSystem system(options);
        system.Run([&](NodeContext& ctx) {
          if (ctx.id() == 0) {
            ctx.Unlock(3);  // Never acquired.
          }
        });
      },
      "not held");
}

TEST(DsmLockDeathTest, OutOfRangeLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmOptions options = Options(2);
        DsmSystem system(options);
        system.Run([&](NodeContext& ctx) { ctx.Lock(options.num_locks + 5); });
      },
      "CHECK failed");
}

}  // namespace
}  // namespace cvm
