// Tests for the typed memory handles: word layout, float round-trips,
// bounds aborts, and LocalArray instrumentation accounting.
#include <gtest/gtest.h>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions Options() {
  DsmOptions options;
  options.num_nodes = 2;
  options.page_size = 256;
  options.max_shared_bytes = 32 * 1024;
  return options;
}

TEST(HandlesTest, SharedArrayAddressesAreWordSpaced) {
  DsmSystem system(Options());
  auto arr = SharedArray<int32_t>::Alloc(system, "arr", 10);
  EXPECT_EQ(arr.size(), 10u);
  EXPECT_EQ(arr.addr(0) % 256, 0u) << "page aligned by default";
  EXPECT_EQ(arr.addr(3), arr.addr(0) + 12);
  EXPECT_EQ(system.segment().Symbolize(arr.addr(2)), "arr+8");
}

TEST(HandlesTest, FloatValuesRoundTripBitExactly) {
  DsmSystem system(Options());
  auto arr = SharedArray<float>::Alloc(system, "f", 8);
  const float values[] = {0.0f, -0.0f, 1.5f, -3.25e-7f, 1e30f,
                          std::numeric_limits<float>::infinity(),
                          std::numeric_limits<float>::denorm_min(), -1.0f};
  system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      for (int i = 0; i < 8; ++i) {
        arr.Set(ctx, i, values[i]);
      }
    }
    ctx.Barrier();
    for (int i = 0; i < 8; ++i) {
      const float got = arr.Get(ctx, i);
      EXPECT_EQ(std::bit_cast<uint32_t>(got), std::bit_cast<uint32_t>(values[i])) << i;
    }
  });
}

TEST(HandlesTest, OutOfBoundsIndexAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        DsmSystem system(Options());
        auto arr = SharedArray<int32_t>::Alloc(system, "arr", 4);
        (void)arr.addr(4);
      },
      "CHECK failed");
}

TEST(HandlesTest, LocalArrayCountsAsInstrumentedPrivate) {
  DsmSystem system(Options());
  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      LocalArray<int32_t> local(ctx, 16, -1);
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(local.Get(i), -1);
        local.Set(i, i * 3);
      }
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(local.Get(i), i * 3);
        EXPECT_EQ(local.raw()[i], i * 3);  // Uninstrumented view agrees.
      }
    }
  });
  EXPECT_EQ(result.access.private_accesses, 48u);  // 16 get + 16 set + 16 get.
  EXPECT_EQ(result.access.shared_accesses, 0u);
  EXPECT_EQ(result.access.instrumented_calls, 48u);
}

TEST(HandlesTest, SharedVarsPackOntoOnePage) {
  DsmSystem system(Options());
  auto a = SharedVar<int32_t>::Alloc(system, "a");
  auto b = SharedVar<int32_t>::Alloc(system, "b");
  EXPECT_EQ(b.addr(), a.addr() + kWordSize);
  system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      a.Set(ctx, 7);
      b.Set(ctx, 9);
    }
    ctx.Barrier();
    EXPECT_EQ(a.Get(ctx), 7);
    EXPECT_EQ(b.Get(ctx), 9);
  });
}

}  // namespace
}  // namespace cvm
