// Stress tests: larger node counts, mixed lock/barrier workloads, repeated
// back-to-back systems, and a long-running lock-only phase with periodic
// consolidation — the configurations where subtle protocol bugs (lost
// wakeups, stuck tokens, leaked epochs) would surface as hangs or wrong
// sums. Each test asserts exact arithmetic results.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions Options(int nodes, ProtocolKind protocol) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 256 * 1024;
  options.num_locks = 24;
  options.protocol = protocol;
  return options;
}

class StressTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(StressTest, TwelveNodesMixedWorkload) {
  DsmOptions options = Options(12, GetParam());
  DsmSystem system(options);
  auto sums = SharedArray<int32_t>::Alloc(system, "sums", 8);
  auto grid = SharedArray<int32_t>::Alloc(system, "grid", 12 * 16);

  RunResult result = system.Run([&](NodeContext& ctx) {
    Rng rng(1000 + ctx.id());
    ctx.Barrier();
    for (int phase = 0; phase < 4; ++phase) {
      // Lock-protected scatter into shared accumulators.
      for (int i = 0; i < 10; ++i) {
        const LockId lock = static_cast<LockId>(rng.Below(8));
        ctx.Lock(lock);
        sums.Set(ctx, lock, sums.Get(ctx, lock) + 1);
        ctx.Unlock(lock);
      }
      // Barrier-ordered private-block writes.
      for (int i = 0; i < 16; ++i) {
        grid.Set(ctx, ctx.id() * 16 + i, phase * 1000 + ctx.id());
      }
      ctx.Barrier();
      // Read a neighbour's block, written last epoch.
      const int next = (ctx.id() + 1) % ctx.num_nodes();
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(grid.Get(ctx, next * 16 + i), phase * 1000 + next);
      }
      ctx.Barrier();
    }
    if (ctx.id() == 0) {
      int32_t total = 0;
      for (int i = 0; i < 8; ++i) {
        total += sums.Get(ctx, i);
      }
      EXPECT_EQ(total, 12 * 4 * 10);
    }
  });
  EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
}

TEST_P(StressTest, BackToBackSystemsAreIndependent) {
  for (int round = 0; round < 6; ++round) {
    DsmOptions options = Options(4, GetParam());
    DsmSystem system(options);
    auto x = SharedVar<int32_t>::Alloc(system, "x");
    RunResult result = system.Run([&](NodeContext& ctx) {
      ctx.Lock(0);
      x.Set(ctx, x.Get(ctx) + 1);
      ctx.Unlock(0);
      ctx.Barrier();
      EXPECT_EQ(x.Get(ctx), 4);
    });
    EXPECT_TRUE(result.races.empty());
  }
}

TEST_P(StressTest, ManyBarriersManyEpochs) {
  DsmOptions options = Options(6, GetParam());
  DsmSystem system(options);
  auto round_data = SharedArray<int32_t>::Alloc(system, "round_data", 6);

  RunResult result = system.Run([&](NodeContext& ctx) {
    for (int epoch = 0; epoch < 40; ++epoch) {
      round_data.Set(ctx, ctx.id(), epoch * 100 + ctx.id());
      ctx.Barrier();
      const int peer = (ctx.id() + epoch) % ctx.num_nodes();
      EXPECT_EQ(round_data.Get(ctx, peer), epoch * 100 + peer);
      ctx.Barrier();
    }
  });
  EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
  EXPECT_EQ(result.barriers, 81u);  // 80 + the implicit final barrier.
}

TEST_P(StressTest, LockOnlyPhaseWithConsolidation) {
  // §6.3: a long lock-only phase, consolidated periodically so the interval
  // logs stay bounded and races keep being found promptly.
  DsmOptions options = Options(4, GetParam());
  DsmSystem system(options);
  auto guarded = SharedVar<int32_t>::Alloc(system, "guarded");
  auto racy = SharedVar<int32_t>::Alloc(system, "racy");

  RunResult result = system.Run([&](NodeContext& ctx) {
    for (int chunk = 0; chunk < 3; ++chunk) {
      for (int i = 0; i < 15; ++i) {
        ctx.Lock(2);
        guarded.Set(ctx, guarded.Get(ctx) + 1);
        ctx.Unlock(2);
        if (ctx.id() == 1) {
          racy.Set(ctx, i);  // Unsynchronized writes.
        } else if (ctx.id() == 2) {
          (void)racy.Get(ctx);  // Unsynchronized reads.
        }
      }
      ctx.Consolidate();
    }
    if (ctx.id() == 0) {
      EXPECT_EQ(guarded.Get(ctx), 4 * 3 * 15);
    }
  });
  // The racy pair is reported; the guarded counter is not.
  bool racy_found = false;
  for (const RaceReport& race : result.races) {
    EXPECT_EQ(race.symbol.rfind("racy", 0), 0u) << race.ToString();
    racy_found = true;
  }
  EXPECT_TRUE(racy_found);
}

// Regression for the eager-protocol invalidation race: a pushed
// invalidation landing while a page fetch is in flight must not let the
// install resurrect a stale copy past the next barrier. The pattern needs
// concurrent same-page writers + same-epoch readers of other words, then a
// barrier-ordered read of the written words (a miniature LU step).
TEST(EagerRegressionTest, InFlightFetchDoesNotResurrectStaleCopies) {
  for (int iter = 0; iter < 12; ++iter) {
    DsmOptions options = Options(4, ProtocolKind::kEagerRcInvalidate);
    options.page_size = 1024;
    DsmSystem system(options);
    const int n = 16;
    auto grid = SharedArray<int32_t>::Alloc(system, "grid", n * n);
    RunResult result = system.Run([&](NodeContext& ctx) {
      const int p = ctx.num_nodes();
      for (int r = 0; r < n; ++r) {
        if (r % p != ctx.id()) {
          continue;
        }
        for (int c = 0; c < n; ++c) {
          grid.Set(ctx, r * n + c, -1);
        }
      }
      ctx.Barrier();
      for (int epoch = 0; epoch < 5; ++epoch) {
        // Writers: each node owns interleaved rows of one page-sharing grid.
        for (int r = 0; r < n; ++r) {
          if (r % p != ctx.id()) {
            continue;
          }
          for (int c = 0; c < n; ++c) {
            grid.Set(ctx, r * n + c, epoch * 10000 + r * 100 + c);
          }
        }
        // Concurrent same-epoch reads of OWN rows (forces mid-epoch fetches
        // that race with other writers' pushed invalidations).
        for (int r = 0; r < n; ++r) {
          if (r % p == ctx.id()) {
            EXPECT_EQ(grid.Get(ctx, r * n), epoch * 10000 + r * 100);
          }
        }
        ctx.Barrier();
        // Barrier-ordered reads of everyone's rows: must see this epoch.
        for (int r = 0; r < n; ++r) {
          EXPECT_EQ(grid.Get(ctx, r * n + (r % n)), epoch * 10000 + r * 100 + (r % n))
              << "iter " << iter << " epoch " << epoch << " row " << r;
        }
        ctx.Barrier();
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, StressTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc,
                                           ProtocolKind::kEagerRcInvalidate),
                         [](const ::testing::TestParamInfo<ProtocolKind>& param_info) {
                           switch (param_info.param) {
                             case ProtocolKind::kSingleWriterLrc:
                               return "SingleWriter";
                             case ProtocolKind::kMultiWriterHomeLrc:
                               return "MultiWriterHome";
                             case ProtocolKind::kEagerRcInvalidate:
                               return "EagerRc";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace cvm
