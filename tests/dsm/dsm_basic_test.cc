// End-to-end smoke tests for the DSM runtime: shared memory coherence under
// locks and barriers, interval accounting, and weak-memory staleness.
#include <gtest/gtest.h>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions SmallOptions(int nodes, ProtocolKind protocol = ProtocolKind::kSingleWriterLrc) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  options.protocol = protocol;
  return options;
}

class DsmBasicTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(DsmBasicTest, LockProtectedCounterIsCoherent) {
  DsmOptions options = SmallOptions(4, GetParam());
  DsmSystem system(options);
  auto counter = SharedVar<int32_t>::Alloc(system, "counter");
  constexpr int kIncrementsPerNode = 50;

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      counter.Set(ctx, 0);
    }
    ctx.Barrier();
    for (int i = 0; i < kIncrementsPerNode; ++i) {
      ctx.Lock(0);
      counter.Set(ctx, counter.Get(ctx) + 1);
      ctx.Unlock(0);
    }
    ctx.Barrier();
    if (ctx.id() == 0) {
      EXPECT_EQ(counter.Get(ctx), kIncrementsPerNode * ctx.num_nodes());
    }
  });
  EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
}

TEST_P(DsmBasicTest, BarrierOrderedProducerConsumer) {
  DsmOptions options = SmallOptions(4, GetParam());
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 512);

  RunResult result = system.Run([&](NodeContext& ctx) {
    const int p = ctx.num_nodes();
    const size_t chunk = data.size() / p;
    // Epoch 0: each node writes its own chunk.
    for (size_t i = 0; i < chunk; ++i) {
      data.Set(ctx, ctx.id() * chunk + i, static_cast<int32_t>(ctx.id() * 1000 + i));
    }
    ctx.Barrier();
    // Epoch 1: each node reads the next node's chunk.
    const int next = (ctx.id() + 1) % p;
    for (size_t i = 0; i < chunk; ++i) {
      EXPECT_EQ(data.Get(ctx, next * chunk + i), static_cast<int32_t>(next * 1000 + i));
    }
  });
  // Same-page writes by different nodes are possible (chunk boundaries), but
  // reads are all barrier-ordered: no races.
  EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
}

TEST_P(DsmBasicTest, IntervalsPerBarrierIsTwoForBarrierOnlyApps) {
  DsmOptions options = SmallOptions(4, GetParam());
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 64);

  RunResult result = system.Run([&](NodeContext& ctx) {
    data.Set(ctx, ctx.id(), 1);
    ctx.Barrier();
    data.Set(ctx, ctx.id() + 8, 2);
    ctx.Barrier();
    data.Set(ctx, ctx.id() + 16, 3);
  });
  // Barrier-only apps create two intervals per process per barrier (§5,
  // Table 1: FFT and SOR show 2).
  EXPECT_NEAR(result.IntervalsPerBarrier(4), 2.0, 0.35);
}

TEST_P(DsmBasicTest, UnsynchronizedReadCanBeStale) {
  if (ProtocolInvalidatesEagerly(GetParam())) {
    // Eager invalidations race with the unsynchronized read in real time;
    // the read may legitimately see either value. Staleness is an LRC
    // guarantee to test, not an ERC one.
    GTEST_SKIP();
  }
  DsmOptions options = SmallOptions(2, GetParam());
  DsmSystem system(options);
  auto flag = SharedVar<int32_t>::Alloc(system, "flag");
  int32_t observed = -1;

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      flag.Set(ctx, 0);
    }
    ctx.Barrier();
    if (ctx.id() == 1) {
      // Touch the page so node 1 holds a valid copy.
      EXPECT_EQ(flag.Get(ctx), 0);
    }
    ctx.Barrier();
    if (ctx.id() == 0) {
      flag.Set(ctx, 42);  // No release follows before node 1's read.
    }
    // Unsynchronized: node 1 may legally read 0 (stale) — LRC only
    // guarantees propagation at acquires. With per-node copies it WILL be
    // stale, which is exactly the weak-memory behaviour of §6.4/Figure 5.
    if (ctx.id() == 1) {
      observed = flag.Get(ctx);
    }
    ctx.Barrier();
  });
  EXPECT_EQ(observed, 0) << "node 1 should see the stale value";
  // And the conflicting accesses form a detectable data race.
  EXPECT_FALSE(result.races.empty());
}

std::string ProtocolName(const ::testing::TestParamInfo<ProtocolKind>& param_info) {
  switch (param_info.param) {
    case ProtocolKind::kSingleWriterLrc:
      return "SingleWriter";
    case ProtocolKind::kMultiWriterHomeLrc:
      return "MultiWriterHome";
    case ProtocolKind::kEagerRcInvalidate:
      return "EagerRc";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(Protocols, DsmBasicTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc,
                                           ProtocolKind::kEagerRcInvalidate),
                         ProtocolName);

}  // namespace
}  // namespace cvm
