// Focused tests of the page protocols: single-writer ownership transfer and
// serving, multi-writer twin/diff merging of concurrent disjoint writes,
// and coherence across a sweep of page sizes.
#include <gtest/gtest.h>

#include <tuple>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions Options(int nodes, ProtocolKind protocol, uint64_t page_size) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = page_size;
  options.max_shared_bytes = 512 * 1024;
  options.protocol = protocol;
  return options;
}

TEST(DsmPageTest, MultiWriterMergesConcurrentDisjointWrites) {
  // The defining multi-writer property: two nodes write DIFFERENT words of
  // the same page in the same epoch, with no lock; both writes survive at
  // the home (single-writer would serialize via ownership; home-based
  // multi-writer merges diffs). It is false sharing, not a race.
  DsmOptions options = Options(4, ProtocolKind::kMultiWriterHomeLrc, 256);
  DsmSystem system(options);
  auto arr = SharedArray<int32_t>::Alloc(system, "arr", 32);

  RunResult result = system.Run([&](NodeContext& ctx) {
    ctx.Barrier();
    arr.Set(ctx, ctx.id() * 4, 100 + ctx.id());  // Disjoint words, one page.
    ctx.Barrier();
    for (int n = 0; n < ctx.num_nodes(); ++n) {
      EXPECT_EQ(arr.Get(ctx, n * 4), 100 + n) << "write by node " << n << " lost";
    }
  });
  EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
  // The page DID overlap in concurrent intervals (false sharing probed).
  EXPECT_GT(result.detector.overlapping_pairs, 0u);
}

TEST(DsmPageTest, SingleWriterSerializesConcurrentSamePageWrites) {
  // Same program under single-writer: ownership transfers serialize the
  // writes; all survive because they touch different words.
  DsmOptions options = Options(4, ProtocolKind::kSingleWriterLrc, 256);
  DsmSystem system(options);
  auto arr = SharedArray<int32_t>::Alloc(system, "arr", 32);

  RunResult result = system.Run([&](NodeContext& ctx) {
    ctx.Barrier();
    arr.Set(ctx, ctx.id() * 4, 100 + ctx.id());
    ctx.Barrier();
    for (int n = 0; n < ctx.num_nodes(); ++n) {
      EXPECT_EQ(arr.Get(ctx, n * 4), 100 + n);
    }
  });
  EXPECT_TRUE(result.races.empty());
  EXPECT_GT(result.page_faults, 0u);
}

TEST(DsmPageTest, OwnershipMovesWithTheLock) {
  // A lock-protected page migrates between writers; values chain correctly.
  DsmOptions options = Options(3, ProtocolKind::kSingleWriterLrc, 256);
  DsmSystem system(options);
  auto chain = SharedVar<int32_t>::Alloc(system, "chain");

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      chain.Set(ctx, 0);
    }
    ctx.Barrier();
    for (int round = 0; round < 12; ++round) {
      ctx.Lock(0);
      chain.Set(ctx, chain.Get(ctx) + 1);
      ctx.Unlock(0);
    }
    ctx.Barrier();
    EXPECT_EQ(chain.Get(ctx), 36);
  });
  EXPECT_TRUE(result.races.empty());
}

TEST(DsmPageTest, ReadersGetCopiesWithoutStealingOwnership) {
  DsmOptions options = Options(4, ProtocolKind::kSingleWriterLrc, 256);
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 64);

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      for (int i = 0; i < 64; ++i) {
        data.Set(ctx, i, i * i);
      }
    }
    ctx.Barrier();
    // Everyone reads repeatedly: one fetch each, then local hits.
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 64; i += 8) {
        EXPECT_EQ(data.Get(ctx, i), i * i);
      }
    }
  });
  // Page fault count stays around one read fetch per reader per page, not
  // one per access round.
  EXPECT_LE(result.page_faults, 4u * 2u + 8u);
  EXPECT_TRUE(result.races.empty());
}

// Coherence sweep across page sizes and protocols: lock-ordered token
// passing must be exact regardless of granularity.
class PageSizeSweepTest : public ::testing::TestWithParam<std::tuple<ProtocolKind, uint64_t>> {
};

TEST_P(PageSizeSweepTest, TokenRingIsCoherent) {
  const auto [protocol, page_size] = GetParam();
  DsmOptions options = Options(4, protocol, page_size);
  DsmSystem system(options);
  auto token = SharedVar<int32_t>::Alloc(system, "token");
  auto history = SharedArray<int32_t>::Alloc(system, "history", 64);

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      token.Set(ctx, 0);
    }
    ctx.Barrier();
    for (int i = 0; i < 12; ++i) {
      ctx.Lock(1);
      const int32_t t = token.Get(ctx);
      history.Set(ctx, t % 48, ctx.id());
      token.Set(ctx, t + 1);
      ctx.Unlock(1);
    }
    ctx.Barrier();
    EXPECT_EQ(token.Get(ctx), 48);
  });
  EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
}

using SweepParam = std::tuple<ProtocolKind, uint64_t>;

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& param_info) {
  const auto [protocol, page_size] = param_info.param;
  std::string name;
  switch (protocol) {
    case ProtocolKind::kSingleWriterLrc:
      name = "SingleWriter";
      break;
    case ProtocolKind::kMultiWriterHomeLrc:
      name = "MultiWriterHome";
      break;
    case ProtocolKind::kEagerRcInvalidate:
      name = "EagerRc";
      break;
  }
  return name + "_" + std::to_string(page_size) + "B";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PageSizeSweepTest,
    ::testing::Combine(::testing::Values(ProtocolKind::kSingleWriterLrc,
                                         ProtocolKind::kMultiWriterHomeLrc,
                                         ProtocolKind::kEagerRcInvalidate),
                       ::testing::Values(64, 256, 1024, 4096)),
    SweepName);

}  // namespace
}  // namespace cvm
