// End-to-end fault-injection tests: full DSM runs under lossy/partition
// profiles must verify and produce race reports identical to the fault-free
// run — the guarantee the reliable transport owes the detection protocol
// (faults may change timing, never observable protocol behavior).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/apps/sor.h"
#include "src/apps/water.h"
#include "src/dsm/dsm.h"
#include "src/fault/fault.h"
#include "src/race/race_report.h"

namespace cvm {
namespace {

struct Outcome {
  bool verified = false;
  std::vector<RaceSummaryLine> summary;
  fault::FaultStats fstats;
};

template <typename App>
Outcome RunApp(typename App::Params params, const fault::FaultPlan& plan, int nodes) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.fault_plan = plan;
  auto app = std::make_unique<App>(params);
  DsmSystem system(options);
  app->Setup(system);
  RunResult result = system.Run([&app](NodeContext& ctx) { app->Run(ctx); });
  Outcome outcome;
  outcome.verified = app->Verify();
  outcome.summary = SummarizeRaces(result.races);
  outcome.fstats = result.fault;
  return outcome;
}

void ExpectSameSummary(const std::vector<RaceSummaryLine>& clean,
                       const std::vector<RaceSummaryLine>& faulty) {
  ASSERT_EQ(clean.size(), faulty.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].symbol, faulty[i].symbol);
    EXPECT_EQ(clean[i].write_write, faulty[i].write_write);
    EXPECT_EQ(clean[i].read_write, faulty[i].read_write);
    EXPECT_EQ(clean[i].first_epoch, faulty[i].first_epoch);
  }
}

SorApp::Params SmallSor() {
  SorApp::Params params;
  params.rows = 34;
  params.cols = 32;
  params.iters = 2;
  return params;
}

WaterApp::Params SmallWater() {
  WaterApp::Params params;
  params.molecules = 64;
  params.iters = 2;
  return params;
}

TEST(DsmChaosTest, SorVerifiesCleanUnderFivePercentLoss) {
  const auto off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const Outcome clean = RunApp<SorApp>(SmallSor(), off, 4);
  ASSERT_TRUE(clean.verified);
  ASSERT_TRUE(clean.summary.empty());

  fault::FaultPlan lossy = fault::FaultPlan::FromProfile(fault::FaultProfile::kLossy, 7);
  lossy.drop_prob = 0.05;
  const Outcome faulty = RunApp<SorApp>(SmallSor(), lossy, 4);
  EXPECT_TRUE(faulty.verified);
  EXPECT_TRUE(faulty.summary.empty());
  EXPECT_GT(faulty.fstats.drops, 0u);
  EXPECT_GT(faulty.fstats.retransmits, 0u);
}

TEST(DsmChaosTest, BuggyWaterReportsIdenticalRacesUnderLoss) {
  // Water keeps its virial bug: the interesting direction is that REPORTED
  // races survive injection unchanged, not just that clean apps stay clean.
  const auto off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const Outcome clean = RunApp<WaterApp>(SmallWater(), off, 4);
  ASSERT_TRUE(clean.verified);
  ASSERT_FALSE(clean.summary.empty());

  fault::FaultPlan lossy = fault::FaultPlan::FromProfile(fault::FaultProfile::kLossy, 11);
  lossy.drop_prob = 0.05;
  const Outcome faulty = RunApp<WaterApp>(SmallWater(), lossy, 4);
  EXPECT_TRUE(faulty.verified);
  EXPECT_GT(faulty.fstats.drops, 0u);
  ExpectSameSummary(clean.summary, faulty.summary);
}

TEST(DsmChaosTest, SorSurvivesPartitionProfile) {
  const auto off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const Outcome clean = RunApp<SorApp>(SmallSor(), off, 4);
  ASSERT_TRUE(clean.verified);

  const auto partition =
      fault::FaultPlan::FromProfile(fault::FaultProfile::kPartition, 3);
  const Outcome faulty = RunApp<SorApp>(SmallSor(), partition, 4);
  EXPECT_TRUE(faulty.verified);
  EXPECT_TRUE(faulty.summary.empty());
}

TEST(DsmChaosTest, FaultStatsAreZeroWithoutPlan) {
  const auto off = fault::FaultPlan::FromProfile(fault::FaultProfile::kOff, 1);
  const Outcome clean = RunApp<SorApp>(SmallSor(), off, 2);
  EXPECT_TRUE(clean.verified);
  EXPECT_EQ(clean.fstats.data_frames, 0u);
  EXPECT_EQ(clean.fstats.retransmits, 0u);
}

}  // namespace
}  // namespace cvm
