// End-to-end equivalence of the three detection pipelines (§4 step 5,
// §6.2): for a deterministic racy workload, the sharded and distributed
// pipelines must report exactly the races the serial paper pipeline
// reports — same kinds, same words, same interval pairs — under every
// consistency protocol, with and without bitmap compression.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions SmallOptions(int nodes, ProtocolKind protocol) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  options.protocol = protocol;
  return options;
}

// A deterministic barrier-phase workload with known W/W and R/W races plus
// false sharing that must NOT be reported: every node writes its own slot
// (false sharing on the page), everyone writes slot 0 (W/W), and node 1
// reads slot 2 which node 2 writes (R/W).
void RacyApp(NodeContext& ctx, SharedArray<int32_t>& data) {
  data.Set(ctx, ctx.id() + 8, ctx.id());  // Distinct words: false sharing.
  data.Set(ctx, 0, ctx.id());             // Same word: W/W race.
  if (ctx.id() == 1) {
    (void)data.Get(ctx, 2);  // Races with node 2's write below.
  }
  if (ctx.id() == 2) {
    data.Set(ctx, 2, 7);
  }
  ctx.Barrier();
  // A second epoch with no races: reads of data[0] ordered by the barrier.
  (void)data.Get(ctx, 0);
  ctx.Barrier();
}

// The canonical serialization the pipelines must agree on.
std::vector<std::string> ReportKey(const RunResult& result) {
  std::vector<std::string> key;
  key.reserve(result.races.size());
  for (const RaceReport& report : result.races) {
    key.push_back(report.ToString());
  }
  return key;
}

RunResult RunPipeline(ProtocolKind protocol, DetectionPipeline pipeline, bool compress) {
  DsmOptions options = SmallOptions(4, protocol);
  options.detection_pipeline = pipeline;
  options.compress_bitmaps = compress;
  options.detect_shards = 3;  // Exercise real sharding regardless of host cores.
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 64);
  return system.Run([&](NodeContext& ctx) { RacyApp(ctx, data); });
}

class PipelineEquivalenceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PipelineEquivalenceTest, ShardedAndDistributedMatchSerial) {
  const RunResult serial = RunPipeline(GetParam(), DetectionPipeline::kSerial, false);
  // The workload has known true races and cleared false sharing.
  EXPECT_FALSE(serial.races.empty());
  bool has_ww = false;
  for (const RaceReport& report : serial.races) {
    if (report.kind == RaceKind::kWriteWrite) {
      has_ww = true;
    }
    EXPECT_NE(report.word, 9u) << "per-node slots are false sharing, not races";
  }
  EXPECT_TRUE(has_ww);
  const auto expected = ReportKey(serial);

  struct Variant {
    DetectionPipeline pipeline;
    bool compress;
  };
  for (const Variant& v : {Variant{DetectionPipeline::kSharded, false},
                           Variant{DetectionPipeline::kSharded, true},
                           Variant{DetectionPipeline::kDistributed, false},
                           Variant{DetectionPipeline::kDistributed, true}}) {
    const RunResult result = RunPipeline(GetParam(), v.pipeline, v.compress);
    EXPECT_EQ(ReportKey(result), expected)
        << "pipeline " << static_cast<int>(v.pipeline) << " compress " << v.compress;
    if (v.pipeline == DetectionPipeline::kDistributed) {
      // Constituents actually did compare work on the master's behalf.
      EXPECT_GT(result.pipeline.remote_pairs_compared, 0u);
    }
  }
}

TEST_P(PipelineEquivalenceTest, CompressionShrinksDistributedWireBytes) {
  const RunResult raw = RunPipeline(GetParam(), DetectionPipeline::kDistributed, false);
  const RunResult compressed = RunPipeline(GetParam(), DetectionPipeline::kDistributed, true);
  // Raw mode models the legacy full-page payloads; the codec must not be
  // larger and on these skewed bitmaps must strictly win.
  EXPECT_LT(compressed.pipeline.bitmap_bytes_wire, raw.pipeline.bitmap_bytes_wire);
  EXPECT_EQ(ReportKey(raw), ReportKey(compressed));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PipelineEquivalenceTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc,
                                           ProtocolKind::kEagerRcInvalidate));

// A contention-free two-epoch workload whose message pattern is fully
// deterministic under the home-based multi-writer protocol (no ownership
// migration, so no scheduling-dependent forwarding): epoch 0, every node
// writes its own home page (no traffic) plus a private word of one shared
// page (base-copy fetch from the home + diff flush back — and concurrent
// write overlap, so the barrier master runs a real bitmap round); epoch 1,
// every node reads its right neighbour's page. No locks, no races — so
// per-sender counts are reproducible, not just totals.
void NeighborReadApp(NodeContext& ctx, int num_nodes, uint64_t page_size) {
  const GlobalAddr own = static_cast<GlobalAddr>(ctx.id()) * page_size;
  ctx.Write<int32_t>(own, 100 + ctx.id());
  const GlobalAddr shared = static_cast<GlobalAddr>(num_nodes) * page_size +
                            static_cast<GlobalAddr>(ctx.id()) * kWordSize;
  ctx.Write<int32_t>(shared, 200 + ctx.id());  // False sharing, not a race.
  ctx.Barrier();
  const GlobalAddr neighbor =
      static_cast<GlobalAddr>((ctx.id() + 1) % num_nodes) * page_size;
  EXPECT_EQ(ctx.Read<int32_t>(neighbor), 100 + (ctx.id() + 1) % num_nodes);
  ctx.Barrier();
}

NetworkStats RunNeighborRead(DetectionPipeline pipeline) {
  DsmOptions options = SmallOptions(4, ProtocolKind::kMultiWriterHomeLrc);
  options.detection_pipeline = pipeline;
  options.detect_shards = 3;
  DsmSystem system(options);
  // One page per node, plus the falsely-shared page.
  (void)system.Alloc("pages", (options.num_nodes + 1) * options.page_size, true);
  const RunResult result = system.Run([&](NodeContext& ctx) {
    NeighborReadApp(ctx, options.num_nodes, options.page_size);
  });
  EXPECT_TRUE(result.races.empty());
  // The falsely-shared page forces a real detection round to equate.
  EXPECT_GT(result.net.messages_by_kind.count("BitmapRequest") +
                result.net.messages_by_kind.count("CompareRequest"),
            0u);
  return result.net;
}

// The refactor-invariance contract, per node: sharding only multi-threads
// the master-local check-list build, so every message and byte — per kind
// AND per sender — is identical to the serial pipeline.
TEST(PipelineWireEquivalenceTest, ShardedMatchesSerialPerSenderAndKind) {
  const NetworkStats serial = RunNeighborRead(DetectionPipeline::kSerial);
  const NetworkStats sharded = RunNeighborRead(DetectionPipeline::kSharded);
  EXPECT_EQ(serial.messages, sharded.messages);
  EXPECT_EQ(serial.bytes, sharded.bytes);
  EXPECT_EQ(serial.messages_by_kind, sharded.messages_by_kind);
  EXPECT_EQ(serial.bytes_by_kind, sharded.bytes_by_kind);
  EXPECT_EQ(serial.messages_by_sender, sharded.messages_by_sender);
  EXPECT_EQ(serial.bytes_by_sender, sharded.bytes_by_sender);
}

// Distributing the compare step changes only the detection round's traffic
// (CompareRequest/BitmapShip/CompareReply replace part of the bitmap
// retrieval); application and synchronization traffic per sender must not
// move.
TEST(PipelineWireEquivalenceTest, DistributedChangesOnlyDetectionTraffic) {
  const NetworkStats serial = RunNeighborRead(DetectionPipeline::kSerial);
  const NetworkStats distributed = RunNeighborRead(DetectionPipeline::kDistributed);
  const std::vector<std::string> detection_kinds = {
      "BitmapRequest", "BitmapReply", "CompareRequest", "BitmapShip", "CompareReply"};
  auto strip = [&](NetworkStats stats) {
    for (const std::string& kind : detection_kinds) {
      stats.messages_by_kind.erase(kind);
      stats.bytes_by_kind.erase(kind);
    }
    return stats;
  };
  const NetworkStats a = strip(serial);
  const NetworkStats b = strip(distributed);
  EXPECT_EQ(a.messages_by_kind, b.messages_by_kind);
  EXPECT_EQ(a.bytes_by_kind, b.bytes_by_kind);
}

// The coordinator is reachable (and meaningful) through the layered API:
// the master's BarrierCoordinator owns the pipeline statistics the run
// result republishes.
TEST(PipelineWireEquivalenceTest, BarrierCoordinatorExposesPipelineStats) {
  DsmOptions options = SmallOptions(4, ProtocolKind::kSingleWriterLrc);
  options.detection_pipeline = DetectionPipeline::kSharded;
  options.detect_shards = 3;
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 64);
  const RunResult result = system.Run([&](NodeContext& ctx) { RacyApp(ctx, data); });

  const PipelineStats& master = system.node(0).barrier_coordinator().pipeline_stats();
  EXPECT_EQ(master.shards_used, result.pipeline.shards_used);
  EXPECT_EQ(master.detect_epochs, result.pipeline.detect_epochs);
  EXPECT_EQ(master.detect_ns, result.pipeline.detect_ns);
  EXPECT_GT(master.detect_epochs, 0u);
  EXPECT_EQ(master.shards_used, 3u);
  // Workers never run the pipeline; their coordinators stay idle.
  for (NodeId worker = 1; worker < 4; ++worker) {
    EXPECT_EQ(system.node(worker).barrier_coordinator().pipeline_stats().detect_epochs,
              0u);
  }
}

}  // namespace
}  // namespace cvm
