// End-to-end equivalence of the three detection pipelines (§4 step 5,
// §6.2): for a deterministic racy workload, the sharded and distributed
// pipelines must report exactly the races the serial paper pipeline
// reports — same kinds, same words, same interval pairs — under every
// consistency protocol, with and without bitmap compression.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions SmallOptions(int nodes, ProtocolKind protocol) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  options.protocol = protocol;
  return options;
}

// A deterministic barrier-phase workload with known W/W and R/W races plus
// false sharing that must NOT be reported: every node writes its own slot
// (false sharing on the page), everyone writes slot 0 (W/W), and node 1
// reads slot 2 which node 2 writes (R/W).
void RacyApp(NodeContext& ctx, SharedArray<int32_t>& data) {
  data.Set(ctx, ctx.id() + 8, ctx.id());  // Distinct words: false sharing.
  data.Set(ctx, 0, ctx.id());             // Same word: W/W race.
  if (ctx.id() == 1) {
    (void)data.Get(ctx, 2);  // Races with node 2's write below.
  }
  if (ctx.id() == 2) {
    data.Set(ctx, 2, 7);
  }
  ctx.Barrier();
  // A second epoch with no races: reads of data[0] ordered by the barrier.
  (void)data.Get(ctx, 0);
  ctx.Barrier();
}

// The canonical serialization the pipelines must agree on.
std::vector<std::string> ReportKey(const RunResult& result) {
  std::vector<std::string> key;
  key.reserve(result.races.size());
  for (const RaceReport& report : result.races) {
    key.push_back(report.ToString());
  }
  return key;
}

RunResult RunPipeline(ProtocolKind protocol, DetectionPipeline pipeline, bool compress) {
  DsmOptions options = SmallOptions(4, protocol);
  options.detection_pipeline = pipeline;
  options.compress_bitmaps = compress;
  options.detect_shards = 3;  // Exercise real sharding regardless of host cores.
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(system, "data", 64);
  return system.Run([&](NodeContext& ctx) { RacyApp(ctx, data); });
}

class PipelineEquivalenceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PipelineEquivalenceTest, ShardedAndDistributedMatchSerial) {
  const RunResult serial = RunPipeline(GetParam(), DetectionPipeline::kSerial, false);
  // The workload has known true races and cleared false sharing.
  EXPECT_FALSE(serial.races.empty());
  bool has_ww = false;
  for (const RaceReport& report : serial.races) {
    if (report.kind == RaceKind::kWriteWrite) {
      has_ww = true;
    }
    EXPECT_NE(report.word, 9u) << "per-node slots are false sharing, not races";
  }
  EXPECT_TRUE(has_ww);
  const auto expected = ReportKey(serial);

  struct Variant {
    DetectionPipeline pipeline;
    bool compress;
  };
  for (const Variant& v : {Variant{DetectionPipeline::kSharded, false},
                           Variant{DetectionPipeline::kSharded, true},
                           Variant{DetectionPipeline::kDistributed, false},
                           Variant{DetectionPipeline::kDistributed, true}}) {
    const RunResult result = RunPipeline(GetParam(), v.pipeline, v.compress);
    EXPECT_EQ(ReportKey(result), expected)
        << "pipeline " << static_cast<int>(v.pipeline) << " compress " << v.compress;
    if (v.pipeline == DetectionPipeline::kDistributed) {
      // Constituents actually did compare work on the master's behalf.
      EXPECT_GT(result.pipeline.remote_pairs_compared, 0u);
    }
  }
}

TEST_P(PipelineEquivalenceTest, CompressionShrinksDistributedWireBytes) {
  const RunResult raw = RunPipeline(GetParam(), DetectionPipeline::kDistributed, false);
  const RunResult compressed = RunPipeline(GetParam(), DetectionPipeline::kDistributed, true);
  // Raw mode models the legacy full-page payloads; the codec must not be
  // larger and on these skewed bitmaps must strictly win.
  EXPECT_LT(compressed.pipeline.bitmap_bytes_wire, raw.pipeline.bitmap_bytes_wire);
  EXPECT_EQ(ReportKey(raw), ReportKey(compressed));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, PipelineEquivalenceTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc,
                                           ProtocolKind::kEagerRcInvalidate));

}  // namespace
}  // namespace cvm
