// Equivalence of the combine-tree barrier path with the flat master
// barrier (docs/ARCHITECTURE.md "Combine-tree barrier"): for a
// deterministic barrier-only workload the tree must produce the
// bit-identical race-report list — same kinds, words, interval pairs and
// provenance — at every fanout, with and without epoch batching and
// bitmap interning, under every consistency protocol. The tree changes
// how check lists are built and where barrier traffic flows; it must not
// change what the detector reports or how the app-level coherence
// traffic looks on the wire.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

constexpr uint64_t kPageSize = 256;
constexpr int kWordsPerPage = static_cast<int>(kPageSize / sizeof(int32_t));

DsmOptions BaseOptions(int nodes, ProtocolKind protocol) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = kPageSize;
  options.max_shared_bytes = static_cast<uint64_t>(nodes) * kPageSize + (1 << 16);
  options.protocol = protocol;
  return options;
}

// The neighbor-halo workload: one page per node. Each epoch every node
// writes words 0..3 of its own page, writes word 2 of its right neighbor's
// page (a W/W race with that node's own write), and reads word 9 of the
// neighbor page (concurrent but disjoint — a check pair that must NOT be
// reported). Barrier-only, so the run is fully deterministic and the
// expected report list is exact: nodes x epochs W/W races.
void HaloApp(NodeContext& ctx, SharedArray<int32_t>& data, int epochs) {
  const int id = ctx.id();
  const size_t own = static_cast<size_t>(id) * kWordsPerPage;
  const size_t next =
      static_cast<size_t>((id + 1) % ctx.num_nodes()) * kWordsPerPage;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    for (int w = 0; w < 4; ++w) {      // Covers word 2: the neighbor's target.
      data.Set(ctx, own + w, id * 100 + epoch * 10 + w);
    }
    data.Set(ctx, next + 2, id);       // Unsynchronized: the race.
    (void)data.Get(ctx, next + 9);     // Concurrent read, no race.
    if (epoch + 1 < epochs) {
      ctx.Barrier();
    }
    // The run's implicit final barrier checks the last epoch.
  }
}

std::vector<std::string> ReportKey(const RunResult& result) {
  std::vector<std::string> key;
  key.reserve(result.races.size());
  for (const RaceReport& report : result.races) {
    key.push_back(report.ToString());
  }
  return key;
}

struct BarrierVariant {
  bool tree = false;
  int fanout = 4;
  int detect_batch = 1;
  bool intern = false;
};

RunResult RunHalo(int nodes, ProtocolKind protocol, const BarrierVariant& v,
                  int epochs = 3) {
  DsmOptions options = BaseOptions(nodes, protocol);
  options.barrier_tree = v.tree;
  options.barrier_fanout = v.fanout;
  options.detect_batch = v.detect_batch;
  options.intern_bitmaps = v.intern;
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(
      system, "halo", static_cast<size_t>(nodes) * kWordsPerPage);
  return system.Run([&](NodeContext& ctx) { HaloApp(ctx, data, epochs); });
}

class TreeBarrierEquivalenceTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(TreeBarrierEquivalenceTest, TreeMatchesFlatBitForBit) {
  constexpr int kNodes = 8;
  constexpr int kEpochs = 3;
  const RunResult flat = RunHalo(kNodes, GetParam(), BarrierVariant{});
  // The workload's race population is exact; guard the baseline itself.
  EXPECT_EQ(flat.races.size(), static_cast<size_t>(kNodes) * kEpochs);
  const auto expected = ReportKey(flat);

  for (const BarrierVariant& v :
       {BarrierVariant{true, 2, 1, false},    // Deep binary tree.
        BarrierVariant{true, 3, 1, false},    // Uneven last level.
        BarrierVariant{true, 8, 1, false},    // Degenerate one-level star.
        BarrierVariant{true, 2, 2, false},    // Epoch batching.
        BarrierVariant{true, 2, 2, true}}) {  // Batching + interning.
    const RunResult result = RunHalo(kNodes, GetParam(), v);
    EXPECT_EQ(ReportKey(result), expected)
        << "fanout " << v.fanout << " batch " << v.detect_batch << " intern "
        << v.intern;
    if (v.detect_batch > 1) {
      // Batching really coalesced epochs into fewer detection rounds.
      EXPECT_GT(result.pipeline.batched_epochs, 0u);
      EXPECT_LT(result.pipeline.batch_rounds, result.pipeline.batched_epochs);
    }
  }
}

// The tree reroutes barrier and check-list traffic only. Pin the per-kind
// message counts that are deterministic functions of the synchronization
// structure: the detection-round kinds (driven by the check list, which is
// bit-identical by the test above), the eager push/ack kinds, locks (none
// here), and the barrier kinds themselves. Page-fault kinds (PageRequest,
// DiffFlush, ...) are excluded deliberately — their counts vary run-to-run
// even flat-vs-flat, because intra-epoch fault interleavings are scheduled
// by real threads (a fault races the neighbor's invalidation, ownership
// migration adds forwarding hops). That jitter is not a property of the
// barrier design.
TEST_P(TreeBarrierEquivalenceTest, DeterministicTrafficUnchanged) {
  constexpr int kNodes = 8;
  constexpr int kEpochs = 3;
  const RunResult flat = RunHalo(kNodes, GetParam(), BarrierVariant{});
  const RunResult tree = RunHalo(kNodes, GetParam(), BarrierVariant{true, 3, 1, false});
  const auto count = [](const RunResult& r, const char* kind) -> uint64_t {
    const auto it = r.net.messages_by_kind.find(kind);
    return it == r.net.messages_by_kind.end() ? 0 : it->second;
  };
  for (const char* kind : {"BitmapRequest", "BitmapReply", "CompareRequest",
                           "BitmapShip", "CompareReply", "ErcUpdate", "ErcAck",
                           "LockRequest", "LockGrant"}) {
    EXPECT_EQ(count(flat, kind), count(tree, kind)) << "kind " << kind;
  }
  // The flat barrier kinds are fully replaced by the tree kinds: one arrive
  // and one release per non-root node per epoch in both shapes (the tree
  // moves hops and bytes, not the handshake count).
  const uint64_t handshakes = static_cast<uint64_t>(kNodes - 1) * kEpochs;
  EXPECT_EQ(count(flat, "BarrierArrive"), handshakes);
  EXPECT_EQ(count(flat, "BarrierTreeArrive"), 0u);
  EXPECT_EQ(count(tree, "BarrierArrive"), 0u);
  EXPECT_EQ(count(tree, "BarrierTreeArrive"), handshakes);
  EXPECT_EQ(count(tree, "BarrierTreeRelease"), handshakes);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, TreeBarrierEquivalenceTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc,
                                           ProtocolKind::kEagerRcInvalidate));

// A deeper tree at a bigger cluster: 64 nodes, fanout 4 gives three interior
// levels, exercising multi-hop fragment claiming and interest-filtered
// release propagation. One protocol keeps the runtime modest.
TEST(TreeBarrierScaleTest, SixtyFourNodesThreeLevels) {
  constexpr int kNodes = 64;
  const RunResult flat =
      RunHalo(kNodes, ProtocolKind::kSingleWriterLrc, BarrierVariant{}, 2);
  const RunResult tree = RunHalo(kNodes, ProtocolKind::kSingleWriterLrc,
                                 BarrierVariant{true, 4, 2, true}, 2);
  EXPECT_EQ(flat.races.size(), static_cast<size_t>(kNodes) * 2);
  EXPECT_EQ(ReportKey(tree), ReportKey(flat));
  // The headline property: aggregation keeps barrier bytes well below the
  // flat all-to-master broadcast at this size.
  EXPECT_LT(tree.net.bytes, flat.net.bytes);
}

}  // namespace
}  // namespace cvm
