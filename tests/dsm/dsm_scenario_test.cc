// Scripted executions reproducing the paper's figures: Figure 1's actual
// vs ordered accesses, and Figure 5's weak-memory-only races.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

DsmOptions SmallOptions(int nodes, ProtocolKind protocol) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 256;
  options.max_shared_bytes = 64 * 1024;
  options.protocol = protocol;
  return options;
}

size_t RacesOn(const std::vector<RaceReport>& races, const std::string& prefix) {
  return static_cast<size_t>(
      std::count_if(races.begin(), races.end(), [&](const RaceReport& r) {
        return r.symbol.rfind(prefix, 0) == 0;
      }));
}

class ScenarioTest : public ::testing::TestWithParam<ProtocolKind> {};

// Figure 1: P1 writes x under lock L; P2 first reads x WITHOUT the lock
// (the actual data race w1–r2), then reads it again under L (ordered by
// P1's unlock and P2's lock — no race).
TEST_P(ScenarioTest, Figure1ActualRaceDetectedOrderedReadIsNot) {
  DsmSystem system(SmallOptions(2, GetParam()));
  auto x = SharedVar<int32_t>::Alloc(system, "x");

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      ctx.Lock(0);
      x.Set(ctx, 1);  // w1(x)
      ctx.Unlock(0);
    } else {
      (void)x.Get(ctx);  // r2(x): unsynchronized — the actual data race.
      ctx.Lock(0);
      (void)x.Get(ctx);  // r3(x): ordered via L.
      ctx.Unlock(0);
    }
  });

  const size_t on_x = RacesOn(result.races, "x");
  EXPECT_GE(on_x, 1u) << "w1-r2 must be reported";
  for (const RaceReport& r : result.races) {
    if (r.symbol.rfind("x", 0) == 0) {
      EXPECT_EQ(r.kind, RaceKind::kReadWrite);
      // The racing reader is P2's FIRST interval region (before its Lock).
      // The locked read r3 is ordered and must not appear: every reported
      // pair must involve the writer interval on node 0.
      EXPECT_TRUE(r.interval_a.node == 0 || r.interval_b.node == 0);
    }
  }
  // Exactly one distinct racy access pair on x: w1 vs r2. r3's interval is
  // ordered, so there is exactly one reported race on x.
  EXPECT_EQ(on_x, 1u);
}

// Figure 5: on sequentially consistent hardware P2 would observe qPtr=100
// and write beyond 100; under LRC with a missing release/acquire P2 reads
// the STALE qPtr (37) and collides with P3's writes at 37 — a race that
// "would not occur in an SC system".
TEST_P(ScenarioTest, Figure5WeakMemoryOnlyRace) {
  DsmSystem system(SmallOptions(3, GetParam()));
  auto q_ptr = SharedVar<int32_t>::Alloc(system, "qPtr");
  auto q_empty = SharedVar<int32_t>::Alloc(system, "qEmpty");
  auto buf = SharedArray<int32_t>::Alloc(system, "buf", 128);
  int32_t p2_observed_ptr = -1;

  RunResult result = system.Run([&](NodeContext& ctx) {
    if (ctx.id() == 0) {
      q_ptr.Set(ctx, 37);
      q_empty.Set(ctx, 1);
    }
    ctx.Barrier();
    if (ctx.id() == 1 || ctx.id() == 2) {
      // Both hold valid copies of the control page now.
      (void)q_ptr.Get(ctx);
      (void)q_empty.Get(ctx);
    }
    ctx.Barrier();
    if (ctx.id() == 0) {
      // P1: w1(qPtr)100, w1(qEmpty)0, {missing release}.
      q_ptr.Set(ctx, 100);
      q_empty.Set(ctx, 0);
    } else if (ctx.id() == 1) {
      // P2: {missing acquire}; reads the stale pointer and writes there.
      (void)q_empty.Get(ctx);
      const int32_t ptr = q_ptr.Get(ctx);
      p2_observed_ptr = ptr;
      buf.Set(ctx, ptr, 1);
      buf.Set(ctx, ptr + 1, 1);
    } else {
      // P3: writes at 37, 38, ... concurrently.
      buf.Set(ctx, 37, 2);
      buf.Set(ctx, 38, 2);
      buf.Set(ctx, 39, 2);
    }
  });

  EXPECT_EQ(p2_observed_ptr, 37) << "weak memory must expose the stale pointer";
  // The w2(37)-w3(37) race exists only because of the stale read.
  EXPECT_GE(RacesOn(result.races, "buf+148"), 1u) << "buf[37] write-write race";
  // The control-variable races (qPtr, qEmpty) exist too.
  EXPECT_GE(RacesOn(result.races, "qPtr"), 1u);
  EXPECT_GE(RacesOn(result.races, "qEmpty"), 1u);
}

INSTANTIATE_TEST_SUITE_P(Protocols, ScenarioTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc),
                         [](const ::testing::TestParamInfo<ProtocolKind>& param_info) {
                           return ProtocolKindName(param_info.param);
                         });

}  // namespace
}  // namespace cvm
