// Tests for the blocked LU application: correct factorization under every
// protocol and node count, with zero data races.
#include <gtest/gtest.h>

#include "src/apps/lu.h"
#include "src/apps/workload.h"

namespace cvm {
namespace {

TEST(LuAppTest, FactorizesCorrectlyAcrossProtocols) {
  for (ProtocolKind protocol :
       {ProtocolKind::kSingleWriterLrc, ProtocolKind::kMultiWriterHomeLrc,
        ProtocolKind::kEagerRcInvalidate}) {
    LuApp::Params params;
    params.n = 32;
    params.block = 8;
    DsmOptions options;
    options.num_nodes = 4;
    options.page_size = 1024;
    options.max_shared_bytes = 4 << 20;
    options.protocol = protocol;
    auto app = std::make_unique<LuApp>(params);
    DsmSystem system(options);
    app->Setup(system);
    RunResult result = system.Run([&](NodeContext& ctx) { app->Run(ctx); });
    EXPECT_TRUE(app->Verify()) << "protocol " << static_cast<int>(protocol);
    EXPECT_TRUE(result.races.empty()) << result.races.front().ToString();
  }
}

TEST(LuAppTest, OddNodeCountsStillPartitionCleanly) {
  LuApp::Params params;
  params.n = 24;
  params.block = 4;
  DsmOptions options;
  options.num_nodes = 3;
  options.page_size = 512;
  options.max_shared_bytes = 2 << 20;
  auto app = std::make_unique<LuApp>(params);
  DsmSystem system(options);
  app->Setup(system);
  RunResult result = system.Run([&](NodeContext& ctx) { app->Run(ctx); });
  EXPECT_TRUE(app->Verify());
  EXPECT_TRUE(result.races.empty());
}

TEST(LuAppTest, BlockMustDivideDimension) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        LuApp::Params params;
        params.n = 30;
        params.block = 8;
        DsmOptions options;
        options.num_nodes = 2;
        auto app = std::make_unique<LuApp>(params);
        DsmSystem system(options);
        app->Setup(system);
      },
      "CHECK failed");
}

}  // namespace
}  // namespace cvm
