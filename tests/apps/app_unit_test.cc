// Unit tests for the computational kernels inside the evaluation apps,
// independent of the DSM: the FFT kernel against a naive DFT, TSP's serial
// branch-and-bound against exhaustive search, the greedy-bound property,
// and Water's force-law invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numeric>

#include "src/apps/fft.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/common/rng.h"

namespace cvm {
namespace {

// ---------------- FFT kernel ----------------

std::vector<std::complex<float>> NaiveDft(const std::vector<std::complex<float>>& in) {
  const size_t n = in.size();
  std::vector<std::complex<float>> out(n);
  for (size_t k = 0; k < n; ++k) {
    std::complex<double> acc = 0;
    for (size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * t) / static_cast<double>(n);
      acc += std::complex<double>(in[t]) * std::polar(1.0, angle);
    }
    out[k] = std::complex<float>(acc);
  }
  return out;
}

TEST(FftKernelTest, MatchesNaiveDft) {
  Rng rng(5);
  for (size_t n : {2u, 8u, 32u, 64u}) {
    std::vector<std::complex<float>> data(n);
    for (auto& v : data) {
      v = {static_cast<float>(rng.NextDouble() - 0.5),
           static_cast<float>(rng.NextDouble() - 0.5)};
    }
    std::vector<std::complex<float>> expected = NaiveDft(data);
    Radix2Fft(data);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(data[i].real(), expected[i].real(), 1e-3f) << "n=" << n << " i=" << i;
      EXPECT_NEAR(data[i].imag(), expected[i].imag(), 1e-3f) << "n=" << n << " i=" << i;
    }
  }
}

TEST(FftKernelTest, ImpulseTransformsToConstant) {
  std::vector<std::complex<float>> data(16, {0, 0});
  data[0] = {1, 0};
  Radix2Fft(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0f, 1e-5f);
    EXPECT_NEAR(v.imag(), 0.0f, 1e-5f);
  }
}

TEST(FftKernelTest, ParsevalEnergyPreserved) {
  Rng rng(6);
  std::vector<std::complex<float>> data(64);
  double time_energy = 0;
  for (auto& v : data) {
    v = {static_cast<float>(rng.NextDouble() - 0.5), static_cast<float>(rng.NextDouble() - 0.5)};
    time_energy += std::norm(std::complex<double>(v));
  }
  Radix2Fft(data);
  double freq_energy = 0;
  for (const auto& v : data) {
    freq_energy += std::norm(std::complex<double>(v));
  }
  EXPECT_NEAR(freq_energy, time_energy * 64, time_energy * 0.01);
}

// ---------------- TSP serial solver ----------------

int32_t BruteForce(const std::vector<int32_t>& dist, int n) {
  std::vector<int32_t> perm(n - 1);
  std::iota(perm.begin(), perm.end(), 1);
  int32_t best = 0x3fffffff;
  do {
    int32_t len = dist[0 * n + perm[0]];
    for (int i = 0; i + 1 < n - 1; ++i) {
      len += dist[perm[i] * n + perm[i + 1]];
    }
    len += dist[perm[n - 2] * n + 0];
    best = std::min(best, len);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(TspSolverTest, SerialBranchAndBoundIsOptimal) {
  for (uint64_t seed : {1ull, 42ull, 777ull}) {
    TspApp::Params params;
    params.num_cities = 8;
    params.seed = seed;
    TspApp app(params);
    // Recreate the same distance matrix the app builds.
    Rng rng(seed);
    const int n = params.num_cities;
    std::vector<int32_t> dist(static_cast<size_t>(n) * n, 0);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const int32_t d = static_cast<int32_t>(rng.Range(10, 99));
        dist[i * n + j] = d;
        dist[j * n + i] = d;
      }
    }
    // The app's serial search is private; exercise it through a full
    // DSM run in other tests. Here: brute force sanity of the matrix.
    const int32_t brute = BruteForce(dist, n);
    EXPECT_GT(brute, 0);
    EXPECT_LT(brute, 99 * n);
  }
}

// ---------------- Water force law ----------------

TEST(WaterForceTest, NewtonThirdLawAntisymmetry) {
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    const WaterApp::Vec3 d{static_cast<float>(rng.NextDouble() * 3 - 1.5),
                           static_cast<float>(rng.NextDouble() * 3 - 1.5),
                           static_cast<float>(rng.NextDouble() * 3 - 1.5)};
    const WaterApp::Vec3 neg{-d.x, -d.y, -d.z};
    WaterApp::Vec3 f1;
    WaterApp::Vec3 f2;
    float p1;
    float p2;
    WaterApp::PairForce(d, &f1, &p1);
    WaterApp::PairForce(neg, &f2, &p2);
    EXPECT_FLOAT_EQ(f1.x, -f2.x);
    EXPECT_FLOAT_EQ(f1.y, -f2.y);
    EXPECT_FLOAT_EQ(f1.z, -f2.z);
    EXPECT_FLOAT_EQ(p1, p2);  // Potential is even in d.
  }
}

TEST(WaterForceTest, CutoffZeroesDistantPairs) {
  WaterApp::Vec3 f;
  float pot;
  WaterApp::PairForce({WaterApp::kCutoff + 0.1f, 0, 0}, &f, &pot);
  EXPECT_EQ(f.x, 0.0f);
  EXPECT_EQ(f.y, 0.0f);
  EXPECT_EQ(f.z, 0.0f);
  EXPECT_EQ(pot, 0.0f);
  // Just inside the cutoff: non-zero interaction.
  WaterApp::PairForce({WaterApp::kCutoff - 0.5f, 0, 0}, &f, &pot);
  EXPECT_NE(pot, 0.0f);
}

TEST(WaterForceTest, MoleculeForceSumsSitePairs) {
  // With all site offsets zero, the molecule force is 9x the site force.
  const float zero_sites[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};
  const WaterApp::Vec3 d{1.0f, 0.5f, -0.25f};
  WaterApp::Vec3 site_f;
  float site_pot;
  WaterApp::PairForce(d, &site_f, &site_pot);
  WaterApp::Vec3 mol_f;
  float mol_pot;
  WaterApp::MoleculeForce(d, zero_sites, &mol_f, &mol_pot);
  EXPECT_NEAR(mol_f.x, 9 * site_f.x, std::fabs(site_f.x) * 1e-4 + 1e-6);
  EXPECT_NEAR(mol_f.y, 9 * site_f.y, std::fabs(site_f.y) * 1e-4 + 1e-6);
  EXPECT_NEAR(mol_pot, 9 * site_pot, std::fabs(site_pot) * 1e-4 + 1e-6);
}

// A 2-molecule end-to-end system must match the serial reference exactly.
TEST(WaterForceTest, TwoMoleculeMomentumConserved) {
  WaterApp::Params params;
  params.molecules = 2;
  params.iters = 4;
  DsmOptions options;
  options.num_nodes = 2;
  options.page_size = 4096;
  options.max_shared_bytes = 4 << 20;
  params.page_size = options.page_size;
  auto app = std::make_unique<WaterApp>(params);
  DsmSystem system(options);
  app->Setup(system);
  system.Run([&](NodeContext& ctx) { app->Run(ctx); });
  EXPECT_TRUE(app->Verify());
}

}  // namespace
}  // namespace cvm
