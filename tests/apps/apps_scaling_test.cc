// Application partition-edge tests: node counts that do not divide the
// problem evenly, more nodes than work, and single-node degenerations must
// still verify and stay race-clean (modulo the intentional races).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/apps/fft.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/apps/workload.h"

namespace cvm {
namespace {

DsmOptions Options(int nodes) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 1024;
  options.max_shared_bytes = 8ull << 20;
  return options;
}

class NodeCountTest : public ::testing::TestWithParam<int> {};

TEST_P(NodeCountTest, SorVerifiesAtAnyNodeCount) {
  SorApp::Params params;
  params.rows = 26;  // 24 interior rows: uneven splits for p=5, 7.
  params.cols = 24;
  params.iters = 2;
  params.page_size = 1024;
  WorkloadResult result = RunWorkloadDetectOnly(
      [&] { return std::make_unique<SorApp>(params); }, Options(GetParam()));
  EXPECT_TRUE(result.verified) << GetParam() << " nodes";
  EXPECT_TRUE(result.detect.races.empty());
}

TEST_P(NodeCountTest, FftVerifiesAtAnyNodeCount) {
  FftApp::Params params;
  params.rows = 32;
  params.cols = 32;
  WorkloadResult result = RunWorkloadDetectOnly(
      [&] { return std::make_unique<FftApp>(params); }, Options(GetParam()));
  EXPECT_TRUE(result.verified) << GetParam() << " nodes";
  EXPECT_TRUE(result.detect.races.empty());
}

TEST_P(NodeCountTest, TspOptimalAtAnyNodeCount) {
  TspApp::Params params;
  params.num_cities = 9;
  params.prefix_depth = 2;
  params.page_size = 1024;
  WorkloadResult result = RunWorkloadDetectOnly(
      [&] { return std::make_unique<TspApp>(params); }, Options(GetParam()));
  EXPECT_TRUE(result.verified) << GetParam() << " nodes";
}

TEST_P(NodeCountTest, WaterVerifiesAtAnyNodeCount) {
  WaterApp::Params params;
  params.molecules = 27;  // Uneven for most p.
  params.iters = 2;
  params.page_size = 1024;
  WorkloadResult result = RunWorkloadDetectOnly(
      [&] { return std::make_unique<WaterApp>(params); }, Options(GetParam()));
  EXPECT_TRUE(result.verified) << GetParam() << " nodes";
  // Only the intentional virial races may appear.
  for (const RaceReport& race : result.detect.races) {
    EXPECT_EQ(race.symbol.rfind("water_virial", 0), 0u) << race.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, NodeCountTest, ::testing::Values(1, 2, 3, 5, 7),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "p" + std::to_string(param_info.param);
                         });

TEST(NodeCountTest, MoreNodesThanWorkStillTerminates) {
  // 10 nodes, 8 interior SOR rows: two nodes idle every iteration.
  SorApp::Params params;
  params.rows = 10;
  params.cols = 16;
  params.iters = 2;
  params.page_size = 1024;
  WorkloadResult result = RunWorkloadDetectOnly(
      [&] { return std::make_unique<SorApp>(params); }, Options(10));
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.detect.races.empty());
}

}  // namespace
}  // namespace cvm
