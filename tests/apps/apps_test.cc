// End-to-end tests of the four evaluation applications: results verify
// against serial references, and the detector finds exactly the races the
// paper reports — TSP's benign read-write races on the tour bound, Water's
// write-write bug on the global accumulator, and nothing in FFT or SOR.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/apps/fft.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/apps/workload.h"

namespace cvm {
namespace {

DsmOptions TestOptions(int nodes) {
  DsmOptions options;
  options.num_nodes = nodes;
  options.page_size = 1024;
  options.max_shared_bytes = 8ull << 20;
  return options;
}

bool AnyRaceOnSymbol(const std::vector<RaceReport>& races, const std::string& prefix) {
  return std::any_of(races.begin(), races.end(), [&](const RaceReport& r) {
    return r.symbol.rfind(prefix, 0) == 0;
  });
}

TEST(SorAppTest, VerifiesAndIsRaceFree) {
  SorApp::Params params;
  params.rows = 34;
  params.cols = 32;
  params.iters = 3;
  params.page_size = 1024;
  WorkloadResult result =
      RunWorkload([&] { return std::make_unique<SorApp>(params); }, TestOptions(4));
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.detect.races.empty())
      << "unexpected: " << result.detect.races.front().ToString();
  // Paper Table 3: SOR exhibits no unsynchronized sharing at all.
  EXPECT_EQ(result.detect.detector.overlapping_pairs, 0u);
}

TEST(FftAppTest, VerifiesWithFalseSharingButNoRaces) {
  FftApp::Params params;
  params.rows = 32;
  params.cols = 32;
  WorkloadResult result =
      RunWorkload([&] { return std::make_unique<FftApp>(params); }, TestOptions(4));
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(result.detect.races.empty())
      << "unexpected: " << result.detect.races.front().ToString();
  // The column phase's strided writes share pages across nodes: concurrent
  // intervals with page overlap that bitmap comparison clears as false
  // sharing (paper: FFT uses intervals/bitmaps without reporting races).
  EXPECT_GT(result.detect.detector.overlapping_pairs, 0u);
}

TEST(TspAppTest, FindsOptimalTourAndReportsBoundRaces) {
  TspApp::Params params;
  params.num_cities = 10;
  params.prefix_depth = 2;
  WorkloadResult result =
      RunWorkload([&] { return std::make_unique<TspApp>(params); }, TestOptions(4));
  EXPECT_TRUE(result.verified) << "TSP result wrong despite benign races";
  // The unsynchronized tour-bound reads are real (benign) data races.
  EXPECT_TRUE(AnyRaceOnSymbol(result.detect.races, "tsp_min_tour"))
      << "expected read-write races on the tour bound";
  for (const RaceReport& race : result.detect.races) {
    // All TSP races involve the bound or the lock-adjacent best-tour page.
    EXPECT_TRUE(race.symbol.rfind("tsp_min_tour", 0) == 0 ||
                race.symbol.rfind("tsp_queue_head", 0) == 0 ||
                race.symbol.rfind("tsp_best_tour", 0) == 0)
        << race.ToString();
  }
}

TEST(WaterAppTest, BuggyVirialUpdateIsAWriteWriteRace) {
  WaterApp::Params params;
  params.molecules = 32;
  params.iters = 2;
  WorkloadResult result =
      RunWorkload([&] { return std::make_unique<WaterApp>(params); }, TestOptions(4));
  EXPECT_TRUE(result.verified);
  EXPECT_TRUE(AnyRaceOnSymbol(result.detect.races, "water_virial"))
      << "expected the injected Splash2-style bug to be caught";
  const bool has_ww = std::any_of(
      result.detect.races.begin(), result.detect.races.end(), [](const RaceReport& r) {
        return r.symbol.rfind("water_virial", 0) == 0 && r.kind == RaceKind::kWriteWrite;
      });
  EXPECT_TRUE(has_ww) << "virial RMW collisions must include write-write";
}

TEST(WaterAppTest, FixedVersionHasNoVirialRace) {
  WaterApp::Params params;
  params.molecules = 32;
  params.iters = 2;
  params.fix_virial_bug = true;
  WorkloadResult result =
      RunWorkload([&] { return std::make_unique<WaterApp>(params); }, TestOptions(4));
  EXPECT_TRUE(result.verified);
  EXPECT_FALSE(AnyRaceOnSymbol(result.detect.races, "water_virial"))
      << "the repaired version must be clean";
}

TEST(WorkloadTest, SlowdownIsMeasurableAndModest) {
  SorApp::Params params;
  params.rows = 18;
  params.cols = 16;
  params.iters = 2;
  params.page_size = 1024;
  WorkloadResult result =
      RunWorkload([&] { return std::make_unique<SorApp>(params); }, TestOptions(2));
  EXPECT_GT(result.Slowdown(), 1.0);
  EXPECT_LT(result.Slowdown(), 10.0);
  double total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    total += result.OverheadFraction(static_cast<Bucket>(b));
  }
  EXPECT_NEAR(total, result.TotalOverheadFraction(), 1e-9);
}

}  // namespace
}  // namespace cvm
