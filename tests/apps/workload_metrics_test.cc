// Unit tests for the WorkloadResult metric derivations (Tables 1/3 and
// Figure 3 math) over synthetic RunResults.
#include <gtest/gtest.h>

#include "src/apps/workload.h"

namespace cvm {
namespace {

WorkloadResult MakeResult() {
  WorkloadResult result;
  result.base.sim_time_ns = 100e6;
  result.detect.sim_time_ns = 220e6;
  result.detect.overhead_ns[static_cast<int>(Bucket::kCvmMods)] = 10e6;
  result.detect.overhead_ns[static_cast<int>(Bucket::kProcCall)] = 50e6;
  result.detect.overhead_ns[static_cast<int>(Bucket::kAccessCheck)] = 30e6;
  result.detect.overhead_ns[static_cast<int>(Bucket::kIntervals)] = 7e6;
  result.detect.overhead_ns[static_cast<int>(Bucket::kBitmaps)] = 3e6;
  result.detect.detector.intervals_total = 200;
  result.detect.detector.intervals_in_overlap = 30;
  result.detect.detector.checklist_entries = 12;
  result.detect.bitmap_pairs_recorded = 120;
  result.detect.net.bytes = 1'000'000;
  result.detect.net.read_notice_bytes = 10'000;
  result.detect.net.bytes_by_kind["LockGrant"] = 40'000;
  result.detect.net.bytes_by_kind["BarrierArrive"] = 15'000;
  result.detect.net.bytes_by_kind["PageReply"] = 900'000;
  result.detect.access.shared_accesses = 1'100'000;
  result.detect.access.private_accesses = 3'300'000;
  result.detect.shared_bytes_used = 512 * 1024;
  result.detect.intervals_total = 160;
  result.detect.barriers = 10;
  return result;
}

TEST(WorkloadMetricsTest, SlowdownAndOverheadDecomposition) {
  WorkloadResult result = MakeResult();
  EXPECT_DOUBLE_EQ(result.Slowdown(), 2.2);
  EXPECT_NEAR(result.TotalOverheadFraction(), 1.2, 1e-12);
  // Buckets split the 120% proportionally to their ns sums (100 ns total).
  EXPECT_NEAR(result.OverheadFraction(Bucket::kProcCall), 1.2 * 0.5, 1e-12);
  EXPECT_NEAR(result.OverheadFraction(Bucket::kCvmMods), 1.2 * 0.1, 1e-12);
  double total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    total += result.OverheadFraction(static_cast<Bucket>(b));
  }
  EXPECT_NEAR(total, result.TotalOverheadFraction(), 1e-12);
}

TEST(WorkloadMetricsTest, Table3Columns) {
  WorkloadResult result = MakeResult();
  EXPECT_NEAR(result.IntervalsUsed(), 30.0 / 200.0, 1e-12);
  EXPECT_NEAR(result.BitmapsUsed(), 12.0 / 120.0, 1e-12);
  EXPECT_NEAR(result.MsgOverhead(), 10'000.0 / 990'000.0, 1e-12);
  // Sync-only denominator: lock + barrier bytes minus the notices.
  EXPECT_NEAR(result.MsgOverheadSyncOnly(), 10'000.0 / 45'000.0, 1e-12);
  // Access rates per simulated second of the instrumented run.
  EXPECT_NEAR(result.SharedPerSecond(), 1'100'000 / 0.22, 1.0);
  EXPECT_NEAR(result.PrivatePerSecond(), 3'300'000 / 0.22, 1.0);
  EXPECT_DOUBLE_EQ(result.MemoryKb(), 512.0);
}

TEST(WorkloadMetricsTest, DegenerateInputsYieldZeroes) {
  WorkloadResult empty;
  EXPECT_EQ(empty.Slowdown(), 0.0);
  EXPECT_EQ(empty.IntervalsUsed(), 0.0);
  EXPECT_EQ(empty.BitmapsUsed(), 0.0);
  EXPECT_EQ(empty.MsgOverhead(), 0.0);
  EXPECT_EQ(empty.MsgOverheadSyncOnly(), 0.0);
  EXPECT_EQ(empty.SharedPerSecond(), 0.0);
  EXPECT_EQ(empty.OverheadFraction(Bucket::kProcCall), 0.0);
}

TEST(WorkloadMetricsTest, IntervalsPerBarrier) {
  WorkloadResult result = MakeResult();
  // 160 intervals / (10 barriers * 4 nodes).
  EXPECT_DOUBLE_EQ(result.IntervalsPerBarrier(4), 4.0);
  EXPECT_EQ(result.IntervalsPerBarrier(0), 0.0);
}

}  // namespace
}  // namespace cvm
