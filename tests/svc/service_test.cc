// DsmService end-to-end tests: admission through worker fabrics to
// region-scoped outcomes, per-tenant metrics, and tenant trace tracks.
#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/apps/app_catalog.h"
#include "src/dsm/dsm.h"
#include "src/svc/service.h"

namespace cvm::svc {
namespace {

ServiceConfig SmallConfig() {
  ServiceConfig config;
  config.workers = 2;
  config.nodes = 4;
  config.max_shared_bytes = 16ull << 20;
  return config;
}

WorkloadRequest Req(const std::string& tenant, const std::string& app, int64_t size) {
  WorkloadRequest request;
  request.tenant = tenant;
  request.app = app;
  request.size = size;
  return request;
}

std::string RaceStream(const std::vector<RaceReport>& races) {
  std::ostringstream out;
  for (const RaceReport& race : races) {
    out << race.ToString() << "\n";
  }
  return out.str();
}

TEST(ServiceTest, ServesMultipleTenantsToCompletion) {
  DsmService service(SmallConfig());
  service.Start();
  ASSERT_NE(service.Submit(Req("alpha", "fft", 32)), 0u);
  ASSERT_NE(service.Submit(Req("beta", "water", 64)), 0u);
  ASSERT_NE(service.Submit(Req("alpha", "sor", 32)), 0u);
  service.Drain();
  service.Stop();

  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 3u);
  for (const WorkloadOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.verified) << outcome.request.app;
    EXPECT_EQ(outcome.dispatch_unhandled, 0u);
    EXPECT_GT(outcome.region.size(), 0u);
    EXPECT_GT(outcome.sim_time_ns, 0);
    EXPECT_GE(outcome.service_s, 0);
    EXPECT_GE(outcome.total_s, outcome.service_s);
    // Every reported race names an address inside the tenant's region.
    for (const RaceReport& race : outcome.races) {
      EXPECT_TRUE(outcome.region.Contains(race.addr)) << race.ToString();
    }
    // fft and sor are race-free; water carries the intentional bug.
    if (outcome.request.app == "water") {
      EXPECT_FALSE(outcome.races.empty());
    } else {
      EXPECT_TRUE(outcome.races.empty()) << outcome.request.app;
    }
  }
  EXPECT_EQ(service.scheduler().stats().completed, 3u);
}

TEST(ServiceTest, RejectsUnknownAppAtAdmission) {
  DsmService service(SmallConfig());
  service.Start();
  std::string reason;
  EXPECT_EQ(service.Submit(Req("alpha", "raytracer", 1), &reason), 0u);
  EXPECT_NE(reason.find("unknown app"), std::string::npos);
  service.Stop();
  EXPECT_EQ(service.scheduler().stats().rejected, 1u);
  EXPECT_TRUE(service.outcomes().empty());
}

TEST(ServiceTest, WarmReuseMatchesDedicatedSystem) {
  // Two water runs through one warm worker: both must report exactly the
  // race stream a dedicated fresh DsmSystem produces.
  ServiceConfig config = SmallConfig();
  config.workers = 1;
  DsmService service(config);
  service.Start();
  ASSERT_NE(service.Submit(Req("alpha", "water", 64)), 0u);
  service.Drain();
  ASSERT_NE(service.Submit(Req("alpha", "water", 64)), 0u);
  service.Drain();
  service.Stop();

  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_FALSE(outcomes[0].warm_reuse);
  EXPECT_TRUE(outcomes[1].warm_reuse);

  DsmOptions options;
  options.num_nodes = config.nodes;
  options.max_shared_bytes = config.max_shared_bytes;
  DsmSystem dedicated(options);
  CatalogRequest request;
  request.app = "water";
  request.size = 64;
  auto app = MakeCatalogApp(request);
  app->Setup(dedicated);
  const RunResult reference = dedicated.Run([&app](NodeContext& ctx) { app->Run(ctx); });

  const std::string expected = RaceStream(reference.races);
  EXPECT_FALSE(expected.empty());
  EXPECT_EQ(RaceStream(outcomes[0].races), expected);
  EXPECT_EQ(RaceStream(outcomes[1].races), expected);
}

TEST(ServiceTest, ColdModeNeverReuses) {
  ServiceConfig config = SmallConfig();
  config.workers = 1;
  config.warm = false;
  DsmService service(config);
  service.Start();
  ASSERT_NE(service.Submit(Req("alpha", "fft", 32)), 0u);
  ASSERT_NE(service.Submit(Req("alpha", "fft", 32)), 0u);
  service.Drain();
  service.Stop();
  for (const WorkloadOutcome& outcome : service.outcomes()) {
    EXPECT_FALSE(outcome.warm_reuse);
    EXPECT_TRUE(outcome.verified);
  }
}

TEST(ServiceTest, PerTenantMetricsAndTraceTracks) {
  if constexpr (!obs::kObsCompiledIn) {
    GTEST_SKIP() << "obs layer compiled out";
  }
  DsmService service(SmallConfig());
  service.Start();
  ASSERT_NE(service.Submit(Req("alpha", "fft", 32)), 0u);
  ASSERT_NE(service.Submit(Req("alpha", "sor", 32)), 0u);
  ASSERT_NE(service.Submit(Req("beta", "water", 64)), 0u);
  service.Drain();
  service.Stop();

  ASSERT_NE(service.metrics(), nullptr);
  EXPECT_EQ(service.metrics()->counter("tenant.alpha.completed")->value(), 2u);
  EXPECT_EQ(service.metrics()->counter("tenant.beta.completed")->value(), 1u);
  EXPECT_EQ(service.metrics()->counter("tenant.alpha.races")->value(), 0u);
  EXPECT_GT(service.metrics()->counter("tenant.beta.races")->value(), 0u);
  EXPECT_EQ(service.metrics()->counter("tenant.alpha.unhandled")->value(), 0u);
  EXPECT_EQ(service.metrics()->counter("svc.completed")->value(), 3u);
  EXPECT_EQ(service.metrics()->histogram("tenant.alpha.service_us")->count(), 2u);

  // One span per workload, on the tenant's own track.
  ASSERT_NE(service.tracer(), nullptr);
  EXPECT_EQ(service.tracer()->TotalEmitted(), 3u);
  const int alpha_track = service.TenantTrack("alpha");
  const int beta_track = service.TenantTrack("beta");
  ASSERT_GE(alpha_track, 0);
  ASSERT_GE(beta_track, 0);
  EXPECT_NE(alpha_track, beta_track);
  int alpha_spans = 0;
  int beta_spans = 0;
  for (const obs::TraceEvent& event : service.tracer()->Collected()) {
    EXPECT_EQ(event.phase, 'X');
    EXPECT_STREQ(event.cat, "svc");
    alpha_spans += event.node == alpha_track ? 1 : 0;
    beta_spans += event.node == beta_track ? 1 : 0;
  }
  EXPECT_EQ(alpha_spans, 2);
  EXPECT_EQ(beta_spans, 1);
  EXPECT_EQ(service.TenantTrack("nobody"), -1);
}

TEST(ServiceTest, QueueCapacityShedsLoad) {
  ServiceConfig config = SmallConfig();
  config.workers = 1;
  config.queue_capacity = 1;
  config.per_tenant_cap = 1;
  DsmService service(config);
  // Not started: requests stack up in the queue, so capacity must bite.
  ASSERT_NE(service.Submit(Req("alpha", "fft", 16)), 0u);
  std::string reason;
  uint64_t rejected = 0;
  for (int i = 0; i < 3; ++i) {
    rejected += service.Submit(Req("alpha", "fft", 16), &reason) == 0 ? 1 : 0;
  }
  EXPECT_GE(rejected, 2u);  // At least the clearly-over-capacity submissions.
  service.Start();
  service.Drain();
  service.Stop();
  EXPECT_EQ(service.scheduler().stats().rejected, rejected);
}

}  // namespace
}  // namespace cvm::svc
