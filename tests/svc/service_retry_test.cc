// Service-level crash recovery: a workload whose run ends in a node crash is
// requeued with backoff (up to the retry budget), its fabric is quarantined
// and rebuilt, and tenants sharing the service are completely unaffected —
// their reports stay byte-identical to an undisturbed service's.
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/dsm/dsm.h"
#include "src/obs/metrics.h"
#include "src/svc/service.h"
#include "src/svc/tenant.h"

namespace cvm::svc {
namespace {

ServiceConfig SmallConfig() {
  ServiceConfig config;
  config.workers = 1;  // One fabric: crash handling and reuse are observable.
  config.nodes = 4;
  config.max_shared_bytes = 16ull << 20;
  config.retry_backoff_base_s = 0.0001;  // Keep test wall time tiny.
  config.retry_backoff_cap_s = 0.001;
  return config;
}

WorkloadRequest CrashReq(const std::string& tenant, bool reboot, uint64_t seed = 5) {
  WorkloadRequest request;
  request.tenant = tenant;
  request.app = "sor";
  request.size = 32;
  request.seed = seed;
  request.fault_profile = fault::FaultProfile::kCrash;
  request.fault_crash_reboot = reboot;
  return request;
}

std::string RaceStream(const std::vector<RaceReport>& races) {
  std::ostringstream out;
  for (const RaceReport& race : races) {
    out << race.ToString() << "\n";
  }
  return out.str();
}

TEST(ServiceRetryTest, TransientCrashIsRetriedOnceAndSucceeds) {
  DsmService service(SmallConfig());
  service.Start();
  ASSERT_NE(service.Submit(CrashReq("chaos", /*reboot=*/true)), 0u);
  service.Drain();
  service.Stop();

  // One outcome: the crashed first attempt recorded none, only the clean
  // reboot re-run did.
  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].verified);
  EXPECT_FALSE(outcomes[0].failed);
  EXPECT_EQ(outcomes[0].attempts, 1u);
  EXPECT_FALSE(outcomes[0].recovery.crashed);

  const SchedulerStats stats = service.scheduler().stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.retried, 1u);
  EXPECT_EQ(service.scheduler().tenant_counts().at("chaos").retried, 1u);

  if constexpr (obs::kObsCompiledIn) {
    ASSERT_NE(service.metrics(), nullptr);
    EXPECT_EQ(service.metrics()->counter(TenantMetricName("chaos", "retries"))->value(),
              1u);
    // The crashed fabric was quarantined, not Reset()-reused.
    EXPECT_EQ(service.metrics()->counter("svc.fabric.rebuilds")->value(), 1u);
    EXPECT_EQ(service.metrics()->counter("svc.failed")->value(), 0u);
  }
}

TEST(ServiceRetryTest, PermanentCrashSpendsTheBudgetThenFailsOnlyThatWorkload) {
  ServiceConfig config = SmallConfig();
  config.retry_budget = 2;
  DsmService service(config);
  service.Start();
  // A permanent crash recurs on every retry; the victim tenant must fail
  // without taking the healthy tenant's workload with it.
  ASSERT_NE(service.Submit(CrashReq("bad", /*reboot=*/false)), 0u);
  WorkloadRequest good;
  good.tenant = "good";
  good.app = "water";
  good.size = 64;
  ASSERT_NE(service.Submit(good), 0u);
  service.Drain();
  service.Stop();

  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 2u);
  const WorkloadOutcome* bad = nullptr;
  const WorkloadOutcome* healthy = nullptr;
  for (const WorkloadOutcome& outcome : outcomes) {
    (outcome.request.tenant == "bad" ? bad : healthy) = &outcome;
  }
  ASSERT_NE(bad, nullptr);
  ASSERT_NE(healthy, nullptr);

  EXPECT_TRUE(bad->failed);
  EXPECT_FALSE(bad->verified);
  EXPECT_EQ(bad->attempts, 2u);  // Initial try + 2 retries, all crashed.
  EXPECT_TRUE(bad->recovery.crashed);
  EXPECT_EQ(service.scheduler().stats().retried, 2u);

  // The healthy tenant is untouched: verified, unfailed, and its (buggy
  // water) race report byte-identical to a service that saw no crashes.
  EXPECT_TRUE(healthy->verified);
  EXPECT_FALSE(healthy->failed);
  ASSERT_FALSE(healthy->races.empty());

  DsmService baseline_service(SmallConfig());
  baseline_service.Start();
  WorkloadRequest baseline_req;
  baseline_req.tenant = "good";
  baseline_req.app = "water";
  baseline_req.size = 64;
  ASSERT_NE(baseline_service.Submit(baseline_req), 0u);
  baseline_service.Drain();
  baseline_service.Stop();
  const std::vector<WorkloadOutcome> baseline = baseline_service.outcomes();
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_EQ(RaceStream(healthy->races), RaceStream(baseline[0].races));
}

TEST(ServiceRetryTest, ZeroRetryBudgetFailsTheFirstCrashImmediately) {
  ServiceConfig config = SmallConfig();
  config.retry_budget = 0;
  DsmService service(config);
  service.Start();
  ASSERT_NE(service.Submit(CrashReq("chaos", /*reboot=*/true)), 0u);
  service.Drain();
  service.Stop();

  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].failed);
  EXPECT_EQ(outcomes[0].attempts, 0u);
  EXPECT_TRUE(outcomes[0].recovery.crashed);
  EXPECT_EQ(service.scheduler().stats().retried, 0u);
}

TEST(ServiceRetryTest, QuarantinedFabricIsRebuiltFreshForTheNextWorkload) {
  DsmService service(SmallConfig());
  service.Start();
  // Warm up the single fabric, crash it, then serve again: the post-crash
  // workload must run on a rebuilt fabric (warm_reuse false), not a
  // Reset() of the poisoned one.
  WorkloadRequest first;
  first.tenant = "steady";
  first.app = "sor";
  first.size = 32;
  ASSERT_NE(service.Submit(first), 0u);
  service.Drain();
  ASSERT_NE(service.Submit(CrashReq("chaos", /*reboot=*/true)), 0u);
  service.Drain();
  service.Stop();

  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].request.tenant, "steady");
  EXPECT_FALSE(outcomes[0].warm_reuse);  // First build.
  // The retry ran after the crashed attempt poisoned the warm fabric.
  EXPECT_EQ(outcomes[1].request.tenant, "chaos");
  EXPECT_FALSE(outcomes[1].warm_reuse);
  EXPECT_TRUE(outcomes[1].verified);
}

}  // namespace
}  // namespace cvm::svc
