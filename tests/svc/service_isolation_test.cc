// Tenant-isolation chaos tests (the tentpole guarantee of docs/SERVICE.md):
// one tenant running under an aggressive fault profile — healing partitions,
// stress (loss + dups + corruption + stalls) — must leave every *other*
// tenant's race reports byte-identical to its fault-free dedicated baseline,
// with zero unhandled protocol messages anywhere in the service.
//
// The guarantee holds by construction (a worker fabric serves one workload
// at a time, and Reset() restores it bit-identically), and this test is the
// regression net around that construction.
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/apps/app_catalog.h"
#include "src/dsm/dsm.h"
#include "src/svc/service.h"

namespace cvm::svc {
namespace {

constexpr int kNodes = 4;
constexpr int64_t kFftSize = 32;
constexpr int64_t kWaterSize = 64;

std::string RaceStream(const std::vector<RaceReport>& races) {
  std::ostringstream out;
  for (const RaceReport& race : races) {
    out << race.ToString() << "\n";
  }
  return out.str();
}

// The report stream a dedicated, fault-free process would print for the app.
std::string DedicatedBaseline(const std::string& app, int64_t size) {
  DsmOptions options;
  options.num_nodes = kNodes;
  options.max_shared_bytes = 16ull << 20;
  CatalogRequest request;
  request.app = app;
  request.size = size;
  auto instance = MakeCatalogApp(request);
  DsmSystem system(options);
  instance->Setup(system);
  RunResult result = system.Run([&instance](NodeContext& ctx) { instance->Run(ctx); });
  EXPECT_TRUE(instance->Verify()) << app;
  return RaceStream(result.races);
}

WorkloadRequest Req(const std::string& tenant, const std::string& app, int64_t size,
                    fault::FaultProfile profile = fault::FaultProfile::kOff) {
  WorkloadRequest request;
  request.tenant = tenant;
  request.app = app;
  request.size = size;
  request.fault_profile = profile;
  return request;
}

class IsolationTest : public ::testing::TestWithParam<fault::FaultProfile> {};

TEST_P(IsolationTest, ChaosTenantCannotPerturbOthers) {
  const fault::FaultProfile chaos_profile = GetParam();
  const std::string fft_baseline = DedicatedBaseline("fft", kFftSize);
  const std::string water_baseline = DedicatedBaseline("water", kWaterSize);
  ASSERT_TRUE(fft_baseline.empty());      // fft is race-free...
  ASSERT_FALSE(water_baseline.empty());   // ...water carries the seeded bug.

  ServiceConfig config;
  config.workers = 2;
  config.nodes = kNodes;
  config.max_shared_bytes = 16ull << 20;
  config.per_tenant_cap = 2;
  DsmService service(config);
  service.Start();

  // Interleave the chaos tenant's faulty workloads with the clean tenants'
  // so faulty and clean runs genuinely alternate on the warm fabrics.
  for (int round = 0; round < 2; ++round) {
    ASSERT_NE(service.Submit(Req("alpha", "fft", kFftSize)), 0u);
    ASSERT_NE(service.Submit(Req("chaos", "water", kWaterSize, chaos_profile)), 0u);
    ASSERT_NE(service.Submit(Req("beta", "water", kWaterSize)), 0u);
    ASSERT_NE(service.Submit(Req("chaos", "fft", kFftSize, chaos_profile)), 0u);
    service.Drain();
  }
  service.Stop();

  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 8u);
  bool chaos_saw_faults = false;
  for (const WorkloadOutcome& outcome : outcomes) {
    // The service-wide invariant: no unhandled protocol messages anywhere,
    // chaos tenant included — reliable transport heals every injected fault.
    EXPECT_EQ(outcome.dispatch_unhandled, 0u)
        << outcome.request.tenant << "/" << outcome.request.app;
    EXPECT_TRUE(outcome.verified)
        << outcome.request.tenant << "/" << outcome.request.app;

    if (outcome.request.tenant == "chaos") {
      chaos_saw_faults = chaos_saw_faults || outcome.fault.data_frames > 0;
      continue;
    }
    // Clean tenants: fault machinery never touched their runs...
    EXPECT_EQ(outcome.fault.data_frames, 0u);
    // ...and their reports are byte-identical to the dedicated baseline.
    const std::string& expected =
        outcome.request.app == "fft" ? fft_baseline : water_baseline;
    EXPECT_EQ(RaceStream(outcome.races), expected)
        << outcome.request.tenant << "/" << outcome.request.app
        << (outcome.warm_reuse ? " (warm)" : " (cold)");
  }
  // The chaos tenant's plan actually engaged (otherwise this test is vacuous).
  EXPECT_TRUE(chaos_saw_faults);
}

INSTANTIATE_TEST_SUITE_P(Profiles, IsolationTest,
                         ::testing::Values(fault::FaultProfile::kPartition,
                                           fault::FaultProfile::kStress),
                         [](const ::testing::TestParamInfo<fault::FaultProfile>& param) {
                           return std::string(fault::ProfileName(param.param));
                         });

TEST(IsolationTest, ChaosReportsStayInsideChaosRegion) {
  // Even the faulty tenant's own reports must stay region-scoped: stress
  // faults on water still only name water's shared addresses.
  ServiceConfig config;
  config.workers = 1;
  config.nodes = kNodes;
  config.max_shared_bytes = 16ull << 20;
  DsmService service(config);
  service.Start();
  ASSERT_NE(service.Submit(Req("chaos", "water", kWaterSize, fault::FaultProfile::kStress)),
            0u);
  service.Drain();
  service.Stop();

  const std::vector<WorkloadOutcome> outcomes = service.outcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].verified);
  EXPECT_FALSE(outcomes[0].races.empty());
  for (const RaceReport& race : outcomes[0].races) {
    EXPECT_TRUE(outcomes[0].region.Contains(race.addr)) << race.ToString();
  }
}

}  // namespace
}  // namespace cvm::svc
