// Scheduler unit tests: admission control (bounded queue, tenant table,
// tenant-id hygiene) and the two dispatch policies, driven synchronously
// through TryNext() so no worker threads are involved.
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/svc/scheduler.h"
#include "src/svc/tenant.h"

namespace cvm::svc {
namespace {

WorkloadRequest Req(const std::string& tenant, const std::string& app = "fft") {
  WorkloadRequest request;
  request.tenant = tenant;
  request.app = app;
  return request;
}

TEST(TenantTest, ValidIds) {
  EXPECT_TRUE(ValidTenantId("alpha"));
  EXPECT_TRUE(ValidTenantId("team-1_B"));
  EXPECT_FALSE(ValidTenantId(""));
  EXPECT_FALSE(ValidTenantId("has space"));
  EXPECT_FALSE(ValidTenantId("dots..bad"));
  EXPECT_FALSE(ValidTenantId(std::string(33, 'a')));
  EXPECT_EQ(TenantMetricName("alpha", "completed"), "tenant.alpha.completed");
}

TEST(SchedulerTest, PolicyParsing) {
  EXPECT_EQ(ParsePolicy("fifo"), SchedPolicy::kFifo);
  EXPECT_EQ(ParsePolicy("fair"), SchedPolicy::kFairShare);
  EXPECT_EQ(ParsePolicy("fair-share"), SchedPolicy::kFairShare);
  EXPECT_FALSE(ParsePolicy("round-robin").has_value());
  EXPECT_STREQ(PolicyName(SchedPolicy::kFifo), "fifo");
  EXPECT_STREQ(PolicyName(SchedPolicy::kFairShare), "fair");
}

TEST(SchedulerTest, FifoDispatchesInSubmitOrder) {
  Scheduler scheduler(SchedPolicy::kFifo, 16, 4, 8);
  EXPECT_NE(scheduler.Submit(Req("b", "sor")), 0u);
  EXPECT_NE(scheduler.Submit(Req("a", "fft")), 0u);
  EXPECT_NE(scheduler.Submit(Req("b", "water")), 0u);

  EXPECT_EQ(scheduler.TryNext()->app, "sor");
  EXPECT_EQ(scheduler.TryNext()->app, "fft");
  EXPECT_EQ(scheduler.TryNext()->app, "water");
  EXPECT_FALSE(scheduler.TryNext().has_value());
}

TEST(SchedulerTest, PerTenantCapHoldsRequestsBack) {
  Scheduler scheduler(SchedPolicy::kFifo, 16, 1, 8);
  ASSERT_NE(scheduler.Submit(Req("a", "first")), 0u);
  ASSERT_NE(scheduler.Submit(Req("a", "second")), 0u);
  ASSERT_NE(scheduler.Submit(Req("b", "other")), 0u);

  // a's first dispatches; a's second is capped, so b jumps ahead.
  EXPECT_EQ(scheduler.TryNext()->app, "first");
  EXPECT_EQ(scheduler.TryNext()->app, "other");
  EXPECT_FALSE(scheduler.TryNext().has_value());

  scheduler.OnComplete("a");
  EXPECT_EQ(scheduler.TryNext()->app, "second");
}

TEST(SchedulerTest, FairShareFavorsLeastServedTenant) {
  Scheduler scheduler(SchedPolicy::kFairShare, 16, 4, 8);
  // "hog" queues three before "newcomer" shows up.
  ASSERT_NE(scheduler.Submit(Req("hog", "h1")), 0u);
  ASSERT_NE(scheduler.Submit(Req("hog", "h2")), 0u);
  ASSERT_NE(scheduler.Submit(Req("hog", "h3")), 0u);
  ASSERT_NE(scheduler.Submit(Req("newcomer", "n1")), 0u);

  EXPECT_EQ(scheduler.TryNext()->tenant, "hog");  // Both at 0 served; tie -> "hog".
  EXPECT_EQ(scheduler.TryNext()->tenant, "newcomer");  // hog now has 1 running.
  EXPECT_EQ(scheduler.TryNext()->tenant, "hog");
  scheduler.OnComplete("newcomer");
  // newcomer completed 1, hog has 2 running: hog's h3 must wait for parity.
  ASSERT_NE(scheduler.Submit(Req("newcomer", "n2")), 0u);
  EXPECT_EQ(scheduler.TryNext()->app, "n2");
}

TEST(SchedulerTest, QueueCapacityRejects) {
  Scheduler scheduler(SchedPolicy::kFifo, 2, 4, 8);
  EXPECT_NE(scheduler.Submit(Req("a")), 0u);
  EXPECT_NE(scheduler.Submit(Req("a")), 0u);
  std::string reason;
  EXPECT_EQ(scheduler.Submit(Req("a"), &reason), 0u);
  EXPECT_NE(reason.find("queue full"), std::string::npos);

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(scheduler.tenant_counts().at("a").rejected, 1u);
}

TEST(SchedulerTest, InvalidTenantAndTableOverflowReject) {
  Scheduler scheduler(SchedPolicy::kFifo, 16, 4, 2);
  std::string reason;
  EXPECT_EQ(scheduler.Submit(Req("bad tenant!"), &reason), 0u);
  EXPECT_NE(reason.find("invalid tenant id"), std::string::npos);

  EXPECT_NE(scheduler.Submit(Req("a")), 0u);
  EXPECT_NE(scheduler.Submit(Req("b")), 0u);
  EXPECT_EQ(scheduler.Submit(Req("c"), &reason), 0u);
  EXPECT_NE(reason.find("tenant table full"), std::string::npos);
  // An existing tenant still gets in.
  EXPECT_NE(scheduler.Submit(Req("a")), 0u);
}

TEST(SchedulerTest, ShutdownDrainsThenStopsAdmission) {
  Scheduler scheduler(SchedPolicy::kFifo, 16, 4, 8);
  ASSERT_NE(scheduler.Submit(Req("a", "queued")), 0u);
  scheduler.Shutdown();

  std::string reason;
  EXPECT_EQ(scheduler.Submit(Req("a", "late"), &reason), 0u);
  EXPECT_NE(reason.find("shutting down"), std::string::npos);

  // The queued request still dispatches (drain), then Next() returns nullopt.
  std::optional<WorkloadRequest> request = scheduler.Next();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->app, "queued");
  scheduler.OnComplete("a");
  EXPECT_FALSE(scheduler.Next().has_value());
}

TEST(SchedulerTest, WaitIdleReturnsWhenNothingRuns) {
  Scheduler scheduler(SchedPolicy::kFifo, 16, 4, 8);
  scheduler.WaitIdle();  // Trivially idle.
  ASSERT_NE(scheduler.Submit(Req("a")), 0u);
  auto request = scheduler.TryNext();
  ASSERT_TRUE(request.has_value());
  scheduler.OnComplete("a");
  scheduler.WaitIdle();  // Queue empty, nothing running.
  EXPECT_EQ(scheduler.stats().completed, 1u);
}

TEST(SchedulerTest, RecordRejectedKeepsAccountingTogether) {
  Scheduler scheduler(SchedPolicy::kFifo, 16, 4, 8);
  scheduler.RecordRejected("a");
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(scheduler.tenant_counts().at("a").rejected, 1u);
}

}  // namespace
}  // namespace cvm::svc
