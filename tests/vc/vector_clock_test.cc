// Tests for version vectors and the paper's two-integer-comparison
// concurrency test (§4 step 2).
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/vc/vector_clock.h"

namespace cvm {
namespace {

TEST(VectorClockTest, StartsAtMinusOne) {
  VectorClock vc(4);
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(vc.At(n), -1);
  }
}

TEST(VectorClockTest, TickAdvancesOwnComponent) {
  VectorClock vc(3);
  EXPECT_EQ(vc.Tick(1), 0);
  EXPECT_EQ(vc.Tick(1), 1);
  EXPECT_EQ(vc.At(0), -1);
  EXPECT_EQ(vc.At(1), 1);
}

TEST(VectorClockTest, MergeTakesElementwiseMax) {
  VectorClock a(3);
  VectorClock b(3);
  a.Set(0, 5);
  a.Set(1, 1);
  b.Set(1, 4);
  b.Set(2, 2);
  a.MergeWith(b);
  EXPECT_EQ(a.At(0), 5);
  EXPECT_EQ(a.At(1), 4);
  EXPECT_EQ(a.At(2), 2);
}

TEST(VectorClockTest, DominationIsPartialOrder) {
  VectorClock a(2);
  VectorClock b(2);
  a.Set(0, 1);
  b.Set(0, 2);
  b.Set(1, 1);
  EXPECT_TRUE(a.DominatedBy(b));
  EXPECT_FALSE(b.DominatedBy(a));
  EXPECT_TRUE(a.DominatedBy(a));
}

// Figure 2's execution: P1's interval 1 (the release) precedes P2's
// interval 2 (after the acquire); P1's interval 2 is concurrent with it.
TEST(IntervalConcurrencyTest, Figure2Scenario) {
  // sigma_1^1: P1's first interval (write x, release).
  IntervalId s11{0, 1};
  VectorClock vc11(2);
  vc11.Set(0, 1);

  // sigma_2^2: P2's second interval, begun with the acquire of P1's release:
  // it has seen P1 through interval 1.
  IntervalId s22{1, 2};
  VectorClock vc22(2);
  vc22.Set(0, 1);
  vc22.Set(1, 2);

  // sigma_1^2: P1's second interval, after the release; P1 has not heard
  // from P2 at all.
  IntervalId s12{0, 2};
  VectorClock vc12(2);
  vc12.Set(0, 2);

  EXPECT_FALSE(IntervalsConcurrent(s11, vc11, s22, vc22));
  EXPECT_TRUE(IntervalHappensBefore(s11, s22, vc22));
  EXPECT_TRUE(IntervalsConcurrent(s12, vc12, s22, vc22));
  EXPECT_FALSE(IntervalHappensBefore(s12, s22, vc22));
  EXPECT_FALSE(IntervalHappensBefore(s22, s12, vc12));
}

TEST(IntervalConcurrencyTest, SameNodeNeverConcurrent) {
  IntervalId a{2, 1};
  IntervalId b{2, 5};
  VectorClock vc(4);
  EXPECT_FALSE(IntervalsConcurrent(a, vc, b, vc));
  EXPECT_TRUE(IntervalHappensBefore(a, b, vc));
}

// Property: concurrency is symmetric, and exactly one of
// {a -> b, b -> a, concurrent} holds for intervals on distinct nodes when
// the clocks are generated from a causal history.
TEST(IntervalConcurrencyTest, PropertyTrichotomyOnCausalHistories) {
  Rng rng(99);
  constexpr int kNodes = 4;
  for (int trial = 0; trial < 200; ++trial) {
    // Build a random causal history: each step, one node ticks; sometimes a
    // node merges another node's clock (a message).
    std::vector<VectorClock> clocks(kNodes, VectorClock(kNodes));
    struct Snapshot {
      IntervalId id;
      VectorClock vc;
    };
    std::vector<Snapshot> snaps;
    for (int step = 0; step < 30; ++step) {
      const NodeId node = static_cast<NodeId>(rng.Below(kNodes));
      if (rng.Chance(0.3)) {
        clocks[node].MergeWith(clocks[rng.Below(kNodes)]);
      }
      const IntervalIndex index = clocks[node].Tick(node);
      snaps.push_back({IntervalId{node, index}, clocks[node]});
    }
    for (size_t i = 0; i < snaps.size(); ++i) {
      for (size_t j = i + 1; j < snaps.size(); ++j) {
        const auto& a = snaps[i];
        const auto& b = snaps[j];
        if (a.id.node == b.id.node) {
          continue;
        }
        const bool ab = IntervalHappensBefore(a.id, b.id, b.vc);
        const bool ba = IntervalHappensBefore(b.id, a.id, a.vc);
        const bool conc = IntervalsConcurrent(a.id, a.vc, b.id, b.vc);
        EXPECT_EQ(IntervalsConcurrent(b.id, b.vc, a.id, a.vc), conc) << "symmetry";
        EXPECT_EQ(ab + ba + conc, 1) << "exactly one ordering relation must hold";
      }
    }
  }
}

}  // namespace
}  // namespace cvm
