// Tests for the shared segment, page tables, and twin/diff machinery.
#include <gtest/gtest.h>

#include <cstring>

#include "src/common/rng.h"
#include "src/mem/diff.h"
#include "src/mem/page_table.h"
#include "src/mem/shared_segment.h"

namespace cvm {
namespace {

TEST(SharedSegmentTest, AllocatesPageAlignedAndSymbolizes) {
  SharedSegment seg(1024, 64 * 1024);
  const GlobalAddr a = seg.Alloc("alpha", 100);
  const GlobalAddr b = seg.Alloc("beta", 8);
  EXPECT_EQ(a % 1024, 0u);
  EXPECT_EQ(b % 1024, 0u);
  EXPECT_EQ(seg.Symbolize(a), "alpha");
  EXPECT_EQ(seg.Symbolize(a + 8), "alpha+8");
  EXPECT_EQ(seg.Symbolize(b), "beta");
  EXPECT_EQ(seg.PageOf(b), 1);
}

TEST(SharedSegmentTest, PackedAllocationSharesPages) {
  SharedSegment seg(1024, 64 * 1024);
  const GlobalAddr a = seg.Alloc("a", 4, /*page_align=*/false);
  const GlobalAddr b = seg.Alloc("b", 4, /*page_align=*/false);
  EXPECT_EQ(seg.PageOf(a), seg.PageOf(b));
  EXPECT_EQ(b, a + 4);
}

TEST(SharedSegmentTest, InitialContentsArePokeable) {
  SharedSegment seg(256, 4096);
  seg.Alloc("x", 16);
  const uint32_t magic = 0xdeadbeef;
  seg.PokeInitial(4, &magic, sizeof(magic));
  const std::vector<uint8_t> page = seg.InitialPage(0);
  uint32_t got;
  std::memcpy(&got, page.data() + 4, 4);
  EXPECT_EQ(got, magic);
}

TEST(PageTableTest, StateMachineAndWordAccess) {
  PageTable pt(4, 256);
  EXPECT_FALSE(pt.Readable(2));
  pt.Install(2, std::vector<uint8_t>(256, 0), PageState::kReadOnly);
  EXPECT_TRUE(pt.Readable(2));
  EXPECT_FALSE(pt.Writable(2));
  pt.entry(2).state = PageState::kReadWrite;
  pt.WriteWord(2, 10, 0x12345678u);
  EXPECT_EQ(pt.ReadWord(2, 10), 0x12345678u);
  pt.Invalidate(2);
  EXPECT_FALSE(pt.Readable(2));
  // Data survives invalidation (stale copy), as the weak-memory tests rely on.
  EXPECT_EQ(pt.entry(2).data.size(), 256u);
}

TEST(PageTableTest, TwinIsSnapshot) {
  PageTable pt(1, 64);
  pt.Install(0, std::vector<uint8_t>(64, 7), PageState::kReadWrite);
  pt.MakeTwin(0);
  pt.WriteWord(0, 3, 42);
  ASSERT_TRUE(pt.entry(0).twin.has_value());
  EXPECT_EQ((*pt.entry(0).twin)[3 * 4], 7);
  pt.DropTwin(0);
  EXPECT_FALSE(pt.entry(0).twin.has_value());
}

TEST(DiffTest, CapturesOnlyModifiedWords) {
  std::vector<uint8_t> twin(64, 0);
  std::vector<uint8_t> current = twin;
  const uint32_t v1 = 0xaabbccdd;
  const uint32_t v2 = 0x11223344;
  std::memcpy(current.data() + 0, &v1, 4);
  std::memcpy(current.data() + 40, &v2, 4);
  const Diff diff = MakeDiff(3, IntervalId{1, 2}, twin, current);
  ASSERT_EQ(diff.words.size(), 2u);
  EXPECT_EQ(diff.words[0].word, 0u);
  EXPECT_EQ(diff.words[0].value, v1);
  EXPECT_EQ(diff.words[1].word, 10u);
  EXPECT_EQ(diff.words[1].value, v2);
  EXPECT_EQ(diff.page, 3);
}

TEST(DiffTest, SameValueOverwriteIsInvisible) {
  // §6.5's caveat: a word overwritten with its existing value produces no
  // diff entry — diff-derived write detection misses such races.
  std::vector<uint8_t> twin(32, 5);
  std::vector<uint8_t> current = twin;  // "Written" but values unchanged.
  const Diff diff = MakeDiff(0, IntervalId{0, 0}, twin, current);
  EXPECT_TRUE(diff.words.empty());
}

TEST(DiffTest, PropertyApplyReconstructsCurrent) {
  Rng rng(7);
  for (int trial = 0; trial < 40; ++trial) {
    const size_t bytes = 256;
    std::vector<uint8_t> twin(bytes);
    for (auto& b : twin) {
      b = static_cast<uint8_t>(rng.Below(256));
    }
    std::vector<uint8_t> current = twin;
    const int changes = static_cast<int>(rng.Range(0, 20));
    for (int i = 0; i < changes; ++i) {
      const size_t word = rng.Below(bytes / 4);
      const uint32_t value = static_cast<uint32_t>(rng.Next());
      std::memcpy(current.data() + word * 4, &value, 4);
    }
    const Diff diff = MakeDiff(0, IntervalId{0, 0}, twin, current);
    std::vector<uint8_t> rebuilt = twin;
    ApplyDiff(diff, rebuilt);
    EXPECT_EQ(rebuilt, current);
    EXPECT_LE(diff.words.size(), static_cast<size_t>(changes));
  }
}

}  // namespace
}  // namespace cvm
