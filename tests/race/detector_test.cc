// Unit tests of the race-detection pipeline over hand-built interval
// records: concurrency pruning, page-overlap winnowing (check list), and
// word-level bitmap comparison separating false from true sharing.
#include <gtest/gtest.h>

#include <map>

#include "src/race/detector.h"

namespace cvm {
namespace {

class Fixture {
 public:
  explicit Fixture(int nodes) : nodes_(nodes) {}

  // Adds an interval; vc entries listed as (node, index) pairs seen.
  IntervalRecord& Add(NodeId node, IntervalIndex index,
                      std::vector<std::pair<NodeId, IntervalIndex>> seen,
                      std::vector<PageId> writes, std::vector<PageId> reads) {
    IntervalRecord r;
    r.id = IntervalId{node, index};
    r.vc = VectorClock(nodes_);
    r.vc.Set(node, index);
    for (auto [n, i] : seen) {
      r.vc.Set(n, i);
    }
    r.write_pages = std::move(writes);
    r.read_pages = std::move(reads);
    records_.push_back(r);
    return records_.back();
  }

  void Touch(const IntervalId& id, PageId page, std::vector<uint32_t> read_words,
             std::vector<uint32_t> write_words) {
    PageAccessBitmaps pair{Bitmap(64), Bitmap(64)};
    for (uint32_t w : read_words) {
      pair.read.Set(w);
    }
    for (uint32_t w : write_words) {
      pair.write.Set(w);
    }
    bitmaps_[{id, page}] = std::move(pair);
  }

  BitmapLookup Lookup() const {
    return [this](const IntervalId& id, PageId page) -> const PageAccessBitmaps* {
      auto it = bitmaps_.find({id, page});
      return it == bitmaps_.end() ? nullptr : &it->second;
    };
  }

  const std::vector<IntervalRecord>& records() const { return records_; }

 private:
  int nodes_;
  std::vector<IntervalRecord> records_;
  std::map<std::pair<IntervalId, PageId>, PageAccessBitmaps> bitmaps_;
};

class DetectorTest : public ::testing::TestWithParam<OverlapMethod> {};

TEST_P(DetectorTest, OrderedIntervalsAreNeverChecked) {
  Fixture fx(2);
  fx.Add(0, 0, {}, {7}, {});
  fx.Add(1, 0, {{0, 0}}, {7}, {});  // Has seen node 0's interval: ordered.
  RaceDetector detector(16, GetParam());
  const auto pairs = detector.BuildCheckList(fx.records());
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(detector.stats().concurrent_pairs, 0u);
  EXPECT_EQ(detector.stats().interval_comparisons, 1u);
}

TEST_P(DetectorTest, ConcurrentWithoutPageOverlapIsPruned) {
  Fixture fx(2);
  fx.Add(0, 0, {}, {1}, {2});
  fx.Add(1, 0, {}, {3}, {4});
  RaceDetector detector(16, GetParam());
  const auto pairs = detector.BuildCheckList(fx.records());
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(detector.stats().concurrent_pairs, 1u);
  EXPECT_EQ(detector.stats().overlapping_pairs, 0u);
}

TEST_P(DetectorTest, ReadReadOverlapIsNotARaceCandidate) {
  Fixture fx(2);
  fx.Add(0, 0, {}, {}, {5});
  fx.Add(1, 0, {}, {}, {5});
  RaceDetector detector(16, GetParam());
  EXPECT_TRUE(detector.BuildCheckList(fx.records()).empty());
}

TEST_P(DetectorTest, FalseSharingIsClearedByBitmaps) {
  // Both write page 5 but different words: unsynchronized sharing that the
  // word-level comparison reveals as false sharing (§3.2's example).
  Fixture fx(2);
  fx.Add(0, 0, {}, {5}, {});
  fx.Add(1, 0, {}, {5}, {});
  fx.Touch({0, 0}, 5, {}, {1});
  fx.Touch({1, 0}, 5, {}, {2});
  RaceDetector detector(16, GetParam());
  const auto pairs = detector.BuildCheckList(fx.records());
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].pages, std::vector<PageId>{5});
  const auto races = detector.CompareBitmaps(pairs, fx.Lookup(), 0, RaceDetector::BitmapsNeeded(pairs).size());
  EXPECT_TRUE(races.empty());
  EXPECT_GT(detector.stats().bitmap_pairs_compared, 0u);
}

TEST_P(DetectorTest, TrueSharingWriteWrite) {
  Fixture fx(2);
  fx.Add(0, 0, {}, {5}, {});
  fx.Add(1, 0, {}, {5}, {});
  fx.Touch({0, 0}, 5, {}, {3});
  fx.Touch({1, 0}, 5, {}, {3});
  RaceDetector detector(16, GetParam());
  const auto pairs = detector.BuildCheckList(fx.records());
  const auto races = detector.CompareBitmaps(pairs, fx.Lookup(), 7, RaceDetector::BitmapsNeeded(pairs).size());
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].kind, RaceKind::kWriteWrite);
  EXPECT_EQ(races[0].page, 5);
  EXPECT_EQ(races[0].word, 3u);
  EXPECT_EQ(races[0].epoch, 7);
}

TEST_P(DetectorTest, TrueSharingReadWriteIdentifiesWriterFirst) {
  Fixture fx(2);
  fx.Add(0, 0, {}, {5}, {});
  fx.Add(1, 0, {}, {}, {5});
  fx.Touch({0, 0}, 5, {}, {9});
  fx.Touch({1, 0}, 5, {9}, {});
  RaceDetector detector(16, GetParam());
  const auto pairs = detector.BuildCheckList(fx.records());
  const auto races = detector.CompareBitmaps(pairs, fx.Lookup(), 0, RaceDetector::BitmapsNeeded(pairs).size());
  ASSERT_EQ(races.size(), 1u);
  EXPECT_EQ(races[0].kind, RaceKind::kReadWrite);
  EXPECT_EQ(races[0].interval_a, (IntervalId{0, 0}));  // The writer.
  EXPECT_EQ(races[0].interval_b, (IntervalId{1, 0}));
}

TEST_P(DetectorTest, ThreeWayConcurrencyComparesAllPairs) {
  Fixture fx(3);
  fx.Add(0, 0, {}, {1}, {});
  fx.Add(1, 0, {}, {1}, {});
  fx.Add(2, 0, {}, {1}, {});
  for (NodeId n = 0; n < 3; ++n) {
    fx.Touch({n, 0}, 1, {}, {static_cast<uint32_t>(n)});  // Distinct words.
  }
  RaceDetector detector(16, GetParam());
  const auto pairs = detector.BuildCheckList(fx.records());
  EXPECT_EQ(pairs.size(), 3u);  // All three pairs overlap.
  EXPECT_EQ(detector.stats().intervals_in_overlap, 3u);
  EXPECT_TRUE(detector.CompareBitmaps(pairs, fx.Lookup(), 0, RaceDetector::BitmapsNeeded(pairs).size()).empty());
}

TEST_P(DetectorTest, BitmapsNeededDeduplicates) {
  Fixture fx(3);
  fx.Add(0, 0, {}, {1}, {});
  fx.Add(1, 0, {}, {1}, {});
  fx.Add(2, 0, {}, {1}, {});
  RaceDetector detector(16, GetParam());
  const auto pairs = detector.BuildCheckList(fx.records());
  const auto needed = RaceDetector::BitmapsNeeded(pairs);
  // Each interval's (id, page 1) appears once despite two pairs each.
  EXPECT_EQ(needed.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Overlap, DetectorTest,
                         ::testing::Values(OverlapMethod::kPageLists,
                                           OverlapMethod::kPageBitmaps),
                         [](const ::testing::TestParamInfo<OverlapMethod>& param_info) {
                           return param_info.param == OverlapMethod::kPageLists ? "PageLists"
                                                                                : "PageBitmaps";
                         });

}  // namespace
}  // namespace cvm
