// Equivalence properties of the detection pipeline's parallel/overlap
// machinery: the sharded check-list build must be byte-identical to the
// serial scan (same pairs, same order) for any shard count, and the two
// page-overlap probes (§6.2: page lists vs dense page bitmaps) must agree
// on randomized epochs.
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/race/detector.h"

namespace cvm {
namespace {

constexpr int kNumPages = 64;

// A randomized barrier epoch: `nodes` intervals with random page accesses
// and random happens-before edges (some intervals have "seen" others).
std::vector<IntervalRecord> RandomEpoch(std::mt19937& rng, int nodes) {
  std::vector<IntervalRecord> records;
  for (NodeId node = 0; node < nodes; ++node) {
    IntervalRecord r;
    const IntervalIndex index = 1 + rng() % 3;
    r.id = IntervalId{node, index};
    r.vc = VectorClock(nodes);
    r.vc.Set(node, index);
    // Random hb edges: each prior node's interval is "seen" with p = 1/3.
    for (NodeId seen = 0; seen < node; ++seen) {
      if (rng() % 3 == 0) {
        r.vc.Set(seen, records[seen].id.index);
      }
    }
    // Unique sorted page lists, matching what interval tracking produces.
    std::set<PageId> writes;
    for (int i = 0, n = rng() % 4; i < n; ++i) {
      writes.insert(rng() % kNumPages);
    }
    std::set<PageId> reads;
    for (int i = 0, n = rng() % 4; i < n; ++i) {
      reads.insert(rng() % kNumPages);
    }
    r.write_pages.assign(writes.begin(), writes.end());
    r.read_pages.assign(reads.begin(), reads.end());
    records.push_back(std::move(r));
  }
  return records;
}

bool SamePair(const CheckPair& x, const CheckPair& y) {
  return x.a.id == y.a.id && x.b.id == y.b.id && x.pages == y.pages;
}

TEST(DetectorPipelineTest, ShardedCheckListMatchesSerialExactly) {
  std::mt19937 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const int nodes = 2 + trial % 15;
    const auto epoch = RandomEpoch(rng, nodes);
    RaceDetector serial(kNumPages);
    const auto expected = serial.BuildCheckList(epoch);
    for (int shards : {2, 3, 4, 8, 31}) {
      RaceDetector sharded(kNumPages);
      std::vector<DetectorStats> per_shard;
      const auto got = sharded.BuildCheckListSharded(epoch, shards, &per_shard);
      ASSERT_EQ(got.size(), expected.size()) << "trial " << trial << " shards " << shards;
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_TRUE(SamePair(got[i], expected[i]))
            << "trial " << trial << " shards " << shards << " pair " << i;
      }
      // Per-shard stats must sum to the serial totals: every comparison is
      // done exactly once, just on a different thread.
      DetectorStats sum;
      for (const DetectorStats& s : per_shard) {
        sum.Accumulate(s);
      }
      EXPECT_EQ(sum.interval_comparisons, serial.stats().interval_comparisons);
      EXPECT_EQ(sum.concurrent_pairs, serial.stats().concurrent_pairs);
      EXPECT_EQ(sum.page_overlap_probes, serial.stats().page_overlap_probes);
    }
  }
}

TEST(DetectorPipelineTest, ShardCountCappedAtRowCount) {
  std::mt19937 rng(1);
  const auto epoch = RandomEpoch(rng, 4);
  RaceDetector detector(kNumPages);
  std::vector<DetectorStats> per_shard;
  detector.BuildCheckListSharded(epoch, 64, &per_shard);
  EXPECT_LE(per_shard.size(), epoch.size());
  EXPECT_GE(per_shard.size(), 1u);
}

TEST(DetectorPipelineTest, PageListsAndPageBitmapsAgree) {
  std::mt19937 rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const int nodes = 2 + trial % 12;
    const auto epoch = RandomEpoch(rng, nodes);
    RaceDetector with_lists(kNumPages, OverlapMethod::kPageLists);
    RaceDetector with_bitmaps(kNumPages, OverlapMethod::kPageBitmaps);
    const auto lists = with_lists.BuildCheckList(epoch);
    const auto bitmaps = with_bitmaps.BuildCheckList(epoch);
    ASSERT_EQ(lists.size(), bitmaps.size()) << "trial " << trial;
    for (size_t i = 0; i < lists.size(); ++i) {
      EXPECT_TRUE(SamePair(lists[i], bitmaps[i])) << "trial " << trial << " pair " << i;
    }
    // Both probes see the same concurrent pairs; only the probe cost model
    // differs.
    EXPECT_EQ(with_lists.stats().concurrent_pairs, with_bitmaps.stats().concurrent_pairs);
    EXPECT_EQ(with_lists.stats().overlapping_pairs, with_bitmaps.stats().overlapping_pairs);
  }
}

TEST(DetectorPipelineTest, BitmapsNeededIsDeduplicatedAndOrdered) {
  std::mt19937 rng(99);
  const auto epoch = RandomEpoch(rng, 10);
  RaceDetector detector(kNumPages);
  const auto pairs = detector.BuildCheckList(epoch);
  const auto needed = RaceDetector::BitmapsNeeded(pairs);
  for (size_t i = 1; i < needed.size(); ++i) {
    EXPECT_LT(needed[i - 1], needed[i]) << "entries must be strictly increasing";
  }
}

TEST(DetectorPipelineTest, BitmapsNeededCoversEveryPairAndNothingElse) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto epoch = RandomEpoch(rng, 2 + trial % 10);
    RaceDetector detector(kNumPages);
    const auto pairs = detector.BuildCheckList(epoch);
    const auto needed = RaceDetector::BitmapsNeeded(pairs);
    const std::set<std::pair<IntervalId, PageId>> have(needed.begin(), needed.end());
    // Every (interval, page) bitmap a comparison will touch must be fetched...
    std::set<std::pair<IntervalId, PageId>> want;
    for (const CheckPair& pair : pairs) {
      for (PageId page : pair.pages) {
        want.insert({pair.a.id, page});
        want.insert({pair.b.id, page});
        EXPECT_TRUE(have.count({pair.a.id, page})) << "trial " << trial;
        EXPECT_TRUE(have.count({pair.b.id, page})) << "trial " << trial;
      }
    }
    // ...and nothing beyond that travels in the bitmap round.
    EXPECT_EQ(have, want) << "trial " << trial;
  }
}

}  // namespace
}  // namespace cvm
