// BitmapCodec: lossless round-trips for every encoding, smallest-encoding
// selection, and the wire-byte accounting the bitmap round's byte metrics
// are built on.
#include <gtest/gtest.h>

#include <random>

#include "src/race/bitmap_codec.h"

namespace cvm {
namespace {

Bitmap MakeBitmap(uint32_t num_bits, const std::vector<uint32_t>& set_bits) {
  Bitmap bitmap(num_bits);
  for (uint32_t bit : set_bits) {
    bitmap.Set(bit);
  }
  return bitmap;
}

void ExpectRoundTrip(const Bitmap& original) {
  const EncodedBitmap encoded = BitmapCodec::Encode(original, true);
  const Bitmap decoded = BitmapCodec::Decode(encoded);
  ASSERT_EQ(decoded.size(), original.size());
  EXPECT_EQ(decoded.words(), original.words());
}

TEST(BitmapCodecTest, EmptyBitmapIsHeaderOnly) {
  const Bitmap empty(1024);
  const EncodedBitmap encoded = BitmapCodec::Encode(empty, true);
  EXPECT_EQ(encoded.encoding, BitmapEncoding::kEmpty);
  EXPECT_EQ(encoded.WireBytes(), EncodedBitmap::kHeaderBytes);
  ExpectRoundTrip(empty);
}

TEST(BitmapCodecTest, SparseBitmapEncodesIndices) {
  const Bitmap sparse = MakeBitmap(1024, {3, 100, 1023});
  const EncodedBitmap encoded = BitmapCodec::Encode(sparse, true);
  EXPECT_EQ(encoded.encoding, BitmapEncoding::kSparse);
  EXPECT_EQ(encoded.WireBytes(), EncodedBitmap::kHeaderBytes + 3 * sizeof(uint16_t));
  ExpectRoundTrip(sparse);
}

TEST(BitmapCodecTest, DenseRunEncodesAsRuns) {
  // One maximal run of 512 bits: 2 uint16 values vs 512 sparse indices.
  Bitmap dense(1024);
  for (uint32_t bit = 100; bit < 612; ++bit) {
    dense.Set(bit);
  }
  const EncodedBitmap encoded = BitmapCodec::Encode(dense, true);
  EXPECT_EQ(encoded.encoding, BitmapEncoding::kRuns);
  EXPECT_EQ(encoded.WireBytes(), EncodedBitmap::kHeaderBytes + 2 * sizeof(uint16_t));
  ExpectRoundTrip(dense);
}

TEST(BitmapCodecTest, PathologicalBitmapFallsBackToRaw) {
  // Alternating bits: sparse needs 2 bytes per set bit, runs need 4 bytes
  // per 1-bit run — both exceed the raw words, so raw must win.
  Bitmap alternating(1024);
  for (uint32_t bit = 0; bit < 1024; bit += 2) {
    alternating.Set(bit);
  }
  const EncodedBitmap encoded = BitmapCodec::Encode(alternating, true);
  EXPECT_EQ(encoded.encoding, BitmapEncoding::kRaw);
  EXPECT_EQ(encoded.WireBytes(), EncodedBitmap::RawWireBytes(1024));
  ExpectRoundTrip(alternating);
}

TEST(BitmapCodecTest, CompressionDisabledAlwaysYieldsRaw) {
  for (const Bitmap& bitmap :
       {Bitmap(512), MakeBitmap(512, {1, 2, 3}), MakeBitmap(512, {0})}) {
    const EncodedBitmap encoded = BitmapCodec::Encode(bitmap, false);
    EXPECT_EQ(encoded.encoding, BitmapEncoding::kRaw);
    EXPECT_EQ(encoded.WireBytes(), EncodedBitmap::RawWireBytes(512));
    const Bitmap decoded = BitmapCodec::Decode(encoded);
    EXPECT_EQ(decoded.words(), bitmap.words());
  }
}

TEST(BitmapCodecTest, CompressedNeverLargerThanRaw) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t num_bits = 64 + (rng() % 2048);
    Bitmap bitmap(num_bits);
    const uint32_t set_count = rng() % num_bits;
    for (uint32_t i = 0; i < set_count; ++i) {
      bitmap.Set(rng() % num_bits);
    }
    // Occasionally splice in a dense run so kRuns gets exercised.
    if (trial % 3 == 0) {
      const uint32_t start = rng() % (num_bits / 2);
      for (uint32_t bit = start; bit < start + num_bits / 4; ++bit) {
        bitmap.Set(bit);
      }
    }
    const EncodedBitmap encoded = BitmapCodec::Encode(bitmap, true);
    EXPECT_LE(encoded.WireBytes(), EncodedBitmap::RawWireBytes(num_bits));
    const Bitmap decoded = BitmapCodec::Decode(encoded);
    ASSERT_EQ(decoded.words(), bitmap.words()) << "trial " << trial;
  }
}

TEST(BitmapCodecTest, EncodingIsDeterministic) {
  const Bitmap bitmap = MakeBitmap(1024, {5, 6, 7, 300});
  const EncodedBitmap a = BitmapCodec::Encode(bitmap, true);
  const EncodedBitmap b = BitmapCodec::Encode(bitmap, true);
  EXPECT_EQ(a.encoding, b.encoding);
  EXPECT_EQ(a.num_bits, b.num_bits);
  EXPECT_EQ(a.raw, b.raw);
  EXPECT_EQ(a.values, b.values);
}

}  // namespace
}  // namespace cvm
