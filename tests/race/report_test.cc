// Tests for race reports, first-race filtering (§6.4), and the sync-order
// schedule used by record/replay (§6.1).
#include <gtest/gtest.h>

#include "src/race/race_report.h"
#include "src/race/replay.h"

namespace cvm {
namespace {

RaceReport MakeReport(EpochId epoch, PageId page, uint32_t word, NodeId a, NodeId b) {
  RaceReport r;
  r.kind = RaceKind::kWriteWrite;
  r.page = page;
  r.word = word;
  r.epoch = epoch;
  r.interval_a = IntervalId{a, 0};
  r.interval_b = IntervalId{b, 0};
  return r;
}

TEST(RaceReportTest, SameRaceIsSymmetricInPair) {
  RaceReport r1 = MakeReport(0, 1, 2, 0, 1);
  RaceReport r2 = MakeReport(0, 1, 2, 1, 0);
  std::swap(r2.interval_a, r2.interval_b);  // Same pair, either order.
  EXPECT_TRUE(r1.SameRace(r2));
  RaceReport r3 = MakeReport(0, 1, 3, 0, 1);
  EXPECT_FALSE(r1.SameRace(r3));
  RaceReport r4 = MakeReport(0, 1, 2, 0, 1);
  r4.kind = RaceKind::kReadWrite;
  EXPECT_FALSE(r1.SameRace(r4));
}

TEST(RaceReportTest, ToStringMentionsSymbolAndIntervals) {
  RaceReport r = MakeReport(3, 1, 2, 0, 1);
  r.symbol = "tour_bound";
  const std::string s = r.ToString();
  EXPECT_NE(s.find("tour_bound"), std::string::npos);
  EXPECT_NE(s.find("write-write"), std::string::npos);
  EXPECT_NE(s.find("s0^0"), std::string::npos);
  EXPECT_NE(s.find("epoch 3"), std::string::npos);
}

TEST(FirstRacesTest, KeepsOnlyEarliestRacyEpoch) {
  // §6.4: barriers order epochs, so all "first" races — races not affected
  // by a prior race — live in the earliest epoch that has any.
  std::vector<RaceReport> reports = {MakeReport(4, 0, 0, 0, 1), MakeReport(2, 1, 1, 0, 1),
                                     MakeReport(2, 1, 2, 1, 2), MakeReport(7, 3, 0, 0, 2)};
  const auto first = FilterFirstRaces(reports);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0].epoch, 2);
  EXPECT_EQ(first[1].epoch, 2);
  EXPECT_TRUE(FilterFirstRaces({}).empty());
}

TEST(SyncScheduleTest, RecordAndReplayCursor) {
  SyncSchedule schedule;
  schedule.RecordGrant(3, 0);
  schedule.RecordGrant(3, 2);
  schedule.RecordGrant(5, 1);
  EXPECT_EQ(schedule.TotalGrants(), 3u);
  EXPECT_EQ(schedule.GrantsFor(3).size(), 2u);

  EXPECT_EQ(schedule.NextGrantee(3), 0);
  schedule.ConsumeGrant(3, 0);
  EXPECT_EQ(schedule.NextGrantee(3), 2);
  schedule.ConsumeGrant(3, 2);
  // Exhausted: any order goes.
  EXPECT_EQ(schedule.NextGrantee(3), kNoNode);
  // Unrecorded lock: unconstrained.
  EXPECT_EQ(schedule.NextGrantee(99), kNoNode);
}

TEST(SyncScheduleTest, CopyResetsCursor) {
  SyncSchedule schedule;
  schedule.RecordGrant(0, 1);
  schedule.ConsumeGrant(0, 1);
  SyncSchedule copy = schedule;
  EXPECT_EQ(copy.NextGrantee(0), 1);  // Fresh cursor for the replay run.
}

TEST(SyncScheduleTest, ConsumeWrongGranteeAborts) {
  SyncSchedule schedule;
  schedule.RecordGrant(0, 1);
  EXPECT_DEATH(schedule.ConsumeGrant(0, 2), "CHECK failed");
}

}  // namespace
}  // namespace cvm
