// Tests of the comparison algorithm's §4/§5.2 complexity claims: the upper
// bound O(i^2 p^2) on interval comparisons, the pruning that synchronization
// provides ("the same act that creates intervals also removes many interval
// pairs from consideration"), and epoch attribution of reports.
#include <gtest/gtest.h>

#include "src/race/detector.h"

namespace cvm {
namespace {

// Builds p nodes x i intervals each. If `chained` is true, intervals are
// totally ordered across nodes (a release/acquire chain: each interval has
// seen all earlier ones); otherwise all intervals are mutually concurrent.
std::vector<IntervalRecord> MakeEpoch(int p, int i, bool chained) {
  std::vector<IntervalRecord> records;
  VectorClock chain_vc(p);
  for (int idx = 0; idx < i; ++idx) {
    for (NodeId n = 0; n < p; ++n) {
      IntervalRecord r;
      r.id = IntervalId{n, idx};
      if (chained) {
        chain_vc.Set(n, idx);
        r.vc = chain_vc;
      } else {
        r.vc = VectorClock(p);
        r.vc.Set(n, idx);
      }
      r.write_pages = {static_cast<PageId>(n % 4)};
      records.push_back(r);
    }
  }
  return records;
}

TEST(DetectorComplexityTest, ComparisonsBoundedByIsquaredPsquared) {
  const int p = 4;
  const int i = 6;
  RaceDetector detector(16);
  detector.BuildCheckList(MakeEpoch(p, i, /*chained=*/false));
  const uint64_t bound = static_cast<uint64_t>(i) * i * p * p;
  EXPECT_LE(detector.stats().interval_comparisons, bound);
  // Same-node pairs are skipped outright: (p*i choose 2) minus p*(i choose 2).
  const uint64_t total_pairs = static_cast<uint64_t>(p * i) * (p * i - 1) / 2;
  const uint64_t same_node = static_cast<uint64_t>(p) * i * (i - 1) / 2;
  EXPECT_EQ(detector.stats().interval_comparisons, total_pairs - same_node);
}

TEST(DetectorComplexityTest, SynchronizationChainsPruneAllPairs) {
  RaceDetector detector(16);
  const auto pairs = detector.BuildCheckList(MakeEpoch(4, 6, /*chained=*/true));
  // Fully ordered execution: every comparison runs, no pair survives.
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(detector.stats().concurrent_pairs, 0u);
  EXPECT_EQ(detector.stats().page_overlap_probes, 0u) << "no overlap probe without concurrency";
  EXPECT_EQ(detector.stats().intervals_in_overlap, 0u);
}

TEST(DetectorComplexityTest, UnsynchronizedExecutionKeepsConflictingPairs) {
  RaceDetector detector(16);
  const auto pairs = detector.BuildCheckList(MakeEpoch(4, 3, /*chained=*/false));
  // All cross-node pairs are concurrent; only same-page (n%4) ones conflict —
  // with p=4 every node writes a distinct page, so zero overlap...
  EXPECT_EQ(detector.stats().concurrent_pairs, detector.stats().interval_comparisons);
  EXPECT_TRUE(pairs.empty());

  // ...but two nodes sharing a page (p=5 wraps onto page 0) do overlap.
  RaceDetector detector5(16);
  const auto pairs5 = detector5.BuildCheckList(MakeEpoch(5, 2, /*chained=*/false));
  EXPECT_GT(pairs5.size(), 0u);
  for (const CheckPair& pair : pairs5) {
    EXPECT_EQ(pair.pages, std::vector<PageId>{0});
    EXPECT_TRUE((pair.a.id.node % 4) == 0 && (pair.b.id.node % 4) == 0);
  }
}

TEST(DetectorComplexityTest, StatsAccumulateAcrossEpochs) {
  RaceDetector detector(16);
  detector.BuildCheckList(MakeEpoch(2, 2, false));
  const uint64_t after_first = detector.stats().interval_comparisons;
  detector.BuildCheckList(MakeEpoch(2, 2, false));
  EXPECT_EQ(detector.stats().interval_comparisons, 2 * after_first);
  DetectorStats copy;
  copy.Accumulate(detector.stats());
  copy.Accumulate(detector.stats());
  EXPECT_EQ(copy.interval_comparisons, 4 * after_first);
  detector.ResetStats();
  EXPECT_EQ(detector.stats().interval_comparisons, 0u);
}

}  // namespace
}  // namespace cvm
