// Generation-stamped bitmap interning (--intern-bitmaps): when a page's
// access bitmap is unchanged since the last epoch it crossed the wire, the
// sender ships a 'same as before' token instead of the full payload. The
// cache must be invisible to the detector — identical race reports with the
// flag on and off — and its hit/miss/invalidation accounting must follow
// the workload's redirty pattern.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

constexpr uint64_t kPageSize = 256;
constexpr int kWordsPerPage = static_cast<int>(kPageSize / sizeof(int32_t));
constexpr int kNodes = 6;
constexpr int kEpochs = 4;

// steady: every epoch each node touches exactly the same words of its
// neighbor's page, so from the second epoch on the shipped bitmaps are
// byte-identical to the cached ones (hits). drifting: the racing word
// moves every epoch, so re-shipments find a stale cache entry
// (invalidations).
enum class Redirty { kSteady, kDrifting };

RunResult RunHalo(Redirty redirty, bool intern,
                  DetectionPipeline pipeline = DetectionPipeline::kSerial) {
  DsmOptions options;
  options.num_nodes = kNodes;
  options.page_size = kPageSize;
  options.max_shared_bytes = kNodes * kPageSize + (1 << 16);
  options.intern_bitmaps = intern;
  options.detection_pipeline = pipeline;
  DsmSystem system(options);
  auto data = SharedArray<int32_t>::Alloc(
      system, "halo", static_cast<size_t>(kNodes) * kWordsPerPage);
  return system.Run([&](NodeContext& ctx) {
    const int id = ctx.id();
    const size_t own = static_cast<size_t>(id) * kWordsPerPage;
    const size_t next =
        static_cast<size_t>((id + 1) % kNodes) * kWordsPerPage;
    for (int epoch = 0; epoch < kEpochs; ++epoch) {
      const int race_word =
          redirty == Redirty::kSteady ? 2 : 2 + epoch;  // Drift moves the bit.
      for (int w = 0; w < 2 + kEpochs; ++w) {  // Covers every drifted target.
        data.Set(ctx, own + w, id * 100 + epoch * 10 + w);
      }
      data.Set(ctx, next + race_word, id);  // W/W race with the owner.
      if (epoch + 1 < kEpochs) {
        ctx.Barrier();
      }
    }
  });
}

std::vector<std::string> ReportKey(const RunResult& result) {
  std::vector<std::string> key;
  key.reserve(result.races.size());
  for (const RaceReport& report : result.races) {
    key.push_back(report.ToString());
  }
  return key;
}

TEST(BitmapInternTest, ReportsIdenticalWithAndWithoutInterning) {
  for (Redirty redirty : {Redirty::kSteady, Redirty::kDrifting}) {
    const RunResult off = RunHalo(redirty, false);
    const RunResult on = RunHalo(redirty, true);
    EXPECT_EQ(off.races.size(), static_cast<size_t>(kNodes) * kEpochs);
    EXPECT_EQ(ReportKey(on), ReportKey(off));
    // The cache only elides bytes, never comparisons.
    EXPECT_EQ(on.pipeline.bitmap_bytes_raw, off.pipeline.bitmap_bytes_raw);
    EXPECT_LE(on.pipeline.bitmap_bytes_wire, off.pipeline.bitmap_bytes_wire);
  }
}

TEST(BitmapInternTest, SteadyRedirtyHitsAfterFirstEpoch) {
  const RunResult result = RunHalo(Redirty::kSteady, true);
  // First shipment of each (node, page, rw) slot is a miss; identical
  // re-shipments in later epochs are hits; nothing ever changes shape.
  EXPECT_GT(result.intern.misses, 0u);
  EXPECT_GT(result.intern.hits, 0u);
  EXPECT_EQ(result.intern.invalidations, 0u);
  // Hits shaved real wire bytes off the bitmap rounds.
  const RunResult baseline = RunHalo(Redirty::kSteady, false);
  EXPECT_LT(result.pipeline.bitmap_bytes_wire, baseline.pipeline.bitmap_bytes_wire);
}

TEST(BitmapInternTest, DriftingRedirtyInvalidates) {
  const RunResult result = RunHalo(Redirty::kDrifting, true);
  // The racing bit moves every epoch: each re-shipment of a write bitmap
  // finds stale cached content and replaces it.
  EXPECT_GT(result.intern.misses, 0u);
  EXPECT_GT(result.intern.invalidations, 0u);
}

TEST(BitmapInternTest, InterningOffKeepsCountersZero) {
  const RunResult result = RunHalo(Redirty::kSteady, false);
  EXPECT_EQ(result.intern.hits, 0u);
  EXPECT_EQ(result.intern.misses, 0u);
  EXPECT_EQ(result.intern.invalidations, 0u);
}

TEST(BitmapInternTest, WorksAcrossPipelines) {
  const auto expected = ReportKey(RunHalo(Redirty::kSteady, false));
  for (DetectionPipeline pipeline :
       {DetectionPipeline::kSharded, DetectionPipeline::kDistributed}) {
    const RunResult result = RunHalo(Redirty::kSteady, true, pipeline);
    EXPECT_EQ(ReportKey(result), expected)
        << "pipeline " << static_cast<int>(pipeline);
  }
}

}  // namespace
}  // namespace cvm
