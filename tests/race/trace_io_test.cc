// Round-trip and corruption tests for the binary trace-file format.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/race/trace_io.h"

namespace cvm {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

void FillTrace(PostMortemTrace& trace) {
  IntervalRecord r1;
  r1.id = IntervalId{0, 3};
  r1.vc = VectorClock(3);
  r1.vc.Set(0, 3);
  r1.vc.Set(2, 1);
  r1.epoch = 2;
  r1.write_pages = {4, 9};
  r1.read_pages = {1};
  trace.AddRecord(r1);

  IntervalRecord r2;
  r2.id = IntervalId{1, 7};
  r2.vc = VectorClock(3);
  r2.vc.Set(1, 7);
  r2.epoch = 2;
  r2.write_pages = {4};
  trace.AddRecord(r2);

  PageAccessBitmaps pair{Bitmap(64), Bitmap(64)};
  pair.read.Set(5);
  pair.write.Set(17);
  pair.write.Set(63);
  trace.AddBitmaps(r1.id, 4, pair);
  trace.AddBitmaps(r2.id, 4, pair);
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  const std::string path = TempPath("roundtrip.cvmt");
  PostMortemTrace original;
  FillTrace(original);
  ASSERT_TRUE(WriteTraceFile(original, path));

  PostMortemTrace loaded;
  ASSERT_TRUE(ReadTraceFile(path, &loaded));
  EXPECT_EQ(loaded.NumRecords(), original.NumRecords());
  EXPECT_EQ(loaded.NumBitmapPairs(), original.NumBitmapPairs());
  EXPECT_EQ(loaded.TraceBytes(), original.TraceBytes());

  // Field-level comparison through the visitors.
  std::vector<IntervalRecord> records;
  loaded.ForEachRecord([&](const IntervalRecord& r) { records.push_back(r); });
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].id, (IntervalId{0, 3}));
  EXPECT_EQ(records[0].vc.At(2), 1);
  EXPECT_EQ(records[0].epoch, 2);
  EXPECT_EQ(records[0].write_pages, (std::vector<PageId>{4, 9}));
  EXPECT_EQ(records[0].read_pages, (std::vector<PageId>{1}));

  int pairs = 0;
  loaded.ForEachBitmapPair([&](const IntervalId&, PageId page, const PageAccessBitmaps& pair) {
    EXPECT_EQ(page, 4);
    EXPECT_TRUE(pair.read.Test(5));
    EXPECT_TRUE(pair.write.Test(17));
    EXPECT_TRUE(pair.write.Test(63));
    EXPECT_EQ(pair.write.popcount(), 2u);
    ++pairs;
  });
  EXPECT_EQ(pairs, 2);

  // And the analysis over the loaded trace equals the original's.
  const auto a1 = original.Analyze(16);
  const auto a2 = loaded.Analyze(16);
  ASSERT_EQ(a1.races.size(), a2.races.size());
  for (size_t i = 0; i < a1.races.size(); ++i) {
    EXPECT_TRUE(a1.races[i].SameRace(a2.races[i]));
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsMissingFile) {
  PostMortemTrace out;
  EXPECT_FALSE(ReadTraceFile(TempPath("does_not_exist.cvmt"), &out));
}

TEST(TraceIoTest, RejectsBadMagic) {
  const std::string path = TempPath("bad_magic.cvmt");
  {
    std::ofstream f(path, std::ios::binary);
    const uint32_t junk[4] = {0xdeadbeef, 1, 0, 0};
    f.write(reinterpret_cast<const char*>(junk), sizeof(junk));
  }
  PostMortemTrace out;
  EXPECT_FALSE(ReadTraceFile(path, &out));
  std::remove(path.c_str());
}

TEST(TraceIoTest, RejectsTruncatedFile) {
  const std::string path = TempPath("truncated.cvmt");
  PostMortemTrace full;
  FillTrace(full);
  ASSERT_TRUE(WriteTraceFile(full, path));
  // Chop the file part-way through the bitmap section.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 10));
  }
  PostMortemTrace out;
  EXPECT_FALSE(ReadTraceFile(path, &out));
  std::remove(path.c_str());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  const std::string path = TempPath("empty.cvmt");
  PostMortemTrace empty;
  ASSERT_TRUE(WriteTraceFile(empty, path));
  PostMortemTrace loaded;
  ASSERT_TRUE(ReadTraceFile(path, &loaded));
  EXPECT_EQ(loaded.NumRecords(), 0u);
  EXPECT_EQ(loaded.NumBitmapPairs(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cvm
