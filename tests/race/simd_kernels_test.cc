// Differential tests for the hot-path kernels (src/perf/): the active
// word/SIMD face must be bit-identical to the scalar reference on every
// input — sizes straddling the vector-width boundaries, unaligned byte
// bases, randomized contents — because the report-equivalence and
// protocol-parity suites assume kernel adoption changed nothing observable.
//
// Also pins the steady-state allocation contract of the arena layer: once a
// workload repeats an epoch shape, the interval pools report zero new misses
// and the detector's dense-probe scratch is never rebuilt.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/perf/arena.h"
#include "src/perf/kernels.h"
#include "src/perf/shared_vec.h"
#include "src/protocol/interval.h"
#include "src/race/detector.h"

namespace cvm {
namespace {

// Word counts covering every interesting boundary of the vector paths: the
// SSE2/NEON kernels consume 2 x 64-bit words per vector and unroll blocks of
// 4 words, so 0..9 plus the block edges and a large tail-heavy size.
const size_t kWordSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 100};

std::vector<uint64_t> RandomWords(Rng& rng, size_t n, int density_percent) {
  std::vector<uint64_t> words(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (rng.Below(100) < static_cast<uint64_t>(density_percent)) {
      words[i] = rng.Next();
    }
  }
  return words;
}

TEST(SimdKernelsTest, TargetNameIsKnown) {
  const std::string target = perf::KernelTargetName();
  EXPECT_TRUE(target == "sse2" || target == "neon" || target == "word") << target;
}

TEST(SimdKernelsTest, AnyWordNonzeroMatchesScalar) {
  Rng rng(1);
  for (size_t n : kWordSizes) {
    for (int density : {0, 3, 50, 100}) {
      for (int trial = 0; trial < 8; ++trial) {
        const std::vector<uint64_t> w = RandomWords(rng, n, density);
        EXPECT_EQ(perf::AnyWordNonzero(w.data(), n),
                  perf::scalar::AnyWordNonzero(w.data(), n))
            << "n=" << n << " density=" << density;
      }
    }
  }
}

TEST(SimdKernelsTest, AnyWordNonzeroSingleBitAtEveryWord) {
  // The reduction must see every lane: one bit, placed in each word in turn.
  for (size_t n : {size_t{1}, size_t{4}, size_t{9}, size_t{17}}) {
    for (size_t hot = 0; hot < n; ++hot) {
      std::vector<uint64_t> w(n, 0);
      w[hot] = 1ull << (hot % 64);
      EXPECT_TRUE(perf::AnyWordNonzero(w.data(), n)) << "n=" << n << " hot=" << hot;
    }
    std::vector<uint64_t> zeros(n, 0);
    EXPECT_FALSE(perf::AnyWordNonzero(zeros.data(), n));
  }
}

TEST(SimdKernelsTest, AnyCommonBitMatchesScalar) {
  Rng rng(2);
  for (size_t n : kWordSizes) {
    for (int density : {0, 3, 25, 100}) {
      for (int trial = 0; trial < 8; ++trial) {
        const std::vector<uint64_t> a = RandomWords(rng, n, density);
        const std::vector<uint64_t> b = RandomWords(rng, n, density);
        EXPECT_EQ(perf::AnyCommonBit(a.data(), b.data(), n),
                  perf::scalar::AnyCommonBit(a.data(), b.data(), n))
            << "n=" << n << " density=" << density;
      }
    }
  }
}

TEST(SimdKernelsTest, AnyCommonBitSingleOverlapAtEveryWord) {
  for (size_t n : {size_t{1}, size_t{5}, size_t{16}, size_t{33}}) {
    for (size_t hot = 0; hot < n; ++hot) {
      std::vector<uint64_t> a(n, 0);
      std::vector<uint64_t> b(n, 0);
      a[hot] = 0xff00ull;
      b[hot] = 0x0100ull;  // One shared bit.
      EXPECT_TRUE(perf::AnyCommonBit(a.data(), b.data(), n)) << "n=" << n << " hot=" << hot;
      b[hot] = 0x00ffull;  // Disjoint within the same word.
      EXPECT_FALSE(perf::AnyCommonBit(a.data(), b.data(), n)) << "n=" << n << " hot=" << hot;
    }
  }
}

TEST(SimdKernelsTest, PopcountWordsMatchesScalar) {
  Rng rng(3);
  for (size_t n : kWordSizes) {
    const std::vector<uint64_t> w = RandomWords(rng, n, 60);
    EXPECT_EQ(perf::PopcountWords(w.data(), n), perf::scalar::PopcountWords(w.data(), n));
  }
}

TEST(SimdKernelsTest, UnionAndIntersectMatchScalar) {
  Rng rng(4);
  for (size_t n : kWordSizes) {
    const std::vector<uint64_t> src = RandomWords(rng, n, 40);
    const std::vector<uint64_t> base = RandomWords(rng, n, 40);

    std::vector<uint64_t> active = base;
    std::vector<uint64_t> reference = base;
    perf::UnionWords(active.data(), src.data(), n);
    perf::scalar::UnionWords(reference.data(), src.data(), n);
    EXPECT_EQ(active, reference) << "union n=" << n;

    active = base;
    reference = base;
    perf::IntersectWords(active.data(), src.data(), n);
    perf::scalar::IntersectWords(reference.data(), src.data(), n);
    EXPECT_EQ(active, reference) << "intersect n=" << n;
  }
}

TEST(SimdKernelsTest, AppendCommonBitsMatchesScalarInOrder) {
  Rng rng(5);
  for (size_t n : kWordSizes) {
    for (int density : {0, 5, 50}) {
      const std::vector<uint64_t> a = RandomWords(rng, n, density);
      const std::vector<uint64_t> b = RandomWords(rng, n, density);
      std::vector<uint32_t> active = {777};  // Appends must preserve a prefix.
      std::vector<uint32_t> reference = {777};
      perf::AppendCommonBits(a.data(), b.data(), n, &active);
      perf::scalar::AppendCommonBits(a.data(), b.data(), n, &reference);
      EXPECT_EQ(active, reference) << "n=" << n << " density=" << density;
      for (size_t i = 2; i < active.size(); ++i) {
        EXPECT_LT(active[i - 1], active[i]) << "not ascending at " << i;
      }
    }
  }
}

TEST(SimdKernelsTest, AppendSetBitsMatchesScalarInOrder) {
  Rng rng(6);
  for (size_t n : kWordSizes) {
    for (int density : {0, 5, 100}) {
      const std::vector<uint64_t> w = RandomWords(rng, n, density);
      std::vector<uint32_t> active;
      std::vector<uint32_t> reference;
      perf::AppendSetBits(w.data(), n, &active);
      perf::scalar::AppendSetBits(w.data(), n, &reference);
      EXPECT_EQ(active, reference) << "n=" << n << " density=" << density;
    }
  }
}

// 32-bit-word counts around the 4-words-per-vector boundary of the diff
// kernel, plus page-sized.
const size_t kWord32Sizes[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1024};

TEST(SimdKernelsTest, AppendUnequalWords32MatchesScalar) {
  Rng rng(7);
  for (size_t n32 : kWord32Sizes) {
    for (int flips : {0, 1, 5, 32}) {
      std::vector<uint8_t> a(n32 * 4);
      for (size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<uint8_t>(rng.Below(256));
      }
      std::vector<uint8_t> b = a;
      for (int f = 0; f < flips && n32 > 0; ++f) {
        b[rng.Below(n32) * 4 + rng.Below(4)] ^= static_cast<uint8_t>(1 + rng.Below(255));
      }
      std::vector<uint32_t> active;
      std::vector<uint32_t> reference;
      perf::AppendUnequalWords32(a.data(), b.data(), n32, &active);
      perf::scalar::AppendUnequalWords32(a.data(), b.data(), n32, &reference);
      EXPECT_EQ(active, reference) << "n32=" << n32 << " flips=" << flips;
    }
  }
}

TEST(SimdKernelsTest, AppendUnequalWords32UnalignedBases) {
  // Twins and frames are arbitrary vector storage; the kernel must not
  // assume 16-byte (or even 4-byte) aligned bases. Offset both operands by
  // every sub-word amount.
  Rng rng(8);
  const size_t n32 = 129;
  std::vector<uint8_t> raw_a(n32 * 4 + 8);
  std::vector<uint8_t> raw_b(n32 * 4 + 8);
  for (size_t off_a = 0; off_a < 4; ++off_a) {
    for (size_t off_b = 0; off_b < 4; ++off_b) {
      for (size_t i = 0; i < raw_a.size(); ++i) {
        raw_a[i] = static_cast<uint8_t>(rng.Below(256));
      }
      std::memcpy(raw_b.data() + off_b, raw_a.data() + off_a, n32 * 4);
      raw_b[off_b + 17 * 4] ^= 0x40;
      raw_b[off_b + 128 * 4 + 3] ^= 0x01;
      std::vector<uint32_t> active;
      std::vector<uint32_t> reference;
      perf::AppendUnequalWords32(raw_a.data() + off_a, raw_b.data() + off_b, n32, &active);
      perf::scalar::AppendUnequalWords32(raw_a.data() + off_a, raw_b.data() + off_b, n32,
                                         &reference);
      EXPECT_EQ(active, reference) << "off_a=" << off_a << " off_b=" << off_b;
      EXPECT_EQ(active, (std::vector<uint32_t>{17, 128}));
    }
  }
}

struct TestPair {
  uint32_t word = 0;
  uint32_t value = 0;
};

TEST(SimdKernelsTest, ScatterWords32AppliesAllInRangePairs) {
  std::vector<uint8_t> frame(64, 0);
  const std::vector<TestPair> pairs = {{0, 0x04030201u}, {7, 0xddccbbaau}, {15, 0xffffffffu}};
  EXPECT_EQ(perf::ScatterWords32(frame.data(), frame.size(), pairs.data(), pairs.size()),
            pairs.size());
  uint32_t value = 0;
  std::memcpy(&value, frame.data(), 4);
  EXPECT_EQ(value, 0x04030201u);
  std::memcpy(&value, frame.data() + 7 * 4, 4);
  EXPECT_EQ(value, 0xddccbbaau);
  std::memcpy(&value, frame.data() + 15 * 4, 4);
  EXPECT_EQ(value, 0xffffffffu);
}

TEST(SimdKernelsTest, ScatterWords32RejectsOutOfRangeBeforeWriting) {
  std::vector<uint8_t> frame(64, 0);
  // Second pair is out of range: the bounds pass must report index 1 and the
  // frame must be untouched (validation happens before any write).
  const std::vector<TestPair> pairs = {{0, 0x11111111u}, {16, 0x22222222u}};
  EXPECT_EQ(perf::ScatterWords32(frame.data(), frame.size(), pairs.data(), pairs.size()),
            size_t{1});
  EXPECT_EQ(std::count(frame.begin(), frame.end(), 0), 64);
}

// ---- Arena layer ----

TEST(ArenaTest, ObjectPoolRecyclesAndCapsFreeList) {
  perf::ObjectPool<std::vector<int>> pool(/*max_free=*/2);
  std::vector<int> a = pool.Acquire();
  EXPECT_EQ(pool.stats().misses, 1u);
  a.assign(100, 7);
  const int* storage = a.data();
  pool.Release(std::move(a));
  std::vector<int> reused = pool.Acquire();
  EXPECT_EQ(pool.stats().hits, 1u);
  // Same heap buffer came back: recycling, not reconstruction.
  EXPECT_EQ(reused.data(), storage);
  EXPECT_EQ(reused.size(), 100u);

  pool.Release(std::vector<int>());
  pool.Release(std::vector<int>());
  EXPECT_EQ(pool.free_count(), 2u);
  pool.Release(std::vector<int>());  // Over capacity: discarded.
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.stats().discards, 1u);
}

TEST(ArenaTest, FlatIdSetBehavesLikeSortedSetWithoutReallocating) {
  perf::FlatIdSet<PageId> set;
  EXPECT_TRUE(set.Insert(5));
  EXPECT_TRUE(set.Insert(1));
  EXPECT_TRUE(set.Insert(9));
  EXPECT_FALSE(set.Insert(5));  // Duplicate.
  EXPECT_EQ(set.Size(), 3u);
  EXPECT_TRUE(set.Contains(1));
  EXPECT_FALSE(set.Contains(2));
  EXPECT_EQ(set.ids(), (std::vector<PageId>{1, 5, 9}));  // Ascending, like std::set.

  const size_t capacity = set.Capacity();
  set.Clear();
  EXPECT_TRUE(set.Empty());
  EXPECT_EQ(set.Capacity(), capacity);  // Clear keeps the buffer.
  EXPECT_TRUE(set.Insert(3));
  EXPECT_EQ(set.Capacity(), capacity);  // Steady-state insert: no realloc.
}

TEST(ArenaTest, BitmapStoreSteadyStateEpochIsAllPoolHits) {
  BitmapStore store(/*words_per_page=*/16);
  const int kPages = 8;
  // Epoch 1: first touch of every (interval, page) pair allocates.
  for (PageId page = 0; page < kPages; ++page) {
    store.RecordWrite(/*interval=*/0, page, /*word=*/3);
    store.RecordRead(/*interval=*/0, page, /*word=*/5);
  }
  const uint64_t warmup_misses = store.pair_pool_stats().misses;
  EXPECT_GT(warmup_misses, 0u);
  store.DiscardThrough(0);  // Epoch checked: pairs parked in the pool.
  EXPECT_EQ(store.RetainedPairs(), 0u);

  // Epochs 2..4 touch the same number of pages: every pair comes from the
  // pool, misses stay exactly flat — the zero-allocation contract.
  for (IntervalIndex interval = 1; interval <= 3; ++interval) {
    for (PageId page = 0; page < kPages; ++page) {
      EXPECT_TRUE(store.RecordWrite(interval, page, 3));
      EXPECT_TRUE(store.RecordRead(interval, page, 5));
    }
    EXPECT_EQ(store.pair_pool_stats().misses, warmup_misses);
    // Recycled bitmaps must read as freshly reset, not carry stale bits.
    const PageAccessBitmaps* pair = store.Find(interval, 0);
    ASSERT_NE(pair, nullptr);
    EXPECT_EQ(pair->write.popcount(), 1u);
    EXPECT_EQ(pair->read.popcount(), 1u);
    store.DiscardThrough(interval);
  }
  EXPECT_GT(store.pair_pool_stats().hits, 0u);
}

TEST(ArenaTest, IntervalLogSteadyStateInsertIsAllPoolHits) {
  const int kNodes = 4;
  IntervalLog log(kNodes);
  auto make_record = [&](NodeId node, IntervalIndex index) {
    IntervalRecord record;
    record.id = IntervalId{node, index};
    record.vc = VectorClock(kNodes);
    record.vc.Set(node, index);
    record.write_pages = {1, 2, 3};
    record.read_pages = {4, 5};
    return record;
  };

  for (NodeId node = 0; node < kNodes; ++node) {
    log.Insert(make_record(node, 0));
  }
  const uint64_t warmup_misses = log.record_pool_stats().misses;
  VectorClock epoch_done(kNodes);
  for (NodeId node = 0; node < kNodes; ++node) {
    epoch_done.Set(node, 0);
  }
  log.DiscardDominatedBy(epoch_done);
  EXPECT_EQ(log.size(), 0u);

  for (IntervalIndex index = 1; index <= 3; ++index) {
    for (NodeId node = 0; node < kNodes; ++node) {
      log.Insert(make_record(node, index));
    }
    EXPECT_EQ(log.record_pool_stats().misses, warmup_misses) << "epoch " << index;
    VectorClock done(kNodes);
    for (NodeId node = 0; node < kNodes; ++node) {
      done.Set(node, index);
    }
    log.DiscardDominatedBy(done);
  }
  EXPECT_GT(log.record_pool_stats().hits, 0u);
}

TEST(ArenaTest, DetectorOverlapScratchBuiltOncePerPageCount) {
  const int kNumPages = 64;
  RaceDetector detector(kNumPages, OverlapMethod::kPageBitmaps);
  std::vector<IntervalRecord> epoch;
  for (NodeId node = 0; node < 2; ++node) {
    IntervalRecord record;
    record.id = IntervalId{node, 0};
    record.vc = VectorClock(2);
    record.vc.Set(node, 0);
    record.write_pages = {static_cast<PageId>(3 + node), 7};
    epoch.push_back(record);
  }
  for (int run = 0; run < 5; ++run) {
    const auto pairs = detector.BuildCheckList(epoch);
    ASSERT_EQ(pairs.size(), 1u);
    EXPECT_EQ(pairs[0].pages, (std::vector<PageId>{7}));
  }
  // Five epochs, one scratch build: steady-state probes allocate nothing.
  EXPECT_EQ(detector.stats().overlap_scratch_builds, 1u);
}

// ---- Zero-copy payload handle ----

TEST(SharedVecTest, SoleOwnerTakeMovesWithoutCopying) {
  std::vector<uint8_t> bytes(4096, 0xab);
  const uint8_t* storage = bytes.data();
  perf::SharedVec<uint8_t> handle(std::move(bytes));
  EXPECT_EQ(handle.use_count(), 1);
  EXPECT_EQ(handle.size(), 4096u);
  std::vector<uint8_t> taken = handle.TakeOrCopy();
  EXPECT_EQ(taken.data(), storage);  // Moved, not copied.
  EXPECT_TRUE(handle.empty());
}

TEST(SharedVecTest, SharedBufferTakeCopiesAndLeavesOthersIntact) {
  perf::SharedVec<uint8_t> original(std::vector<uint8_t>(512, 0x5a));
  perf::SharedVec<uint8_t> retransmit_hold = original;  // e.g. a held frame.
  EXPECT_EQ(original.use_count(), 2);
  std::vector<uint8_t> taken = original.TakeOrCopy();
  EXPECT_EQ(taken.size(), 512u);
  EXPECT_EQ(taken[0], 0x5a);
  // The hold still reads the full payload: the take deep-copied.
  EXPECT_EQ(retransmit_hold.size(), 512u);
  EXPECT_EQ((*retransmit_hold)[511], 0x5a);
  EXPECT_EQ(retransmit_hold.use_count(), 1);
}

TEST(SharedVecTest, EmptyHandleReadsAsEmptyVector) {
  perf::SharedVec<int> handle;
  EXPECT_TRUE(handle.empty());
  EXPECT_EQ(handle.use_count(), 0);
  EXPECT_TRUE(handle->empty());
  EXPECT_TRUE(handle.TakeOrCopy().empty());
}

}  // namespace
}  // namespace cvm
