// Tests for race summaries and schedule-file round trips.
#include <gtest/gtest.h>

#include <cstdio>

#include "src/race/race_report.h"
#include "src/race/replay.h"

namespace cvm {
namespace {

RaceReport Report(const char* symbol, RaceKind kind, EpochId epoch) {
  RaceReport r;
  r.symbol = symbol;
  r.kind = kind;
  r.epoch = epoch;
  return r;
}

TEST(RaceSummaryTest, GroupsBySymbolBase) {
  std::vector<RaceReport> reports = {
      Report("bound", RaceKind::kReadWrite, 3),
      Report("bound", RaceKind::kReadWrite, 1),
      Report("grid+128", RaceKind::kWriteWrite, 2),
      Report("grid+4", RaceKind::kWriteWrite, 5),
      Report("grid+4", RaceKind::kReadWrite, 5),
  };
  const auto summary = SummarizeRaces(reports);
  ASSERT_EQ(summary.size(), 2u);
  EXPECT_EQ(summary[0].symbol, "bound");
  EXPECT_EQ(summary[0].read_write, 2u);
  EXPECT_EQ(summary[0].write_write, 0u);
  EXPECT_EQ(summary[0].first_epoch, 1);
  EXPECT_EQ(summary[1].symbol, "grid");
  EXPECT_EQ(summary[1].write_write, 2u);
  EXPECT_EQ(summary[1].read_write, 1u);
  EXPECT_EQ(summary[1].first_epoch, 2);
}

TEST(RaceSummaryTest, EmptyInputYieldsEmptySummary) {
  EXPECT_TRUE(SummarizeRaces({}).empty());
}

TEST(ScheduleFileTest, RoundTripPreservesGrantOrder) {
  SyncSchedule schedule;
  schedule.RecordGrant(0, 2);
  schedule.RecordGrant(0, 1);
  schedule.RecordGrant(0, 2);
  schedule.RecordGrant(7, 0);
  schedule.RecordGrant(7, 3);

  const std::string path = ::testing::TempDir() + "/sched_roundtrip.txt";
  ASSERT_TRUE(WriteScheduleFile(schedule, path));

  SyncSchedule loaded;
  ASSERT_TRUE(ReadScheduleFile(path, &loaded));
  EXPECT_EQ(loaded.TotalGrants(), 5u);
  EXPECT_EQ(loaded.GrantsFor(0), (std::vector<NodeId>{2, 1, 2}));
  EXPECT_EQ(loaded.GrantsFor(7), (std::vector<NodeId>{0, 3}));
  EXPECT_EQ(loaded.RecordedLocks(), (std::vector<LockId>{0, 7}));
  std::remove(path.c_str());
}

TEST(ScheduleFileTest, EmptyScheduleRoundTrips) {
  SyncSchedule schedule;
  const std::string path = ::testing::TempDir() + "/sched_empty.txt";
  ASSERT_TRUE(WriteScheduleFile(schedule, path));
  SyncSchedule loaded;
  ASSERT_TRUE(ReadScheduleFile(path, &loaded));
  EXPECT_EQ(loaded.TotalGrants(), 0u);
  std::remove(path.c_str());
}

TEST(ScheduleFileTest, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/sched_garbage.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("this is not a schedule\n", f);
    fclose(f);
  }
  SyncSchedule loaded;
  EXPECT_FALSE(ReadScheduleFile(path, &loaded));
  std::remove(path.c_str());
}

TEST(ScheduleFileTest, MissingFileFails) {
  SyncSchedule loaded;
  EXPECT_FALSE(ReadScheduleFile(::testing::TempDir() + "/nope.txt", &loaded));
}

}  // namespace
}  // namespace cvm
