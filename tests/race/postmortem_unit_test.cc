// Unit tests of the post-mortem trace (§7 baseline): accounting, per-epoch
// offline analysis, and deduplication matching the online reporter.
#include <gtest/gtest.h>

#include "src/race/postmortem.h"

namespace cvm {
namespace {

IntervalRecord MakeRecord(NodeId node, IntervalIndex index, EpochId epoch,
                          std::vector<PageId> writes, std::vector<PageId> reads) {
  IntervalRecord r;
  r.id = IntervalId{node, index};
  r.vc = VectorClock(2);
  r.vc.Set(node, index);
  r.epoch = epoch;
  r.write_pages = std::move(writes);
  r.read_pages = std::move(reads);
  return r;
}

PageAccessBitmaps Touch(uint32_t words, std::vector<uint32_t> reads,
                        std::vector<uint32_t> writes) {
  PageAccessBitmaps pair{Bitmap(words), Bitmap(words)};
  for (uint32_t w : reads) {
    pair.read.Set(w);
  }
  for (uint32_t w : writes) {
    pair.write.Set(w);
  }
  return pair;
}

TEST(PostMortemTraceTest, AccountsRecordsAndBytes) {
  PostMortemTrace trace;
  EXPECT_EQ(trace.TraceBytes(), 0u);
  trace.AddRecord(MakeRecord(0, 0, 0, {1}, {2, 3}));
  trace.AddBitmaps(IntervalId{0, 0}, 1, Touch(64, {}, {5}));
  EXPECT_EQ(trace.NumRecords(), 1u);
  EXPECT_EQ(trace.NumBitmapPairs(), 1u);
  EXPECT_GT(trace.TraceBytes(), 2 * sizeof(uint64_t));
}

TEST(PostMortemTraceTest, AnalyzesEachEpochIndependently) {
  PostMortemTrace trace;
  // Epoch 0: concurrent write-write race on page 0 word 7.
  trace.AddRecord(MakeRecord(0, 0, 0, {0}, {}));
  trace.AddRecord(MakeRecord(1, 0, 0, {0}, {}));
  trace.AddBitmaps(IntervalId{0, 0}, 0, Touch(64, {}, {7}));
  trace.AddBitmaps(IntervalId{1, 0}, 0, Touch(64, {}, {7}));
  // Epoch 1: same nodes, false sharing only (different words).
  trace.AddRecord(MakeRecord(0, 5, 1, {2}, {}));
  trace.AddRecord(MakeRecord(1, 5, 1, {2}, {}));
  trace.AddBitmaps(IntervalId{0, 5}, 2, Touch(64, {}, {1}));
  trace.AddBitmaps(IntervalId{1, 5}, 2, Touch(64, {}, {2}));

  const auto analysis = trace.Analyze(/*num_pages=*/16);
  ASSERT_EQ(analysis.races.size(), 1u);
  EXPECT_EQ(analysis.races[0].epoch, 0);
  EXPECT_EQ(analysis.races[0].page, 0);
  EXPECT_EQ(analysis.races[0].word, 7u);
  EXPECT_EQ(analysis.races[0].kind, RaceKind::kWriteWrite);
  // Both epochs were examined.
  EXPECT_EQ(analysis.stats.intervals_total, 4u);
  EXPECT_EQ(analysis.stats.overlapping_pairs, 2u);
}

TEST(PostMortemTraceTest, CrossEpochIntervalsAreNeverCompared) {
  PostMortemTrace trace;
  // Same page, same word, but different epochs: a barrier separates them,
  // so no race (the records' VCs here are deliberately "concurrent" — the
  // epoch split alone must prevent the comparison).
  trace.AddRecord(MakeRecord(0, 0, 0, {0}, {}));
  trace.AddRecord(MakeRecord(1, 9, 3, {0}, {}));
  trace.AddBitmaps(IntervalId{0, 0}, 0, Touch(64, {}, {7}));
  trace.AddBitmaps(IntervalId{1, 9}, 0, Touch(64, {}, {7}));
  const auto analysis = trace.Analyze(16);
  EXPECT_TRUE(analysis.races.empty());
  EXPECT_EQ(analysis.stats.interval_comparisons, 0u);
}

TEST(PostMortemTraceTest, DeduplicatesLikeTheOnlineReporter) {
  PostMortemTrace trace;
  // Three-way race on one word: 3 pairs, each reported once.
  for (NodeId n = 0; n < 2; ++n) {
    trace.AddRecord(MakeRecord(n, 0, 0, {0}, {0}));
    trace.AddBitmaps(IntervalId{n, 0}, 0, Touch(64, {7}, {7}));
  }
  const auto analysis = trace.Analyze(16);
  // One WW pair plus one RW report: the two read-write orientations of the
  // same interval pair deduplicate (SameRace is symmetric in the pair),
  // exactly as the online reporter behaves.
  EXPECT_EQ(analysis.races.size(), 2u);
}

}  // namespace
}  // namespace cvm
