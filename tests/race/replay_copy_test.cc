// Copy/assignment semantics of SyncSchedule: copies share the recorded
// grants but must start replay from the first grant (cursors reset), so a
// schedule captured from one run can drive many replay runs.
#include <gtest/gtest.h>

#include "src/race/replay.h"

namespace cvm {
namespace {

SyncSchedule Recorded() {
  SyncSchedule schedule;
  schedule.RecordGrant(0, 2);
  schedule.RecordGrant(0, 1);
  schedule.RecordGrant(0, 2);
  schedule.RecordGrant(5, 3);
  return schedule;
}

TEST(SyncScheduleCopyTest, CopyStartsReplayFromFirstGrant) {
  SyncSchedule original = Recorded();
  // Advance the original's replay cursor past the first grant.
  EXPECT_EQ(original.NextGrantee(0), 2);
  original.ConsumeGrant(0, 2);
  EXPECT_EQ(original.NextGrantee(0), 1);

  SyncSchedule copy(original);
  EXPECT_EQ(copy.TotalGrants(), original.TotalGrants());
  // The copy's cursor is fresh even though the original's was advanced.
  EXPECT_EQ(copy.NextGrantee(0), 2);
  // And the original's position is untouched by the copy.
  EXPECT_EQ(original.NextGrantee(0), 1);
}

TEST(SyncScheduleCopyTest, AssignmentResetsCursors) {
  SyncSchedule source = Recorded();
  SyncSchedule target;
  target.RecordGrant(9, 7);
  // Advance target's cursor on its own lock before overwriting it.
  target.ConsumeGrant(9, 7);

  target = source;
  EXPECT_EQ(target.TotalGrants(), 4u);
  EXPECT_EQ(target.GrantsFor(0).size(), 3u);
  // Replay after assignment starts from the first grant of every lock.
  EXPECT_EQ(target.NextGrantee(0), 2);
  EXPECT_EQ(target.NextGrantee(5), 3);
  // The overwritten lock is gone.
  EXPECT_TRUE(target.GrantsFor(9).empty());
}

TEST(SyncScheduleCopyTest, CopiedScheduleReplaysFully) {
  SyncSchedule original = Recorded();
  // Exhaust the original completely.
  while (original.NextGrantee(0) != kNoNode) {
    original.ConsumeGrant(0, original.NextGrantee(0));
  }
  EXPECT_EQ(original.NextGrantee(0), kNoNode);

  SyncSchedule copy = original;
  // The copy replays the full grant order again.
  EXPECT_EQ(copy.NextGrantee(0), 2);
  copy.ConsumeGrant(0, 2);
  EXPECT_EQ(copy.NextGrantee(0), 1);
  copy.ConsumeGrant(0, 1);
  EXPECT_EQ(copy.NextGrantee(0), 2);
  copy.ConsumeGrant(0, 2);
  EXPECT_EQ(copy.NextGrantee(0), kNoNode);
}

}  // namespace
}  // namespace cvm
