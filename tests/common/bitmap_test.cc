// Unit and property tests for the word-granularity access bitmaps.
#include <gtest/gtest.h>

#include "src/common/bitmap.h"
#include "src/common/rng.h"

namespace cvm {
namespace {

TEST(BitmapTest, StartsEmpty) {
  Bitmap bm(1024);
  EXPECT_EQ(bm.size(), 1024u);
  EXPECT_TRUE(bm.empty());
  EXPECT_EQ(bm.popcount(), 0u);
  for (uint32_t i = 0; i < 1024; i += 77) {
    EXPECT_FALSE(bm.Test(i));
  }
}

TEST(BitmapTest, SetTestClear) {
  Bitmap bm(128);
  bm.Set(0);
  bm.Set(63);
  bm.Set(64);
  bm.Set(127);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(127));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.popcount(), 4u);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
  EXPECT_EQ(bm.popcount(), 3u);
}

TEST(BitmapTest, IntersectionAcrossWordBoundaries) {
  Bitmap a(256);
  Bitmap b(256);
  a.Set(5);
  a.Set(64);
  a.Set(200);
  b.Set(64);
  b.Set(201);
  EXPECT_TRUE(a.Intersects(b));
  const std::vector<uint32_t> bits = a.IntersectionBits(b);
  ASSERT_EQ(bits.size(), 1u);
  EXPECT_EQ(bits[0], 64u);
}

TEST(BitmapTest, DisjointMapsDoNotIntersect) {
  Bitmap a(512);
  Bitmap b(512);
  for (uint32_t i = 0; i < 512; i += 2) {
    a.Set(i);
  }
  for (uint32_t i = 1; i < 512; i += 2) {
    b.Set(i);
  }
  EXPECT_FALSE(a.Intersects(b));
  EXPECT_TRUE(a.IntersectionBits(b).empty());
}

TEST(BitmapTest, UnionAccumulates) {
  Bitmap a(64);
  Bitmap b(64);
  a.Set(1);
  b.Set(2);
  a.UnionWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(2));
  EXPECT_EQ(a.popcount(), 2u);
}

TEST(BitmapTest, WireRoundTrip) {
  Bitmap a(100);
  a.Set(0);
  a.Set(99);
  a.Set(37);
  Bitmap b = Bitmap::FromWords(100, a.words());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ByteSize(), 16u);  // 100 bits -> two 64-bit words.
}

TEST(BitmapTest, ToStringListsSetBits) {
  Bitmap a(64);
  a.Set(3);
  a.Set(40);
  EXPECT_EQ(a.ToString(), "{3,40}");
}

// Property: IntersectionBits == brute-force set intersection, SetBits is
// sorted and consistent with Test().
TEST(BitmapTest, PropertyIntersectionMatchesBruteForce) {
  Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const uint32_t n = static_cast<uint32_t>(rng.Range(1, 500));
    Bitmap a(n);
    Bitmap b(n);
    std::vector<bool> ra(n, false);
    std::vector<bool> rb(n, false);
    const int sets = static_cast<int>(rng.Range(0, 64));
    for (int i = 0; i < sets; ++i) {
      const uint32_t bit = static_cast<uint32_t>(rng.Below(n));
      if (rng.Chance(0.5)) {
        a.Set(bit);
        ra[bit] = true;
      } else {
        b.Set(bit);
        rb[bit] = true;
      }
    }
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < n; ++i) {
      if (ra[i] && rb[i]) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(a.IntersectionBits(b), expected);
    EXPECT_EQ(a.Intersects(b), !expected.empty());
    // SetBits agrees with Test().
    uint32_t count = 0;
    for (uint32_t bit : a.SetBits()) {
      EXPECT_TRUE(a.Test(bit));
      ++count;
    }
    EXPECT_EQ(count, a.popcount());
  }
}

}  // namespace
}  // namespace cvm
