// Tests for the small common utilities: table printer, deterministic RNG,
// and the CVM_CHECK macros.
#include <gtest/gtest.h>

#include <set>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/table.h"

namespace cvm {
namespace {

TEST(TablePrinterTest, AlignsColumnsAndPadsRows) {
  TablePrinter table({"a", "long header", "c"});
  table.AddRow({"xxxxx", "1"});
  table.AddRow({"y", "2", "3"});
  const std::string out = table.ToString();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  // Every line has the same width.
  size_t width = out.find('\n');
  size_t pos = 0;
  while (pos < out.size()) {
    const size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
  EXPECT_NE(out.find("long header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx"), std::string::npos);
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(2.456, 2), "2.46");
  EXPECT_EQ(TablePrinter::Fixed(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Percent(0.1234, 1), "12.3%");
  EXPECT_EQ(TablePrinter::Percent(0.0, 0), "0%");
  EXPECT_EQ(TablePrinter::WithThousands(0), "0");
  EXPECT_EQ(TablePrinter::WithThousands(999), "999");
  EXPECT_EQ(TablePrinter::WithThousands(1000), "1,000");
  EXPECT_EQ(TablePrinter::WithThousands(1234567), "1,234,567");
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeIsInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.Range(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u) << "all values of a small range should appear";
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(CheckTest, PassingCheckIsSilent) {
  CVM_CHECK(true) << "never evaluated";
  CVM_CHECK_EQ(1, 1);
  CVM_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(CheckDeathTest, FailingChecksAbortWithMessage) {
  EXPECT_DEATH(CVM_CHECK(false) << "detail 42", "CHECK failed.*detail 42");
  EXPECT_DEATH(CVM_CHECK_EQ(1, 2), "CHECK failed");
  EXPECT_DEATH(CVM_CHECK_GE(1, 2), "1 vs 2");
}

}  // namespace
}  // namespace cvm
