// Tests for the CLI flag parser.
#include <gtest/gtest.h>

#include "tools/flags.h"

namespace cvm {
namespace tools {
namespace {

Flags ParseOk(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  Flags flags;
  std::string error;
  EXPECT_TRUE(flags.Parse(static_cast<int>(argv.size()), argv.data(), &error)) << error;
  return flags;
}

TEST(FlagsTest, KeyValueAndBooleanForms) {
  Flags flags = ParseOk({"--app=tsp", "--nodes=8", "--compare", "--no-detect"});
  EXPECT_EQ(flags.GetString("app", ""), "tsp");
  EXPECT_EQ(flags.GetInt("nodes", 0), 8);
  EXPECT_TRUE(flags.GetBool("compare", false));
  EXPECT_FALSE(flags.GetBool("detect", true));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, FallbacksApplyWhenAbsentOrMalformed) {
  Flags flags = ParseOk({"--nodes=abc"});
  EXPECT_EQ(flags.GetInt("nodes", 4), 4);
  EXPECT_EQ(flags.GetInt("other", 9), 9);
  EXPECT_EQ(flags.GetString("other", "dflt"), "dflt");
  EXPECT_TRUE(flags.GetBool("other", true));
}

TEST(FlagsTest, BooleanValueSpellings) {
  Flags flags = ParseOk({"--a=false", "--b=0", "--c=no", "--d=true", "--e=1"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_FALSE(flags.GetBool("c", true));
  EXPECT_TRUE(flags.GetBool("d", false));
  EXPECT_TRUE(flags.GetBool("e", false));
}

TEST(FlagsTest, PositionalsAndErrors) {
  Flags flags = ParseOk({"input.txt", "--x=1", "second"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");

  Flags bad;
  std::string error;
  const char* argv1[] = {"prog", "--"};
  EXPECT_FALSE(bad.Parse(2, argv1, &error));
  const char* argv2[] = {"prog", "--=v"};
  EXPECT_FALSE(bad.Parse(2, argv2, &error));
}

TEST(FlagsTest, UnknownKeyDetection) {
  Flags flags = ParseOk({"--app=tsp", "--nodse=8"});
  const auto unknown = flags.UnknownKeys({"app", "nodes"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "nodse");
}

}  // namespace
}  // namespace tools
}  // namespace cvm
