// Tests for the ATOM substitution: the runtime access filter and the static
// classifier over synthetic binary images (§5.1, Table 2).
#include <gtest/gtest.h>

#include "src/instr/access_filter.h"
#include "src/instr/binary_image.h"

namespace cvm {
namespace {

TEST(AccessFilterTest, ClassifiesSharedAndPrivate) {
  AccessFilter filter(1024, 8 * 1024);
  // Shared access: page/word decomposition.
  auto r = filter.OnAccess(SharedVa(1024 + 8), /*is_write=*/false);
  EXPECT_TRUE(r.shared);
  EXPECT_EQ(r.page, 1);
  EXPECT_EQ(r.word, 2u);
  // Private heap access.
  auto p = filter.OnAccess(kPrivateHeapBase + 128, /*is_write=*/true);
  EXPECT_FALSE(p.shared);
  // Past the end of the shared segment: private.
  auto q = filter.OnAccess(SharedVa(8 * 1024), false);
  EXPECT_FALSE(q.shared);

  const AccessCounters& c = filter.counters();
  EXPECT_EQ(c.instrumented_calls, 3u);
  EXPECT_EQ(c.shared_accesses, 1u);
  EXPECT_EQ(c.private_accesses, 2u);
  EXPECT_EQ(c.shared_reads, 1u);
  EXPECT_EQ(c.shared_writes, 0u);
}

TEST(ClassifierTest, EliminationRulesMatchCategories) {
  InstructionMix mix;
  mix.stack = 100;
  mix.static_data = 200;
  mix.library = 300;
  mix.cvm = 50;
  mix.candidate = 40;
  const BinaryImage image = SynthesizeBinary("test", mix, 1);
  EXPECT_EQ(image.TotalLoadsStores(), 690u);

  const ClassifyResult result = StaticClassifier().Classify(image);
  EXPECT_EQ(result.stack, 100u);
  EXPECT_EQ(result.static_data, 200u);
  EXPECT_EQ(result.library, 300u);
  EXPECT_EQ(result.cvm, 50u);
  EXPECT_EQ(result.instrumented, 40u);
  EXPECT_EQ(result.Total(), 690u);
}

TEST(ClassifierTest, InBlockProvablyPrivateCandidatesAreEliminated) {
  InstructionMix mix;
  mix.candidate = 1000;
  mix.candidate_private_block = 0.5;
  const BinaryImage image = SynthesizeBinary("t", mix, 2);
  const ClassifyResult result = StaticClassifier().Classify(image);
  // ~half eliminated (deterministic given the seed).
  EXPECT_GT(result.static_data, 400u);
  EXPECT_LT(result.static_data, 600u);
  EXPECT_EQ(result.static_data + result.instrumented, 1000u);
}

TEST(ClassifierTest, InterproceduralAnalysisEliminatesMore) {
  // §6.5: inter-procedural def-use tracking resolves more candidates as
  // provably private, reducing "false" instrumentation.
  InstructionMix mix;
  mix.candidate = 1000;
  mix.candidate_private_block = 0.1;
  mix.candidate_private_interproc = 0.6;
  const BinaryImage image = SynthesizeBinary("t", mix, 3);
  const ClassifyResult base = StaticClassifier(/*interprocedural=*/false).Classify(image);
  const ClassifyResult ip = StaticClassifier(/*interprocedural=*/true).Classify(image);
  EXPECT_LT(ip.instrumented, base.instrumented);
  EXPECT_EQ(ip.Total(), base.Total());
}

TEST(ClassifierTest, PaperMixesEliminateOverNinetyNinePercent) {
  // §5.1's headline: over 99% of loads and stores are statically eliminated.
  const struct {
    const char* name;
    InstructionMix mix;
  } apps[] = {
      {"FFT", {1285, 1496, 124716, 3910, 261, 0.0, 0.6}},
      {"SOR", {342, 1304, 48717, 3910, 126, 0.0, 0.55}},
      {"TSP", {244, 1213, 48717, 3910, 350, 0.0, 0.68}},
      {"Water", {649, 1919, 124716, 3910, 528, 0.0, 0.62}},
  };
  for (const auto& app : apps) {
    const BinaryImage image = SynthesizeBinary(app.name, app.mix, 42);
    const ClassifyResult result = StaticClassifier().Classify(image);
    EXPECT_GT(result.EliminatedFraction(), 0.99) << app.name;
    EXPECT_EQ(result.instrumented, app.mix.candidate) << app.name;
  }
}

}  // namespace
}  // namespace cvm
