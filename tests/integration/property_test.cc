// End-to-end property test: random SPMD programs (reads/writes/locks/
// barriers) run on the real DSM with race detection, and the reported race
// set is compared — both directions — against an independent happens-before
// oracle built from the program text plus the recorded lock-grant order.
//
// Soundness: every reported race is a pair of conflicting accesses unordered
// by happens-before-1. Completeness (execution-level, §2): every conflicting
// unordered access pair is reported.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/dsm/dsm.h"
#include "src/dsm/handles.h"

namespace cvm {
namespace {

struct Op {
  enum Kind { kRead, kWrite, kLock, kUnlock, kBarrier } kind;
  int arg = 0;  // Address-pool index or lock id.
};

using Program = std::vector<std::vector<Op>>;  // [node][step].

constexpr int kNumAddrs = 10;
constexpr int kNumLocks = 3;

Program GeneratePrograms(Rng& rng, int nodes) {
  Program program(nodes);
  const int phases = static_cast<int>(rng.Range(1, 3));
  for (int phase = 0; phase < phases; ++phase) {
    for (int n = 0; n < nodes; ++n) {
      const int ops = static_cast<int>(rng.Range(1, 8));
      for (int i = 0; i < ops; ++i) {
        const double roll = rng.NextDouble();
        if (roll < 0.35) {
          program[n].push_back({Op::kRead, static_cast<int>(rng.Below(kNumAddrs))});
        } else if (roll < 0.7) {
          program[n].push_back({Op::kWrite, static_cast<int>(rng.Below(kNumAddrs))});
        } else {
          // A lock-protected section with a few accesses.
          const int lock = static_cast<int>(rng.Below(kNumLocks));
          program[n].push_back({Op::kLock, lock});
          const int inner = static_cast<int>(rng.Range(0, 3));
          for (int k = 0; k < inner; ++k) {
            program[n].push_back(
                {rng.Chance(0.5) ? Op::kRead : Op::kWrite, static_cast<int>(rng.Below(kNumAddrs))});
          }
          program[n].push_back({Op::kUnlock, lock});
        }
      }
      program[n].push_back({Op::kBarrier, 0});
    }
  }
  return program;
}

// ---------------------------------------------------------------------------
// Oracle: replays the program logically, using the recorded grant order to
// resolve lock acquisitions, and computes happens-before-1 exactly as the
// paper defines it.
// ---------------------------------------------------------------------------

struct OracleAccess {
  NodeId node;
  int addr;
  bool is_write;
  IntervalIndex interval;
  VectorClock vc;
};

void OracleRaces(const Program& program, int nodes, const SyncSchedule& schedule,
                 std::set<std::pair<int, int>>* out) {
  std::vector<VectorClock> vc(nodes, VectorClock(nodes));
  std::vector<IntervalIndex> interval(nodes);
  for (int n = 0; n < nodes; ++n) {
    interval[n] = vc[n].Tick(n);  // Interval 0, as the DSM node constructor.
  }
  std::vector<size_t> pc(nodes, 0);
  std::map<LockId, size_t> grant_cursor;
  std::map<LockId, VectorClock> release_snapshot;  // Last unlock's vc per lock.
  std::vector<OracleAccess> accesses;

  auto all_done = [&] {
    for (int n = 0; n < nodes; ++n) {
      if (pc[n] < program[n].size()) {
        return false;
      }
    }
    return true;
  };

  // Round-robin scheduler; barriers and lock turns provide the blocking.
  int barrier_waiting = 0;
  std::vector<bool> at_barrier(nodes, false);
  while (!all_done()) {
    bool progressed = false;
    for (int n = 0; n < nodes; ++n) {
      while (pc[n] < program[n].size() && !at_barrier[n]) {
        const Op& op = program[n][pc[n]];
        if (op.kind == Op::kRead || op.kind == Op::kWrite) {
          accesses.push_back({n, op.arg, op.kind == Op::kWrite, interval[n], vc[n]});
          ++pc[n];
          progressed = true;
          continue;
        }
        if (op.kind == Op::kLock) {
          const auto& grants = schedule.GrantsFor(op.arg);
          const size_t cursor = grant_cursor[op.arg];
          ASSERT_TRUE(cursor < grants.size()) << "oracle: grant log exhausted";
          if (grants[cursor] != n) {
            break;  // Not this node's turn yet.
          }
          grant_cursor[op.arg] = cursor + 1;
          // Acquire: end interval, merge the releaser's release snapshot,
          // begin a new interval.
          auto snap = release_snapshot.find(op.arg);
          if (snap != release_snapshot.end()) {
            vc[n].MergeWith(snap->second);
          }
          interval[n] = vc[n].Tick(n);
          ++pc[n];
          progressed = true;
          continue;
        }
        if (op.kind == Op::kUnlock) {
          // Release: the snapshot the next acquirer merges is the vc of the
          // just-ended interval (before the post-release tick).
          release_snapshot[op.arg] = vc[n];
          interval[n] = vc[n].Tick(n);
          ++pc[n];
          progressed = true;
          continue;
        }
        // Barrier.
        at_barrier[n] = true;
        ++barrier_waiting;
        progressed = true;
      }
    }
    if (barrier_waiting == nodes) {
      // Everyone arrived: tick the in-barrier interval, merge globally,
      // tick the new epoch-body interval.
      VectorClock merged(nodes);
      for (int n = 0; n < nodes; ++n) {
        vc[n].Tick(n);
        merged.MergeWith(vc[n]);
      }
      for (int n = 0; n < nodes; ++n) {
        vc[n] = merged;
        interval[n] = vc[n].Tick(n);
        at_barrier[n] = false;
        ++pc[n];
      }
      barrier_waiting = 0;
      progressed = true;
    }
    ASSERT_TRUE(progressed) << "oracle deadlock: inconsistent grant log";
  }

  // Conflicting, unordered access pairs -> (addr, kind 0=RW 1=WW).
  std::set<std::pair<int, int>>& races = *out;
  for (size_t i = 0; i < accesses.size(); ++i) {
    for (size_t j = i + 1; j < accesses.size(); ++j) {
      const OracleAccess& a = accesses[i];
      const OracleAccess& b = accesses[j];
      if (a.node == b.node || a.addr != b.addr || (!a.is_write && !b.is_write)) {
        continue;
      }
      if (IntervalsConcurrent(IntervalId{a.node, a.interval}, a.vc,
                              IntervalId{b.node, b.interval}, b.vc)) {
        races.insert({a.addr, a.is_write && b.is_write ? 1 : 0});
      }
    }
  }
}

class PropertyTest : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PropertyTest, DetectorMatchesHappensBeforeOracle) {
  Rng seed_rng(20260704);
  for (int trial = 0; trial < 30; ++trial) {
    Rng rng(seed_rng.Next());
    const int kNodes = static_cast<int>(rng.Range(2, 4));
    const Program program = GeneratePrograms(rng, kNodes);

    DsmOptions options;
    options.num_nodes = kNodes;
    // Random granularity: tiny pages maximize false sharing, larger pages
    // put the whole pool on one page.
    options.page_size = 16u << rng.Range(1, 4);  // 32..128 bytes.
    options.max_shared_bytes = 16 * 1024;
    options.num_locks = kNumLocks;
    options.protocol = GetParam();
    options.record_sync_order = true;

    DsmSystem system(options);
    // Address pool spans few pages; neighbours share pages.
    auto pool = SharedArray<int32_t>::Alloc(system, "pool", kNumAddrs);
    RunResult result = system.Run([&](NodeContext& ctx) {
      int step = 0;
      for (const Op& op : program[ctx.id()]) {
        switch (op.kind) {
          case Op::kRead:
            (void)pool.Get(ctx, op.arg);
            break;
          case Op::kWrite:
            pool.Set(ctx, op.arg, ctx.id() * 1000 + step);
            break;
          case Op::kLock:
            ctx.Lock(op.arg);
            break;
          case Op::kUnlock:
            ctx.Unlock(op.arg);
            break;
          case Op::kBarrier:
            ctx.Barrier();
            break;
        }
        ++step;
      }
    });

    std::set<std::pair<int, int>> expected;
    OracleRaces(program, kNodes, result.recorded_schedule, &expected);
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "trial " << trial;

    std::set<std::pair<int, int>> reported;
    for (const RaceReport& race : result.races) {
      const int addr_index = static_cast<int>((race.addr - pool.addr(0)) / kWordSize);
      reported.insert({addr_index, race.kind == RaceKind::kWriteWrite ? 1 : 0});
    }

    EXPECT_EQ(reported, expected) << "trial " << trial << ": detector and oracle disagree";
  }
}

// Same harness with post-mortem tracing enabled on the very same run: the
// offline analysis must equal both the online reports and the oracle.
TEST_P(PropertyTest, PostMortemAnalysisMatchesOnlineAndOracle) {
  Rng seed_rng(977);
  for (int trial = 0; trial < 12; ++trial) {
    Rng rng(seed_rng.Next());
    const int kNodes = 3;
    const Program program = GeneratePrograms(rng, kNodes);

    DsmOptions options;
    options.num_nodes = kNodes;
    options.page_size = 64;
    options.max_shared_bytes = 16 * 1024;
    options.num_locks = kNumLocks;
    options.protocol = GetParam();
    options.record_sync_order = true;
    options.postmortem_trace = true;

    DsmSystem system(options);
    auto pool = SharedArray<int32_t>::Alloc(system, "pool", kNumAddrs);
    RunResult result = system.Run([&](NodeContext& ctx) {
      for (const Op& op : program[ctx.id()]) {
        switch (op.kind) {
          case Op::kRead:
            (void)pool.Get(ctx, op.arg);
            break;
          case Op::kWrite:
            pool.Set(ctx, op.arg, ctx.id());
            break;
          case Op::kLock:
            ctx.Lock(op.arg);
            break;
          case Op::kUnlock:
            ctx.Unlock(op.arg);
            break;
          case Op::kBarrier:
            ctx.Barrier();
            break;
        }
      }
    });

    std::set<std::pair<int, int>> expected;
    OracleRaces(program, kNodes, result.recorded_schedule, &expected);
    ASSERT_FALSE(::testing::Test::HasFatalFailure()) << "trial " << trial;

    auto project = [&](const std::vector<RaceReport>& races) {
      std::set<std::pair<int, int>> out;
      for (const RaceReport& race : races) {
        out.insert({static_cast<int>((race.addr - pool.addr(0)) / kWordSize),
                    race.kind == RaceKind::kWriteWrite ? 1 : 0});
      }
      return out;
    };

    const auto offline = system.trace().Analyze(system.segment().num_pages());
    // The offline reports have no symbolization pass; project via page/word.
    std::set<std::pair<int, int>> offline_set;
    for (const RaceReport& race : offline.races) {
      const GlobalAddr addr = static_cast<GlobalAddr>(race.page) * options.page_size +
                              static_cast<GlobalAddr>(race.word) * kWordSize;
      offline_set.insert({static_cast<int>((addr - pool.addr(0)) / kWordSize),
                          race.kind == RaceKind::kWriteWrite ? 1 : 0});
    }

    EXPECT_EQ(project(result.races), expected) << "trial " << trial << " (online)";
    EXPECT_EQ(offline_set, expected) << "trial " << trial << " (post-mortem)";
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, PropertyTest,
                         ::testing::Values(ProtocolKind::kSingleWriterLrc,
                                           ProtocolKind::kMultiWriterHomeLrc,
                                           ProtocolKind::kEagerRcInvalidate),
                         [](const ::testing::TestParamInfo<ProtocolKind>& param_info) {
                           switch (param_info.param) {
                             case ProtocolKind::kSingleWriterLrc:
                               return "SingleWriter";
                             case ProtocolKind::kMultiWriterHomeLrc:
                               return "MultiWriterHome";
                             case ProtocolKind::kEagerRcInvalidate:
                               return "EagerRc";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace cvm
