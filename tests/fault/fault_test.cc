// Tests for the deterministic fault-injection engine (src/fault/): profile
// parsing, decision purity/determinism, statistical rates, and the seeded
// structural faults (partition cut, stall node).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "src/fault/fault.h"

namespace cvm::fault {
namespace {

TEST(FaultProfileTest, ParseRoundTripsEveryProfile) {
  for (const FaultProfile profile :
       {FaultProfile::kOff, FaultProfile::kLossy, FaultProfile::kBursty,
        FaultProfile::kPartition, FaultProfile::kStress, FaultProfile::kCrash}) {
    const auto parsed = ParseProfile(ProfileName(profile));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, profile);
  }
  EXPECT_FALSE(ParseProfile("flaky").has_value());
  EXPECT_FALSE(ParseProfile("").has_value());
}

TEST(FaultProfileTest, OnlyOffIsDisabled) {
  EXPECT_FALSE(FaultPlan::FromProfile(FaultProfile::kOff, 1).enabled());
  for (const FaultProfile profile :
       {FaultProfile::kLossy, FaultProfile::kBursty, FaultProfile::kPartition,
        FaultProfile::kStress, FaultProfile::kCrash}) {
    EXPECT_TRUE(FaultPlan::FromProfile(profile, 1).enabled()) << ProfileName(profile);
  }
}

TEST(FaultProfileTest, CrashProfileArmsTheCrashAndNothingElse) {
  const FaultPlan plan = FaultPlan::FromProfile(FaultProfile::kCrash, 9);
  EXPECT_TRUE(plan.crash_enabled());
  EXPECT_GE(plan.crash_epoch, 0);
  // No message-level faults: the crash is the only perturbation, so a
  // crash run's surviving prefix compares cleanly against the baseline.
  EXPECT_EQ(plan.drop_prob, 0.0);
  EXPECT_EQ(plan.dup_prob, 0.0);
  EXPECT_EQ(plan.corrupt_prob, 0.0);
  // A disarmed crash on any other profile stays disarmed.
  EXPECT_FALSE(FaultPlan::FromProfile(FaultProfile::kLossy, 9).crash_enabled());
  // Arming a crash on an otherwise-off plan still enables the injector (the
  // reliable transport is what turns a silent peer into a verdict).
  FaultPlan off = FaultPlan::FromProfile(FaultProfile::kOff, 9);
  off.crash_epoch = 2;
  EXPECT_TRUE(off.enabled());
}

TEST(FaultInjectorTest, CrashVictimIsSeedDeterministicAndPinnable) {
  const FaultPlan plan = FaultPlan::FromProfile(FaultProfile::kCrash, 123);
  const FaultInjector a(plan, 8);
  const FaultInjector b(plan, 8);
  EXPECT_EQ(a.crash_node(), b.crash_node());
  EXPECT_GE(a.crash_node(), 0);
  EXPECT_LT(a.crash_node(), 8);
  // A pinned victim overrides the seed derivation.
  FaultPlan pinned = plan;
  pinned.crash_node = 3;
  EXPECT_EQ(FaultInjector(pinned, 8).crash_node(), 3);
  // Different seeds eventually pick different victims.
  bool differs = false;
  for (uint64_t seed = 1; seed < 32 && !differs; ++seed) {
    differs = FaultInjector(FaultPlan::FromProfile(FaultProfile::kCrash, seed), 8)
                  .crash_node() != a.crash_node();
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, DecisionsArePureFunctionsOfArguments) {
  const FaultPlan plan = FaultPlan::FromProfile(FaultProfile::kStress, 99);
  const FaultInjector a(plan, 8);
  const FaultInjector b(plan, 8);  // Independent instance, same plan.
  for (uint64_t seq = 0; seq < 200; ++seq) {
    for (uint32_t attempt = 0; attempt < 3; ++attempt) {
      const FaultDecision da = a.OnSendAttempt(2, 5, seq, attempt);
      const FaultDecision db = b.OnSendAttempt(2, 5, seq, attempt);
      EXPECT_EQ(da.deliver, db.deliver);
      EXPECT_EQ(da.duplicate, db.duplicate);
      EXPECT_EQ(da.corrupt, db.corrupt);
      EXPECT_EQ(da.delay_hops, db.delay_hops);
      EXPECT_EQ(a.DropAck(2, 5, seq, attempt), b.DropAck(2, 5, seq, attempt));
    }
  }
  EXPECT_EQ(a.partition_cut(), b.partition_cut());
  EXPECT_EQ(a.stall_node(), b.stall_node());
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentSchedules) {
  const FaultInjector a(FaultPlan::FromProfile(FaultProfile::kLossy, 1), 4);
  const FaultInjector b(FaultPlan::FromProfile(FaultProfile::kLossy, 2), 4);
  int differing = 0;
  for (uint64_t seq = 0; seq < 2000; ++seq) {
    if (a.OnSendAttempt(0, 1, seq, 0).deliver != b.OnSendAttempt(0, 1, seq, 0).deliver) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(FaultInjectorTest, DropRateMatchesPlanStatistically) {
  FaultPlan plan;
  plan.profile = FaultProfile::kLossy;
  plan.seed = 42;
  plan.drop_prob = 0.1;
  const FaultInjector injector(plan, 4);
  int drops = 0;
  const int kTrials = 20000;
  for (uint64_t seq = 0; seq < kTrials; ++seq) {
    if (!injector.OnSendAttempt(0, 1, seq, 0).deliver) {
      ++drops;
    }
  }
  const double rate = static_cast<double>(drops) / kTrials;
  EXPECT_GT(rate, 0.08);
  EXPECT_LT(rate, 0.12);
}

TEST(FaultInjectorTest, ZeroRatePlanNeverInjects) {
  FaultPlan plan;
  plan.profile = FaultProfile::kLossy;  // Enabled, but every rate is zero.
  const FaultInjector injector(plan, 4);
  for (uint64_t seq = 0; seq < 500; ++seq) {
    const FaultDecision d = injector.OnSendAttempt(0, 1, seq, 0);
    EXPECT_TRUE(d.deliver);
    EXPECT_FALSE(d.duplicate);
    EXPECT_FALSE(d.corrupt);
    EXPECT_EQ(d.delay_hops, 0u);
    EXPECT_FALSE(injector.DropAck(0, 1, seq, 0));
  }
}

TEST(FaultInjectorTest, PartitionDropsCrossCutTrafficThenHeals) {
  FaultPlan plan;
  plan.profile = FaultProfile::kPartition;
  plan.seed = 7;
  plan.partition = true;
  plan.partition_seq_start = 10;
  plan.partition_seq_len = 20;
  plan.partition_attempts = 3;
  const FaultInjector injector(plan, 8);
  const NodeId cut = injector.partition_cut();
  ASSERT_GT(cut, 0);
  ASSERT_LT(cut, 8);

  const NodeId left = 0;
  const NodeId right = cut;  // First node on the other side.
  // Inside the sequence window, cross-cut frames lose their early attempts...
  for (uint64_t seq = 10; seq < 30; ++seq) {
    EXPECT_FALSE(injector.OnSendAttempt(left, right, seq, 0).deliver);
    EXPECT_FALSE(injector.OnSendAttempt(right, left, seq, 2).deliver);
    // ...but retransmission outlasts the outage (the heal).
    EXPECT_TRUE(injector.OnSendAttempt(left, right, seq, 3).deliver);
  }
  // Outside the window, and on same-side pairs, the partition is invisible.
  EXPECT_TRUE(injector.OnSendAttempt(left, right, 9, 0).deliver);
  EXPECT_TRUE(injector.OnSendAttempt(left, right, 30, 0).deliver);
  if (cut > 1) {
    EXPECT_TRUE(injector.OnSendAttempt(0, 1, 15, 0).deliver);
  }
}

TEST(FaultInjectorTest, StallNodeLosesEarlyAttemptsInWindows) {
  FaultPlan plan;
  plan.profile = FaultProfile::kStress;
  plan.seed = 11;
  plan.stall_period = 100;
  plan.stall_len = 10;
  plan.stall_attempts = 2;
  const FaultInjector injector(plan, 4);
  const NodeId stalled = injector.stall_node();
  const NodeId other = (stalled + 1) % 4;
  for (uint64_t seq = 0; seq < 10; ++seq) {
    EXPECT_FALSE(injector.OnSendAttempt(stalled, other, seq, 0).deliver);
    EXPECT_FALSE(injector.OnSendAttempt(stalled, other, seq, 1).deliver);
    EXPECT_TRUE(injector.OnSendAttempt(stalled, other, seq, 2).deliver);
    // Frames from other nodes are unaffected.
    EXPECT_TRUE(injector.OnSendAttempt(other, stalled, seq, 0).deliver);
  }
  // Between windows the stalled node sends freely.
  for (uint64_t seq = 10; seq < 100; ++seq) {
    EXPECT_TRUE(injector.OnSendAttempt(stalled, other, seq, 0).deliver);
  }
  // The window recurs every stall_period sequence numbers.
  EXPECT_FALSE(injector.OnSendAttempt(stalled, other, 100, 0).deliver);
}

TEST(FaultInjectorTest, BackoffIsMonotoneAndCapped) {
  FaultPlan plan;
  plan.profile = FaultProfile::kLossy;
  plan.rto_base_ns = 1000;
  plan.rto_cap_ns = 16000;
  const FaultInjector injector(plan, 2);
  double prev = 0;
  for (uint32_t attempt = 0; attempt < 40; ++attempt) {
    const double backoff = injector.BackoffNs(attempt);
    EXPECT_GE(backoff, prev);
    EXPECT_LE(backoff, 16000.0);
    prev = backoff;
  }
  EXPECT_EQ(injector.BackoffNs(0), 1000.0);
  EXPECT_EQ(injector.BackoffNs(39), 16000.0);
}

TEST(FaultInjectorTest, BackoffSaturatesAtCapNearTheAttemptBudget) {
  // The backoff formula min(rto_base_ns << a, rto_cap_ns) must saturate at
  // the cap for every attempt up to (and past) the largest configurable
  // budget — no overflow, no wraparound back to small values. A naive
  // double-shift of base * 2^attempt overflows long before attempt 512.
  FaultPlan plan;
  plan.profile = FaultProfile::kLossy;
  plan.rto_base_ns = 1000;
  plan.rto_cap_ns = 64000;
  plan.max_send_attempts = 1u << 20;  // The CLI's largest accepted budget.
  const FaultInjector injector(plan, 2);
  for (const uint32_t attempt :
       {63u, 64u, 65u, 512u, 1024u, plan.max_send_attempts - 1,
        plan.max_send_attempts, ~0u}) {
    const double backoff = injector.BackoffNs(attempt);
    EXPECT_EQ(backoff, 64000.0) << "attempt " << attempt;
    EXPECT_TRUE(std::isfinite(backoff)) << "attempt " << attempt;
  }
  // The pre-saturation ramp is still exponential.
  EXPECT_EQ(injector.BackoffNs(0), 1000.0);
  EXPECT_EQ(injector.BackoffNs(1), 2000.0);
  EXPECT_EQ(injector.BackoffNs(5), 32000.0);
  EXPECT_EQ(injector.BackoffNs(6), 64000.0);
}

TEST(FaultInjectorTest, DelayScalesLinearlyWithHops) {
  FaultPlan plan;
  plan.profile = FaultProfile::kLossy;
  plan.delay_hop_ns = 500;
  const FaultInjector injector(plan, 2);
  EXPECT_EQ(injector.DelayNs(1), 500.0);
  EXPECT_EQ(injector.DelayNs(3), 1500.0);
}

}  // namespace
}  // namespace cvm::fault
