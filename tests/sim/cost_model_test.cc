// Tests for the simulated-time model: clock advancement, Lamport receive
// rule, and Figure 3's overhead-bucket attribution.
#include <gtest/gtest.h>

#include "src/sim/cost_model.h"

namespace cvm {
namespace {

TEST(NodeTimingTest, ChargeAdvancesClockAndBucket) {
  NodeTiming timing;
  EXPECT_EQ(timing.now_ns(), 0);
  timing.Charge(Bucket::kNone, 100);
  timing.Charge(Bucket::kProcCall, 40);
  timing.Charge(Bucket::kProcCall, 10);
  timing.Charge(Bucket::kBitmaps, 5);
  EXPECT_DOUBLE_EQ(timing.now_ns(), 155);
  EXPECT_DOUBLE_EQ(timing.overhead_ns(Bucket::kProcCall), 50);
  EXPECT_DOUBLE_EQ(timing.overhead_ns(Bucket::kBitmaps), 5);
  EXPECT_DOUBLE_EQ(timing.overhead_ns(Bucket::kAccessCheck), 0);
  EXPECT_DOUBLE_EQ(timing.total_overhead_ns(), 55);  // kNone excluded.
}

TEST(NodeTimingTest, ObserveIsMonotone) {
  NodeTiming timing;
  timing.Charge(Bucket::kNone, 100);
  timing.ObserveAtLeast(50);  // In the past: no effect.
  EXPECT_DOUBLE_EQ(timing.now_ns(), 100);
  timing.ObserveAtLeast(400);  // Lamport receive rule.
  EXPECT_DOUBLE_EQ(timing.now_ns(), 400);
}

TEST(NodeTimingTest, AddOverheadFromAccumulatesBucketsOnly) {
  NodeTiming a;
  NodeTiming b;
  a.Charge(Bucket::kIntervals, 7);
  b.Charge(Bucket::kIntervals, 3);
  b.Charge(Bucket::kNone, 1000);
  a.AddOverheadFrom(b);
  EXPECT_DOUBLE_EQ(a.overhead_ns(Bucket::kIntervals), 10);
  EXPECT_DOUBLE_EQ(a.now_ns(), 7);  // Clock untouched.
}

TEST(NodeTimingTest, NegativeChargeAborts) {
  NodeTiming timing;
  EXPECT_DEATH(timing.Charge(Bucket::kNone, -1), "CHECK failed");
}

TEST(CostParamsTest, MessageCostIsAffineInBytes) {
  CostParams costs;
  costs.msg_latency_ns = 1000;
  costs.per_byte_ns = 2;
  EXPECT_DOUBLE_EQ(costs.MessageCost(0), 1000);
  EXPECT_DOUBLE_EQ(costs.MessageCost(500), 2000);
}

TEST(BucketTest, NamesMatchFigure3) {
  EXPECT_STREQ(BucketName(Bucket::kCvmMods), "CVM Mods");
  EXPECT_STREQ(BucketName(Bucket::kProcCall), "Proc Call");
  EXPECT_STREQ(BucketName(Bucket::kAccessCheck), "Access Check");
  EXPECT_STREQ(BucketName(Bucket::kIntervals), "Intervals");
  EXPECT_STREQ(BucketName(Bucket::kBitmaps), "Bitmaps");
}

}  // namespace
}  // namespace cvm
