file(REMOVE_RECURSE
  "CMakeFiles/weak_memory_fig5.dir/weak_memory_fig5.cpp.o"
  "CMakeFiles/weak_memory_fig5.dir/weak_memory_fig5.cpp.o.d"
  "weak_memory_fig5"
  "weak_memory_fig5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_memory_fig5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
