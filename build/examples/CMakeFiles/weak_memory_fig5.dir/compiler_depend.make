# Empty compiler generated dependencies file for weak_memory_fig5.
# This may be replaced when dependencies are built.
