file(REMOVE_RECURSE
  "CMakeFiles/replay_debug.dir/replay_debug.cpp.o"
  "CMakeFiles/replay_debug.dir/replay_debug.cpp.o.d"
  "replay_debug"
  "replay_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
