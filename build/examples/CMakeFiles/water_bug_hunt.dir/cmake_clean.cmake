file(REMOVE_RECURSE
  "CMakeFiles/water_bug_hunt.dir/water_bug_hunt.cpp.o"
  "CMakeFiles/water_bug_hunt.dir/water_bug_hunt.cpp.o.d"
  "water_bug_hunt"
  "water_bug_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/water_bug_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
