# Empty dependencies file for water_bug_hunt.
# This may be replaced when dependencies are built.
