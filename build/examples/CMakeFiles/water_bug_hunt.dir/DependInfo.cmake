
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/water_bug_hunt.cpp" "examples/CMakeFiles/water_bug_hunt.dir/water_bug_hunt.cpp.o" "gcc" "examples/CMakeFiles/water_bug_hunt.dir/water_bug_hunt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/cvm_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/cvm_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/race/CMakeFiles/cvm_race.dir/DependInfo.cmake"
  "/root/repo/build/src/instr/CMakeFiles/cvm_instr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cvm_net.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/cvm_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cvm_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/cvm_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cvm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cvm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
