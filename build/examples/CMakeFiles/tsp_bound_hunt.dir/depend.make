# Empty dependencies file for tsp_bound_hunt.
# This may be replaced when dependencies are built.
