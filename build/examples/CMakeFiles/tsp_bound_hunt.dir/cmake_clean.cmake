file(REMOVE_RECURSE
  "CMakeFiles/tsp_bound_hunt.dir/tsp_bound_hunt.cpp.o"
  "CMakeFiles/tsp_bound_hunt.dir/tsp_bound_hunt.cpp.o.d"
  "tsp_bound_hunt"
  "tsp_bound_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsp_bound_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
