file(REMOVE_RECURSE
  "CMakeFiles/consolidation_gc.dir/consolidation_gc.cpp.o"
  "CMakeFiles/consolidation_gc.dir/consolidation_gc.cpp.o.d"
  "consolidation_gc"
  "consolidation_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consolidation_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
