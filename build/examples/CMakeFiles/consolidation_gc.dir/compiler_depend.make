# Empty compiler generated dependencies file for consolidation_gc.
# This may be replaced when dependencies are built.
