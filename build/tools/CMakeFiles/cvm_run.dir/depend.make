# Empty dependencies file for cvm_run.
# This may be replaced when dependencies are built.
