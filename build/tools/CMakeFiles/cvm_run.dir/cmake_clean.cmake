file(REMOVE_RECURSE
  "CMakeFiles/cvm_run.dir/cvm_run.cc.o"
  "CMakeFiles/cvm_run.dir/cvm_run.cc.o.d"
  "cvm_run"
  "cvm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
