file(REMOVE_RECURSE
  "libcvm_instr.a"
)
