# Empty compiler generated dependencies file for cvm_instr.
# This may be replaced when dependencies are built.
