file(REMOVE_RECURSE
  "CMakeFiles/cvm_instr.dir/binary_image.cc.o"
  "CMakeFiles/cvm_instr.dir/binary_image.cc.o.d"
  "libcvm_instr.a"
  "libcvm_instr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_instr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
