# Empty compiler generated dependencies file for cvm_common.
# This may be replaced when dependencies are built.
