file(REMOVE_RECURSE
  "CMakeFiles/cvm_common.dir/bitmap.cc.o"
  "CMakeFiles/cvm_common.dir/bitmap.cc.o.d"
  "CMakeFiles/cvm_common.dir/table.cc.o"
  "CMakeFiles/cvm_common.dir/table.cc.o.d"
  "libcvm_common.a"
  "libcvm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
