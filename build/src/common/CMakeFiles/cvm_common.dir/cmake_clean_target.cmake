file(REMOVE_RECURSE
  "libcvm_common.a"
)
