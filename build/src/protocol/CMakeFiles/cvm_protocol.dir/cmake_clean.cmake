file(REMOVE_RECURSE
  "CMakeFiles/cvm_protocol.dir/interval.cc.o"
  "CMakeFiles/cvm_protocol.dir/interval.cc.o.d"
  "libcvm_protocol.a"
  "libcvm_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
