
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/interval.cc" "src/protocol/CMakeFiles/cvm_protocol.dir/interval.cc.o" "gcc" "src/protocol/CMakeFiles/cvm_protocol.dir/interval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/cvm_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cvm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
