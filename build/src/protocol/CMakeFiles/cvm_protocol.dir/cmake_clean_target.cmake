file(REMOVE_RECURSE
  "libcvm_protocol.a"
)
