# Empty compiler generated dependencies file for cvm_protocol.
# This may be replaced when dependencies are built.
