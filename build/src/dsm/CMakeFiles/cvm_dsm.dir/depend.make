# Empty dependencies file for cvm_dsm.
# This may be replaced when dependencies are built.
