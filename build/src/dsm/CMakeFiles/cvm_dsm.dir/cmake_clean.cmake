file(REMOVE_RECURSE
  "CMakeFiles/cvm_dsm.dir/dsm.cc.o"
  "CMakeFiles/cvm_dsm.dir/dsm.cc.o.d"
  "CMakeFiles/cvm_dsm.dir/node.cc.o"
  "CMakeFiles/cvm_dsm.dir/node.cc.o.d"
  "libcvm_dsm.a"
  "libcvm_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
