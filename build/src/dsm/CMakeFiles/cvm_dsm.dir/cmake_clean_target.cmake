file(REMOVE_RECURSE
  "libcvm_dsm.a"
)
