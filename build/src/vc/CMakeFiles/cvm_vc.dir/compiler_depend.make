# Empty compiler generated dependencies file for cvm_vc.
# This may be replaced when dependencies are built.
