file(REMOVE_RECURSE
  "CMakeFiles/cvm_vc.dir/vector_clock.cc.o"
  "CMakeFiles/cvm_vc.dir/vector_clock.cc.o.d"
  "libcvm_vc.a"
  "libcvm_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
