file(REMOVE_RECURSE
  "libcvm_vc.a"
)
