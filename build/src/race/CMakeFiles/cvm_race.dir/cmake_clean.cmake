file(REMOVE_RECURSE
  "CMakeFiles/cvm_race.dir/detector.cc.o"
  "CMakeFiles/cvm_race.dir/detector.cc.o.d"
  "CMakeFiles/cvm_race.dir/postmortem.cc.o"
  "CMakeFiles/cvm_race.dir/postmortem.cc.o.d"
  "CMakeFiles/cvm_race.dir/race_report.cc.o"
  "CMakeFiles/cvm_race.dir/race_report.cc.o.d"
  "CMakeFiles/cvm_race.dir/replay.cc.o"
  "CMakeFiles/cvm_race.dir/replay.cc.o.d"
  "CMakeFiles/cvm_race.dir/trace_io.cc.o"
  "CMakeFiles/cvm_race.dir/trace_io.cc.o.d"
  "libcvm_race.a"
  "libcvm_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
