file(REMOVE_RECURSE
  "libcvm_race.a"
)
