
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/race/detector.cc" "src/race/CMakeFiles/cvm_race.dir/detector.cc.o" "gcc" "src/race/CMakeFiles/cvm_race.dir/detector.cc.o.d"
  "/root/repo/src/race/postmortem.cc" "src/race/CMakeFiles/cvm_race.dir/postmortem.cc.o" "gcc" "src/race/CMakeFiles/cvm_race.dir/postmortem.cc.o.d"
  "/root/repo/src/race/race_report.cc" "src/race/CMakeFiles/cvm_race.dir/race_report.cc.o" "gcc" "src/race/CMakeFiles/cvm_race.dir/race_report.cc.o.d"
  "/root/repo/src/race/replay.cc" "src/race/CMakeFiles/cvm_race.dir/replay.cc.o" "gcc" "src/race/CMakeFiles/cvm_race.dir/replay.cc.o.d"
  "/root/repo/src/race/trace_io.cc" "src/race/CMakeFiles/cvm_race.dir/trace_io.cc.o" "gcc" "src/race/CMakeFiles/cvm_race.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cvm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/cvm_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/cvm_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cvm_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
