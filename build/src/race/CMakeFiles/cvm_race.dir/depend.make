# Empty dependencies file for cvm_race.
# This may be replaced when dependencies are built.
