file(REMOVE_RECURSE
  "CMakeFiles/cvm_apps.dir/fft.cc.o"
  "CMakeFiles/cvm_apps.dir/fft.cc.o.d"
  "CMakeFiles/cvm_apps.dir/lu.cc.o"
  "CMakeFiles/cvm_apps.dir/lu.cc.o.d"
  "CMakeFiles/cvm_apps.dir/sor.cc.o"
  "CMakeFiles/cvm_apps.dir/sor.cc.o.d"
  "CMakeFiles/cvm_apps.dir/tsp.cc.o"
  "CMakeFiles/cvm_apps.dir/tsp.cc.o.d"
  "CMakeFiles/cvm_apps.dir/water.cc.o"
  "CMakeFiles/cvm_apps.dir/water.cc.o.d"
  "CMakeFiles/cvm_apps.dir/workload.cc.o"
  "CMakeFiles/cvm_apps.dir/workload.cc.o.d"
  "libcvm_apps.a"
  "libcvm_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
