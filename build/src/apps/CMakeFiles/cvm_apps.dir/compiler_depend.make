# Empty compiler generated dependencies file for cvm_apps.
# This may be replaced when dependencies are built.
