file(REMOVE_RECURSE
  "libcvm_apps.a"
)
