file(REMOVE_RECURSE
  "CMakeFiles/cvm_net.dir/message.cc.o"
  "CMakeFiles/cvm_net.dir/message.cc.o.d"
  "CMakeFiles/cvm_net.dir/network.cc.o"
  "CMakeFiles/cvm_net.dir/network.cc.o.d"
  "libcvm_net.a"
  "libcvm_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
