# Empty compiler generated dependencies file for cvm_net.
# This may be replaced when dependencies are built.
