file(REMOVE_RECURSE
  "libcvm_net.a"
)
