file(REMOVE_RECURSE
  "CMakeFiles/cvm_sim.dir/cost_model.cc.o"
  "CMakeFiles/cvm_sim.dir/cost_model.cc.o.d"
  "libcvm_sim.a"
  "libcvm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
