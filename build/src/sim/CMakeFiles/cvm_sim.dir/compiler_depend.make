# Empty compiler generated dependencies file for cvm_sim.
# This may be replaced when dependencies are built.
