file(REMOVE_RECURSE
  "libcvm_sim.a"
)
