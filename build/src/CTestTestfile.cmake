# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("vc")
subdirs("net")
subdirs("sim")
subdirs("mem")
subdirs("protocol")
subdirs("instr")
subdirs("race")
subdirs("dsm")
subdirs("apps")
