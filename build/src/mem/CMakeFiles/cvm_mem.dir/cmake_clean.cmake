file(REMOVE_RECURSE
  "CMakeFiles/cvm_mem.dir/diff.cc.o"
  "CMakeFiles/cvm_mem.dir/diff.cc.o.d"
  "CMakeFiles/cvm_mem.dir/page_table.cc.o"
  "CMakeFiles/cvm_mem.dir/page_table.cc.o.d"
  "CMakeFiles/cvm_mem.dir/shared_segment.cc.o"
  "CMakeFiles/cvm_mem.dir/shared_segment.cc.o.d"
  "libcvm_mem.a"
  "libcvm_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
