# Empty dependencies file for cvm_mem.
# This may be replaced when dependencies are built.
