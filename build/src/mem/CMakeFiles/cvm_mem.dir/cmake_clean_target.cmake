file(REMOVE_RECURSE
  "libcvm_mem.a"
)
