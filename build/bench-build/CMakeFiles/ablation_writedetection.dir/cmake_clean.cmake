file(REMOVE_RECURSE
  "../bench/ablation_writedetection"
  "../bench/ablation_writedetection.pdb"
  "CMakeFiles/ablation_writedetection.dir/ablation_writedetection.cc.o"
  "CMakeFiles/ablation_writedetection.dir/ablation_writedetection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_writedetection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
