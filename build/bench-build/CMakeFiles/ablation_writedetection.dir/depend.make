# Empty dependencies file for ablation_writedetection.
# This may be replaced when dependencies are built.
