# Empty compiler generated dependencies file for figure4_slowdown_scaling.
# This may be replaced when dependencies are built.
