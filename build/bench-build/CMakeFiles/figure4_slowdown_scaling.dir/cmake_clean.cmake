file(REMOVE_RECURSE
  "../bench/figure4_slowdown_scaling"
  "../bench/figure4_slowdown_scaling.pdb"
  "CMakeFiles/figure4_slowdown_scaling.dir/figure4_slowdown_scaling.cc.o"
  "CMakeFiles/figure4_slowdown_scaling.dir/figure4_slowdown_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_slowdown_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
