# Empty compiler generated dependencies file for table1_app_characteristics.
# This may be replaced when dependencies are built.
