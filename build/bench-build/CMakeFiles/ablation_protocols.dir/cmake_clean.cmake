file(REMOVE_RECURSE
  "../bench/ablation_protocols"
  "../bench/ablation_protocols.pdb"
  "CMakeFiles/ablation_protocols.dir/ablation_protocols.cc.o"
  "CMakeFiles/ablation_protocols.dir/ablation_protocols.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
