file(REMOVE_RECURSE
  "../bench/ablation_firstrace"
  "../bench/ablation_firstrace.pdb"
  "CMakeFiles/ablation_firstrace.dir/ablation_firstrace.cc.o"
  "CMakeFiles/ablation_firstrace.dir/ablation_firstrace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_firstrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
