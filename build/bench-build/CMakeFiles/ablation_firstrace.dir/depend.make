# Empty dependencies file for ablation_firstrace.
# This may be replaced when dependencies are built.
