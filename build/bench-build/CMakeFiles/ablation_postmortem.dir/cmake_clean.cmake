file(REMOVE_RECURSE
  "../bench/ablation_postmortem"
  "../bench/ablation_postmortem.pdb"
  "CMakeFiles/ablation_postmortem.dir/ablation_postmortem.cc.o"
  "CMakeFiles/ablation_postmortem.dir/ablation_postmortem.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
