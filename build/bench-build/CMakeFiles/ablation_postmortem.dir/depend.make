# Empty dependencies file for ablation_postmortem.
# This may be replaced when dependencies are built.
