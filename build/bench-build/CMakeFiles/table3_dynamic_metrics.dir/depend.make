# Empty dependencies file for table3_dynamic_metrics.
# This may be replaced when dependencies are built.
