file(REMOVE_RECURSE
  "../bench/table3_dynamic_metrics"
  "../bench/table3_dynamic_metrics.pdb"
  "CMakeFiles/table3_dynamic_metrics.dir/table3_dynamic_metrics.cc.o"
  "CMakeFiles/table3_dynamic_metrics.dir/table3_dynamic_metrics.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_dynamic_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
