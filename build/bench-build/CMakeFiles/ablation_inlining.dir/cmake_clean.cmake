file(REMOVE_RECURSE
  "../bench/ablation_inlining"
  "../bench/ablation_inlining.pdb"
  "CMakeFiles/ablation_inlining.dir/ablation_inlining.cc.o"
  "CMakeFiles/ablation_inlining.dir/ablation_inlining.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_inlining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
