file(REMOVE_RECURSE
  "../bench/ablation_eager_vs_lazy"
  "../bench/ablation_eager_vs_lazy.pdb"
  "CMakeFiles/ablation_eager_vs_lazy.dir/ablation_eager_vs_lazy.cc.o"
  "CMakeFiles/ablation_eager_vs_lazy.dir/ablation_eager_vs_lazy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_eager_vs_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
