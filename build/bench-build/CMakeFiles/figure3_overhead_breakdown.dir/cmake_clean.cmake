file(REMOVE_RECURSE
  "../bench/figure3_overhead_breakdown"
  "../bench/figure3_overhead_breakdown.pdb"
  "CMakeFiles/figure3_overhead_breakdown.dir/figure3_overhead_breakdown.cc.o"
  "CMakeFiles/figure3_overhead_breakdown.dir/figure3_overhead_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
