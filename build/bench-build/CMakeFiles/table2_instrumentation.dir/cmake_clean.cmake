file(REMOVE_RECURSE
  "../bench/table2_instrumentation"
  "../bench/table2_instrumentation.pdb"
  "CMakeFiles/table2_instrumentation.dir/table2_instrumentation.cc.o"
  "CMakeFiles/table2_instrumentation.dir/table2_instrumentation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_instrumentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
