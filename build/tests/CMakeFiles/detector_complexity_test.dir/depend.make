# Empty dependencies file for detector_complexity_test.
# This may be replaced when dependencies are built.
