file(REMOVE_RECURSE
  "CMakeFiles/detector_complexity_test.dir/race/detector_complexity_test.cc.o"
  "CMakeFiles/detector_complexity_test.dir/race/detector_complexity_test.cc.o.d"
  "detector_complexity_test"
  "detector_complexity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detector_complexity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
