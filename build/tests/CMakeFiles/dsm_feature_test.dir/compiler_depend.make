# Empty compiler generated dependencies file for dsm_feature_test.
# This may be replaced when dependencies are built.
