file(REMOVE_RECURSE
  "CMakeFiles/dsm_feature_test.dir/dsm/dsm_feature_test.cc.o"
  "CMakeFiles/dsm_feature_test.dir/dsm/dsm_feature_test.cc.o.d"
  "dsm_feature_test"
  "dsm_feature_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
