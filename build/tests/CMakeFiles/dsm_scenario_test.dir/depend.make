# Empty dependencies file for dsm_scenario_test.
# This may be replaced when dependencies are built.
