file(REMOVE_RECURSE
  "CMakeFiles/dsm_scenario_test.dir/dsm/dsm_scenario_test.cc.o"
  "CMakeFiles/dsm_scenario_test.dir/dsm/dsm_scenario_test.cc.o.d"
  "dsm_scenario_test"
  "dsm_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
