# Empty compiler generated dependencies file for postmortem_unit_test.
# This may be replaced when dependencies are built.
