file(REMOVE_RECURSE
  "CMakeFiles/postmortem_unit_test.dir/race/postmortem_unit_test.cc.o"
  "CMakeFiles/postmortem_unit_test.dir/race/postmortem_unit_test.cc.o.d"
  "postmortem_unit_test"
  "postmortem_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postmortem_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
