file(REMOVE_RECURSE
  "CMakeFiles/app_unit_test.dir/apps/app_unit_test.cc.o"
  "CMakeFiles/app_unit_test.dir/apps/app_unit_test.cc.o.d"
  "app_unit_test"
  "app_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
