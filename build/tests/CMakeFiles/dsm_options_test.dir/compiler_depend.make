# Empty compiler generated dependencies file for dsm_options_test.
# This may be replaced when dependencies are built.
