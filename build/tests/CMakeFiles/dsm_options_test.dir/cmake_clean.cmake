file(REMOVE_RECURSE
  "CMakeFiles/dsm_options_test.dir/dsm/dsm_options_test.cc.o"
  "CMakeFiles/dsm_options_test.dir/dsm/dsm_options_test.cc.o.d"
  "dsm_options_test"
  "dsm_options_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
