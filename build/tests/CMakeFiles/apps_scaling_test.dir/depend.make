# Empty dependencies file for apps_scaling_test.
# This may be replaced when dependencies are built.
