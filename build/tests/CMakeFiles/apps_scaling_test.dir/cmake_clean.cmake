file(REMOVE_RECURSE
  "CMakeFiles/apps_scaling_test.dir/apps/apps_scaling_test.cc.o"
  "CMakeFiles/apps_scaling_test.dir/apps/apps_scaling_test.cc.o.d"
  "apps_scaling_test"
  "apps_scaling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
