file(REMOVE_RECURSE
  "CMakeFiles/handles_test.dir/dsm/handles_test.cc.o"
  "CMakeFiles/handles_test.dir/dsm/handles_test.cc.o.d"
  "handles_test"
  "handles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/handles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
