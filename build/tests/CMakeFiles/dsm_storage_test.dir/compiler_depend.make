# Empty compiler generated dependencies file for dsm_storage_test.
# This may be replaced when dependencies are built.
