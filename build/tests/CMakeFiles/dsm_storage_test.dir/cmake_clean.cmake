file(REMOVE_RECURSE
  "CMakeFiles/dsm_storage_test.dir/dsm/dsm_storage_test.cc.o"
  "CMakeFiles/dsm_storage_test.dir/dsm/dsm_storage_test.cc.o.d"
  "dsm_storage_test"
  "dsm_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
