file(REMOVE_RECURSE
  "CMakeFiles/workload_metrics_test.dir/apps/workload_metrics_test.cc.o"
  "CMakeFiles/workload_metrics_test.dir/apps/workload_metrics_test.cc.o.d"
  "workload_metrics_test"
  "workload_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
