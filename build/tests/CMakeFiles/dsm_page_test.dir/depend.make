# Empty dependencies file for dsm_page_test.
# This may be replaced when dependencies are built.
