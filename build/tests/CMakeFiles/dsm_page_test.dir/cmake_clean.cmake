file(REMOVE_RECURSE
  "CMakeFiles/dsm_page_test.dir/dsm/dsm_page_test.cc.o"
  "CMakeFiles/dsm_page_test.dir/dsm/dsm_page_test.cc.o.d"
  "dsm_page_test"
  "dsm_page_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_page_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
