# Empty compiler generated dependencies file for dsm_lock_test.
# This may be replaced when dependencies are built.
