file(REMOVE_RECURSE
  "CMakeFiles/dsm_lock_test.dir/dsm/dsm_lock_test.cc.o"
  "CMakeFiles/dsm_lock_test.dir/dsm/dsm_lock_test.cc.o.d"
  "dsm_lock_test"
  "dsm_lock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
