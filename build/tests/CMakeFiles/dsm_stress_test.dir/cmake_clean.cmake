file(REMOVE_RECURSE
  "CMakeFiles/dsm_stress_test.dir/dsm/dsm_stress_test.cc.o"
  "CMakeFiles/dsm_stress_test.dir/dsm/dsm_stress_test.cc.o.d"
  "dsm_stress_test"
  "dsm_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
