# Empty dependencies file for dsm_stress_test.
# This may be replaced when dependencies are built.
