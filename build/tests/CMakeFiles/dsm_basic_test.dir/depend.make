# Empty dependencies file for dsm_basic_test.
# This may be replaced when dependencies are built.
