file(REMOVE_RECURSE
  "CMakeFiles/dsm_basic_test.dir/dsm/dsm_basic_test.cc.o"
  "CMakeFiles/dsm_basic_test.dir/dsm/dsm_basic_test.cc.o.d"
  "dsm_basic_test"
  "dsm_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
