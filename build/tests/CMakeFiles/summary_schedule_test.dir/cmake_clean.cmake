file(REMOVE_RECURSE
  "CMakeFiles/summary_schedule_test.dir/race/summary_schedule_test.cc.o"
  "CMakeFiles/summary_schedule_test.dir/race/summary_schedule_test.cc.o.d"
  "summary_schedule_test"
  "summary_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
