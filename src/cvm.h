// Umbrella header: everything a library user needs to build and run DSM
// applications with online race detection.
//
//   #include "src/cvm.h"
//
//   cvm::DsmOptions options;
//   cvm::DsmSystem system(options);
//   auto data = cvm::SharedArray<int32_t>::Alloc(system, "data", 1024);
//   cvm::RunResult result = system.Run([&](cvm::NodeContext& ctx) { ... });
#ifndef CVM_CVM_H_
#define CVM_CVM_H_

#include "src/dsm/dsm.h"       // DsmSystem, DsmOptions, RunResult
#include "src/dsm/handles.h"   // SharedArray, SharedVar, LocalArray
#include "src/dsm/node.h"      // NodeContext API
#include "src/race/postmortem.h"
#include "src/race/race_report.h"
#include "src/race/replay.h"
#include "src/race/trace_io.h"

#endif  // CVM_CVM_H_
