// Deterministic simulated-time model. The paper's performance numbers are
// relative (slowdown factors, overhead-breakdown percentages), so we model
// time with per-node logical clocks advanced by configurable per-event costs
// and synchronized Lamport-style at locks and barriers. Defaults are
// calibrated to the paper's platform class (250 MHz Alpha, 155 Mbit ATM).
#ifndef CVM_SIM_COST_MODEL_H_
#define CVM_SIM_COST_MODEL_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/check.h"

namespace cvm {

// All costs in nanoseconds of simulated time.
struct CostParams {
  // Application-side costs.
  double base_access_ns = 12;     // An ordinary load/store plus surrounding work.
  double compute_unit_ns = 40;    // One unit of app-declared computation.

  // Instrumentation (Figure 3 "Proc Call" and "Access Check"). ATOM cannot
  // inline, so every candidate access pays a call plus the analysis body.
  double proc_call_ns = 250;
  double access_check_ns = 200;

  // Consistency-protocol software costs.
  double page_fault_ns = 12000;
  double lock_op_ns = 4000;
  double barrier_op_ns = 8000;
  double diff_word_ns = 25;

  // Race-detection costs ("CVM Mods", "Intervals", "Bitmaps").
  double notice_setup_ns = 250;       // Creating one read/write notice + bitmap.
  // Clearing the statically-allocated per-page access bitmaps at each epoch
  // boundary ("All data structures, including bitmaps, are statically
  // allocated" — §4); ~2x128B of zeroing per page on the modelled CPU.
  double bitmap_clear_page_ns = 8000;
  double interval_setup_ns = 1200;    // Extra structure setup per interval.
  double interval_cmp_ns = 60;        // One version-vector concurrency test.
  double page_overlap_ns = 35;        // Per page-pair overlap probe.
  double bitmap_cmp_word_ns = 1.6;    // Per 64-bit word of bitmap comparison.
  // Forking/joining one worker of the sharded check-list build (thread wake,
  // cache warm-up, result hand-back). Charged per shard actually used, so
  // over-sharding a small epoch visibly costs more than it saves.
  double shard_fork_ns = 2500;
  // Hierarchical-barrier costs. tree_merge_ns is the software cost of
  // folding one child's combine message into the parent's state (log merge
  // + VC max), charged per child per barrier at every interior node of the
  // combine tree. page_index_ns is the per-entry cost of building the
  // page -> accessing-intervals index the tree's fragment builder uses in
  // place of the all-pairs scan.
  double tree_merge_ns = 1800;
  double page_index_ns = 20;

  // Network (155 Mbit ATM with user-level UDP protocols). Latency is set at
  // the optimistic end so that, at our scaled-down input sizes, the
  // computation-to-communication balance matches the paper's full-size runs.
  double msg_latency_ns = 60000;
  double per_byte_ns = 52;

  double MessageCost(size_t bytes) const {
    return msg_latency_ns + per_byte_ns * static_cast<double>(bytes);
  }
};

// Overhead attribution buckets, matching Figure 3's categories exactly.
enum class Bucket : int {
  kCvmMods = 0,     // Data-structure setup + read-notice bandwidth.
  kProcCall = 1,    // Instrumentation procedure-call overhead.
  kAccessCheck = 2, // Shared-address check + bitmap set.
  kIntervals = 3,   // Concurrent-interval comparison at the master.
  kBitmaps = 4,     // Extra barrier round + bitmap comparisons.
  kNone = 5,        // Base work; not race-detection overhead.
};

inline constexpr int kNumBuckets = 5;

const char* BucketName(Bucket bucket);

// Metrics-registry counter name for a bucket's accumulated overhead, e.g.
// "overhead.cvm_mods_ns". Each node publishes per-epoch deltas of these at
// barriers; tools/trace_summary maps them back to Figure 3's buckets.
const char* BucketMetricName(Bucket bucket);

// One node's simulated clock plus per-bucket overhead accounting. Guarded
// externally by the node's mutex.
class NodeTiming {
 public:
  double now_ns() const { return now_ns_; }

  // Advances the clock, attributing the time to `bucket`.
  void Charge(Bucket bucket, double ns) {
    CVM_CHECK_GE(ns, 0.0);
    now_ns_ += ns;
    if (bucket != Bucket::kNone) {
      overhead_ns_[static_cast<int>(bucket)] += ns;
    }
  }

  // Lamport receive rule: the clock cannot be behind an observed event.
  void ObserveAtLeast(double t_ns) {
    if (t_ns > now_ns_) {
      now_ns_ = t_ns;
    }
  }

  double overhead_ns(Bucket bucket) const {
    return overhead_ns_[static_cast<int>(bucket)];
  }
  double total_overhead_ns() const {
    double total = 0;
    for (double v : overhead_ns_) {
      total += v;
    }
    return total;
  }

  void AddOverheadFrom(const NodeTiming& other) {
    for (int i = 0; i < kNumBuckets; ++i) {
      overhead_ns_[i] += other.overhead_ns_[i];
    }
  }

 private:
  double now_ns_ = 0;
  std::array<double, kNumBuckets> overhead_ns_ = {};
};

}  // namespace cvm

#endif  // CVM_SIM_COST_MODEL_H_
