#include "src/sim/cost_model.h"

namespace cvm {

const char* BucketName(Bucket bucket) {
  switch (bucket) {
    case Bucket::kCvmMods:
      return "CVM Mods";
    case Bucket::kProcCall:
      return "Proc Call";
    case Bucket::kAccessCheck:
      return "Access Check";
    case Bucket::kIntervals:
      return "Intervals";
    case Bucket::kBitmaps:
      return "Bitmaps";
    case Bucket::kNone:
      return "Base";
  }
  return "?";
}

}  // namespace cvm
