#include "src/sim/cost_model.h"

namespace cvm {

const char* BucketName(Bucket bucket) {
  switch (bucket) {
    case Bucket::kCvmMods:
      return "CVM Mods";
    case Bucket::kProcCall:
      return "Proc Call";
    case Bucket::kAccessCheck:
      return "Access Check";
    case Bucket::kIntervals:
      return "Intervals";
    case Bucket::kBitmaps:
      return "Bitmaps";
    case Bucket::kNone:
      return "Base";
  }
  return "?";
}

const char* BucketMetricName(Bucket bucket) {
  switch (bucket) {
    case Bucket::kCvmMods:
      return "overhead.cvm_mods_ns";
    case Bucket::kProcCall:
      return "overhead.proc_call_ns";
    case Bucket::kAccessCheck:
      return "overhead.access_check_ns";
    case Bucket::kIntervals:
      return "overhead.intervals_ns";
    case Bucket::kBitmaps:
      return "overhead.bitmaps_ns";
    case Bucket::kNone:
      return "overhead.base_ns";
  }
  return "overhead.unknown_ns";
}

}  // namespace cvm
