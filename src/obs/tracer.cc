#include "src/obs/tracer.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/common/check.h"

namespace cvm::obs {

namespace {

// Escapes a string for inclusion in a JSON string literal. Names are string
// literals under our control, but symbol-derived argument strings may carry
// arbitrary bytes.
std::string EscapeJson(const char* s) {
  std::string out;
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool IsFlowPhase(char phase) { return phase == 's' || phase == 't' || phase == 'f'; }

// One renderable record: an event projected onto a (pid, tid) track.
struct OutRecord {
  int pid = 0;
  NodeId tid = 0;
  double ts_us = 0;
  double dur_us = 0;
  const TraceEvent* event = nullptr;
};

void AppendArgs(std::string& json, const TraceEvent& e) {
  json += "\"args\":{";
  bool first = true;
  auto comma = [&] {
    if (!first) {
      json += ",";
    }
    first = false;
  };
  if (e.epoch >= 0) {
    comma();
    json += "\"epoch\":" + std::to_string(e.epoch);
  }
  if (e.arg_name != nullptr) {
    comma();
    json += "\"" + EscapeJson(e.arg_name) + "\":" + std::to_string(e.arg_value);
  }
  if (e.arg2_name != nullptr) {
    comma();
    json += "\"" + EscapeJson(e.arg2_name) + "\":" + std::to_string(e.arg2_value);
  }
  if (e.str_arg_name != nullptr && e.str_arg_value != nullptr) {
    comma();
    json += "\"" + EscapeJson(e.str_arg_name) + "\":\"" + EscapeJson(e.str_arg_value) + "\"";
  }
  json += "}";
}

}  // namespace

Tracer::Tracer(int num_nodes, const TraceConfig& config)
    : config_(config), origin_(std::chrono::steady_clock::now()) {
  CVM_CHECK_GT(num_nodes, 0);
  CVM_CHECK_GT(config_.ring_capacity, 0u);
  CVM_CHECK_GT(config_.sample_period, 0u);
  rings_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    rings_.push_back(std::make_unique<Ring>());
  }
}

uint64_t Tracer::WallNowNs() const {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - origin_)
                                   .count());
}

void Tracer::Emit(TraceEvent event) {
  const NodeId node = std::clamp<NodeId>(event.node, 0, static_cast<NodeId>(rings_.size()) - 1);
  event.node = node;
  Ring& ring = *rings_[static_cast<size_t>(node)];
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.seq++ % config_.sample_period != 0) {
    ++ring.sampled_out;
    return;
  }
  if (event.wall_ts_ns == 0) {
    event.wall_ts_ns = WallNowNs();
  }
  ++ring.accepted;
  if (ring.count == ring.slots.size() && ring.slots.size() < config_.ring_capacity) {
    // Grow lazily up to capacity. Storage only wraps once it is
    // capacity-sized, so start is necessarily 0 here and push_back lands at
    // index count. (Drained slots below capacity are reused by the branch
    // below, never re-counted.)
    ring.slots.push_back(event);
    ++ring.count;
    return;
  }
  if (ring.count < ring.slots.size()) {
    ring.slots[(ring.start + ring.count) % ring.slots.size()] = event;
    ++ring.count;
    return;
  }
  // Full: overwrite the oldest.
  ring.slots[ring.start] = event;
  ring.start = (ring.start + 1) % ring.slots.size();
  ++ring.dropped;
}

void Tracer::Drain(NodeId node) {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, static_cast<NodeId>(rings_.size()));
  Ring& ring = *rings_[static_cast<size_t>(node)];
  std::vector<TraceEvent> batch;
  {
    std::lock_guard<std::mutex> lock(ring.mu);
    batch.reserve(ring.count);
    for (size_t i = 0; i < ring.count; ++i) {
      batch.push_back(ring.slots[(ring.start + i) % ring.slots.size()]);
    }
    ring.start = 0;
    ring.count = 0;
  }
  if (batch.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(drained_mu_);
  drained_.insert(drained_.end(), batch.begin(), batch.end());
}

void Tracer::DrainAll() {
  for (NodeId n = 0; n < static_cast<NodeId>(rings_.size()); ++n) {
    Drain(n);
  }
}

void Tracer::Reset() {
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    ring->start = 0;
    ring->count = 0;
    ring->seq = 0;
    ring->dropped = 0;
    ring->sampled_out = 0;
    ring->accepted = 0;
    // Keep the grown slot storage: reusing it is the point of a warm reset.
  }
  {
    std::lock_guard<std::mutex> lock(drained_mu_);
    drained_.clear();
  }
  next_flow_id_.store(1, std::memory_order_relaxed);
  origin_ = std::chrono::steady_clock::now();
}

size_t Tracer::RingSize(NodeId node) const {
  CVM_CHECK_GE(node, 0);
  CVM_CHECK_LT(node, static_cast<NodeId>(rings_.size()));
  const Ring& ring = *rings_[static_cast<size_t>(node)];
  std::lock_guard<std::mutex> lock(ring.mu);
  return ring.count;
}

uint64_t Tracer::TotalDropped() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

uint64_t Tracer::TotalSampledOut() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->sampled_out;
  }
  return total;
}

uint64_t Tracer::TotalEmitted() const {
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring->mu);
    total += ring->accepted;
  }
  return total;
}

std::vector<TraceEvent> Tracer::Collected() {
  DrainAll();
  std::lock_guard<std::mutex> lock(drained_mu_);
  return drained_;
}

std::string Tracer::ToChromeJson() {
  const std::vector<TraceEvent> events = Collected();

  // Flow chains must never dangle in the export: ring overflow or sampling
  // can lose any step independently, and a 't'/'f' whose 's' is gone would
  // bind to nothing (or, worse, to a later chain reusing the id). Keep only
  // chains that still have both their start and at least one later step;
  // every other flow event is suppressed.
  std::set<uint64_t> chains_with_start;
  std::set<uint64_t> chains_with_step;
  for (const TraceEvent& e : events) {
    if (!IsFlowPhase(e.phase) || e.flow_id == 0) {
      continue;
    }
    (e.phase == 's' ? chains_with_start : chains_with_step).insert(e.flow_id);
  }

  // Project each event onto its tracks: pid 0 = simulated time (only events
  // that carry a simulated timestamp), pid 1 = wall time (every event).
  // Flow events are the exception: they appear on exactly one track
  // (simulated when timestamped, wall otherwise) — a chain duplicated onto
  // both tracks would have two 's' steps with one id, which is malformed.
  std::vector<OutRecord> records;
  records.reserve(events.size() * 2);
  for (const TraceEvent& e : events) {
    if (IsFlowPhase(e.phase)) {
      if (e.flow_id == 0 || chains_with_start.count(e.flow_id) == 0 ||
          chains_with_step.count(e.flow_id) == 0) {
        continue;
      }
      if (e.sim_ts_ns >= 0) {
        records.push_back(OutRecord{0, e.node, e.sim_ts_ns / 1000.0, 0, &e});
      } else {
        records.push_back(
            OutRecord{1, e.node, static_cast<double>(e.wall_ts_ns) / 1000.0, 0, &e});
      }
      continue;
    }
    if (e.sim_ts_ns >= 0) {
      records.push_back(OutRecord{0, e.node, e.sim_ts_ns / 1000.0, e.sim_dur_ns / 1000.0, &e});
    }
    records.push_back(OutRecord{1, e.node,
                                static_cast<double>(e.wall_ts_ns) / 1000.0,
                                static_cast<double>(e.wall_dur_ns) / 1000.0, &e});
  }
  std::stable_sort(records.begin(), records.end(), [](const OutRecord& a, const OutRecord& b) {
    if (a.pid != b.pid) {
      return a.pid < b.pid;
    }
    if (a.tid != b.tid) {
      return a.tid < b.tid;
    }
    return a.ts_us < b.ts_us;
  });

  std::string json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Track-naming metadata.
  const char* pid_names[] = {"simulated time", "wall time"};
  for (int pid = 0; pid < 2; ++pid) {
    json += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
            ",\"tid\":0,\"args\":{\"name\":\"" + pid_names[pid] + "\"}},\n";
    for (int n = 0; n < num_nodes(); ++n) {
      json += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
              ",\"tid\":" + std::to_string(n) + ",\"args\":{\"name\":\"node " +
              std::to_string(n) + "\"}},\n";
    }
  }

  char buf[64];
  for (size_t i = 0; i < records.size(); ++i) {
    const OutRecord& r = records[i];
    const TraceEvent& e = *r.event;
    json += "{\"name\":\"" + EscapeJson(e.name) + "\",\"cat\":\"" + EscapeJson(e.cat) +
            "\",\"ph\":\"" + e.phase + "\",\"pid\":" + std::to_string(r.pid) +
            ",\"tid\":" + std::to_string(r.tid);
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f", r.ts_us);
    json += buf;
    if (e.phase == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", r.dur_us);
      json += buf;
    }
    if (IsFlowPhase(e.phase)) {
      // Chain id; 'f' binds to its enclosing slice ("bp":"e") so the final
      // arrow lands on the receiver's span, not after it.
      std::snprintf(buf, sizeof(buf), ",\"id\":\"0x%llx\"",
                    static_cast<unsigned long long>(e.flow_id));
      json += buf;
      if (e.phase == 'f') {
        json += ",\"bp\":\"e\"";
      }
    }
    json += ",";
    if (e.phase == 'C') {
      // Counter events plot their numeric arguments as a stacked series.
      std::string args = "\"args\":{\"" +
                         EscapeJson(e.arg_name != nullptr ? e.arg_name : "value") +
                         "\":" + std::to_string(e.arg_value) + "}";
      json += args;
    } else {
      AppendArgs(json, e);
    }
    json += i + 1 < records.size() ? "},\n" : "}\n";
  }
  if (records.empty()) {
    // Every real event was suppressed or sampled out; the metadata block's
    // trailing comma would otherwise make the array invalid JSON.
    json.erase(json.size() - 2, 1);
  }
  json += "]}\n";
  return json;
}

bool Tracer::WriteChromeJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ToChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace cvm::obs
