// Metrics registry: named counters, gauges, and log2-bucketed histograms,
// snapshotted into a per-barrier-epoch time series and exported as CSV or
// JSON. Metric objects are created on first use and never move, so hot
// paths resolve a pointer once and then update with relaxed atomics.
#ifndef CVM_OBS_METRICS_H_
#define CVM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace cvm::obs {

class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

// Log-scale histogram: observation v lands in bucket bit_width(v), i.e.
// bucket b covers [2^(b-1), 2^b). Suited to long-tailed distributions like
// message latency or diff size.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;  // Bucket 0 holds v == 0.

  void Observe(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  uint64_t bucket(int b) const { return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create; returned pointers are stable for the registry lifetime.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name);

  // Appends one row holding the current (cumulative) value of every metric.
  // Called once per metrics interval at the barrier master.
  void SnapshotEpoch(EpochId epoch, double sim_time_ns);

  size_t NumRows() const;

  // Per-epoch table. Counter and histogram count/sum columns are deltas
  // between consecutive snapshots (per-epoch values); gauges and histogram
  // max are the value at snapshot time.
  std::string ToCsv() const;
  std::string ToJson() const;
  bool WriteCsv(const std::string& path) const;
  bool WriteJson(const std::string& path) const;

  // Clears all metric values and snapshot rows (multi-run tools).
  void Reset();

 private:
  struct HistSnap {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
  };
  struct Row {
    EpochId epoch = -1;
    double sim_time_ns = 0;
    uint64_t wall_time_ns = 0;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistSnap> histograms;
  };

  // Column layout shared by the CSV and JSON emitters: one emitted row per
  // snapshot with per-epoch deltas already applied.
  std::vector<std::string> ColumnNamesLocked() const;
  std::vector<std::vector<double>> DeltaTableLocked() const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::vector<Row> rows_;
  std::chrono::steady_clock::time_point origin_;
};

}  // namespace cvm::obs

#endif  // CVM_OBS_METRICS_H_
