// Causal trace context: a tiny header stamped onto every DSM message when
// flow tracing is active, so exported traces can draw sender → receiver
// arrows (Perfetto flow events) and offline tools can reconstruct causal
// chains (lock-grant forwarding, barrier fans, detection rounds).
//
// The struct itself is always compiled (it is an inert field of Message);
// stamping, emission, and wire-byte charging are all gated on
// obs::kObsCompiledIn and TraceConfig::flow_events, so tracing-off runs stay
// byte-identical to a build without observability.
#ifndef CVM_OBS_TRACE_CONTEXT_H_
#define CVM_OBS_TRACE_CONTEXT_H_

#include <cstddef>
#include <cstdint>

#include "src/common/types.h"

namespace cvm::obs {

struct TraceContext {
  NodeId origin = -1;      // Node that started the causal chain.
  EpochId epoch = -1;      // Origin's epoch when the chain started.
  uint64_t causal_id = 0;  // Globally unique chain id; 0 = unstamped.

  // Model-side annotations — they ride along in-process but do not travel on
  // the modeled wire (kTraceContextWireBytes below excludes them).
  uint32_t hop = 0;          // 0 at the chain head; +1 per same-kind forward.
  uint64_t parent_id = 0;    // Chain being handled when this one was started.
  uint64_t send_sim_ns = 0;  // Sender's simulated clock at the (re)send.

  bool stamped() const { return causal_id != 0; }
};

// Wire cost of the context when it travels: origin (4) + epoch (4) +
// causal id (8). Charged by the network at send time, and only when flow
// tracing is active — Figure-4 byte accounting stays honest either way.
inline constexpr size_t kTraceContextWireBytes = 16;

}  // namespace cvm::obs

#endif  // CVM_OBS_TRACE_CONTEXT_H_
