// RAII complete-span ('X') helper: captures simulated + wall time at
// construction, emits one event at destruction. A null tracer makes both
// ends a single branch; under -DCVM_OBS=OFF the whole class folds away.
// Header-only so every layer (protocol engines, lock manager, barrier
// coordinator, node core) traces with the same idiom.
#ifndef CVM_OBS_SPAN_H_
#define CVM_OBS_SPAN_H_

#include "src/common/types.h"
#include "src/obs/tracer.h"
#include "src/sim/cost_model.h"

namespace cvm::obs {

class Span {
 public:
  Span(Tracer* tracer, NodeId node, const char* name, const char* cat,
       const NodeTiming& timing, EpochId epoch)
      : tracer_(tracer), timing_(timing) {
    if constexpr (!kObsCompiledIn) {
      return;
    }
    if (tracer_ == nullptr) {
      return;
    }
    event_.name = name;
    event_.cat = cat;
    event_.phase = 'X';
    event_.node = node;
    event_.epoch = epoch;
    sim_start_ns_ = timing_.now_ns();
    wall_start_ns_ = tracer_->WallNowNs();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void SetArg(const char* name, uint64_t value) {
    event_.arg_name = name;
    event_.arg_value = value;
  }

  ~Span() {
    if constexpr (!kObsCompiledIn) {
      return;
    }
    if (tracer_ == nullptr) {
      return;
    }
    event_.sim_ts_ns = sim_start_ns_;
    event_.sim_dur_ns = timing_.now_ns() - sim_start_ns_;
    event_.wall_ts_ns = wall_start_ns_;
    event_.wall_dur_ns = tracer_->WallNowNs() - wall_start_ns_;
    tracer_->Emit(event_);
  }

 private:
  Tracer* const tracer_;
  const NodeTiming& timing_;
  TraceEvent event_;
  double sim_start_ns_ = 0;
  uint64_t wall_start_ns_ = 0;
};

}  // namespace cvm::obs

#endif  // CVM_OBS_SPAN_H_
