// Structured event tracer: one fixed-capacity ring buffer per node, written
// by that node's app/service threads under a per-ring mutex (uncontended in
// practice — "lock-free-ish"), drained into a global store at barriers, and
// exported as Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing.
//
// Every event can carry both a simulated timestamp (the cost model's
// deterministic clock) and a wall timestamp; the exporter renders them as
// two separate process tracks ("simulated time" pid 0, "wall time" pid 1)
// with one thread track per node in each.
#ifndef CVM_OBS_TRACER_H_
#define CVM_OBS_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/obs/trace_config.h"

namespace cvm::obs {

// Event names and categories must be string literals (or otherwise outlive
// the tracer): events store the pointers, never copies.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  // 'X' = complete span, 'i' = instant, 'C' = counter, and the Perfetto flow
  // phases 's' (start), 't' (step), 'f' (finish) which carry flow_id.
  char phase = 'i';
  NodeId node = 0;         // Thread track within each process track.
  EpochId epoch = -1;      // -1 = not epoch-scoped (omitted from args).

  // Causal chain id for flow-phase events (0 otherwise). The exporter binds
  // same-id steps into one arrow chain and drops any chain whose 's' step
  // was lost to ring overflow or sampling — flow ids never dangle.
  uint64_t flow_id = 0;

  double sim_ts_ns = -1;   // < 0: event appears on the wall track only.
  double sim_dur_ns = 0;
  uint64_t wall_ts_ns = 0; // 0: filled by Emit() at emission time.
  uint64_t wall_dur_ns = 0;

  // Optional numeric and string arguments (names are literals too).
  const char* arg_name = nullptr;
  uint64_t arg_value = 0;
  const char* arg2_name = nullptr;
  uint64_t arg2_value = 0;
  const char* str_arg_name = nullptr;
  const char* str_arg_value = nullptr;
};

class Tracer {
 public:
  Tracer(int num_nodes, const TraceConfig& config);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  int num_nodes() const { return static_cast<int>(rings_.size()); }
  const TraceConfig& config() const { return config_; }

  // True when messages should carry a TraceContext and emit flow events.
  bool flows_enabled() const { return config_.trace_enabled && config_.flow_events; }

  // Allocates a tracer-wide unique causal id for a new flow chain. Never 0.
  uint64_t NextFlowId() { return next_flow_id_.fetch_add(1, std::memory_order_relaxed); }

  // Nanoseconds of wall time since tracer construction.
  uint64_t WallNowNs() const;

  // Appends to the ring of event.node (clamped to a valid ring). Applies
  // sampling; fills wall_ts_ns if unset. Overwrites the oldest event when
  // the ring is full.
  void Emit(TraceEvent event);

  // Moves the ring's contents (in emission order) to the global store.
  // Called by each node at barriers so rings only need to hold one epoch.
  void Drain(NodeId node);
  void DrainAll();

  // Events currently buffered in one ring (not yet drained).
  size_t RingSize(NodeId node) const;
  // Events overwritten before they could be drained, and events removed by
  // sampling, across all rings.
  uint64_t TotalDropped() const;
  uint64_t TotalSampledOut() const;
  // Events accepted into rings (post-sampling) since construction.
  uint64_t TotalEmitted() const;

  // Drains all rings and returns a copy of every collected event.
  std::vector<TraceEvent> Collected();

  // Returns the tracer to its just-constructed state: every ring emptied,
  // all drop/sample/accept counters zeroed, the drained store cleared, flow
  // ids restarting from 1, and the wall-clock origin re-anchored to now.
  // Call only while no node threads are emitting (between runs).
  void Reset();

  // Chrome trace-event JSON ("traceEvents" array form plus metadata).
  // Events are sorted by (pid, tid, ts) so every track is monotone.
  std::string ToChromeJson();
  bool WriteChromeJson(const std::string& path);

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<TraceEvent> slots;  // Capacity-sized circular buffer.
    size_t start = 0;
    size_t count = 0;
    uint64_t seq = 0;          // Pre-sampling emission counter.
    uint64_t dropped = 0;      // Overwritten before drain.
    uint64_t sampled_out = 0;  // Removed by sample_period.
    uint64_t accepted = 0;
  };

  TraceConfig config_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::chrono::steady_clock::time_point origin_;
  std::atomic<uint64_t> next_flow_id_{1};

  mutable std::mutex drained_mu_;
  std::vector<TraceEvent> drained_;
};

}  // namespace cvm::obs

#endif  // CVM_OBS_TRACER_H_
