// Configuration for the observability layer (tracing + metrics). The whole
// layer can be compiled out with -DCVM_OBS=OFF (which defines
// CVM_OBS_ENABLED=0): every instrumentation site is guarded by
// `if constexpr (obs::kObsCompiledIn)`, so a disabled build carries no
// branches, no pointers chased, and no code at the hot sites.
#ifndef CVM_OBS_TRACE_CONFIG_H_
#define CVM_OBS_TRACE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#ifndef CVM_OBS_ENABLED
#define CVM_OBS_ENABLED 1
#endif

namespace cvm::obs {

inline constexpr bool kObsCompiledIn = CVM_OBS_ENABLED != 0;

struct TraceConfig {
  // Event tracing (Chrome trace-event JSON, viewable in Perfetto).
  bool trace_enabled = false;
  // Per-epoch metrics time series (CSV/JSON).
  bool metrics_enabled = false;

  // Stamp a TraceContext on every DSM message and emit Perfetto flow events
  // ('s'/'t'/'f') linking the sender's and receiver's tracks. Only active
  // together with trace_enabled. Adds kTraceContextWireBytes to each
  // message's modeled wire size while active.
  bool flow_events = true;

  // Keep every Nth event per node ring (1 = keep all). Sampling is safe for
  // the exported format because spans are emitted as single complete ('X')
  // events, never as begin/end pairs that could be separated.
  uint32_t sample_period = 1;

  // Per-node ring capacity in events. The ring is drained at every barrier;
  // overflow between barriers overwrites the oldest events and counts them
  // as dropped.
  size_t ring_capacity = 1 << 14;

  // Snapshot the metrics registry every N barrier epochs (1 = every epoch).
  int metrics_interval = 1;

  bool enabled() const { return trace_enabled || metrics_enabled; }
};

}  // namespace cvm::obs

#endif  // CVM_OBS_TRACE_CONFIG_H_
