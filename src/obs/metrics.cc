#include "src/obs/metrics.h"

#include <bit>
#include <cstdio>

namespace cvm::obs {

void Histogram::Observe(uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen && !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
  buckets_[static_cast<size_t>(std::bit_width(v))].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry::MetricsRegistry() : origin_(std::chrono::steady_clock::now()) {}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

void MetricsRegistry::SnapshotEpoch(EpochId epoch, double sim_time_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  Row row;
  row.epoch = epoch;
  row.sim_time_ns = sim_time_ns;
  row.wall_time_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                           origin_)
          .count());
  for (const auto& [name, c] : counters_) {
    row.counters[name] = c->value();
  }
  for (const auto& [name, g] : gauges_) {
    row.gauges[name] = g->value();
  }
  for (const auto& [name, h] : histograms_) {
    row.histograms[name] = HistSnap{h->count(), h->sum(), h->max()};
  }
  rows_.push_back(std::move(row));
}

size_t MetricsRegistry::NumRows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

std::vector<std::string> MetricsRegistry::ColumnNamesLocked() const {
  // Union across rows: metrics created mid-run appear in later rows only.
  std::map<std::string, int> seen;  // name -> 0 counter, 1 gauge, 2 histogram
  for (const Row& row : rows_) {
    for (const auto& [name, v] : row.counters) {
      (void)v;
      seen.emplace(name, 0);
    }
    for (const auto& [name, v] : row.gauges) {
      (void)v;
      seen.emplace(name, 1);
    }
    for (const auto& [name, v] : row.histograms) {
      (void)v;
      seen.emplace(name, 2);
    }
  }
  std::vector<std::string> columns = {"epoch", "sim_time_ns", "wall_time_ns"};
  for (const auto& [name, kind] : seen) {
    if (kind == 0 || kind == 1) {
      columns.push_back(name);
    } else {
      columns.push_back(name + ".count");
      columns.push_back(name + ".sum");
      columns.push_back(name + ".max");
    }
  }
  return columns;
}

std::vector<std::vector<double>> MetricsRegistry::DeltaTableLocked() const {
  const std::vector<std::string> columns = ColumnNamesLocked();
  std::vector<std::vector<double>> table;
  table.reserve(rows_.size());
  const Row* prev = nullptr;
  for (const Row& row : rows_) {
    std::vector<double> out;
    out.reserve(columns.size());
    for (const std::string& column : columns) {
      if (column == "epoch") {
        out.push_back(static_cast<double>(row.epoch));
      } else if (column == "sim_time_ns") {
        out.push_back(row.sim_time_ns);
      } else if (column == "wall_time_ns") {
        out.push_back(static_cast<double>(row.wall_time_ns));
      } else if (auto c = row.counters.find(column); c != row.counters.end()) {
        uint64_t base = 0;
        if (prev != nullptr) {
          if (auto p = prev->counters.find(column); p != prev->counters.end()) {
            base = p->second;
          }
        }
        out.push_back(static_cast<double>(c->second - base));
      } else if (auto g = row.gauges.find(column); g != row.gauges.end()) {
        out.push_back(static_cast<double>(g->second));
      } else {
        // Histogram sub-column "name.count|sum|max".
        const size_t dot = column.rfind('.');
        const std::string base_name = column.substr(0, dot);
        const std::string field = column.substr(dot + 1);
        auto h = row.histograms.find(base_name);
        if (h == row.histograms.end()) {
          out.push_back(0);
          continue;
        }
        HistSnap prev_snap;
        if (prev != nullptr) {
          if (auto p = prev->histograms.find(base_name); p != prev->histograms.end()) {
            prev_snap = p->second;
          }
        }
        if (field == "count") {
          out.push_back(static_cast<double>(h->second.count - prev_snap.count));
        } else if (field == "sum") {
          out.push_back(static_cast<double>(h->second.sum - prev_snap.sum));
        } else {
          out.push_back(static_cast<double>(h->second.max));
        }
      }
    }
    table.push_back(std::move(out));
    prev = &row;
  }
  return table;
}

namespace {

std::string FormatNumber(double v) {
  char buf[32];
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

std::string MetricsRegistry::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<std::string> columns = ColumnNamesLocked();
  std::string csv;
  for (size_t i = 0; i < columns.size(); ++i) {
    csv += columns[i];
    csv += i + 1 < columns.size() ? "," : "\n";
  }
  for (const std::vector<double>& row : DeltaTableLocked()) {
    for (size_t i = 0; i < row.size(); ++i) {
      csv += FormatNumber(row[i]);
      csv += i + 1 < row.size() ? "," : "\n";
    }
  }
  return csv;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<std::string> columns = ColumnNamesLocked();
  const std::vector<std::vector<double>> table = DeltaTableLocked();
  std::string json = "{\"epochs\":[\n";
  for (size_t r = 0; r < table.size(); ++r) {
    json += "{";
    for (size_t i = 0; i < columns.size(); ++i) {
      json += "\"" + columns[i] + "\":" + FormatNumber(table[r][i]);
      if (i + 1 < columns.size()) {
        json += ",";
      }
    }
    json += r + 1 < table.size() ? "},\n" : "}\n";
  }
  json += "]}\n";
  return json;
}

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool MetricsRegistry::WriteCsv(const std::string& path) const { return WriteFile(path, ToCsv()); }

bool MetricsRegistry::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
  rows_.clear();
  origin_ = std::chrono::steady_clock::now();
}

}  // namespace cvm::obs
