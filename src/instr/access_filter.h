// The runtime half of the ATOM instrumentation (§4): the analysis routine
// that every instrumented load/store calls. It decides — by comparing the
// access address against the shared data segment bounds — whether the access
// touches shared memory, and if so which page/word, so the caller can set
// the per-interval access bitmap.
//
// The simulated process address space places the shared segment and private
// (but not statically provable private) data at disjoint ranges, so the
// check is the same bounds comparison the paper performs.
#ifndef CVM_INSTR_ACCESS_FILTER_H_
#define CVM_INSTR_ACCESS_FILTER_H_

#include <cstdint>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/instr/counters.h"

namespace cvm {

// Simulated virtual-address layout.
inline constexpr uint64_t kSharedSegmentBase = 0x4000'0000ull;
inline constexpr uint64_t kPrivateHeapBase = 0x8000'0000'0000ull;

inline constexpr uint64_t SharedVa(GlobalAddr addr) { return kSharedSegmentBase + addr; }

class AccessFilter {
 public:
  AccessFilter(uint64_t page_size, uint64_t shared_bytes)
      : page_size_(page_size), shared_limit_(kSharedSegmentBase + shared_bytes) {
    CVM_CHECK_GT(page_size, 0u);
  }

  struct Result {
    bool shared = false;
    PageId page = -1;
    uint32_t word = 0;
  };

  // The analysis routine body: bounds check + page/word decomposition.
  // Counters record the call either way (the majority of runtime calls are
  // for private data — §5.1).
  Result OnAccess(uint64_t va, bool is_write) {
    ++counters_.instrumented_calls;
    Result result;
    if (va < kSharedSegmentBase || va >= shared_limit_) {
      ++counters_.private_accesses;
      return result;
    }
    ++counters_.shared_accesses;
    if (is_write) {
      ++counters_.shared_writes;
    } else {
      ++counters_.shared_reads;
    }
    const uint64_t offset = va - kSharedSegmentBase;
    result.shared = true;
    result.page = static_cast<PageId>(offset / page_size_);
    result.word = WordInPage(offset % page_size_);
    return result;
  }

  const AccessCounters& counters() const { return counters_; }
  void ResetCounters() { counters_ = AccessCounters{}; }

 private:
  uint64_t page_size_;
  uint64_t shared_limit_;
  AccessCounters counters_;
};

}  // namespace cvm

#endif  // CVM_INSTR_ACCESS_FILTER_H_
