// The static half of the ATOM instrumentation (§5.1, Table 2). ATOM walks a
// binary's load/store instructions and eliminates, as possible data-race
// participants, every access it can prove private:
//   - frame-pointer-based accesses (stack data),
//   - accesses through the static-data base register (CVM allocates all
//     shared memory dynamically, so statically-allocated data is private),
//   - instructions inside shared libraries and inside CVM itself.
// Everything else is instrumented with a call to the analysis routine.
//
// We cannot rewrite Alpha binaries, so the classifier runs over a synthetic
// BinaryImage: a stream of instruction descriptors carrying the same
// features ATOM inspects. The classifier logic is the paper's; the image is
// generated from per-application instruction-mix specs.
#ifndef CVM_INSTR_BINARY_IMAGE_H_
#define CVM_INSTR_BINARY_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cvm {

// Which code region an instruction lives in.
enum class CodeRegion : uint8_t {
  kApplication,
  kSharedLibrary,  // libc, libm, ... (never instrumented: no segment pointers
                   // are passed to libraries in these applications).
  kCvmRuntime,     // The DSM library itself.
};

// What ATOM can see about the instruction's base register.
enum class BaseRegister : uint8_t {
  kFramePointer,   // Stack access.
  kStaticBase,     // Global-pointer-relative: statically allocated data.
  kGeneralPurpose, // Unknown pointer: conservatively a shared-memory candidate.
};

struct InstrDesc {
  bool is_load = true;
  CodeRegion region = CodeRegion::kApplication;
  BaseRegister base = BaseRegister::kGeneralPurpose;
  // True if intra-basic-block def-use tracking can prove the pointer is
  // derived from a private allocation. §6.5: the current analysis only
  // tracks within a basic block; inter-procedural analysis would resolve
  // more of these.
  bool provably_private_in_block = false;
  bool provably_private_interproc = false;
};

struct BinaryImage {
  std::string name;
  std::vector<InstrDesc> instructions;

  size_t TotalLoadsStores() const { return instructions.size(); }
};

// Per-category instruction counts for one application binary (Table 2's
// columns). Generation is deterministic in the seed.
struct InstructionMix {
  uint64_t stack = 0;
  uint64_t static_data = 0;
  uint64_t library = 0;
  uint64_t cvm = 0;
  uint64_t candidate = 0;              // General-register app accesses.
  double candidate_private_block = 0;  // Fraction of candidates provable in-block.
  double candidate_private_interproc = 0;  // Additional fraction inter-procedurally.
};

BinaryImage SynthesizeBinary(const std::string& name, const InstructionMix& mix, uint64_t seed);

// Result of the static pass: how many loads/stores were eliminated per
// category, and how many remain to be instrumented.
struct ClassifyResult {
  uint64_t stack = 0;
  uint64_t static_data = 0;
  uint64_t library = 0;
  uint64_t cvm = 0;
  uint64_t instrumented = 0;

  uint64_t Total() const { return stack + static_data + library + cvm + instrumented; }
  double EliminatedFraction() const {
    const uint64_t total = Total();
    return total == 0 ? 0.0 : 1.0 - static_cast<double>(instrumented) / static_cast<double>(total);
  }
};

class StaticClassifier {
 public:
  // `interprocedural` enables the §6.5 extension: def-use tracking across
  // procedure boundaries, eliminating more provably-private candidates.
  explicit StaticClassifier(bool interprocedural = false)
      : interprocedural_(interprocedural) {}

  ClassifyResult Classify(const BinaryImage& image) const;

 private:
  bool interprocedural_;
};

}  // namespace cvm

#endif  // CVM_INSTR_BINARY_IMAGE_H_
