#include "src/instr/binary_image.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace cvm {

BinaryImage SynthesizeBinary(const std::string& name, const InstructionMix& mix, uint64_t seed) {
  Rng rng(seed);
  BinaryImage image;
  image.name = name;
  image.instructions.reserve(mix.stack + mix.static_data + mix.library + mix.cvm + mix.candidate);

  auto emit = [&](uint64_t count, CodeRegion region, BaseRegister base) {
    for (uint64_t i = 0; i < count; ++i) {
      InstrDesc d;
      d.is_load = rng.Chance(0.75);  // ~25% of data accesses are stores (§6.5).
      d.region = region;
      d.base = base;
      image.instructions.push_back(d);
    }
  };

  emit(mix.stack, CodeRegion::kApplication, BaseRegister::kFramePointer);
  emit(mix.static_data, CodeRegion::kApplication, BaseRegister::kStaticBase);
  emit(mix.library, CodeRegion::kSharedLibrary, BaseRegister::kGeneralPurpose);
  emit(mix.cvm, CodeRegion::kCvmRuntime, BaseRegister::kGeneralPurpose);
  for (uint64_t i = 0; i < mix.candidate; ++i) {
    InstrDesc d;
    d.is_load = rng.Chance(0.75);
    d.region = CodeRegion::kApplication;
    d.base = BaseRegister::kGeneralPurpose;
    d.provably_private_in_block = rng.Chance(mix.candidate_private_block);
    d.provably_private_interproc =
        d.provably_private_in_block || rng.Chance(mix.candidate_private_interproc);
    image.instructions.push_back(d);
  }

  // Interleave deterministically so region boundaries are not contiguous
  // (ATOM classifies per instruction, so order is irrelevant to results, but
  // a shuffled image keeps tests honest about per-instruction decisions).
  for (size_t i = image.instructions.size(); i > 1; --i) {
    std::swap(image.instructions[i - 1], image.instructions[rng.Below(i)]);
  }
  return image;
}

ClassifyResult StaticClassifier::Classify(const BinaryImage& image) const {
  ClassifyResult result;
  for (const InstrDesc& d : image.instructions) {
    // Library and CVM code first: never instrumented (code-range check).
    if (d.region == CodeRegion::kSharedLibrary) {
      ++result.library;
      continue;
    }
    if (d.region == CodeRegion::kCvmRuntime) {
      ++result.cvm;
      continue;
    }
    // Frame-pointer base -> stack data.
    if (d.base == BaseRegister::kFramePointer) {
      ++result.stack;
      continue;
    }
    // Static-base-register -> statically allocated (private: CVM allocates
    // all shared memory dynamically).
    if (d.base == BaseRegister::kStaticBase) {
      ++result.static_data;
      continue;
    }
    // General-purpose base: eliminate only if def-use tracking proves the
    // pointer private within the analysis scope.
    const bool provable =
        interprocedural_ ? d.provably_private_interproc : d.provably_private_in_block;
    if (provable) {
      ++result.static_data;
      continue;
    }
    ++result.instrumented;
  }
  CVM_CHECK_EQ(result.Total(), image.instructions.size());
  return result;
}

}  // namespace cvm
