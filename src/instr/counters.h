// Runtime instrumentation counters, one set per node (Table 3's dynamic
// metrics: instrumented accesses per second, split shared vs private).
#ifndef CVM_INSTR_COUNTERS_H_
#define CVM_INSTR_COUNTERS_H_

#include <cstdint>

namespace cvm {

struct AccessCounters {
  uint64_t instrumented_calls = 0;  // Calls into the analysis routine.
  uint64_t shared_accesses = 0;     // ...that hit the shared segment.
  uint64_t private_accesses = 0;    // ...that were private after all.
  uint64_t shared_reads = 0;
  uint64_t shared_writes = 0;

  void Accumulate(const AccessCounters& other) {
    instrumented_calls += other.instrumented_calls;
    shared_accesses += other.shared_accesses;
    private_accesses += other.private_accesses;
    shared_reads += other.shared_reads;
    shared_writes += other.shared_writes;
  }
};

}  // namespace cvm

#endif  // CVM_INSTR_COUNTERS_H_
