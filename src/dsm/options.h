// Configuration for one DSM run.
#ifndef CVM_DSM_OPTIONS_H_
#define CVM_DSM_OPTIONS_H_

#include <cstdint>
#include <optional>

#include "src/common/types.h"
#include "src/fault/fault.h"
#include "src/obs/trace_config.h"
#include "src/protocol/protocol_kind.h"
#include "src/race/detector.h"
#include "src/sim/cost_model.h"

namespace cvm {

// ProtocolKind and WriteDetection live with the protocol strategy layer in
// src/protocol/protocol_kind.h; this header re-exports them via the include
// above so run configuration stays a one-stop shop.

// How the barrier-time race check is executed (§6.2–§6.3 discuss both the
// overlap-method cost and distributing the check across nodes).
enum class DetectionPipeline : uint8_t {
  // The paper's prototype: the whole check runs serially on the barrier
  // master, with one blocking full-bitmap retrieval round.
  kSerial,
  // The check-list pair loop is sharded across a worker pool (deterministic
  // merge; reports byte-identical to serial) and the master's bitmap
  // comparisons overlap the retrieval round instead of waiting for it.
  kSharded,
  // Additionally distributes step 5: each check pair is assigned to one of
  // its member nodes, which compares the bitmaps it already owns locally and
  // ships back only race reports; cross-node bitmaps travel compressed.
  kDistributed,
};

// A watched location for the two-run reference-identification scheme (§6.1):
// during a replay run, accesses to [addr, addr+bytes) in `epoch` record the
// application-provided source site.
struct Watchpoint {
  GlobalAddr addr = 0;
  uint64_t bytes = kWordSize;
  EpochId epoch = -1;  // -1 = any epoch.
};

struct DsmOptions {
  int num_nodes = 8;
  uint64_t page_size = 4096;
  uint64_t max_shared_bytes = 16ull << 20;
  int num_locks = 64;

  ProtocolKind protocol = ProtocolKind::kSingleWriterLrc;
  bool race_detection = true;   // Master switch: access instrumentation.
  bool online_detection = true; // Barrier-time checking (the paper's scheme).
  // §7 baseline: keep instrumentation on but skip the online barrier-time
  // checks; instead log every interval record and bitmap to a trace that is
  // analyzed post-mortem (Adve et al.'s scheme). Storage grows with the run.
  bool postmortem_trace = false;
  WriteDetection write_detection = WriteDetection::kInstrumentation;
  OverlapMethod overlap_method = OverlapMethod::kPageLists;
  // Barrier-time check execution: serial master (the paper's prototype),
  // sharded+overlapped master, or distributed across constituent nodes.
  DetectionPipeline detection_pipeline = DetectionPipeline::kSerial;
  // Worker count for the sharded check-list build (kSharded/kDistributed).
  // 0 = derive from std::thread::hardware_concurrency(), clamped to [1, 8].
  int detect_shards = 0;
  // Hierarchical barrier: arrivals combine up a k-ary tree (heap numbering,
  // node 0 at the root) instead of every worker sending straight to the
  // master, and releases flow back down the same tree. Interior nodes merge
  // child interval logs and VC maxima and pre-reduce check-list fragments,
  // so the master's per-epoch work and wire bytes stop growing with the
  // square of the cluster size. Off by default: the flat barrier is the
  // paper's 8-node configuration and stays byte-identical to prior builds.
  bool barrier_tree = false;
  // Combine-tree fan-out (children per interior node); used only when
  // barrier_tree is set. Must be in [1, num_nodes].
  int barrier_fanout = 4;
  // Batch the barrier-time race check across N epochs: the check list is
  // still built eagerly every epoch (records are fresh and cheap to scan),
  // but the bitmap-retrieval round and word-level compares run once per N
  // epochs over the accumulated lists, amortizing round setup. 1 = the
  // paper's check-every-barrier behavior. Reports are identical to batch=1
  // and still emitted in epoch order.
  int detect_batch = 1;
  // Generation-stamped bitmap interning: senders remember the last bitmap
  // content shipped per (destination, page, read/write) and replace repeat
  // shipments with a 'same-as-before' token the receiver resolves from its
  // mirror cache. Saves wire bytes when steady-state epochs redirty the
  // same words; invalidated the moment the content changes.
  bool intern_bitmaps = false;
  // Encode bitmap-round payloads with the sparse/run-length codec instead of
  // shipping raw page bitmaps. Off by default so the serial baseline keeps
  // the paper's byte accounting.
  bool compress_bitmaps = false;
  // §6.4: report only races from the earliest racy epoch.
  bool first_races_only = false;

  CostParams costs;

  // Observability: event tracing + per-epoch metrics (src/obs/). Off by
  // default; near-zero-cost when off and compiled out entirely with
  // -DCVM_OBS=OFF.
  obs::TraceConfig trace;

  // Fault injection (src/fault/): a non-off profile routes every send through
  // the reliable transport, which retransmits around the injected faults.
  // Zero rto_base_ns/rto_cap_ns/delay_hop_ns fields are derived from `costs`.
  fault::FaultPlan fault_plan;

  // Synchronization-order record/replay (§6.1).
  bool record_sync_order = false;
  const class SyncSchedule* replay_schedule = nullptr;  // Non-null = replay run.
  std::optional<Watchpoint> watch;
};

}  // namespace cvm

#endif  // CVM_DSM_OPTIONS_H_
