// Barrier engine, extracted from the node monolith: barrier arrival/release
// bookkeeping (master = node 0 collects arrivals, merges interval logs,
// releases workers) and the orchestration of the barrier-time race-detection
// pipeline in all three modes — serial, sharded check-list build with the
// §6.2 bitmap-round/compare overlap, and the fully distributed compare
// (CompareRequest / BitmapShip / CompareReply). One BarrierCoordinator per
// node; master-side state is only exercised on node 0.
#ifndef CVM_DSM_BARRIER_COORDINATOR_H_
#define CVM_DSM_BARRIER_COORDINATOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/types.h"
#include "src/net/dispatch.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/protocol/interval.h"
#include "src/race/detector.h"
#include "src/vc/vector_clock.h"

namespace cvm {

class Node;

// Detection-pipeline accounting for one run, collected on the barrier master
// (node 0): how the check was sharded/distributed and what the compressed
// bitmap wire format saved. The ablation bench reports these side by side
// for serial vs sharded vs distributed.
struct PipelineStats {
  uint64_t shards_used = 0;            // Workers used by the check-list build.
  uint64_t detect_epochs = 0;          // Epochs with a non-empty check list.
  double detect_ns = 0;                // Master sim time inside the barrier check.
  uint64_t bitmap_bytes_raw = 0;       // Bitmap-round payloads at legacy raw size.
  uint64_t bitmap_bytes_wire = 0;      // Actual (possibly compressed) bytes.
  double overlap_saved_ns = 0;         // Sim ns saved by overlapping round+compare.
  uint64_t remote_pairs_compared = 0;  // Bitmap pairs compared off-master.
  uint64_t remote_reports = 0;         // Race reports shipped back by peers.
  uint64_t batch_rounds = 0;           // Detection flushes run (detect_batch > 1).
  uint64_t batched_epochs = 0;         // Epochs whose check lists rode a flush.
};

// Hit/miss accounting for the bitmap-interning cache (--intern-bitmaps): a
// hit replaces a full bitmap shipment with a 'same as before' token; an
// invalidation is a re-shipment because the page's bitmap changed since the
// cached epoch (page redirtied differently).
struct InternStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t invalidations = 0;
};

class BarrierCoordinator {
 public:
  explicit BarrierCoordinator(Node& node);

  BarrierCoordinator(const BarrierCoordinator&) = delete;
  BarrierCoordinator& operator=(const BarrierCoordinator&) = delete;

  // Registers barrier and detection-round handlers (service thread).
  void RegisterHandlers(MessageDispatcher& dispatcher);

  // Resolves the coordinator's metric handles; called from the node's
  // observability init (no-op when metrics are disabled or compiled out).
  void InitObservability(obs::MetricsRegistry* metrics);

  // The barrier body, called by the app thread with the node mutex held and
  // the in-barrier interval already published. Master path: wait for every
  // arrival, merge logs, run the detection pipeline, release workers.
  // Worker path: send the arrival, wait for the release, apply its records.
  void RunBarrier(std::unique_lock<std::mutex>& lk, EpochId epoch);

  // Meaningful on node 0 only (the barrier master runs the pipeline).
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

  // This node's sender-side interning accounting (zeros unless
  // --intern-bitmaps; every node that ships bitmaps contributes).
  const InternStats& intern_stats() const { return intern_stats_; }

  // Master-side health check (node mutex held): heartbeat-probes every node
  // that has not arrived for `epoch`. A live node acks and is left alone; a
  // dead one surfaces kPeerUnreachable at this sender, which initiates the
  // run abort. Called from the master's own watchful barrier wait and from
  // the PeerSuspect handler when a stuck worker asks for a health check.
  void ProbeMissingArrivalsLocked(EpochId epoch);

 private:
  void MasterRunBarrier(std::unique_lock<std::mutex>& lk, EpochId epoch);
  void RunRaceDetection(std::unique_lock<std::mutex>& lk, EpochId epoch,
                        const std::vector<IntervalRecord>& epoch_intervals);

  // ---- Hierarchical (k-ary combine tree) barrier (--barrier-tree) ----
  // The node's barrier body in tree mode: wait for the child subtrees, merge
  // their logs / clocks / check-list fragments, build the pairs whose LCA is
  // this node, then either forward the combined arrival up (interior/leaf)
  // or run detection and start the release wave (root).
  void TreeRunBarrier(std::unique_lock<std::mutex>& lk, EpochId epoch);
  // Sends each child subtree its tailored release: records unseen by the
  // subtree's min VC whose write notices intersect the subtree's page
  // interest, read notices stripped (node mutex held, log not yet GC'd).
  void SendTreeReleasesLocked(EpochId epoch, const std::vector<NodeId>& children);

  // ---- Epoch-batched detection (--detect-batch=N) ----
  // This epoch's records only — the detection input when prior epochs' logs
  // are intentionally retained (batching) or merged (tree).
  std::vector<IntervalRecord> CurrentEpochRecords(EpochId epoch) const;
  // Shared detection tail for the flat and tree masters: computes the bitmap
  // entries the pairs need, then runs the compare round now (batch <= 1) or
  // parks the epoch's work on pending_batch_.
  void DispatchDetection(std::unique_lock<std::mutex>& lk, EpochId epoch,
                         const std::vector<CheckPair>& pairs);
  // Runs queued epochs' compare rounds if `epoch` closes a batch window (or
  // is the run's final barrier); no-op otherwise. Master/root only.
  void MaybeFlushDetectBatch(std::unique_lock<std::mutex>& lk, EpochId epoch);
  // Borrowed view of one epoch's detection work; the immediate path points
  // at the detector's pooled check list, the flush path at pending_batch_.
  struct EpochCheckView {
    EpochId epoch = -1;
    const std::vector<CheckPair>* pairs = nullptr;
    const std::vector<std::pair<IntervalId, PageId>>* needed = nullptr;
  };
  // Serial/sharded step-5 tail shared by the immediate and batched paths:
  // one combined bitmap-retrieval round over every listed epoch's needs,
  // then the per-epoch word compares, oldest epoch first. `msg_epoch` rides
  // the request messages (= the constituents' current barrier epoch).
  void CompareEpochsSerial(std::unique_lock<std::mutex>& lk, EpochId msg_epoch,
                           const std::vector<EpochCheckView>& work);

  // ---- Bitmap interning (--intern-bitmaps) ----
  // Encodes one side of a reply/ship entry through the per-destination
  // cache: returns a kInterned token when `dest` already holds identical
  // content, a full (cache-updating) encoding otherwise.
  EncodedBitmap EncodeMaybeInterned(NodeId dest, PageId page, bool is_write,
                                    const Bitmap& bitmap);
  // Inverse: resolves kInterned tokens against the mirror of what `src`
  // last sent us and keeps the mirror current on full shipments.
  Bitmap DecodeMaybeInterned(NodeId src, PageId page, bool is_write,
                             const EncodedBitmap& encoded);

  // kDistributed step 5: partition the check pairs over their member nodes,
  // orchestrate the ship/compare/reply round, merge remote reports back into
  // serial order. Returns the merged, ordered reports. `msg_epoch` rides the
  // messages (it must match the constituents' current barrier epoch);
  // `report_epoch` stamps the reports — the two differ when a batched flush
  // replays an earlier epoch's pairs.
  std::vector<RaceReport> RunDistributedCompare(std::unique_lock<std::mutex>& lk,
                                                EpochId msg_epoch, EpochId report_epoch,
                                                const std::vector<CheckPair>& pairs,
                                                size_t checklist_entries);
  // Emits reports (addr/symbol resolution + trace) and hands them to the
  // system. Shared tail of all three pipeline modes.
  void PublishReports(std::vector<RaceReport> reports);
  // Worker count for the sharded check-list build (>= 1).
  int DetectShardCount() const;
  // Constituent side of the distributed compare: runs once this node has the
  // master's CompareRequest AND all expected inbound ships for `epoch`.
  void TryFinishRemoteCompare(EpochId epoch);

  void OnBarrierArrive(const Message& msg);
  void OnBarrierRelease(const Message& msg);
  void OnTreeArrive(const Message& msg);
  void OnTreeRelease(const Message& msg);
  void OnBitmapRequest(const Message& msg);
  void OnBitmapReply(const Message& msg);
  void OnCompareRequest(const Message& msg);
  void OnBitmapShip(const Message& msg);
  void OnCompareReply(const Message& msg);

  Node& node_;

  // Worker-side release slot.
  std::optional<BarrierReleaseMsg> barrier_release_;

  // ---- Combine-tree state ----
  struct TreeArrival {
    BarrierTreeArriveMsg msg;
    size_t wire_bytes = 0;
    size_t read_notice_bytes = 0;
  };
  std::map<EpochId, std::map<NodeId, TreeArrival>> tree_arrivals_;
  // Non-root release slot (parent -> this subtree).
  struct TreeRelease {
    BarrierTreeReleaseMsg msg;
    size_t wire_bytes = 0;
    size_t read_notice_bytes = 0;
  };
  std::optional<TreeRelease> tree_release_;
  // Per-child release-tailoring state for the barrier in flight: the child
  // subtree's min VC and page-interest set, captured from its arrival.
  struct TreeChildState {
    VectorClock min_vc;
    Bitmap interest;
  };
  std::map<NodeId, TreeChildState> tree_child_state_;

  // ---- Batched-detection state (master/root only) ----
  struct PendingEpoch {
    EpochId epoch = -1;
    std::vector<CheckPair> pairs;
    std::vector<std::pair<IntervalId, PageId>> needed;
  };
  std::vector<PendingEpoch> pending_batch_;

  // Dense-probe scratch for this node's claimed-pair builds (tree mode);
  // interior nodes build concurrently, so the shared detector's arenas are
  // off limits here.
  OverlapScratch tree_scratch_;

  // ---- Interning caches ----
  // Sender side: what each destination currently holds for (page, is_write),
  // with a generation stamp bumped on every content change. Receiver side:
  // the mirror of what each source last sent. Both sides process entries in
  // message order, so the caches stay in lock-step.
  struct InternSlot {
    Bitmap content;
    uint32_t generation = 0;
  };
  using InternKey = std::tuple<NodeId, PageId, bool>;
  std::map<InternKey, InternSlot> intern_out_;
  std::map<InternKey, InternSlot> intern_in_;
  InternStats intern_stats_;

  // Barrier master state.
  struct ArrivalInfo {
    std::vector<IntervalRecord> records;
    VectorClock vc;
    double time_ns = 0;
    size_t wire_bytes = 0;
    size_t read_notice_bytes = 0;
  };
  std::map<EpochId, std::map<NodeId, ArrivalInfo>> arrivals_;

  // Master-side bitmap collection for the current detection round.
  std::map<std::pair<IntervalId, PageId>, PageAccessBitmaps> collected_bitmaps_;
  int bitmap_replies_pending_ = 0;
  uint64_t bitmap_round_bytes_ = 0;
  // What the round's messages would have cost at the legacy raw encoding
  // (identical to bitmap_round_bytes_ when compression is off).
  uint64_t bitmap_round_raw_bytes_ = 0;

  // Master-side state for the distributed compare round (kDistributed).
  struct CompareReplyInfo {
    CompareReplyMsg msg;
    size_t wire_bytes = 0;
  };
  std::vector<CompareReplyInfo> compare_replies_;
  int compare_replies_pending_ = 0;
  int master_ships_pending_ = 0;          // BitmapShipMsg rounds inbound to master.
  double master_ship_target_ns_ = 0;      // Latest modeled ship-arrival time.
  uint64_t master_ship_bytes_wire_ = 0;
  uint64_t master_ship_bytes_raw_ = 0;

  // Constituent-node state for the distributed compare, keyed by epoch:
  // ships can arrive before the master's CompareRequest (sources race each
  // other), so both handlers funnel into TryFinishRemoteCompare.
  struct RemoteCompareState {
    bool have_request = false;
    CompareRequestMsg request;
    uint32_t ships_received = 0;
    std::map<std::pair<IntervalId, PageId>, PageAccessBitmaps> shipped;
    uint64_t ship_bytes_wire = 0;  // Entry bytes this node shipped out.
    uint64_t ship_bytes_raw = 0;
  };
  std::map<EpochId, RemoteCompareState> remote_compare_;

  PipelineStats pipeline_stats_;  // Node 0 only.

  uint64_t probe_token_ = 0;  // Distinguishes heartbeat probes in traces.

  // Detection metric handles (null when metrics are disabled; the whole
  // block is dead code under -DCVM_OBS=OFF).
  struct MetricHandles {
    obs::Counter* check_pairs = nullptr;
    obs::Counter* checklist_entries = nullptr;
    obs::Counter* bitmap_pairs_compared = nullptr;
    obs::Counter* races_reported = nullptr;
    obs::Counter* shard_count = nullptr;
    obs::Counter* bitmap_bytes_raw = nullptr;
    obs::Counter* bitmap_bytes_wire = nullptr;
    obs::Counter* bitmap_bytes_saved = nullptr;
    obs::Counter* overlap_saved_ns = nullptr;
    obs::Counter* remote_pairs = nullptr;
    obs::Counter* remote_reports = nullptr;
    obs::Counter* tree_up_bytes = nullptr;
    obs::Counter* tree_down_bytes = nullptr;
    obs::Counter* tree_fragments = nullptr;
    obs::Counter* tree_height = nullptr;
    obs::Counter* batch_rounds = nullptr;
    obs::Counter* batch_epochs = nullptr;
    obs::Counter* intern_hits = nullptr;
    obs::Counter* intern_misses = nullptr;
    obs::Counter* intern_invalidations = nullptr;
  };
  MetricHandles mh_;
  bool have_metrics_ = false;
};

}  // namespace cvm

#endif  // CVM_DSM_BARRIER_COORDINATOR_H_
