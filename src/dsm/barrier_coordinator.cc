#include "src/dsm/barrier_coordinator.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "src/common/check.h"
#include "src/dsm/dsm.h"
#include "src/dsm/node.h"
#include "src/obs/span.h"
#include "src/race/bitmap_codec.h"

namespace cvm {

namespace {

// Payload bytes of one bitmap-round entry as actually encoded, and at the
// legacy raw encoding — the difference is what the codec saved on the wire.
size_t ReplyEntryWireBytes(const BitmapReplyEntry& e) {
  return sizeof(IntervalId) + sizeof(PageId) + e.read.WireBytes() + e.write.WireBytes();
}

size_t ReplyEntryRawBytes(const BitmapReplyEntry& e) {
  return sizeof(IntervalId) + sizeof(PageId) + EncodedBitmap::RawWireBytes(e.read.num_bits) +
         EncodedBitmap::RawWireBytes(e.write.num_bits);
}

// Wall-clock tick of the watchful barrier waits used only when a crash plan
// is armed: how long a waiter parks before heartbeat-probing the nodes it is
// waiting on. Probes to live nodes are harmless (acked and ignored), so this
// trades only a little idle-path chatter against crash-detection latency.
constexpr std::chrono::milliseconds kSuspicionInterval(25);

// ---- Combine-tree topology (--barrier-tree) ----
// Heap numbering over node ids: node 0 is the root, node i's children are
// i*fanout+1 .. i*fanout+fanout (clamped to num_nodes). Parent ids are
// always smaller than child ids, which TreeLca exploits.

NodeId TreeParent(NodeId id, int fanout) { return (id - 1) / fanout; }

std::vector<NodeId> TreeChildren(NodeId id, int fanout, int num_nodes) {
  std::vector<NodeId> children;
  for (int c = 1; c <= fanout; ++c) {
    const NodeId child = id * fanout + c;
    if (child >= num_nodes) {
      break;
    }
    children.push_back(child);
  }
  return children;
}

// Lowest common ancestor of two node ids: repeatedly lift whichever is
// deeper (the larger id — parents are always numerically smaller).
NodeId TreeLca(NodeId a, NodeId b, int fanout) {
  while (a != b) {
    if (a > b) {
      a = TreeParent(a, fanout);
    } else {
      b = TreeParent(b, fanout);
    }
  }
  return a;
}

// Depth of the deepest node: the number of up-hops from the last node id.
int TreeHeightOf(int num_nodes, int fanout) {
  int height = 0;
  for (NodeId n = num_nodes - 1; n > 0; n = TreeParent(n, fanout)) {
    ++height;
  }
  return height;
}

// Accumulates master sim time spent inside a detection scope into
// PipelineStats::detect_ns, whatever exit path is taken.
struct DetectTimer {
  const NodeTiming& timing;
  double start_ns;
  double* out;
  ~DetectTimer() { *out += timing.now_ns() - start_ns; }
};

}  // namespace

BarrierCoordinator::BarrierCoordinator(Node& node) : node_(node) {}

void BarrierCoordinator::RegisterHandlers(MessageDispatcher& dispatcher) {
  dispatcher.Register<BarrierArriveMsg>([this](const Message& msg) { OnBarrierArrive(msg); });
  dispatcher.Register<BarrierReleaseMsg>([this](const Message& msg) { OnBarrierRelease(msg); });
  dispatcher.Register<BarrierTreeArriveMsg>([this](const Message& msg) { OnTreeArrive(msg); });
  dispatcher.Register<BarrierTreeReleaseMsg>([this](const Message& msg) { OnTreeRelease(msg); });
  dispatcher.Register<BitmapRequestMsg>([this](const Message& msg) { OnBitmapRequest(msg); });
  dispatcher.Register<BitmapReplyMsg>([this](const Message& msg) { OnBitmapReply(msg); });
  dispatcher.Register<CompareRequestMsg>([this](const Message& msg) { OnCompareRequest(msg); });
  dispatcher.Register<BitmapShipMsg>([this](const Message& msg) { OnBitmapShip(msg); });
  dispatcher.Register<CompareReplyMsg>([this](const Message& msg) { OnCompareReply(msg); });
}

void BarrierCoordinator::InitObservability(obs::MetricsRegistry* metrics) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (metrics == nullptr) {
    return;
  }
  mh_.check_pairs = metrics->counter("race.check_pairs");
  mh_.checklist_entries = metrics->counter("race.checklist_entries");
  mh_.bitmap_pairs_compared = metrics->counter("race.bitmap_pairs_compared");
  mh_.races_reported = metrics->counter("race.races_reported");
  mh_.shard_count = metrics->counter("race.shard.count");
  mh_.bitmap_bytes_raw = metrics->counter("net.bitmap.bytes_raw");
  mh_.bitmap_bytes_wire = metrics->counter("net.bitmap.bytes_wire");
  mh_.bitmap_bytes_saved = metrics->counter("net.bitmap.bytes_saved");
  mh_.overlap_saved_ns = metrics->counter("race.overlap.saved_ns");
  mh_.remote_pairs = metrics->counter("race.remote.pairs_compared");
  mh_.remote_reports = metrics->counter("race.remote.reports");
  mh_.tree_up_bytes = metrics->counter("net.barrier.tree.up_bytes");
  mh_.tree_down_bytes = metrics->counter("net.barrier.tree.down_bytes");
  mh_.tree_fragments = metrics->counter("net.barrier.tree.fragments");
  mh_.tree_height = metrics->counter("net.barrier.tree.height");
  mh_.batch_rounds = metrics->counter("race.batch.rounds");
  mh_.batch_epochs = metrics->counter("race.batch.batched_epochs");
  mh_.intern_hits = metrics->counter("race.intern.hits");
  mh_.intern_misses = metrics->counter("race.intern.misses");
  mh_.intern_invalidations = metrics->counter("race.intern.invalidations");
  have_metrics_ = true;
}

void BarrierCoordinator::RunBarrier(std::unique_lock<std::mutex>& lk, EpochId epoch) {
  if (node_.opts_.barrier_tree) {
    TreeRunBarrier(lk, epoch);
    return;
  }
  if (node_.id_ == 0) {
    const auto all_arrived = [this, epoch] {
      return arrivals_[epoch].size() == static_cast<size_t>(node_.opts_.num_nodes - 1);
    };
    if (!node_.system_->crash_armed()) {
      node_.cv_.wait(lk, all_arrived);
    } else {
      // Watchful wait: a crashed worker never arrives, so park with a
      // timeout and heartbeat-probe the missing members each tick. A probe
      // to a dead node surfaces kPeerUnreachable here and aborts the run.
      while (!all_arrived() && !node_.aborted_) {
        if (node_.cv_.wait_for(lk, kSuspicionInterval,
                               [&] { return all_arrived() || node_.aborted_; })) {
          break;
        }
        ProbeMissingArrivalsLocked(epoch);
      }
      node_.ThrowIfAbortedLocked();
    }
    MasterRunBarrier(lk, epoch);
    return;
  }
  BarrierArriveMsg arrive;
  arrive.epoch = epoch;
  arrive.node = node_.id_;
  arrive.intervals = node_.log_.All();
  arrive.vc = node_.vc_;
  arrive.arrive_time_ns = static_cast<uint64_t>(node_.timing_.now_ns());
  // Publish this epoch's overhead before arriving so the master's snapshot
  // (taken once every arrival is in) sees a consistent cross-node view.
  node_.PublishOverheadLocked();
  node_.Send(0, std::move(arrive));
  const auto released = [this, epoch] {
    return barrier_release_.has_value() && barrier_release_->epoch == epoch;
  };
  if (!node_.system_->crash_armed()) {
    node_.cv_.wait(lk, released);
  } else {
    while (!released() && !node_.aborted_) {
      if (node_.cv_.wait_for(lk, kSuspicionInterval,
                             [&] { return released() || node_.aborted_; })) {
        break;
      }
      // Stuck: ask the master to health-check the epoch (it probes its
      // missing arrivals). If the master itself is the dead node, this send
      // surfaces kPeerUnreachable and initiates the abort right here.
      node_.Send(0, PeerSuspectMsg{epoch, kNoNode});
    }
    node_.ThrowIfAbortedLocked();
  }
  BarrierReleaseMsg release = std::move(*barrier_release_);
  barrier_release_.reset();
  const size_t bytes = PayloadByteSize(Payload(release));
  const size_t rn_bytes = PayloadReadNoticeBytes(Payload(release));
  node_.timing_.ObserveAtLeast(static_cast<double>(release.release_time_ns) +
                               node_.opts_.costs.MessageCost(bytes - rn_bytes));
  if (rn_bytes > 0) {
    node_.timing_.Charge(Bucket::kCvmMods,
                         node_.opts_.costs.per_byte_ns * static_cast<double>(rn_bytes));
  }
  node_.ApplyIntervalRecordsLocked(release.intervals);
  node_.vc_.MergeWith(release.merged_vc);
  node_.GarbageCollectLocked();
}

void BarrierCoordinator::MasterRunBarrier(std::unique_lock<std::mutex>& lk, EpochId epoch) {
  std::map<NodeId, ArrivalInfo> arrivals = std::move(arrivals_[epoch]);
  arrivals_.erase(epoch);

  for (auto& [node, info] : arrivals) {
    node_.timing_.ObserveAtLeast(
        info.time_ns + node_.opts_.costs.MessageCost(info.wire_bytes - info.read_notice_bytes));
    if (info.read_notice_bytes > 0) {
      node_.timing_.Charge(Bucket::kCvmMods,
                           node_.opts_.costs.per_byte_ns *
                               static_cast<double>(info.read_notice_bytes));
    }
    node_.ApplyIntervalRecordsLocked(info.records);
    node_.vc_.MergeWith(info.vc);
  }

  if (node_.opts_.race_detection && node_.opts_.online_detection) {
    if (node_.opts_.detect_batch > 1) {
      // Batching retains prior epochs' records in the master log (GC below
      // is skipped), so the check-list build must see only this epoch's.
      RunRaceDetection(lk, epoch, CurrentEpochRecords(epoch));
      MaybeFlushDetectBatch(lk, epoch);
    } else {
      RunRaceDetection(lk, epoch, node_.log_.All());
    }
  }

  for (NodeId node = 1; node < node_.opts_.num_nodes; ++node) {
    BarrierReleaseMsg release;
    release.epoch = epoch;
    release.intervals = node_.log_.UnseenBy(arrivals[node].vc);
    release.merged_vc = node_.vc_;
    release.release_time_ns = static_cast<uint64_t>(node_.timing_.now_ns());
    node_.Send(node, std::move(release));
  }
  if (pending_batch_.empty()) {
    node_.GarbageCollectLocked();
  }
  // else: queued epochs still need the log (report provenance) and the
  // workers' retained bitmaps; everything is collected at the flush barrier.
  if constexpr (obs::kObsCompiledIn) {
    if (node_.metrics_ != nullptr) {
      node_.PublishOverheadLocked();
      const int interval = std::max(1, node_.opts_.trace.metrics_interval);
      if ((epoch + 1) % interval == 0) {
        node_.metrics_->SnapshotEpoch(epoch, node_.timing_.now_ns());
      }
    }
  }
}

int BarrierCoordinator::DetectShardCount() const {
  if (node_.opts_.detect_shards > 0) {
    return node_.opts_.detect_shards;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw == 0 ? 4 : static_cast<int>(hw), 1, 8);
}

void BarrierCoordinator::PublishReports(std::vector<RaceReport> reports) {
  for (RaceReport& report : reports) {
    report.addr = static_cast<GlobalAddr>(report.page) * node_.opts_.page_size +
                  static_cast<GlobalAddr>(report.word) * kWordSize;
    report.symbol = node_.system_->segment().Symbolize(report.addr);
    // Provenance must be captured here: the master's merged log still holds
    // every record of the epoch (arrivals applied, release-time GC not yet
    // run), including intervals compared remotely in the distributed mode.
    AttachProvenance(report, node_.log_.Find(report.interval_a),
                     node_.log_.Find(report.interval_b));
    // Numeric args only: the report's strings move into the system-wide
    // report vector, so pointers into them must not outlive this scope.
    node_.TraceInstant("race.report", "race", "addr", report.addr);
  }
  node_.system_->AddReports(std::move(reports));
}

void BarrierCoordinator::RunRaceDetection(std::unique_lock<std::mutex>& lk, EpochId epoch,
                                          const std::vector<IntervalRecord>& epoch_intervals) {
  RaceDetector& detector = node_.system_->detector();
  const DetectorStats before = detector.stats();
  const DsmOptions& opts = node_.opts_;
  NodeTiming& timing = node_.timing_;
  // Master sim time spent in the check, whatever exit path is taken — the
  // quantity the pipeline ablation compares across modes.
  DetectTimer detect_timer{timing, timing.now_ns(), &pipeline_stats_.detect_ns};
  const bool overlapped = opts.detection_pipeline != DetectionPipeline::kSerial;
  const int shards_wanted = overlapped ? DetectShardCount() : 1;
  std::vector<DetectorStats> per_shard;
  const std::vector<CheckPair>* pairs = nullptr;
  {
    obs::Span overlap_span(node_.tracer_, node_.id_,
                           overlapped ? "detector.shard" : "detector.overlap", "race", timing,
                           epoch);
    pairs = &detector.BuildCheckListSharded(epoch_intervals, shards_wanted, &per_shard);
    // The parallel critical path: the most loaded shard, plus a fork/join
    // cost per worker actually spawned. One shard degenerates to the serial
    // charge (sum of every comparison, no fork cost).
    double worst_shard_ns = 0;
    for (const DetectorStats& s : per_shard) {
      worst_shard_ns =
          std::max(worst_shard_ns,
                   opts.costs.interval_cmp_ns * static_cast<double>(s.interval_comparisons) +
                       opts.costs.page_overlap_ns * static_cast<double>(s.page_overlap_probes));
    }
    if (per_shard.size() > 1) {
      worst_shard_ns += opts.costs.shard_fork_ns * static_cast<double>(per_shard.size());
    }
    timing.Charge(Bucket::kIntervals, worst_shard_ns);
    overlap_span.SetArg("pairs", pairs->size());
  }
  if constexpr (obs::kObsCompiledIn) {
    if (have_metrics_) {
      const DetectorStats& after = detector.stats();
      mh_.check_pairs->Add(after.overlapping_pairs - before.overlapping_pairs);
      mh_.shard_count->Add(per_shard.size());
    }
  }
  if (pairs->empty()) {
    return;
  }
  pipeline_stats_.shards_used = std::max<uint64_t>(pipeline_stats_.shards_used, per_shard.size());
  DispatchDetection(lk, epoch, *pairs);
}

std::vector<IntervalRecord> BarrierCoordinator::CurrentEpochRecords(EpochId epoch) const {
  std::vector<IntervalRecord> all = node_.log_.All();
  std::vector<IntervalRecord> out;
  out.reserve(all.size());
  for (IntervalRecord& r : all) {
    if (r.epoch == epoch) {
      out.push_back(std::move(r));
    }
  }
  return out;
}

void BarrierCoordinator::DispatchDetection(std::unique_lock<std::mutex>& lk, EpochId epoch,
                                           const std::vector<CheckPair>& pairs) {
  ++pipeline_stats_.detect_epochs;
  // The check list fixes the distinct (interval, page) bitmaps step 5 needs;
  // every pipeline mode accounts them once here (§4 step 3).
  std::vector<std::pair<IntervalId, PageId>> needed = RaceDetector::BitmapsNeeded(pairs);
  if constexpr (obs::kObsCompiledIn) {
    if (have_metrics_) {
      mh_.checklist_entries->Add(needed.size());
    }
  }
  const DsmOptions& opts = node_.opts_;
  if (opts.detect_batch > 1) {
    // Park this epoch's work; the compare rounds run when the batch window
    // closes. The pairs are copied out of the detector's pooled list, which
    // the next epoch's build will overwrite.
    PendingEpoch pending;
    pending.epoch = epoch;
    pending.pairs = pairs;
    pending.needed = std::move(needed);
    pending_batch_.push_back(std::move(pending));
    return;
  }
  if (opts.detection_pipeline == DetectionPipeline::kDistributed) {
    PublishReports(RunDistributedCompare(lk, epoch, epoch, pairs, needed.size()));
    return;
  }
  const std::vector<EpochCheckView> work{{epoch, &pairs, &needed}};
  CompareEpochsSerial(lk, epoch, work);
}

void BarrierCoordinator::MaybeFlushDetectBatch(std::unique_lock<std::mutex>& lk, EpochId epoch) {
  const DsmOptions& opts = node_.opts_;
  if (opts.detect_batch <= 1 || pending_batch_.empty()) {
    return;
  }
  const bool boundary = (epoch + 1) % opts.detect_batch == 0;
  if (!boundary && !node_.final_barrier_) {
    return;
  }
  NodeTiming& timing = node_.timing_;
  DetectTimer detect_timer{timing, timing.now_ns(), &pipeline_stats_.detect_ns};
  ++pipeline_stats_.batch_rounds;
  pipeline_stats_.batched_epochs += pending_batch_.size();
  if constexpr (obs::kObsCompiledIn) {
    if (have_metrics_) {
      mh_.batch_rounds->Add(1);
      mh_.batch_epochs->Add(pending_batch_.size());
    }
  }
  if (opts.detection_pipeline == DetectionPipeline::kDistributed) {
    // One distributed round per queued epoch, oldest first. The messages
    // carry the flush barrier's epoch (constituents reject anything older
    // than their current barrier); only the reports are stamped with the
    // epoch the pairs came from.
    for (const PendingEpoch& pending : pending_batch_) {
      PublishReports(
          RunDistributedCompare(lk, epoch, pending.epoch, pending.pairs, pending.needed.size()));
    }
  } else {
    std::vector<EpochCheckView> work;
    work.reserve(pending_batch_.size());
    for (const PendingEpoch& pending : pending_batch_) {
      work.push_back(EpochCheckView{pending.epoch, &pending.pairs, &pending.needed});
    }
    CompareEpochsSerial(lk, epoch, work);
  }
  pending_batch_.clear();
}

void BarrierCoordinator::CompareEpochsSerial(std::unique_lock<std::mutex>& lk, EpochId msg_epoch,
                                             const std::vector<EpochCheckView>& work) {
  RaceDetector& detector = node_.system_->detector();
  const DsmOptions& opts = node_.opts_;
  NodeTiming& timing = node_.timing_;
  const bool overlapped = opts.detection_pipeline != DetectionPipeline::kSerial;

  obs::Span bitmaps_span(node_.tracer_, node_.id_, "detector.bitmaps", "race", timing, msg_epoch);

  // Bitmap-retrieval round (§4 step 4): ask each constituent node for the
  // word bitmaps of its listed intervals; the master's own resolve locally.
  // A batched flush runs ONE combined round over every queued epoch's needs
  // (interval indices are globally monotonic, so entries never collide).
  collected_bitmaps_.clear();
  std::map<NodeId, std::vector<CheckEntry>> by_node;
  for (const EpochCheckView& w : work) {
    for (const auto& [interval, page] : *w.needed) {
      if (interval.node == node_.id_) {
        const PageAccessBitmaps* local = node_.bitmaps_.Find(interval.index, page);
        if (local != nullptr) {
          collected_bitmaps_.emplace(std::make_pair(interval, page), *local);
        }
      } else {
        by_node[interval.node].push_back(CheckEntry{interval, page});
      }
    }
  }
  CVM_CHECK_EQ(bitmap_replies_pending_, 0);
  bitmap_replies_pending_ = static_cast<int>(by_node.size());
  bitmap_round_bytes_ = 0;
  bitmap_round_raw_bytes_ = 0;
  for (auto& [node, entries] : by_node) {
    BitmapRequestMsg request;
    request.epoch = msg_epoch;
    request.entries = std::move(entries);
    node_.Send(node, std::move(request));
  }
  double round_ns = 0;
  if (bitmap_replies_pending_ > 0) {
    if (!overlapped) {
      timing.Charge(Bucket::kBitmaps, 2 * opts.costs.msg_latency_ns);
    }
    // Detection rounds only involve nodes that arrived at this barrier, so a
    // peer death here is unexpected — the abort predicate is defensive.
    node_.cv_.wait(lk, [this] { return bitmap_replies_pending_ == 0 || node_.aborted_; });
    node_.ThrowIfAbortedLocked();
    if (!overlapped) {
      timing.Charge(Bucket::kBitmaps,
                    opts.costs.per_byte_ns * static_cast<double>(bitmap_round_bytes_));
    } else {
      round_ns = 2 * opts.costs.msg_latency_ns +
                 opts.costs.per_byte_ns * static_cast<double>(bitmap_round_bytes_);
    }
  }

  const uint64_t compared_before = detector.stats().bitmap_pairs_compared;
  BitmapLookup lookup = [this](const IntervalId& interval, PageId page) {
    auto it = collected_bitmaps_.find(std::make_pair(interval, page));
    return it == collected_bitmaps_.end() ? nullptr : &it->second;
  };
  std::vector<std::vector<RaceReport>> all_reports;
  all_reports.reserve(work.size());
  size_t total_reports = 0;
  for (const EpochCheckView& w : work) {
    all_reports.push_back(detector.CompareBitmaps(*w.pairs, lookup, w.epoch, w.needed->size()));
    total_reports += all_reports.back().size();
  }
  const uint64_t compared = detector.stats().bitmap_pairs_compared - compared_before;
  const double chunks = static_cast<double>((opts.page_size / kWordSize + 63) / 64);
  const double compare_ns = opts.costs.bitmap_cmp_word_ns * chunks * static_cast<double>(compared);
  if (!overlapped) {
    timing.Charge(Bucket::kBitmaps, compare_ns);
  } else {
    // §6.2's overlap idea: the master compares pairs whose bitmaps are
    // already local while the retrieval round is still in flight. Perfect
    // overlap — the epoch pays the longer of the two legs, not their sum.
    timing.Charge(Bucket::kBitmaps, std::max(round_ns, compare_ns));
    const double saved_ns = std::min(round_ns, compare_ns);
    pipeline_stats_.overlap_saved_ns += saved_ns;
    if constexpr (obs::kObsCompiledIn) {
      if (have_metrics_) {
        mh_.overlap_saved_ns->Add(static_cast<uint64_t>(saved_ns));
      }
    }
  }
  pipeline_stats_.bitmap_bytes_wire += bitmap_round_bytes_;
  pipeline_stats_.bitmap_bytes_raw += bitmap_round_raw_bytes_;

  bitmaps_span.SetArg("compared", compared);
  if constexpr (obs::kObsCompiledIn) {
    if (have_metrics_) {
      mh_.bitmap_pairs_compared->Add(compared);
      mh_.races_reported->Add(total_reports);
      mh_.bitmap_bytes_wire->Add(bitmap_round_bytes_);
      mh_.bitmap_bytes_raw->Add(bitmap_round_raw_bytes_);
      mh_.bitmap_bytes_saved->Add(bitmap_round_raw_bytes_ - bitmap_round_bytes_);
    }
  }
  for (std::vector<RaceReport>& reports : all_reports) {
    PublishReports(std::move(reports));
  }
  collected_bitmaps_.clear();
}

std::vector<RaceReport> BarrierCoordinator::RunDistributedCompare(
    std::unique_lock<std::mutex>& lk, EpochId msg_epoch, EpochId report_epoch,
    const std::vector<CheckPair>& pairs, size_t checklist_entries) {
  RaceDetector& detector = node_.system_->detector();
  const DsmOptions& opts = node_.opts_;
  NodeTiming& timing = node_.timing_;
  obs::Span span(node_.tracer_, node_.id_, "detector.compare.remote", "race", timing, msg_epoch);

  // Assign every check pair to one of its two member nodes. The master owns
  // any pair it participates in (its bitmaps never leave node 0); remaining
  // pairs alternate between the members by index so the compare load spreads
  // evenly. Ownership is a pure function of the (deterministic) check list,
  // so the partition is reproducible run to run.
  struct OwnedPair {
    uint32_t index;
    const CheckPair* pair;
  };
  std::vector<OwnedPair> master_pairs;
  std::map<NodeId, CompareRequestMsg> requests;
  std::set<std::tuple<NodeId, NodeId, IntervalId, PageId>> planned;  // (src, dst, interval, page)
  auto plan_ship = [&](NodeId source, NodeId dest, const IntervalId& interval, PageId page) {
    if (source == dest) {
      return;  // The owner already holds its own bitmaps.
    }
    if (!planned.insert({source, dest, interval, page}).second) {
      return;  // Another pair already ships this entry there.
    }
    requests[source].ships.push_back(ShipDirective{dest, interval, page});
  };
  uint32_t index = 0;
  for (const CheckPair& pair : pairs) {
    const NodeId na = pair.a.id.node;
    const NodeId nb = pair.b.id.node;
    const NodeId owner = (na == node_.id_ || nb == node_.id_)
                             ? node_.id_
                             : (index % 2 == 0 ? std::min(na, nb) : std::max(na, nb));
    for (PageId page : pair.pages) {
      if (pair.a.WritesPage(page) || pair.a.ReadsPage(page)) {
        plan_ship(na, owner, pair.a.id, page);
      }
      if (pair.b.WritesPage(page) || pair.b.ReadsPage(page)) {
        plan_ship(nb, owner, pair.b.id, page);
      }
    }
    if (owner == node_.id_) {
      master_pairs.push_back(OwnedPair{index, &pair});
    } else {
      ComparePairEntry entry;
      entry.pair_index = index;
      entry.a = pair.a.id;
      entry.b = pair.b.id;
      entry.pages = pair.pages;
      requests[owner].pairs.push_back(std::move(entry));
    }
    ++index;
  }
  // One BitmapShipMsg travels per distinct (source, dest) edge, so a dest
  // expects as many ship messages as it has distinct sources.
  std::map<NodeId, std::set<NodeId>> ship_sources;
  for (const auto& [src, dst, interval, page] : planned) {
    ship_sources[dst].insert(src);
  }

  CVM_CHECK_EQ(compare_replies_pending_, 0);
  CVM_CHECK_EQ(master_ships_pending_, 0);
  compare_replies_.clear();
  collected_bitmaps_.clear();
  master_ship_target_ns_ = 0;
  master_ship_bytes_wire_ = 0;
  master_ship_bytes_raw_ = 0;
  {
    auto it = ship_sources.find(node_.id_);
    master_ships_pending_ = it == ship_sources.end() ? 0 : static_cast<int>(it->second.size());
  }
  compare_replies_pending_ = static_cast<int>(requests.size());
  const uint64_t request_time = static_cast<uint64_t>(timing.now_ns());
  for (auto& [node, request] : requests) {
    request.epoch = msg_epoch;
    request.request_time_ns = request_time;
    auto it = ship_sources.find(node);
    request.expected_ship_msgs =
        it == ship_sources.end() ? 0 : static_cast<uint32_t>(it->second.size());
    node_.Send(node, std::move(request));
  }

  // The master's own compares need only the peers' shipped bitmaps; its own
  // side resolves from local storage. Compare as soon as the inbound ships
  // land — the remote owners' replies overlap this work (the Lamport merge
  // below takes the max of the two legs, not their sum).
  node_.cv_.wait(lk, [this] { return master_ships_pending_ == 0 || node_.aborted_; });
  node_.ThrowIfAbortedLocked();
  if (master_ship_target_ns_ > timing.now_ns()) {
    timing.Charge(Bucket::kBitmaps, master_ship_target_ns_ - timing.now_ns());
  }
  BitmapLookup lookup = [this](const IntervalId& interval,
                               PageId page) -> const PageAccessBitmaps* {
    if (interval.node == node_.id_) {
      return node_.bitmaps_.Find(interval.index, page);
    }
    auto it = collected_bitmaps_.find(std::make_pair(interval, page));
    return it == collected_bitmaps_.end() ? nullptr : &it->second;
  };
  uint64_t master_compared = 0;
  std::vector<std::pair<uint32_t, RaceReport>> tagged;
  for (const OwnedPair& owned : master_pairs) {
    std::vector<RaceReport> pair_reports =
        RaceDetector::CompareOnePair(owned.pair->a.id, owned.pair->b.id, owned.pair->pages,
                                     lookup, report_epoch, &master_compared);
    for (RaceReport& report : pair_reports) {
      tagged.emplace_back(owned.index, std::move(report));
    }
  }
  const double chunks = static_cast<double>((opts.page_size / kWordSize + 63) / 64);
  timing.Charge(Bucket::kBitmaps,
                opts.costs.bitmap_cmp_word_ns * chunks * static_cast<double>(master_compared));

  node_.cv_.wait(lk, [this] { return compare_replies_pending_ == 0 || node_.aborted_; });
  node_.ThrowIfAbortedLocked();
  // The distributed round's cost is its critical path: the slowest node's
  // reply arrival, not the sum over nodes.
  double target_ns = timing.now_ns();
  uint64_t remote_compared = 0;
  uint64_t remote_report_count = 0;
  uint64_t ship_bytes_wire = master_ship_bytes_wire_;
  uint64_t ship_bytes_raw = master_ship_bytes_raw_;
  for (const CompareReplyInfo& info : compare_replies_) {
    target_ns = std::max(target_ns, static_cast<double>(info.msg.reply_time_ns) +
                                        opts.costs.MessageCost(info.wire_bytes));
    remote_compared += info.msg.pairs_compared;
    remote_report_count += info.msg.reports.size();
    ship_bytes_wire += info.msg.ship_bytes_wire;
    ship_bytes_raw += info.msg.ship_bytes_raw;
    for (const RemoteReportEntry& e : info.msg.reports) {
      RaceReport report;
      report.kind = static_cast<RaceKind>(e.kind);
      report.page = e.page;
      report.word = e.word;
      report.interval_a = e.interval_a;
      report.interval_b = e.interval_b;
      report.epoch = report_epoch;
      tagged.emplace_back(e.pair_index, std::move(report));
    }
  }
  if (target_ns > timing.now_ns()) {
    timing.Charge(Bucket::kBitmaps, target_ns - timing.now_ns());
  }
  compare_replies_.clear();
  collected_bitmaps_.clear();

  // Deterministic merge: check-list order is pair_index order, and each
  // node (master included) emitted its reports in pair order via
  // CompareOnePair, so a stable sort reproduces the serial report stream.
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<RaceReport> reports;
  reports.reserve(tagged.size());
  for (auto& [pair_index, report] : tagged) {
    reports.push_back(std::move(report));
  }

  detector.AccumulateCompare(checklist_entries, master_compared + remote_compared);
  pipeline_stats_.bitmap_bytes_wire += ship_bytes_wire;
  pipeline_stats_.bitmap_bytes_raw += ship_bytes_raw;
  pipeline_stats_.remote_pairs_compared += remote_compared;
  pipeline_stats_.remote_reports += remote_report_count;
  span.SetArg("remote_pairs", remote_compared);
  if constexpr (obs::kObsCompiledIn) {
    if (have_metrics_) {
      mh_.bitmap_pairs_compared->Add(master_compared + remote_compared);
      mh_.races_reported->Add(reports.size());
      mh_.bitmap_bytes_wire->Add(ship_bytes_wire);
      mh_.bitmap_bytes_raw->Add(ship_bytes_raw);
      mh_.bitmap_bytes_saved->Add(ship_bytes_raw - ship_bytes_wire);
      mh_.remote_pairs->Add(remote_compared);
      mh_.remote_reports->Add(remote_report_count);
    }
  }
  return reports;
}

void BarrierCoordinator::ProbeMissingArrivalsLocked(EpochId epoch) {
  if (node_.id_ != 0 || epoch != node_.epoch_ || node_.aborted_ || node_.crashed_) {
    return;
  }
  const auto& arrived = arrivals_[epoch];
  for (NodeId n = 1; n < node_.opts_.num_nodes; ++n) {
    if (arrived.find(n) == arrived.end()) {
      node_.Send(n, HeartbeatProbeMsg{epoch, ++probe_token_});
      if (node_.aborted_) {
        return;  // The probe surfaced a dead peer; nothing left to check.
      }
    }
  }
}

void BarrierCoordinator::TreeRunBarrier(std::unique_lock<std::mutex>& lk, EpochId epoch) {
  const DsmOptions& opts = node_.opts_;
  NodeTiming& timing = node_.timing_;
  const int fanout = opts.barrier_fanout;
  const std::vector<NodeId> children = TreeChildren(node_.id_, fanout, opts.num_nodes);
  const bool detecting = opts.race_detection && opts.online_detection;

  // Combine phase: wait for every child subtree's arrival.
  if (!children.empty()) {
    const auto kids_arrived = [this, epoch, &children] {
      return tree_arrivals_[epoch].size() == children.size();
    };
    if (!node_.system_->crash_armed()) {
      node_.cv_.wait(lk, kids_arrived);
    } else {
      // Watchful wait, per tree edge: probe the children still missing. A
      // dead child surfaces kPeerUnreachable right here; a death elsewhere
      // is caught the same way by the dead node's own parent, whose abort
      // broadcast unblocks this wait too.
      while (!kids_arrived() && !node_.aborted_) {
        if (node_.cv_.wait_for(lk, kSuspicionInterval,
                               [&] { return kids_arrived() || node_.aborted_; })) {
          break;
        }
        const auto& arrived = tree_arrivals_[epoch];
        for (NodeId child : children) {
          if (arrived.find(child) == arrived.end()) {
            node_.Send(child, HeartbeatProbeMsg{epoch, ++probe_token_});
            if (node_.aborted_) {
              break;
            }
          }
        }
      }
      node_.ThrowIfAbortedLocked();
    }
  }
  std::map<NodeId, TreeArrival> arrivals = std::move(tree_arrivals_[epoch]);
  tree_arrivals_.erase(epoch);

  // Fold each child subtree into this node: log records, max/min clocks,
  // page interest, and the check-list fragments claimed further down.
  VectorClock min_vc = node_.vc_;
  const int num_pages = node_.pages_.num_pages();
  Bitmap interest(static_cast<uint32_t>(num_pages));
  for (PageId page = 0; page < num_pages; ++page) {
    // Interested in any page this node ever cached: a usable copy or a
    // retained stale one (data survives invalidation). Valid copies alone
    // are not enough — a node holding a momentarily-invalidated copy of a
    // working-set page still needs write notices to keep its
    // probable-owner hint fresh, or its next refetch pays extra
    // forwarding hops. Hints alone are deliberately NOT enough: every
    // page starts with a home hint, so keying on them would mark the
    // whole address space interesting and gut the filter.
    //
    // Pages this node is HOME for are always interesting, cached or not:
    // this bitmap is a snapshot taken at barrier arrival, but the service
    // thread keeps serving page requests from stragglers during the
    // barrier, and the home is where a never-touched page can be lazily
    // materialized to serve such a fetch. Under single-writer, granting
    // ownership away retains a stale-able read copy — one the shipped
    // snapshot does not cover, so without the home clause its
    // invalidation gets filtered and the next epoch reads stale data.
    // Every other mid-barrier state change happens on pages the node
    // already held data for (fetching requires the app thread, which is
    // parked in the barrier). Homes are 1/n of the address space per
    // node, so the clause keeps the down-leg sub-quadratic. The mapping
    // mirrors CoherenceProtocol::HomeOf (page % num_nodes).
    const PageEntry& entry = node_.pages_.entry(page);
    const bool is_home = (page % node_.opts_.num_nodes) == node_.id_;
    if (is_home || entry.state != PageState::kInvalid || !entry.data.empty()) {
      interest.Set(static_cast<uint32_t>(page));
    }
  }
  std::vector<TreeFragmentPair> fragments;
  tree_child_state_.clear();
  for (auto& [child, info] : arrivals) {
    timing.ObserveAtLeast(static_cast<double>(info.msg.arrive_time_ns) +
                          opts.costs.MessageCost(info.wire_bytes - info.read_notice_bytes));
    if (info.read_notice_bytes > 0) {
      timing.Charge(Bucket::kCvmMods,
                    opts.costs.per_byte_ns * static_cast<double>(info.read_notice_bytes));
    }
    // Tree-hop cost: merging one child's combined log into this node's.
    timing.Charge(Bucket::kNone, opts.costs.tree_merge_ns);
    node_.ApplyIntervalRecordsLocked(info.msg.intervals);
    node_.vc_.MergeWith(info.msg.vc);
    for (int n = 0; n < min_vc.size(); ++n) {
      min_vc.Set(n, std::min(min_vc.At(n), info.msg.min_vc.At(n)));
    }
    TreeChildState state;
    state.min_vc = std::move(info.msg.min_vc);
    state.interest = Bitmap(static_cast<uint32_t>(num_pages));
    for (PageId page : info.msg.interest) {
      state.interest.Set(static_cast<uint32_t>(page));
      interest.Set(static_cast<uint32_t>(page));
    }
    for (TreeFragmentPair& fragment : info.msg.fragments) {
      fragments.push_back(std::move(fragment));
    }
    tree_child_state_.emplace(child, std::move(state));
  }

  // Claim the check pairs whose members' LCA is this node: both records
  // first co-locate here, so this is the unique tree node allowed to emit
  // them (no pair is claimed twice, none is missed).
  DetectorStats claim_stats;
  std::vector<CheckPair> claimed;
  if (detecting) {
    const double claim_start_ns = timing.now_ns();
    const std::vector<IntervalRecord> epoch_records = CurrentEpochRecords(epoch);
    uint64_t index_entries = 0;
    obs::Span span(node_.tracer_, node_.id_, "detector.tree.claim", "race", timing, epoch);
    RaceDetector::BuildClaimedPairs(
        epoch_records, opts.overlap_method, num_pages,
        [this, fanout](NodeId a, NodeId b) { return TreeLca(a, b, fanout) == node_.id_; },
        &tree_scratch_, &claimed, &claim_stats, &index_entries);
    timing.Charge(Bucket::kIntervals,
                  opts.costs.interval_cmp_ns * static_cast<double>(claim_stats.interval_comparisons) +
                      opts.costs.page_overlap_ns * static_cast<double>(claim_stats.page_overlap_probes) +
                      opts.costs.page_index_ns * static_cast<double>(index_entries));
    span.SetArg("pairs", claimed.size());
    if (node_.id_ == 0) {
      // The root's claim build is part of the master detect path (the flat
      // master's build is timed inside RunRaceDetection); interior nodes'
      // builds run off the master clock and are deliberately not folded.
      pipeline_stats_.detect_ns += timing.now_ns() - claim_start_ns;
    }
  }

  if (node_.id_ == 0) {
    if constexpr (obs::kObsCompiledIn) {
      if (have_metrics_ && epoch == 0) {
        mh_.tree_height->Add(static_cast<uint64_t>(TreeHeightOf(opts.num_nodes, fanout)));
      }
    }
    if (detecting) {
      {
        DetectTimer detect_timer{timing, timing.now_ns(), &pipeline_stats_.detect_ns};
        node_.system_->detector().AccumulateBuild(claim_stats);
        // Rehydrate the subtree fragments from the merged log (every record
        // reaches the root) and interleave the root's own claims; (a.id, b.id)
        // order is exactly the flat serial scan's emission order, so the
        // merged check list — and with it every downstream report — is
        // byte-identical to the flat pipeline's.
        std::vector<CheckPair> pairs = std::move(claimed);
        pairs.reserve(pairs.size() + fragments.size());
        for (const TreeFragmentPair& fragment : fragments) {
          const IntervalRecord* a = node_.log_.Find(fragment.a);
          const IntervalRecord* b = node_.log_.Find(fragment.b);
          CVM_CHECK(a != nullptr) << "fragment interval missing from the merged log";
          CVM_CHECK(b != nullptr) << "fragment interval missing from the merged log";
          pairs.push_back(CheckPair{*a, *b, fragment.pages});
        }
        std::sort(pairs.begin(), pairs.end(), [](const CheckPair& x, const CheckPair& y) {
          return x.a.id == y.a.id ? x.b.id < y.b.id : x.a.id < y.a.id;
        });
        if constexpr (obs::kObsCompiledIn) {
          if (have_metrics_) {
            mh_.check_pairs->Add(pairs.size());
          }
        }
        if (!pairs.empty()) {
          DispatchDetection(lk, epoch, pairs);
        }
      }
      // Outside the timer: the flush charges its own detect_ns.
      MaybeFlushDetectBatch(lk, epoch);
    }
    SendTreeReleasesLocked(epoch, children);
    if (pending_batch_.empty()) {
      node_.GarbageCollectLocked();
    }
    if constexpr (obs::kObsCompiledIn) {
      if (node_.metrics_ != nullptr) {
        node_.PublishOverheadLocked();
        const int interval = std::max(1, node_.opts_.trace.metrics_interval);
        if ((epoch + 1) % interval == 0) {
          node_.metrics_->SnapshotEpoch(epoch, node_.timing_.now_ns());
        }
      }
    }
    return;
  }

  // Interior/leaf: forward the combined arrival one hop up.
  BarrierTreeArriveMsg up;
  up.epoch = epoch;
  up.node = node_.id_;
  up.intervals = node_.log_.All();
  up.vc = node_.vc_;
  up.min_vc = std::move(min_vc);
  up.fragments = std::move(fragments);
  if (detecting) {
    up.fragments.reserve(up.fragments.size() + claimed.size());
    for (CheckPair& pair : claimed) {
      up.fragments.push_back(TreeFragmentPair{pair.a.id, pair.b.id, std::move(pair.pages)});
    }
  }
  for (uint32_t bit : interest.SetBits()) {
    up.interest.push_back(static_cast<PageId>(bit));
  }
  up.arrive_time_ns = static_cast<uint64_t>(timing.now_ns());
  // Publish this epoch's overhead before arriving so the root's snapshot
  // (taken once the whole tree has combined) sees a consistent view.
  node_.PublishOverheadLocked();
  const NodeId parent = TreeParent(node_.id_, fanout);
  node_.Send(parent, std::move(up));

  // Release phase: wait for the parent's tailored release.
  const auto released = [this, epoch] {
    return tree_release_.has_value() && tree_release_->msg.epoch == epoch;
  };
  if (!node_.system_->crash_armed()) {
    node_.cv_.wait(lk, released);
  } else {
    while (!released() && !node_.aborted_) {
      if (node_.cv_.wait_for(lk, kSuspicionInterval,
                             [&] { return released() || node_.aborted_; })) {
        break;
      }
      // Probe the parent directly; a dead parent surfaces kPeerUnreachable
      // here and initiates the abort.
      node_.Send(parent, HeartbeatProbeMsg{epoch, ++probe_token_});
    }
    node_.ThrowIfAbortedLocked();
  }
  TreeRelease release = std::move(*tree_release_);
  tree_release_.reset();
  timing.ObserveAtLeast(static_cast<double>(release.msg.release_time_ns) +
                        opts.costs.MessageCost(release.wire_bytes - release.read_notice_bytes));
  if (release.read_notice_bytes > 0) {
    timing.Charge(Bucket::kCvmMods,
                  opts.costs.per_byte_ns * static_cast<double>(release.read_notice_bytes));
  }
  node_.ApplyIntervalRecordsLocked(release.msg.intervals);
  node_.vc_.MergeWith(release.msg.merged_vc);
  // Re-tailor and forward down before collecting: the forwarding reads this
  // node's log, and a child's interest is a subset of this subtree's, so
  // every record a child needs is guaranteed to be here.
  SendTreeReleasesLocked(epoch, children);
  node_.GarbageCollectLocked();
}

void BarrierCoordinator::SendTreeReleasesLocked(EpochId epoch,
                                                const std::vector<NodeId>& children) {
  for (NodeId child : children) {
    auto it = tree_child_state_.find(child);
    CVM_CHECK(it != tree_child_state_.end());
    const TreeChildState& state = it->second;
    BarrierTreeReleaseMsg release;
    release.epoch = epoch;
    release.merged_vc = node_.vc_;
    // Interest filtering is what keeps the release wave sub-quadratic: a
    // record whose write notices miss every valid copy in the child subtree
    // would be applied as a pure no-op there (invalidating an invalid page)
    // and then garbage-collected immediately — so it never travels. The
    // no-op claim leans on the interest fold including each node's home
    // pages (see TreeRunBarrier): copies materialized mid-barrier to serve
    // stragglers appear only at homes, so they are covered despite
    // postdating the snapshot. Read notices are stripped for the same
    // reason records are: below the root they only feed the (already
    // finished) race check.
    for (IntervalRecord& record : node_.log_.UnseenBy(state.min_vc)) {
      bool relevant = false;
      for (PageId page : record.write_pages) {
        if (state.interest.Test(static_cast<uint32_t>(page))) {
          relevant = true;
          break;
        }
      }
      if (!relevant) {
        continue;
      }
      record.read_pages.clear();
      release.intervals.push_back(std::move(record));
    }
    release.release_time_ns = static_cast<uint64_t>(node_.timing_.now_ns());
    node_.Send(child, std::move(release));
  }
  tree_child_state_.clear();
}

void BarrierCoordinator::OnTreeArrive(const Message& msg) {
  const auto& arrive = std::get<BarrierTreeArriveMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  if (arrive.epoch < node_.epoch_) {
    return;  // This epoch's combine already ran here: stale re-delivery.
  }
  if constexpr (obs::kObsCompiledIn) {
    if (have_metrics_) {
      mh_.tree_up_bytes->Add(msg.wire_bytes);
      mh_.tree_fragments->Add(arrive.fragments.size());
    }
  }
  TreeArrival info;
  info.msg = arrive;
  info.wire_bytes = msg.wire_bytes;
  info.read_notice_bytes = PayloadReadNoticeBytes(msg.payload);
  tree_arrivals_[arrive.epoch][arrive.node] = std::move(info);
  node_.cv_.notify_all();
}

void BarrierCoordinator::OnTreeRelease(const Message& msg) {
  const auto& release = std::get<BarrierTreeReleaseMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  if (tree_release_.has_value() || release.epoch < node_.epoch_) {
    return;  // This epoch's release already landed: stale re-delivery.
  }
  if constexpr (obs::kObsCompiledIn) {
    if (have_metrics_) {
      mh_.tree_down_bytes->Add(msg.wire_bytes);
    }
  }
  TreeRelease info;
  info.msg = release;
  info.wire_bytes = msg.wire_bytes;
  info.read_notice_bytes = PayloadReadNoticeBytes(msg.payload);
  tree_release_ = std::move(info);
  node_.cv_.notify_all();
}

EncodedBitmap BarrierCoordinator::EncodeMaybeInterned(NodeId dest, PageId page, bool is_write,
                                                      const Bitmap& bitmap) {
  if (!node_.opts_.intern_bitmaps) {
    return BitmapCodec::Encode(bitmap, node_.opts_.compress_bitmaps);
  }
  const InternKey key{dest, page, is_write};
  auto it = intern_out_.find(key);
  if (it != intern_out_.end() && it->second.content == bitmap) {
    // The destination's mirror already holds identical content: send the
    // 'same as epoch E' token instead of the payload.
    ++intern_stats_.hits;
    if constexpr (obs::kObsCompiledIn) {
      if (have_metrics_) {
        mh_.intern_hits->Add(1);
      }
    }
    EncodedBitmap token;
    token.encoding = BitmapEncoding::kInterned;
    token.num_bits = bitmap.size();
    token.generation = it->second.generation;
    return token;
  }
  if (it == intern_out_.end()) {
    ++intern_stats_.misses;
    if constexpr (obs::kObsCompiledIn) {
      if (have_metrics_) {
        mh_.intern_misses->Add(1);
      }
    }
    it = intern_out_.emplace(key, InternSlot{}).first;
  } else {
    // The page was redirtied with a different pattern since the cached
    // shipment: the stale slot is replaced and its generation bumped.
    ++intern_stats_.invalidations;
    if constexpr (obs::kObsCompiledIn) {
      if (have_metrics_) {
        mh_.intern_invalidations->Add(1);
      }
    }
  }
  it->second.content = bitmap;
  ++it->second.generation;
  EncodedBitmap full = BitmapCodec::Encode(bitmap, node_.opts_.compress_bitmaps);
  full.generation = it->second.generation;
  return full;
}

Bitmap BarrierCoordinator::DecodeMaybeInterned(NodeId src, PageId page, bool is_write,
                                               const EncodedBitmap& encoded) {
  if (encoded.encoding == BitmapEncoding::kInterned) {
    auto it = intern_in_.find(InternKey{src, page, is_write});
    CVM_CHECK(it != intern_in_.end()) << "interned bitmap with no cached predecessor";
    CVM_CHECK_EQ(it->second.generation, encoded.generation)
        << "interning caches out of step (reordered shipment?)";
    return it->second.content;
  }
  Bitmap bitmap = BitmapCodec::Decode(encoded);
  if (node_.opts_.intern_bitmaps) {
    InternSlot& slot = intern_in_[InternKey{src, page, is_write}];
    slot.content = bitmap;
    slot.generation = encoded.generation;
  }
  return bitmap;
}

void BarrierCoordinator::OnBarrierArrive(const Message& msg) {
  const auto& arrive = std::get<BarrierArriveMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  CVM_CHECK_EQ(node_.id_, 0);
  if (arrive.epoch < node_.epoch_) {
    return;  // The master already ran this epoch's barrier: stale re-delivery.
  }
  ArrivalInfo info;
  info.records = arrive.intervals;
  info.vc = arrive.vc;
  info.time_ns = static_cast<double>(arrive.arrive_time_ns);
  info.wire_bytes = msg.wire_bytes;
  info.read_notice_bytes = PayloadReadNoticeBytes(msg.payload);
  arrivals_[arrive.epoch][arrive.node] = std::move(info);
  node_.cv_.notify_all();
}

void BarrierCoordinator::OnBarrierRelease(const Message& msg) {
  const auto& release = std::get<BarrierReleaseMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  if (barrier_release_.has_value() || release.epoch < node_.epoch_) {
    return;  // This epoch's release already landed: stale re-delivery.
  }
  barrier_release_ = release;
  node_.cv_.notify_all();
}

void BarrierCoordinator::OnBitmapRequest(const Message& msg) {
  const auto& request = std::get<BitmapRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  std::vector<BitmapReplyEntry> entries;
  for (const CheckEntry& entry : request.entries) {
    CVM_CHECK_EQ(entry.interval.node, node_.id_);
    const PageAccessBitmaps* bitmaps = node_.bitmaps_.Find(entry.interval.index, entry.page);
    if (bitmaps == nullptr) {
      continue;
    }
    entries.push_back(
        BitmapReplyEntry{entry.interval, entry.page,
                         EncodeMaybeInterned(msg.from, entry.page, false, bitmaps->read),
                         EncodeMaybeInterned(msg.from, entry.page, true, bitmaps->write)});
  }
  BitmapReplyMsg reply;
  reply.epoch = request.epoch;
  reply.entries = std::move(entries);  // Wrapped once; shared from here on.
  node_.Send(msg.from, std::move(reply));
}

void BarrierCoordinator::OnBitmapReply(const Message& msg) {
  const auto& reply = std::get<BitmapReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  size_t wire_entry_bytes = 0;
  size_t raw_entry_bytes = 0;
  for (const BitmapReplyEntry& entry : *reply.entries) {
    wire_entry_bytes += ReplyEntryWireBytes(entry);
    raw_entry_bytes += ReplyEntryRawBytes(entry);
    collected_bitmaps_.emplace(
        std::make_pair(entry.interval, entry.page),
        PageAccessBitmaps{DecodeMaybeInterned(msg.from, entry.page, false, entry.read),
                          DecodeMaybeInterned(msg.from, entry.page, true, entry.write)});
  }
  bitmap_round_bytes_ += msg.wire_bytes;
  bitmap_round_raw_bytes_ += msg.wire_bytes + (raw_entry_bytes - wire_entry_bytes);
  CVM_CHECK_GT(bitmap_replies_pending_, 0);
  --bitmap_replies_pending_;
  if (bitmap_replies_pending_ == 0) {
    node_.cv_.notify_all();
  }
}

void BarrierCoordinator::OnCompareRequest(const Message& msg) {
  const auto& request = std::get<CompareRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  if (request.epoch < node_.epoch_) {
    return;  // Stale re-delivery of a finished round.
  }
  // Drop leftover state from rounds that already completed.
  remote_compare_.erase(remote_compare_.begin(), remote_compare_.lower_bound(node_.epoch_));
  RemoteCompareState& state = remote_compare_[request.epoch];
  if (state.have_request) {
    return;  // Duplicate.
  }
  state.have_request = true;
  node_.timing_.ObserveAtLeast(static_cast<double>(request.request_time_ns) +
                               node_.opts_.costs.MessageCost(msg.wire_bytes));

  // Execute the ship directives immediately: one BitmapShipMsg per distinct
  // destination, sent even when every listed bitmap is gone, so destinations
  // can count messages rather than entries.
  std::map<NodeId, std::vector<BitmapReplyEntry>> by_dest;
  for (const ShipDirective& ship : request.ships) {
    CVM_CHECK_EQ(ship.interval.node, node_.id_);
    std::vector<BitmapReplyEntry>& entries = by_dest[ship.dest];
    const PageAccessBitmaps* bitmaps = node_.bitmaps_.Find(ship.interval.index, ship.page);
    if (bitmaps == nullptr) {
      continue;
    }
    entries.push_back(
        BitmapReplyEntry{ship.interval, ship.page,
                         EncodeMaybeInterned(ship.dest, ship.page, false, bitmaps->read),
                         EncodeMaybeInterned(ship.dest, ship.page, true, bitmaps->write)});
  }
  for (auto& [dest, entries] : by_dest) {
    for (const BitmapReplyEntry& entry : entries) {
      state.ship_bytes_wire += ReplyEntryWireBytes(entry);
      state.ship_bytes_raw += ReplyEntryRawBytes(entry);
    }
    BitmapShipMsg out;
    out.epoch = request.epoch;
    out.entries = std::move(entries);
    out.send_time_ns = static_cast<uint64_t>(node_.timing_.now_ns());
    node_.Send(dest, std::move(out));
  }
  state.request = request;
  TryFinishRemoteCompare(request.epoch);
}

void BarrierCoordinator::OnBitmapShip(const Message& msg) {
  const auto& ship = std::get<BitmapShipMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  if (node_.id_ == 0) {
    // Master side: peers shipping the bitmaps for master-owned pairs.
    if (master_ships_pending_ <= 0 || ship.epoch != node_.epoch_) {
      return;  // Stale re-delivery.
    }
    for (const BitmapReplyEntry& entry : *ship.entries) {
      master_ship_bytes_wire_ += ReplyEntryWireBytes(entry);
      master_ship_bytes_raw_ += ReplyEntryRawBytes(entry);
      collected_bitmaps_.emplace(
          std::make_pair(entry.interval, entry.page),
          PageAccessBitmaps{DecodeMaybeInterned(msg.from, entry.page, false, entry.read),
                            DecodeMaybeInterned(msg.from, entry.page, true, entry.write)});
    }
    master_ship_target_ns_ =
        std::max(master_ship_target_ns_, static_cast<double>(ship.send_time_ns) +
                                             node_.opts_.costs.MessageCost(msg.wire_bytes));
    --master_ships_pending_;
    if (master_ships_pending_ == 0) {
      node_.cv_.notify_all();
    }
    return;
  }
  if (ship.epoch < node_.epoch_) {
    return;  // Stale re-delivery.
  }
  // Ships can land before this node's own CompareRequest; park them.
  RemoteCompareState& state = remote_compare_[ship.epoch];
  node_.timing_.ObserveAtLeast(static_cast<double>(ship.send_time_ns) +
                               node_.opts_.costs.MessageCost(msg.wire_bytes));
  for (const BitmapReplyEntry& entry : *ship.entries) {
    state.shipped.emplace(
        std::make_pair(entry.interval, entry.page),
        PageAccessBitmaps{DecodeMaybeInterned(msg.from, entry.page, false, entry.read),
                          DecodeMaybeInterned(msg.from, entry.page, true, entry.write)});
  }
  ++state.ships_received;
  TryFinishRemoteCompare(ship.epoch);
}

void BarrierCoordinator::TryFinishRemoteCompare(EpochId epoch) {
  auto it = remote_compare_.find(epoch);
  if (it == remote_compare_.end()) {
    return;
  }
  RemoteCompareState& state = it->second;
  if (!state.have_request || state.ships_received < state.request.expected_ship_msgs) {
    return;
  }
  obs::Span span(node_.tracer_, node_.id_, "detector.compare.remote", "race", node_.timing_,
                 epoch);

  BitmapLookup lookup = [this, &state](const IntervalId& interval,
                                       PageId page) -> const PageAccessBitmaps* {
    if (interval.node == node_.id_) {
      return node_.bitmaps_.Find(interval.index, page);
    }
    auto sit = state.shipped.find(std::make_pair(interval, page));
    return sit == state.shipped.end() ? nullptr : &sit->second;
  };
  CompareReplyMsg reply;
  reply.epoch = epoch;
  reply.node = node_.id_;
  uint64_t compared = 0;
  for (const ComparePairEntry& pair : state.request.pairs) {
    std::vector<RaceReport> reports =
        RaceDetector::CompareOnePair(pair.a, pair.b, pair.pages, lookup, epoch, &compared);
    for (const RaceReport& report : reports) {
      reply.reports.push_back(RemoteReportEntry{pair.pair_index,
                                                static_cast<uint8_t>(report.kind), report.page,
                                                report.word, report.interval_a,
                                                report.interval_b});
    }
  }
  const double chunks = static_cast<double>((node_.opts_.page_size / kWordSize + 63) / 64);
  node_.timing_.Charge(Bucket::kBitmaps, node_.opts_.costs.bitmap_cmp_word_ns * chunks *
                                             static_cast<double>(compared));
  span.SetArg("pairs", compared);
  reply.pairs_compared = compared;
  reply.ship_bytes_wire = state.ship_bytes_wire;
  reply.ship_bytes_raw = state.ship_bytes_raw;
  reply.reply_time_ns = static_cast<uint64_t>(node_.timing_.now_ns());
  remote_compare_.erase(it);
  node_.Send(0, std::move(reply));
}

void BarrierCoordinator::OnCompareReply(const Message& msg) {
  const auto& reply = std::get<CompareReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  CVM_CHECK_EQ(node_.id_, 0);
  if (compare_replies_pending_ <= 0 || reply.epoch != node_.epoch_) {
    return;  // Stale re-delivery.
  }
  compare_replies_.push_back(CompareReplyInfo{reply, msg.wire_bytes});
  --compare_replies_pending_;
  if (compare_replies_pending_ == 0) {
    node_.cv_.notify_all();
  }
}

}  // namespace cvm
