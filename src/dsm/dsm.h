// DsmSystem: owns the shared segment, the network fabric, the nodes, the
// race detector, and the run results. One DsmSystem performs one run at a
// time: construct, allocate shared data, Run(app), inspect the RunResult.
// A finished system can be returned to its just-constructed state with
// Reset() and run again — the warm path the multi-tenant service
// (src/svc/) is built on. Back-to-back Reset() runs are bit-identical to
// fresh constructions on every deterministic field (races, simulated time,
// traffic, detector stats); only wall-clock jitter differs.
#ifndef CVM_DSM_DSM_H_
#define CVM_DSM_DSM_H_

#include <array>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/dsm/node.h"
#include "src/dsm/options.h"
#include "src/instr/counters.h"
#include "src/mem/shared_segment.h"
#include "src/net/network.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/race/detector.h"
#include "src/race/postmortem.h"
#include "src/race/race_report.h"
#include "src/race/replay.h"
#include "src/sim/cost_model.h"

namespace cvm {

// Outcome of the crash-tolerance machinery for one run (docs/FAULTS.md
// "Crash faults & recovery"). All-zero unless a node died during the run.
struct CrashOutcome {
  bool crashed = false;                // A node hit its fail-stop point (or a
                                       // send exhausted its attempt budget).
  NodeId crash_node = kNoNode;         // The node declared dead.
  EpochId crash_epoch = -1;            // Epoch the death was observed in.
  EpochId last_consistent_epoch = -1;  // Last fully race-checked barrier epoch;
                                       // reports are truncated to this prefix.
  size_t rollbacks = 0;                // Nodes that restored a checkpoint.
  size_t locks_recovered = 0;          // Lock slots diverged from the cut.
  uint64_t checkpoint_bytes = 0;       // Largest per-node encoded-bitmap cut.
};

// Everything the evaluation harness needs from one run.
struct RunResult {
  // Race detection output (deduplicated; symbolized).
  std::vector<RaceReport> races;

  // Dynamic metrics.
  NetworkStats net;
  fault::FaultStats fault;  // All-zero unless a fault plan was enabled.
  DetectorStats detector;
  // How the detection pipeline ran (sharding, bitmap-wire compression,
  // distributed compares) — all-zero under the serial default with raw
  // encoding, except detect_epochs/shards_used.
  PipelineStats pipeline;
  // Bitmap interning cache outcome, summed over all nodes' send-side caches
  // (all-zero unless --intern-bitmaps).
  InternStats intern;
  AccessCounters access;
  // Messages that arrived with no registered dispatch handler, summed over
  // all nodes. Nonzero means a protocol wiring bug; the service's tenant
  // isolation guarantee requires this to stay zero under every fault
  // profile.
  uint64_t dispatch_unhandled = 0;
  uint64_t intervals_total = 0;
  uint64_t barriers = 0;                 // Per node (all nodes see the same count).
  uint64_t page_faults = 0;
  uint64_t bitmap_pairs_recorded = 0;    // Denominator of "Bitmaps Used".
  uint64_t shared_bytes_used = 0;
  // Storage high-water marks across nodes: retained interval records and
  // bitmap pairs. Bounded by one barrier epoch in the online system; grows
  // with the run under postmortem tracing.
  size_t max_interval_log_size = 0;
  size_t max_retained_bitmap_pairs = 0;

  // Simulated time: critical path (max node clock) and per-bucket overhead
  // sums across nodes (Figure 3 attribution).
  double sim_time_ns = 0;
  std::array<double, kNumBuckets> overhead_ns = {};
  double wall_seconds = 0;

  // §6.1 artifacts.
  SyncSchedule recorded_schedule;
  std::vector<WatchHit> watch_hits;

  // Crash-tolerance outcome; recovery.crashed == false on healthy runs.
  CrashOutcome recovery;

  double IntervalsPerBarrier(int num_nodes) const {
    if (barriers == 0 || num_nodes == 0) {
      return 0;
    }
    return static_cast<double>(intervals_total) /
           (static_cast<double>(barriers) * static_cast<double>(num_nodes));
  }
};

class DsmSystem {
 public:
  explicit DsmSystem(DsmOptions options);
  ~DsmSystem();

  DsmSystem(const DsmSystem&) = delete;
  DsmSystem& operator=(const DsmSystem&) = delete;

  const DsmOptions& options() const { return options_; }
  SharedSegment& segment() { return *segment_; }
  Network& network() { return *network_; }

  // Observability (null when the corresponding TraceConfig switch is off or
  // the layer is compiled out).
  obs::Tracer* tracer() { return tracer_.get(); }
  obs::MetricsRegistry* metrics() { return metrics_.get(); }

  // Null unless options().fault_plan is enabled.
  const fault::FaultInjector* fault_injector() const { return injector_.get(); }

  // True when the active fault plan schedules a node crash. Nodes capture
  // per-barrier checkpoints and use watchful (timeout + heartbeat) barrier
  // waits only in this mode, so healthy runs pay nothing for crash
  // tolerance and stay wire-identical to pre-crash-support builds.
  bool crash_armed() const {
    return injector_ != nullptr && injector_->plan().crash_enabled();
  }

  // Pre-run shared allocation (single-threaded, before Run).
  GlobalAddr Alloc(const std::string& name, uint64_t bytes, bool page_align = true);

  // Runs `app` on every node (the classic SPMD model all four benchmark
  // applications use), appends an implicit final barrier so the last epoch
  // is race-checked, and returns the collected results. Call once per
  // Reset() cycle.
  RunResult Run(const std::function<void(NodeContext&)>& app);

  // Returns the system to its just-constructed state without reallocating
  // the heavyweight pieces (segment backing store, network fabric, tracer
  // rings, metric objects): nodes are destroyed, inboxes and transport state
  // cleared, the segment re-zeroed, metrics/tracer/detector counters reset,
  // and collected reports dropped. After Reset() the system accepts Alloc()
  // and one more Run(), starting from exactly the state a fresh process
  // would see. Call only after Run() has returned (no live app threads).
  void Reset();

  // Swaps the fault plan for the next run (the per-tenant chaos knob of the
  // service): replaces or removes the injector and re-derives unset
  // transport timings from the cost model. Only legal before the first
  // Run() or right after Reset().
  void SetFaultPlan(const fault::FaultPlan& plan);

  // ---- Internal, used by Node ----
  Node& node(NodeId id);
  RaceDetector& detector() { return *detector_; }  // Master-only, barrier-serialized.
  PostMortemTrace& trace() { return trace_; }      // §7 post-mortem baseline.
  void AddReports(std::vector<RaceReport> reports);
  void AddWatchHit(WatchHit hit);
  SyncSchedule& recorded_schedule() { return recorded_schedule_; }

  // Crash recovery (called by nodes; see docs/FAULTS.md). ReportCount /
  // TruncateReports let the master checkpoint and retract the published
  // report prefix; NoteCrash folds one node's rollback into the run's
  // CrashOutcome.
  size_t ReportCount();
  void TruncateReports(size_t count);
  void NoteCrash(const RunAbortError& err, EpochId checkpoint_epoch, size_t locks_recovered,
                 uint64_t checkpoint_bytes);

 private:
  // (Re)creates the injector for `plan` — deriving unset timings from the
  // cost model — and attaches it to the network; a disabled plan detaches.
  void ApplyFaultPlan(const fault::FaultPlan& plan);

  DsmOptions options_;
  std::unique_ptr<SharedSegment> segment_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::unique_ptr<RaceDetector> detector_;
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::vector<std::unique_ptr<Node>> nodes_;

  PostMortemTrace trace_;

  std::mutex results_mu_;
  std::vector<RaceReport> reports_;
  std::vector<WatchHit> watch_hits_;
  SyncSchedule recorded_schedule_;
  CrashOutcome crash_outcome_;
  bool ran_ = false;
};

// Convenience: run `app` under the given options with a fresh system and an
// allocation callback. Returns the result.
RunResult RunDsmApp(const DsmOptions& options,
                    const std::function<void(DsmSystem&)>& setup,
                    const std::function<void(NodeContext&)>& app);

}  // namespace cvm

#endif  // CVM_DSM_DSM_H_
