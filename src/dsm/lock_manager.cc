#include "src/dsm/lock_manager.h"

#include <utility>

#include "src/common/check.h"
#include "src/dsm/dsm.h"
#include "src/dsm/node.h"

namespace cvm {

LockManager::LockManager(Node& node)
    : node_(node),
      locks_(node.opts_.num_locks),
      manager_last_requester_(node.opts_.num_locks, kNoNode) {
  for (LockId l = 0; l < node_.opts_.num_locks; ++l) {
    locks_[l].token = (ManagerOf(l) == node_.id_);
    locks_[l].release_vc = VectorClock(node_.opts_.num_nodes);  // Nothing precedes it yet.
    manager_last_requester_[l] = ManagerOf(l);
  }
}

NodeId LockManager::ManagerOf(LockId lock) const { return lock % node_.opts_.num_nodes; }

void LockManager::RegisterHandlers(MessageDispatcher& dispatcher) {
  dispatcher.Register<LockRequestMsg>([this](const Message& msg) { OnLockRequest(msg); });
  dispatcher.Register<LockGrantMsg>([this](const Message& msg) { OnLockGrant(msg); });
}

void LockManager::Grant(LockId lock, NodeId requester, const VectorClock& requester_vc) {
  LockState& ls = locks_[lock];
  CVM_CHECK(ls.token);
  CVM_CHECK(!ls.held);
  const DsmOptions& opts = node_.opts_;
  if (opts.record_sync_order) {
    node_.system_->recorded_schedule().RecordGrant(lock, requester);
  }
  if (opts.replay_schedule != nullptr && opts.replay_schedule->NextGrantee(lock) == requester) {
    // Advance the replay cursor; past the schedule's end any order goes.
    const_cast<SyncSchedule*>(opts.replay_schedule)->ConsumeGrant(lock, requester);
  }
  if (requester == node_.id_) {
    ls.held = true;
    lock_granted_self_ = true;
    node_.cv_.notify_all();
    return;
  }
  ls.token = false;
  ls.successor = requester;
  LockGrantMsg grant;
  grant.lock = lock;
  if (opts.replay_schedule != nullptr) {
    grant.handoff = std::move(ls.pending);  // Queued requests follow the token.
    ls.pending.clear();
  }
  // Only intervals preceding the release travel with the grant; newer local
  // intervals are concurrent with the acquirer and must stay that way.
  for (IntervalRecord& record : node_.log_.UnseenBy(requester_vc)) {
    if (record.id.index <= ls.release_vc.At(record.id.node)) {
      grant.intervals.push_back(std::move(record));
    }
  }
  grant.releaser_vc = ls.release_vc;
  grant.releaser_time_ns = static_cast<uint64_t>(ls.release_time_ns);
  node_.Send(requester, std::move(grant));
}

void LockManager::TryGrantPending(LockId lock) {
  LockState& ls = locks_[lock];
  if (!ls.token || ls.held || ls.pending.empty()) {
    return;
  }
  size_t pick = ls.pending.size();
  if (node_.opts_.replay_schedule != nullptr) {
    const NodeId next = node_.opts_.replay_schedule->NextGrantee(lock);
    if (next == kNoNode) {
      pick = 0;
    } else {
      for (size_t i = 0; i < ls.pending.size(); ++i) {
        if (ls.pending[i].requester == next) {
          pick = i;
          break;
        }
      }
      if (pick == ls.pending.size()) {
        return;  // Hold the token until the scheduled requester asks.
      }
    }
  } else {
    pick = 0;
  }
  LockRequestMsg request = ls.pending[pick];
  ls.pending.erase(ls.pending.begin() + static_cast<int64_t>(pick));
  Grant(lock, request.requester, request.requester_vc);
}

void LockManager::Acquire(std::unique_lock<std::mutex>& lk, LockId lock) {
  LockState& ls = locks_[lock];
  const DsmOptions& opts = node_.opts_;
  const bool fast_path =
      ls.token && !ls.held &&
      (opts.replay_schedule != nullptr
           ? opts.replay_schedule->NextGrantee(lock) == node_.id_ ||
                 (opts.replay_schedule->NextGrantee(lock) == kNoNode && ls.pending.empty())
           : ls.pending.empty());
  if (fast_path) {
    Grant(lock, node_.id_, node_.vc_);
    lock_granted_self_ = false;
    return;
  }
  CVM_CHECK_EQ(waiting_lock_, -1);
  waiting_lock_ = lock;
  lock_granted_self_ = false;
  lock_grant_.reset();
  LockRequestMsg request;
  request.lock = lock;
  request.requester = node_.id_;
  request.requester_vc = node_.vc_;
  node_.ChargeMessageLocked(PayloadByteSize(Payload(request)), 0);
  node_.Send(ManagerOf(lock), request);
  node_.cv_.wait(lk, [this] {
    return lock_granted_self_ || lock_grant_.has_value() || node_.aborted_;
  });
  node_.ThrowIfAbortedLocked();
  waiting_lock_ = -1;
  if (lock_grant_.has_value()) {
    LockGrantMsg grant = std::move(*lock_grant_);
    lock_grant_.reset();
    const size_t bytes = PayloadByteSize(Payload(grant));
    const size_t rn_bytes = PayloadReadNoticeBytes(Payload(grant));
    node_.timing_.ObserveAtLeast(static_cast<double>(grant.releaser_time_ns) +
                                 opts.costs.MessageCost(bytes - rn_bytes));
    if (rn_bytes > 0) {
      node_.timing_.Charge(Bucket::kCvmMods,
                           opts.costs.per_byte_ns * static_cast<double>(rn_bytes));
    }
    node_.ApplyIntervalRecordsLocked(grant.intervals);
    node_.vc_.MergeWith(grant.releaser_vc);
    LockState& state = locks_[lock];
    state.token = true;
    state.held = true;
    for (LockRequestMsg& queued : grant.handoff) {
      state.pending.push_back(std::move(queued));
    }
  }
  lock_granted_self_ = false;
}

LockManager::Snapshot LockManager::SnapshotState() const {
  Snapshot snapshot;
  snapshot.locks = locks_;
  snapshot.manager_last_requester = manager_last_requester_;
  return snapshot;
}

size_t LockManager::RestoreState(const Snapshot& snapshot) {
  CVM_CHECK_EQ(snapshot.locks.size(), locks_.size());
  size_t recovered = 0;
  for (size_t l = 0; l < locks_.size(); ++l) {
    const LockState& live = locks_[l];
    const LockState& saved = snapshot.locks[l];
    if (live.token != saved.token || live.held != saved.held ||
        live.successor != saved.successor ||
        live.pending.size() != saved.pending.size() ||
        manager_last_requester_[l] != snapshot.manager_last_requester[l]) {
      ++recovered;
    }
  }
  locks_ = snapshot.locks;
  manager_last_requester_ = snapshot.manager_last_requester;
  // Transient acquire state belongs to the torn epoch.
  lock_grant_.reset();
  lock_granted_self_ = false;
  waiting_lock_ = -1;
  return recovered;
}

void LockManager::Release(LockId lock) {
  LockState& ls = locks_[lock];
  ls.held = false;
  ls.release_vc = node_.vc_;  // The just-ended interval is the last one the
  ls.release_time_ns = node_.timing_.now_ns();  // acquirer is ordered after.
  TryGrantPending(lock);
}

void LockManager::HandleForwardedRequest(const LockRequestMsg& request) {
  locks_[request.lock].pending.push_back(request);
  TryGrantPending(request.lock);
}

void LockManager::OnLockRequest(const Message& msg) {
  const auto& request = std::get<LockRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  if (node_.opts_.replay_schedule != nullptr) {
    // Replay routing: out-of-schedule grants break the last-requester chain
    // invariant, so requests instead chase the token along successor links
    // until they reach the current holder, and queue there.
    LockState& ls = locks_[request.lock];
    if (ls.token) {
      LockRequestMsg queued = request;
      queued.forwarded = true;
      HandleForwardedRequest(queued);
      return;
    }
    NodeId target = ls.successor;
    if (target == kNoNode || target == node_.id_) {
      target = ManagerOf(request.lock);
    }
    CVM_CHECK_NE(target, node_.id_)
        << "token successor chain broken for lock " << request.lock;
    LockRequestMsg forwarded = request;
    forwarded.forwarded = true;
    node_.Send(target, forwarded);
    return;
  }
  if (!request.forwarded) {
    CVM_CHECK_EQ(ManagerOf(request.lock), node_.id_);
    const NodeId target = manager_last_requester_[request.lock];
    manager_last_requester_[request.lock] = request.requester;
    LockRequestMsg forwarded = request;
    forwarded.forwarded = true;
    if (target == node_.id_) {
      HandleForwardedRequest(forwarded);
    } else {
      node_.Send(target, forwarded);
    }
  } else {
    HandleForwardedRequest(request);
  }
}

void LockManager::OnLockGrant(const Message& msg) {
  const auto& grant = std::get<LockGrantMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(node_.mu_);
  if (waiting_lock_ != grant.lock || lock_grant_.has_value()) {
    return;  // Matches no outstanding acquire: stale re-delivery.
  }
  lock_grant_ = grant;
  node_.cv_.notify_all();
}

}  // namespace cvm
