#include "src/dsm/node.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/dsm/dsm.h"
#include "src/mem/diff.h"

namespace cvm {

namespace {

// RAII complete-span ('X') helper: captures simulated + wall time at
// construction, emits one event at destruction. A null tracer makes both
// ends a single branch; under -DCVM_OBS=OFF the whole class folds away.
class Span {
 public:
  Span(obs::Tracer* tracer, NodeId node, const char* name, const char* cat,
       const NodeTiming& timing, EpochId epoch)
      : tracer_(tracer), timing_(timing) {
    if constexpr (!obs::kObsCompiledIn) {
      return;
    }
    if (tracer_ == nullptr) {
      return;
    }
    event_.name = name;
    event_.cat = cat;
    event_.phase = 'X';
    event_.node = node;
    event_.epoch = epoch;
    sim_start_ns_ = timing_.now_ns();
    wall_start_ns_ = tracer_->WallNowNs();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void SetArg(const char* name, uint64_t value) {
    event_.arg_name = name;
    event_.arg_value = value;
  }

  ~Span() {
    if constexpr (!obs::kObsCompiledIn) {
      return;
    }
    if (tracer_ == nullptr) {
      return;
    }
    event_.sim_ts_ns = sim_start_ns_;
    event_.sim_dur_ns = timing_.now_ns() - sim_start_ns_;
    event_.wall_ts_ns = wall_start_ns_;
    event_.wall_dur_ns = tracer_->WallNowNs() - wall_start_ns_;
    tracer_->Emit(event_);
  }

 private:
  obs::Tracer* const tracer_;
  const NodeTiming& timing_;
  obs::TraceEvent event_;
  double sim_start_ns_ = 0;
  uint64_t wall_start_ns_ = 0;
};

}  // namespace

Node::Node(NodeId id, DsmSystem* system)
    : system_(system),
      id_(id),
      opts_(system->options()),
      pages_(system->segment().num_pages(), opts_.page_size),
      am_owner_(system->segment().num_pages(), false),
      home_materialized_(system->segment().num_pages(), false),
      vc_(opts_.num_nodes),
      log_(opts_.num_nodes),
      bitmaps_(static_cast<uint32_t>(opts_.page_size / kWordSize)),
      filter_(opts_.page_size, system->segment().size_bytes()),
      locks_(opts_.num_locks),
      manager_last_requester_(opts_.num_locks, kNoNode) {
  home_owner_.assign(pages_.num_pages(), kNoNode);
  for (PageId p = 0; p < pages_.num_pages(); ++p) {
    const NodeId home = HomeOf(p);
    am_owner_[p] = (home == id_);
    if (home == id_) {
      home_owner_[p] = id_;
    }
    pages_.entry(p).probable_owner = home;
  }
  for (LockId l = 0; l < opts_.num_locks; ++l) {
    locks_[l].token = (ManagerOf(l) == id_);
    locks_[l].release_vc = VectorClock(opts_.num_nodes);  // Nothing precedes it yet.
    manager_last_requester_[l] = ManagerOf(l);
  }
  InitObservability();
  BeginIntervalLocked();  // Interval 0. Single-threaded here; no lock needed.
}

void Node::InitObservability() {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  tracer_ = system_->tracer();
  metrics_ = system_->metrics();
  diff_obs_.tracer = tracer_;
  diff_obs_.node = id_;
  obs::Counter* twins = nullptr;
  obs::Counter* installs = nullptr;
  obs::Counter* invalidations = nullptr;
  if (metrics_ != nullptr) {
    mh_.page_faults = metrics_->counter("dsm.page_faults");
    mh_.page_fetches = metrics_->counter("dsm.page_fetches");
    mh_.locks_acquired = metrics_->counter("dsm.locks_acquired");
    mh_.barriers = metrics_->counter("dsm.barriers");
    mh_.intervals = metrics_->counter("dsm.intervals");
    mh_.check_pairs = metrics_->counter("race.check_pairs");
    mh_.checklist_entries = metrics_->counter("race.checklist_entries");
    mh_.bitmap_pairs_compared = metrics_->counter("race.bitmap_pairs_compared");
    mh_.races_reported = metrics_->counter("race.races_reported");
    for (int b = 0; b < kNumBuckets; ++b) {
      mh_.overhead[static_cast<size_t>(b)] =
          metrics_->counter(BucketMetricName(static_cast<Bucket>(b)));
    }
    twins = metrics_->counter("mem.twins_created");
    installs = metrics_->counter("mem.page_installs");
    invalidations = metrics_->counter("mem.page_invalidations");
    diff_obs_.diffs_created = metrics_->counter("mem.diffs_created");
    diff_obs_.diff_size_words = metrics_->histogram("mem.diff_size_words");
    diff_obs_.words_applied = metrics_->counter("mem.diff_words_applied");
  }
  if (tracer_ != nullptr || metrics_ != nullptr) {
    pages_.AttachObservability(tracer_, id_, twins, installs, invalidations);
  }
}

void Node::TraceInstant(const char* name, const char* cat, const char* arg_name,
                        uint64_t arg_value) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (tracer_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'i';
  event.node = id_;
  event.epoch = epoch_;
  event.sim_ts_ns = timing_.now_ns();
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  tracer_->Emit(event);
}

void Node::PublishOverheadLocked() {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (metrics_ == nullptr) {
    return;
  }
  for (int b = 0; b < kNumBuckets; ++b) {
    const double total = timing_.overhead_ns(static_cast<Bucket>(b));
    const double delta = total - overhead_published_[static_cast<size_t>(b)];
    if (delta > 0) {
      mh_.overhead[static_cast<size_t>(b)]->Add(static_cast<uint64_t>(delta));
      overhead_published_[static_cast<size_t>(b)] = total;
    }
  }
}

Node::~Node() = default;

int Node::num_nodes() const { return opts_.num_nodes; }

NodeId Node::HomeOf(PageId page) const { return page % opts_.num_nodes; }

NodeId Node::ManagerOf(LockId lock) const { return lock % opts_.num_nodes; }

void Node::Send(NodeId to, Payload payload) {
  Message msg;
  msg.from = id_;
  msg.to = to;
  msg.payload = std::move(payload);
  // Under fault injection the reliable transport returns the simulated time
  // this sender spent in retransmission backoff and injected delay; charge it
  // to the node's clock like any other network cost. Zero on the clean path.
  const double penalty_ns = system_->network().Send(std::move(msg));
  if (penalty_ns > 0) {
    timing_.Charge(Bucket::kNone, penalty_ns);
  }
}

void Node::StartService() {
  service_thread_ = std::thread([this] { ServiceLoop(); });
}

void Node::JoinService() {
  if (service_thread_.joinable()) {
    service_thread_.join();
  }
}

void Node::ServiceLoop() {
  while (true) {
    std::optional<Message> msg = system_->network().Recv(id_);
    if (!msg.has_value()) {
      return;  // Network closed.
    }
    if (std::get_if<PageRequestMsg>(&msg->payload) != nullptr) {
      OnPageRequest(*msg);
    } else if (std::get_if<PageReplyMsg>(&msg->payload) != nullptr) {
      OnPageReply(*msg);
    } else if (std::get_if<DiffFlushMsg>(&msg->payload) != nullptr) {
      OnDiffFlush(*msg);
    } else if (std::get_if<DiffFlushAckMsg>(&msg->payload) != nullptr) {
      OnDiffFlushAck(*msg);
    } else if (std::get_if<LockRequestMsg>(&msg->payload) != nullptr) {
      OnLockRequest(*msg);
    } else if (std::get_if<LockGrantMsg>(&msg->payload) != nullptr) {
      OnLockGrant(*msg);
    } else if (std::get_if<BarrierArriveMsg>(&msg->payload) != nullptr) {
      OnBarrierArrive(*msg);
    } else if (std::get_if<BitmapRequestMsg>(&msg->payload) != nullptr) {
      OnBitmapRequest(*msg);
    } else if (std::get_if<BitmapReplyMsg>(&msg->payload) != nullptr) {
      OnBitmapReply(*msg);
    } else if (std::get_if<BarrierReleaseMsg>(&msg->payload) != nullptr) {
      OnBarrierRelease(*msg);
    } else if (std::get_if<ErcUpdateMsg>(&msg->payload) != nullptr) {
      OnErcUpdate(*msg);
    } else if (std::get_if<ErcAckMsg>(&msg->payload) != nullptr) {
      OnErcAck(*msg);
    } else {
      // ShutdownMsg: nothing to do; the Recv loop exits on network close.
    }
  }
}

// ---------------- Cost helpers ----------------

void Node::ChargeInstrumentationLocked() {
  timing_.Charge(Bucket::kProcCall, opts_.costs.proc_call_ns);
  timing_.Charge(Bucket::kAccessCheck, opts_.costs.access_check_ns);
}

void Node::ChargeMessageLocked(size_t bytes, size_t read_notice_bytes) {
  CVM_CHECK_GE(bytes, read_notice_bytes);
  timing_.Charge(Bucket::kNone, opts_.costs.MessageCost(bytes - read_notice_bytes));
  if (read_notice_bytes > 0) {
    timing_.Charge(Bucket::kCvmMods,
                   opts_.costs.per_byte_ns * static_cast<double>(read_notice_bytes));
  }
}

// ---------------- Shared accesses ----------------

void Node::Compute(uint64_t units) {
  std::lock_guard<std::mutex> guard(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.compute_unit_ns * static_cast<double>(units));
}

void Node::PrivateAccess(uint64_t va, bool is_write) {
  std::lock_guard<std::mutex> guard(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  if (opts_.race_detection) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(va, is_write);
    CVM_CHECK(!result.shared) << "private VA resolved as shared";
  }
}

uint64_t Node::AllocPrivateVa(uint64_t bytes) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t va = private_va_next_;
  private_va_next_ += (bytes + kWordSize - 1) / kWordSize * kWordSize;
  return va;
}

uint32_t Node::ReadWord(GlobalAddr addr) {
  std::unique_lock<std::mutex> lk(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  const PageId page = static_cast<PageId>(addr / opts_.page_size);
  const uint32_t word = WordInPage(addr % opts_.page_size);
  if (opts_.race_detection) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(SharedVa(addr), /*is_write=*/false);
    CVM_CHECK(result.shared);
    bitmaps_.RecordRead(cur_interval_, page, word);
    if (cur_reads_.insert(page).second) {
      timing_.Charge(Bucket::kCvmMods, opts_.costs.notice_setup_ns);
    }
    if (opts_.watch.has_value()) {
      const Watchpoint& w = *opts_.watch;
      if (addr >= w.addr && addr < w.addr + w.bytes && (w.epoch == -1 || epoch_ == w.epoch)) {
        system_->AddWatchHit(
            WatchHit{id_, IntervalId{id_, cur_interval_}, epoch_, addr, false, site_});
      }
    }
  }
  if (!pages_.Readable(page)) {
    ReadFaultLocked(lk, page);
  }
  const uint32_t value = pages_.ReadWord(page, word);
  if (!pending_serves_.empty()) {
    DrainPendingServesLocked(page);
  }
  return value;
}

void Node::WriteWord(GlobalAddr addr, uint32_t value) {
  std::unique_lock<std::mutex> lk(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  const PageId page = static_cast<PageId>(addr / opts_.page_size);
  const uint32_t word = WordInPage(addr % opts_.page_size);
  // §6.5: under diff-derived write detection, store instructions are not
  // instrumented at all — writes are mined from diffs at release time.
  if (opts_.race_detection && opts_.write_detection == WriteDetection::kInstrumentation) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(SharedVa(addr), /*is_write=*/true);
    CVM_CHECK(result.shared);
    bitmaps_.RecordWrite(cur_interval_, page, word);
    if (opts_.watch.has_value()) {
      const Watchpoint& w = *opts_.watch;
      if (addr >= w.addr && addr < w.addr + w.bytes && (w.epoch == -1 || epoch_ == w.epoch)) {
        system_->AddWatchHit(
            WatchHit{id_, IntervalId{id_, cur_interval_}, epoch_, addr, true, site_});
      }
    }
  }
  if (!pages_.Writable(page)) {
    WriteFaultLocked(lk, page);
  }
  pages_.WriteWord(page, word, value);
  if (!pending_serves_.empty()) {
    DrainPendingServesLocked(page);
  }
}

void Node::RecordWriteNoticeLocked(PageId page) { cur_writes_.insert(page); }

void Node::MaterializeHomeLocked(PageId page) {
  PageEntry& entry = pages_.entry(page);
  if (!home_materialized_[page]) {
    CVM_CHECK_EQ(HomeOf(page), id_);
    pages_.Install(page, system_->segment().InitialPage(page), PageState::kReadOnly);
    home_materialized_[page] = true;
  } else if (entry.state == PageState::kInvalid) {
    // Home bytes are always current w.r.t. causally-required (flushed)
    // modifications under the home-based protocol, so revalidation is local.
    entry.state = PageState::kReadOnly;
  }
}

void Node::ReadFaultLocked(std::unique_lock<std::mutex>& lk, PageId page) {
  ++page_faults_;
  Span span(tracer_, id_, "page.fault.read", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_faults != nullptr) {
      mh_.page_faults->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.page_fault_ns);
  if (SingleWriterData()) {
    if (am_owner_[page]) {
      MaterializeHomeLocked(page);
      return;
    }
    FetchPageLocked(lk, page, /*want_write=*/false);
  } else {
    if (HomeOf(page) == id_) {
      MaterializeHomeLocked(page);
      return;
    }
    FetchPageLocked(lk, page, /*want_write=*/false);
  }
}

void Node::WriteFaultLocked(std::unique_lock<std::mutex>& lk, PageId page) {
  ++page_faults_;
  Span span(tracer_, id_, "page.fault.write", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_faults != nullptr) {
      mh_.page_faults->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.page_fault_ns);
  if (SingleWriterData()) {
    if (am_owner_[page]) {
      if (!pages_.Readable(page)) {
        MaterializeHomeLocked(page);
      }
      pages_.entry(page).state = PageState::kReadWrite;
    } else {
      FetchPageLocked(lk, page, /*want_write=*/true);
    }
    RecordWriteNoticeLocked(page);
    return;
  }
  // Multi-writer (home-based): any node may write after twinning its copy.
  if (!pages_.Readable(page)) {
    if (HomeOf(page) == id_) {
      MaterializeHomeLocked(page);
    } else {
      FetchPageLocked(lk, page, /*want_write=*/false);
    }
  }
  PageEntry& entry = pages_.entry(page);
  if (!entry.twin.has_value()) {
    pages_.MakeTwin(page);
    twinned_.insert(page);
  }
  entry.state = PageState::kReadWrite;
  if (opts_.write_detection == WriteDetection::kInstrumentation) {
    RecordWriteNoticeLocked(page);
  }
}

void Node::FetchPageLocked(std::unique_lock<std::mutex>& lk, PageId page, bool want_write) {
  CVM_CHECK(!page_reply_.has_value());
  CVM_CHECK_EQ(page_fetch_pending_, -1);
  page_fetch_pending_ = page;
  Span span(tracer_, id_, "page.fetch", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_fetches != nullptr) {
      mh_.page_fetches->Increment();
    }
  }
  PageRequestMsg request;
  request.page = page;
  request.want_write = want_write;
  request.requester = id_;
  // All requests route through the page's home: the multi-writer home owns
  // the data; the single-writer home is the manager that serializes
  // ownership transfers (two hops worst case).
  Send(HomeOf(page), request);
  cv_.wait(lk, [this] { return page_reply_.has_value(); });
  PageReplyMsg reply = std::move(*page_reply_);
  page_reply_.reset();
  page_fetch_pending_ = -1;
  CVM_CHECK_EQ(reply.page, page);

  // Round-trip cost: request out, page back.
  ChargeMessageLocked(PayloadByteSize(Payload(request)), 0);
  ChargeMessageLocked(PayloadByteSize(Payload(PageReplyMsg{page, {}, false})) + reply.data.size(),
                      0);

  const PageState state =
      (want_write && SingleWriterData()) ? PageState::kReadWrite : PageState::kReadOnly;
  const bool ownership = reply.grants_ownership;
  pages_.Install(page, std::move(reply.data), state);
  if (ownership) {
    am_owner_[page] = true;
    pages_.entry(page).probable_owner = id_;
  }
  // Requests that chased the in-flight ownership are served by the caller
  // once its own access has completed (DrainPendingServesLocked).
}

// ---------------- Intervals ----------------

void Node::BeginIntervalLocked() {
  cur_interval_ = vc_.Tick(id_);
  cur_reads_.clear();
  cur_writes_.clear();
  TraceInstant("interval.open", "protocol", "interval", static_cast<uint64_t>(cur_interval_));
}

void Node::EndIntervalLocked(std::unique_lock<std::mutex>& lk) {
  if (opts_.protocol == ProtocolKind::kMultiWriterHomeLrc) {
    FlushDiffsLocked(lk);
  } else {
    // Downgrade pages written this interval so the next interval's first
    // write faults again and generates a fresh write notice.
    for (PageId page : cur_writes_) {
      PageEntry& entry = pages_.entry(page);
      if (entry.state == PageState::kReadWrite) {
        entry.state = PageState::kReadOnly;
      }
    }
  }

  IntervalRecord record;
  record.id = IntervalId{id_, cur_interval_};
  record.vc = vc_;
  record.epoch = epoch_;
  record.write_pages.assign(cur_writes_.begin(), cur_writes_.end());
  record.read_pages.assign(cur_reads_.begin(), cur_reads_.end());
  log_.Insert(record);
  if (opts_.race_detection && opts_.postmortem_trace) {
    system_->trace().AddRecord(record);
  }
  max_log_size_ = std::max(max_log_size_, log_.size());
  max_retained_pairs_ = std::max(max_retained_pairs_, bitmaps_.RetainedPairs());
  ++intervals_created_;
  TraceInstant("interval.close", "protocol", "interval", static_cast<uint64_t>(cur_interval_));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.intervals != nullptr) {
      mh_.intervals->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.interval_setup_ns);
  if (opts_.race_detection) {
    // The race-detection additions to the interval structure (read-notice
    // list wiring) are CVM-modification overhead.
    timing_.Charge(Bucket::kCvmMods, opts_.costs.notice_setup_ns);
  }
  cur_reads_.clear();
  cur_writes_.clear();

  // Eager RC: push the notices to every node NOW and block for acks — the
  // cost LRC's central intuition avoids ("competing accesses in correct
  // programs will be separated by synchronization", so notices can ride on
  // later synchronization messages instead).
  if (opts_.protocol == ProtocolKind::kEagerRcInvalidate && !record.write_pages.empty() &&
      opts_.num_nodes > 1) {
    CVM_CHECK(erc_tokens_outstanding_.empty());
    for (NodeId n = 0; n < opts_.num_nodes; ++n) {
      if (n == id_) {
        continue;
      }
      ErcUpdateMsg update;
      update.record = record;
      update.token = flush_token_next_++;
      erc_tokens_outstanding_.insert(update.token);
      const size_t bytes = PayloadByteSize(Payload(update));
      const size_t rn_bytes = PayloadReadNoticeBytes(Payload(update));
      ChargeMessageLocked(bytes, rn_bytes);
      Send(n, std::move(update));
    }
    timing_.Charge(Bucket::kNone, opts_.costs.MessageCost(kMessageHeaderBytes + 8));
    cv_.wait(lk, [this] { return erc_tokens_outstanding_.empty(); });
  }
}

void Node::FlushDiffsLocked(std::unique_lock<std::mutex>& lk) {
  if (twinned_.empty()) {
    return;
  }
  Span span(tracer_, id_, "diff.flush", "protocol", timing_, epoch_);
  span.SetArg("pages", twinned_.size());
  std::map<NodeId, std::vector<Diff>> by_home;
  for (PageId page : twinned_) {
    PageEntry& entry = pages_.entry(page);
    CVM_CHECK(entry.twin.has_value());
    Diff diff = MakeDiff(page, IntervalId{id_, cur_interval_}, *entry.twin, entry.data,
                         obs::kObsCompiledIn ? &diff_obs_ : nullptr);
    timing_.Charge(Bucket::kNone,
                   opts_.costs.diff_word_ns * static_cast<double>(opts_.page_size / kWordSize));
    pages_.DropTwin(page);
    entry.state = PageState::kReadOnly;
    if (opts_.write_detection == WriteDetection::kDiffs) {
      // §6.5: write accesses mined from the diff. Same-value overwrites are
      // invisible here — the weaker guarantee the paper describes.
      if (!diff.words.empty()) {
        cur_writes_.insert(page);
        for (const DiffWord& dw : diff.words) {
          bitmaps_.RecordWrite(cur_interval_, page, dw.word);
        }
      }
    }
    if (HomeOf(page) == id_) {
      continue;  // Home's frame already holds the writes.
    }
    if (!diff.words.empty()) {
      by_home[HomeOf(page)].push_back(std::move(diff));
    }
  }
  twinned_.clear();

  CVM_CHECK(flush_tokens_outstanding_.empty());
  const bool any_flush = !by_home.empty();
  for (auto& [home, diffs] : by_home) {
    DiffFlushMsg flush;
    flush.diffs = std::move(diffs);
    flush.token = flush_token_next_++;
    flush_tokens_outstanding_.insert(flush.token);
    ChargeMessageLocked(PayloadByteSize(Payload(flush)), 0);
    Send(home, std::move(flush));
  }
  if (any_flush) {
    // One ack round-trip of latency (flushes proceed in parallel).
    timing_.Charge(Bucket::kNone, opts_.costs.MessageCost(kMessageHeaderBytes + 8));
    cv_.wait(lk, [this] { return flush_tokens_outstanding_.empty(); });
  }
}

void Node::ApplyIntervalRecordsLocked(const std::vector<IntervalRecord>& records) {
  for (const IntervalRecord& record : records) {
    if (log_.Contains(record.id)) {
      // Already applied — unless it only arrived via an eager push, whose
      // invalidation may have been overtaken by an in-flight fetch install.
      // This acquire covers the record, so apply the notices here, once.
      auto eager = erc_eager_only_.find(record.id);
      if (eager == erc_eager_only_.end()) {
        continue;
      }
      erc_eager_only_.erase(eager);
      for (PageId page : record.write_pages) {
        if (!am_owner_[page]) {
          pages_.Invalidate(page);
        }
      }
      continue;
    }
    log_.Insert(record);
    if (record.id.node == id_) {
      continue;
    }
    for (PageId page : record.write_pages) {
      if (SingleWriterData()) {
        // The owner's copy reflects the whole serialized page history.
        if (am_owner_[page]) {
          continue;
        }
        pages_.Invalidate(page);
      } else {
        // Home bytes always include causally-flushed diffs.
        if (HomeOf(page) == id_) {
          continue;
        }
        CVM_CHECK(!pages_.entry(page).twin.has_value())
            << "write notice applied while twin outstanding";
        pages_.Invalidate(page);
      }
    }
  }
}

void Node::GarbageCollectLocked() {
  log_.DiscardDominatedBy(vc_);
  for (auto it = erc_eager_only_.begin(); it != erc_eager_only_.end();) {
    it = (it->index <= vc_.At(it->node)) ? erc_eager_only_.erase(it) : std::next(it);
  }
  if (!opts_.postmortem_trace) {
    bitmaps_.DiscardThrough(cur_interval_);  // Epoch checked; trace data can go.
  }
}

// ---------------- Locks ----------------

bool Node::ReplayAllowsLocked(LockId lock, NodeId grantee) const {
  if (opts_.replay_schedule == nullptr) {
    return true;
  }
  const NodeId next = opts_.replay_schedule->NextGrantee(lock);
  return next == kNoNode || next == grantee;
}

void Node::GrantLocked(LockId lock, NodeId requester, const VectorClock& requester_vc) {
  LockState& ls = locks_[lock];
  CVM_CHECK(ls.token);
  CVM_CHECK(!ls.held);
  if (opts_.record_sync_order) {
    system_->recorded_schedule().RecordGrant(lock, requester);
  }
  if (opts_.replay_schedule != nullptr &&
      opts_.replay_schedule->NextGrantee(lock) == requester) {
    // Advance the replay cursor; past the schedule's end any order goes.
    const_cast<SyncSchedule*>(opts_.replay_schedule)->ConsumeGrant(lock, requester);
  }
  if (requester == id_) {
    ls.held = true;
    lock_granted_self_ = true;
    cv_.notify_all();
    return;
  }
  ls.token = false;
  ls.successor = requester;
  LockGrantMsg grant;
  grant.lock = lock;
  if (opts_.replay_schedule != nullptr) {
    grant.handoff = std::move(ls.pending);  // Queued requests follow the token.
    ls.pending.clear();
  }
  // Only intervals preceding the release travel with the grant; newer local
  // intervals are concurrent with the acquirer and must stay that way.
  for (IntervalRecord& record : log_.UnseenBy(requester_vc)) {
    if (record.id.index <= ls.release_vc.At(record.id.node)) {
      grant.intervals.push_back(std::move(record));
    }
  }
  grant.releaser_vc = ls.release_vc;
  grant.releaser_time_ns = static_cast<uint64_t>(ls.release_time_ns);
  Send(requester, std::move(grant));
}

void Node::TryGrantPendingLocked(LockId lock) {
  LockState& ls = locks_[lock];
  if (!ls.token || ls.held || ls.pending.empty()) {
    return;
  }
  size_t pick = ls.pending.size();
  if (opts_.replay_schedule != nullptr) {
    const NodeId next = opts_.replay_schedule->NextGrantee(lock);
    if (next == kNoNode) {
      pick = 0;
    } else {
      for (size_t i = 0; i < ls.pending.size(); ++i) {
        if (ls.pending[i].requester == next) {
          pick = i;
          break;
        }
      }
      if (pick == ls.pending.size()) {
        return;  // Hold the token until the scheduled requester asks.
      }
    }
  } else {
    pick = 0;
  }
  LockRequestMsg request = ls.pending[pick];
  ls.pending.erase(ls.pending.begin() + static_cast<int64_t>(pick));
  GrantLocked(lock, request.requester, request.requester_vc);
}

void Node::Lock(LockId lock) {
  CVM_CHECK_GE(lock, 0);
  CVM_CHECK_LT(lock, opts_.num_locks);
  std::unique_lock<std::mutex> lk(mu_);
  Span span(tracer_, id_, "lock.acquire", "sync", timing_, epoch_);
  span.SetArg("lock", static_cast<uint64_t>(lock));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.locks_acquired != nullptr) {
      mh_.locks_acquired->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.lock_op_ns);
  EndIntervalLocked(lk);
  LockState& ls = locks_[lock];
  const bool fast_path =
      ls.token && !ls.held &&
      (opts_.replay_schedule != nullptr
           ? opts_.replay_schedule->NextGrantee(lock) == id_ ||
                 (opts_.replay_schedule->NextGrantee(lock) == kNoNode && ls.pending.empty())
           : ls.pending.empty());
  if (fast_path) {
    GrantLocked(lock, id_, vc_);
    lock_granted_self_ = false;
  } else {
    CVM_CHECK_EQ(waiting_lock_, -1);
    waiting_lock_ = lock;
    lock_granted_self_ = false;
    lock_grant_.reset();
    LockRequestMsg request;
    request.lock = lock;
    request.requester = id_;
    request.requester_vc = vc_;
    ChargeMessageLocked(PayloadByteSize(Payload(request)), 0);
    Send(ManagerOf(lock), request);
    cv_.wait(lk, [this] { return lock_granted_self_ || lock_grant_.has_value(); });
    waiting_lock_ = -1;
    if (lock_grant_.has_value()) {
      LockGrantMsg grant = std::move(*lock_grant_);
      lock_grant_.reset();
      const size_t bytes = PayloadByteSize(Payload(grant));
      const size_t rn_bytes = PayloadReadNoticeBytes(Payload(grant));
      timing_.ObserveAtLeast(static_cast<double>(grant.releaser_time_ns) +
                             opts_.costs.MessageCost(bytes - rn_bytes));
      if (rn_bytes > 0) {
        timing_.Charge(Bucket::kCvmMods,
                       opts_.costs.per_byte_ns * static_cast<double>(rn_bytes));
      }
      ApplyIntervalRecordsLocked(grant.intervals);
      vc_.MergeWith(grant.releaser_vc);
      LockState& state = locks_[lock];
      state.token = true;
      state.held = true;
      for (LockRequestMsg& queued : grant.handoff) {
        state.pending.push_back(std::move(queued));
      }
    }
    lock_granted_self_ = false;
  }
  BeginIntervalLocked();
}

void Node::Unlock(LockId lock) {
  CVM_CHECK_GE(lock, 0);
  CVM_CHECK_LT(lock, opts_.num_locks);
  std::unique_lock<std::mutex> lk(mu_);
  TraceInstant("lock.release", "sync", "lock", static_cast<uint64_t>(lock));
  timing_.Charge(Bucket::kNone, opts_.costs.lock_op_ns);
  LockState& ls = locks_[lock];
  CVM_CHECK(ls.held) << "unlock of lock " << lock << " not held by node " << id_;
  EndIntervalLocked(lk);
  ls.held = false;
  ls.release_vc = vc_;  // The just-ended interval is the last one the
  ls.release_time_ns = timing_.now_ns();  // acquirer is ordered after.
  TryGrantPendingLocked(lock);
  BeginIntervalLocked();
}

void Node::HandleForwardedLockRequestLocked(const LockRequestMsg& request) {
  locks_[request.lock].pending.push_back(request);
  TryGrantPendingLocked(request.lock);
}

void Node::OnLockRequest(const Message& msg) {
  const auto& request = std::get<LockRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (opts_.replay_schedule != nullptr) {
    // Replay routing: out-of-schedule grants break the last-requester chain
    // invariant, so requests instead chase the token along successor links
    // until they reach the current holder, and queue there.
    LockState& ls = locks_[request.lock];
    if (ls.token) {
      LockRequestMsg queued = request;
      queued.forwarded = true;
      HandleForwardedLockRequestLocked(queued);
      return;
    }
    NodeId target = ls.successor;
    if (target == kNoNode || target == id_) {
      target = ManagerOf(request.lock);
    }
    CVM_CHECK_NE(target, id_) << "token successor chain broken for lock " << request.lock;
    LockRequestMsg forwarded = request;
    forwarded.forwarded = true;
    Send(target, forwarded);
    return;
  }
  if (!request.forwarded) {
    CVM_CHECK_EQ(ManagerOf(request.lock), id_);
    const NodeId target = manager_last_requester_[request.lock];
    manager_last_requester_[request.lock] = request.requester;
    LockRequestMsg forwarded = request;
    forwarded.forwarded = true;
    if (target == id_) {
      HandleForwardedLockRequestLocked(forwarded);
    } else {
      Send(target, forwarded);
    }
  } else {
    HandleForwardedLockRequestLocked(request);
  }
}

void Node::OnLockGrant(const Message& msg) {
  const auto& grant = std::get<LockGrantMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (waiting_lock_ != grant.lock || lock_grant_.has_value()) {
    return;  // Matches no outstanding acquire: stale re-delivery.
  }
  lock_grant_ = grant;
  cv_.notify_all();
}

// ---------------- Page service ----------------

void Node::ServePageLocked(const PageRequestMsg& request) {
  CVM_CHECK(am_owner_[request.page]);
  if (!pages_.Readable(request.page)) {
    MaterializeHomeLocked(request.page);
  }
  PageEntry& entry = pages_.entry(request.page);
  PageReplyMsg reply;
  reply.page = request.page;
  reply.data = entry.data;
  if (request.want_write) {
    reply.grants_ownership = true;
    am_owner_[request.page] = false;
    entry.state = PageState::kReadOnly;  // Keep a (stale-able) read copy.
    entry.probable_owner = request.requester;
  }
  Send(request.requester, std::move(reply));
}

void Node::HandleForwardedPageRequestLocked(const PageRequestMsg& request) {
  if (am_owner_[request.page]) {
    ServePageLocked(request);
    return;
  }
  // Ownership is in flight to this node (the home serialized the transfer
  // order); serve once the granting reply is installed.
  pending_serves_[request.page].push_back(request);
}

void Node::DrainPendingServesLocked(PageId page) {
  auto it = pending_serves_.find(page);
  if (it == pending_serves_.end() || !am_owner_[page]) {
    return;
  }
  std::vector<PageRequestMsg> queued = std::move(it->second);
  pending_serves_.erase(it);
  // Read requests belong to this node's tenure and go first; the single
  // write request (if any) carries ownership to the next tenure.
  for (const PageRequestMsg& request : queued) {
    if (!request.want_write) {
      ServePageLocked(request);
    }
  }
  for (const PageRequestMsg& request : queued) {
    if (request.want_write) {
      ServePageLocked(request);
    }
  }
}

void Node::OnPageRequest(const Message& msg) {
  const auto request = std::get<PageRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (opts_.protocol == ProtocolKind::kMultiWriterHomeLrc) {
    CVM_CHECK_EQ(HomeOf(request.page), id_);
    MaterializeHomeLocked(request.page);
    PageReplyMsg reply;
    reply.page = request.page;
    reply.data = pages_.entry(request.page).data;
    Send(request.requester, std::move(reply));
    return;
  }
  // Single-writer: the home is the manager and serializes transfers.
  if (!request.forwarded) {
    CVM_CHECK_EQ(HomeOf(request.page), id_);
    const NodeId target = home_owner_[request.page];
    CVM_CHECK_NE(target, kNoNode);
    CVM_CHECK_NE(target, request.requester)
        << "owner re-requested page " << request.page << " it already owns";
    if (request.want_write) {
      home_owner_[request.page] = request.requester;
    }
    PageRequestMsg forwarded = request;
    forwarded.forwarded = true;
    if (target == id_) {
      HandleForwardedPageRequestLocked(forwarded);
    } else {
      Send(target, forwarded);
    }
    return;
  }
  HandleForwardedPageRequestLocked(request);
}

void Node::OnPageReply(const Message& msg) {
  const auto& reply = std::get<PageReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (reply.page != page_fetch_pending_ || page_reply_.has_value()) {
    return;  // Matches no outstanding fetch: stale re-delivery.
  }
  page_reply_ = reply;
  cv_.notify_all();
}

void Node::OnDiffFlush(const Message& msg) {
  const auto& flush = std::get<DiffFlushMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if constexpr (obs::kObsCompiledIn) {
    uint64_t words = 0;
    for (const Diff& diff : flush.diffs) {
      words += diff.words.size();
    }
    if (diff_obs_.words_applied != nullptr) {
      diff_obs_.words_applied->Add(words);
    }
    TraceInstant("diff.apply", "mem", "words", words);
  }
  for (const Diff& diff : flush.diffs) {
    CVM_CHECK_EQ(HomeOf(diff.page), id_);
    MaterializeHomeLocked(diff.page);
    PageEntry& entry = pages_.entry(diff.page);
    // Apply to the frame; mirror into the twin for words the local writer
    // has not touched, so the home's own later diff does not claim remote
    // writes as its own.
    for (const DiffWord& dw : diff.words) {
      const uint64_t offset = static_cast<uint64_t>(dw.word) * kWordSize;
      CVM_CHECK_LE(offset + kWordSize, entry.data.size());
      if (entry.twin.has_value()) {
        uint32_t frame_value;
        uint32_t twin_value;
        std::memcpy(&frame_value, entry.data.data() + offset, kWordSize);
        std::memcpy(&twin_value, (*entry.twin).data() + offset, kWordSize);
        if (frame_value == twin_value) {
          std::memcpy((*entry.twin).data() + offset, &dw.value, kWordSize);
        }
      }
      std::memcpy(entry.data.data() + offset, &dw.value, kWordSize);
    }
  }
  Send(msg.from, DiffFlushAckMsg{flush.token});
}

void Node::OnDiffFlushAck(const Message& msg) {
  const auto& ack = std::get<DiffFlushAckMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  // An ack whose token is no longer outstanding is a stale re-delivery;
  // consuming it twice would release a later flush wait early.
  if (flush_tokens_outstanding_.erase(ack.token) == 0) {
    return;
  }
  if (flush_tokens_outstanding_.empty()) {
    cv_.notify_all();
  }
}

// ---------------- Barriers & race detection ----------------

void Node::Barrier() {
  std::unique_lock<std::mutex> lk(mu_);
  Span span(tracer_, id_, "barrier", "sync", timing_, epoch_);
  span.SetArg("epoch", static_cast<uint64_t>(epoch_));
  timing_.Charge(Bucket::kNone, opts_.costs.barrier_op_ns);
  EndIntervalLocked(lk);   // Epoch-body interval.
  BeginIntervalLocked();   // In-barrier interval (paper: barrier = release+acquire).
  EndIntervalLocked(lk);   // Published empty; keeps "2 intervals per barrier".
  const EpochId epoch = epoch_;

  if (id_ == 0) {
    cv_.wait(lk, [this, epoch] {
      return arrivals_[epoch].size() == static_cast<size_t>(opts_.num_nodes - 1);
    });
    MasterRunBarrierLocked(lk, epoch);
  } else {
    BarrierArriveMsg arrive;
    arrive.epoch = epoch;
    arrive.node = id_;
    arrive.intervals = log_.All();
    arrive.vc = vc_;
    arrive.arrive_time_ns = static_cast<uint64_t>(timing_.now_ns());
    // Publish this epoch's overhead before arriving so the master's snapshot
    // (taken once every arrival is in) sees a consistent cross-node view.
    PublishOverheadLocked();
    Send(0, std::move(arrive));
    cv_.wait(lk, [this, epoch] {
      return barrier_release_.has_value() && barrier_release_->epoch == epoch;
    });
    BarrierReleaseMsg release = std::move(*barrier_release_);
    barrier_release_.reset();
    const size_t bytes = PayloadByteSize(Payload(release));
    const size_t rn_bytes = PayloadReadNoticeBytes(Payload(release));
    timing_.ObserveAtLeast(static_cast<double>(release.release_time_ns) +
                           opts_.costs.MessageCost(bytes - rn_bytes));
    if (rn_bytes > 0) {
      timing_.Charge(Bucket::kCvmMods, opts_.costs.per_byte_ns * static_cast<double>(rn_bytes));
    }
    ApplyIntervalRecordsLocked(release.intervals);
    vc_.MergeWith(release.merged_vc);
    GarbageCollectLocked();
  }

  if (opts_.race_detection) {
    // Reset of the statically-allocated access bitmaps for the new epoch —
    // part of the paper's "CVM Mods" overhead, proportional to the shared
    // segment size.
    const double used_pages = static_cast<double>(
        (system_->segment().used_bytes() + opts_.page_size - 1) / opts_.page_size);
    timing_.Charge(Bucket::kCvmMods, opts_.costs.bitmap_clear_page_ns * used_pages);
  }
  ++epoch_;
  ++barriers_;
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.barriers != nullptr) {
      mh_.barriers->Increment();
    }
    if (tracer_ != nullptr) {
      tracer_->Drain(id_);  // Barrier = natural quiescent point for the ring.
    }
  }
  BeginIntervalLocked();  // New epoch-body interval.
}

void Node::OnBarrierArrive(const Message& msg) {
  const auto& arrive = std::get<BarrierArriveMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  CVM_CHECK_EQ(id_, 0);
  if (arrive.epoch < epoch_) {
    return;  // The master already ran this epoch's barrier: stale re-delivery.
  }
  ArrivalInfo info;
  info.records = arrive.intervals;
  info.vc = arrive.vc;
  info.time_ns = static_cast<double>(arrive.arrive_time_ns);
  info.wire_bytes = msg.wire_bytes;
  info.read_notice_bytes = PayloadReadNoticeBytes(msg.payload);
  arrivals_[arrive.epoch][arrive.node] = std::move(info);
  cv_.notify_all();
}

void Node::MasterRunBarrierLocked(std::unique_lock<std::mutex>& lk, EpochId epoch) {
  std::map<NodeId, ArrivalInfo> arrivals = std::move(arrivals_[epoch]);
  arrivals_.erase(epoch);

  for (auto& [node, info] : arrivals) {
    timing_.ObserveAtLeast(info.time_ns +
                           opts_.costs.MessageCost(info.wire_bytes - info.read_notice_bytes));
    if (info.read_notice_bytes > 0) {
      timing_.Charge(Bucket::kCvmMods,
                     opts_.costs.per_byte_ns * static_cast<double>(info.read_notice_bytes));
    }
    ApplyIntervalRecordsLocked(info.records);
    vc_.MergeWith(info.vc);
  }

  if (opts_.race_detection && opts_.online_detection) {
    RunRaceDetectionLocked(lk, epoch, log_.All());
  }

  for (NodeId node = 1; node < opts_.num_nodes; ++node) {
    BarrierReleaseMsg release;
    release.epoch = epoch;
    release.intervals = log_.UnseenBy(arrivals[node].vc);
    release.merged_vc = vc_;
    release.release_time_ns = static_cast<uint64_t>(timing_.now_ns());
    Send(node, std::move(release));
  }
  GarbageCollectLocked();
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      PublishOverheadLocked();
      const int interval = std::max(1, opts_.trace.metrics_interval);
      if ((epoch + 1) % interval == 0) {
        metrics_->SnapshotEpoch(epoch, timing_.now_ns());
      }
    }
  }
}

void Node::RunRaceDetectionLocked(std::unique_lock<std::mutex>& lk, EpochId epoch,
                                  const std::vector<IntervalRecord>& epoch_intervals) {
  RaceDetector& detector = system_->detector();
  const DetectorStats before = detector.stats();
  std::vector<CheckPair> pairs;
  {
    Span overlap_span(tracer_, id_, "detector.overlap", "race", timing_, epoch);
    pairs = detector.BuildCheckList(epoch_intervals);
    const DetectorStats& after = detector.stats();
    timing_.Charge(
        Bucket::kIntervals,
        opts_.costs.interval_cmp_ns *
                static_cast<double>(after.interval_comparisons - before.interval_comparisons) +
            opts_.costs.page_overlap_ns *
                static_cast<double>(after.page_overlap_probes - before.page_overlap_probes));
    overlap_span.SetArg("pairs", pairs.size());
  }
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      const DetectorStats& after = detector.stats();
      mh_.check_pairs->Add(after.overlapping_pairs - before.overlapping_pairs);
      mh_.checklist_entries->Add(after.checklist_entries - before.checklist_entries);
    }
  }
  if (pairs.empty()) {
    return;
  }
  Span bitmaps_span(tracer_, id_, "detector.bitmaps", "race", timing_, epoch);

  // Bitmap-retrieval round (§4 step 4): ask each constituent node for the
  // word bitmaps of its listed intervals; the master's own resolve locally.
  const auto needed = RaceDetector::BitmapsNeeded(pairs);
  collected_bitmaps_.clear();
  std::map<NodeId, std::vector<CheckEntry>> by_node;
  for (const auto& [interval, page] : needed) {
    if (interval.node == id_) {
      const PageAccessBitmaps* local = bitmaps_.Find(interval.index, page);
      if (local != nullptr) {
        collected_bitmaps_.emplace(std::make_pair(interval, page), *local);
      }
    } else {
      by_node[interval.node].push_back(CheckEntry{interval, page});
    }
  }
  CVM_CHECK_EQ(bitmap_replies_pending_, 0);
  bitmap_replies_pending_ = static_cast<int>(by_node.size());
  bitmap_round_bytes_ = 0;
  for (auto& [node, entries] : by_node) {
    BitmapRequestMsg request;
    request.epoch = epoch;
    request.entries = std::move(entries);
    Send(node, std::move(request));
  }
  if (bitmap_replies_pending_ > 0) {
    timing_.Charge(Bucket::kBitmaps, 2 * opts_.costs.msg_latency_ns);
    cv_.wait(lk, [this] { return bitmap_replies_pending_ == 0; });
    timing_.Charge(Bucket::kBitmaps,
                   opts_.costs.per_byte_ns * static_cast<double>(bitmap_round_bytes_));
  }

  const uint64_t compared_before = detector.stats().bitmap_pairs_compared;
  BitmapLookup lookup = [this](const IntervalId& interval, PageId page) {
    auto it = collected_bitmaps_.find(std::make_pair(interval, page));
    return it == collected_bitmaps_.end() ? nullptr : &it->second;
  };
  std::vector<RaceReport> reports = detector.CompareBitmaps(pairs, lookup, epoch);
  const uint64_t compared = detector.stats().bitmap_pairs_compared - compared_before;
  const double chunks = static_cast<double>((opts_.page_size / kWordSize + 63) / 64);
  timing_.Charge(Bucket::kBitmaps,
                 opts_.costs.bitmap_cmp_word_ns * chunks * static_cast<double>(compared));

  bitmaps_span.SetArg("compared", compared);
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      mh_.bitmap_pairs_compared->Add(compared);
      mh_.races_reported->Add(reports.size());
    }
  }
  for (RaceReport& report : reports) {
    report.addr = static_cast<GlobalAddr>(report.page) * opts_.page_size +
                  static_cast<GlobalAddr>(report.word) * kWordSize;
    report.symbol = system_->segment().Symbolize(report.addr);
    // Numeric args only: the report's strings move into the system-wide
    // report vector, so pointers into them must not outlive this scope.
    TraceInstant("race.report", "race", "addr", report.addr);
  }
  system_->AddReports(std::move(reports));
  collected_bitmaps_.clear();
}

void Node::OnBitmapRequest(const Message& msg) {
  const auto& request = std::get<BitmapRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  BitmapReplyMsg reply;
  reply.epoch = request.epoch;
  for (const CheckEntry& entry : request.entries) {
    CVM_CHECK_EQ(entry.interval.node, id_);
    const PageAccessBitmaps* bitmaps = bitmaps_.Find(entry.interval.index, entry.page);
    if (bitmaps == nullptr) {
      continue;
    }
    reply.entries.push_back(
        BitmapReplyEntry{entry.interval, entry.page, bitmaps->read, bitmaps->write});
  }
  Send(msg.from, std::move(reply));
}

void Node::OnBitmapReply(const Message& msg) {
  const auto& reply = std::get<BitmapReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  for (const BitmapReplyEntry& entry : reply.entries) {
    collected_bitmaps_.emplace(std::make_pair(entry.interval, entry.page),
                               PageAccessBitmaps{entry.read, entry.write});
  }
  bitmap_round_bytes_ += msg.wire_bytes;
  CVM_CHECK_GT(bitmap_replies_pending_, 0);
  --bitmap_replies_pending_;
  if (bitmap_replies_pending_ == 0) {
    cv_.notify_all();
  }
}

void Node::DumpTraceBitmaps(PostMortemTrace& trace) const {
  std::lock_guard<std::mutex> guard(mu_);
  bitmaps_.ForEachPair(id_, [&trace](const IntervalId& interval, PageId page,
                                     const PageAccessBitmaps& pair) {
    trace.AddBitmaps(interval, page, pair);
  });
}

void Node::OnErcUpdate(const Message& msg) {
  const auto& update = std::get<ErcUpdateMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (!log_.Contains(update.record.id)) {
    log_.Insert(update.record);
    if (update.record.id.node != id_) {
      erc_eager_only_.insert(update.record.id);
      for (PageId page : update.record.write_pages) {
        if (!am_owner_[page]) {
          pages_.Invalidate(page);
        }
      }
    }
  }
  // No vector-clock merge: ERC moves data eagerly, but synchronization
  // ordering — what the race detector consumes — still comes only from
  // lock grants and barriers.
  Send(msg.from, ErcAckMsg{update.token});
}

void Node::OnErcAck(const Message& msg) {
  const auto& ack = std::get<ErcAckMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (erc_tokens_outstanding_.erase(ack.token) == 0) {
    return;  // Stale re-delivery; already consumed.
  }
  if (erc_tokens_outstanding_.empty()) {
    cv_.notify_all();
  }
}

void Node::OnBarrierRelease(const Message& msg) {
  const auto& release = std::get<BarrierReleaseMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (barrier_release_.has_value() || release.epoch < epoch_) {
    return;  // This epoch's release already landed: stale re-delivery.
  }
  barrier_release_ = release;
  cv_.notify_all();
}

}  // namespace cvm
