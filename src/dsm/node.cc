#include "src/dsm/node.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "src/common/check.h"
#include "src/dsm/dsm.h"
#include "src/mem/diff.h"

namespace cvm {

namespace {

// RAII complete-span ('X') helper: captures simulated + wall time at
// construction, emits one event at destruction. A null tracer makes both
// ends a single branch; under -DCVM_OBS=OFF the whole class folds away.
class Span {
 public:
  Span(obs::Tracer* tracer, NodeId node, const char* name, const char* cat,
       const NodeTiming& timing, EpochId epoch)
      : tracer_(tracer), timing_(timing) {
    if constexpr (!obs::kObsCompiledIn) {
      return;
    }
    if (tracer_ == nullptr) {
      return;
    }
    event_.name = name;
    event_.cat = cat;
    event_.phase = 'X';
    event_.node = node;
    event_.epoch = epoch;
    sim_start_ns_ = timing_.now_ns();
    wall_start_ns_ = tracer_->WallNowNs();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void SetArg(const char* name, uint64_t value) {
    event_.arg_name = name;
    event_.arg_value = value;
  }

  ~Span() {
    if constexpr (!obs::kObsCompiledIn) {
      return;
    }
    if (tracer_ == nullptr) {
      return;
    }
    event_.sim_ts_ns = sim_start_ns_;
    event_.sim_dur_ns = timing_.now_ns() - sim_start_ns_;
    event_.wall_ts_ns = wall_start_ns_;
    event_.wall_dur_ns = tracer_->WallNowNs() - wall_start_ns_;
    tracer_->Emit(event_);
  }

 private:
  obs::Tracer* const tracer_;
  const NodeTiming& timing_;
  obs::TraceEvent event_;
  double sim_start_ns_ = 0;
  uint64_t wall_start_ns_ = 0;
};

// Payload bytes of one bitmap-round entry as actually encoded, and at the
// legacy raw encoding — the difference is what the codec saved on the wire.
size_t ReplyEntryWireBytes(const BitmapReplyEntry& e) {
  return sizeof(IntervalId) + sizeof(PageId) + e.read.WireBytes() + e.write.WireBytes();
}

size_t ReplyEntryRawBytes(const BitmapReplyEntry& e) {
  return sizeof(IntervalId) + sizeof(PageId) + EncodedBitmap::RawWireBytes(e.read.num_bits) +
         EncodedBitmap::RawWireBytes(e.write.num_bits);
}

}  // namespace

Node::Node(NodeId id, DsmSystem* system)
    : system_(system),
      id_(id),
      opts_(system->options()),
      pages_(system->segment().num_pages(), opts_.page_size),
      am_owner_(system->segment().num_pages(), false),
      home_materialized_(system->segment().num_pages(), false),
      vc_(opts_.num_nodes),
      log_(opts_.num_nodes),
      bitmaps_(static_cast<uint32_t>(opts_.page_size / kWordSize)),
      filter_(opts_.page_size, system->segment().size_bytes()),
      locks_(opts_.num_locks),
      manager_last_requester_(opts_.num_locks, kNoNode) {
  home_owner_.assign(pages_.num_pages(), kNoNode);
  for (PageId p = 0; p < pages_.num_pages(); ++p) {
    const NodeId home = HomeOf(p);
    am_owner_[p] = (home == id_);
    if (home == id_) {
      home_owner_[p] = id_;
    }
    pages_.entry(p).probable_owner = home;
  }
  for (LockId l = 0; l < opts_.num_locks; ++l) {
    locks_[l].token = (ManagerOf(l) == id_);
    locks_[l].release_vc = VectorClock(opts_.num_nodes);  // Nothing precedes it yet.
    manager_last_requester_[l] = ManagerOf(l);
  }
  InitObservability();
  BeginIntervalLocked();  // Interval 0. Single-threaded here; no lock needed.
}

void Node::InitObservability() {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  tracer_ = system_->tracer();
  metrics_ = system_->metrics();
  diff_obs_.tracer = tracer_;
  diff_obs_.node = id_;
  obs::Counter* twins = nullptr;
  obs::Counter* installs = nullptr;
  obs::Counter* invalidations = nullptr;
  if (metrics_ != nullptr) {
    mh_.page_faults = metrics_->counter("dsm.page_faults");
    mh_.page_fetches = metrics_->counter("dsm.page_fetches");
    mh_.locks_acquired = metrics_->counter("dsm.locks_acquired");
    mh_.barriers = metrics_->counter("dsm.barriers");
    mh_.intervals = metrics_->counter("dsm.intervals");
    mh_.check_pairs = metrics_->counter("race.check_pairs");
    mh_.checklist_entries = metrics_->counter("race.checklist_entries");
    mh_.bitmap_pairs_compared = metrics_->counter("race.bitmap_pairs_compared");
    mh_.races_reported = metrics_->counter("race.races_reported");
    mh_.shard_count = metrics_->counter("race.shard.count");
    mh_.bitmap_bytes_raw = metrics_->counter("net.bitmap.bytes_raw");
    mh_.bitmap_bytes_wire = metrics_->counter("net.bitmap.bytes_wire");
    mh_.bitmap_bytes_saved = metrics_->counter("net.bitmap.bytes_saved");
    mh_.overlap_saved_ns = metrics_->counter("race.overlap.saved_ns");
    mh_.remote_pairs = metrics_->counter("race.remote.pairs_compared");
    mh_.remote_reports = metrics_->counter("race.remote.reports");
    for (int b = 0; b < kNumBuckets; ++b) {
      mh_.overhead[static_cast<size_t>(b)] =
          metrics_->counter(BucketMetricName(static_cast<Bucket>(b)));
    }
    twins = metrics_->counter("mem.twins_created");
    installs = metrics_->counter("mem.page_installs");
    invalidations = metrics_->counter("mem.page_invalidations");
    diff_obs_.diffs_created = metrics_->counter("mem.diffs_created");
    diff_obs_.diff_size_words = metrics_->histogram("mem.diff_size_words");
    diff_obs_.words_applied = metrics_->counter("mem.diff_words_applied");
  }
  if (tracer_ != nullptr || metrics_ != nullptr) {
    pages_.AttachObservability(tracer_, id_, twins, installs, invalidations);
  }
}

void Node::TraceInstant(const char* name, const char* cat, const char* arg_name,
                        uint64_t arg_value) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (tracer_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'i';
  event.node = id_;
  event.epoch = epoch_;
  event.sim_ts_ns = timing_.now_ns();
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  tracer_->Emit(event);
}

void Node::PublishOverheadLocked() {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (metrics_ == nullptr) {
    return;
  }
  for (int b = 0; b < kNumBuckets; ++b) {
    const double total = timing_.overhead_ns(static_cast<Bucket>(b));
    const double delta = total - overhead_published_[static_cast<size_t>(b)];
    if (delta > 0) {
      mh_.overhead[static_cast<size_t>(b)]->Add(static_cast<uint64_t>(delta));
      overhead_published_[static_cast<size_t>(b)] = total;
    }
  }
}

Node::~Node() = default;

int Node::num_nodes() const { return opts_.num_nodes; }

NodeId Node::HomeOf(PageId page) const { return page % opts_.num_nodes; }

NodeId Node::ManagerOf(LockId lock) const { return lock % opts_.num_nodes; }

void Node::Send(NodeId to, Payload payload) {
  Message msg;
  msg.from = id_;
  msg.to = to;
  msg.payload = std::move(payload);
  // Under fault injection the reliable transport returns the simulated time
  // this sender spent in retransmission backoff and injected delay; charge it
  // to the node's clock like any other network cost. Zero on the clean path.
  const double penalty_ns = system_->network().Send(std::move(msg));
  if (penalty_ns > 0) {
    timing_.Charge(Bucket::kNone, penalty_ns);
  }
}

void Node::StartService() {
  service_thread_ = std::thread([this] { ServiceLoop(); });
}

void Node::JoinService() {
  if (service_thread_.joinable()) {
    service_thread_.join();
  }
}

void Node::ServiceLoop() {
  while (true) {
    std::optional<Message> msg = system_->network().Recv(id_);
    if (!msg.has_value()) {
      return;  // Network closed.
    }
    if (std::get_if<PageRequestMsg>(&msg->payload) != nullptr) {
      OnPageRequest(*msg);
    } else if (std::get_if<PageReplyMsg>(&msg->payload) != nullptr) {
      OnPageReply(*msg);
    } else if (std::get_if<DiffFlushMsg>(&msg->payload) != nullptr) {
      OnDiffFlush(*msg);
    } else if (std::get_if<DiffFlushAckMsg>(&msg->payload) != nullptr) {
      OnDiffFlushAck(*msg);
    } else if (std::get_if<LockRequestMsg>(&msg->payload) != nullptr) {
      OnLockRequest(*msg);
    } else if (std::get_if<LockGrantMsg>(&msg->payload) != nullptr) {
      OnLockGrant(*msg);
    } else if (std::get_if<BarrierArriveMsg>(&msg->payload) != nullptr) {
      OnBarrierArrive(*msg);
    } else if (std::get_if<BitmapRequestMsg>(&msg->payload) != nullptr) {
      OnBitmapRequest(*msg);
    } else if (std::get_if<BitmapReplyMsg>(&msg->payload) != nullptr) {
      OnBitmapReply(*msg);
    } else if (std::get_if<CompareRequestMsg>(&msg->payload) != nullptr) {
      OnCompareRequest(*msg);
    } else if (std::get_if<BitmapShipMsg>(&msg->payload) != nullptr) {
      OnBitmapShip(*msg);
    } else if (std::get_if<CompareReplyMsg>(&msg->payload) != nullptr) {
      OnCompareReply(*msg);
    } else if (std::get_if<BarrierReleaseMsg>(&msg->payload) != nullptr) {
      OnBarrierRelease(*msg);
    } else if (std::get_if<ErcUpdateMsg>(&msg->payload) != nullptr) {
      OnErcUpdate(*msg);
    } else if (std::get_if<ErcAckMsg>(&msg->payload) != nullptr) {
      OnErcAck(*msg);
    } else {
      // ShutdownMsg: nothing to do; the Recv loop exits on network close.
    }
  }
}

// ---------------- Cost helpers ----------------

void Node::ChargeInstrumentationLocked() {
  timing_.Charge(Bucket::kProcCall, opts_.costs.proc_call_ns);
  timing_.Charge(Bucket::kAccessCheck, opts_.costs.access_check_ns);
}

void Node::ChargeMessageLocked(size_t bytes, size_t read_notice_bytes) {
  CVM_CHECK_GE(bytes, read_notice_bytes);
  timing_.Charge(Bucket::kNone, opts_.costs.MessageCost(bytes - read_notice_bytes));
  if (read_notice_bytes > 0) {
    timing_.Charge(Bucket::kCvmMods,
                   opts_.costs.per_byte_ns * static_cast<double>(read_notice_bytes));
  }
}

// ---------------- Shared accesses ----------------

void Node::Compute(uint64_t units) {
  std::lock_guard<std::mutex> guard(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.compute_unit_ns * static_cast<double>(units));
}

void Node::PrivateAccess(uint64_t va, bool is_write) {
  std::lock_guard<std::mutex> guard(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  if (opts_.race_detection) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(va, is_write);
    CVM_CHECK(!result.shared) << "private VA resolved as shared";
  }
}

uint64_t Node::AllocPrivateVa(uint64_t bytes) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t va = private_va_next_;
  private_va_next_ += (bytes + kWordSize - 1) / kWordSize * kWordSize;
  return va;
}

uint32_t Node::ReadWord(GlobalAddr addr) {
  std::unique_lock<std::mutex> lk(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  const PageId page = static_cast<PageId>(addr / opts_.page_size);
  const uint32_t word = WordInPage(addr % opts_.page_size);
  if (opts_.race_detection) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(SharedVa(addr), /*is_write=*/false);
    CVM_CHECK(result.shared);
    bitmaps_.RecordRead(cur_interval_, page, word);
    if (cur_reads_.insert(page).second) {
      timing_.Charge(Bucket::kCvmMods, opts_.costs.notice_setup_ns);
    }
    if (opts_.watch.has_value()) {
      const Watchpoint& w = *opts_.watch;
      if (addr >= w.addr && addr < w.addr + w.bytes && (w.epoch == -1 || epoch_ == w.epoch)) {
        system_->AddWatchHit(
            WatchHit{id_, IntervalId{id_, cur_interval_}, epoch_, addr, false, site_});
      }
    }
  }
  if (!pages_.Readable(page)) {
    ReadFaultLocked(lk, page);
  }
  const uint32_t value = pages_.ReadWord(page, word);
  if (!pending_serves_.empty()) {
    DrainPendingServesLocked(page);
  }
  return value;
}

void Node::WriteWord(GlobalAddr addr, uint32_t value) {
  std::unique_lock<std::mutex> lk(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  const PageId page = static_cast<PageId>(addr / opts_.page_size);
  const uint32_t word = WordInPage(addr % opts_.page_size);
  // §6.5: under diff-derived write detection, store instructions are not
  // instrumented at all — writes are mined from diffs at release time.
  if (opts_.race_detection && opts_.write_detection == WriteDetection::kInstrumentation) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(SharedVa(addr), /*is_write=*/true);
    CVM_CHECK(result.shared);
    bitmaps_.RecordWrite(cur_interval_, page, word);
    if (opts_.watch.has_value()) {
      const Watchpoint& w = *opts_.watch;
      if (addr >= w.addr && addr < w.addr + w.bytes && (w.epoch == -1 || epoch_ == w.epoch)) {
        system_->AddWatchHit(
            WatchHit{id_, IntervalId{id_, cur_interval_}, epoch_, addr, true, site_});
      }
    }
  }
  if (!pages_.Writable(page)) {
    WriteFaultLocked(lk, page);
  }
  pages_.WriteWord(page, word, value);
  if (!pending_serves_.empty()) {
    DrainPendingServesLocked(page);
  }
}

void Node::RecordWriteNoticeLocked(PageId page) { cur_writes_.insert(page); }

void Node::MaterializeHomeLocked(PageId page) {
  PageEntry& entry = pages_.entry(page);
  if (!home_materialized_[page]) {
    CVM_CHECK_EQ(HomeOf(page), id_);
    pages_.Install(page, system_->segment().InitialPage(page), PageState::kReadOnly);
    home_materialized_[page] = true;
  } else if (entry.state == PageState::kInvalid) {
    // Home bytes are always current w.r.t. causally-required (flushed)
    // modifications under the home-based protocol, so revalidation is local.
    entry.state = PageState::kReadOnly;
  }
}

void Node::ReadFaultLocked(std::unique_lock<std::mutex>& lk, PageId page) {
  ++page_faults_;
  Span span(tracer_, id_, "page.fault.read", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_faults != nullptr) {
      mh_.page_faults->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.page_fault_ns);
  if (SingleWriterData()) {
    if (am_owner_[page]) {
      MaterializeHomeLocked(page);
      return;
    }
    FetchPageLocked(lk, page, /*want_write=*/false);
  } else {
    if (HomeOf(page) == id_) {
      MaterializeHomeLocked(page);
      return;
    }
    FetchPageLocked(lk, page, /*want_write=*/false);
  }
}

void Node::WriteFaultLocked(std::unique_lock<std::mutex>& lk, PageId page) {
  ++page_faults_;
  Span span(tracer_, id_, "page.fault.write", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_faults != nullptr) {
      mh_.page_faults->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.page_fault_ns);
  if (SingleWriterData()) {
    if (am_owner_[page]) {
      if (!pages_.Readable(page)) {
        MaterializeHomeLocked(page);
      }
      pages_.entry(page).state = PageState::kReadWrite;
    } else {
      FetchPageLocked(lk, page, /*want_write=*/true);
    }
    RecordWriteNoticeLocked(page);
    return;
  }
  // Multi-writer (home-based): any node may write after twinning its copy.
  if (!pages_.Readable(page)) {
    if (HomeOf(page) == id_) {
      MaterializeHomeLocked(page);
    } else {
      FetchPageLocked(lk, page, /*want_write=*/false);
    }
  }
  PageEntry& entry = pages_.entry(page);
  if (!entry.twin.has_value()) {
    pages_.MakeTwin(page);
    twinned_.insert(page);
  }
  entry.state = PageState::kReadWrite;
  if (opts_.write_detection == WriteDetection::kInstrumentation) {
    RecordWriteNoticeLocked(page);
  }
}

void Node::FetchPageLocked(std::unique_lock<std::mutex>& lk, PageId page, bool want_write) {
  CVM_CHECK(!page_reply_.has_value());
  CVM_CHECK_EQ(page_fetch_pending_, -1);
  page_fetch_pending_ = page;
  Span span(tracer_, id_, "page.fetch", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_fetches != nullptr) {
      mh_.page_fetches->Increment();
    }
  }
  PageRequestMsg request;
  request.page = page;
  request.want_write = want_write;
  request.requester = id_;
  // All requests route through the page's home: the multi-writer home owns
  // the data; the single-writer home is the manager that serializes
  // ownership transfers (two hops worst case).
  Send(HomeOf(page), request);
  cv_.wait(lk, [this] { return page_reply_.has_value(); });
  PageReplyMsg reply = std::move(*page_reply_);
  page_reply_.reset();
  page_fetch_pending_ = -1;
  CVM_CHECK_EQ(reply.page, page);

  // Round-trip cost: request out, page back.
  ChargeMessageLocked(PayloadByteSize(Payload(request)), 0);
  ChargeMessageLocked(PayloadByteSize(Payload(PageReplyMsg{page, {}, false})) + reply.data.size(),
                      0);

  const PageState state =
      (want_write && SingleWriterData()) ? PageState::kReadWrite : PageState::kReadOnly;
  const bool ownership = reply.grants_ownership;
  pages_.Install(page, std::move(reply.data), state);
  if (ownership) {
    am_owner_[page] = true;
    pages_.entry(page).probable_owner = id_;
  }
  // Requests that chased the in-flight ownership are served by the caller
  // once its own access has completed (DrainPendingServesLocked).
}

// ---------------- Intervals ----------------

void Node::BeginIntervalLocked() {
  cur_interval_ = vc_.Tick(id_);
  cur_reads_.clear();
  cur_writes_.clear();
  TraceInstant("interval.open", "protocol", "interval", static_cast<uint64_t>(cur_interval_));
}

void Node::EndIntervalLocked(std::unique_lock<std::mutex>& lk) {
  if (opts_.protocol == ProtocolKind::kMultiWriterHomeLrc) {
    FlushDiffsLocked(lk);
  } else {
    // Downgrade pages written this interval so the next interval's first
    // write faults again and generates a fresh write notice.
    for (PageId page : cur_writes_) {
      PageEntry& entry = pages_.entry(page);
      if (entry.state == PageState::kReadWrite) {
        entry.state = PageState::kReadOnly;
      }
    }
  }

  IntervalRecord record;
  record.id = IntervalId{id_, cur_interval_};
  record.vc = vc_;
  record.epoch = epoch_;
  record.write_pages.assign(cur_writes_.begin(), cur_writes_.end());
  record.read_pages.assign(cur_reads_.begin(), cur_reads_.end());
  log_.Insert(record);
  if (opts_.race_detection && opts_.postmortem_trace) {
    system_->trace().AddRecord(record);
  }
  max_log_size_ = std::max(max_log_size_, log_.size());
  max_retained_pairs_ = std::max(max_retained_pairs_, bitmaps_.RetainedPairs());
  ++intervals_created_;
  TraceInstant("interval.close", "protocol", "interval", static_cast<uint64_t>(cur_interval_));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.intervals != nullptr) {
      mh_.intervals->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.interval_setup_ns);
  if (opts_.race_detection) {
    // The race-detection additions to the interval structure (read-notice
    // list wiring) are CVM-modification overhead.
    timing_.Charge(Bucket::kCvmMods, opts_.costs.notice_setup_ns);
  }
  cur_reads_.clear();
  cur_writes_.clear();

  // Eager RC: push the notices to every node NOW and block for acks — the
  // cost LRC's central intuition avoids ("competing accesses in correct
  // programs will be separated by synchronization", so notices can ride on
  // later synchronization messages instead).
  if (opts_.protocol == ProtocolKind::kEagerRcInvalidate && !record.write_pages.empty() &&
      opts_.num_nodes > 1) {
    CVM_CHECK(erc_tokens_outstanding_.empty());
    for (NodeId n = 0; n < opts_.num_nodes; ++n) {
      if (n == id_) {
        continue;
      }
      ErcUpdateMsg update;
      update.record = record;
      update.token = flush_token_next_++;
      erc_tokens_outstanding_.insert(update.token);
      const size_t bytes = PayloadByteSize(Payload(update));
      const size_t rn_bytes = PayloadReadNoticeBytes(Payload(update));
      ChargeMessageLocked(bytes, rn_bytes);
      Send(n, std::move(update));
    }
    timing_.Charge(Bucket::kNone, opts_.costs.MessageCost(kMessageHeaderBytes + 8));
    cv_.wait(lk, [this] { return erc_tokens_outstanding_.empty(); });
  }
}

void Node::FlushDiffsLocked(std::unique_lock<std::mutex>& lk) {
  if (twinned_.empty()) {
    return;
  }
  Span span(tracer_, id_, "diff.flush", "protocol", timing_, epoch_);
  span.SetArg("pages", twinned_.size());
  std::map<NodeId, std::vector<Diff>> by_home;
  for (PageId page : twinned_) {
    PageEntry& entry = pages_.entry(page);
    CVM_CHECK(entry.twin.has_value());
    Diff diff = MakeDiff(page, IntervalId{id_, cur_interval_}, *entry.twin, entry.data,
                         obs::kObsCompiledIn ? &diff_obs_ : nullptr);
    timing_.Charge(Bucket::kNone,
                   opts_.costs.diff_word_ns * static_cast<double>(opts_.page_size / kWordSize));
    pages_.DropTwin(page);
    entry.state = PageState::kReadOnly;
    if (opts_.write_detection == WriteDetection::kDiffs) {
      // §6.5: write accesses mined from the diff. Same-value overwrites are
      // invisible here — the weaker guarantee the paper describes.
      if (!diff.words.empty()) {
        cur_writes_.insert(page);
        for (const DiffWord& dw : diff.words) {
          bitmaps_.RecordWrite(cur_interval_, page, dw.word);
        }
      }
    }
    if (HomeOf(page) == id_) {
      continue;  // Home's frame already holds the writes.
    }
    if (!diff.words.empty()) {
      by_home[HomeOf(page)].push_back(std::move(diff));
    }
  }
  twinned_.clear();

  CVM_CHECK(flush_tokens_outstanding_.empty());
  const bool any_flush = !by_home.empty();
  for (auto& [home, diffs] : by_home) {
    DiffFlushMsg flush;
    flush.diffs = std::move(diffs);
    flush.token = flush_token_next_++;
    flush_tokens_outstanding_.insert(flush.token);
    ChargeMessageLocked(PayloadByteSize(Payload(flush)), 0);
    Send(home, std::move(flush));
  }
  if (any_flush) {
    // One ack round-trip of latency (flushes proceed in parallel).
    timing_.Charge(Bucket::kNone, opts_.costs.MessageCost(kMessageHeaderBytes + 8));
    cv_.wait(lk, [this] { return flush_tokens_outstanding_.empty(); });
  }
}

void Node::ApplyIntervalRecordsLocked(const std::vector<IntervalRecord>& records) {
  for (const IntervalRecord& record : records) {
    if (log_.Contains(record.id)) {
      // Already applied — unless it only arrived via an eager push, whose
      // invalidation may have been overtaken by an in-flight fetch install.
      // This acquire covers the record, so apply the notices here, once.
      auto eager = erc_eager_only_.find(record.id);
      if (eager == erc_eager_only_.end()) {
        continue;
      }
      erc_eager_only_.erase(eager);
      for (PageId page : record.write_pages) {
        if (!am_owner_[page]) {
          pages_.Invalidate(page);
        }
      }
      continue;
    }
    log_.Insert(record);
    if (record.id.node == id_) {
      continue;
    }
    for (PageId page : record.write_pages) {
      if (SingleWriterData()) {
        // The owner's copy reflects the whole serialized page history.
        if (am_owner_[page]) {
          continue;
        }
        pages_.Invalidate(page);
      } else {
        // Home bytes always include causally-flushed diffs.
        if (HomeOf(page) == id_) {
          continue;
        }
        CVM_CHECK(!pages_.entry(page).twin.has_value())
            << "write notice applied while twin outstanding";
        pages_.Invalidate(page);
      }
    }
  }
}

void Node::GarbageCollectLocked() {
  log_.DiscardDominatedBy(vc_);
  for (auto it = erc_eager_only_.begin(); it != erc_eager_only_.end();) {
    it = (it->index <= vc_.At(it->node)) ? erc_eager_only_.erase(it) : std::next(it);
  }
  if (!opts_.postmortem_trace) {
    bitmaps_.DiscardThrough(cur_interval_);  // Epoch checked; trace data can go.
  }
}

// ---------------- Locks ----------------

bool Node::ReplayAllowsLocked(LockId lock, NodeId grantee) const {
  if (opts_.replay_schedule == nullptr) {
    return true;
  }
  const NodeId next = opts_.replay_schedule->NextGrantee(lock);
  return next == kNoNode || next == grantee;
}

void Node::GrantLocked(LockId lock, NodeId requester, const VectorClock& requester_vc) {
  LockState& ls = locks_[lock];
  CVM_CHECK(ls.token);
  CVM_CHECK(!ls.held);
  if (opts_.record_sync_order) {
    system_->recorded_schedule().RecordGrant(lock, requester);
  }
  if (opts_.replay_schedule != nullptr &&
      opts_.replay_schedule->NextGrantee(lock) == requester) {
    // Advance the replay cursor; past the schedule's end any order goes.
    const_cast<SyncSchedule*>(opts_.replay_schedule)->ConsumeGrant(lock, requester);
  }
  if (requester == id_) {
    ls.held = true;
    lock_granted_self_ = true;
    cv_.notify_all();
    return;
  }
  ls.token = false;
  ls.successor = requester;
  LockGrantMsg grant;
  grant.lock = lock;
  if (opts_.replay_schedule != nullptr) {
    grant.handoff = std::move(ls.pending);  // Queued requests follow the token.
    ls.pending.clear();
  }
  // Only intervals preceding the release travel with the grant; newer local
  // intervals are concurrent with the acquirer and must stay that way.
  for (IntervalRecord& record : log_.UnseenBy(requester_vc)) {
    if (record.id.index <= ls.release_vc.At(record.id.node)) {
      grant.intervals.push_back(std::move(record));
    }
  }
  grant.releaser_vc = ls.release_vc;
  grant.releaser_time_ns = static_cast<uint64_t>(ls.release_time_ns);
  Send(requester, std::move(grant));
}

void Node::TryGrantPendingLocked(LockId lock) {
  LockState& ls = locks_[lock];
  if (!ls.token || ls.held || ls.pending.empty()) {
    return;
  }
  size_t pick = ls.pending.size();
  if (opts_.replay_schedule != nullptr) {
    const NodeId next = opts_.replay_schedule->NextGrantee(lock);
    if (next == kNoNode) {
      pick = 0;
    } else {
      for (size_t i = 0; i < ls.pending.size(); ++i) {
        if (ls.pending[i].requester == next) {
          pick = i;
          break;
        }
      }
      if (pick == ls.pending.size()) {
        return;  // Hold the token until the scheduled requester asks.
      }
    }
  } else {
    pick = 0;
  }
  LockRequestMsg request = ls.pending[pick];
  ls.pending.erase(ls.pending.begin() + static_cast<int64_t>(pick));
  GrantLocked(lock, request.requester, request.requester_vc);
}

void Node::Lock(LockId lock) {
  CVM_CHECK_GE(lock, 0);
  CVM_CHECK_LT(lock, opts_.num_locks);
  std::unique_lock<std::mutex> lk(mu_);
  Span span(tracer_, id_, "lock.acquire", "sync", timing_, epoch_);
  span.SetArg("lock", static_cast<uint64_t>(lock));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.locks_acquired != nullptr) {
      mh_.locks_acquired->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.lock_op_ns);
  EndIntervalLocked(lk);
  LockState& ls = locks_[lock];
  const bool fast_path =
      ls.token && !ls.held &&
      (opts_.replay_schedule != nullptr
           ? opts_.replay_schedule->NextGrantee(lock) == id_ ||
                 (opts_.replay_schedule->NextGrantee(lock) == kNoNode && ls.pending.empty())
           : ls.pending.empty());
  if (fast_path) {
    GrantLocked(lock, id_, vc_);
    lock_granted_self_ = false;
  } else {
    CVM_CHECK_EQ(waiting_lock_, -1);
    waiting_lock_ = lock;
    lock_granted_self_ = false;
    lock_grant_.reset();
    LockRequestMsg request;
    request.lock = lock;
    request.requester = id_;
    request.requester_vc = vc_;
    ChargeMessageLocked(PayloadByteSize(Payload(request)), 0);
    Send(ManagerOf(lock), request);
    cv_.wait(lk, [this] { return lock_granted_self_ || lock_grant_.has_value(); });
    waiting_lock_ = -1;
    if (lock_grant_.has_value()) {
      LockGrantMsg grant = std::move(*lock_grant_);
      lock_grant_.reset();
      const size_t bytes = PayloadByteSize(Payload(grant));
      const size_t rn_bytes = PayloadReadNoticeBytes(Payload(grant));
      timing_.ObserveAtLeast(static_cast<double>(grant.releaser_time_ns) +
                             opts_.costs.MessageCost(bytes - rn_bytes));
      if (rn_bytes > 0) {
        timing_.Charge(Bucket::kCvmMods,
                       opts_.costs.per_byte_ns * static_cast<double>(rn_bytes));
      }
      ApplyIntervalRecordsLocked(grant.intervals);
      vc_.MergeWith(grant.releaser_vc);
      LockState& state = locks_[lock];
      state.token = true;
      state.held = true;
      for (LockRequestMsg& queued : grant.handoff) {
        state.pending.push_back(std::move(queued));
      }
    }
    lock_granted_self_ = false;
  }
  BeginIntervalLocked();
}

void Node::Unlock(LockId lock) {
  CVM_CHECK_GE(lock, 0);
  CVM_CHECK_LT(lock, opts_.num_locks);
  std::unique_lock<std::mutex> lk(mu_);
  TraceInstant("lock.release", "sync", "lock", static_cast<uint64_t>(lock));
  timing_.Charge(Bucket::kNone, opts_.costs.lock_op_ns);
  LockState& ls = locks_[lock];
  CVM_CHECK(ls.held) << "unlock of lock " << lock << " not held by node " << id_;
  EndIntervalLocked(lk);
  ls.held = false;
  ls.release_vc = vc_;  // The just-ended interval is the last one the
  ls.release_time_ns = timing_.now_ns();  // acquirer is ordered after.
  TryGrantPendingLocked(lock);
  BeginIntervalLocked();
}

void Node::HandleForwardedLockRequestLocked(const LockRequestMsg& request) {
  locks_[request.lock].pending.push_back(request);
  TryGrantPendingLocked(request.lock);
}

void Node::OnLockRequest(const Message& msg) {
  const auto& request = std::get<LockRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (opts_.replay_schedule != nullptr) {
    // Replay routing: out-of-schedule grants break the last-requester chain
    // invariant, so requests instead chase the token along successor links
    // until they reach the current holder, and queue there.
    LockState& ls = locks_[request.lock];
    if (ls.token) {
      LockRequestMsg queued = request;
      queued.forwarded = true;
      HandleForwardedLockRequestLocked(queued);
      return;
    }
    NodeId target = ls.successor;
    if (target == kNoNode || target == id_) {
      target = ManagerOf(request.lock);
    }
    CVM_CHECK_NE(target, id_) << "token successor chain broken for lock " << request.lock;
    LockRequestMsg forwarded = request;
    forwarded.forwarded = true;
    Send(target, forwarded);
    return;
  }
  if (!request.forwarded) {
    CVM_CHECK_EQ(ManagerOf(request.lock), id_);
    const NodeId target = manager_last_requester_[request.lock];
    manager_last_requester_[request.lock] = request.requester;
    LockRequestMsg forwarded = request;
    forwarded.forwarded = true;
    if (target == id_) {
      HandleForwardedLockRequestLocked(forwarded);
    } else {
      Send(target, forwarded);
    }
  } else {
    HandleForwardedLockRequestLocked(request);
  }
}

void Node::OnLockGrant(const Message& msg) {
  const auto& grant = std::get<LockGrantMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (waiting_lock_ != grant.lock || lock_grant_.has_value()) {
    return;  // Matches no outstanding acquire: stale re-delivery.
  }
  lock_grant_ = grant;
  cv_.notify_all();
}

// ---------------- Page service ----------------

void Node::ServePageLocked(const PageRequestMsg& request) {
  CVM_CHECK(am_owner_[request.page]);
  if (!pages_.Readable(request.page)) {
    MaterializeHomeLocked(request.page);
  }
  PageEntry& entry = pages_.entry(request.page);
  PageReplyMsg reply;
  reply.page = request.page;
  reply.data = entry.data;
  if (request.want_write) {
    reply.grants_ownership = true;
    am_owner_[request.page] = false;
    entry.state = PageState::kReadOnly;  // Keep a (stale-able) read copy.
    entry.probable_owner = request.requester;
  }
  Send(request.requester, std::move(reply));
}

void Node::HandleForwardedPageRequestLocked(const PageRequestMsg& request) {
  if (am_owner_[request.page]) {
    ServePageLocked(request);
    return;
  }
  // Ownership is in flight to this node (the home serialized the transfer
  // order); serve once the granting reply is installed.
  pending_serves_[request.page].push_back(request);
}

void Node::DrainPendingServesLocked(PageId page) {
  auto it = pending_serves_.find(page);
  if (it == pending_serves_.end() || !am_owner_[page]) {
    return;
  }
  std::vector<PageRequestMsg> queued = std::move(it->second);
  pending_serves_.erase(it);
  // Read requests belong to this node's tenure and go first; the single
  // write request (if any) carries ownership to the next tenure.
  for (const PageRequestMsg& request : queued) {
    if (!request.want_write) {
      ServePageLocked(request);
    }
  }
  for (const PageRequestMsg& request : queued) {
    if (request.want_write) {
      ServePageLocked(request);
    }
  }
}

void Node::OnPageRequest(const Message& msg) {
  const auto request = std::get<PageRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (opts_.protocol == ProtocolKind::kMultiWriterHomeLrc) {
    CVM_CHECK_EQ(HomeOf(request.page), id_);
    MaterializeHomeLocked(request.page);
    PageReplyMsg reply;
    reply.page = request.page;
    reply.data = pages_.entry(request.page).data;
    Send(request.requester, std::move(reply));
    return;
  }
  // Single-writer: the home is the manager and serializes transfers.
  if (!request.forwarded) {
    CVM_CHECK_EQ(HomeOf(request.page), id_);
    const NodeId target = home_owner_[request.page];
    CVM_CHECK_NE(target, kNoNode);
    CVM_CHECK_NE(target, request.requester)
        << "owner re-requested page " << request.page << " it already owns";
    if (request.want_write) {
      home_owner_[request.page] = request.requester;
    }
    PageRequestMsg forwarded = request;
    forwarded.forwarded = true;
    if (target == id_) {
      HandleForwardedPageRequestLocked(forwarded);
    } else {
      Send(target, forwarded);
    }
    return;
  }
  HandleForwardedPageRequestLocked(request);
}

void Node::OnPageReply(const Message& msg) {
  const auto& reply = std::get<PageReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (reply.page != page_fetch_pending_ || page_reply_.has_value()) {
    return;  // Matches no outstanding fetch: stale re-delivery.
  }
  page_reply_ = reply;
  cv_.notify_all();
}

void Node::OnDiffFlush(const Message& msg) {
  const auto& flush = std::get<DiffFlushMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if constexpr (obs::kObsCompiledIn) {
    uint64_t words = 0;
    for (const Diff& diff : flush.diffs) {
      words += diff.words.size();
    }
    if (diff_obs_.words_applied != nullptr) {
      diff_obs_.words_applied->Add(words);
    }
    TraceInstant("diff.apply", "mem", "words", words);
  }
  for (const Diff& diff : flush.diffs) {
    CVM_CHECK_EQ(HomeOf(diff.page), id_);
    MaterializeHomeLocked(diff.page);
    PageEntry& entry = pages_.entry(diff.page);
    // Apply to the frame; mirror into the twin for words the local writer
    // has not touched, so the home's own later diff does not claim remote
    // writes as its own.
    for (const DiffWord& dw : diff.words) {
      const uint64_t offset = static_cast<uint64_t>(dw.word) * kWordSize;
      CVM_CHECK_LE(offset + kWordSize, entry.data.size());
      if (entry.twin.has_value()) {
        uint32_t frame_value;
        uint32_t twin_value;
        std::memcpy(&frame_value, entry.data.data() + offset, kWordSize);
        std::memcpy(&twin_value, (*entry.twin).data() + offset, kWordSize);
        if (frame_value == twin_value) {
          std::memcpy((*entry.twin).data() + offset, &dw.value, kWordSize);
        }
      }
      std::memcpy(entry.data.data() + offset, &dw.value, kWordSize);
    }
  }
  Send(msg.from, DiffFlushAckMsg{flush.token});
}

void Node::OnDiffFlushAck(const Message& msg) {
  const auto& ack = std::get<DiffFlushAckMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  // An ack whose token is no longer outstanding is a stale re-delivery;
  // consuming it twice would release a later flush wait early.
  if (flush_tokens_outstanding_.erase(ack.token) == 0) {
    return;
  }
  if (flush_tokens_outstanding_.empty()) {
    cv_.notify_all();
  }
}

// ---------------- Barriers & race detection ----------------

void Node::Barrier() {
  std::unique_lock<std::mutex> lk(mu_);
  Span span(tracer_, id_, "barrier", "sync", timing_, epoch_);
  span.SetArg("epoch", static_cast<uint64_t>(epoch_));
  timing_.Charge(Bucket::kNone, opts_.costs.barrier_op_ns);
  EndIntervalLocked(lk);   // Epoch-body interval.
  BeginIntervalLocked();   // In-barrier interval (paper: barrier = release+acquire).
  EndIntervalLocked(lk);   // Published empty; keeps "2 intervals per barrier".
  const EpochId epoch = epoch_;

  if (id_ == 0) {
    cv_.wait(lk, [this, epoch] {
      return arrivals_[epoch].size() == static_cast<size_t>(opts_.num_nodes - 1);
    });
    MasterRunBarrierLocked(lk, epoch);
  } else {
    BarrierArriveMsg arrive;
    arrive.epoch = epoch;
    arrive.node = id_;
    arrive.intervals = log_.All();
    arrive.vc = vc_;
    arrive.arrive_time_ns = static_cast<uint64_t>(timing_.now_ns());
    // Publish this epoch's overhead before arriving so the master's snapshot
    // (taken once every arrival is in) sees a consistent cross-node view.
    PublishOverheadLocked();
    Send(0, std::move(arrive));
    cv_.wait(lk, [this, epoch] {
      return barrier_release_.has_value() && barrier_release_->epoch == epoch;
    });
    BarrierReleaseMsg release = std::move(*barrier_release_);
    barrier_release_.reset();
    const size_t bytes = PayloadByteSize(Payload(release));
    const size_t rn_bytes = PayloadReadNoticeBytes(Payload(release));
    timing_.ObserveAtLeast(static_cast<double>(release.release_time_ns) +
                           opts_.costs.MessageCost(bytes - rn_bytes));
    if (rn_bytes > 0) {
      timing_.Charge(Bucket::kCvmMods, opts_.costs.per_byte_ns * static_cast<double>(rn_bytes));
    }
    ApplyIntervalRecordsLocked(release.intervals);
    vc_.MergeWith(release.merged_vc);
    GarbageCollectLocked();
  }

  if (opts_.race_detection) {
    // Reset of the statically-allocated access bitmaps for the new epoch —
    // part of the paper's "CVM Mods" overhead, proportional to the shared
    // segment size.
    const double used_pages = static_cast<double>(
        (system_->segment().used_bytes() + opts_.page_size - 1) / opts_.page_size);
    timing_.Charge(Bucket::kCvmMods, opts_.costs.bitmap_clear_page_ns * used_pages);
  }
  ++epoch_;
  ++barriers_;
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.barriers != nullptr) {
      mh_.barriers->Increment();
    }
    if (tracer_ != nullptr) {
      tracer_->Drain(id_);  // Barrier = natural quiescent point for the ring.
    }
  }
  BeginIntervalLocked();  // New epoch-body interval.
}

void Node::OnBarrierArrive(const Message& msg) {
  const auto& arrive = std::get<BarrierArriveMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  CVM_CHECK_EQ(id_, 0);
  if (arrive.epoch < epoch_) {
    return;  // The master already ran this epoch's barrier: stale re-delivery.
  }
  ArrivalInfo info;
  info.records = arrive.intervals;
  info.vc = arrive.vc;
  info.time_ns = static_cast<double>(arrive.arrive_time_ns);
  info.wire_bytes = msg.wire_bytes;
  info.read_notice_bytes = PayloadReadNoticeBytes(msg.payload);
  arrivals_[arrive.epoch][arrive.node] = std::move(info);
  cv_.notify_all();
}

void Node::MasterRunBarrierLocked(std::unique_lock<std::mutex>& lk, EpochId epoch) {
  std::map<NodeId, ArrivalInfo> arrivals = std::move(arrivals_[epoch]);
  arrivals_.erase(epoch);

  for (auto& [node, info] : arrivals) {
    timing_.ObserveAtLeast(info.time_ns +
                           opts_.costs.MessageCost(info.wire_bytes - info.read_notice_bytes));
    if (info.read_notice_bytes > 0) {
      timing_.Charge(Bucket::kCvmMods,
                     opts_.costs.per_byte_ns * static_cast<double>(info.read_notice_bytes));
    }
    ApplyIntervalRecordsLocked(info.records);
    vc_.MergeWith(info.vc);
  }

  if (opts_.race_detection && opts_.online_detection) {
    RunRaceDetectionLocked(lk, epoch, log_.All());
  }

  for (NodeId node = 1; node < opts_.num_nodes; ++node) {
    BarrierReleaseMsg release;
    release.epoch = epoch;
    release.intervals = log_.UnseenBy(arrivals[node].vc);
    release.merged_vc = vc_;
    release.release_time_ns = static_cast<uint64_t>(timing_.now_ns());
    Send(node, std::move(release));
  }
  GarbageCollectLocked();
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      PublishOverheadLocked();
      const int interval = std::max(1, opts_.trace.metrics_interval);
      if ((epoch + 1) % interval == 0) {
        metrics_->SnapshotEpoch(epoch, timing_.now_ns());
      }
    }
  }
}

int Node::DetectShardCount() const {
  if (opts_.detect_shards > 0) {
    return opts_.detect_shards;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw == 0 ? 4 : static_cast<int>(hw), 1, 8);
}

void Node::PublishReportsLocked(std::vector<RaceReport> reports) {
  for (RaceReport& report : reports) {
    report.addr = static_cast<GlobalAddr>(report.page) * opts_.page_size +
                  static_cast<GlobalAddr>(report.word) * kWordSize;
    report.symbol = system_->segment().Symbolize(report.addr);
    // Numeric args only: the report's strings move into the system-wide
    // report vector, so pointers into them must not outlive this scope.
    TraceInstant("race.report", "race", "addr", report.addr);
  }
  system_->AddReports(std::move(reports));
}

void Node::RunRaceDetectionLocked(std::unique_lock<std::mutex>& lk, EpochId epoch,
                                  const std::vector<IntervalRecord>& epoch_intervals) {
  RaceDetector& detector = system_->detector();
  const DetectorStats before = detector.stats();
  // Master sim time spent in the check, whatever exit path is taken — the
  // quantity the pipeline ablation compares across modes.
  struct DetectTimer {
    const NodeTiming& timing;
    double start_ns;
    double* out;
    ~DetectTimer() { *out += timing.now_ns() - start_ns; }
  } detect_timer{timing_, timing_.now_ns(), &pipeline_stats_.detect_ns};
  const bool overlapped = opts_.detection_pipeline != DetectionPipeline::kSerial;
  const int shards_wanted = overlapped ? DetectShardCount() : 1;
  std::vector<DetectorStats> per_shard;
  std::vector<CheckPair> pairs;
  {
    Span overlap_span(tracer_, id_, overlapped ? "detector.shard" : "detector.overlap", "race",
                      timing_, epoch);
    pairs = detector.BuildCheckListSharded(epoch_intervals, shards_wanted, &per_shard);
    // The parallel critical path: the most loaded shard, plus a fork/join
    // cost per worker actually spawned. One shard degenerates to the serial
    // charge (sum of every comparison, no fork cost).
    double worst_shard_ns = 0;
    for (const DetectorStats& s : per_shard) {
      worst_shard_ns =
          std::max(worst_shard_ns,
                   opts_.costs.interval_cmp_ns * static_cast<double>(s.interval_comparisons) +
                       opts_.costs.page_overlap_ns * static_cast<double>(s.page_overlap_probes));
    }
    if (per_shard.size() > 1) {
      worst_shard_ns += opts_.costs.shard_fork_ns * static_cast<double>(per_shard.size());
    }
    timing_.Charge(Bucket::kIntervals, worst_shard_ns);
    overlap_span.SetArg("pairs", pairs.size());
  }
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      const DetectorStats& after = detector.stats();
      mh_.check_pairs->Add(after.overlapping_pairs - before.overlapping_pairs);
      mh_.shard_count->Add(per_shard.size());
    }
  }
  if (pairs.empty()) {
    return;
  }
  pipeline_stats_.shards_used = std::max<uint64_t>(pipeline_stats_.shards_used, per_shard.size());
  ++pipeline_stats_.detect_epochs;

  // The check list fixes the distinct (interval, page) bitmaps step 5 needs;
  // every pipeline mode accounts them once here (§4 step 3).
  const auto needed = RaceDetector::BitmapsNeeded(pairs);
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      mh_.checklist_entries->Add(needed.size());
    }
  }

  if (opts_.detection_pipeline == DetectionPipeline::kDistributed) {
    PublishReportsLocked(RunDistributedCompareLocked(lk, epoch, pairs, needed.size()));
    return;
  }

  Span bitmaps_span(tracer_, id_, "detector.bitmaps", "race", timing_, epoch);

  // Bitmap-retrieval round (§4 step 4): ask each constituent node for the
  // word bitmaps of its listed intervals; the master's own resolve locally.
  collected_bitmaps_.clear();
  std::map<NodeId, std::vector<CheckEntry>> by_node;
  for (const auto& [interval, page] : needed) {
    if (interval.node == id_) {
      const PageAccessBitmaps* local = bitmaps_.Find(interval.index, page);
      if (local != nullptr) {
        collected_bitmaps_.emplace(std::make_pair(interval, page), *local);
      }
    } else {
      by_node[interval.node].push_back(CheckEntry{interval, page});
    }
  }
  CVM_CHECK_EQ(bitmap_replies_pending_, 0);
  bitmap_replies_pending_ = static_cast<int>(by_node.size());
  bitmap_round_bytes_ = 0;
  bitmap_round_raw_bytes_ = 0;
  for (auto& [node, entries] : by_node) {
    BitmapRequestMsg request;
    request.epoch = epoch;
    request.entries = std::move(entries);
    Send(node, std::move(request));
  }
  double round_ns = 0;
  if (bitmap_replies_pending_ > 0) {
    if (!overlapped) {
      timing_.Charge(Bucket::kBitmaps, 2 * opts_.costs.msg_latency_ns);
    }
    cv_.wait(lk, [this] { return bitmap_replies_pending_ == 0; });
    if (!overlapped) {
      timing_.Charge(Bucket::kBitmaps,
                     opts_.costs.per_byte_ns * static_cast<double>(bitmap_round_bytes_));
    } else {
      round_ns = 2 * opts_.costs.msg_latency_ns +
                 opts_.costs.per_byte_ns * static_cast<double>(bitmap_round_bytes_);
    }
  }

  const uint64_t compared_before = detector.stats().bitmap_pairs_compared;
  BitmapLookup lookup = [this](const IntervalId& interval, PageId page) {
    auto it = collected_bitmaps_.find(std::make_pair(interval, page));
    return it == collected_bitmaps_.end() ? nullptr : &it->second;
  };
  std::vector<RaceReport> reports = detector.CompareBitmaps(pairs, lookup, epoch, needed.size());
  const uint64_t compared = detector.stats().bitmap_pairs_compared - compared_before;
  const double chunks = static_cast<double>((opts_.page_size / kWordSize + 63) / 64);
  const double compare_ns =
      opts_.costs.bitmap_cmp_word_ns * chunks * static_cast<double>(compared);
  if (!overlapped) {
    timing_.Charge(Bucket::kBitmaps, compare_ns);
  } else {
    // §6.2's overlap idea: the master compares pairs whose bitmaps are
    // already local while the retrieval round is still in flight. Perfect
    // overlap — the epoch pays the longer of the two legs, not their sum.
    timing_.Charge(Bucket::kBitmaps, std::max(round_ns, compare_ns));
    const double saved_ns = std::min(round_ns, compare_ns);
    pipeline_stats_.overlap_saved_ns += saved_ns;
    if constexpr (obs::kObsCompiledIn) {
      if (metrics_ != nullptr) {
        mh_.overlap_saved_ns->Add(static_cast<uint64_t>(saved_ns));
      }
    }
  }
  pipeline_stats_.bitmap_bytes_wire += bitmap_round_bytes_;
  pipeline_stats_.bitmap_bytes_raw += bitmap_round_raw_bytes_;

  bitmaps_span.SetArg("compared", compared);
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      mh_.bitmap_pairs_compared->Add(compared);
      mh_.races_reported->Add(reports.size());
      mh_.bitmap_bytes_wire->Add(bitmap_round_bytes_);
      mh_.bitmap_bytes_raw->Add(bitmap_round_raw_bytes_);
      mh_.bitmap_bytes_saved->Add(bitmap_round_raw_bytes_ - bitmap_round_bytes_);
    }
  }
  PublishReportsLocked(std::move(reports));
  collected_bitmaps_.clear();
}

std::vector<RaceReport> Node::RunDistributedCompareLocked(std::unique_lock<std::mutex>& lk,
                                                          EpochId epoch,
                                                          const std::vector<CheckPair>& pairs,
                                                          size_t checklist_entries) {
  RaceDetector& detector = system_->detector();
  Span span(tracer_, id_, "detector.compare.remote", "race", timing_, epoch);

  // Assign every check pair to one of its two member nodes. The master owns
  // any pair it participates in (its bitmaps never leave node 0); remaining
  // pairs alternate between the members by index so the compare load spreads
  // evenly. Ownership is a pure function of the (deterministic) check list,
  // so the partition is reproducible run to run.
  struct OwnedPair {
    uint32_t index;
    const CheckPair* pair;
  };
  std::vector<OwnedPair> master_pairs;
  std::map<NodeId, CompareRequestMsg> requests;
  std::set<std::tuple<NodeId, NodeId, IntervalId, PageId>> planned;  // (src, dst, interval, page)
  auto plan_ship = [&](NodeId source, NodeId dest, const IntervalId& interval, PageId page) {
    if (source == dest) {
      return;  // The owner already holds its own bitmaps.
    }
    if (!planned.insert({source, dest, interval, page}).second) {
      return;  // Another pair already ships this entry there.
    }
    requests[source].ships.push_back(ShipDirective{dest, interval, page});
  };
  uint32_t index = 0;
  for (const CheckPair& pair : pairs) {
    const NodeId na = pair.a.id.node;
    const NodeId nb = pair.b.id.node;
    const NodeId owner = (na == id_ || nb == id_)
                             ? id_
                             : (index % 2 == 0 ? std::min(na, nb) : std::max(na, nb));
    for (PageId page : pair.pages) {
      if (pair.a.WritesPage(page) || pair.a.ReadsPage(page)) {
        plan_ship(na, owner, pair.a.id, page);
      }
      if (pair.b.WritesPage(page) || pair.b.ReadsPage(page)) {
        plan_ship(nb, owner, pair.b.id, page);
      }
    }
    if (owner == id_) {
      master_pairs.push_back(OwnedPair{index, &pair});
    } else {
      ComparePairEntry entry;
      entry.pair_index = index;
      entry.a = pair.a.id;
      entry.b = pair.b.id;
      entry.pages = pair.pages;
      requests[owner].pairs.push_back(std::move(entry));
    }
    ++index;
  }
  // One BitmapShipMsg travels per distinct (source, dest) edge, so a dest
  // expects as many ship messages as it has distinct sources.
  std::map<NodeId, std::set<NodeId>> ship_sources;
  for (const auto& [src, dst, interval, page] : planned) {
    ship_sources[dst].insert(src);
  }

  CVM_CHECK_EQ(compare_replies_pending_, 0);
  CVM_CHECK_EQ(master_ships_pending_, 0);
  compare_replies_.clear();
  collected_bitmaps_.clear();
  master_ship_target_ns_ = 0;
  master_ship_bytes_wire_ = 0;
  master_ship_bytes_raw_ = 0;
  {
    auto it = ship_sources.find(id_);
    master_ships_pending_ = it == ship_sources.end() ? 0 : static_cast<int>(it->second.size());
  }
  compare_replies_pending_ = static_cast<int>(requests.size());
  const uint64_t request_time = static_cast<uint64_t>(timing_.now_ns());
  for (auto& [node, request] : requests) {
    request.epoch = epoch;
    request.request_time_ns = request_time;
    auto it = ship_sources.find(node);
    request.expected_ship_msgs =
        it == ship_sources.end() ? 0 : static_cast<uint32_t>(it->second.size());
    Send(node, std::move(request));
  }

  // The master's own compares need only the peers' shipped bitmaps; its own
  // side resolves from local storage. Compare as soon as the inbound ships
  // land — the remote owners' replies overlap this work (the Lamport merge
  // below takes the max of the two legs, not their sum).
  cv_.wait(lk, [this] { return master_ships_pending_ == 0; });
  if (master_ship_target_ns_ > timing_.now_ns()) {
    timing_.Charge(Bucket::kBitmaps, master_ship_target_ns_ - timing_.now_ns());
  }
  BitmapLookup lookup = [this](const IntervalId& interval, PageId page) -> const PageAccessBitmaps* {
    if (interval.node == id_) {
      return bitmaps_.Find(interval.index, page);
    }
    auto it = collected_bitmaps_.find(std::make_pair(interval, page));
    return it == collected_bitmaps_.end() ? nullptr : &it->second;
  };
  uint64_t master_compared = 0;
  std::vector<std::pair<uint32_t, RaceReport>> tagged;
  for (const OwnedPair& owned : master_pairs) {
    std::vector<RaceReport> pair_reports = RaceDetector::CompareOnePair(
        owned.pair->a.id, owned.pair->b.id, owned.pair->pages, lookup, epoch, &master_compared);
    for (RaceReport& report : pair_reports) {
      tagged.emplace_back(owned.index, std::move(report));
    }
  }
  const double chunks = static_cast<double>((opts_.page_size / kWordSize + 63) / 64);
  timing_.Charge(Bucket::kBitmaps,
                 opts_.costs.bitmap_cmp_word_ns * chunks * static_cast<double>(master_compared));

  cv_.wait(lk, [this] { return compare_replies_pending_ == 0; });
  // The distributed round's cost is its critical path: the slowest node's
  // reply arrival, not the sum over nodes.
  double target_ns = timing_.now_ns();
  uint64_t remote_compared = 0;
  uint64_t remote_report_count = 0;
  uint64_t ship_bytes_wire = master_ship_bytes_wire_;
  uint64_t ship_bytes_raw = master_ship_bytes_raw_;
  for (const CompareReplyInfo& info : compare_replies_) {
    target_ns = std::max(target_ns, static_cast<double>(info.msg.reply_time_ns) +
                                        opts_.costs.MessageCost(info.wire_bytes));
    remote_compared += info.msg.pairs_compared;
    remote_report_count += info.msg.reports.size();
    ship_bytes_wire += info.msg.ship_bytes_wire;
    ship_bytes_raw += info.msg.ship_bytes_raw;
    for (const RemoteReportEntry& e : info.msg.reports) {
      RaceReport report;
      report.kind = static_cast<RaceKind>(e.kind);
      report.page = e.page;
      report.word = e.word;
      report.interval_a = e.interval_a;
      report.interval_b = e.interval_b;
      report.epoch = epoch;
      tagged.emplace_back(e.pair_index, std::move(report));
    }
  }
  if (target_ns > timing_.now_ns()) {
    timing_.Charge(Bucket::kBitmaps, target_ns - timing_.now_ns());
  }
  compare_replies_.clear();
  collected_bitmaps_.clear();

  // Deterministic merge: check-list order is pair_index order, and each
  // node (master included) emitted its reports in pair order via
  // CompareOnePair, so a stable sort reproduces the serial report stream.
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<RaceReport> reports;
  reports.reserve(tagged.size());
  for (auto& [pair_index, report] : tagged) {
    reports.push_back(std::move(report));
  }

  detector.AccumulateCompare(checklist_entries, master_compared + remote_compared);
  pipeline_stats_.bitmap_bytes_wire += ship_bytes_wire;
  pipeline_stats_.bitmap_bytes_raw += ship_bytes_raw;
  pipeline_stats_.remote_pairs_compared += remote_compared;
  pipeline_stats_.remote_reports += remote_report_count;
  span.SetArg("remote_pairs", remote_compared);
  if constexpr (obs::kObsCompiledIn) {
    if (metrics_ != nullptr) {
      mh_.bitmap_pairs_compared->Add(master_compared + remote_compared);
      mh_.races_reported->Add(reports.size());
      mh_.bitmap_bytes_wire->Add(ship_bytes_wire);
      mh_.bitmap_bytes_raw->Add(ship_bytes_raw);
      mh_.bitmap_bytes_saved->Add(ship_bytes_raw - ship_bytes_wire);
      mh_.remote_pairs->Add(remote_compared);
      mh_.remote_reports->Add(remote_report_count);
    }
  }
  return reports;
}

void Node::OnBitmapRequest(const Message& msg) {
  const auto& request = std::get<BitmapRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  BitmapReplyMsg reply;
  reply.epoch = request.epoch;
  for (const CheckEntry& entry : request.entries) {
    CVM_CHECK_EQ(entry.interval.node, id_);
    const PageAccessBitmaps* bitmaps = bitmaps_.Find(entry.interval.index, entry.page);
    if (bitmaps == nullptr) {
      continue;
    }
    reply.entries.push_back(
        BitmapReplyEntry{entry.interval, entry.page,
                         BitmapCodec::Encode(bitmaps->read, opts_.compress_bitmaps),
                         BitmapCodec::Encode(bitmaps->write, opts_.compress_bitmaps)});
  }
  Send(msg.from, std::move(reply));
}

void Node::OnBitmapReply(const Message& msg) {
  const auto& reply = std::get<BitmapReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  size_t wire_entry_bytes = 0;
  size_t raw_entry_bytes = 0;
  for (const BitmapReplyEntry& entry : reply.entries) {
    wire_entry_bytes += ReplyEntryWireBytes(entry);
    raw_entry_bytes += ReplyEntryRawBytes(entry);
    collected_bitmaps_.emplace(std::make_pair(entry.interval, entry.page),
                               PageAccessBitmaps{BitmapCodec::Decode(entry.read),
                                                 BitmapCodec::Decode(entry.write)});
  }
  bitmap_round_bytes_ += msg.wire_bytes;
  bitmap_round_raw_bytes_ += msg.wire_bytes + (raw_entry_bytes - wire_entry_bytes);
  CVM_CHECK_GT(bitmap_replies_pending_, 0);
  --bitmap_replies_pending_;
  if (bitmap_replies_pending_ == 0) {
    cv_.notify_all();
  }
}

void Node::OnCompareRequest(const Message& msg) {
  const auto& request = std::get<CompareRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (request.epoch < epoch_) {
    return;  // Stale re-delivery of a finished round.
  }
  // Drop leftover state from rounds that already completed.
  remote_compare_.erase(remote_compare_.begin(), remote_compare_.lower_bound(epoch_));
  RemoteCompareState& state = remote_compare_[request.epoch];
  if (state.have_request) {
    return;  // Duplicate.
  }
  state.have_request = true;
  timing_.ObserveAtLeast(static_cast<double>(request.request_time_ns) +
                         opts_.costs.MessageCost(msg.wire_bytes));

  // Execute the ship directives immediately: one BitmapShipMsg per distinct
  // destination, sent even when every listed bitmap is gone, so destinations
  // can count messages rather than entries.
  std::map<NodeId, std::vector<BitmapReplyEntry>> by_dest;
  for (const ShipDirective& ship : request.ships) {
    CVM_CHECK_EQ(ship.interval.node, id_);
    std::vector<BitmapReplyEntry>& entries = by_dest[ship.dest];
    const PageAccessBitmaps* bitmaps = bitmaps_.Find(ship.interval.index, ship.page);
    if (bitmaps == nullptr) {
      continue;
    }
    entries.push_back(BitmapReplyEntry{ship.interval, ship.page,
                                       BitmapCodec::Encode(bitmaps->read, opts_.compress_bitmaps),
                                       BitmapCodec::Encode(bitmaps->write, opts_.compress_bitmaps)});
  }
  for (auto& [dest, entries] : by_dest) {
    for (const BitmapReplyEntry& entry : entries) {
      state.ship_bytes_wire += ReplyEntryWireBytes(entry);
      state.ship_bytes_raw += ReplyEntryRawBytes(entry);
    }
    BitmapShipMsg out;
    out.epoch = request.epoch;
    out.entries = std::move(entries);
    out.send_time_ns = static_cast<uint64_t>(timing_.now_ns());
    Send(dest, std::move(out));
  }
  state.request = request;
  TryFinishRemoteCompareLocked(request.epoch);
}

void Node::OnBitmapShip(const Message& msg) {
  const auto& ship = std::get<BitmapShipMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (id_ == 0) {
    // Master side: peers shipping the bitmaps for master-owned pairs.
    if (master_ships_pending_ <= 0 || ship.epoch != epoch_) {
      return;  // Stale re-delivery.
    }
    for (const BitmapReplyEntry& entry : ship.entries) {
      master_ship_bytes_wire_ += ReplyEntryWireBytes(entry);
      master_ship_bytes_raw_ += ReplyEntryRawBytes(entry);
      collected_bitmaps_.emplace(std::make_pair(entry.interval, entry.page),
                                 PageAccessBitmaps{BitmapCodec::Decode(entry.read),
                                                   BitmapCodec::Decode(entry.write)});
    }
    master_ship_target_ns_ =
        std::max(master_ship_target_ns_,
                 static_cast<double>(ship.send_time_ns) + opts_.costs.MessageCost(msg.wire_bytes));
    --master_ships_pending_;
    if (master_ships_pending_ == 0) {
      cv_.notify_all();
    }
    return;
  }
  if (ship.epoch < epoch_) {
    return;  // Stale re-delivery.
  }
  // Ships can land before this node's own CompareRequest; park them.
  RemoteCompareState& state = remote_compare_[ship.epoch];
  timing_.ObserveAtLeast(static_cast<double>(ship.send_time_ns) +
                         opts_.costs.MessageCost(msg.wire_bytes));
  for (const BitmapReplyEntry& entry : ship.entries) {
    state.shipped.emplace(std::make_pair(entry.interval, entry.page),
                          PageAccessBitmaps{BitmapCodec::Decode(entry.read),
                                            BitmapCodec::Decode(entry.write)});
  }
  ++state.ships_received;
  TryFinishRemoteCompareLocked(ship.epoch);
}

void Node::TryFinishRemoteCompareLocked(EpochId epoch) {
  auto it = remote_compare_.find(epoch);
  if (it == remote_compare_.end()) {
    return;
  }
  RemoteCompareState& state = it->second;
  if (!state.have_request || state.ships_received < state.request.expected_ship_msgs) {
    return;
  }
  Span span(tracer_, id_, "detector.compare.remote", "race", timing_, epoch);

  BitmapLookup lookup = [this, &state](const IntervalId& interval,
                                       PageId page) -> const PageAccessBitmaps* {
    if (interval.node == id_) {
      return bitmaps_.Find(interval.index, page);
    }
    auto sit = state.shipped.find(std::make_pair(interval, page));
    return sit == state.shipped.end() ? nullptr : &sit->second;
  };
  CompareReplyMsg reply;
  reply.epoch = epoch;
  reply.node = id_;
  uint64_t compared = 0;
  for (const ComparePairEntry& pair : state.request.pairs) {
    std::vector<RaceReport> reports =
        RaceDetector::CompareOnePair(pair.a, pair.b, pair.pages, lookup, epoch, &compared);
    for (const RaceReport& report : reports) {
      reply.reports.push_back(RemoteReportEntry{pair.pair_index,
                                                static_cast<uint8_t>(report.kind), report.page,
                                                report.word, report.interval_a,
                                                report.interval_b});
    }
  }
  const double chunks = static_cast<double>((opts_.page_size / kWordSize + 63) / 64);
  timing_.Charge(Bucket::kBitmaps,
                 opts_.costs.bitmap_cmp_word_ns * chunks * static_cast<double>(compared));
  span.SetArg("pairs", compared);
  reply.pairs_compared = compared;
  reply.ship_bytes_wire = state.ship_bytes_wire;
  reply.ship_bytes_raw = state.ship_bytes_raw;
  reply.reply_time_ns = static_cast<uint64_t>(timing_.now_ns());
  remote_compare_.erase(it);
  Send(0, std::move(reply));
}

void Node::OnCompareReply(const Message& msg) {
  const auto& reply = std::get<CompareReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  CVM_CHECK_EQ(id_, 0);
  if (compare_replies_pending_ <= 0 || reply.epoch != epoch_) {
    return;  // Stale re-delivery.
  }
  compare_replies_.push_back(CompareReplyInfo{reply, msg.wire_bytes});
  --compare_replies_pending_;
  if (compare_replies_pending_ == 0) {
    cv_.notify_all();
  }
}

void Node::DumpTraceBitmaps(PostMortemTrace& trace) const {
  std::lock_guard<std::mutex> guard(mu_);
  bitmaps_.ForEachPair(id_, [&trace](const IntervalId& interval, PageId page,
                                     const PageAccessBitmaps& pair) {
    trace.AddBitmaps(interval, page, pair);
  });
}

void Node::OnErcUpdate(const Message& msg) {
  const auto& update = std::get<ErcUpdateMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (!log_.Contains(update.record.id)) {
    log_.Insert(update.record);
    if (update.record.id.node != id_) {
      erc_eager_only_.insert(update.record.id);
      for (PageId page : update.record.write_pages) {
        if (!am_owner_[page]) {
          pages_.Invalidate(page);
        }
      }
    }
  }
  // No vector-clock merge: ERC moves data eagerly, but synchronization
  // ordering — what the race detector consumes — still comes only from
  // lock grants and barriers.
  Send(msg.from, ErcAckMsg{update.token});
}

void Node::OnErcAck(const Message& msg) {
  const auto& ack = std::get<ErcAckMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (erc_tokens_outstanding_.erase(ack.token) == 0) {
    return;  // Stale re-delivery; already consumed.
  }
  if (erc_tokens_outstanding_.empty()) {
    cv_.notify_all();
  }
}

void Node::OnBarrierRelease(const Message& msg) {
  const auto& release = std::get<BarrierReleaseMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (barrier_release_.has_value() || release.epoch < epoch_) {
    return;  // This epoch's release already landed: stale re-delivery.
  }
  barrier_release_ = release;
  cv_.notify_all();
}

}  // namespace cvm
