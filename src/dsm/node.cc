#include "src/dsm/node.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "src/common/check.h"
#include "src/dsm/dsm.h"
#include "src/fault/fault.h"
#include "src/obs/span.h"
#include "src/race/bitmap_codec.h"

namespace cvm {

namespace {

// Per-service-thread dispatch state: the context of the message currently
// being handled, so sends issued from inside the handler can tell "forward
// of the same chain" (same payload kind) from "new chain caused by it".
// Thread-local because handlers run on each node's own service thread and
// the app thread must never see another thread's in-flight dispatch.
struct DispatchFlowScope {
  obs::TraceContext ctx;
  size_t payload_kind = 0;
  bool extended = false;  // A send inherited the chain (it continues).
};

thread_local DispatchFlowScope* t_dispatch_flow = nullptr;

}  // namespace

Node::Node(NodeId id, DsmSystem* system)
    : system_(system),
      id_(id),
      opts_(system->options()),
      pages_(system->segment().num_pages(), opts_.page_size),
      vc_(opts_.num_nodes),
      log_(opts_.num_nodes),
      bitmaps_(static_cast<uint32_t>(opts_.page_size / kWordSize)),
      filter_(opts_.page_size, system->segment().size_bytes()),
      protocol_(CoherenceProtocol::Make(opts_.protocol, *this)),
      lock_mgr_(*this),
      barrier_(*this) {
  protocol_->RegisterHandlers(dispatcher_);
  lock_mgr_.RegisterHandlers(dispatcher_);
  barrier_.RegisterHandlers(dispatcher_);
  // Shutdown is a transport-level nudge: nothing to do at this layer — the
  // Recv loop exits on network close. Registered so it doesn't count as an
  // unhandled payload.
  dispatcher_.Register<ShutdownMsg>([](const Message&) {});
  // Crash-tolerance control plane (docs/FAULTS.md "Crash faults & recovery").
  dispatcher_.Register<HeartbeatProbeMsg>([this](const Message& msg) { OnHeartbeatProbe(msg); });
  dispatcher_.Register<HeartbeatAckMsg>([this](const Message& msg) { OnHeartbeatAck(msg); });
  dispatcher_.Register<PeerSuspectMsg>([this](const Message& msg) { OnPeerSuspect(msg); });
  dispatcher_.Register<RunAbortMsg>([this](const Message& msg) { OnRunAbort(msg); });
  dispatcher_.SetUnhandledHook([this](const Message& msg) {
    if constexpr (!obs::kObsCompiledIn) {
      return;
    }
    if (tracer_ == nullptr) {
      return;
    }
    // Identify the stray traffic fully: who sent it and what it claimed to
    // be, by index and by name. Runs on the service thread outside any
    // handler, so take mu_ for the epoch/clock reads.
    obs::TraceEvent event;
    event.name = "dispatch.unhandled";
    event.cat = "net";
    event.phase = 'i';
    event.node = id_;
    event.arg_name = "from";
    event.arg_value = static_cast<uint64_t>(msg.from >= 0 ? msg.from : 0);
    event.arg2_name = "kind";
    event.arg2_value = msg.payload.index();
    event.str_arg_name = "kind_name";
    event.str_arg_value = msg.KindName();
    {
      std::lock_guard<std::mutex> guard(mu_);
      event.epoch = epoch_;
      event.sim_ts_ns = timing_.now_ns();
    }
    tracer_->Emit(event);
  });
  InitObservability();
  BeginIntervalLocked();  // Interval 0. Single-threaded here; no lock needed.
  CaptureCheckpointLocked();  // Epoch-0 cut: covers a crash in the first epoch.
}

void Node::InitObservability() {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  tracer_ = system_->tracer();
  metrics_ = system_->metrics();
  diff_obs_.tracer = tracer_;
  diff_obs_.node = id_;
  obs::Counter* twins = nullptr;
  obs::Counter* installs = nullptr;
  obs::Counter* invalidations = nullptr;
  if (metrics_ != nullptr) {
    mh_.page_faults = metrics_->counter("dsm.page_faults");
    mh_.page_fetches = metrics_->counter("dsm.page_fetches");
    mh_.locks_acquired = metrics_->counter("dsm.locks_acquired");
    mh_.barriers = metrics_->counter("dsm.barriers");
    mh_.intervals = metrics_->counter("dsm.intervals");
    for (int b = 0; b < kNumBuckets; ++b) {
      mh_.overhead[static_cast<size_t>(b)] =
          metrics_->counter(BucketMetricName(static_cast<Bucket>(b)));
    }
    twins = metrics_->counter("mem.twins_created");
    installs = metrics_->counter("mem.page_installs");
    invalidations = metrics_->counter("mem.page_invalidations");
    diff_obs_.diffs_created = metrics_->counter("mem.diffs_created");
    diff_obs_.diff_size_words = metrics_->histogram("mem.diff_size_words");
    diff_obs_.words_applied = metrics_->counter("mem.diff_words_applied");
    peer_suspected_counter_ = metrics_->counter("net.peer.suspected");
    locks_recovered_counter_ = metrics_->counter("dsm.lock.recovered");
  }
  if (tracer_ != nullptr || metrics_ != nullptr) {
    pages_.AttachObservability(tracer_, id_, twins, installs, invalidations);
  }
  barrier_.InitObservability(metrics_);
  dispatcher_.AttachMetrics(metrics_);
}

void Node::TraceInstant(const char* name, const char* cat, const char* arg_name,
                        uint64_t arg_value) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (tracer_ == nullptr) {
    return;
  }
  obs::TraceEvent event;
  event.name = name;
  event.cat = cat;
  event.phase = 'i';
  event.node = id_;
  event.epoch = epoch_;
  event.sim_ts_ns = timing_.now_ns();
  event.arg_name = arg_name;
  event.arg_value = arg_value;
  tracer_->Emit(event);
}

void Node::CountPageFetch() {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (mh_.page_fetches != nullptr) {
    mh_.page_fetches->Increment();
  }
}

void Node::PublishOverheadLocked() {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (metrics_ == nullptr) {
    return;
  }
  for (int b = 0; b < kNumBuckets; ++b) {
    const double total = timing_.overhead_ns(static_cast<Bucket>(b));
    const double delta = total - overhead_published_[static_cast<size_t>(b)];
    if (delta > 0) {
      mh_.overhead[static_cast<size_t>(b)]->Add(static_cast<uint64_t>(delta));
      overhead_published_[static_cast<size_t>(b)] = total;
    }
  }
}

Node::~Node() = default;

int Node::num_nodes() const { return opts_.num_nodes; }

std::vector<uint8_t> Node::InitialPageData(PageId page) {
  return system_->segment().InitialPage(page);
}

void Node::Send(NodeId to, Payload payload) {
  Message msg;
  msg.from = id_;
  msg.to = to;
  msg.payload = std::move(payload);
  StampFlowContext(msg);
  // Under fault injection the reliable transport returns the simulated time
  // this sender spent in retransmission backoff and injected delay; charge it
  // to the node's clock like any other network cost. Zero on the clean path.
  const SendOutcome outcome = system_->network().Send(std::move(msg));
  if (outcome.penalty_ns > 0) {
    timing_.Charge(Bucket::kNone, outcome.penalty_ns);
  }
  if (outcome.unreachable()) {
    OnPeerUnreachableLocked(to);
  }
}

void Node::StartService() {
  service_thread_ = std::thread([this] { ServiceLoop(); });
}

void Node::JoinService() {
  if (service_thread_.joinable()) {
    service_thread_.join();
  }
}

void Node::ServiceLoop() {
  while (true) {
    std::optional<Message> msg = system_->network().Recv(id_);
    if (!msg.has_value()) {
      return;  // Network closed.
    }
    {
      // Fail-stop: a crashed node answers nothing, not even frames that were
      // already in its inbox when it died.
      std::lock_guard<std::mutex> guard(mu_);
      if (crashed_) {
        continue;
      }
    }
    DispatchWithFlow(*msg);
  }
}

void Node::StampFlowContext(Message& msg) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  if (tracer_ == nullptr || !tracer_->flows_enabled()) {
    return;
  }
  DispatchFlowScope* scope = t_dispatch_flow;
  if (scope != nullptr && scope->ctx.stamped() && scope->payload_kind == msg.payload.index()) {
    // Identity-preserving forward (lock-request routing, page-request
    // forwarding): the outbound message IS the inbound one, one hop later.
    // Inherit the chain so Perfetto draws s -> t -> ... -> f through every
    // intermediary; the dispatch wrapper will emit this hop as a 't'.
    msg.ctx = scope->ctx;
    ++msg.ctx.hop;
    msg.ctx.send_sim_ns = static_cast<uint64_t>(timing_.now_ns());
    scope->extended = true;
    return;
  }
  msg.ctx.origin = id_;
  msg.ctx.epoch = epoch_;
  msg.ctx.causal_id = tracer_->NextFlowId();
  msg.ctx.parent_id = scope != nullptr && scope->ctx.stamped() ? scope->ctx.causal_id : 0;
  msg.ctx.send_sim_ns = static_cast<uint64_t>(timing_.now_ns());
  obs::TraceEvent event;
  event.name = PayloadKindName(msg.payload.index());
  event.cat = "flow";
  event.phase = 's';
  event.node = id_;
  event.epoch = epoch_;
  event.sim_ts_ns = timing_.now_ns();
  event.flow_id = msg.ctx.causal_id;
  event.arg_name = "to";
  event.arg_value = static_cast<uint64_t>(msg.to);
  if (msg.ctx.parent_id != 0) {
    event.arg2_name = "parent";
    event.arg2_value = msg.ctx.parent_id;
  }
  tracer_->Emit(event);
}

void Node::DispatchWithFlow(const Message& msg) {
  if constexpr (obs::kObsCompiledIn) {
    if (tracer_ != nullptr && tracer_->flows_enabled() && msg.ctx.stamped()) {
      DispatchFlowScope scope;
      scope.ctx = msg.ctx;
      scope.payload_kind = msg.payload.index();
      t_dispatch_flow = &scope;
      dispatcher_.Dispatch(msg);
      t_dispatch_flow = nullptr;
      // Receive step, after the handler so we know whether the chain went on
      // ('t') or terminated here ('f'). The timestamp is the modeled arrival:
      // at least one message cost after the send, and never before this
      // node's own clock — per-node clocks only synchronize at sync points,
      // and a backwards arrow would be a lie about causality.
      obs::TraceEvent event;
      event.name = PayloadKindName(msg.payload.index());
      event.cat = "flow";
      event.phase = scope.extended ? 't' : 'f';
      event.node = id_;
      event.flow_id = msg.ctx.causal_id;
      event.arg_name = "from";
      event.arg_value = static_cast<uint64_t>(msg.from >= 0 ? msg.from : 0);
      event.arg2_name = "hop";
      event.arg2_value = msg.ctx.hop;
      {
        std::lock_guard<std::mutex> guard(mu_);
        event.epoch = epoch_;
        const double arrival = static_cast<double>(msg.ctx.send_sim_ns) +
                               opts_.costs.MessageCost(msg.wire_bytes);
        event.sim_ts_ns = std::max(timing_.now_ns(), arrival);
      }
      tracer_->Emit(event);
      return;
    }
  }
  dispatcher_.Dispatch(msg);
}

// ---------------- Cost helpers ----------------

void Node::ChargeInstrumentationLocked() {
  timing_.Charge(Bucket::kProcCall, opts_.costs.proc_call_ns);
  timing_.Charge(Bucket::kAccessCheck, opts_.costs.access_check_ns);
}

void Node::ChargeMessageLocked(size_t bytes, size_t read_notice_bytes) {
  CVM_CHECK_GE(bytes, read_notice_bytes);
  timing_.Charge(Bucket::kNone, opts_.costs.MessageCost(bytes - read_notice_bytes));
  if (read_notice_bytes > 0) {
    timing_.Charge(Bucket::kCvmMods,
                   opts_.costs.per_byte_ns * static_cast<double>(read_notice_bytes));
  }
}

// ---------------- Shared accesses ----------------

void Node::Compute(uint64_t units) {
  std::lock_guard<std::mutex> guard(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.compute_unit_ns * static_cast<double>(units));
}

void Node::PrivateAccess(uint64_t va, bool is_write) {
  std::lock_guard<std::mutex> guard(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  if (opts_.race_detection) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(va, is_write);
    CVM_CHECK(!result.shared) << "private VA resolved as shared";
  }
}

uint64_t Node::AllocPrivateVa(uint64_t bytes) {
  std::lock_guard<std::mutex> guard(mu_);
  const uint64_t va = private_va_next_;
  private_va_next_ += (bytes + kWordSize - 1) / kWordSize * kWordSize;
  return va;
}

uint32_t Node::ReadWord(GlobalAddr addr) {
  std::unique_lock<std::mutex> lk(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  const PageId page = static_cast<PageId>(addr / opts_.page_size);
  const uint32_t word = WordInPage(addr % opts_.page_size);
  if (opts_.race_detection) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(SharedVa(addr), /*is_write=*/false);
    CVM_CHECK(result.shared);
    bitmaps_.RecordRead(cur_interval_, page, word);
    if (cur_reads_.Insert(page)) {
      timing_.Charge(Bucket::kCvmMods, opts_.costs.notice_setup_ns);
    }
    if (opts_.watch.has_value()) {
      const Watchpoint& w = *opts_.watch;
      if (addr >= w.addr && addr < w.addr + w.bytes && (w.epoch == -1 || epoch_ == w.epoch)) {
        system_->AddWatchHit(
            WatchHit{id_, IntervalId{id_, cur_interval_}, epoch_, addr, false, site_});
      }
    }
  }
  if (!pages_.Readable(page)) {
    ReadFaultLocked(lk, page);
  }
  const uint32_t value = pages_.ReadWord(page, word);
  protocol_->OnAccessComplete(page);
  return value;
}

void Node::WriteWord(GlobalAddr addr, uint32_t value) {
  std::unique_lock<std::mutex> lk(mu_);
  timing_.Charge(Bucket::kNone, opts_.costs.base_access_ns);
  const PageId page = static_cast<PageId>(addr / opts_.page_size);
  const uint32_t word = WordInPage(addr % opts_.page_size);
  // §6.5: under diff-derived write detection, store instructions are not
  // instrumented at all — writes are mined from diffs at release time.
  if (opts_.race_detection && opts_.write_detection == WriteDetection::kInstrumentation) {
    ChargeInstrumentationLocked();
    AccessFilter::Result result = filter_.OnAccess(SharedVa(addr), /*is_write=*/true);
    CVM_CHECK(result.shared);
    bitmaps_.RecordWrite(cur_interval_, page, word);
    if (opts_.watch.has_value()) {
      const Watchpoint& w = *opts_.watch;
      if (addr >= w.addr && addr < w.addr + w.bytes && (w.epoch == -1 || epoch_ == w.epoch)) {
        system_->AddWatchHit(
            WatchHit{id_, IntervalId{id_, cur_interval_}, epoch_, addr, true, site_});
      }
    }
  }
  if (!pages_.Writable(page)) {
    WriteFaultLocked(lk, page);
  }
  pages_.WriteWord(page, word, value);
  protocol_->OnAccessComplete(page);
}

void Node::ReadFaultLocked(std::unique_lock<std::mutex>& lk, PageId page) {
  ++page_faults_;
  obs::Span span(tracer_, id_, "page.fault.read", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_faults != nullptr) {
      mh_.page_faults->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.page_fault_ns);
  protocol_->OnReadFault(lk, page);
}

void Node::WriteFaultLocked(std::unique_lock<std::mutex>& lk, PageId page) {
  ++page_faults_;
  obs::Span span(tracer_, id_, "page.fault.write", "mem", timing_, epoch_);
  span.SetArg("page", static_cast<uint64_t>(page));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.page_faults != nullptr) {
      mh_.page_faults->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.page_fault_ns);
  protocol_->OnWriteFault(lk, page);
}

// ---------------- Intervals ----------------

void Node::BeginIntervalLocked() {
  cur_interval_ = vc_.Tick(id_);
  cur_reads_.Clear();
  cur_writes_.Clear();
  TraceInstant("interval.open", "protocol", "interval", static_cast<uint64_t>(cur_interval_));
}

void Node::EndIntervalLocked(std::unique_lock<std::mutex>& lk) {
  // Protocol-specific closing action first: diff flushing (multi-writer, may
  // mine write notices into cur_writes_) or written-page downgrade
  // (single-writer family).
  protocol_->OnIntervalEnd(lk);

  IntervalRecord record;
  record.id = IntervalId{id_, cur_interval_};
  record.vc = vc_;
  record.epoch = epoch_;
  record.write_pages.assign(cur_writes_.begin(), cur_writes_.end());
  record.read_pages.assign(cur_reads_.begin(), cur_reads_.end());
  log_.Insert(record);
  if (opts_.race_detection && opts_.postmortem_trace) {
    system_->trace().AddRecord(record);
  }
  max_log_size_ = std::max(max_log_size_, log_.size());
  max_retained_pairs_ = std::max(max_retained_pairs_, bitmaps_.RetainedPairs());
  ++intervals_created_;
  TraceInstant("interval.close", "protocol", "interval", static_cast<uint64_t>(cur_interval_));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.intervals != nullptr) {
      mh_.intervals->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.interval_setup_ns);
  if (opts_.race_detection) {
    // The race-detection additions to the interval structure (read-notice
    // list wiring) are CVM-modification overhead.
    timing_.Charge(Bucket::kCvmMods, opts_.costs.notice_setup_ns);
  }
  cur_reads_.Clear();
  cur_writes_.Clear();

  // Post-publish action: ERC pushes the record to every node and blocks for
  // acks; the lazy protocols do nothing here.
  protocol_->OnIntervalPublished(lk, record);
}

void Node::ApplyIntervalRecordsLocked(const std::vector<IntervalRecord>& records) {
  for (const IntervalRecord& record : records) {
    if (log_.Contains(record.id)) {
      protocol_->OnDuplicateRecord(record);
      continue;
    }
    log_.Insert(record);
    if (record.id.node == id_) {
      continue;
    }
    protocol_->ApplyWriteNotices(record);
  }
}

void Node::GarbageCollectLocked() {
  log_.DiscardDominatedBy(vc_);
  protocol_->OnGarbageCollect(vc_);
  if (opts_.postmortem_trace) {
    return;  // The post-run trace dump needs every retained bitmap.
  }
  // Epoch-batched detection: epochs whose check lists are still queued at
  // the master have not been compared yet, so their word bitmaps must
  // survive until the batch flush (the flush's bitmap round reads them).
  const bool batching =
      opts_.race_detection && opts_.online_detection && opts_.detect_batch > 1;
  if (batching && !final_barrier_ && (epoch_ + 1) % opts_.detect_batch != 0) {
    return;
  }
  bitmaps_.DiscardThrough(cur_interval_);  // Epoch checked; trace data can go.
}

// ---------------- Locks ----------------

void Node::Lock(LockId lock) {
  CVM_CHECK_GE(lock, 0);
  CVM_CHECK_LT(lock, opts_.num_locks);
  std::unique_lock<std::mutex> lk(mu_);
  ThrowIfAbortedLocked();
  obs::Span span(tracer_, id_, "lock.acquire", "sync", timing_, epoch_);
  span.SetArg("lock", static_cast<uint64_t>(lock));
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.locks_acquired != nullptr) {
      mh_.locks_acquired->Increment();
    }
  }
  timing_.Charge(Bucket::kNone, opts_.costs.lock_op_ns);
  EndIntervalLocked(lk);
  lock_mgr_.Acquire(lk, lock);
  BeginIntervalLocked();
}

void Node::Unlock(LockId lock) {
  CVM_CHECK_GE(lock, 0);
  CVM_CHECK_LT(lock, opts_.num_locks);
  std::unique_lock<std::mutex> lk(mu_);
  ThrowIfAbortedLocked();
  TraceInstant("lock.release", "sync", "lock", static_cast<uint64_t>(lock));
  timing_.Charge(Bucket::kNone, opts_.costs.lock_op_ns);
  CVM_CHECK(lock_mgr_.Held(lock)) << "unlock of lock " << lock << " not held by node " << id_;
  EndIntervalLocked(lk);
  lock_mgr_.Release(lock);
  BeginIntervalLocked();
}

// ---------------- Barriers ----------------

void Node::MarkFinalBarrier() {
  std::lock_guard<std::mutex> guard(mu_);
  final_barrier_ = true;
}

void Node::Barrier() {
  std::unique_lock<std::mutex> lk(mu_);
  ThrowIfAbortedLocked();
  MaybeCrashAtBarrierLocked();
  obs::Span span(tracer_, id_, "barrier", "sync", timing_, epoch_);
  span.SetArg("epoch", static_cast<uint64_t>(epoch_));
  timing_.Charge(Bucket::kNone, opts_.costs.barrier_op_ns);
  EndIntervalLocked(lk);   // Epoch-body interval.
  BeginIntervalLocked();   // In-barrier interval (paper: barrier = release+acquire).
  EndIntervalLocked(lk);   // Published empty; keeps "2 intervals per barrier".
  const EpochId epoch = epoch_;

  barrier_.RunBarrier(lk, epoch);

  if (opts_.race_detection) {
    // Reset of the statically-allocated access bitmaps for the new epoch —
    // part of the paper's "CVM Mods" overhead, proportional to the shared
    // segment size.
    const double used_pages = static_cast<double>(
        (system_->segment().used_bytes() + opts_.page_size - 1) / opts_.page_size);
    timing_.Charge(Bucket::kCvmMods, opts_.costs.bitmap_clear_page_ns * used_pages);
  }
  ++epoch_;
  ++barriers_;
  if constexpr (obs::kObsCompiledIn) {
    if (mh_.barriers != nullptr) {
      mh_.barriers->Increment();
    }
    if (tracer_ != nullptr) {
      tracer_->Drain(id_);  // Barrier = natural quiescent point for the ring.
    }
  }
  BeginIntervalLocked();  // New epoch-body interval.
  CaptureCheckpointLocked();
}

// ---------------- Crash tolerance ----------------

void Node::MaybeCrashAtBarrierLocked() {
  const fault::FaultInjector* injector = system_->fault_injector();
  if (injector == nullptr || !injector->plan().crash_enabled() || crashed_) {
    return;
  }
  if (injector->crash_node() != id_ || epoch_ != injector->plan().crash_epoch) {
    return;
  }
  // Fail-stop: mark the NIC dead first so no frame sent after this instant
  // reaches a survivor, then unwind the app thread.
  crashed_ = true;
  TraceInstant("node.crash", "fault", "epoch", static_cast<uint64_t>(epoch_));
  system_->network().MarkNodeDead(id_);
  cv_.notify_all();
  throw RunAbortError{id_, epoch_, /*self_crash=*/true};
}

void Node::ThrowIfAbortedLocked() {
  if (aborted_) {
    throw RunAbortError{abort_dead_, abort_epoch_, /*self_crash=*/false};
  }
}

void Node::OnPeerUnreachableLocked(NodeId peer) {
  if (aborted_ || crashed_ || peer == id_) {
    return;
  }
  if constexpr (obs::kObsCompiledIn) {
    if (peer_suspected_counter_ != nullptr) {
      peer_suspected_counter_->Increment();
    }
  }
  TraceInstant("peer.suspect", "fault", "peer",
               static_cast<uint64_t>(peer >= 0 ? peer : 0));
  // An exhausted send means the message is permanently lost, so the epoch is
  // torn whether or not the peer is still breathing: abort unconditionally.
  InitiateAbortLocked(peer, epoch_);
}

void Node::InitiateAbortLocked(NodeId dead, EpochId epoch) {
  if (aborted_ || crashed_) {
    return;
  }
  aborted_ = true;
  abort_dead_ = dead;
  abort_epoch_ = epoch;
  TraceInstant("run.abort", "fault", "dead",
               static_cast<uint64_t>(dead >= 0 ? dead : 0));
  cv_.notify_all();
  // Wake every survivor; sends to the dead node surface unreachable again
  // and are swallowed above (aborted_ is already set).
  for (NodeId n = 0; n < static_cast<NodeId>(opts_.num_nodes); ++n) {
    if (n == id_ || n == dead) {
      continue;
    }
    Send(n, RunAbortMsg{epoch, dead});
  }
}

void Node::OnHeartbeatProbe(const Message& msg) {
  const auto& probe = std::get<HeartbeatProbeMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (crashed_) {
    return;
  }
  Send(msg.from, HeartbeatAckMsg{probe.epoch, probe.token});
}

void Node::OnHeartbeatAck(const Message&) {
  std::lock_guard<std::mutex> guard(mu_);
  ++heartbeat_acks_;  // The peer is alive: parked waiters re-check and keep waiting.
  cv_.notify_all();
}

void Node::OnPeerSuspect(const Message& msg) {
  const auto& suspect = std::get<PeerSuspectMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (crashed_ || aborted_) {
    return;
  }
  // A stuck peer asked "is someone dead?". Probing a live node is harmless
  // (it acks); probing a dead one surfaces kPeerUnreachable right here at
  // the sender, which initiates the abort.
  if (suspect.suspect != kNoNode && suspect.suspect != id_) {
    Send(suspect.suspect, HeartbeatProbeMsg{suspect.epoch, ++heartbeat_token_});
  } else {
    barrier_.ProbeMissingArrivalsLocked(suspect.epoch);
  }
}

void Node::OnRunAbort(const Message& msg) {
  const auto& abort = std::get<RunAbortMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(mu_);
  if (aborted_ || crashed_) {
    return;
  }
  aborted_ = true;
  abort_dead_ = abort.dead;
  abort_epoch_ = abort.epoch;
  TraceInstant("run.abort", "fault", "dead",
               static_cast<uint64_t>(abort.dead >= 0 ? abort.dead : 0));
  cv_.notify_all();
}

void Node::CaptureCheckpointLocked() {
  if (!system_->crash_armed()) {
    return;  // Healthy runs pay nothing for crash tolerance.
  }
  EpochCheckpoint cp;
  cp.epoch = epoch_;
  cp.vc = vc_;
  cp.cur_interval = cur_interval_;
  cp.log = log_.All();
  bitmaps_.ForEachPair(id_, [&cp](const IntervalId& interval, PageId page,
                                  const PageAccessBitmaps& pair) {
    CheckpointBitmapPair entry;
    entry.interval = interval.index;
    entry.page = page;
    entry.read = BitmapCodec::Encode(pair.read);
    entry.write = BitmapCodec::Encode(pair.write);
    cp.encoded_bitmap_bytes += entry.read.WireBytes() + entry.write.WireBytes();
    cp.bitmaps.push_back(std::move(entry));
  });
  cp.locks = lock_mgr_.SnapshotState();
  if (id_ == 0) {
    cp.reports_published = system_->ReportCount();
  }
  checkpoint_ = std::move(cp);
}

size_t Node::RollbackToCheckpointLocked() {
  if (!checkpoint_.has_value()) {
    return 0;
  }
  const EpochCheckpoint& cp = *checkpoint_;
  epoch_ = cp.epoch;
  vc_ = cp.vc;
  cur_interval_ = cp.cur_interval;
  log_.Clear();
  for (const IntervalRecord& record : cp.log) {
    log_.Insert(record);
  }
  bitmaps_.Clear();
  for (const CheckpointBitmapPair& entry : cp.bitmaps) {
    PageAccessBitmaps pair;
    pair.read = BitmapCodec::Decode(entry.read);
    pair.write = BitmapCodec::Decode(entry.write);
    bitmaps_.RestorePair(entry.interval, entry.page, pair);
  }
  cur_reads_.Clear();
  cur_writes_.Clear();
  const size_t recovered = lock_mgr_.RestoreState(cp.locks);
  if (id_ == 0) {
    // Reports published during the torn epoch are retracted: survivors must
    // observe exactly the prefix the last consistent cut vouches for.
    system_->TruncateReports(cp.reports_published);
  }
  return recovered;
}

void Node::RecoverAfterAbort(const RunAbortError& err) {
  std::lock_guard<std::mutex> guard(mu_);
  if (!aborted_) {
    aborted_ = true;
    abort_dead_ = err.dead;
    abort_epoch_ = err.epoch;
  }
  const size_t recovered = RollbackToCheckpointLocked();
  if constexpr (obs::kObsCompiledIn) {
    if (locks_recovered_counter_ != nullptr && recovered > 0) {
      locks_recovered_counter_->Add(recovered);
    }
  }
  TraceInstant("epoch.rollback", "fault", "epoch",
               checkpoint_.has_value() ? static_cast<uint64_t>(checkpoint_->epoch) : 0);
  system_->NoteCrash(err, checkpoint_.has_value() ? checkpoint_->epoch : 0, recovered,
                     checkpoint_.has_value() ? checkpoint_->encoded_bitmap_bytes : 0);
}

void Node::DumpTraceBitmaps(PostMortemTrace& trace) const {
  std::lock_guard<std::mutex> guard(mu_);
  bitmaps_.ForEachPair(id_, [&trace](const IntervalId& interval, PageId page,
                                     const PageAccessBitmaps& pair) {
    trace.AddBitmaps(interval, page, pair);
  });
}

}  // namespace cvm
