// Typed application-facing views of shared and instrumented-private memory.
//
//   SharedArray<T> / SharedVar<T>  — word-sized elements in the DSM's shared
//     segment; every access goes through the node's instrumented accessors
//     (the ATOM-inserted analysis calls).
//   LocalArray<T> — per-node private storage whose accesses still pay the
//     instrumentation cost: they model the loads/stores ATOM could not prove
//     private at rewrite time, which at run time turn out to miss the shared
//     segment (the dominant case, §5.1).
#ifndef CVM_DSM_HANDLES_H_
#define CVM_DSM_HANDLES_H_

#include <string>
#include <type_traits>
#include <vector>

#include "src/common/check.h"
#include "src/dsm/dsm.h"
#include "src/dsm/node.h"

namespace cvm {

template <typename T>
concept WordSized = sizeof(T) == kWordSize && std::is_trivially_copyable_v<T>;

template <WordSized T>
class SharedArray {
 public:
  SharedArray() = default;
  SharedArray(GlobalAddr base, size_t count) : base_(base), count_(count) {}

  // Allocates a named array in the system's shared segment; page-aligned by
  // default (pass page_align=false to pack arrays and study false sharing).
  static SharedArray Alloc(DsmSystem& system, const std::string& name, size_t count,
                           bool page_align = true) {
    return SharedArray(system.Alloc(name, count * kWordSize, page_align), count);
  }

  size_t size() const { return count_; }
  GlobalAddr addr(size_t index) const {
    CVM_CHECK_LT(index, count_);
    return base_ + index * kWordSize;
  }

  T Get(NodeContext& ctx, size_t index) const { return ctx.Read<T>(addr(index)); }
  void Set(NodeContext& ctx, size_t index, T value) const { ctx.Write<T>(addr(index), value); }

 private:
  GlobalAddr base_ = kNullAddr;
  size_t count_ = 0;
};

template <WordSized T>
class SharedVar {
 public:
  SharedVar() = default;
  explicit SharedVar(GlobalAddr addr) : addr_(addr) {}

  static SharedVar Alloc(DsmSystem& system, const std::string& name) {
    // Scalars are word-aligned but not page-padded: distinct scalars share
    // pages, exactly the layout that makes false sharing (and the bitmap
    // comparison that filters it) interesting.
    return SharedVar(system.Alloc(name, kWordSize, /*page_align=*/false));
  }

  GlobalAddr addr() const { return addr_; }
  T Get(NodeContext& ctx) const { return ctx.Read<T>(addr_); }
  void Set(NodeContext& ctx, T value) const { ctx.Write<T>(addr_, value); }

 private:
  GlobalAddr addr_ = kNullAddr;
};

template <WordSized T>
class LocalArray {
 public:
  LocalArray(NodeContext& ctx, size_t count, T init = T{})
      : ctx_(&ctx), va_(ctx.AllocPrivateVa(count * kWordSize)), data_(count, init) {}

  size_t size() const { return data_.size(); }

  T Get(size_t index) const {
    CVM_CHECK_LT(index, data_.size());
    ctx_->PrivateAccess(va_ + index * kWordSize, /*is_write=*/false);
    return data_[index];
  }
  void Set(size_t index, T value) {
    CVM_CHECK_LT(index, data_.size());
    ctx_->PrivateAccess(va_ + index * kWordSize, /*is_write=*/true);
    data_[index] = value;
  }

  // Uninstrumented raw view, for verification code that must not perturb
  // the instrumentation counters.
  const std::vector<T>& raw() const { return data_; }

 private:
  NodeContext* ctx_;
  uint64_t va_;
  std::vector<T> data_;
};

}  // namespace cvm

#endif  // CVM_DSM_HANDLES_H_
