// Distributed lock engine, extracted from the node monolith: token-based
// locks with a per-lock manager (lock % num_nodes) that forwards requests
// along the last-requester chain, happens-before-1 interval shipping on
// grants, and the §6.1 record/replay grant ordering. One LockManager per
// node; every method runs under the node's mutex (handlers take it
// themselves, app-side entry points are called with it held).
#ifndef CVM_DSM_LOCK_MANAGER_H_
#define CVM_DSM_LOCK_MANAGER_H_

#include <mutex>
#include <optional>
#include <vector>

#include "src/common/types.h"
#include "src/net/dispatch.h"
#include "src/net/message.h"
#include "src/vc/vector_clock.h"

namespace cvm {

class Node;

class LockManager {
 public:
  explicit LockManager(Node& node);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Registers the lock request/grant handlers (service thread).
  void RegisterHandlers(MessageDispatcher& dispatcher);

  // Blocking acquire, called by the app thread with the node mutex held and
  // the pre-acquire interval already closed. On return the lock is held and
  // the grant's interval records have been applied.
  void Acquire(std::unique_lock<std::mutex>& lk, LockId lock);

  // Release bookkeeping: snapshots the release vector clock/time (the grant
  // source for the next acquirer) and hands the token on if requests are
  // queued. Caller has already closed the releasing interval.
  void Release(LockId lock);

  bool Held(LockId lock) const { return locks_[lock].held; }

  struct Snapshot;

  // Epoch-checkpoint support (docs/FAULTS.md "Crash faults & recovery"):
  // lock ownership is part of the consistent cut. SnapshotState copies every
  // lock's token/queue/release state; RestoreState rolls back to it after a
  // crash, dropping transient acquire slots, and returns how many locks had
  // diverged from the checkpoint (in-flight tokens, queued requests from the
  // torn epoch) — the "recovered" count surfaced as dsm.lock.recovered.
  Snapshot SnapshotState() const;
  size_t RestoreState(const Snapshot& snapshot);

 private:
  struct LockState {
    bool token = false;  // This node holds the lock token.
    bool held = false;   // The app currently holds the lock.
    std::vector<LockRequestMsg> pending;  // Forwarded, ungranted requests.
    // Replay routing: the node this one last granted the token to. Requests
    // follow successor links to the current holder in replay mode.
    NodeId successor = kNoNode;
    // Snapshot taken at the most recent release. A grant must carry only
    // intervals that precede the RELEASE — happens-before-1 orders the
    // acquirer after the release, not after whatever the releaser did next.
    // Granting from live state would falsely order post-release intervals
    // and mask races (e.g. an unlocked write right after an unlock).
    VectorClock release_vc;
    double release_time_ns = 0;
  };

  void Grant(LockId lock, NodeId requester, const VectorClock& requester_vc);
  void TryGrantPending(LockId lock);
  void HandleForwardedRequest(const LockRequestMsg& request);
  void OnLockRequest(const Message& msg);
  void OnLockGrant(const Message& msg);

  NodeId ManagerOf(LockId lock) const;

  Node& node_;
  std::vector<LockState> locks_;
  std::vector<NodeId> manager_last_requester_;  // Valid where this node manages.

  // Reply slot for the single outstanding acquire (the app thread is the
  // only requester). The grant handler tolerates grants matching no
  // outstanding acquire — stale re-deliveries.
  std::optional<LockGrantMsg> lock_grant_;
  bool lock_granted_self_ = false;  // Token granted locally (no payload).
  LockId waiting_lock_ = -1;
};

struct LockManager::Snapshot {
  std::vector<LockState> locks;
  std::vector<NodeId> manager_last_requester;
};

}  // namespace cvm

#endif  // CVM_DSM_LOCK_MANAGER_H_
