#include "src/dsm/dsm.h"

#include <algorithm>
#include <chrono>

#include "src/common/check.h"

namespace cvm {

DsmSystem::DsmSystem(DsmOptions options) : options_(std::move(options)) {
  CVM_CHECK_GT(options_.num_nodes, 0);
  CVM_CHECK_GT(options_.num_locks, 0);
  if (options_.write_detection == WriteDetection::kDiffs) {
    CVM_CHECK(ProtocolSupportsDiffWriteDetection(options_.protocol))
        << "diff-based write detection requires the multi-writer protocol (§6.5)";
  }
  segment_ = std::make_unique<SharedSegment>(options_.page_size, options_.max_shared_bytes);
  network_ = std::make_unique<Network>(options_.num_nodes);
  detector_ =
      std::make_unique<RaceDetector>(segment_->num_pages(), options_.overlap_method);
  if constexpr (obs::kObsCompiledIn) {
    if (options_.trace.trace_enabled) {
      tracer_ = std::make_unique<obs::Tracer>(options_.num_nodes, options_.trace);
    }
    if (options_.trace.metrics_enabled) {
      metrics_ = std::make_unique<obs::MetricsRegistry>();
    }
    if (options_.trace.enabled()) {
      network_->AttachObservability(tracer_.get(), metrics_.get());
    }
  }
  ApplyFaultPlan(options_.fault_plan);
}

void DsmSystem::ApplyFaultPlan(const fault::FaultPlan& plan_in) {
  if (!plan_in.enabled()) {
    injector_.reset();
    network_->AttachFaultInjector(nullptr);
    return;
  }
  fault::FaultPlan plan = plan_in;
  // Derive unset transport timings from the cost model so retransmission
  // timeouts scale with the modeled network.
  if (plan.rto_base_ns <= 0) {
    plan.rto_base_ns = 2 * options_.costs.MessageCost(kMessageHeaderBytes + 256);
  }
  if (plan.rto_cap_ns <= 0) {
    plan.rto_cap_ns = 32 * plan.rto_base_ns;
  }
  if (plan.delay_hop_ns <= 0) {
    plan.delay_hop_ns = options_.costs.msg_latency_ns;
  }
  injector_ = std::make_unique<fault::FaultInjector>(plan, options_.num_nodes);
  network_->AttachFaultInjector(injector_.get());
}

void DsmSystem::SetFaultPlan(const fault::FaultPlan& plan) {
  CVM_CHECK(!ran_) << "SetFaultPlan is only legal before Run() (Reset() first)";
  options_.fault_plan = plan;
  ApplyFaultPlan(plan);
}

void DsmSystem::Reset() {
  // Run() has joined every app and service thread by the time it returns, so
  // nothing is touching the engines here.
  for (auto& node : nodes_) {
    if (node != nullptr) {
      node->JoinService();
    }
  }
  nodes_.clear();
  network_->Reset();
  detector_->ResetStats();
  trace_.Clear();
  if constexpr (obs::kObsCompiledIn) {
    if (tracer_ != nullptr) {
      tracer_->Reset();
    }
    if (metrics_ != nullptr) {
      metrics_->Reset();
    }
  }
  segment_->Reset();
  {
    std::lock_guard<std::mutex> guard(results_mu_);
    reports_.clear();
    watch_hits_.clear();
    recorded_schedule_ = SyncSchedule{};
    crash_outcome_ = CrashOutcome{};
  }
  ran_ = false;
}

DsmSystem::~DsmSystem() {
  network_->Close();
  for (auto& node : nodes_) {
    if (node != nullptr) {
      node->JoinService();
    }
  }
}

GlobalAddr DsmSystem::Alloc(const std::string& name, uint64_t bytes, bool page_align) {
  CVM_CHECK(!ran_) << "allocate shared data before Run()";
  return segment_->Alloc(name, bytes, page_align);
}

Node& DsmSystem::node(NodeId id) {
  CVM_CHECK_GE(id, 0);
  CVM_CHECK_LT(id, static_cast<NodeId>(nodes_.size()));
  return *nodes_[id];
}

void DsmSystem::AddReports(std::vector<RaceReport> reports) {
  std::lock_guard<std::mutex> guard(results_mu_);
  for (RaceReport& report : reports) {
    reports_.push_back(std::move(report));
  }
}

void DsmSystem::AddWatchHit(WatchHit hit) {
  std::lock_guard<std::mutex> guard(results_mu_);
  watch_hits_.push_back(std::move(hit));
}

size_t DsmSystem::ReportCount() {
  std::lock_guard<std::mutex> guard(results_mu_);
  return reports_.size();
}

void DsmSystem::TruncateReports(size_t count) {
  std::lock_guard<std::mutex> guard(results_mu_);
  if (reports_.size() > count) {
    reports_.resize(count);
  }
}

void DsmSystem::NoteCrash(const RunAbortError& err, EpochId checkpoint_epoch,
                          size_t locks_recovered, uint64_t checkpoint_bytes) {
  std::lock_guard<std::mutex> guard(results_mu_);
  crash_outcome_.crashed = true;
  // The crashing node reports its own death authoritatively; survivors only
  // fill the slot in if the self-report has not landed yet.
  if (err.self_crash || crash_outcome_.crash_node == kNoNode) {
    crash_outcome_.crash_node = err.dead;
    crash_outcome_.crash_epoch = err.epoch;
  }
  // checkpoint_epoch is the epoch the restored cut begins; everything before
  // it has been fully race-checked. All nodes report the same value (no
  // barrier can complete once a member is dead) — min() is defensive.
  const EpochId consistent = checkpoint_epoch - 1;
  if (crash_outcome_.rollbacks == 0 || consistent < crash_outcome_.last_consistent_epoch) {
    crash_outcome_.last_consistent_epoch = consistent;
  }
  ++crash_outcome_.rollbacks;
  crash_outcome_.locks_recovered += locks_recovered;
  crash_outcome_.checkpoint_bytes = std::max(crash_outcome_.checkpoint_bytes, checkpoint_bytes);
}

RunResult DsmSystem::Run(const std::function<void(NodeContext&)>& app) {
  CVM_CHECK(!ran_) << "one Run() per Reset() cycle; call Reset() (or construct fresh) first";
  ran_ = true;

  const auto wall_start = std::chrono::steady_clock::now();

  nodes_.reserve(options_.num_nodes);
  for (NodeId id = 0; id < options_.num_nodes; ++id) {
    nodes_.push_back(std::make_unique<Node>(id, this));
  }
  for (auto& node : nodes_) {
    node->StartService();
  }

  std::vector<std::thread> app_threads;
  app_threads.reserve(options_.num_nodes);
  for (NodeId id = 0; id < options_.num_nodes; ++id) {
    app_threads.emplace_back([this, id, &app] {
      Node& node = *nodes_[id];
      try {
        app(node);
        // Implicit final barrier: the last epoch's accesses get race-checked
        // (the system only discards trace data after checking it). Marked
        // final so a mid-batch detection queue flushes here.
        node.MarkFinalBarrier();
        node.Barrier();
      } catch (const RunAbortError& err) {
        // A node died this run (this one, if err.self_crash). Discard the
        // torn epoch and restore the last consistent cut; whether the
        // workload is retried is the service layer's call, not ours.
        node.RecoverAfterAbort(err);
      }
    });
  }
  for (std::thread& t : app_threads) {
    t.join();
  }

  network_->Close();
  for (auto& node : nodes_) {
    node->JoinService();
  }
  if constexpr (obs::kObsCompiledIn) {
    if (tracer_ != nullptr) {
      tracer_->DrainAll();  // Events emitted after the last barrier.
    }
  }
  if (options_.race_detection && options_.postmortem_trace) {
    for (const auto& node : nodes_) {
      node->DumpTraceBitmaps(trace_);
    }
  }

  RunResult result;
  {
    std::lock_guard<std::mutex> guard(results_mu_);
    // Deduplicate identical (kind, word, pair) reports; the same race can be
    // observed from several overlapping check-list entries.
    for (const RaceReport& report : reports_) {
      bool duplicate = false;
      for (const RaceReport& kept : result.races) {
        if (kept.SameRace(report)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        result.races.push_back(report);
      }
    }
    if (options_.first_races_only) {
      result.races = FilterFirstRaces(result.races);
    }
    result.watch_hits = watch_hits_;
    result.recorded_schedule = recorded_schedule_;
    result.recovery = crash_outcome_;
  }

  result.net = network_->stats();
  result.fault = network_->fault_stats();
  result.detector = detector_->stats();
  result.shared_bytes_used = segment_->used_bytes();
  for (const auto& node : nodes_) {
    result.access.Accumulate(node->access_counters());
    result.dispatch_unhandled += node->dispatcher().unhandled();
    const InternStats& intern = node->barrier_coordinator().intern_stats();
    result.intern.hits += intern.hits;
    result.intern.misses += intern.misses;
    result.intern.invalidations += intern.invalidations;
    result.intervals_total += node->intervals_created();
    result.page_faults += node->page_faults();
    result.bitmap_pairs_recorded += node->bitmap_pairs_recorded();
    result.max_interval_log_size =
        std::max(result.max_interval_log_size, node->max_interval_log_size());
    result.max_retained_bitmap_pairs =
        std::max(result.max_retained_bitmap_pairs, node->max_retained_bitmap_pairs());
    result.sim_time_ns = std::max(result.sim_time_ns, node->timing().now_ns());
    for (int b = 0; b < kNumBuckets; ++b) {
      result.overhead_ns[b] += node->timing().overhead_ns(static_cast<Bucket>(b));
    }
  }
  result.barriers = nodes_.empty() ? 0 : nodes_[0]->barriers();
  if (!nodes_.empty()) {
    result.pipeline = nodes_[0]->pipeline_stats();  // The master runs the pipeline.
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

RunResult RunDsmApp(const DsmOptions& options, const std::function<void(DsmSystem&)>& setup,
                    const std::function<void(NodeContext&)>& app) {
  DsmSystem system(options);
  if (setup) {
    setup(system);
  }
  return system.Run(app);
}

}  // namespace cvm
