// One DSM node: a simulated processor with a private view of the shared
// segment. Each node runs two OS threads — the application thread executing
// user code against the public API below, and a service thread draining the
// node's network inbox (page serving, lock forwarding/granting, barrier
// bookkeeping), standing in for CVM's interrupt-driven message handlers.
//
// All node state is guarded by mu_; blocking operations park the app thread
// on cv_ while the service thread fills the corresponding reply slot.
// Service handlers never block on the network, which makes the node graph
// deadlock-free by construction.
#ifndef CVM_DSM_NODE_H_
#define CVM_DSM_NODE_H_

#include <array>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "src/common/types.h"
#include "src/dsm/options.h"
#include "src/instr/access_filter.h"
#include "src/mem/diff.h"
#include "src/mem/page_table.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/protocol/interval.h"
#include "src/sim/cost_model.h"
#include "src/vc/vector_clock.h"

namespace cvm {

class DsmSystem;

// Detection-pipeline accounting for one run, collected on the barrier master
// (node 0): how the check was sharded/distributed and what the compressed
// bitmap wire format saved. The ablation bench reports these side by side
// for serial vs sharded vs distributed.
struct PipelineStats {
  uint64_t shards_used = 0;            // Workers used by the check-list build.
  uint64_t detect_epochs = 0;          // Epochs with a non-empty check list.
  double detect_ns = 0;                // Master sim time inside the barrier check.
  uint64_t bitmap_bytes_raw = 0;       // Bitmap-round payloads at legacy raw size.
  uint64_t bitmap_bytes_wire = 0;      // Actual (possibly compressed) bytes.
  double overlap_saved_ns = 0;         // Sim ns saved by overlapping round+compare.
  uint64_t remote_pairs_compared = 0;  // Bitmap pairs compared off-master.
  uint64_t remote_reports = 0;         // Race reports shipped back by peers.
};

class Node {
 public:
  Node(NodeId id, DsmSystem* system);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ---------------- Application API ----------------

  NodeId id() const { return id_; }
  int num_nodes() const;

  // Instrumented shared accesses at word granularity. Addresses are offsets
  // into the global shared segment.
  uint32_t ReadWord(GlobalAddr addr);
  void WriteWord(GlobalAddr addr, uint32_t value);

  template <typename T>
  T Read(GlobalAddr addr) {
    static_assert(sizeof(T) == kWordSize);
    return std::bit_cast<T>(ReadWord(addr));
  }
  template <typename T>
  void Write(GlobalAddr addr, T value) {
    static_assert(sizeof(T) == kWordSize);
    WriteWord(addr, std::bit_cast<uint32_t>(value));
  }

  // System-visible synchronization (the only kind the detector understands —
  // roll-your-own synchronization over shared memory yields spurious races,
  // exactly as §2 warns).
  void Lock(LockId lock);
  void Unlock(LockId lock);
  void Barrier();

  // §6.3: global consolidation of consistency data for barrier-free phases.
  // Runs the race check and garbage-collects interval logs; semantically a
  // collective operation like a barrier.
  void Consolidate() { Barrier(); }

  // Models `units` of uninstrumented computation (advances simulated time).
  void Compute(uint64_t units);

  // An instrumented access that ATOM could not prove private but that turns
  // out, at run time, to miss the shared segment (§5.1: the majority of
  // runtime calls to the analysis routine are for private data).
  void PrivateAccess(uint64_t va, bool is_write);

  // Simulated-VA allocator for private (LocalArray) data.
  uint64_t AllocPrivateVa(uint64_t bytes);

  // Tags subsequent accesses with a source site, consumed by the §6.1
  // watchpoint machinery during replay runs.
  void SetSite(const char* site) { site_ = site; }

  // ---------------- Lifecycle (DsmSystem only) ----------------

  void StartService();
  void JoinService();

  // ---------------- Post-run metric snapshots ----------------

  // Post-mortem support: dumps every retained bitmap pair into the trace.
  void DumpTraceBitmaps(class PostMortemTrace& trace) const;

  const AccessCounters& access_counters() const { return filter_.counters(); }
  const NodeTiming& timing() const { return timing_; }
  uint64_t intervals_created() const { return intervals_created_; }
  uint64_t barriers() const { return barriers_; }
  uint64_t page_faults() const { return page_faults_; }
  uint64_t bitmap_pairs_recorded() const { return bitmaps_.TotalPairsRecorded(); }
  // High-water marks of retained consistency data — the paper's storage
  // story (§6.3 consolidation, §6.4: discard only after checking).
  size_t max_interval_log_size() const { return max_log_size_; }
  size_t max_retained_bitmap_pairs() const { return max_retained_pairs_; }
  // Meaningful on node 0 only (the barrier master runs the pipeline).
  const PipelineStats& pipeline_stats() const { return pipeline_stats_; }

 private:
  friend class DsmSystem;

  // ---- Service thread ----
  void ServiceLoop();
  void OnPageRequest(const Message& msg);
  void OnPageReply(const Message& msg);
  void OnDiffFlush(const Message& msg);
  void OnDiffFlushAck(const Message& msg);
  void OnLockRequest(const Message& msg);
  void OnLockGrant(const Message& msg);
  void OnBarrierArrive(const Message& msg);
  void OnBitmapRequest(const Message& msg);
  void OnBitmapReply(const Message& msg);
  void OnCompareRequest(const Message& msg);
  void OnBitmapShip(const Message& msg);
  void OnCompareReply(const Message& msg);
  void OnBarrierRelease(const Message& msg);
  void OnErcUpdate(const Message& msg);
  void OnErcAck(const Message& msg);

  // True for protocols using single-writer data movement (LRC-lazy or ERC).
  bool SingleWriterData() const {
    return opts_.protocol != ProtocolKind::kMultiWriterHomeLrc;
  }

  // ---- Shared-access internals (mu_ held) ----
  void InstrumentAccess(std::unique_lock<std::mutex>& lk, uint64_t va, bool is_write);
  void ReadFaultLocked(std::unique_lock<std::mutex>& lk, PageId page);
  void WriteFaultLocked(std::unique_lock<std::mutex>& lk, PageId page);
  void FetchPageLocked(std::unique_lock<std::mutex>& lk, PageId page, bool want_write);
  void HandleForwardedPageRequestLocked(const PageRequestMsg& request);
  void ServePageLocked(const PageRequestMsg& request);
  void DrainPendingServesLocked(PageId page);
  void MaterializeHomeLocked(PageId page);
  void RecordWriteNoticeLocked(PageId page);

  // ---- Interval machinery (mu_ held) ----
  void EndIntervalLocked(std::unique_lock<std::mutex>& lk);
  void BeginIntervalLocked();
  void FlushDiffsLocked(std::unique_lock<std::mutex>& lk);
  void ApplyIntervalRecordsLocked(const std::vector<IntervalRecord>& records);
  void GarbageCollectLocked();

  // ---- Locks (mu_ held) ----
  void HandleForwardedLockRequestLocked(const LockRequestMsg& req);
  void TryGrantPendingLocked(LockId lock);
  void GrantLocked(LockId lock, NodeId requester, const VectorClock& requester_vc);
  bool ReplayAllowsLocked(LockId lock, NodeId grantee) const;

  // ---- Barrier master (app thread, mu_ held via lk) ----
  void MasterRunBarrierLocked(std::unique_lock<std::mutex>& lk, EpochId epoch);
  void RunRaceDetectionLocked(std::unique_lock<std::mutex>& lk, EpochId epoch,
                              const std::vector<IntervalRecord>& epoch_intervals);
  // kDistributed step 5: partition the check pairs over their member nodes,
  // orchestrate the ship/compare/reply round, merge remote reports back into
  // serial order. Returns the merged, ordered reports.
  std::vector<RaceReport> RunDistributedCompareLocked(std::unique_lock<std::mutex>& lk,
                                                      EpochId epoch,
                                                      const std::vector<CheckPair>& pairs,
                                                      size_t checklist_entries);
  // Emits reports (addr/symbol resolution + trace) and hands them to the
  // system. Shared tail of all three pipeline modes.
  void PublishReportsLocked(std::vector<RaceReport> reports);
  // Worker count for the sharded check-list build (>= 1).
  int DetectShardCount() const;
  // Constituent side of the distributed compare: runs once this node has the
  // master's CompareRequest AND all expected inbound ships for `epoch`.
  void TryFinishRemoteCompareLocked(EpochId epoch);

  // ---- Cost helpers (mu_ held) ----
  void ChargeMessageLocked(size_t bytes, size_t read_notice_bytes);
  void ChargeInstrumentationLocked();

  // ---- Observability (mu_ held; no-ops when obs is off) ----
  void InitObservability();
  // Emits a wall+sim instant event on this node's track.
  void TraceInstant(const char* name, const char* cat, const char* arg_name = nullptr,
                    uint64_t arg_value = 0);
  // Adds the per-bucket overhead accumulated since the last publish to the
  // shared metric counters (called at barriers, before the epoch snapshot).
  void PublishOverheadLocked();

  NodeId HomeOf(PageId page) const;
  NodeId ManagerOf(LockId lock) const;
  void Send(NodeId to, Payload payload);

  // ---------------- State ----------------

  DsmSystem* const system_;
  const NodeId id_;
  const DsmOptions& opts_;

  std::thread service_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  // Memory.
  PageTable pages_;
  std::vector<bool> am_owner_;          // Single-writer ownership.
  // Single-writer manager state (meaningful on each page's home): the
  // authoritative current owner. The home serializes every transfer, so
  // requests take at most two hops (home, owner) — no ownership chasing.
  std::vector<NodeId> home_owner_;
  // Forwarded requests for pages whose ownership is still in flight to this
  // node; served once the ownership-granting reply is installed.
  std::map<PageId, std::vector<PageRequestMsg>> pending_serves_;
  std::vector<bool> home_materialized_; // Home frames lazily initialized.
  std::set<PageId> twinned_;            // Pages twinned this interval (multi-writer).

  // Consistency metadata.
  VectorClock vc_;
  IntervalIndex cur_interval_ = 0;
  EpochId epoch_ = 0;
  IntervalLog log_;
  BitmapStore bitmaps_;
  std::set<PageId> cur_reads_;
  std::set<PageId> cur_writes_;

  // Observability (pointers are null when tracing/metrics are disabled; the
  // whole block is dead code under -DCVM_OBS=OFF).
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct MetricHandles {
    obs::Counter* page_faults = nullptr;
    obs::Counter* page_fetches = nullptr;
    obs::Counter* locks_acquired = nullptr;
    obs::Counter* barriers = nullptr;
    obs::Counter* intervals = nullptr;
    obs::Counter* check_pairs = nullptr;
    obs::Counter* checklist_entries = nullptr;
    obs::Counter* bitmap_pairs_compared = nullptr;
    obs::Counter* races_reported = nullptr;
    // Detection-pipeline instrumentation (tentpole metrics).
    obs::Counter* shard_count = nullptr;
    obs::Counter* bitmap_bytes_raw = nullptr;
    obs::Counter* bitmap_bytes_wire = nullptr;
    obs::Counter* bitmap_bytes_saved = nullptr;
    obs::Counter* overlap_saved_ns = nullptr;
    obs::Counter* remote_pairs = nullptr;
    obs::Counter* remote_reports = nullptr;
    std::array<obs::Counter*, kNumBuckets> overhead = {};
  };
  MetricHandles mh_;
  DiffObs diff_obs_;
  std::array<double, kNumBuckets> overhead_published_ = {};

  // Instrumentation and timing.
  AccessFilter filter_;
  NodeTiming timing_;
  const char* site_ = "?";
  uint64_t private_va_next_ = kPrivateHeapBase;
  uint64_t intervals_created_ = 0;
  uint64_t barriers_ = 0;
  uint64_t page_faults_ = 0;
  size_t max_log_size_ = 0;
  size_t max_retained_pairs_ = 0;

  // Reply slots (single outstanding request per kind; the app thread is the
  // only requester). Handlers tolerate replies that match no outstanding
  // request — the reliable transport already suppresses duplicates, but the
  // node-level protocol stays safe even if a stale reply ever got through.
  std::optional<PageReplyMsg> page_reply_;
  PageId page_fetch_pending_ = -1;  // Page of the in-flight fetch, or -1.
  std::optional<LockGrantMsg> lock_grant_;
  bool lock_granted_self_ = false;  // Token granted locally (no payload).
  LockId waiting_lock_ = -1;
  std::optional<BarrierReleaseMsg> barrier_release_;
  // Ack matching by token: an ack is consumed at most once, so re-delivered
  // acks cannot release a wait early.
  std::set<uint64_t> flush_tokens_outstanding_;
  std::set<uint64_t> erc_tokens_outstanding_;
  uint64_t flush_token_next_ = 1;
  // Records whose write notices were applied ONLY eagerly (ERC push). An
  // eager invalidation can race with an in-flight page fetch — the install
  // revalidates the copy after the invalidation landed — so the notice must
  // be re-applied at the next acquire that covers the record.
  std::set<IntervalId> erc_eager_only_;

  // Lock state.
  struct LockState {
    bool token = false;  // This node holds the lock token.
    bool held = false;   // The app currently holds the lock.
    std::vector<LockRequestMsg> pending;  // Forwarded, ungranted requests.
    // Replay routing: the node this one last granted the token to. Requests
    // follow successor links to the current holder in replay mode.
    NodeId successor = kNoNode;
    // Snapshot taken at the most recent release. A grant must carry only
    // intervals that precede the RELEASE — happens-before-1 orders the
    // acquirer after the release, not after whatever the releaser did next.
    // Granting from live state would falsely order post-release intervals
    // and mask races (e.g. an unlocked write right after an unlock).
    VectorClock release_vc;
    double release_time_ns = 0;
  };
  std::vector<LockState> locks_;
  std::vector<NodeId> manager_last_requester_;  // Valid where this node manages.

  // Barrier master state.
  struct ArrivalInfo {
    std::vector<IntervalRecord> records;
    VectorClock vc;
    double time_ns = 0;
    size_t wire_bytes = 0;
    size_t read_notice_bytes = 0;
  };
  std::map<EpochId, std::map<NodeId, ArrivalInfo>> arrivals_;

  // Master-side bitmap collection for the current detection round.
  std::map<std::pair<IntervalId, PageId>, PageAccessBitmaps> collected_bitmaps_;
  int bitmap_replies_pending_ = 0;
  uint64_t bitmap_round_bytes_ = 0;
  // What the round's messages would have cost at the legacy raw encoding
  // (identical to bitmap_round_bytes_ when compression is off).
  uint64_t bitmap_round_raw_bytes_ = 0;

  // Master-side state for the distributed compare round (kDistributed).
  struct CompareReplyInfo {
    CompareReplyMsg msg;
    size_t wire_bytes = 0;
  };
  std::vector<CompareReplyInfo> compare_replies_;
  int compare_replies_pending_ = 0;
  int master_ships_pending_ = 0;          // BitmapShipMsg rounds inbound to master.
  double master_ship_target_ns_ = 0;      // Latest modeled ship-arrival time.
  uint64_t master_ship_bytes_wire_ = 0;
  uint64_t master_ship_bytes_raw_ = 0;

  // Constituent-node state for the distributed compare, keyed by epoch:
  // ships can arrive before the master's CompareRequest (sources race each
  // other), so both handlers funnel into TryFinishRemoteCompareLocked.
  struct RemoteCompareState {
    bool have_request = false;
    CompareRequestMsg request;
    uint32_t ships_received = 0;
    std::map<std::pair<IntervalId, PageId>, PageAccessBitmaps> shipped;
    uint64_t ship_bytes_wire = 0;  // Entry bytes this node shipped out.
    uint64_t ship_bytes_raw = 0;
  };
  std::map<EpochId, RemoteCompareState> remote_compare_;

  PipelineStats pipeline_stats_;  // Node 0 only.
};

// The application-facing name for a node handle.
using NodeContext = Node;

}  // namespace cvm

#endif  // CVM_DSM_NODE_H_
