// One DSM node: a simulated processor with a private view of the shared
// segment. Each node runs two OS threads — the application thread executing
// user code against the public API below, and a service thread draining the
// node's network inbox, standing in for CVM's interrupt-driven message
// handlers.
//
// The node itself is a thin core: shared-access instrumentation, interval
// bookkeeping, and the simulated clock. Everything protocol-, lock-, or
// barrier-specific lives in its own engine, wired together here:
//
//   CoherenceProtocol (src/protocol/)  — fault handling, diff/ownership
//     traffic, write-notice application. The node reaches it through the
//     strategy interface only; the protocol reaches back through
//     ProtocolHost, the narrow slice of node state it may touch.
//   MessageDispatcher (src/net/)       — typed per-payload handler registry
//     the service loop drains into; unhandled kinds are counted, not
//     silently dropped.
//   LockManager (src/dsm/)             — token locks, manager forwarding,
//     grant-time interval shipping, record/replay ordering.
//   BarrierCoordinator (src/dsm/)      — barrier arrival/release plus the
//     serial/sharded/distributed race-detection pipeline.
//
// All node state is guarded by mu_; blocking operations park the app thread
// on cv_ while the service thread fills the corresponding reply slot.
// Service handlers never block on the network, which makes the node graph
// deadlock-free by construction.
#ifndef CVM_DSM_NODE_H_
#define CVM_DSM_NODE_H_

#include <array>
#include <bit>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "src/common/abort.h"
#include "src/common/types.h"
#include "src/dsm/barrier_coordinator.h"
#include "src/dsm/lock_manager.h"
#include "src/dsm/options.h"
#include "src/instr/access_filter.h"
#include "src/mem/diff.h"
#include "src/mem/page_table.h"
#include "src/net/dispatch.h"
#include "src/net/message.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/protocol/coherence.h"
#include "src/protocol/interval.h"
#include "src/sim/cost_model.h"
#include "src/vc/vector_clock.h"

namespace cvm {

class DsmSystem;

class Node : public ProtocolHost {
 public:
  Node(NodeId id, DsmSystem* system);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ---------------- Application API ----------------

  NodeId id() const { return id_; }
  int num_nodes() const override;

  // Instrumented shared accesses at word granularity. Addresses are offsets
  // into the global shared segment.
  uint32_t ReadWord(GlobalAddr addr);
  void WriteWord(GlobalAddr addr, uint32_t value);

  template <typename T>
  T Read(GlobalAddr addr) {
    static_assert(sizeof(T) == kWordSize);
    return std::bit_cast<T>(ReadWord(addr));
  }
  template <typename T>
  void Write(GlobalAddr addr, T value) {
    static_assert(sizeof(T) == kWordSize);
    WriteWord(addr, std::bit_cast<uint32_t>(value));
  }

  // System-visible synchronization (the only kind the detector understands —
  // roll-your-own synchronization over shared memory yields spurious races,
  // exactly as §2 warns).
  void Lock(LockId lock);
  void Unlock(LockId lock);
  void Barrier();

  // §6.3: global consolidation of consistency data for barrier-free phases.
  // Runs the race check and garbage-collects interval logs; semantically a
  // collective operation like a barrier.
  void Consolidate() { Barrier(); }

  // Models `units` of uninstrumented computation (advances simulated time).
  void Compute(uint64_t units);

  // Called by the DsmSystem app-thread wrapper just before the implicit
  // final barrier: with epoch-batched detection (--detect-batch > 1) the
  // master must flush any still-queued check lists at that barrier even if
  // it falls mid-batch, and every node releases its deferred bitmaps.
  void MarkFinalBarrier();

  // An instrumented access that ATOM could not prove private but that turns
  // out, at run time, to miss the shared segment (§5.1: the majority of
  // runtime calls to the analysis routine are for private data).
  void PrivateAccess(uint64_t va, bool is_write);

  // Simulated-VA allocator for private (LocalArray) data.
  uint64_t AllocPrivateVa(uint64_t bytes);

  // Tags subsequent accesses with a source site, consumed by the §6.1
  // watchpoint machinery during replay runs.
  void SetSite(const char* site) { site_ = site; }

  // ---------------- Lifecycle (DsmSystem only) ----------------

  void StartService();
  void JoinService();

  // ---------------- Post-run metric snapshots ----------------

  // Post-mortem support: dumps every retained bitmap pair into the trace.
  void DumpTraceBitmaps(class PostMortemTrace& trace) const;

  const AccessCounters& access_counters() const { return filter_.counters(); }
  const NodeTiming& timing() const { return timing_; }
  uint64_t intervals_created() const { return intervals_created_; }
  uint64_t barriers() const { return barriers_; }
  uint64_t page_faults() const { return page_faults_; }
  uint64_t bitmap_pairs_recorded() const { return bitmaps_.TotalPairsRecorded(); }
  // High-water marks of retained consistency data — the paper's storage
  // story (§6.3 consolidation, §6.4: discard only after checking).
  size_t max_interval_log_size() const { return max_log_size_; }
  size_t max_retained_bitmap_pairs() const { return max_retained_pairs_; }
  // Meaningful on node 0 only (the barrier master runs the pipeline).
  const PipelineStats& pipeline_stats() const { return barrier_.pipeline_stats(); }

  // Layer access for tests and tooling.
  const CoherenceProtocol& protocol() const { return *protocol_; }
  const MessageDispatcher& dispatcher() const { return dispatcher_; }
  const BarrierCoordinator& barrier_coordinator() const { return barrier_; }
  const LockManager& lock_manager() const { return lock_mgr_; }

  // ---------------- Crash-tolerant epochs ----------------
  // (docs/FAULTS.md "Crash faults & recovery".)

  // One (interval, page) access-bitmap pair, bitmap_codec-encoded: the
  // checkpoint keeps the compact wire form, not live word arrays.
  struct CheckpointBitmapPair {
    IntervalIndex interval = 0;
    PageId page = -1;
    EncodedBitmap read;
    EncodedBitmap write;
  };

  // The consistent cut retained at each successful barrier: everything the
  // detection protocol needs to resume from epoch `epoch` — interval VCs,
  // the interval log, unchecked access bitmaps, and lock ownership. Data
  // pages are deliberately NOT part of the cut: a failed workload is re-run
  // from scratch by the service, never resumed mid-computation.
  struct EpochCheckpoint {
    EpochId epoch = 0;
    VectorClock vc;
    IntervalIndex cur_interval = 0;
    std::vector<IntervalRecord> log;
    std::vector<CheckpointBitmapPair> bitmaps;
    LockManager::Snapshot locks;
    size_t reports_published = 0;  // Master only: prefix of system reports.
    uint64_t encoded_bitmap_bytes = 0;
  };

  // Called by the DsmSystem app-thread wrapper after a RunAbortError unwound
  // the app: discards the torn epoch and restores the last consistent cut.
  void RecoverAfterAbort(const RunAbortError& err);

  bool crashed() const {
    std::lock_guard<std::mutex> guard(mu_);
    return crashed_;
  }

 private:
  friend class DsmSystem;
  friend class LockManager;
  friend class BarrierCoordinator;

  // ---- ProtocolHost (the protocol layer's view of this node) ----
  NodeId self() const override { return id_; }
  uint64_t page_size() const override { return opts_.page_size; }
  const CostParams& costs() const override { return opts_.costs; }
  WriteDetection write_detection() const override { return opts_.write_detection; }
  std::mutex& mu() override { return mu_; }
  std::condition_variable& cv() override { return cv_; }
  PageTable& pages() override { return pages_; }
  BitmapStore& bitmaps() override { return bitmaps_; }
  IntervalLog& log() override { return log_; }
  NodeTiming& timing() override { return timing_; }
  IntervalIndex current_interval() const override { return cur_interval_; }
  EpochId current_epoch() const override { return epoch_; }
  const perf::FlatIdSet<PageId>& current_writes() const override { return cur_writes_; }
  void NoteWrite(PageId page) override { cur_writes_.Insert(page); }
  bool run_aborted() const override { return aborted_; }
  void ThrowIfAborted() override { ThrowIfAbortedLocked(); }
  void Send(NodeId to, Payload payload) override;
  void ChargeMessage(size_t bytes, size_t read_notice_bytes) override {
    ChargeMessageLocked(bytes, read_notice_bytes);
  }
  std::vector<uint8_t> InitialPageData(PageId page) override;
  obs::Tracer* tracer() override { return tracer_; }
  DiffObs* diff_obs() override { return obs::kObsCompiledIn ? &diff_obs_ : nullptr; }
  void CountPageFetch() override;
  void TraceInstant(const char* name, const char* cat, const char* arg_name = nullptr,
                    uint64_t arg_value = 0) override;

  // ---- Service thread ----
  void ServiceLoop();

  // ---- Causal flow tracing ----
  // Called by Send (mu_ held): stamps a TraceContext on the outbound message
  // — inheriting the chain of the message being dispatched when this send
  // forwards the same payload kind, starting a fresh chain (with the inbound
  // chain as parent) otherwise — and emits the chain's 's' step.
  void StampFlowContext(Message& msg);
  // Service-loop dispatch wrapper: runs the handler, then emits the receive
  // step — 't' if the handler forwarded the chain onward, 'f' if it ended
  // here. Emission is post-dispatch because the forward/terminal distinction
  // is unknowable before the handler runs.
  void DispatchWithFlow(const Message& msg);

  // ---- Shared-access internals (mu_ held) ----
  void ReadFaultLocked(std::unique_lock<std::mutex>& lk, PageId page);
  void WriteFaultLocked(std::unique_lock<std::mutex>& lk, PageId page);

  // ---- Interval machinery (mu_ held) ----
  void EndIntervalLocked(std::unique_lock<std::mutex>& lk);
  void BeginIntervalLocked();
  void ApplyIntervalRecordsLocked(const std::vector<IntervalRecord>& records);
  void GarbageCollectLocked();

  // ---- Cost helpers (mu_ held) ----
  void ChargeMessageLocked(size_t bytes, size_t read_notice_bytes);
  void ChargeInstrumentationLocked();

  // ---- Observability (mu_ held; no-ops when obs is off) ----
  void InitObservability();
  // Adds the per-bucket overhead accumulated since the last publish to the
  // shared metric counters (called at barriers, before the epoch snapshot).
  void PublishOverheadLocked();

  // ---- Crash / abort machinery (mu_ held) ----
  // Fail-stop trigger: if the armed crash plan names this node and the
  // current epoch, marks the node dead in the fabric and throws.
  void MaybeCrashAtBarrierLocked();
  // Throws RunAbortError if a peer crash has torn the current run.
  void ThrowIfAbortedLocked();
  // Send surfaced kPeerUnreachable: suspicion bookkeeping, then either
  // reports the suspect to the master or (on the master, or when the master
  // itself is the suspect) initiates the run abort.
  void OnPeerUnreachableLocked(NodeId peer);
  // First detector: flips aborted_ and broadcasts RunAbortMsg to survivors.
  void InitiateAbortLocked(NodeId dead, EpochId epoch);
  // Captures the per-barrier consistent cut (crash-armed runs only).
  void CaptureCheckpointLocked();
  // Restores the last consistent cut; returns #locks whose state diverged.
  size_t RollbackToCheckpointLocked();
  // Service-thread handlers.
  void OnHeartbeatProbe(const Message& msg);
  void OnHeartbeatAck(const Message& msg);
  void OnPeerSuspect(const Message& msg);
  void OnRunAbort(const Message& msg);

  // ---------------- State ----------------

  DsmSystem* const system_;
  const NodeId id_;
  const DsmOptions& opts_;

  std::thread service_thread_;

  mutable std::mutex mu_;
  std::condition_variable cv_;

  // Memory.
  PageTable pages_;

  // Consistency metadata.
  VectorClock vc_;
  IntervalIndex cur_interval_ = 0;
  EpochId epoch_ = 0;
  IntervalLog log_;
  BitmapStore bitmaps_;
  // Flat sorted sets (src/perf/arena.h): Clear() at interval boundaries
  // keeps their storage, so steady-state access tracking allocates nothing.
  perf::FlatIdSet<PageId> cur_reads_;
  perf::FlatIdSet<PageId> cur_writes_;

  // Observability (pointers are null when tracing/metrics are disabled; the
  // whole block is dead code under -DCVM_OBS=OFF).
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  struct MetricHandles {
    obs::Counter* page_faults = nullptr;
    obs::Counter* page_fetches = nullptr;
    obs::Counter* locks_acquired = nullptr;
    obs::Counter* barriers = nullptr;
    obs::Counter* intervals = nullptr;
    std::array<obs::Counter*, kNumBuckets> overhead = {};
  };
  MetricHandles mh_;
  DiffObs diff_obs_;
  std::array<double, kNumBuckets> overhead_published_ = {};

  // Crash / abort state. crashed_: this node hit its fail-stop point and its
  // NIC is dead; the service thread drops anything still in flight to it.
  // aborted_: some node crashed and the current epoch is torn; every blocking
  // wait includes `|| aborted_` in its predicate and re-raises via
  // ThrowIfAbortedLocked after waking.
  bool crashed_ = false;
  bool aborted_ = false;
  NodeId abort_dead_ = kNoNode;
  EpochId abort_epoch_ = -1;
  uint64_t heartbeat_token_ = 0;
  uint64_t heartbeat_acks_ = 0;
  // The next barrier is the run's implicit final one (see MarkFinalBarrier).
  bool final_barrier_ = false;
  std::optional<EpochCheckpoint> checkpoint_;
  obs::Counter* peer_suspected_counter_ = nullptr;
  obs::Counter* locks_recovered_counter_ = nullptr;

  // Instrumentation and timing.
  AccessFilter filter_;
  NodeTiming timing_;
  const char* site_ = "?";
  uint64_t private_va_next_ = kPrivateHeapBase;
  uint64_t intervals_created_ = 0;
  uint64_t barriers_ = 0;
  uint64_t page_faults_ = 0;
  size_t max_log_size_ = 0;
  size_t max_retained_pairs_ = 0;

  // The engines. Declared after every piece of state they read during
  // construction; the protocol is polymorphic (factory by ProtocolKind),
  // the other two are concrete members.
  MessageDispatcher dispatcher_;
  std::unique_ptr<CoherenceProtocol> protocol_;
  LockManager lock_mgr_;
  BarrierCoordinator barrier_;
};

// The application-facing name for a node handle.
using NodeContext = Node;

}  // namespace cvm

#endif  // CVM_DSM_NODE_H_
