// Minimal aligned-table printer used by the benchmark harnesses to emit the
// paper's tables (Table 1–3) and figure series in a readable text form.
#ifndef CVM_COMMON_TABLE_H_
#define CVM_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace cvm {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds one row; cells beyond the header count are dropped, missing cells
  // render empty.
  void AddRow(std::vector<std::string> cells);

  // Renders with a header rule, columns padded to the widest cell.
  std::string ToString() const;
  void Print() const;

  // Formatting helpers for cells.
  static std::string Fixed(double value, int decimals);
  static std::string Percent(double fraction, int decimals);
  static std::string WithThousands(uint64_t value);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cvm

#endif  // CVM_COMMON_TABLE_H_
