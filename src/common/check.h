// Fatal-check macros. The DSM is a runtime library: internal invariant
// violations abort with a message rather than throwing, following the
// surrounding project style (no exceptions across the public API).
#ifndef CVM_COMMON_CHECK_H_
#define CVM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace cvm {
namespace internal {

// Streams an optional message, then aborts in its destructor. Used only via
// the CVM_CHECK* macros below.
class Failer {
 public:
  Failer(const char* file, int line, const char* expr) : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~Failer() {
    std::fprintf(stderr, "CVM CHECK failed at %s:%d: %s %s\n", file_, line_, expr_,
                 msg_.str().c_str());
    std::fflush(stderr);
    std::abort();
  }

  template <typename T>
  Failer& operator<<(const T& value) {
    msg_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream msg_;
};

}  // namespace internal
}  // namespace cvm

// gtest-style dangling-else-safe conditional abort with streamed detail:
//   CVM_CHECK(ptr != nullptr) << "page " << id;
#define CVM_CHECK(expr)     \
  switch (0)                \
  case 0:                   \
  default:                  \
    if (expr) {             \
    } else /* NOLINT */     \
      ::cvm::internal::Failer(__FILE__, __LINE__, #expr)

#define CVM_CHECK_EQ(a, b) CVM_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CVM_CHECK_NE(a, b) CVM_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CVM_CHECK_LT(a, b) CVM_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CVM_CHECK_LE(a, b) CVM_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CVM_CHECK_GT(a, b) CVM_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CVM_CHECK_GE(a, b) CVM_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // CVM_COMMON_CHECK_H_
