// Fixed-size bitmaps used to record which words of a page were accessed
// during one interval (the paper's per-page access bitmaps) and, more
// generally, as dense page sets for the O(pages) overlap variant of §6.2.
#ifndef CVM_COMMON_BITMAP_H_
#define CVM_COMMON_BITMAP_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/perf/kernels.h"

namespace cvm {

// A dynamically-sized bitmap with word-parallel intersection tests.
// Bit i corresponds to word i of a page (or page i of the segment).
class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint32_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0ull) {}

  uint32_t size() const { return num_bits_; }
  bool empty() const {
    return !perf::AnyWordNonzero(words_.data(), words_.size());
  }

  void Set(uint32_t bit) {
    CVM_CHECK_LT(bit, num_bits_);
    words_[bit >> 6] |= 1ull << (bit & 63);
  }

  void Clear(uint32_t bit) {
    CVM_CHECK_LT(bit, num_bits_);
    words_[bit >> 6] &= ~(1ull << (bit & 63));
  }

  bool Test(uint32_t bit) const {
    CVM_CHECK_LT(bit, num_bits_);
    return (words_[bit >> 6] >> (bit & 63)) & 1ull;
  }

  void Reset() { std::fill(words_.begin(), words_.end(), 0ull); }

  // Number of set bits.
  uint32_t popcount() const {
    return static_cast<uint32_t>(
        perf::PopcountWords(words_.data(), words_.size()));
  }

  // True iff this and other share at least one set bit. This is the paper's
  // constant-time (per page) bitmap comparison of §4 step 5 — the hottest
  // detector operation, routed through the SIMD/word kernel.
  bool Intersects(const Bitmap& other) const {
    CVM_CHECK_EQ(num_bits_, other.num_bits_);
    return perf::AnyCommonBit(words_.data(), other.words_.data(),
                              words_.size());
  }

  // Bit indices present in both maps — the racing words.
  std::vector<uint32_t> IntersectionBits(const Bitmap& other) const {
    CVM_CHECK_EQ(num_bits_, other.num_bits_);
    std::vector<uint32_t> bits;
    perf::AppendCommonBits(words_.data(), other.words_.data(), words_.size(),
                           &bits);
    return bits;
  }

  // All set bit indices.
  std::vector<uint32_t> SetBits() const {
    std::vector<uint32_t> bits;
    perf::AppendSetBits(words_.data(), words_.size(), &bits);
    return bits;
  }

  void UnionWith(const Bitmap& other) {
    CVM_CHECK_EQ(num_bits_, other.num_bits_);
    perf::UnionWords(words_.data(), other.words_.data(), words_.size());
  }

  void IntersectWith(const Bitmap& other) {
    CVM_CHECK_EQ(num_bits_, other.num_bits_);
    perf::IntersectWords(words_.data(), other.words_.data(), words_.size());
  }

  bool operator==(const Bitmap& other) const {
    return num_bits_ == other.num_bits_ && words_ == other.words_;
  }

  // Wire form: raw 64-bit words (little-endian host order; the simulated
  // network never crosses machines).
  const std::vector<uint64_t>& words() const { return words_; }
  size_t ByteSize() const { return words_.size() * sizeof(uint64_t); }

  static Bitmap FromWords(uint32_t num_bits, std::vector<uint64_t> words) {
    Bitmap bm;
    bm.num_bits_ = num_bits;
    bm.words_ = std::move(words);
    CVM_CHECK_EQ(bm.words_.size(), (num_bits + 63) / 64);
    return bm;
  }

  std::string ToString() const;

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace cvm

#endif  // CVM_COMMON_BITMAP_H_
