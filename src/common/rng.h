// Deterministic pseudo-random number generation. Every stochastic choice in
// the repository (synthetic workloads, property-test case generation, the
// BinaryImage generator) draws from one of these so runs are reproducible.
#ifndef CVM_COMMON_RNG_H_
#define CVM_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace cvm {

// SplitMix64: tiny, fast, and good enough for workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound).
  uint64_t Below(uint64_t bound) {
    CVM_CHECK_GT(bound, 0u);
    return Next() % bound;
  }

  // Uniform in [lo, hi].
  int64_t Range(int64_t lo, int64_t hi) {
    CVM_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Bernoulli with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace cvm

#endif  // CVM_COMMON_RNG_H_
