#include "src/common/table.h"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace cvm {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(widths[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << "|" << std::string(widths[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string TablePrinter::Fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TablePrinter::Percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TablePrinter::WithThousands(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) {
      out.push_back(',');
    }
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace cvm
