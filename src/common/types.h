// Core typed identifiers and size constants shared by every cvm module.
#ifndef CVM_COMMON_TYPES_H_
#define CVM_COMMON_TYPES_H_

#include <cstdint>
#include <cstddef>

namespace cvm {

// Identifies one DSM node (a simulated processor). Nodes are numbered 0..p-1.
using NodeId = int32_t;

// Identifies one page of the global shared segment.
using PageId = int32_t;

// Identifies a lock managed by the distributed lock manager.
using LockId = int32_t;

// Byte offset into the global shared segment. The segment is a single flat
// address space common to all nodes; each node holds private copies of its
// pages, kept consistent by the LRC protocol.
using GlobalAddr = uint64_t;

// Index of one interval within a node's totally-ordered interval sequence.
// Interval 0 is the node's first interval.
using IntervalIndex = int32_t;

// Logical barrier-epoch number. Epoch e covers everything between barrier
// e-1's release and barrier e's arrival.
using EpochId = int32_t;

// Granularity at which accesses are tracked ("typically a single word").
inline constexpr uint64_t kWordSize = 4;

inline constexpr NodeId kNoNode = -1;
inline constexpr GlobalAddr kNullAddr = ~0ull;

// Word index within a page for a byte offset.
inline constexpr uint32_t WordInPage(uint64_t offset_in_page) {
  return static_cast<uint32_t>(offset_in_page / kWordSize);
}

}  // namespace cvm

#endif  // CVM_COMMON_TYPES_H_
