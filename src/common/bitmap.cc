#include "src/common/bitmap.h"

#include <sstream>

namespace cvm {

std::string Bitmap::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (uint32_t bit : SetBits()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << bit;
  }
  out << "}";
  return out.str();
}

}  // namespace cvm
