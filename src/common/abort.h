// Control-flow signal for crash-tolerant epochs: when a node fail-stops (a
// kCrash fault) or a survivor learns a peer is unreachable, the torn epoch is
// abandoned by unwinding every blocked app thread with a RunAbortError. The
// DsmSystem app-thread wrapper catches it, rolls the node back to its last
// epoch checkpoint, and reports the crash in RunResult instead of aborting
// the process (docs/FAULTS.md, "Crash faults & recovery").
#ifndef CVM_COMMON_ABORT_H_
#define CVM_COMMON_ABORT_H_

#include "src/common/types.h"

namespace cvm {

struct RunAbortError {
  NodeId dead = kNoNode;  // The node believed to have failed.
  EpochId epoch = -1;     // The epoch torn by the failure.
  bool self_crash = false;  // True on the crashing node itself.
};

}  // namespace cvm

#endif  // CVM_COMMON_ABORT_H_
