// Vector timestamps ("version vectors" in the paper) used to order intervals
// under the happens-before-1 relation of §3.1, plus the two-integer-comparison
// concurrency test of §4 step 2.
#ifndef CVM_VC_VECTOR_CLOCK_H_
#define CVM_VC_VECTOR_CLOCK_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace cvm {

// One entry per node; entry p is the index of the most recent interval of
// node p whose effects are visible ("seen"). -1 means no interval seen yet.
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(int num_nodes) : entries_(num_nodes, -1) {}

  int size() const { return static_cast<int>(entries_.size()); }

  IntervalIndex At(NodeId node) const {
    CVM_CHECK_GE(node, 0);
    CVM_CHECK_LT(node, size());
    return entries_[node];
  }

  void Set(NodeId node, IntervalIndex index) {
    CVM_CHECK_GE(node, 0);
    CVM_CHECK_LT(node, size());
    entries_[node] = index;
  }

  // Advances node's own component; returns the new interval index.
  IntervalIndex Tick(NodeId node) {
    Set(node, At(node) + 1);
    return At(node);
  }

  // Element-wise maximum (applied at acquires: the acquirer has now seen
  // everything the releaser had seen).
  void MergeWith(const VectorClock& other) {
    CVM_CHECK_EQ(size(), other.size());
    for (int i = 0; i < size(); ++i) {
      if (other.entries_[i] > entries_[i]) {
        entries_[i] = other.entries_[i];
      }
    }
  }

  // True iff every component of this <= the matching component of other.
  bool DominatedBy(const VectorClock& other) const {
    CVM_CHECK_EQ(size(), other.size());
    for (int i = 0; i < size(); ++i) {
      if (entries_[i] > other.entries_[i]) {
        return false;
      }
    }
    return true;
  }

  bool operator==(const VectorClock& other) const { return entries_ == other.entries_; }

  const std::vector<IntervalIndex>& entries() const { return entries_; }
  std::string ToString() const;

  // Wire size, for byte-accurate message accounting.
  size_t ByteSize() const { return entries_.size() * sizeof(IntervalIndex); }

  // Wire size under run-length encoding: (value, count) pairs for maximal
  // runs of equal entries, plus a 4-byte run count. Barrier-time clocks are
  // near-uniform (every node has seen almost the same frontier), so this is
  // O(runs) instead of O(nodes) — the encoding the hierarchical barrier's
  // combine messages use so tree traffic stays sub-quadratic in cluster
  // size. Never larger than the flat encoding plus the run-count header.
  size_t RleByteSize() const {
    size_t runs = 0;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (i == 0 || entries_[i] != entries_[i - 1]) {
        ++runs;
      }
    }
    const size_t rle = sizeof(uint32_t) + runs * (sizeof(IntervalIndex) + sizeof(uint32_t));
    return std::min(rle, sizeof(uint32_t) + ByteSize());
  }

 private:
  std::vector<IntervalIndex> entries_;
};

// Identifies one interval: sigma_node^index in the paper's notation.
struct IntervalId {
  NodeId node = kNoNode;
  IntervalIndex index = -1;

  bool operator==(const IntervalId& other) const {
    return node == other.node && index == other.index;
  }
  bool operator<(const IntervalId& other) const {
    return node != other.node ? node < other.node : index < other.index;
  }
  std::string ToString() const;
};

// The paper's constant-time concurrency test (§4 step 2, §6.2): intervals
// sigma_p^i (with vector clock vc_i) and sigma_q^j (with vector clock vc_j)
// are concurrent iff neither has seen the other — exactly two integer
// comparisons:
//   vc_j[p] < i   (j has not seen i)   and   vc_i[q] < j   (i has not seen j).
inline bool IntervalsConcurrent(const IntervalId& a, const VectorClock& vc_a,
                                const IntervalId& b, const VectorClock& vc_b) {
  if (a.node == b.node) {
    return false;  // Program order totally orders a node's own intervals.
  }
  return vc_b.At(a.node) < a.index && vc_a.At(b.node) < b.index;
}

// True iff interval a happens-before interval b (a's effects visible to b).
inline bool IntervalHappensBefore(const IntervalId& a, const IntervalId& b,
                                  const VectorClock& vc_b) {
  if (a.node == b.node) {
    return a.index < b.index;
  }
  return vc_b.At(a.node) >= a.index;
}

}  // namespace cvm

#endif  // CVM_VC_VECTOR_CLOCK_H_
