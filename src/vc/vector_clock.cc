#include "src/vc/vector_clock.h"

#include <sstream>

namespace cvm {

std::string VectorClock::ToString() const {
  std::ostringstream out;
  out << "[";
  for (int i = 0; i < size(); ++i) {
    if (i != 0) {
      out << ",";
    }
    out << entries_[i];
  }
  out << "]";
  return out.str();
}

std::string IntervalId::ToString() const {
  std::ostringstream out;
  out << "s" << node << "^" << index;
  return out.str();
}

}  // namespace cvm
