// Per-node view of the shared segment: one PageEntry per page, holding the
// node's private copy (if any), its protection state, the single-writer
// ownership hint, and the multi-writer twin.
#ifndef CVM_MEM_PAGE_TABLE_H_
#define CVM_MEM_PAGE_TABLE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"

namespace cvm {

// Protection state of a node's copy of one page. Transitions mirror the
// page-fault behaviour of a mprotect-based DSM:
//   kInvalid -> (read fault, fetch) -> kReadOnly -> (write fault) -> kReadWrite
// and write notices received at acquires knock pages back to kInvalid.
enum class PageState : uint8_t {
  kInvalid,    // No usable copy; any access faults.
  kReadOnly,   // Valid copy; writes fault.
  kReadWrite,  // Valid, locally writable copy.
};

const char* PageStateName(PageState state);

struct PageEntry {
  PageState state = PageState::kInvalid;
  std::vector<uint8_t> data;            // Empty until first fetched.
  NodeId probable_owner = kNoNode;      // Single-writer ownership hint.
  std::optional<std::vector<uint8_t>> twin;  // Multi-writer twin, if write-faulted.
};

class PageTable {
 public:
  PageTable(int num_pages, uint64_t page_size);

  int num_pages() const { return static_cast<int>(entries_.size()); }
  uint64_t page_size() const { return page_size_; }

  // Optional observability sinks (any may be null, all owned by the caller):
  // twin creation emits a trace instant, installs/invalidations bump the
  // counters. Compiled to nothing under -DCVM_OBS=OFF.
  void AttachObservability(obs::Tracer* tracer, NodeId node, obs::Counter* twins,
                           obs::Counter* installs, obs::Counter* invalidations);

  PageEntry& entry(PageId page) {
    CVM_CHECK_GE(page, 0);
    CVM_CHECK_LT(page, num_pages());
    return entries_[page];
  }
  const PageEntry& entry(PageId page) const {
    CVM_CHECK_GE(page, 0);
    CVM_CHECK_LT(page, num_pages());
    return entries_[page];
  }

  bool Readable(PageId page) const { return entry(page).state != PageState::kInvalid; }
  bool Writable(PageId page) const { return entry(page).state == PageState::kReadWrite; }

  // Reads/writes one aligned word of the node's copy. The page must be in a
  // state permitting the access (the caller handles faults first).
  uint32_t ReadWord(PageId page, uint32_t word) const;
  void WriteWord(PageId page, uint32_t word, uint32_t value);

  // Installs fetched contents and sets the state.
  void Install(PageId page, std::vector<uint8_t> data, PageState state);

  // Invalidate per an incoming write notice. Keeps the (stale) data so tests
  // can observe weak-memory staleness, but faults will refetch.
  void Invalidate(PageId page);

  // Multi-writer helpers.
  void MakeTwin(PageId page);
  void DropTwin(PageId page) { entry(page).twin.reset(); }

 private:
  uint64_t page_size_;
  std::vector<PageEntry> entries_;

  obs::Tracer* tracer_ = nullptr;
  NodeId obs_node_ = 0;
  obs::Counter* twins_counter_ = nullptr;
  obs::Counter* installs_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
};

}  // namespace cvm

#endif  // CVM_MEM_PAGE_TABLE_H_
