#include "src/mem/page_table.h"

#include <cstring>

namespace cvm {

const char* PageStateName(PageState state) {
  switch (state) {
    case PageState::kInvalid:
      return "invalid";
    case PageState::kReadOnly:
      return "read-only";
    case PageState::kReadWrite:
      return "read-write";
  }
  return "?";
}

PageTable::PageTable(int num_pages, uint64_t page_size) : page_size_(page_size) {
  CVM_CHECK_GT(num_pages, 0);
  entries_.resize(num_pages);
}

uint32_t PageTable::ReadWord(PageId page, uint32_t word) const {
  const PageEntry& e = entry(page);
  CVM_CHECK(e.state != PageState::kInvalid) << "read of invalid page " << page;
  CVM_CHECK_EQ(e.data.size(), page_size_);
  CVM_CHECK_LT(static_cast<uint64_t>(word) * kWordSize, page_size_);
  uint32_t value;
  std::memcpy(&value, e.data.data() + word * kWordSize, kWordSize);
  return value;
}

void PageTable::WriteWord(PageId page, uint32_t word, uint32_t value) {
  PageEntry& e = entry(page);
  CVM_CHECK(e.state == PageState::kReadWrite) << "write to non-writable page " << page;
  CVM_CHECK_EQ(e.data.size(), page_size_);
  CVM_CHECK_LT(static_cast<uint64_t>(word) * kWordSize, page_size_);
  std::memcpy(e.data.data() + word * kWordSize, &value, kWordSize);
}

void PageTable::AttachObservability(obs::Tracer* tracer, NodeId node, obs::Counter* twins,
                                    obs::Counter* installs, obs::Counter* invalidations) {
  if constexpr (!obs::kObsCompiledIn) {
    return;
  }
  tracer_ = tracer;
  obs_node_ = node;
  twins_counter_ = twins;
  installs_counter_ = installs;
  invalidations_counter_ = invalidations;
}

void PageTable::Install(PageId page, std::vector<uint8_t> data, PageState state) {
  CVM_CHECK_EQ(data.size(), page_size_);
  PageEntry& e = entry(page);
  e.data = std::move(data);
  e.state = state;
  if constexpr (obs::kObsCompiledIn) {
    if (installs_counter_ != nullptr) {
      installs_counter_->Increment();
    }
  }
}

void PageTable::Invalidate(PageId page) {
  entry(page).state = PageState::kInvalid;
  if constexpr (obs::kObsCompiledIn) {
    if (invalidations_counter_ != nullptr) {
      invalidations_counter_->Increment();
    }
  }
}

void PageTable::MakeTwin(PageId page) {
  PageEntry& e = entry(page);
  CVM_CHECK(e.state != PageState::kInvalid);
  CVM_CHECK(!e.twin.has_value()) << "twin already exists for page " << page;
  e.twin = e.data;
  if constexpr (obs::kObsCompiledIn) {
    if (twins_counter_ != nullptr) {
      twins_counter_->Increment();
    }
    if (tracer_ != nullptr) {
      obs::TraceEvent event;
      event.name = "twin.create";
      event.cat = "mem";
      event.phase = 'i';
      event.node = obs_node_;
      event.arg_name = "page";
      event.arg_value = static_cast<uint64_t>(page);
      tracer_->Emit(event);
    }
  }
}

}  // namespace cvm
