#include "src/mem/page_table.h"

#include <cstring>

namespace cvm {

const char* PageStateName(PageState state) {
  switch (state) {
    case PageState::kInvalid:
      return "invalid";
    case PageState::kReadOnly:
      return "read-only";
    case PageState::kReadWrite:
      return "read-write";
  }
  return "?";
}

PageTable::PageTable(int num_pages, uint64_t page_size) : page_size_(page_size) {
  CVM_CHECK_GT(num_pages, 0);
  entries_.resize(num_pages);
}

uint32_t PageTable::ReadWord(PageId page, uint32_t word) const {
  const PageEntry& e = entry(page);
  CVM_CHECK(e.state != PageState::kInvalid) << "read of invalid page " << page;
  CVM_CHECK_EQ(e.data.size(), page_size_);
  CVM_CHECK_LT(static_cast<uint64_t>(word) * kWordSize, page_size_);
  uint32_t value;
  std::memcpy(&value, e.data.data() + word * kWordSize, kWordSize);
  return value;
}

void PageTable::WriteWord(PageId page, uint32_t word, uint32_t value) {
  PageEntry& e = entry(page);
  CVM_CHECK(e.state == PageState::kReadWrite) << "write to non-writable page " << page;
  CVM_CHECK_EQ(e.data.size(), page_size_);
  CVM_CHECK_LT(static_cast<uint64_t>(word) * kWordSize, page_size_);
  std::memcpy(e.data.data() + word * kWordSize, &value, kWordSize);
}

void PageTable::Install(PageId page, std::vector<uint8_t> data, PageState state) {
  CVM_CHECK_EQ(data.size(), page_size_);
  PageEntry& e = entry(page);
  e.data = std::move(data);
  e.state = state;
}

void PageTable::MakeTwin(PageId page) {
  PageEntry& e = entry(page);
  CVM_CHECK(e.state != PageState::kInvalid);
  CVM_CHECK(!e.twin.has_value()) << "twin already exists for page " << page;
  e.twin = e.data;
}

}  // namespace cvm
