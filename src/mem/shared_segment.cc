#include "src/mem/shared_segment.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace cvm {

SharedSegment::SharedSegment(uint64_t page_size, uint64_t max_bytes) : page_size_(page_size) {
  CVM_CHECK_GT(page_size, 0u);
  CVM_CHECK_EQ(page_size % kWordSize, 0u);
  num_pages_ = (max_bytes + page_size - 1) / page_size;
  CVM_CHECK_GT(num_pages_, 0u);
  initial_.assign(num_pages_ * page_size_, 0);
}

GlobalAddr SharedSegment::Alloc(const std::string& name, uint64_t bytes, bool page_align) {
  CVM_CHECK_GT(bytes, 0u);
  uint64_t base = next_free_;
  if (page_align && base % page_size_ != 0) {
    base += page_size_ - base % page_size_;
  }
  // Keep scalar allocations word-aligned so bitmap bits map 1:1 to variables.
  if (base % kWordSize != 0) {
    base += kWordSize - base % kWordSize;
  }
  CVM_CHECK_LE(base + bytes, size_bytes())
      << "shared segment exhausted allocating " << name << " (" << bytes << " bytes)";
  next_free_ = base + bytes;
  dirty_high_ = std::max(dirty_high_, next_free_);
  symbols_.push_back(Symbol{name, base, bytes});
  return base;
}

void SharedSegment::Reset() {
  // Zero only what a run could have observed: every allocated byte plus any
  // PokeInitial splash, rounded up to a page so InitialPage never serves a
  // stale partial page.
  uint64_t zero_to = dirty_high_;
  if (zero_to % page_size_ != 0) {
    zero_to += page_size_ - zero_to % page_size_;
  }
  zero_to = std::min<uint64_t>(zero_to, initial_.size());
  std::memset(initial_.data(), 0, zero_to);
  next_free_ = 0;
  dirty_high_ = 0;
  symbols_.clear();
}

std::string SharedSegment::Symbolize(GlobalAddr addr) const {
  for (const Symbol& sym : symbols_) {
    if (addr >= sym.base && addr < sym.base + sym.size) {
      std::ostringstream out;
      out << sym.name;
      if (addr != sym.base) {
        out << "+" << (addr - sym.base);
      }
      return out.str();
    }
  }
  std::ostringstream out;
  out << "0x" << std::hex << addr;
  return out.str();
}

std::vector<uint8_t> SharedSegment::InitialPage(PageId page) const {
  CVM_CHECK_GE(page, 0);
  CVM_CHECK_LT(static_cast<uint64_t>(page), num_pages_);
  auto begin = initial_.begin() + static_cast<int64_t>(page * page_size_);
  return std::vector<uint8_t>(begin, begin + static_cast<int64_t>(page_size_));
}

void SharedSegment::PokeInitial(GlobalAddr addr, const void* data, uint64_t bytes) {
  CVM_CHECK_LE(addr + bytes, size_bytes());
  dirty_high_ = std::max(dirty_high_, addr + bytes);
  std::memcpy(initial_.data() + addr, data, bytes);
}

}  // namespace cvm
