// Twins and diffs, the multi-writer machinery of TreadMarks-style LRC
// (§6.5). A twin is a pristine copy of a page taken at the first write after
// a fault; a diff is the word-granular delta between the twin and the page's
// current contents at release time.
#ifndef CVM_MEM_DIFF_H_
#define CVM_MEM_DIFF_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/types.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/vc/vector_clock.h"

namespace cvm {

// One modified word: (word index within page, new 32-bit value).
struct DiffWord {
  uint32_t word = 0;
  uint32_t value = 0;
  bool operator==(const DiffWord& other) const {
    return word == other.word && value == other.value;
  }
};

struct Diff {
  PageId page = -1;
  IntervalId interval;  // The interval whose writes this diff summarizes.
  std::vector<DiffWord> words;

  size_t ByteSize() const { return sizeof(PageId) + sizeof(IntervalId) + words.size() * 8; }
};

// Optional observability sinks for diff creation/application (any pointer
// may be null; all owned by the caller and shared across calls).
struct DiffObs {
  obs::Tracer* tracer = nullptr;
  NodeId node = 0;
  obs::Counter* diffs_created = nullptr;
  obs::Histogram* diff_size_words = nullptr;
  obs::Counter* words_applied = nullptr;
};

// Computes the word-granular delta twin -> current. Both spans must be one
// page long. Note §6.5's caveat: a word overwritten with its existing value
// produces no diff entry, so diff-derived write detection can miss races.
Diff MakeDiff(PageId page, IntervalId interval, const std::vector<uint8_t>& twin,
              const std::vector<uint8_t>& current, const DiffObs* obs = nullptr);

// Applies the diff's words onto the frame.
void ApplyDiff(const Diff& diff, std::vector<uint8_t>& frame, const DiffObs* obs = nullptr);

}  // namespace cvm

#endif  // CVM_MEM_DIFF_H_
