// The global shared address space. One SharedSegment describes the layout
// (page size, page count) and holds the initial contents; each node keeps
// private copies of pages in its PageTable, kept consistent by the protocol.
#ifndef CVM_MEM_SHARED_SEGMENT_H_
#define CVM_MEM_SHARED_SEGMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/check.h"
#include "src/common/types.h"

namespace cvm {

// Describes one named allocation, used to symbolize race reports (§6.1:
// "In combination with symbol tables, this information can be used to
// identify the exact variable").
struct Symbol {
  std::string name;
  GlobalAddr base = 0;
  uint64_t size = 0;
};

class SharedSegment {
 public:
  SharedSegment(uint64_t page_size, uint64_t max_bytes);

  uint64_t page_size() const { return page_size_; }
  int num_pages() const { return static_cast<int>(num_pages_); }
  uint64_t size_bytes() const { return num_pages_ * page_size_; }
  uint64_t used_bytes() const { return next_free_; }

  PageId PageOf(GlobalAddr addr) const {
    CVM_CHECK_LT(addr, size_bytes());
    return static_cast<PageId>(addr / page_size_);
  }
  uint64_t OffsetInPage(GlobalAddr addr) const { return addr % page_size_; }

  bool Contains(GlobalAddr addr) const { return addr < next_free_; }

  // Allocates `bytes` under `name`; allocations are page-granular when
  // `page_align` is set (the default for arrays, to limit false sharing the
  // way real DSM apps lay out data) and word-granular otherwise.
  GlobalAddr Alloc(const std::string& name, uint64_t bytes, bool page_align = true);

  // Maps an address back to "symbol+offset" for race reports.
  std::string Symbolize(GlobalAddr addr) const;

  const std::vector<Symbol>& symbols() const { return symbols_; }

  // Initial contents of a page, served by the page's home node to first
  // readers. All-zero unless a test poked values in.
  std::vector<uint8_t> InitialPage(PageId page) const;
  void PokeInitial(GlobalAddr addr, const void* data, uint64_t bytes);

  // Returns the segment to its just-constructed state without reallocating
  // the backing store: drops every symbol and re-zeroes only the bytes that
  // were ever allocated or poked. This is what makes a warm DsmSystem reuse
  // cheap — a fresh construction pays a full max_bytes zero-fill.
  void Reset();

 private:
  uint64_t page_size_;
  uint64_t num_pages_;
  uint64_t next_free_ = 0;
  uint64_t dirty_high_ = 0;  // Bytes Reset() must re-zero (allocs + pokes).
  std::vector<Symbol> symbols_;
  std::vector<uint8_t> initial_;  // num_pages_ * page_size_ bytes.
};

}  // namespace cvm

#endif  // CVM_MEM_SHARED_SEGMENT_H_
