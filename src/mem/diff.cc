#include "src/mem/diff.h"

#include <cstring>

#include "src/common/check.h"
#include "src/perf/kernels.h"

namespace cvm {

Diff MakeDiff(PageId page, IntervalId interval, const std::vector<uint8_t>& twin,
              const std::vector<uint8_t>& current, const DiffObs* obs) {
  CVM_CHECK_EQ(twin.size(), current.size());
  CVM_CHECK_EQ(twin.size() % kWordSize, 0u);
  Diff diff;
  diff.page = page;
  diff.interval = interval;
  // The twin-vs-page compare runs through the SIMD/word kernel; it yields
  // the same ascending word indices the original per-word loop produced.
  static thread_local std::vector<uint32_t> unequal;
  unequal.clear();
  perf::AppendUnequalWords32(twin.data(), current.data(),
                             twin.size() / kWordSize, &unequal);
  diff.words.reserve(unequal.size());
  for (uint32_t w : unequal) {
    uint32_t new_value;
    std::memcpy(&new_value, current.data() + static_cast<size_t>(w) * kWordSize,
                kWordSize);
    diff.words.push_back(DiffWord{w, new_value});
  }
  if constexpr (obs::kObsCompiledIn) {
    if (obs != nullptr) {
      if (obs->diffs_created != nullptr) {
        obs->diffs_created->Increment();
      }
      if (obs->diff_size_words != nullptr) {
        obs->diff_size_words->Observe(diff.words.size());
      }
      if (obs->tracer != nullptr) {
        obs::TraceEvent event;
        event.name = "diff.create";
        event.cat = "mem";
        event.phase = 'i';
        event.node = obs->node;
        event.arg_name = "words";
        event.arg_value = diff.words.size();
        event.arg2_name = "page";
        event.arg2_value = static_cast<uint64_t>(page);
        obs->tracer->Emit(event);
      }
    }
  }
  return diff;
}

void ApplyDiff(const Diff& diff, std::vector<uint8_t>& frame, const DiffObs* obs) {
  // The scatter kernel hoists the per-word bounds check out of the copy
  // loop; a short count means some word index fell outside the frame.
  const size_t applied = perf::ScatterWords32(frame.data(), frame.size(),
                                              diff.words.data(),
                                              diff.words.size());
  CVM_CHECK_EQ(applied, diff.words.size());
  if constexpr (obs::kObsCompiledIn) {
    if (obs != nullptr) {
      if (obs->words_applied != nullptr) {
        obs->words_applied->Add(diff.words.size());
      }
      if (obs->tracer != nullptr) {
        obs::TraceEvent event;
        event.name = "diff.apply";
        event.cat = "mem";
        event.phase = 'i';
        event.node = obs->node;
        event.arg_name = "words";
        event.arg_value = diff.words.size();
        event.arg2_name = "page";
        event.arg2_value = static_cast<uint64_t>(diff.page);
        obs->tracer->Emit(event);
      }
    }
  }
}

}  // namespace cvm
