#include "src/mem/diff.h"

#include <cstring>

#include "src/common/check.h"

namespace cvm {

Diff MakeDiff(PageId page, IntervalId interval, const std::vector<uint8_t>& twin,
              const std::vector<uint8_t>& current, const DiffObs* obs) {
  CVM_CHECK_EQ(twin.size(), current.size());
  CVM_CHECK_EQ(twin.size() % kWordSize, 0u);
  Diff diff;
  diff.page = page;
  diff.interval = interval;
  const uint32_t num_words = static_cast<uint32_t>(twin.size() / kWordSize);
  for (uint32_t w = 0; w < num_words; ++w) {
    uint32_t old_value;
    uint32_t new_value;
    std::memcpy(&old_value, twin.data() + w * kWordSize, kWordSize);
    std::memcpy(&new_value, current.data() + w * kWordSize, kWordSize);
    if (old_value != new_value) {
      diff.words.push_back(DiffWord{w, new_value});
    }
  }
  if constexpr (obs::kObsCompiledIn) {
    if (obs != nullptr) {
      if (obs->diffs_created != nullptr) {
        obs->diffs_created->Increment();
      }
      if (obs->diff_size_words != nullptr) {
        obs->diff_size_words->Observe(diff.words.size());
      }
      if (obs->tracer != nullptr) {
        obs::TraceEvent event;
        event.name = "diff.create";
        event.cat = "mem";
        event.phase = 'i';
        event.node = obs->node;
        event.arg_name = "words";
        event.arg_value = diff.words.size();
        event.arg2_name = "page";
        event.arg2_value = static_cast<uint64_t>(page);
        obs->tracer->Emit(event);
      }
    }
  }
  return diff;
}

void ApplyDiff(const Diff& diff, std::vector<uint8_t>& frame, const DiffObs* obs) {
  for (const DiffWord& dw : diff.words) {
    CVM_CHECK_LT(static_cast<uint64_t>(dw.word) * kWordSize + kWordSize, frame.size() + 1);
    std::memcpy(frame.data() + dw.word * kWordSize, &dw.value, kWordSize);
  }
  if constexpr (obs::kObsCompiledIn) {
    if (obs != nullptr) {
      if (obs->words_applied != nullptr) {
        obs->words_applied->Add(diff.words.size());
      }
      if (obs->tracer != nullptr) {
        obs::TraceEvent event;
        event.name = "diff.apply";
        event.cat = "mem";
        event.phase = 'i';
        event.node = obs->node;
        event.arg_name = "words";
        event.arg_value = diff.words.size();
        event.arg2_name = "page";
        event.arg2_value = static_cast<uint64_t>(diff.page);
        obs->tracer->Emit(event);
      }
    }
  }
}

}  // namespace cvm
