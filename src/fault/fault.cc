#include "src/fault/fault.h"

#include <algorithm>

#include "src/common/check.h"

namespace cvm::fault {

namespace {

// SplitMix64 finalizer over a combined key. Decisions must be pure functions
// of their arguments, so the injector hashes instead of drawing from a
// stateful generator (state would make decisions interleaving-dependent).
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double U01(uint64_t h) { return static_cast<double>(h >> 11) * 0x1.0p-53; }

// Domain-separation salts: one per independent decision stream.
enum Salt : uint64_t {
  kDrop = 1,
  kDup = 2,
  kDelay = 3,
  kDelayHops = 4,
  kCorrupt = 5,
  kAck = 6,
  kBurst = 7,
  kPartitionCut = 8,
  kStallNode = 9,
  kCrashNode = 10,
};

uint64_t Key(const FaultPlan& plan, uint64_t salt, NodeId from, NodeId to, uint64_t seq,
             uint32_t attempt) {
  const uint64_t pair = (static_cast<uint64_t>(static_cast<uint32_t>(from + 1)) << 32) |
                        static_cast<uint32_t>(to + 1);
  return Mix(Mix(plan.seed, salt), Mix(pair, Mix(seq, attempt)));
}

bool Chance(const FaultPlan& plan, uint64_t salt, NodeId from, NodeId to, uint64_t seq,
            uint32_t attempt, double p) {
  if (p <= 0) {
    return false;
  }
  return U01(Key(plan, salt, from, to, seq, attempt)) < p;
}

}  // namespace

std::optional<FaultProfile> ParseProfile(const std::string& name) {
  if (name == "off") {
    return FaultProfile::kOff;
  }
  if (name == "lossy") {
    return FaultProfile::kLossy;
  }
  if (name == "bursty") {
    return FaultProfile::kBursty;
  }
  if (name == "partition") {
    return FaultProfile::kPartition;
  }
  if (name == "stress") {
    return FaultProfile::kStress;
  }
  if (name == "crash") {
    return FaultProfile::kCrash;
  }
  return std::nullopt;
}

const char* ProfileName(FaultProfile profile) {
  switch (profile) {
    case FaultProfile::kOff:
      return "off";
    case FaultProfile::kLossy:
      return "lossy";
    case FaultProfile::kBursty:
      return "bursty";
    case FaultProfile::kPartition:
      return "partition";
    case FaultProfile::kStress:
      return "stress";
    case FaultProfile::kCrash:
      return "crash";
  }
  return "?";
}

const char* ValidProfileNames() { return "off|lossy|bursty|partition|stress|crash"; }

FaultPlan FaultPlan::FromProfile(FaultProfile profile, uint64_t seed) {
  FaultPlan plan;
  plan.profile = profile;
  plan.seed = seed;
  switch (profile) {
    case FaultProfile::kOff:
      break;
    case FaultProfile::kLossy:
      plan.drop_prob = 0.02;
      plan.dup_prob = 0.01;
      plan.delay_prob = 0.01;
      plan.ack_drop_prob = 0.01;
      break;
    case FaultProfile::kBursty:
      plan.drop_prob = 0.005;
      plan.dup_prob = 0.005;
      plan.burst_len = 16;
      plan.burst_prob = 0.08;
      plan.burst_attempts = 2;
      break;
    case FaultProfile::kPartition:
      plan.drop_prob = 0.005;
      plan.partition = true;
      plan.partition_seq_start = 32;
      plan.partition_seq_len = 96;
      plan.partition_attempts = 3;
      break;
    case FaultProfile::kStress:
      plan.drop_prob = 0.05;
      plan.dup_prob = 0.02;
      plan.delay_prob = 0.02;
      plan.corrupt_prob = 0.01;
      plan.ack_drop_prob = 0.02;
      plan.stall_period = 256;
      plan.stall_len = 32;
      plan.stall_attempts = 2;
      break;
    case FaultProfile::kCrash:
      // Pure fail-stop: no message-level faults, so the consistent prefix of
      // a crashed run is byte-comparable to the fault-free baseline. The
      // victim is seed-derived (crash_node < 0); epoch 1 gives the run one
      // full healthy epoch to checkpoint before the failure.
      plan.crash_epoch = 1;
      plan.crash_node = kNoNode;
      break;
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, int num_nodes)
    : plan_(plan), num_nodes_(num_nodes) {
  CVM_CHECK_GT(num_nodes, 0);
  if (num_nodes > 1) {
    partition_cut_ =
        1 + static_cast<NodeId>(Mix(plan_.seed, kPartitionCut) %
                                static_cast<uint64_t>(num_nodes - 1));
  }
  stall_node_ =
      static_cast<NodeId>(Mix(plan_.seed, kStallNode) % static_cast<uint64_t>(num_nodes));
  if (plan_.crash_node >= 0) {
    CVM_CHECK_LT(plan_.crash_node, num_nodes);
    crash_node_ = plan_.crash_node;
  } else {
    crash_node_ =
        static_cast<NodeId>(Mix(plan_.seed, kCrashNode) % static_cast<uint64_t>(num_nodes));
  }
}

FaultDecision FaultInjector::OnSendAttempt(NodeId from, NodeId to, uint64_t seq,
                                           uint32_t attempt) const {
  FaultDecision decision;
  if (!plan_.enabled()) {
    return decision;
  }

  // Structural faults first — they model correlated outages, so they override
  // the independent per-frame coin flips.
  if (plan_.partition && attempt < plan_.partition_attempts &&
      seq >= plan_.partition_seq_start &&
      seq < plan_.partition_seq_start + plan_.partition_seq_len) {
    const bool from_left = from < partition_cut_;
    const bool to_left = to < partition_cut_;
    if (from_left != to_left) {
      decision.deliver = false;
      return decision;
    }
  }
  if (plan_.stall_period > 0 && from == stall_node_ && attempt < plan_.stall_attempts &&
      (seq % plan_.stall_period) < plan_.stall_len) {
    decision.deliver = false;
    return decision;
  }
  if (plan_.burst_len > 0 && attempt < plan_.burst_attempts &&
      Chance(plan_, kBurst, from, to, seq / plan_.burst_len, 0, plan_.burst_prob)) {
    decision.deliver = false;
    return decision;
  }

  if (Chance(plan_, kDrop, from, to, seq, attempt, plan_.drop_prob)) {
    decision.deliver = false;
    return decision;
  }
  // Delay only the first attempt: a retransmission raced with a still-held
  // copy already models the interesting case (stale duplicate in flight).
  if (attempt == 0 && plan_.max_delay_hops > 0 &&
      Chance(plan_, kDelay, from, to, seq, attempt, plan_.delay_prob)) {
    decision.delay_hops = 1 + static_cast<uint32_t>(
                                  Key(plan_, kDelayHops, from, to, seq, attempt) %
                                  plan_.max_delay_hops);
    return decision;
  }
  if (Chance(plan_, kCorrupt, from, to, seq, attempt, plan_.corrupt_prob)) {
    decision.corrupt = true;
    return decision;
  }
  decision.duplicate = Chance(plan_, kDup, from, to, seq, attempt, plan_.dup_prob);
  return decision;
}

bool FaultInjector::DropAck(NodeId from, NodeId to, uint64_t seq, uint32_t attempt) const {
  return Chance(plan_, kAck, from, to, seq, attempt, plan_.ack_drop_prob);
}

double FaultInjector::BackoffNs(uint32_t attempt) const {
  const double base = plan_.rto_base_ns > 0 ? plan_.rto_base_ns : 120000.0;
  const double cap = plan_.rto_cap_ns > 0 ? plan_.rto_cap_ns : 64 * base;
  const double scaled = base * static_cast<double>(1ull << std::min<uint32_t>(attempt, 30));
  return std::min(scaled, cap);
}

double FaultInjector::DelayNs(uint32_t hops) const {
  const double per_hop = plan_.delay_hop_ns > 0 ? plan_.delay_hop_ns : 60000.0;
  return per_hop * static_cast<double>(hops);
}

}  // namespace cvm::fault
