// Deterministic fault injection for the message fabric. A FaultPlan picks a
// fault profile (loss/duplication/delay/corruption rates, burst windows,
// partitions, per-node stalls); a FaultInjector turns the plan plus a seed
// into per-send-attempt decisions.
//
// Determinism is the load-bearing property: every decision is a pure hash of
// (seed, from, to, per-pair sequence number, attempt number). No internal
// state, no clocks. Two runs with the same seed and the same per-pair message
// sequences therefore see the *identical* injection schedule — drops,
// duplicates, corruption, and the retransmissions they force — independent of
// thread interleaving. That is what lets the chaos harness assert that race
// reports under faults are byte-identical to the fault-free run and that
// fault counters reproduce from a single --fault-seed.
#ifndef CVM_FAULT_FAULT_H_
#define CVM_FAULT_FAULT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/common/types.h"

namespace cvm::fault {

enum class FaultProfile : uint8_t {
  kOff,        // No injector; the network's clean path is byte-identical.
  kLossy,      // Independent per-frame loss + light duplication/delay.
  kBursty,     // Losses clustered into consecutive-sequence burst windows.
  kPartition,  // A node cut drops cross-cut traffic for a window, then heals.
  kStress,     // Everything at once: loss, dups, delays, corruption, stalls.
  kCrash,      // One seed-chosen node fail-stops at a barrier epoch.
};

// Returns nullopt for an unrecognized name ("off", "lossy", "bursty",
// "partition", "stress", "crash").
std::optional<FaultProfile> ParseProfile(const std::string& name);
const char* ProfileName(FaultProfile profile);

// "off|lossy|bursty|partition|stress|crash" — for CLI error messages, so an
// unknown profile name reports what would have been accepted.
const char* ValidProfileNames();

struct FaultPlan {
  FaultProfile profile = FaultProfile::kOff;
  uint64_t seed = 1;

  // Independent per-attempt probabilities. Drop, delay, and corruption are
  // mutually exclusive on one attempt (checked in that order); duplication
  // composes with a clean delivery.
  double drop_prob = 0;     // Data frame vanishes; sender retransmits.
  double dup_prob = 0;      // Frame delivered twice; receiver suppresses.
  double delay_prob = 0;    // Frame held and released late (stale duplicate).
  double corrupt_prob = 0;  // Frame fails its checksum; receiver quarantines.
  double ack_drop_prob = 0; // Ack lost; sender retransmits, receiver dedups.
  uint32_t max_delay_hops = 3;  // Held frames release after 1..max later sends.

  // Bursty loss: sequence numbers are grouped into windows of burst_len;
  // a window is "bad" with probability burst_prob, and frames inside a bad
  // window lose their first burst_attempts transmission attempts.
  uint32_t burst_len = 0;
  double burst_prob = 0;
  uint32_t burst_attempts = 2;

  // Partition: nodes are split at a seed-derived cut; pairs crossing the cut
  // drop the first partition_attempts attempts of every frame whose sequence
  // number falls in [partition_seq_start, partition_seq_start +
  // partition_seq_len). Retransmission backoff models the heal.
  bool partition = false;
  uint64_t partition_seq_start = 0;
  uint64_t partition_seq_len = 0;
  uint32_t partition_attempts = 3;

  // Per-node stall windows: one seed-chosen node periodically "freezes" —
  // frames it originates during recurring sequence windows of stall_len out
  // of every stall_period lose their first stall_attempts attempts.
  uint32_t stall_period = 0;
  uint32_t stall_len = 0;
  uint32_t stall_attempts = 2;

  // Reliable-transport timeouts, in simulated nanoseconds. Retransmission
  // backoff for attempt a is min(rto_base_ns << a, rto_cap_ns). Zero means
  // "derive from the cost model" (DsmSystem fills these from CostParams, so
  // timeouts scale with the modeled network like every other delay).
  double rto_base_ns = 0;
  double rto_cap_ns = 0;
  double delay_hop_ns = 0;  // Simulated penalty per delay hop.

  // Retransmission bound: a frame that is still unacked after this many
  // attempts stops retrying and surfaces SendStatus::kPeerUnreachable to the
  // caller (the peer-suspicion verdict). Message-level profiles are tuned to
  // heal far below this bound, so a healthy peer is never suspected.
  uint32_t max_send_attempts = 512;

  // Crash fault: node `crash_node` fail-stops when it reaches the entry of
  // barrier `crash_epoch` — its app thread dies mid-epoch and the node goes
  // silent (no acks, no replies). crash_epoch < 0 disarms the crash.
  // crash_node < 0 picks a seed-derived victim (FaultInjector::crash_node()).
  // crash_reboot marks the failure transient: a service-level retry of the
  // same workload runs with the crash disarmed, modeling the node coming
  // back after reboot; permanent crashes recur on every retry.
  EpochId crash_epoch = -1;
  NodeId crash_node = kNoNode;
  bool crash_reboot = false;

  bool crash_enabled() const { return crash_epoch >= 0; }

  // A crash-armed plan needs the reliable transport (sequence numbers, acks,
  // bounded retransmission) even when no message-level faults are injected —
  // that is what turns a silent peer into a PeerUnreachable verdict.
  bool enabled() const { return profile != FaultProfile::kOff || crash_enabled(); }

  // Canonical plan for a profile. Rates are chosen so every profile stays at
  // or under ~5% frame loss — the envelope in which all five bundled apps
  // must produce race reports identical to the fault-free run.
  static FaultPlan FromProfile(FaultProfile profile, uint64_t seed);
};

// What the injector decided for one transmission attempt.
struct FaultDecision {
  bool deliver = true;      // False: the frame is lost in the network.
  bool duplicate = false;   // Deliver a second copy of the frame.
  bool corrupt = false;     // Deliver, but the checksum fails on receipt.
  uint32_t delay_hops = 0;  // >0: hold; release after this many later sends.
};

// Aggregate transport/fault counters, snapshotted via Network::fault_stats().
// With single-threaded senders every field is a pure function of the fault
// seed and the per-pair message sequences (what the determinism test
// asserts). Under concurrent senders, reorder_buffered and the held-frame
// component of dup_dropped additionally depend on how threads interleave.
struct FaultStats {
  uint64_t data_frames = 0;       // Transmission attempts (incl. retransmits).
  uint64_t drops = 0;             // Frames the injector destroyed.
  uint64_t delayed = 0;           // Frames held for late release.
  uint64_t dup_frames = 0;        // Injector-created duplicate deliveries.
  uint64_t dup_dropped = 0;       // Receiver-side duplicate suppressions.
  uint64_t corrupted = 0;         // Frames quarantined on checksum failure.
  uint64_t acks_dropped = 0;      // Lost acks (force retransmit + dedup).
  uint64_t retransmits = 0;       // Timeout-driven resends.
  uint64_t reorder_buffered = 0;  // Frames parked until their gap filled.
  uint64_t unreachable = 0;       // Sends abandoned: peer dead or attempts exhausted.
  double backoff_ns = 0;          // Simulated time spent in retransmit backoff.
};

class FaultInjector {
 public:
  // num_nodes fixes the seed-derived partition cut and stall node.
  FaultInjector(FaultPlan plan, int num_nodes);

  const FaultPlan& plan() const { return plan_; }

  // Decision for transmission attempt `attempt` of the frame with per-pair
  // sequence number `seq` from `from` to `to`. Pure and thread-safe.
  FaultDecision OnSendAttempt(NodeId from, NodeId to, uint64_t seq,
                              uint32_t attempt) const;

  // Whether the ack for this (frame, attempt) is lost on the way back.
  bool DropAck(NodeId from, NodeId to, uint64_t seq, uint32_t attempt) const;

  // Capped exponential backoff before retransmission `attempt`.
  double BackoffNs(uint32_t attempt) const;

  // Simulated extra latency of a frame delayed by `hops` sends.
  double DelayNs(uint32_t hops) const;

  // Seed-derived topology choices, exposed for tests and the run header.
  // Nodes < partition_cut() form one side of the partition profile's cut.
  NodeId partition_cut() const { return partition_cut_; }
  NodeId stall_node() const { return stall_node_; }

  // The crash victim: plan.crash_node if pinned, else seed-derived. Only
  // meaningful when plan().crash_enabled().
  NodeId crash_node() const { return crash_node_; }

 private:
  const FaultPlan plan_;
  const int num_nodes_;
  NodeId partition_cut_ = 1;
  NodeId stall_node_ = 0;
  NodeId crash_node_ = 0;
};

}  // namespace cvm::fault

#endif  // CVM_FAULT_FAULT_H_
