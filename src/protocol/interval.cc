#include "src/protocol/interval.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace cvm {

bool IntervalRecord::WritesPage(PageId page) const {
  return std::find(write_pages.begin(), write_pages.end(), page) != write_pages.end();
}

bool IntervalRecord::ReadsPage(PageId page) const {
  return std::find(read_pages.begin(), read_pages.end(), page) != read_pages.end();
}

std::string IntervalRecord::ToString() const {
  std::ostringstream out;
  out << id.ToString() << " vc=" << vc.ToString() << " epoch=" << epoch << " w={";
  for (size_t i = 0; i < write_pages.size(); ++i) {
    out << (i ? "," : "") << write_pages[i];
  }
  out << "} r={";
  for (size_t i = 0; i < read_pages.size(); ++i) {
    out << (i ? "," : "") << read_pages[i];
  }
  out << "}";
  return out.str();
}

PageAccessBitmaps& BitmapStore::PairFor(IntervalIndex interval, PageId page, bool* created) {
  auto& pages = by_interval_[interval];
  auto it = pages.find(page);
  if (it == pages.end()) {
    it = pages.emplace(page, PageAccessBitmaps{Bitmap(words_per_page_), Bitmap(words_per_page_)})
             .first;
    ++total_pairs_;
    if (created != nullptr) {
      *created = true;
    }
  }
  return it->second;
}

bool BitmapStore::RecordRead(IntervalIndex interval, PageId page, uint32_t word) {
  bool created = false;
  PageAccessBitmaps& pair = PairFor(interval, page, &created);
  const bool first_read = pair.read.empty();
  pair.read.Set(word);
  return first_read || created;
}

bool BitmapStore::RecordWrite(IntervalIndex interval, PageId page, uint32_t word) {
  bool created = false;
  PageAccessBitmaps& pair = PairFor(interval, page, &created);
  const bool first_write = pair.write.empty();
  pair.write.Set(word);
  return first_write || created;
}

const PageAccessBitmaps* BitmapStore::Find(IntervalIndex interval, PageId page) const {
  auto it = by_interval_.find(interval);
  if (it == by_interval_.end()) {
    return nullptr;
  }
  auto pit = it->second.find(page);
  if (pit == it->second.end()) {
    return nullptr;
  }
  return &pit->second;
}

void BitmapStore::DiscardThrough(IntervalIndex up_to) {
  auto it = by_interval_.begin();
  while (it != by_interval_.end() && it->first <= up_to) {
    it = by_interval_.erase(it);
  }
}

size_t BitmapStore::RetainedPairs() const {
  size_t n = 0;
  for (const auto& [interval, pages] : by_interval_) {
    n += pages.size();
  }
  return n;
}

void IntervalLog::Insert(const IntervalRecord& record) {
  CVM_CHECK_GE(record.id.node, 0);
  CVM_CHECK_LT(record.id.node, static_cast<NodeId>(by_node_.size()));
  by_node_[record.id.node].emplace(record.id.index, record);
}

bool IntervalLog::Contains(const IntervalId& id) const { return Find(id) != nullptr; }

const IntervalRecord* IntervalLog::Find(const IntervalId& id) const {
  if (id.node < 0 || id.node >= static_cast<NodeId>(by_node_.size())) {
    return nullptr;
  }
  auto it = by_node_[id.node].find(id.index);
  return it == by_node_[id.node].end() ? nullptr : &it->second;
}

std::vector<IntervalRecord> IntervalLog::UnseenBy(const VectorClock& vc) const {
  std::vector<IntervalRecord> out;
  for (size_t p = 0; p < by_node_.size(); ++p) {
    const IntervalIndex seen = vc.At(static_cast<NodeId>(p));
    for (auto it = by_node_[p].upper_bound(seen); it != by_node_[p].end(); ++it) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<IntervalRecord> IntervalLog::All() const {
  std::vector<IntervalRecord> out;
  for (const auto& node_map : by_node_) {
    for (const auto& [index, record] : node_map) {
      out.push_back(record);
    }
  }
  return out;
}

void IntervalLog::DiscardDominatedBy(const VectorClock& vc) {
  for (size_t p = 0; p < by_node_.size(); ++p) {
    const IntervalIndex limit = vc.At(static_cast<NodeId>(p));
    auto& node_map = by_node_[p];
    auto it = node_map.begin();
    while (it != node_map.end() && it->first <= limit) {
      it = node_map.erase(it);
    }
  }
}

size_t IntervalLog::size() const {
  size_t n = 0;
  for (const auto& node_map : by_node_) {
    n += node_map.size();
  }
  return n;
}

}  // namespace cvm
