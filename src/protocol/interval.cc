#include "src/protocol/interval.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace cvm {

bool IntervalRecord::WritesPage(PageId page) const {
  return std::find(write_pages.begin(), write_pages.end(), page) != write_pages.end();
}

bool IntervalRecord::ReadsPage(PageId page) const {
  return std::find(read_pages.begin(), read_pages.end(), page) != read_pages.end();
}

std::string IntervalRecord::ToString() const {
  std::ostringstream out;
  out << id.ToString() << " vc=" << vc.ToString() << " epoch=" << epoch << " w={";
  for (size_t i = 0; i < write_pages.size(); ++i) {
    out << (i ? "," : "") << write_pages[i];
  }
  out << "} r={";
  for (size_t i = 0; i < read_pages.size(); ++i) {
    out << (i ? "," : "") << read_pages[i];
  }
  out << "}";
  return out.str();
}

PageAccessBitmaps& BitmapStore::PairFor(IntervalIndex interval, PageId page, bool* created) {
  auto oit = by_interval_.find(interval);
  if (oit == by_interval_.end()) {
    auto handle = interval_pool_.Acquire();
    if (handle.empty()) {
      oit = by_interval_.emplace(interval, PageMap{}).first;
    } else {
      handle.key() = interval;
      oit = by_interval_.insert(std::move(handle)).position;
    }
  }
  PageMap& pages = oit->second;
  auto it = pages.find(page);
  if (it == pages.end()) {
    auto handle = pair_pool_.Acquire();
    if (handle.empty()) {
      it = pages.emplace(page,
                         PageAccessBitmaps{Bitmap(words_per_page_), Bitmap(words_per_page_)})
               .first;
    } else {
      // Recycled node: re-key it and zero the bitmaps in place (their word
      // arrays keep their storage as long as the page geometry is stable).
      handle.key() = page;
      PageAccessBitmaps& pair = handle.mapped();
      if (pair.read.size() != words_per_page_) {
        pair.read = Bitmap(words_per_page_);
        pair.write = Bitmap(words_per_page_);
      } else {
        pair.read.Reset();
        pair.write.Reset();
      }
      it = pages.insert(std::move(handle)).position;
    }
    ++total_pairs_;
    if (created != nullptr) {
      *created = true;
    }
  }
  return it->second;
}

bool BitmapStore::RecordRead(IntervalIndex interval, PageId page, uint32_t word) {
  bool created = false;
  PageAccessBitmaps& pair = PairFor(interval, page, &created);
  const bool first_read = pair.read.empty();
  pair.read.Set(word);
  return first_read || created;
}

bool BitmapStore::RecordWrite(IntervalIndex interval, PageId page, uint32_t word) {
  bool created = false;
  PageAccessBitmaps& pair = PairFor(interval, page, &created);
  const bool first_write = pair.write.empty();
  pair.write.Set(word);
  return first_write || created;
}

const PageAccessBitmaps* BitmapStore::Find(IntervalIndex interval, PageId page) const {
  auto it = by_interval_.find(interval);
  if (it == by_interval_.end()) {
    return nullptr;
  }
  auto pit = it->second.find(page);
  if (pit == it->second.end()) {
    return nullptr;
  }
  return &pit->second;
}

void BitmapStore::DiscardThrough(IntervalIndex up_to) {
  while (!by_interval_.empty() && by_interval_.begin()->first <= up_to) {
    PageMap& pages = by_interval_.begin()->second;
    while (!pages.empty()) {
      pair_pool_.Release(pages.extract(pages.begin()));
    }
    interval_pool_.Release(by_interval_.extract(by_interval_.begin()));
  }
}

void BitmapStore::RestorePair(IntervalIndex interval, PageId page,
                              const PageAccessBitmaps& pair) {
  bool created = false;
  PageAccessBitmaps& slot = PairFor(interval, page, &created);
  if (created) {
    --total_pairs_;  // A restore is not a new recording.
  }
  slot = pair;
}

void BitmapStore::Clear() {
  while (!by_interval_.empty()) {
    PageMap& pages = by_interval_.begin()->second;
    while (!pages.empty()) {
      pair_pool_.Release(pages.extract(pages.begin()));
    }
    interval_pool_.Release(by_interval_.extract(by_interval_.begin()));
  }
}

size_t BitmapStore::RetainedPairs() const {
  size_t n = 0;
  for (const auto& [interval, pages] : by_interval_) {
    n += pages.size();
  }
  return n;
}

void IntervalLog::Insert(const IntervalRecord& record) {
  CVM_CHECK_GE(record.id.node, 0);
  CVM_CHECK_LT(record.id.node, static_cast<NodeId>(by_node_.size()));
  RecordMap& node_map = by_node_[record.id.node];
  if (node_map.find(record.id.index) != node_map.end()) {
    return;  // Already known (emplace used to ignore the duplicate too).
  }
  auto handle = record_pool_.Acquire();
  if (handle.empty()) {
    node_map.emplace(record.id.index, record);
    return;
  }
  handle.key() = record.id.index;
  handle.mapped() = record;  // Copy-assign: page-list vectors reuse capacity.
  node_map.insert(std::move(handle));
}

bool IntervalLog::Contains(const IntervalId& id) const { return Find(id) != nullptr; }

const IntervalRecord* IntervalLog::Find(const IntervalId& id) const {
  if (id.node < 0 || id.node >= static_cast<NodeId>(by_node_.size())) {
    return nullptr;
  }
  auto it = by_node_[id.node].find(id.index);
  return it == by_node_[id.node].end() ? nullptr : &it->second;
}

std::vector<IntervalRecord> IntervalLog::UnseenBy(const VectorClock& vc) const {
  std::vector<IntervalRecord> out;
  for (size_t p = 0; p < by_node_.size(); ++p) {
    const IntervalIndex seen = vc.At(static_cast<NodeId>(p));
    for (auto it = by_node_[p].upper_bound(seen); it != by_node_[p].end(); ++it) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::vector<IntervalRecord> IntervalLog::All() const {
  std::vector<IntervalRecord> out;
  for (const auto& node_map : by_node_) {
    for (const auto& [index, record] : node_map) {
      out.push_back(record);
    }
  }
  return out;
}

void IntervalLog::DiscardDominatedBy(const VectorClock& vc) {
  for (size_t p = 0; p < by_node_.size(); ++p) {
    const IntervalIndex limit = vc.At(static_cast<NodeId>(p));
    auto& node_map = by_node_[p];
    while (!node_map.empty() && node_map.begin()->first <= limit) {
      record_pool_.Release(node_map.extract(node_map.begin()));
    }
  }
}

void IntervalLog::Clear() {
  for (auto& node_map : by_node_) {
    while (!node_map.empty()) {
      record_pool_.Release(node_map.extract(node_map.begin()));
    }
  }
}

size_t IntervalLog::size() const {
  size_t n = 0;
  for (const auto& node_map : by_node_) {
    n += node_map.size();
  }
  return n;
}

}  // namespace cvm
