// Interval structures: the unit of LRC consistency metadata (§3.1). Each
// interval carries a version vector, the pages written (write notices) and —
// the paper's addition — the pages read (read notices). Word-granularity
// access bitmaps stay on the creating node until a race check requests them.
#ifndef CVM_PROTOCOL_INTERVAL_H_
#define CVM_PROTOCOL_INTERVAL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/bitmap.h"
#include "src/common/types.h"
#include "src/perf/arena.h"
#include "src/vc/vector_clock.h"

namespace cvm {

// Wire-transferable summary of one interval. This is what rides on lock
// grants and barrier messages.
struct IntervalRecord {
  IntervalId id;
  VectorClock vc;                  // Version vector at interval creation.
  EpochId epoch = 0;               // Barrier epoch the interval belongs to.
  std::vector<PageId> write_pages; // Write notices.
  std::vector<PageId> read_pages;  // Read notices (this paper's addition).

  // Byte-accurate wire size, split so the harness can report the marginal
  // cost of read notices (Table 3 "Msg Ohead").
  size_t BaseByteSize() const {
    return sizeof(IntervalId) + sizeof(EpochId) + vc.ByteSize() +
           write_pages.size() * sizeof(PageId) + sizeof(uint32_t) * 2;
  }
  size_t ReadNoticeByteSize() const { return read_pages.size() * sizeof(PageId); }
  size_t ByteSize() const { return BaseByteSize() + ReadNoticeByteSize(); }

  bool WritesPage(PageId page) const;
  bool ReadsPage(PageId page) const;

  std::string ToString() const;
};

// Word-granularity read/write bitmaps for the pages one interval touched.
struct PageAccessBitmaps {
  Bitmap read;
  Bitmap write;
};

// Per-node store of access bitmaps for the node's *own* intervals. Entries
// are dropped only once the epoch's race check has consumed them (§6.4:
// trace information is discarded only after it has been checked).
class BitmapStore {
 public:
  explicit BitmapStore(uint32_t words_per_page) : words_per_page_(words_per_page) {}

  // Marks one word accessed in the given local interval; creates the bitmap
  // pair lazily. Returns true if this is the first access (read or write
  // respectively) to the page in this interval, i.e. a new notice is due.
  bool RecordRead(IntervalIndex interval, PageId page, uint32_t word);
  bool RecordWrite(IntervalIndex interval, PageId page, uint32_t word);

  // Bitmaps for (interval, page); null if the interval never touched it.
  const PageAccessBitmaps* Find(IntervalIndex interval, PageId page) const;

  // Drops bitmaps for all intervals with index <= up_to (the epoch's race
  // check is complete).
  void DiscardThrough(IntervalIndex up_to);

  // Re-inserts one (interval, page) pair verbatim — epoch-checkpoint
  // rollback restoring the bitmaps retained at the last consistent cut.
  void RestorePair(IntervalIndex interval, PageId page, const PageAccessBitmaps& pair);

  // Drops every retained pair (rollback clears the torn epoch's bitmaps
  // before restoring the checkpointed ones). Does not reset total_pairs_.
  void Clear();

  // Number of (interval, page) bitmap pairs currently retained.
  size_t RetainedPairs() const;

  // Total bitmap pairs ever recorded (denominator of Table 3 "Bitmaps Used").
  uint64_t TotalPairsRecorded() const { return total_pairs_; }

  // Recycling behavior of the (interval, page) bitmap-pair storage: after
  // the first epoch of a steady-state workload, every PairFor is a pool hit
  // (misses stay flat), i.e. access recording allocates nothing.
  const perf::PoolStats& pair_pool_stats() const { return pair_pool_.stats(); }

  // Walks every retained (interval, page) bitmap pair (post-mortem dump).
  template <typename Fn>
  void ForEachPair(NodeId node, const Fn& fn) const {
    for (const auto& [interval, pages] : by_interval_) {
      for (const auto& [page, pair] : pages) {
        fn(IntervalId{node, interval}, page, pair);
      }
    }
  }

 private:
  using PageMap = std::map<PageId, PageAccessBitmaps>;
  using IntervalMap = std::map<IntervalIndex, PageMap>;

  PageAccessBitmaps& PairFor(IntervalIndex interval, PageId page, bool* created);

  uint32_t words_per_page_;
  IntervalMap by_interval_;
  uint64_t total_pairs_ = 0;
  // DiscardThrough parks extracted map nodes (bitmap storage and all) here;
  // PairFor re-keys and re-inserts them, so steady-state epochs recycle both
  // the tree nodes and the bitmap word arrays instead of allocating.
  perf::ObjectPool<PageMap::node_type> pair_pool_;
  perf::ObjectPool<IntervalMap::node_type> interval_pool_;
};

// A node's knowledge of intervals across the whole system: its own and those
// received on synchronization messages. Supports the "intervals the
// requester has not seen" query that LRC piggybacks on lock grants, and
// barrier-time garbage collection.
class IntervalLog {
 public:
  explicit IntervalLog(int num_nodes) : by_node_(num_nodes) {}

  // Inserts (or ignores, if already known) a record.
  void Insert(const IntervalRecord& record);

  bool Contains(const IntervalId& id) const;
  const IntervalRecord* Find(const IntervalId& id) const;

  // All records the given clock has not seen: record (p, i) is unseen iff
  // vc[p] < i. Returned in a causally-safe order (per node, ascending index).
  std::vector<IntervalRecord> UnseenBy(const VectorClock& vc) const;

  // All records currently in the log.
  std::vector<IntervalRecord> All() const;

  // Drops every record dominated by the clock: record (p, i) with
  // i <= vc[p]. Used after barrier release, when every node has seen the
  // epoch and its races have been checked (§6.3 consolidation).
  void DiscardDominatedBy(const VectorClock& vc);

  // Drops every record (epoch-checkpoint rollback; re-Insert the snapshot).
  void Clear();

  size_t size() const;

  // Recycling behavior of record storage (see BitmapStore::pair_pool_stats).
  const perf::PoolStats& record_pool_stats() const { return record_pool_.stats(); }

 private:
  using RecordMap = std::map<IntervalIndex, IntervalRecord>;

  // by_node_[p] maps interval index -> record, sorted by index.
  std::vector<RecordMap> by_node_;
  // DiscardDominatedBy parks extracted nodes here; Insert re-keys them and
  // copy-assigns the record so the page-list vectors reuse their capacity.
  perf::ObjectPool<RecordMap::node_type> record_pool_;
};

}  // namespace cvm

#endif  // CVM_PROTOCOL_INTERVAL_H_
