#include "src/protocol/eager_rc.h"

#include <utility>

#include "src/common/check.h"

namespace cvm {

void EagerRcInvalidate::RegisterHandlers(MessageDispatcher& dispatcher) {
  SingleWriterLrc::RegisterHandlers(dispatcher);
  dispatcher.Register<ErcUpdateMsg>([this](const Message& msg) { OnErcUpdate(msg); });
  dispatcher.Register<ErcAckMsg>([this](const Message& msg) { OnErcAck(msg); });
}

void EagerRcInvalidate::OnIntervalPublished(Lk& lk, const IntervalRecord& record) {
  // Push the notices to every node NOW and block for acks — the cost LRC's
  // central intuition avoids ("competing accesses in correct programs will
  // be separated by synchronization", so notices can ride on later
  // synchronization messages instead).
  if (record.write_pages.empty() || host_.num_nodes() <= 1) {
    return;
  }
  CVM_CHECK(tokens_outstanding_.empty());
  for (NodeId n = 0; n < host_.num_nodes(); ++n) {
    if (n == host_.self()) {
      continue;
    }
    ErcUpdateMsg update;
    update.record = record;
    update.token = token_next_++;
    tokens_outstanding_.insert(update.token);
    const size_t bytes = PayloadByteSize(Payload(update));
    const size_t rn_bytes = PayloadReadNoticeBytes(Payload(update));
    host_.ChargeMessage(bytes, rn_bytes);
    host_.Send(n, std::move(update));
  }
  // One ack round-trip of latency (pushes proceed in parallel).
  host_.timing().Charge(Bucket::kNone, host_.costs().MessageCost(kMessageHeaderBytes + 8));
  host_.cv().wait(lk, [this] { return tokens_outstanding_.empty() || host_.run_aborted(); });
  host_.ThrowIfAborted();
}

void EagerRcInvalidate::OnDuplicateRecord(const IntervalRecord& record) {
  // Already applied — unless it only arrived via an eager push, whose
  // invalidation may have been overtaken by an in-flight fetch install.
  // This acquire covers the record, so apply the notices here, once.
  auto eager = eager_only_.find(record.id);
  if (eager == eager_only_.end()) {
    return;
  }
  eager_only_.erase(eager);
  InvalidateUnlessOwner(record.write_pages);
}

void EagerRcInvalidate::OnGarbageCollect(const VectorClock& vc) {
  for (auto it = eager_only_.begin(); it != eager_only_.end();) {
    it = (it->index <= vc.At(it->node)) ? eager_only_.erase(it) : std::next(it);
  }
}

void EagerRcInvalidate::OnErcUpdate(const Message& msg) {
  const auto& update = std::get<ErcUpdateMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(host_.mu());
  if (!host_.log().Contains(update.record.id)) {
    host_.log().Insert(update.record);
    if (update.record.id.node != host_.self()) {
      eager_only_.insert(update.record.id);
      InvalidateUnlessOwner(update.record.write_pages);
    }
  }
  // No vector-clock merge: ERC moves data eagerly, but synchronization
  // ordering — what the race detector consumes — still comes only from
  // lock grants and barriers.
  host_.Send(msg.from, ErcAckMsg{update.token});
}

void EagerRcInvalidate::OnErcAck(const Message& msg) {
  const auto& ack = std::get<ErcAckMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(host_.mu());
  if (tokens_outstanding_.erase(ack.token) == 0) {
    return;  // Stale re-delivery; already consumed.
  }
  if (tokens_outstanding_.empty()) {
    host_.cv().notify_all();
  }
}

}  // namespace cvm
