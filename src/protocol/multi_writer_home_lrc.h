// Home-based multi-writer LRC: any node may write a page after twinning its
// copy; at interval end each writer diffs its copy against the twin and
// flushes the diff to the page's home, whose frame therefore always reflects
// every causally-required modification. Concurrent writers to disjoint words
// of one page proceed without ping-ponging ownership — the protocol family
// TreadMarks/CVM made standard.
#ifndef CVM_PROTOCOL_MULTI_WRITER_HOME_LRC_H_
#define CVM_PROTOCOL_MULTI_WRITER_HOME_LRC_H_

#include <set>

#include "src/protocol/coherence.h"

namespace cvm {

class MultiWriterHomeLrc : public CoherenceProtocol {
 public:
  explicit MultiWriterHomeLrc(ProtocolHost& host) : CoherenceProtocol(host) {}

  ProtocolKind kind() const override { return ProtocolKind::kMultiWriterHomeLrc; }
  bool single_writer_data() const override { return false; }

  void RegisterHandlers(MessageDispatcher& dispatcher) override;
  void OnReadFault(Lk& lk, PageId page) override;
  void OnWriteFault(Lk& lk, PageId page) override;
  void OnIntervalEnd(Lk& lk) override;
  void ApplyWriteNotices(const IntervalRecord& record) override;

 private:
  // Diffs every twinned page against its twin, flushes non-empty diffs to
  // their homes, and blocks for acks. With diff-based write detection the
  // flush also mines this interval's write notices out of the diffs.
  void FlushDiffs(Lk& lk);
  void OnPageRequest(const Message& msg);
  void OnDiffFlush(const Message& msg);
  void OnDiffFlushAck(const Message& msg);

  std::set<PageId> twinned_;  // Pages with an outstanding twin this interval.
  // Ack matching by token: an ack is consumed at most once, so re-delivered
  // acks cannot release a later flush wait early.
  std::set<uint64_t> flush_tokens_outstanding_;
  uint64_t flush_token_next_ = 1;
};

}  // namespace cvm

#endif  // CVM_PROTOCOL_MULTI_WRITER_HOME_LRC_H_
