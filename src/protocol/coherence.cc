#include "src/protocol/coherence.h"

#include <utility>

#include "src/common/check.h"
#include "src/obs/span.h"
#include "src/protocol/eager_rc.h"
#include "src/protocol/multi_writer_home_lrc.h"
#include "src/protocol/single_writer_lrc.h"

namespace cvm {

CoherenceProtocol::CoherenceProtocol(ProtocolHost& host)
    : host_(host), home_materialized_(host.pages().num_pages(), false) {
  // Every copy starts with the ownership hint at the page's home: the
  // multi-writer home owns the data outright, the single-writer home is the
  // manager that serializes ownership transfers.
  PageTable& pages = host_.pages();
  for (PageId p = 0; p < pages.num_pages(); ++p) {
    pages.entry(p).probable_owner = HomeOf(p);
  }
}

CoherenceProtocol::~CoherenceProtocol() = default;

std::unique_ptr<CoherenceProtocol> CoherenceProtocol::Make(ProtocolKind kind,
                                                           ProtocolHost& host) {
  switch (kind) {
    case ProtocolKind::kSingleWriterLrc:
      return std::make_unique<SingleWriterLrc>(host);
    case ProtocolKind::kMultiWriterHomeLrc:
      return std::make_unique<MultiWriterHomeLrc>(host);
    case ProtocolKind::kEagerRcInvalidate:
      return std::make_unique<EagerRcInvalidate>(host);
  }
  CVM_CHECK(false) << "unknown protocol kind " << static_cast<int>(kind);
  return nullptr;
}

void CoherenceProtocol::RegisterHandlers(MessageDispatcher& dispatcher) {
  dispatcher.Register<PageReplyMsg>([this](const Message& msg) { OnPageReply(msg); });
}

void CoherenceProtocol::MaterializeHome(PageId page) {
  PageEntry& entry = host_.pages().entry(page);
  if (!home_materialized_[page]) {
    CVM_CHECK_EQ(HomeOf(page), host_.self());
    host_.pages().Install(page, host_.InitialPageData(page), PageState::kReadOnly);
    home_materialized_[page] = true;
  } else if (entry.state == PageState::kInvalid) {
    // Home bytes are always current w.r.t. causally-required (flushed)
    // modifications under the home-based protocol, so revalidation is local.
    entry.state = PageState::kReadOnly;
  }
}

bool CoherenceProtocol::FetchPage(Lk& lk, PageId page, bool want_write,
                                  PageState install_state) {
  CVM_CHECK(!page_reply_.has_value());
  CVM_CHECK_EQ(page_fetch_pending_, -1);
  page_fetch_pending_ = page;
  obs::Span span(host_.tracer(), host_.self(), "page.fetch", "mem", host_.timing(),
                 host_.current_epoch());
  span.SetArg("page", static_cast<uint64_t>(page));
  host_.CountPageFetch();
  PageRequestMsg request;
  request.page = page;
  request.want_write = want_write;
  request.requester = host_.self();
  // All requests route through the page's home: the multi-writer home owns
  // the data; the single-writer home is the manager that serializes
  // ownership transfers (two hops worst case).
  host_.Send(HomeOf(page), request);
  host_.cv().wait(lk, [this] { return page_reply_.has_value() || host_.run_aborted(); });
  host_.ThrowIfAborted();
  PageReplyMsg reply = std::move(*page_reply_);
  page_reply_.reset();
  page_fetch_pending_ = -1;
  CVM_CHECK_EQ(reply.page, page);

  // Round-trip cost: request out, page back.
  host_.ChargeMessage(PayloadByteSize(Payload(request)), 0);
  host_.ChargeMessage(PayloadByteSize(Payload(PageReplyMsg{page, {}, false})) + reply.data.size(),
                      0);

  const bool ownership = reply.grants_ownership;
  // TakeOrCopy: moves the page bytes straight out of the shared buffer on
  // the clean path (sole owner); copies only if retransmission state still
  // holds a reference.
  host_.pages().Install(page, reply.data.TakeOrCopy(), install_state);
  return ownership;
}

void CoherenceProtocol::OnPageReply(const Message& msg) {
  const auto& reply = std::get<PageReplyMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(host_.mu());
  if (reply.page != page_fetch_pending_ || page_reply_.has_value()) {
    return;  // Matches no outstanding fetch: stale re-delivery.
  }
  page_reply_ = reply;
  host_.cv().notify_all();
}

}  // namespace cvm
