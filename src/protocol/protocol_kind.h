// Coherence-protocol selection and capability queries. The enum lives in the
// protocol layer (not src/dsm/) so every protocol-specific decision — fault
// handling, interval-end actions, write-notice application — is made behind
// the CoherenceProtocol interface (coherence.h). Code outside src/protocol/
// selects a kind and queries capabilities; it never branches on the kind.
#ifndef CVM_PROTOCOL_PROTOCOL_KIND_H_
#define CVM_PROTOCOL_PROTOCOL_KIND_H_

#include <cstdint>

namespace cvm {

// Which coherence protocol backs the shared segment.
enum class ProtocolKind : uint8_t {
  kSingleWriterLrc,    // The paper's prototype: ownership transfer, no diffs.
  kMultiWriterHomeLrc, // Home-based multi-writer LRC with twins/diffs (§6.5).
  // Eager release consistency (§3.1's ERC): write notices are pushed to every
  // node at each release and the releaser blocks for acknowledgements, instead
  // of piggybacking consistency data on later synchronization. Same
  // single-writer data movement; the ablation that motivates LRC.
  kEagerRcInvalidate,
};

// How write accesses are discovered for race detection (§6.5).
enum class WriteDetection : uint8_t {
  kInstrumentation,  // Store instructions instrumented (word-exact).
  kDiffs,            // Mined from diffs; misses same-value overwrites.
                     // Only meaningful with kMultiWriterHomeLrc.
};

// Stable CamelCase name, e.g. for parameterized-test suffixes and traces.
constexpr const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kSingleWriterLrc:
      return "SingleWriterLrc";
    case ProtocolKind::kMultiWriterHomeLrc:
      return "MultiWriterHomeLrc";
    case ProtocolKind::kEagerRcInvalidate:
      return "EagerRcInvalidate";
  }
  return "UnknownProtocol";
}

// Whether the protocol pushes invalidations at release time instead of
// piggybacking them on later synchronization. Eager protocols race their
// invalidations against unsynchronized reads in real time, so LRC staleness
// guarantees do not hold under them.
constexpr bool ProtocolInvalidatesEagerly(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kEagerRcInvalidate:
      return true;
    case ProtocolKind::kSingleWriterLrc:
    case ProtocolKind::kMultiWriterHomeLrc:
      return false;
  }
  return false;
}

// Whether the protocol can mine write notices from diffs at release time
// (WriteDetection::kDiffs) — only protocols that twin and diff can.
constexpr bool ProtocolSupportsDiffWriteDetection(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kMultiWriterHomeLrc:
      return true;
    case ProtocolKind::kSingleWriterLrc:
    case ProtocolKind::kEagerRcInvalidate:
      return false;
  }
  return false;
}

}  // namespace cvm

#endif  // CVM_PROTOCOL_PROTOCOL_KIND_H_
