// Eager release consistency (§3.1's ERC): single-writer data movement as in
// SingleWriterLrc, but at every release the just-closed interval's write
// notices are pushed to every node and the releaser blocks for
// acknowledgements — the cost LRC's central intuition avoids. The ablation
// that motivates lazy release consistency.
#ifndef CVM_PROTOCOL_EAGER_RC_H_
#define CVM_PROTOCOL_EAGER_RC_H_

#include <set>

#include "src/protocol/single_writer_lrc.h"

namespace cvm {

class EagerRcInvalidate : public SingleWriterLrc {
 public:
  explicit EagerRcInvalidate(ProtocolHost& host) : SingleWriterLrc(host) {}

  ProtocolKind kind() const override { return ProtocolKind::kEagerRcInvalidate; }

  void RegisterHandlers(MessageDispatcher& dispatcher) override;
  void OnIntervalPublished(Lk& lk, const IntervalRecord& record) override;
  void OnDuplicateRecord(const IntervalRecord& record) override;
  void OnGarbageCollect(const VectorClock& vc) override;

 private:
  void OnErcUpdate(const Message& msg);
  void OnErcAck(const Message& msg);

  // Ack matching by token: an ack is consumed at most once, so re-delivered
  // acks cannot release a wait early.
  std::set<uint64_t> tokens_outstanding_;
  uint64_t token_next_ = 1;
  // Records whose write notices were applied ONLY eagerly (ERC push). An
  // eager invalidation can race with an in-flight page fetch — the install
  // revalidates the copy after the invalidation landed — so the notice must
  // be re-applied at the next acquire that covers the record.
  std::set<IntervalId> eager_only_;
};

}  // namespace cvm

#endif  // CVM_PROTOCOL_EAGER_RC_H_
