// The paper's prototype protocol: single-writer LRC with ownership transfer
// and no diffs. Each page has exactly one writable copy at a time; the
// page's home is the manager that serializes ownership transfers, so any
// request reaches the current owner in at most two hops. Write notices
// received at acquires invalidate every copy except the owner's, whose copy
// reflects the whole serialized write history of the page.
#ifndef CVM_PROTOCOL_SINGLE_WRITER_LRC_H_
#define CVM_PROTOCOL_SINGLE_WRITER_LRC_H_

#include <map>
#include <vector>

#include "src/protocol/coherence.h"

namespace cvm {

class SingleWriterLrc : public CoherenceProtocol {
 public:
  explicit SingleWriterLrc(ProtocolHost& host);

  ProtocolKind kind() const override { return ProtocolKind::kSingleWriterLrc; }
  bool single_writer_data() const override { return true; }

  void RegisterHandlers(MessageDispatcher& dispatcher) override;
  void OnReadFault(Lk& lk, PageId page) override;
  void OnWriteFault(Lk& lk, PageId page) override;
  void OnAccessComplete(PageId page) override;
  void OnIntervalEnd(Lk& lk) override;
  void ApplyWriteNotices(const IntervalRecord& record) override;

 protected:
  bool IsOwner(PageId page) const { return am_owner_[page]; }
  // ERC's eager-path re-application reuses the owner-aware invalidation.
  void InvalidateUnlessOwner(const std::vector<PageId>& pages);

 private:
  void OnPageRequest(const Message& msg);
  // Serves a request from this node's (owned, valid) copy; a want_write
  // request also transfers ownership.
  void ServePage(const PageRequestMsg& request);
  // A request forwarded by the manager: serve now, or park it behind the
  // ownership transfer that is still in flight to this node.
  void HandleForwardedPageRequest(const PageRequestMsg& request);
  void DrainPendingServes(PageId page);
  // Fetches for a faulting access and applies an ownership grant, if any.
  void FetchForAccess(Lk& lk, PageId page, bool want_write);

  std::vector<bool> am_owner_;  // This node holds the page's only writable copy.
  // Manager state (meaningful on each page's home): the authoritative
  // current owner. The home serializes every transfer, so requests take at
  // most two hops (home, owner) — no ownership chasing.
  std::vector<NodeId> home_owner_;
  // Forwarded requests for pages whose ownership is still in flight to this
  // node; served once the ownership-granting reply is installed.
  std::map<PageId, std::vector<PageRequestMsg>> pending_serves_;
};

}  // namespace cvm

#endif  // CVM_PROTOCOL_SINGLE_WRITER_LRC_H_
