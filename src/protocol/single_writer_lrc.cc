#include "src/protocol/single_writer_lrc.h"

#include <utility>

#include "src/common/check.h"

namespace cvm {

SingleWriterLrc::SingleWriterLrc(ProtocolHost& host)
    : CoherenceProtocol(host),
      am_owner_(host.pages().num_pages(), false),
      home_owner_(host.pages().num_pages(), kNoNode) {
  for (PageId p = 0; p < host_.pages().num_pages(); ++p) {
    if (HomeOf(p) == host_.self()) {
      am_owner_[p] = true;
      home_owner_[p] = host_.self();
    }
  }
}

void SingleWriterLrc::RegisterHandlers(MessageDispatcher& dispatcher) {
  CoherenceProtocol::RegisterHandlers(dispatcher);
  dispatcher.Register<PageRequestMsg>([this](const Message& msg) { OnPageRequest(msg); });
}

void SingleWriterLrc::OnReadFault(Lk& lk, PageId page) {
  if (am_owner_[page]) {
    MaterializeHome(page);
    return;
  }
  FetchForAccess(lk, page, /*want_write=*/false);
}

void SingleWriterLrc::OnWriteFault(Lk& lk, PageId page) {
  if (am_owner_[page]) {
    if (!host_.pages().Readable(page)) {
      MaterializeHome(page);
    }
    host_.pages().entry(page).state = PageState::kReadWrite;
  } else {
    FetchForAccess(lk, page, /*want_write=*/true);
  }
  host_.NoteWrite(page);
}

void SingleWriterLrc::FetchForAccess(Lk& lk, PageId page, bool want_write) {
  const bool ownership = FetchPage(lk, page, want_write,
                                   want_write ? PageState::kReadWrite : PageState::kReadOnly);
  if (ownership) {
    am_owner_[page] = true;
    host_.pages().entry(page).probable_owner = host_.self();
  }
  // Requests that chased the in-flight ownership are served by the caller
  // once its own access has completed (OnAccessComplete -> drain).
}

void SingleWriterLrc::OnAccessComplete(PageId page) {
  if (!pending_serves_.empty()) {
    DrainPendingServes(page);
  }
}

void SingleWriterLrc::OnIntervalEnd(Lk& lk) {
  (void)lk;
  // Downgrade pages written this interval so the next interval's first
  // write faults again and generates a fresh write notice.
  for (PageId page : host_.current_writes()) {
    PageEntry& entry = host_.pages().entry(page);
    if (entry.state == PageState::kReadWrite) {
      entry.state = PageState::kReadOnly;
    }
  }
}

void SingleWriterLrc::InvalidateUnlessOwner(const std::vector<PageId>& pages) {
  for (PageId page : pages) {
    // The owner's copy reflects the whole serialized page history.
    if (am_owner_[page]) {
      continue;
    }
    host_.pages().Invalidate(page);
  }
}

void SingleWriterLrc::ApplyWriteNotices(const IntervalRecord& record) {
  InvalidateUnlessOwner(record.write_pages);
}

void SingleWriterLrc::ServePage(const PageRequestMsg& request) {
  CVM_CHECK(am_owner_[request.page]);
  if (!host_.pages().Readable(request.page)) {
    MaterializeHome(request.page);
  }
  PageEntry& entry = host_.pages().entry(request.page);
  PageReplyMsg reply;
  reply.page = request.page;
  reply.data = entry.data;
  if (request.want_write) {
    reply.grants_ownership = true;
    am_owner_[request.page] = false;
    entry.state = PageState::kReadOnly;  // Keep a (stale-able) read copy.
    entry.probable_owner = request.requester;
  }
  host_.Send(request.requester, std::move(reply));
}

void SingleWriterLrc::HandleForwardedPageRequest(const PageRequestMsg& request) {
  if (am_owner_[request.page]) {
    ServePage(request);
    return;
  }
  // Ownership is in flight to this node (the home serialized the transfer
  // order); serve once the granting reply is installed.
  pending_serves_[request.page].push_back(request);
}

void SingleWriterLrc::DrainPendingServes(PageId page) {
  auto it = pending_serves_.find(page);
  if (it == pending_serves_.end() || !am_owner_[page]) {
    return;
  }
  std::vector<PageRequestMsg> queued = std::move(it->second);
  pending_serves_.erase(it);
  // Read requests belong to this node's tenure and go first; the single
  // write request (if any) carries ownership to the next tenure.
  for (const PageRequestMsg& request : queued) {
    if (!request.want_write) {
      ServePage(request);
    }
  }
  for (const PageRequestMsg& request : queued) {
    if (request.want_write) {
      ServePage(request);
    }
  }
}

void SingleWriterLrc::OnPageRequest(const Message& msg) {
  const auto request = std::get<PageRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(host_.mu());
  // The home is the manager and serializes transfers.
  if (!request.forwarded) {
    CVM_CHECK_EQ(HomeOf(request.page), host_.self());
    const NodeId target = home_owner_[request.page];
    CVM_CHECK_NE(target, kNoNode);
    CVM_CHECK_NE(target, request.requester)
        << "owner re-requested page " << request.page << " it already owns";
    if (request.want_write) {
      home_owner_[request.page] = request.requester;
    }
    PageRequestMsg forwarded = request;
    forwarded.forwarded = true;
    if (target == host_.self()) {
      HandleForwardedPageRequest(forwarded);
    } else {
      host_.Send(target, forwarded);
    }
    return;
  }
  HandleForwardedPageRequest(request);
}

}  // namespace cvm
