#include "src/protocol/multi_writer_home_lrc.h"

#include <cstring>
#include <map>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/obs/span.h"

namespace cvm {

void MultiWriterHomeLrc::RegisterHandlers(MessageDispatcher& dispatcher) {
  CoherenceProtocol::RegisterHandlers(dispatcher);
  dispatcher.Register<PageRequestMsg>([this](const Message& msg) { OnPageRequest(msg); });
  dispatcher.Register<DiffFlushMsg>([this](const Message& msg) { OnDiffFlush(msg); });
  dispatcher.Register<DiffFlushAckMsg>([this](const Message& msg) { OnDiffFlushAck(msg); });
}

void MultiWriterHomeLrc::OnReadFault(Lk& lk, PageId page) {
  if (HomeOf(page) == host_.self()) {
    MaterializeHome(page);
    return;
  }
  FetchPage(lk, page, /*want_write=*/false, PageState::kReadOnly);
}

void MultiWriterHomeLrc::OnWriteFault(Lk& lk, PageId page) {
  // Any node may write after twinning its copy.
  if (!host_.pages().Readable(page)) {
    if (HomeOf(page) == host_.self()) {
      MaterializeHome(page);
    } else {
      FetchPage(lk, page, /*want_write=*/false, PageState::kReadOnly);
    }
  }
  PageEntry& entry = host_.pages().entry(page);
  if (!entry.twin.has_value()) {
    host_.pages().MakeTwin(page);
    twinned_.insert(page);
  }
  entry.state = PageState::kReadWrite;
  if (host_.write_detection() == WriteDetection::kInstrumentation) {
    host_.NoteWrite(page);
  }
}

void MultiWriterHomeLrc::OnIntervalEnd(Lk& lk) { FlushDiffs(lk); }

void MultiWriterHomeLrc::FlushDiffs(Lk& lk) {
  if (twinned_.empty()) {
    return;
  }
  obs::Span span(host_.tracer(), host_.self(), "diff.flush", "protocol", host_.timing(),
                 host_.current_epoch());
  span.SetArg("pages", twinned_.size());
  std::map<NodeId, std::vector<Diff>> by_home;
  for (PageId page : twinned_) {
    PageEntry& entry = host_.pages().entry(page);
    CVM_CHECK(entry.twin.has_value());
    Diff diff = MakeDiff(page, IntervalId{host_.self(), host_.current_interval()}, *entry.twin,
                         entry.data, host_.diff_obs());
    host_.timing().Charge(
        Bucket::kNone,
        host_.costs().diff_word_ns * static_cast<double>(host_.page_size() / kWordSize));
    host_.pages().DropTwin(page);
    entry.state = PageState::kReadOnly;
    if (host_.write_detection() == WriteDetection::kDiffs) {
      // §6.5: write accesses mined from the diff. Same-value overwrites are
      // invisible here — the weaker guarantee the paper describes.
      if (!diff.words.empty()) {
        host_.NoteWrite(page);
        for (const DiffWord& dw : diff.words) {
          host_.bitmaps().RecordWrite(host_.current_interval(), page, dw.word);
        }
      }
    }
    if (HomeOf(page) == host_.self()) {
      continue;  // Home's frame already holds the writes.
    }
    if (!diff.words.empty()) {
      by_home[HomeOf(page)].push_back(std::move(diff));
    }
  }
  twinned_.clear();

  CVM_CHECK(flush_tokens_outstanding_.empty());
  const bool any_flush = !by_home.empty();
  for (auto& [home, diffs] : by_home) {
    DiffFlushMsg flush;
    flush.diffs = std::move(diffs);
    flush.token = flush_token_next_++;
    flush_tokens_outstanding_.insert(flush.token);
    host_.ChargeMessage(PayloadByteSize(Payload(flush)), 0);
    host_.Send(home, std::move(flush));
  }
  if (any_flush) {
    // One ack round-trip of latency (flushes proceed in parallel).
    host_.timing().Charge(Bucket::kNone, host_.costs().MessageCost(kMessageHeaderBytes + 8));
    host_.cv().wait(lk,
                    [this] { return flush_tokens_outstanding_.empty() || host_.run_aborted(); });
    host_.ThrowIfAborted();
  }
}

void MultiWriterHomeLrc::ApplyWriteNotices(const IntervalRecord& record) {
  for (PageId page : record.write_pages) {
    // Home bytes always include causally-flushed diffs.
    if (HomeOf(page) == host_.self()) {
      continue;
    }
    CVM_CHECK(!host_.pages().entry(page).twin.has_value())
        << "write notice applied while twin outstanding";
    host_.pages().Invalidate(page);
  }
}

void MultiWriterHomeLrc::OnPageRequest(const Message& msg) {
  const auto request = std::get<PageRequestMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(host_.mu());
  CVM_CHECK_EQ(HomeOf(request.page), host_.self());
  MaterializeHome(request.page);
  PageReplyMsg reply;
  reply.page = request.page;
  reply.data = host_.pages().entry(request.page).data;
  host_.Send(request.requester, std::move(reply));
}

void MultiWriterHomeLrc::OnDiffFlush(const Message& msg) {
  const auto& flush = std::get<DiffFlushMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(host_.mu());
  if constexpr (obs::kObsCompiledIn) {
    uint64_t words = 0;
    for (const Diff& diff : flush.diffs) {
      words += diff.words.size();
    }
    if (host_.diff_obs() != nullptr && host_.diff_obs()->words_applied != nullptr) {
      host_.diff_obs()->words_applied->Add(words);
    }
    host_.TraceInstant("diff.apply", "mem", "words", words);
  }
  for (const Diff& diff : flush.diffs) {
    CVM_CHECK_EQ(HomeOf(diff.page), host_.self());
    MaterializeHome(diff.page);
    PageEntry& entry = host_.pages().entry(diff.page);
    // Apply to the frame; mirror into the twin for words the local writer
    // has not touched, so the home's own later diff does not claim remote
    // writes as its own.
    for (const DiffWord& dw : diff.words) {
      const uint64_t offset = static_cast<uint64_t>(dw.word) * kWordSize;
      CVM_CHECK_LE(offset + kWordSize, entry.data.size());
      if (entry.twin.has_value()) {
        uint32_t frame_value;
        uint32_t twin_value;
        std::memcpy(&frame_value, entry.data.data() + offset, kWordSize);
        std::memcpy(&twin_value, (*entry.twin).data() + offset, kWordSize);
        if (frame_value == twin_value) {
          std::memcpy((*entry.twin).data() + offset, &dw.value, kWordSize);
        }
      }
      std::memcpy(entry.data.data() + offset, &dw.value, kWordSize);
    }
  }
  host_.Send(msg.from, DiffFlushAckMsg{flush.token});
}

void MultiWriterHomeLrc::OnDiffFlushAck(const Message& msg) {
  const auto& ack = std::get<DiffFlushAckMsg>(msg.payload);
  std::lock_guard<std::mutex> guard(host_.mu());
  // An ack whose token is no longer outstanding is a stale re-delivery;
  // consuming it twice would release a later flush wait early.
  if (flush_tokens_outstanding_.erase(ack.token) == 0) {
    return;
  }
  if (flush_tokens_outstanding_.empty()) {
    host_.cv().notify_all();
  }
}

}  // namespace cvm
