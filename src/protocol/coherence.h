// The coherence-protocol strategy layer. A CoherenceProtocol owns every
// protocol-specific decision the node used to branch on: page-fault handling,
// interval-end actions (diff flushing vs page downgrade vs eager pushes),
// write-notice application at acquires, and the protocol's share of the
// message vocabulary (page traffic, diff flushes, ERC updates). The node
// core talks to the protocol only through this interface; the protocol talks
// back through ProtocolHost, the narrow view of node state it is allowed to
// touch.
//
// Threading contract: everything here runs under the host's mutex. Methods
// taking a `Lk&` may block on the host's condition variable (page fetches,
// flush/ack rounds); all others must not block. Message handlers (registered
// via RegisterHandlers) run on the node's service thread and acquire the
// host mutex themselves; they never block on the network — the property
// that keeps the node graph deadlock-free.
#ifndef CVM_PROTOCOL_COHERENCE_H_
#define CVM_PROTOCOL_COHERENCE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "src/common/types.h"
#include "src/mem/diff.h"
#include "src/mem/page_table.h"
#include "src/net/dispatch.h"
#include "src/net/message.h"
#include "src/obs/tracer.h"
#include "src/protocol/interval.h"
#include "src/protocol/protocol_kind.h"
#include "src/sim/cost_model.h"

namespace cvm {

// The slice of node state and services a coherence protocol may use. The
// node implements this; keeping it an interface (rather than handing the
// protocol the whole Node) is what makes the protocol layer independently
// testable and keeps src/protocol/ free of src/dsm/ includes.
class ProtocolHost {
 public:
  virtual ~ProtocolHost() = default;

  virtual NodeId self() const = 0;
  virtual int num_nodes() const = 0;
  virtual uint64_t page_size() const = 0;
  virtual const CostParams& costs() const = 0;
  virtual WriteDetection write_detection() const = 0;

  // Node-wide lock and its condition variable. Blocking protocol operations
  // (fetches, flush rounds) park on the cv; handlers filling reply slots
  // notify it.
  virtual std::mutex& mu() = 0;
  virtual std::condition_variable& cv() = 0;

  virtual PageTable& pages() = 0;
  virtual BitmapStore& bitmaps() = 0;
  virtual IntervalLog& log() = 0;
  virtual NodeTiming& timing() = 0;

  virtual IntervalIndex current_interval() const = 0;
  virtual EpochId current_epoch() const = 0;
  // Pages written in the current interval (the pending write notices),
  // ascending. A flat sorted set: Clear() keeps its storage, so steady-state
  // intervals track writes without allocating (see src/perf/arena.h).
  virtual const perf::FlatIdSet<PageId>& current_writes() const = 0;
  // Adds `page` to the current interval's write-notice set.
  virtual void NoteWrite(PageId page) = 0;

  // Crash-tolerant epochs: true once the run is being abandoned because a
  // peer fail-stopped (src/common/abort.h). Blocking protocol waits add it
  // to their predicates so a survivor parked on a reply from a dead node can
  // unwind instead of waiting forever.
  virtual bool run_aborted() const { return false; }
  // Throws RunAbortError when run_aborted(); no-op otherwise. Call after any
  // wait whose predicate includes run_aborted().
  virtual void ThrowIfAborted() {}

  virtual void Send(NodeId to, Payload payload) = 0;
  // Charges one message's modeled cost to the node clock, splitting off the
  // read-notice share into the paper's "CVM Mods" bucket.
  virtual void ChargeMessage(size_t bytes, size_t read_notice_bytes) = 0;

  // Pristine initial contents of `page` (for lazily materialized homes).
  virtual std::vector<uint8_t> InitialPageData(PageId page) = 0;

  // Observability (null/no-op when disabled).
  virtual obs::Tracer* tracer() = 0;
  virtual DiffObs* diff_obs() = 0;
  virtual void CountPageFetch() = 0;
  virtual void TraceInstant(const char* name, const char* cat, const char* arg_name = nullptr,
                            uint64_t arg_value = 0) = 0;
};

class CoherenceProtocol {
 public:
  using Lk = std::unique_lock<std::mutex>;

  static std::unique_ptr<CoherenceProtocol> Make(ProtocolKind kind, ProtocolHost& host);

  virtual ~CoherenceProtocol();

  CoherenceProtocol(const CoherenceProtocol&) = delete;
  CoherenceProtocol& operator=(const CoherenceProtocol&) = delete;

  virtual ProtocolKind kind() const = 0;
  const char* name() const { return ProtocolKindName(kind()); }

  // True for protocols using single-writer data movement (LRC-lazy or ERC):
  // ownership transfer, page served by its current owner. False for the
  // home-based multi-writer protocol.
  virtual bool single_writer_data() const = 0;

  // Registers this protocol's message handlers. The base registers the
  // PageReply slot-filler; subclasses add their request/diff/update traffic.
  // Kinds a protocol does not register are surfaced by the dispatcher as
  // unhandled rather than silently dropped.
  virtual void RegisterHandlers(MessageDispatcher& dispatcher);

  // Page-fault paths, called from the app thread with the fault prologue
  // (fault count, span, page_fault_ns) already charged. May block on fetches.
  virtual void OnReadFault(Lk& lk, PageId page) = 0;
  virtual void OnWriteFault(Lk& lk, PageId page) = 0;

  // Called by the app thread after each completed shared access, while still
  // holding the host mutex. The single-writer family drains page requests
  // that were parked behind an in-flight ownership transfer.
  virtual void OnAccessComplete(PageId page) { (void)page; }

  // Interval-end hook, invoked BEFORE the interval record is built: the
  // multi-writer protocol flushes diffs here (possibly mining write notices
  // into the record), the single-writer family downgrades written pages so
  // the next interval's first write faults again.
  virtual void OnIntervalEnd(Lk& lk) = 0;

  // Invoked AFTER the record is built, logged, and charged. ERC pushes the
  // record to every node here and blocks for acknowledgements.
  virtual void OnIntervalPublished(Lk& lk, const IntervalRecord& record) {
    (void)lk;
    (void)record;
  }

  // Applies one freshly-logged remote record's write notices (invalidation).
  virtual void ApplyWriteNotices(const IntervalRecord& record) = 0;

  // A record already in the log arrived again on an acquire. ERC re-applies
  // notices that had only been seen via an eager push (an eager invalidation
  // can be overtaken by an in-flight fetch install).
  virtual void OnDuplicateRecord(const IntervalRecord& record) { (void)record; }

  // Epoch garbage collection: drop protocol bookkeeping dominated by `vc`.
  virtual void OnGarbageCollect(const VectorClock& vc) { (void)vc; }

 protected:
  explicit CoherenceProtocol(ProtocolHost& host);

  NodeId HomeOf(PageId page) const { return page % host_.num_nodes(); }

  // Lazily initializes (or locally revalidates) this node's home frame.
  void MaterializeHome(PageId page);

  // Blocking fetch through the page's home: sends the request, waits for the
  // reply slot, charges the round trip, installs with `install_state`.
  // Returns true if the reply granted single-writer ownership.
  bool FetchPage(Lk& lk, PageId page, bool want_write, PageState install_state);

  ProtocolHost& host_;

 private:
  void OnPageReply(const Message& msg);

  std::vector<bool> home_materialized_;  // Home frames lazily initialized.
  // Reply slot for the single outstanding fetch (the app thread is the only
  // requester). The handler tolerates replies matching no outstanding fetch.
  std::optional<PageReplyMsg> page_reply_;
  PageId page_fetch_pending_ = -1;
};

}  // namespace cvm

#endif  // CVM_PROTOCOL_COHERENCE_H_
