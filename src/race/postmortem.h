// Post-mortem race detection baseline (§7, Adve et al.): instead of checking
// races online at barriers, the run only *logs* — every interval record and
// every access bitmap is appended to a trace — and an offline pass replays
// the same steps 2–5 afterwards. The comparison against the paper's online
// scheme is storage (the trace grows with the run; the online system
// discards data as soon as each epoch is checked) and when the analysis work
// happens, not what is found: both report identical races.
#ifndef CVM_RACE_POSTMORTEM_H_
#define CVM_RACE_POSTMORTEM_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "src/protocol/interval.h"
#include "src/race/detector.h"
#include "src/race/race_report.h"

namespace cvm {

class PostMortemTrace {
 public:
  // Called by nodes as intervals complete / at shutdown. Thread-safe.
  void AddRecord(const IntervalRecord& record);
  void AddBitmaps(const IntervalId& interval, PageId page, const PageAccessBitmaps& bitmaps);

  size_t NumRecords() const;
  size_t NumBitmapPairs() const;

  // Empties the trace (warm multi-run reuse). Thread-safe.
  void Clear();

  // Total bytes a trace file would occupy.
  size_t TraceBytes() const;

  // Visitors for trace serialization (src/race/trace_io.h).
  template <typename Fn>
  void ForEachRecord(const Fn& fn) const {
    std::lock_guard<std::mutex> guard(mu_);
    for (const IntervalRecord& record : records_) {
      fn(record);
    }
  }
  template <typename Fn>
  void ForEachBitmapPair(const Fn& fn) const {
    std::lock_guard<std::mutex> guard(mu_);
    for (const auto& [key, pair] : bitmaps_) {
      fn(key.first, key.second, pair);
    }
  }

  // Offline analysis: per barrier epoch, the same concurrent-interval /
  // page-overlap / bitmap-comparison pipeline the online system runs.
  struct AnalysisResult {
    std::vector<RaceReport> races;
    DetectorStats stats;
  };
  AnalysisResult Analyze(int num_pages, OverlapMethod method = OverlapMethod::kPageLists) const;

 private:
  mutable std::mutex mu_;
  std::vector<IntervalRecord> records_;
  std::map<std::pair<IntervalId, PageId>, PageAccessBitmaps> bitmaps_;
};

}  // namespace cvm

#endif  // CVM_RACE_POSTMORTEM_H_
