#include "src/race/race_report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/protocol/interval.h"

namespace cvm {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// "sigma_3^7" — the paper's notation for node 3's interval 7.
std::string Sigma(const IntervalId& id) {
  return "sigma_" + std::to_string(id.node) + "^" + std::to_string(id.index);
}

std::string DescribeSide(const RaceAccessProvenance& side) {
  std::ostringstream out;
  out << Sigma(side.interval) << " on node " << side.interval.node;
  if (side.resolved) {
    out << " (epoch " << side.epoch << ", vc " << side.vc.ToString() << ")";
  } else {
    out << " (record garbage-collected before provenance capture)";
  }
  return out.str();
}

}  // namespace

const char* RaceKindName(RaceKind kind) {
  switch (kind) {
    case RaceKind::kWriteWrite:
      return "write-write";
    case RaceKind::kReadWrite:
      return "read-write";
  }
  return "?";
}

std::string RaceReport::ToString() const {
  std::ostringstream out;
  out << "DATA RACE (" << RaceKindName(kind) << ") at "
      << (symbol.empty() ? ("addr 0x" + [this] {
            std::ostringstream hex;
            hex << std::hex << addr;
            return hex.str();
          }())
                         : symbol)
      << " [page " << page << " word " << word << "] between " << interval_a.ToString() << " and "
      << interval_b.ToString() << " (epoch " << epoch << ")";
  return out.str();
}

bool RaceReport::SameRace(const RaceReport& other) const {
  const bool same_pair = (interval_a == other.interval_a && interval_b == other.interval_b) ||
                         (interval_a == other.interval_b && interval_b == other.interval_a);
  return kind == other.kind && page == other.page && word == other.word && same_pair;
}

std::vector<RaceSummaryLine> SummarizeRaces(const std::vector<RaceReport>& reports) {
  std::vector<RaceSummaryLine> lines;
  for (const RaceReport& report : reports) {
    const std::string symbol = report.symbol.substr(0, report.symbol.find('+'));
    RaceSummaryLine* line = nullptr;
    for (RaceSummaryLine& existing : lines) {
      if (existing.symbol == symbol) {
        line = &existing;
        break;
      }
    }
    if (line == nullptr) {
      lines.push_back(RaceSummaryLine{symbol, 0, 0, report.epoch});
      line = &lines.back();
    }
    if (report.kind == RaceKind::kWriteWrite) {
      ++line->write_write;
    } else {
      ++line->read_write;
    }
    line->first_epoch = std::min(line->first_epoch, report.epoch);
  }
  return lines;
}

void AttachProvenance(RaceReport& report, const IntervalRecord* a, const IntervalRecord* b) {
  RaceProvenance& prov = report.provenance;
  prov.detect_epoch = report.epoch;
  prov.a.interval = report.interval_a;
  prov.b.interval = report.interval_b;
  if (a != nullptr) {
    prov.a.vc = a->vc;
    prov.a.epoch = a->epoch;
    prov.a.resolved = true;
  }
  if (b != nullptr) {
    prov.b.vc = b->vc;
    prov.b.epoch = b->epoch;
    prov.b.resolved = true;
  }

  const IntervalId& ia = report.interval_a;
  const IntervalId& ib = report.interval_b;
  prov.chain.clear();
  prov.chain.push_back("access A: " + DescribeSide(prov.a));
  prov.chain.push_back("access B: " + DescribeSide(prov.b));
  {
    // The sync ops delimiting each access: interval i on node p spans p's
    // sync operations #i and #(i+1) — those are the only orderings the
    // detector (and the program) has for the access.
    std::ostringstream out;
    out << "ordering: node " << ia.node << "'s sync op #" << ia.index << " -> access A -> sync op #"
        << ia.index + 1 << "; node " << ib.node << "'s sync op #" << ib.index
        << " -> access B -> sync op #" << ib.index + 1;
    prov.chain.push_back(out.str());
  }
  if (prov.a.resolved && prov.b.resolved) {
    // The two-comparison concurrency test (§4), spelled out with the entries
    // that failed: neither interval had seen the other's creation.
    std::ostringstream out;
    out << "concurrency test: vc_" << Sigma(ib) << "[" << ia.node
        << "]=" << prov.b.vc.At(ia.node) << " < " << ia.index << " and vc_" << Sigma(ia) << "["
        << ib.node << "]=" << prov.a.vc.At(ib.node) << " < " << ib.index
        << " — no release/acquire chain connects the accesses";
    prov.chain.push_back(out.str());
  } else {
    prov.chain.push_back(
        "concurrency test: intervals concurrent per the two-comparison test "
        "(version vectors unavailable)");
  }
  {
    std::ostringstream out;
    out << "exposed at the epoch-" << prov.detect_epoch
        << " barrier check, when both intervals' notices first met at the master";
    prov.chain.push_back(out.str());
  }
}

std::string FormatProvenance(const RaceReport& report) {
  if (report.provenance.empty()) {
    return "  (no provenance recorded)\n";
  }
  std::string out;
  for (const std::string& line : report.provenance.chain) {
    out += "  " + line + "\n";
  }
  return out;
}

std::string RaceReportsToJson(const std::vector<RaceReport>& reports) {
  std::ostringstream out;
  out << "[\n";
  for (size_t i = 0; i < reports.size(); ++i) {
    const RaceReport& r = reports[i];
    const RaceProvenance& p = r.provenance;
    out << "  {\"kind\":\"" << RaceKindName(r.kind) << "\",\"page\":" << r.page
        << ",\"word\":" << r.word << ",\"addr\":" << r.addr << ",\"symbol\":\""
        << JsonEscape(r.symbol) << "\",\"epoch\":" << r.epoch << ",\n   \"interval_a\":{\"node\":"
        << r.interval_a.node << ",\"index\":" << r.interval_a.index
        << ",\"resolved\":" << (p.a.resolved ? "true" : "false") << ",\"epoch\":" << p.a.epoch
        << ",\"vc\":\"" << JsonEscape(p.a.resolved ? p.a.vc.ToString() : "") << "\"},\n"
        << "   \"interval_b\":{\"node\":" << r.interval_b.node
        << ",\"index\":" << r.interval_b.index
        << ",\"resolved\":" << (p.b.resolved ? "true" : "false") << ",\"epoch\":" << p.b.epoch
        << ",\"vc\":\"" << JsonEscape(p.b.resolved ? p.b.vc.ToString() : "") << "\"},\n"
        << "   \"detect_epoch\":" << p.detect_epoch << ",\"chain\":[";
    for (size_t j = 0; j < p.chain.size(); ++j) {
      out << (j > 0 ? "," : "") << "\"" << JsonEscape(p.chain[j]) << "\"";
    }
    out << "]}" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return out.str();
}

std::vector<RaceReport> FilterFirstRaces(const std::vector<RaceReport>& reports) {
  if (reports.empty()) {
    return {};
  }
  EpochId first_epoch = reports.front().epoch;
  for (const RaceReport& r : reports) {
    first_epoch = std::min(first_epoch, r.epoch);
  }
  std::vector<RaceReport> out;
  for (const RaceReport& r : reports) {
    if (r.epoch == first_epoch) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace cvm
