#include "src/race/race_report.h"

#include <algorithm>
#include <sstream>

namespace cvm {

const char* RaceKindName(RaceKind kind) {
  switch (kind) {
    case RaceKind::kWriteWrite:
      return "write-write";
    case RaceKind::kReadWrite:
      return "read-write";
  }
  return "?";
}

std::string RaceReport::ToString() const {
  std::ostringstream out;
  out << "DATA RACE (" << RaceKindName(kind) << ") at "
      << (symbol.empty() ? ("addr 0x" + [this] {
            std::ostringstream hex;
            hex << std::hex << addr;
            return hex.str();
          }())
                         : symbol)
      << " [page " << page << " word " << word << "] between " << interval_a.ToString() << " and "
      << interval_b.ToString() << " (epoch " << epoch << ")";
  return out.str();
}

bool RaceReport::SameRace(const RaceReport& other) const {
  const bool same_pair = (interval_a == other.interval_a && interval_b == other.interval_b) ||
                         (interval_a == other.interval_b && interval_b == other.interval_a);
  return kind == other.kind && page == other.page && word == other.word && same_pair;
}

std::vector<RaceSummaryLine> SummarizeRaces(const std::vector<RaceReport>& reports) {
  std::vector<RaceSummaryLine> lines;
  for (const RaceReport& report : reports) {
    const std::string symbol = report.symbol.substr(0, report.symbol.find('+'));
    RaceSummaryLine* line = nullptr;
    for (RaceSummaryLine& existing : lines) {
      if (existing.symbol == symbol) {
        line = &existing;
        break;
      }
    }
    if (line == nullptr) {
      lines.push_back(RaceSummaryLine{symbol, 0, 0, report.epoch});
      line = &lines.back();
    }
    if (report.kind == RaceKind::kWriteWrite) {
      ++line->write_write;
    } else {
      ++line->read_write;
    }
    line->first_epoch = std::min(line->first_epoch, report.epoch);
  }
  return lines;
}

std::vector<RaceReport> FilterFirstRaces(const std::vector<RaceReport>& reports) {
  if (reports.empty()) {
    return {};
  }
  EpochId first_epoch = reports.front().epoch;
  for (const RaceReport& r : reports) {
    first_epoch = std::min(first_epoch, r.epoch);
  }
  std::vector<RaceReport> out;
  for (const RaceReport& r : reports) {
    if (r.epoch == first_epoch) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace cvm
