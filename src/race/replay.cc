#include "src/race/replay.h"

#include <fstream>
#include <sstream>

#include "src/common/check.h"

namespace cvm {

void SyncSchedule::RecordGrant(LockId lock, NodeId grantee) {
  std::lock_guard<std::mutex> guard(mu_);
  grants_[lock].push_back(grantee);
}

NodeId SyncSchedule::NextGrantee(LockId lock) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = grants_.find(lock);
  if (it == grants_.end()) {
    return kNoNode;
  }
  const size_t cursor = cursors_[lock];
  if (cursor >= it->second.size()) {
    return kNoNode;
  }
  return it->second[cursor];
}

void SyncSchedule::ConsumeGrant(LockId lock, NodeId grantee) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = grants_.find(lock);
  CVM_CHECK(it != grants_.end()) << "consume on unrecorded lock " << lock;
  size_t& cursor = cursors_[lock];
  CVM_CHECK_LT(cursor, it->second.size());
  CVM_CHECK_EQ(it->second[cursor], grantee);
  ++cursor;
}

size_t SyncSchedule::TotalGrants() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t n = 0;
  for (const auto& [lock, grants] : grants_) {
    n += grants.size();
  }
  return n;
}

const std::vector<NodeId>& SyncSchedule::GrantsFor(LockId lock) const {
  static const std::vector<NodeId> kEmpty;
  std::lock_guard<std::mutex> guard(mu_);
  auto it = grants_.find(lock);
  return it == grants_.end() ? kEmpty : it->second;
}

std::vector<LockId> SyncSchedule::RecordedLocks() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<LockId> locks;
  locks.reserve(grants_.size());
  for (const auto& [lock, grants] : grants_) {
    locks.push_back(lock);
  }
  return locks;
}

bool WriteScheduleFile(const SyncSchedule& schedule, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  for (LockId lock : schedule.RecordedLocks()) {
    const std::vector<NodeId>& grants = schedule.GrantsFor(lock);
    if (grants.empty()) {
      continue;
    }
    out << "lock " << lock << ":";
    for (NodeId grantee : grants) {
      out << " " << grantee;
    }
    out << "\n";
  }
  out.flush();
  return static_cast<bool>(out);
}

bool ReadScheduleFile(const std::string& path, SyncSchedule* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::string word;
  while (in >> word) {
    if (word != "lock") {
      return false;
    }
    LockId lock = -1;
    std::string lock_token;
    if (!(in >> lock_token) || lock_token.empty() || lock_token.back() != ':') {
      return false;
    }
    lock = static_cast<LockId>(std::stol(lock_token.substr(0, lock_token.size() - 1)));
    // Grantees until end of line.
    std::string rest;
    std::getline(in, rest);
    std::istringstream line(rest);
    NodeId grantee;
    while (line >> grantee) {
      out->RecordGrant(lock, grantee);
    }
  }
  return true;
}

std::string WatchHit::ToString() const {
  std::ostringstream out;
  out << (is_write ? "write" : "read") << " of 0x" << std::hex << addr << std::dec << " by node "
      << node << " in " << interval.ToString() << " epoch " << epoch << " at " << site;
  return out.str();
}

}  // namespace cvm
