#include "src/race/bitmap_codec.h"

#include <limits>

#include "src/common/check.h"
#include "src/perf/kernels.h"

namespace cvm {

const char* BitmapEncodingName(BitmapEncoding encoding) {
  switch (encoding) {
    case BitmapEncoding::kRaw:
      return "raw";
    case BitmapEncoding::kEmpty:
      return "empty";
    case BitmapEncoding::kSparse:
      return "sparse";
    case BitmapEncoding::kRuns:
      return "runs";
    case BitmapEncoding::kInterned:
      return "interned";
  }
  return "?";
}

EncodedBitmap BitmapCodec::Encode(const Bitmap& bitmap, bool allow_compression) {
  EncodedBitmap encoded;
  encoded.num_bits = bitmap.size();

  // Empty bitmaps (untouched pages) dominate in steady state; decide them
  // with one vectorized scan before materializing any set-bit list.
  if (allow_compression &&
      !perf::AnyWordNonzero(bitmap.words().data(), bitmap.words().size())) {
    encoded.encoding = BitmapEncoding::kEmpty;
    return encoded;
  }

  const std::vector<uint32_t> set_bits = bitmap.SetBits();
  // uint16 payloads cannot address bits past 65535; page-word bitmaps are far
  // below that, but dense page-set bitmaps of very large segments may not be.
  const bool fits_u16 =
      bitmap.size() == 0 || bitmap.size() - 1 <= std::numeric_limits<uint16_t>::max();

  if (allow_compression && fits_u16) {
    // Maximal runs of consecutive set bits.
    std::vector<uint16_t> runs;
    size_t i = 0;
    while (i < set_bits.size()) {
      size_t j = i + 1;
      while (j < set_bits.size() && set_bits[j] == set_bits[j - 1] + 1 &&
             set_bits[j] - set_bits[i] < std::numeric_limits<uint16_t>::max()) {
        ++j;
      }
      runs.push_back(static_cast<uint16_t>(set_bits[i]));
      runs.push_back(static_cast<uint16_t>(j - i));
      i = j;
    }

    const size_t raw_bytes = bitmap.ByteSize();
    const size_t sparse_bytes = set_bits.size() * sizeof(uint16_t);
    const size_t runs_bytes = runs.size() * sizeof(uint16_t);
    if (sparse_bytes <= runs_bytes && sparse_bytes < raw_bytes) {
      encoded.encoding = BitmapEncoding::kSparse;
      encoded.values.reserve(set_bits.size());
      for (uint32_t bit : set_bits) {
        encoded.values.push_back(static_cast<uint16_t>(bit));
      }
      return encoded;
    }
    if (runs_bytes < raw_bytes) {
      encoded.encoding = BitmapEncoding::kRuns;
      encoded.values = std::move(runs);
      return encoded;
    }
  }

  encoded.encoding = BitmapEncoding::kRaw;
  encoded.raw = bitmap.words();
  return encoded;
}

Bitmap BitmapCodec::Decode(const EncodedBitmap& encoded) {
  switch (encoded.encoding) {
    case BitmapEncoding::kRaw:
      return Bitmap::FromWords(encoded.num_bits, encoded.raw);
    case BitmapEncoding::kEmpty:
      return Bitmap(encoded.num_bits);
    case BitmapEncoding::kSparse: {
      Bitmap bitmap(encoded.num_bits);
      for (uint16_t bit : encoded.values) {
        bitmap.Set(bit);
      }
      return bitmap;
    }
    case BitmapEncoding::kRuns: {
      Bitmap bitmap(encoded.num_bits);
      CVM_CHECK_EQ(encoded.values.size() % 2, 0u);
      for (size_t i = 0; i < encoded.values.size(); i += 2) {
        const uint32_t start = encoded.values[i];
        const uint32_t length = encoded.values[i + 1];
        for (uint32_t b = 0; b < length; ++b) {
          bitmap.Set(start + b);
        }
      }
      return bitmap;
    }
    case BitmapEncoding::kInterned:
      break;  // Only the interning cache layer can resolve these.
  }
  CVM_CHECK(false) << "bitmap encoding not decodable without cache context";
  return Bitmap();
}

}  // namespace cvm
