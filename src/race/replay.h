// Synchronization-order record/replay (§6.1). The first run records the
// global order in which each lock was granted; a second run enforces the
// same grant order, making the racy interleaving repeat so that program-
// counter (source-site) information can be gathered for just the conflicting
// address and epoch.
//
// Barriers are deterministic by construction, so only lock grants are
// recorded. This works for programs whose only scheduling nondeterminism is
// synchronization order — precisely the assumption the paper makes, with the
// caveat that general races can still diverge (the paper's proposed fix,
// enforcing first-run synchronization order, is what this class implements).
#ifndef CVM_RACE_REPLAY_H_
#define CVM_RACE_REPLAY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/vc/vector_clock.h"

namespace cvm {

class SyncSchedule {
 public:
  SyncSchedule() = default;
  SyncSchedule(const SyncSchedule& other) : grants_(other.grants_) {}
  SyncSchedule& operator=(const SyncSchedule& other) {
    grants_ = other.grants_;
    cursors_.clear();
    return *this;
  }

  // Recording (first run). Thread-safe; called at every grant, including
  // local token re-acquisitions.
  void RecordGrant(LockId lock, NodeId grantee);

  // Replaying (second run). The cursor advances as grants are consumed.
  // Returns kNoNode when the schedule for the lock is exhausted (then any
  // order is acceptable — e.g. the tail of the run past the recorded data).
  NodeId NextGrantee(LockId lock) const;
  void ConsumeGrant(LockId lock, NodeId grantee);

  size_t TotalGrants() const;
  const std::vector<NodeId>& GrantsFor(LockId lock) const;
  std::vector<LockId> RecordedLocks() const;

 private:
  mutable std::mutex mu_;
  std::map<LockId, std::vector<NodeId>> grants_;
  mutable std::map<LockId, size_t> cursors_;  // Replay positions.
};

// One instrumented access to the watched address during a replay run: the
// "program counter" information of §6.1, gathered only for the conflicted
// address and epoch.
struct WatchHit {
  NodeId node = kNoNode;
  IntervalId interval;
  EpochId epoch = -1;
  GlobalAddr addr = 0;
  bool is_write = false;
  std::string site;  // Application-provided source location tag.

  std::string ToString() const;
};

// Text serialization of a recorded schedule ("lock <id>: <grantee>..." per
// line), so the two-run workflow can span separate processes.
bool WriteScheduleFile(const SyncSchedule& schedule, const std::string& path);
bool ReadScheduleFile(const std::string& path, SyncSchedule* out);

}  // namespace cvm

#endif  // CVM_RACE_REPLAY_H_
