// Binary trace files for the post-mortem baseline (§7): the first run writes
// the synchronization/access trace to disk; analysis happens later, possibly
// elsewhere — the workflow Adve et al. describe. Format (little-endian,
// host-width integers; traces are single-machine artifacts):
//
//   [magic u32][version u32]
//   [record_count u64] then per record:
//     node i32, index i32, epoch i32, vc_len u32, vc entries i32...,
//     n_writes u32, pages i32..., n_reads u32, pages i32...
//   [bitmap_count u64] then per entry:
//     node i32, index i32, page i32, bits u32, read words u64..., write words u64...
#ifndef CVM_RACE_TRACE_IO_H_
#define CVM_RACE_TRACE_IO_H_

#include <string>

#include "src/race/postmortem.h"

namespace cvm {

inline constexpr uint32_t kTraceMagic = 0x43564d54;  // "CVMT"
inline constexpr uint32_t kTraceVersion = 1;

// Writes the trace to `path`; returns false on I/O failure.
bool WriteTraceFile(const PostMortemTrace& trace, const std::string& path);

// Loads a trace into `out` (which must be empty); returns false on I/O
// error, bad magic/version, or a truncated/corrupt file.
bool ReadTraceFile(const std::string& path, PostMortemTrace* out);

}  // namespace cvm

#endif  // CVM_RACE_TRACE_IO_H_
