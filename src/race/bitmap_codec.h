// BitmapCodec: compact wire encodings for the word-granularity access
// bitmaps that the barrier-time bitmap-retrieval round ships between nodes
// (§4 step 4). Access bitmaps are extremely skewed in practice — most
// intervals touch a handful of words of a page, or sweep a dense contiguous
// range — so the codec picks, per bitmap, the smallest of:
//
//   kEmpty   no set bits; header only.
//   kSparse  the set-bit indices as uint16 values (2 bytes per set bit).
//   kRuns    (start, length) uint16 pairs for maximal runs of set bits
//            (4 bytes per run; wins on dense contiguous sweeps).
//   kRaw     the raw 64-bit words (the legacy BitmapReplyMsg payload);
//            always correct, never larger than the original.
//
// Encoding is lossless and deterministic: the same bitmap always yields the
// same encoding, so message byte accounting stays reproducible.
#ifndef CVM_RACE_BITMAP_CODEC_H_
#define CVM_RACE_BITMAP_CODEC_H_

#include <cstdint>
#include <vector>

#include "src/common/bitmap.h"

namespace cvm {

enum class BitmapEncoding : uint8_t {
  kRaw = 0,
  kEmpty = 1,
  kSparse = 2,
  kRuns = 3,
  // 'Same content as the previous shipment': a generation token instead of
  // payload bytes. Produced by the interning cache layer (the barrier
  // coordinator's generation-stamped per-destination cache), never by
  // BitmapCodec::Encode itself, and resolved against the receiver's mirror
  // cache — BitmapCodec::Decode cannot reconstruct it alone.
  kInterned = 4,
};

const char* BitmapEncodingName(BitmapEncoding encoding);

// One encoded bitmap plus enough header to decode it. Wire layout (modeled,
// not serialized — the fabric is in-process): 1 byte encoding tag, 4 bytes
// num_bits, then the payload.
struct EncodedBitmap {
  BitmapEncoding encoding = BitmapEncoding::kEmpty;
  uint32_t num_bits = 0;
  std::vector<uint64_t> raw;      // kRaw payload.
  std::vector<uint16_t> values;   // kSparse: indices; kRuns: (start, len) pairs.
  uint32_t generation = 0;        // kInterned: the sender cache's generation stamp.

  static constexpr size_t kHeaderBytes = 1 + sizeof(uint32_t);

  size_t WireBytes() const {
    if (encoding == BitmapEncoding::kInterned) {
      return kHeaderBytes + sizeof(uint32_t);  // Tag + num_bits + generation.
    }
    return kHeaderBytes + raw.size() * sizeof(uint64_t) + values.size() * sizeof(uint16_t);
  }

  // What the same bitmap costs uncompressed (the legacy reply payload), for
  // the bytes-saved accounting.
  static size_t RawWireBytes(uint32_t num_bits) {
    return kHeaderBytes + ((num_bits + 63) / 64) * sizeof(uint64_t);
  }
};

class BitmapCodec {
 public:
  // Encodes `bitmap`, choosing the smallest representation. With
  // `allow_compression` false the result is always kRaw (the legacy wire
  // format, used to keep the serial baseline byte-comparable).
  static EncodedBitmap Encode(const Bitmap& bitmap, bool allow_compression = true);

  // Inverse of Encode: reconstructs the exact original bitmap.
  static Bitmap Decode(const EncodedBitmap& encoded);
};

}  // namespace cvm

#endif  // CVM_RACE_BITMAP_CODEC_H_
