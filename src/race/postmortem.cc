#include "src/race/postmortem.h"

#include <algorithm>

namespace cvm {

void PostMortemTrace::AddRecord(const IntervalRecord& record) {
  std::lock_guard<std::mutex> guard(mu_);
  records_.push_back(record);
}

void PostMortemTrace::AddBitmaps(const IntervalId& interval, PageId page,
                                 const PageAccessBitmaps& bitmaps) {
  std::lock_guard<std::mutex> guard(mu_);
  bitmaps_.emplace(std::make_pair(interval, page), bitmaps);
}

size_t PostMortemTrace::NumRecords() const {
  std::lock_guard<std::mutex> guard(mu_);
  return records_.size();
}

size_t PostMortemTrace::NumBitmapPairs() const {
  std::lock_guard<std::mutex> guard(mu_);
  return bitmaps_.size();
}

void PostMortemTrace::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  records_.clear();
  bitmaps_.clear();
}

size_t PostMortemTrace::TraceBytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t bytes = 0;
  for (const IntervalRecord& record : records_) {
    bytes += record.ByteSize();
  }
  for (const auto& [key, pair] : bitmaps_) {
    bytes += sizeof(key) + pair.read.ByteSize() + pair.write.ByteSize();
  }
  return bytes;
}

PostMortemTrace::AnalysisResult PostMortemTrace::Analyze(int num_pages,
                                                         OverlapMethod method) const {
  std::lock_guard<std::mutex> guard(mu_);
  AnalysisResult result;
  RaceDetector detector(num_pages, method);

  std::map<EpochId, std::vector<IntervalRecord>> by_epoch;
  for (const IntervalRecord& record : records_) {
    by_epoch[record.epoch].push_back(record);
  }

  BitmapLookup lookup = [this](const IntervalId& interval, PageId page) {
    auto it = bitmaps_.find(std::make_pair(interval, page));
    return it == bitmaps_.end() ? nullptr : &it->second;
  };

  for (const auto& [epoch, records] : by_epoch) {
    const std::vector<CheckPair> pairs = detector.BuildCheckList(records);
    const size_t checklist_entries = RaceDetector::BitmapsNeeded(pairs).size();
    std::vector<RaceReport> races = detector.CompareBitmaps(pairs, lookup, epoch, checklist_entries);
    for (RaceReport& race : races) {
      // Deduplicate, matching the online system's reporting.
      const bool duplicate = std::any_of(result.races.begin(), result.races.end(),
                                         [&](const RaceReport& r) { return r.SameRace(race); });
      if (!duplicate) {
        result.races.push_back(std::move(race));
      }
    }
  }
  result.stats = detector.stats();
  return result;
}

}  // namespace cvm
