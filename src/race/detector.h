// The on-the-fly race-detection algorithm of §4, steps 2–5, as pure logic:
// given every interval record of a barrier epoch, find concurrent interval
// pairs (vector-timestamp test), winnow to pairs with overlapping page
// accesses (the check list), then compare word-granularity bitmaps to
// separate false sharing from true data races.
//
// The check-list build (the O(n²) pair loop) can run sharded across a worker
// pool: rows of the pair triangle are dealt round-robin to shards and the
// per-row results merged back in row order, so the sharded check list is
// byte-identical to the serial one (same pairs, same order) — reports stay
// reproducible no matter how many workers ran.
#ifndef CVM_RACE_DETECTOR_H_
#define CVM_RACE_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "src/common/bitmap.h"
#include "src/protocol/interval.h"
#include "src/race/race_report.h"
#include "src/vc/vector_clock.h"

namespace cvm {

// How page-set overlap between two intervals is probed (§6.2): pairwise scan
// of the (short) page lists, or via dense page bitmaps which is linear in
// the number of pages in the system.
enum class OverlapMethod : uint8_t {
  kPageLists,
  kPageBitmaps,
};

// Counters reported by the evaluation harness (Table 3, Figure 3).
struct DetectorStats {
  uint64_t intervals_total = 0;
  uint64_t interval_comparisons = 0;   // Version-vector concurrency tests run.
  uint64_t concurrent_pairs = 0;
  uint64_t overlapping_pairs = 0;      // Pairs placed on the check list.
  uint64_t intervals_in_overlap = 0;   // Intervals in >= 1 overlapping pair.
  uint64_t checklist_entries = 0;      // (interval, page) bitmap requests.
  uint64_t page_overlap_probes = 0;
  uint64_t bitmap_pairs_compared = 0;
  uint64_t overlap_scratch_builds = 0;  // Scratch bitmap (re)allocations.

  void Accumulate(const DetectorStats& other);
};

// Reusable working state for the dense-bitmap overlap probe. One scratch per
// shard lives inside the RaceDetector across epochs, so a steady-state epoch
// probes every pair without allocating: Prepare() only builds the bitmaps
// when the page count changes (stats->overlap_scratch_builds counts those),
// otherwise it zero-fills in place.
struct OverlapScratch {
  Bitmap a_writes;
  Bitmap a_access;
  Bitmap b_writes;
  Bitmap b_access;
  Bitmap conflict;
  std::vector<PageId> overlap;

  void Prepare(int num_pages, DetectorStats* stats) {
    if (a_writes.size() != static_cast<uint32_t>(num_pages)) {
      ++stats->overlap_scratch_builds;
      a_writes = Bitmap(static_cast<uint32_t>(num_pages));
      a_access = Bitmap(static_cast<uint32_t>(num_pages));
      b_writes = Bitmap(static_cast<uint32_t>(num_pages));
      b_access = Bitmap(static_cast<uint32_t>(num_pages));
      conflict = Bitmap(static_cast<uint32_t>(num_pages));
    } else {
      a_writes.Reset();
      a_access.Reset();
      b_writes.Reset();
      b_access.Reset();
      conflict.Reset();
    }
  }
};

// One concurrent interval pair that exhibits unsynchronized sharing on at
// least one page; `pages` lists the overlapping pages (true or false sharing
// not yet known — that is what the bitmap round decides).
struct CheckPair {
  IntervalRecord a;
  IntervalRecord b;
  std::vector<PageId> pages;
};

// Resolves the word-granularity bitmaps for one (interval, page); returns
// nullptr if that interval did not touch the page (never happens for
// correctly-built check lists). The DSM binds this to the bitmap-retrieval
// message round.
using BitmapLookup = std::function<const PageAccessBitmaps*(const IntervalId&, PageId)>;

class RaceDetector {
 public:
  explicit RaceDetector(int num_pages, OverlapMethod method = OverlapMethod::kPageLists)
      : num_pages_(num_pages), method_(method) {}

  // Steps 2 + 3: enumerate concurrent pairs among the epoch's intervals and
  // keep those whose page accesses overlap in a W/W or R/W fashion.
  // Intervals on the same node are never compared (program order), and the
  // vector-timestamp test prunes synchronized pairs in constant time.
  //
  // The returned reference points at detector-owned scratch (the check list
  // and its per-row staging vectors persist across epochs, so steady-state
  // builds reuse every element's heap storage instead of reallocating). It
  // is valid until the next Build* call; callers that keep pairs across
  // epochs (e.g. the batched master) must copy.
  const std::vector<CheckPair>& BuildCheckList(
      const std::vector<IntervalRecord>& epoch_intervals);

  // Same result, same order, but the pair loop runs on `num_shards` worker
  // threads (row i of the triangle goes to shard i % num_shards, which keeps
  // the triangular work balanced). When `per_shard` is non-null it receives
  // one DetectorStats per shard, so the caller can charge simulated time for
  // the *largest* shard (the parallel critical path) rather than the sum.
  // num_shards <= 1 degenerates to the serial loop on the calling thread.
  const std::vector<CheckPair>& BuildCheckListSharded(
      const std::vector<IntervalRecord>& epoch_intervals, int num_shards,
      std::vector<DetectorStats>* per_shard = nullptr);

  // Check-list pairs among `intervals` that `claim` accepts, built via a
  // page -> accessing-intervals index instead of the all-pairs scan: only
  // pairs that share a page with at least one writer are candidates, which
  // is exactly the population PagesOverlap can accept. `intervals` must be
  // IntervalId-sorted (IntervalLog::All() order); the output is sorted by
  // (a.id, b.id) with a.id < b.id — the serial scan's emission order — so
  // fragments built at different tree nodes under disjoint claims merge
  // into a byte-identical serial check list. Static and free of detector
  // state: interior combine-tree nodes run it concurrently, each with its
  // own scratch and stats. `index_entries` (optional) receives the number
  // of page-index insertions, for per-entry cost charging.
  static void BuildClaimedPairs(const std::vector<IntervalRecord>& intervals,
                                OverlapMethod method, int num_pages,
                                const std::function<bool(NodeId, NodeId)>& claim,
                                OverlapScratch* scratch, std::vector<CheckPair>* out,
                                DetectorStats* stats, uint64_t* index_entries = nullptr);

  // Distinct (interval, page) entries whose bitmaps step 5 needs.
  static std::vector<std::pair<IntervalId, PageId>> BitmapsNeeded(
      const std::vector<CheckPair>& pairs);

  // Step 5: word-level comparison. Emits one report per racing word per
  // interval pair per kind. interval_a is the writer in read-write reports.
  // `checklist_entries` is the number of distinct (interval, page) bitmap
  // requests behind `pairs` — i.e. BitmapsNeeded(pairs).size(), which every
  // caller has already computed to run the retrieval round; it is threaded
  // through instead of being recomputed here.
  std::vector<RaceReport> CompareBitmaps(const std::vector<CheckPair>& pairs,
                                         const BitmapLookup& lookup, EpochId epoch,
                                         size_t checklist_entries);

  // The word-level comparison of ONE check pair (all its pages), shared by
  // CompareBitmaps and by constituent nodes running the distributed compare:
  // both sides must emit reports in exactly this order (per page: W/W words
  // ascending, then R/W with a writing, then R/W with b writing) for the
  // merged distributed report stream to be byte-identical to the serial one.
  // `bitmap_pairs_compared` is incremented per bitmap pair examined.
  static std::vector<RaceReport> CompareOnePair(const IntervalId& a, const IntervalId& b,
                                                const std::vector<PageId>& pages,
                                                const BitmapLookup& lookup, EpochId epoch,
                                                uint64_t* bitmap_pairs_compared);

  // Folds compare work done away from this detector (the distributed
  // pipeline's constituent-node compares) into the run totals.
  void AccumulateCompare(uint64_t checklist_entries, uint64_t bitmap_pairs_compared) {
    stats_.checklist_entries += checklist_entries;
    stats_.bitmap_pairs_compared += bitmap_pairs_compared;
  }

  // Folds build-side counters produced outside this detector into the run
  // totals. The combine tree's root folds in its own claimed build; interior
  // nodes' builds run concurrently on other threads and are deliberately not
  // folded (the detector has no lock), so tree-mode build counters reflect
  // the root's share only.
  void AccumulateBuild(const DetectorStats& build_stats) { stats_.Accumulate(build_stats); }

  const DetectorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DetectorStats{}; }

 private:
  int num_pages_;
  OverlapMethod method_;
  DetectorStats stats_;
  // One dense-probe scratch per shard, kept across epochs so steady-state
  // check-list builds allocate nothing. Grown (never shrunk) on demand;
  // shard i is the exclusive user of shard_scratch_[i] during a build.
  std::vector<OverlapScratch> shard_scratch_;
  // Persistent check-list arenas: rows_ stages per-row results during the
  // (possibly sharded) pair loop, checklist_ holds the merged output that
  // Build* returns by reference. Both grow but never shrink their element
  // storage — row_used_ tracks the live prefix of each row, so a new epoch
  // overwrites slots in place (IntervalRecord / page-vector assignment
  // reuses heap capacity) instead of destroying and reallocating them.
  std::vector<std::vector<CheckPair>> rows_;
  std::vector<size_t> row_used_;
  std::vector<CheckPair> checklist_;
};

// Assigns a check pair into a pooled slot: overwrites `row`[*used] in place
// when a retired slot exists (element assignment reuses the slot's heap
// storage), appends otherwise. Shared by the serial/sharded row loop and the
// tree fragment builder so both benefit from the persistent arenas.
inline void EmitCheckPair(const IntervalRecord& a, const IntervalRecord& b,
                          const std::vector<PageId>& pages, std::vector<CheckPair>* row,
                          size_t* used) {
  if (*used < row->size()) {
    CheckPair& slot = (*row)[*used];
    slot.a = a;
    slot.b = b;
    slot.pages = pages;
  } else {
    row->push_back(CheckPair{a, b, pages});
  }
  ++*used;
}

}  // namespace cvm

#endif  // CVM_RACE_DETECTOR_H_
