// The on-the-fly race-detection algorithm of §4, steps 2–5, as pure logic:
// given every interval record of a barrier epoch, find concurrent interval
// pairs (vector-timestamp test), winnow to pairs with overlapping page
// accesses (the check list), then compare word-granularity bitmaps to
// separate false sharing from true data races.
#ifndef CVM_RACE_DETECTOR_H_
#define CVM_RACE_DETECTOR_H_

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "src/protocol/interval.h"
#include "src/race/race_report.h"
#include "src/vc/vector_clock.h"

namespace cvm {

// How page-set overlap between two intervals is probed (§6.2): pairwise scan
// of the (short) page lists, or via dense page bitmaps which is linear in
// the number of pages in the system.
enum class OverlapMethod : uint8_t {
  kPageLists,
  kPageBitmaps,
};

// Counters reported by the evaluation harness (Table 3, Figure 3).
struct DetectorStats {
  uint64_t intervals_total = 0;
  uint64_t interval_comparisons = 0;   // Version-vector concurrency tests run.
  uint64_t concurrent_pairs = 0;
  uint64_t overlapping_pairs = 0;      // Pairs placed on the check list.
  uint64_t intervals_in_overlap = 0;   // Intervals in >= 1 overlapping pair.
  uint64_t checklist_entries = 0;      // (interval, page) bitmap requests.
  uint64_t page_overlap_probes = 0;
  uint64_t bitmap_pairs_compared = 0;

  void Accumulate(const DetectorStats& other);
};

// One concurrent interval pair that exhibits unsynchronized sharing on at
// least one page; `pages` lists the overlapping pages (true or false sharing
// not yet known — that is what the bitmap round decides).
struct CheckPair {
  IntervalRecord a;
  IntervalRecord b;
  std::vector<PageId> pages;
};

// Resolves the word-granularity bitmaps for one (interval, page); returns
// nullptr if that interval did not touch the page (never happens for
// correctly-built check lists). The DSM binds this to the bitmap-retrieval
// message round.
using BitmapLookup = std::function<const PageAccessBitmaps*(const IntervalId&, PageId)>;

class RaceDetector {
 public:
  explicit RaceDetector(int num_pages, OverlapMethod method = OverlapMethod::kPageLists)
      : num_pages_(num_pages), method_(method) {}

  // Steps 2 + 3: enumerate concurrent pairs among the epoch's intervals and
  // keep those whose page accesses overlap in a W/W or R/W fashion.
  // Intervals on the same node are never compared (program order), and the
  // vector-timestamp test prunes synchronized pairs in constant time.
  std::vector<CheckPair> BuildCheckList(const std::vector<IntervalRecord>& epoch_intervals);

  // Distinct (interval, page) entries whose bitmaps step 5 needs.
  static std::vector<std::pair<IntervalId, PageId>> BitmapsNeeded(
      const std::vector<CheckPair>& pairs);

  // Step 5: word-level comparison. Emits one report per racing word per
  // interval pair per kind. interval_a is the writer in read-write reports.
  std::vector<RaceReport> CompareBitmaps(const std::vector<CheckPair>& pairs,
                                         const BitmapLookup& lookup, EpochId epoch);

  const DetectorStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DetectorStats{}; }

 private:
  // True (and fills `overlap`) if the two intervals share any page with at
  // least one writer.
  bool PagesOverlap(const IntervalRecord& a, const IntervalRecord& b,
                    std::vector<PageId>* overlap);

  int num_pages_;
  OverlapMethod method_;
  DetectorStats stats_;
};

}  // namespace cvm

#endif  // CVM_RACE_DETECTOR_H_
