// Race reports: what the system prints when a data race is detected (§6.1 —
// the shared-segment address plus the two interval indexes, symbolized via
// the allocator's symbol table).
#ifndef CVM_RACE_RACE_REPORT_H_
#define CVM_RACE_RACE_REPORT_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/vc/vector_clock.h"

namespace cvm {

struct IntervalRecord;

enum class RaceKind : uint8_t {
  kWriteWrite,
  kReadWrite,
};

const char* RaceKindName(RaceKind kind);

// One side of a race's causal evidence: the interval's identity plus the
// version vector that made the concurrency test fire. `resolved` is false
// when the interval record had already left the log (shouldn't happen at
// publish time — provenance is attached before barrier-release GC — but the
// report stays printable either way).
struct RaceAccessProvenance {
  IntervalId interval;
  VectorClock vc;
  EpochId epoch = -1;
  bool resolved = false;
};

// The causal chain that exposed a race: both intervals' timestamps, the sync
// ops that (fail to) order the accesses, and the barrier check that caught
// it. Built by AttachProvenance, rendered by FormatProvenance, serialized by
// RaceReportsToJson.
struct RaceProvenance {
  RaceAccessProvenance a;
  RaceAccessProvenance b;
  EpochId detect_epoch = -1;
  // Human-readable chain, one step per line (see FormatProvenance).
  std::vector<std::string> chain;

  bool empty() const { return chain.empty(); }
};

struct RaceReport {
  RaceKind kind = RaceKind::kReadWrite;
  PageId page = -1;
  uint32_t word = 0;       // Word index within the page.
  GlobalAddr addr = 0;     // page * page_size + word * kWordSize.
  std::string symbol;      // "tour_bound+0" etc.; empty if unsymbolized.
  IntervalId interval_a;   // The writer for kReadWrite when derivable.
  IntervalId interval_b;
  EpochId epoch = -1;
  RaceProvenance provenance;

  std::string ToString() const;

  // Identity for deduplication: same word, same interval pair, same kind.
  bool SameRace(const RaceReport& other) const;
};

// Fills report.provenance from the interval records the detector compared
// (either may be null if already garbage-collected). Explains the two-
// comparison concurrency test (§4) in terms of the actual vector-clock
// entries and the sync ops delimiting each interval.
void AttachProvenance(RaceReport& report, const IntervalRecord* a, const IntervalRecord* b);

// Multi-line human rendering of a report's provenance chain; a one-line
// "(no provenance recorded)" fallback when empty.
std::string FormatProvenance(const RaceReport& report);

// JSON array of reports with their provenance, for tool consumption
// (trace_summary --race-explain).
std::string RaceReportsToJson(const std::vector<RaceReport>& reports);

// Per-variable rollup of a report list, for human-facing summaries.
struct RaceSummaryLine {
  std::string symbol;      // Base symbol (offset stripped).
  uint64_t write_write = 0;
  uint64_t read_write = 0;
  EpochId first_epoch = -1;
};
std::vector<RaceSummaryLine> SummarizeRaces(const std::vector<RaceReport>& reports);

// §6.4 "first races": all first races must occur in the earliest barrier
// epoch that contains any race, because barrier semantics order everything
// across epochs. Returns only that epoch's reports.
std::vector<RaceReport> FilterFirstRaces(const std::vector<RaceReport>& reports);

}  // namespace cvm

#endif  // CVM_RACE_RACE_REPORT_H_
