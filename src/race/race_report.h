// Race reports: what the system prints when a data race is detected (§6.1 —
// the shared-segment address plus the two interval indexes, symbolized via
// the allocator's symbol table).
#ifndef CVM_RACE_RACE_REPORT_H_
#define CVM_RACE_RACE_REPORT_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/vc/vector_clock.h"

namespace cvm {

enum class RaceKind : uint8_t {
  kWriteWrite,
  kReadWrite,
};

const char* RaceKindName(RaceKind kind);

struct RaceReport {
  RaceKind kind = RaceKind::kReadWrite;
  PageId page = -1;
  uint32_t word = 0;       // Word index within the page.
  GlobalAddr addr = 0;     // page * page_size + word * kWordSize.
  std::string symbol;      // "tour_bound+0" etc.; empty if unsymbolized.
  IntervalId interval_a;   // The writer for kReadWrite when derivable.
  IntervalId interval_b;
  EpochId epoch = -1;

  std::string ToString() const;

  // Identity for deduplication: same word, same interval pair, same kind.
  bool SameRace(const RaceReport& other) const;
};

// Per-variable rollup of a report list, for human-facing summaries.
struct RaceSummaryLine {
  std::string symbol;      // Base symbol (offset stripped).
  uint64_t write_write = 0;
  uint64_t read_write = 0;
  EpochId first_epoch = -1;
};
std::vector<RaceSummaryLine> SummarizeRaces(const std::vector<RaceReport>& reports);

// §6.4 "first races": all first races must occur in the earliest barrier
// epoch that contains any race, because barrier semantics order everything
// across epochs. Returns only that epoch's reports.
std::vector<RaceReport> FilterFirstRaces(const std::vector<RaceReport>& reports);

}  // namespace cvm

#endif  // CVM_RACE_RACE_REPORT_H_
