#include "src/race/trace_io.h"

#include <cstdint>
#include <fstream>
#include <vector>

namespace cvm {
namespace {

template <typename T>
void Put(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(value));
}

template <typename T>
bool Get(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(*value));
  return static_cast<bool>(in);
}

void PutPages(std::ostream& out, const std::vector<PageId>& pages) {
  Put<uint32_t>(out, static_cast<uint32_t>(pages.size()));
  for (PageId page : pages) {
    Put<int32_t>(out, page);
  }
}

bool GetPages(std::istream& in, std::vector<PageId>* pages) {
  uint32_t count = 0;
  if (!Get(in, &count) || count > (1u << 24)) {
    return false;
  }
  pages->resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!Get(in, &(*pages)[i])) {
      return false;
    }
  }
  return true;
}

void PutBitmap(std::ostream& out, const Bitmap& bitmap) {
  Put<uint32_t>(out, bitmap.size());
  for (uint64_t word : bitmap.words()) {
    Put<uint64_t>(out, word);
  }
}

bool GetBitmap(std::istream& in, Bitmap* bitmap) {
  uint32_t bits = 0;
  if (!Get(in, &bits) || bits > (1u << 24)) {
    return false;
  }
  std::vector<uint64_t> words((bits + 63) / 64);
  for (uint64_t& word : words) {
    if (!Get(in, &word)) {
      return false;
    }
  }
  *bitmap = Bitmap::FromWords(bits, std::move(words));
  return true;
}

}  // namespace

bool WriteTraceFile(const PostMortemTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  Put<uint32_t>(out, kTraceMagic);
  Put<uint32_t>(out, kTraceVersion);

  Put<uint64_t>(out, trace.NumRecords());
  trace.ForEachRecord([&out](const IntervalRecord& record) {
    Put<int32_t>(out, record.id.node);
    Put<int32_t>(out, record.id.index);
    Put<int32_t>(out, record.epoch);
    Put<uint32_t>(out, static_cast<uint32_t>(record.vc.size()));
    for (IntervalIndex entry : record.vc.entries()) {
      Put<int32_t>(out, entry);
    }
    PutPages(out, record.write_pages);
    PutPages(out, record.read_pages);
  });

  Put<uint64_t>(out, trace.NumBitmapPairs());
  trace.ForEachBitmapPair(
      [&out](const IntervalId& id, PageId page, const PageAccessBitmaps& pair) {
        Put<int32_t>(out, id.node);
        Put<int32_t>(out, id.index);
        Put<int32_t>(out, page);
        PutBitmap(out, pair.read);
        PutBitmap(out, pair.write);
      });
  out.flush();
  return static_cast<bool>(out);
}

bool ReadTraceFile(const std::string& path, PostMortemTrace* out) {
  PostMortemTrace& trace = *out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  uint32_t magic = 0;
  uint32_t version = 0;
  if (!Get(in, &magic) || magic != kTraceMagic || !Get(in, &version) ||
      version != kTraceVersion) {
    return false;
  }

  uint64_t record_count = 0;
  if (!Get(in, &record_count) || record_count > (1ull << 32)) {
    return false;
  }
  for (uint64_t i = 0; i < record_count; ++i) {
    IntervalRecord record;
    uint32_t vc_len = 0;
    if (!Get(in, &record.id.node) || !Get(in, &record.id.index) || !Get(in, &record.epoch) ||
        !Get(in, &vc_len) || vc_len > (1u << 16)) {
      return false;
    }
    record.vc = VectorClock(static_cast<int>(vc_len));
    for (uint32_t v = 0; v < vc_len; ++v) {
      IntervalIndex entry = 0;
      if (!Get(in, &entry)) {
        return false;
      }
      record.vc.Set(static_cast<NodeId>(v), entry);
    }
    if (!GetPages(in, &record.write_pages) || !GetPages(in, &record.read_pages)) {
      return false;
    }
    trace.AddRecord(record);
  }

  uint64_t bitmap_count = 0;
  if (!Get(in, &bitmap_count) || bitmap_count > (1ull << 32)) {
    return false;
  }
  for (uint64_t i = 0; i < bitmap_count; ++i) {
    IntervalId id;
    PageId page = -1;
    PageAccessBitmaps pair;
    if (!Get(in, &id.node) || !Get(in, &id.index) || !Get(in, &page) ||
        !GetBitmap(in, &pair.read) || !GetBitmap(in, &pair.write)) {
      return false;
    }
    trace.AddBitmaps(id, page, pair);
  }
  return true;
}

}  // namespace cvm
