#include "src/race/detector.h"

#include <algorithm>

#include "src/common/bitmap.h"
#include "src/common/check.h"

namespace cvm {

void DetectorStats::Accumulate(const DetectorStats& other) {
  intervals_total += other.intervals_total;
  interval_comparisons += other.interval_comparisons;
  concurrent_pairs += other.concurrent_pairs;
  overlapping_pairs += other.overlapping_pairs;
  intervals_in_overlap += other.intervals_in_overlap;
  checklist_entries += other.checklist_entries;
  page_overlap_probes += other.page_overlap_probes;
  bitmap_pairs_compared += other.bitmap_pairs_compared;
}

namespace {

// Pages written by one interval and accessed (either way) by the other.
void CollectConflictPages(const std::vector<PageId>& writes, const std::vector<PageId>& reads,
                          const std::vector<PageId>& other_writes,
                          const std::vector<PageId>& other_reads, std::vector<PageId>* out,
                          uint64_t* probes) {
  for (PageId w : writes) {
    *probes += other_writes.size() + other_reads.size();
    const bool hit = std::find(other_writes.begin(), other_writes.end(), w) != other_writes.end() ||
                     std::find(other_reads.begin(), other_reads.end(), w) != other_reads.end();
    if (hit) {
      out->push_back(w);
    }
  }
  // Reads of this interval against writes of the other.
  for (PageId r : reads) {
    *probes += other_writes.size();
    if (std::find(other_writes.begin(), other_writes.end(), r) != other_writes.end()) {
      out->push_back(r);
    }
  }
}

}  // namespace

bool RaceDetector::PagesOverlap(const IntervalRecord& a, const IntervalRecord& b,
                                std::vector<PageId>* overlap) {
  overlap->clear();
  if (method_ == OverlapMethod::kPageLists) {
    CollectConflictPages(a.write_pages, a.read_pages, b.write_pages, b.read_pages, overlap,
                         &stats_.page_overlap_probes);
  } else {
    // Dense page bitmaps: O(pages) regardless of list length (§6.2).
    // conflict = (a.writes & b.access) | (b.writes & a.access).
    Bitmap a_writes(num_pages_);
    Bitmap a_access(num_pages_);
    for (PageId p : a.write_pages) {
      a_writes.Set(static_cast<uint32_t>(p));
      a_access.Set(static_cast<uint32_t>(p));
    }
    for (PageId p : a.read_pages) {
      a_access.Set(static_cast<uint32_t>(p));
    }
    Bitmap b_writes(num_pages_);
    Bitmap b_access(num_pages_);
    for (PageId p : b.write_pages) {
      b_writes.Set(static_cast<uint32_t>(p));
      b_access.Set(static_cast<uint32_t>(p));
    }
    for (PageId p : b.read_pages) {
      b_access.Set(static_cast<uint32_t>(p));
    }
    stats_.page_overlap_probes += static_cast<uint64_t>(num_pages_);
    Bitmap conflict = a_writes;
    conflict.IntersectWith(b_access);
    b_writes.IntersectWith(a_access);
    conflict.UnionWith(b_writes);
    for (uint32_t p : conflict.SetBits()) {
      overlap->push_back(static_cast<PageId>(p));
    }
  }
  // Deduplicate (a page can enter via both W/W and R/W probes).
  std::sort(overlap->begin(), overlap->end());
  overlap->erase(std::unique(overlap->begin(), overlap->end()), overlap->end());
  return !overlap->empty();
}

std::vector<CheckPair> RaceDetector::BuildCheckList(
    const std::vector<IntervalRecord>& epoch_intervals) {
  std::vector<CheckPair> pairs;
  std::set<IntervalId> in_overlap;
  stats_.intervals_total += epoch_intervals.size();

  for (size_t i = 0; i < epoch_intervals.size(); ++i) {
    for (size_t j = i + 1; j < epoch_intervals.size(); ++j) {
      const IntervalRecord& a = epoch_intervals[i];
      const IntervalRecord& b = epoch_intervals[j];
      if (a.id.node == b.id.node) {
        continue;  // Program order; never concurrent.
      }
      ++stats_.interval_comparisons;
      if (!IntervalsConcurrent(a.id, a.vc, b.id, b.vc)) {
        continue;
      }
      ++stats_.concurrent_pairs;
      std::vector<PageId> overlap;
      if (!PagesOverlap(a, b, &overlap)) {
        continue;
      }
      ++stats_.overlapping_pairs;
      in_overlap.insert(a.id);
      in_overlap.insert(b.id);
      pairs.push_back(CheckPair{a, b, std::move(overlap)});
    }
  }
  stats_.intervals_in_overlap += in_overlap.size();
  return pairs;
}

std::vector<std::pair<IntervalId, PageId>> RaceDetector::BitmapsNeeded(
    const std::vector<CheckPair>& pairs) {
  std::set<std::pair<IntervalId, PageId>> needed;
  for (const CheckPair& pair : pairs) {
    for (PageId page : pair.pages) {
      // Only request bitmaps the interval actually has for this page.
      if (pair.a.WritesPage(page) || pair.a.ReadsPage(page)) {
        needed.emplace(pair.a.id, page);
      }
      if (pair.b.WritesPage(page) || pair.b.ReadsPage(page)) {
        needed.emplace(pair.b.id, page);
      }
    }
  }
  return std::vector<std::pair<IntervalId, PageId>>(needed.begin(), needed.end());
}

std::vector<RaceReport> RaceDetector::CompareBitmaps(const std::vector<CheckPair>& pairs,
                                                     const BitmapLookup& lookup, EpochId epoch) {
  std::vector<RaceReport> reports;
  stats_.checklist_entries += BitmapsNeeded(pairs).size();

  auto report_hits = [&](RaceKind kind, const Bitmap& x, const Bitmap& y, PageId page,
                         const IntervalId& a, const IntervalId& b) {
    ++stats_.bitmap_pairs_compared;
    for (uint32_t word : x.IntersectionBits(y)) {
      RaceReport r;
      r.kind = kind;
      r.page = page;
      r.word = word;
      r.interval_a = a;
      r.interval_b = b;
      r.epoch = epoch;
      reports.push_back(std::move(r));
    }
  };

  for (const CheckPair& pair : pairs) {
    for (PageId page : pair.pages) {
      const PageAccessBitmaps* bm_a = lookup(pair.a.id, page);
      const PageAccessBitmaps* bm_b = lookup(pair.b.id, page);
      if (bm_a == nullptr || bm_b == nullptr) {
        continue;  // The interval never truly touched the page (stale notice).
      }
      // Write-write overlap.
      report_hits(RaceKind::kWriteWrite, bm_a->write, bm_b->write, page, pair.a.id, pair.b.id);
      // Read-write overlaps, writer first.
      report_hits(RaceKind::kReadWrite, bm_a->write, bm_b->read, page, pair.a.id, pair.b.id);
      report_hits(RaceKind::kReadWrite, bm_b->write, bm_a->read, page, pair.b.id, pair.a.id);
    }
  }
  return reports;
}

}  // namespace cvm
